// Package semjoin is an open-source implementation of "Extracting Graphs
// Properties with Semantic Joins" (Cao, Fan, Fu, Jin, Ou, Yi — ICDE
// 2023): querying a relational database D and a graph G taken together in
// SQL, by semantically joining tuples with the graph vertices that denote
// the same real-world entities.
//
// The package is a curated facade over the implementation packages:
//
//   - Graph, Relation, Schema — the data substrates.
//   - TrainModels — unsupervised training of the LSTM language model Mρ
//     and GloVe-style word embedder Me on random-walk label corpora.
//   - Extractor / RExtConfig — the RExt extraction scheme (§III-A):
//     LSTM-guided path selection, path-pattern clustering, majority-vote
//     refinement, ranked attribute selection and value extraction, plus
//     IncExt incremental maintenance (§III-B).
//   - EnrichmentJoin / LinkJoin — the two semantic joins of §II-B.
//   - BuildMaterialized / HeuristicJoiner — the static and heuristic
//     implementations of §IV.
//   - Engine / Catalog — the gSQL dialect of §II-C (SQL plus e-join /
//     l-join) with the linear-time well-behaved analysis.
//
// Quick start (also in examples/quickstart):
//
//	g := semjoin.NewGraph()
//	// ... add vertices/edges and a keyed relation products ...
//	models := semjoin.TrainModels(g, 8, 1)
//	out, err := semjoin.EnrichmentJoin(products, g, models, matcher,
//	    []string{"company", "country"}, semjoin.RExtConfig{K: 3})
package semjoin

import (
	"io"

	"semjoin/internal/core"
	"semjoin/internal/dataio"
	"semjoin/internal/dataset"
	"semjoin/internal/graph"
	"semjoin/internal/gsql"
	"semjoin/internal/her"
	"semjoin/internal/mat"
	"semjoin/internal/rel"
)

// Graph substrate (internal/graph).
type (
	// Graph is a directed labeled multigraph with typed vertices.
	Graph = graph.Graph
	// VertexID identifies a vertex.
	VertexID = graph.VertexID
	// Path is a simple undirected path with direction-marked edge labels.
	Path = graph.Path
	// Vertex is a labeled, typed graph vertex.
	Vertex = graph.Vertex
	// Edge is a directed labeled edge.
	Edge = graph.Edge
	// GraphUpdate is one element of an update batch ΔG.
	GraphUpdate = graph.Update
	// GraphBatch is a ΔG update batch.
	GraphBatch = graph.Batch
)

// Graph update operations.
const (
	// InsertEdge adds an edge.
	InsertEdge = graph.InsertEdge
	// DeleteEdge removes an edge.
	DeleteEdge = graph.DeleteEdge
	// InsertVertex adds a vertex.
	InsertVertex = graph.InsertVertex
	// DeleteVertex removes a vertex and its incident edges.
	DeleteVertex = graph.DeleteVertex
)

// NoVertex is the invalid vertex id.
const NoVertex = graph.NoVertex

// FindVertex returns the first live vertex carrying label, or NoVertex.
func FindVertex(g *Graph, label string) VertexID {
	id := NoVertex
	g.Vertices(func(v Vertex) {
		if id == NoVertex && v.Label == label {
			id = v.ID
		}
	})
	return id
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return graph.New() }

// Relational substrate (internal/rel).
type (
	// Relation is a schema plus tuples.
	Relation = rel.Relation
	// Schema describes a relation.
	Schema = rel.Schema
	// Attribute is one column.
	Attribute = rel.Attribute
	// Tuple is one row.
	Tuple = rel.Tuple
	// Value is one attribute value.
	Value = rel.Value
)

// NewSchema builds a relation schema (key may be "" for derived results).
func NewSchema(name, key string, attrs ...Attribute) *Schema {
	return rel.NewSchema(name, key, attrs...)
}

// NewRelation returns an empty relation of schema s.
func NewRelation(s *Schema) *Relation { return rel.NewRelation(s) }

// Value constructors.
var (
	// S builds a string value.
	S = rel.S
	// I builds an integer value.
	I = rel.I
	// F builds a float value.
	F = rel.F
	// B builds a boolean value.
	B = rel.B
	// Null is the SQL null.
	Null = rel.Null
)

// HER (internal/her).
type (
	// Matcher computes the HER match relation f(S,G) of §II-B.
	Matcher = her.Matcher
	// Match pairs a tuple with a vertex.
	Match = her.Match
	// HERConfig parameterises the similarity matcher.
	HERConfig = her.Config
)

// NewSimilarityMatcher returns the blocking + token-similarity HER.
func NewSimilarityMatcher(cfg HERConfig) *her.SimilarityMatcher {
	return her.NewSimilarityMatcher(cfg)
}

// NewOracleMatcher returns a ground-truth HER over tid→vertex alignments.
func NewOracleMatcher(truth map[string]VertexID) *her.OracleMatcher {
	return her.NewOracleMatcher(truth)
}

// Core: RExt, IncExt, semantic joins (internal/core).
type (
	// Models bundles the learned components (Mρ and Me).
	Models = core.Models
	// RExtConfig parameterises extraction (§III-A).
	RExtConfig = core.Config
	// Extractor runs RExt and IncExt.
	Extractor = core.Extractor
	// ExtractionScheme is the extracted schema RG plus pattern clusters.
	ExtractionScheme = core.Scheme
	// PathPattern is a list of direction-marked edge labels.
	PathPattern = core.PathPattern
	// Materialized holds the offline pre-computation for static joins.
	Materialized = core.Materialized
	// BaseSpec describes one base relation to pre-process.
	BaseSpec = core.BaseSpec
	// HeuristicJoiner answers non-well-behaved joins without HER/RExt.
	HeuristicJoiner = core.HeuristicJoiner
	// TypeExtraction is gτ(G) for one vertex type.
	TypeExtraction = core.TypeExtraction
	// IncStats reports one incremental maintenance step.
	IncStats = core.IncStats
)

// TrainModels trains the default LSTM + GloVe pair on g (unsupervised).
func TrainModels(g *Graph, epochs int, seed uint64) Models {
	return core.TrainModels(g, epochs, seed)
}

// NewExtractor builds an RExt extractor.
func NewExtractor(g *Graph, models Models, cfg RExtConfig) *Extractor {
	return core.NewExtractor(g, models, cfg)
}

// EnrichmentJoin computes the exact enrichment join S ⋈_A G (§II-B).
func EnrichmentJoin(s *Relation, g *Graph, models Models, matcher Matcher, keywords []string, cfg RExtConfig) (*Relation, error) {
	return core.EnrichmentJoin(s, g, models, matcher, keywords, cfg)
}

// LinkJoin computes the exact link join S1 ⋈_G S2 with hop bound k. A
// schema collision between the two sides' qualified names surfaces as
// an error.
func LinkJoin(s1, s2 *Relation, g *Graph, matcher Matcher, k int) (*Relation, error) {
	return core.LinkJoin(s1, s2, g, matcher, k)
}

// BuildMaterialized runs the offline pre-processing for static joins.
func BuildMaterialized(g *Graph, models Models, specs map[string]BaseSpec, cfg RExtConfig) (*Materialized, error) {
	return core.BuildMaterialized(g, models, specs, cfg)
}

// ProfileGraph extracts gτ(G) for each vertex type (heuristic joins).
func ProfileGraph(g *Graph, models Models, keywordsByType map[string][]string, minVertices int, cfg RExtConfig) map[string]*TypeExtraction {
	return core.ProfileGraph(g, models, keywordsByType, minVertices, cfg)
}

// NewHeuristicJoiner builds a heuristic joiner over profiled types.
func NewHeuristicJoiner(profiles map[string]*TypeExtraction) *HeuristicJoiner {
	return core.NewHeuristicJoiner(profiles)
}

// RandomGraphBatch samples a ΔG of n edge updates (half deletions, half
// insertions) for incremental-maintenance experiments.
func RandomGraphBatch(g *Graph, seed uint64, n int) GraphBatch {
	return graph.RandomBatch(g, mat.NewRNG(seed), n)
}

// gSQL (internal/gsql).
type (
	// Engine executes gSQL queries.
	Engine = gsql.Engine
	// Catalog binds relations, graphs and join machinery.
	Catalog = gsql.Catalog
	// EngineMode selects the execution strategy.
	EngineMode = gsql.Mode
)

// Engine modes.
const (
	// ModeAuto plans static/dynamic/heuristic per the well-behaved
	// analysis.
	ModeAuto = gsql.ModeAuto
	// ModeBaseline always runs HER and RExt online.
	ModeBaseline = gsql.ModeBaseline
	// ModeHeuristic forces heuristic joins.
	ModeHeuristic = gsql.ModeHeuristic
)

// NewEngine returns a gSQL engine over cat in ModeAuto.
func NewEngine(cat *Catalog) *Engine { return gsql.NewEngine(cat) }

// ParseGSQL parses one gSQL query without executing it.
func ParseGSQL(input string) (*gsql.Query, error) { return gsql.Parse(input) }

// Persistence (internal/core, internal/rel): binary save/load for the
// offline artifacts — trained models, extraction schemes and relations —
// so the §IV-A preprocessing runs once per graph version.

// SaveModels persists a trained model pair (LSTM + type-aware GloVe).
func SaveModels(w io.Writer, m Models) error { return core.SaveModels(w, m) }

// LoadModels restores a model pair written by SaveModels.
func LoadModels(r io.Reader) (Models, error) { return core.LoadModels(r) }

// SaveScheme persists an extraction scheme for later ExtractWithScheme.
func SaveScheme(w io.Writer, s *ExtractionScheme) error { return core.SaveScheme(w, s) }

// LoadScheme restores a scheme written by SaveScheme.
func LoadScheme(r io.Reader) (*ExtractionScheme, error) { return core.LoadScheme(r) }

// SaveRelation persists a relation (schema and tuples) in binary form.
func SaveRelation(w io.Writer, r *Relation) error { return r.Save(w) }

// LoadRelation restores a relation written by SaveRelation.
func LoadRelation(r io.Reader) (*Relation, error) { return rel.LoadRelation(r) }

// Interchange (internal/dataio): plain-text loading of real data.

// LoadRelationCSV reads a relation from CSV (header row; inferred types;
// empty cells are NULL).
func LoadRelationCSV(r io.Reader, name, key string) (*Relation, error) {
	return dataio.LoadRelationCSV(r, name, key)
}

// WriteRelationCSV writes a relation as CSV.
func WriteRelationCSV(w io.Writer, rel *Relation) error { return dataio.WriteRelationCSV(w, rel) }

// LoadGraphTSV reads a graph from TSV triples (V id label type / E src
// label dst), returning the file-id → vertex mapping.
func LoadGraphTSV(r io.Reader) (*Graph, map[string]VertexID, error) {
	return dataio.LoadGraphTSV(r)
}

// WriteGraphTSV writes a graph as TSV triples.
func WriteGraphTSV(w io.Writer, g *Graph) error { return dataio.WriteGraphTSV(w, g) }

// Datasets (internal/dataset): the six synthetic Table II collections.
type (
	// Collection is one generated relation/graph pair with ground truth.
	Collection = dataset.Collection
	// DatasetConfig scales a generator.
	DatasetConfig = dataset.Config
)

// GenerateCollection builds one of the six named collections ("Drugs",
// "FakeNews", "Movie", "MovKB", "Paper", "Celebrity").
func GenerateCollection(name string, cfg DatasetConfig) *Collection {
	gen := dataset.ByName(name)
	if gen == nil {
		return nil
	}
	return gen(cfg)
}
