module semjoin

go 1.22
