// FinTech: the paper's Example 1 end to end. We build a database D
// (customer, product) and a knowledge/transaction graph G in the spirit
// of Figure 1, run the offline preprocessing of §IV, and answer the
// three motivating queries in gSQL:
//
//	Q1 — complement a product with its backing company and country.
//	Q2 — join two customers on an attribute (company) extracted from G.
//	Q3 — good-credit customers within k hops of Bob (a link join).
//
//	go run ./examples/fintech
package main

import (
	"fmt"
	"log"

	"semjoin"
)

func main() {
	g, customers, products, truth := buildWorld()
	fmt.Printf("graph: %d vertices, %d edges; customers: %d; products: %d\n",
		g.NumVertices(), g.NumEdges(), customers.Len(), products.Len())

	models := semjoin.TrainModels(g, 8, 11)
	matcher := semjoin.NewOracleMatcher(truth)

	// Offline preprocessing (§IV-A): materialise f(D,G) and h(D,G) per
	// base relation with reference keywords AR.
	mat, err := semjoin.BuildMaterialized(g, models, map[string]semjoin.BaseSpec{
		"product":  {D: products, AR: []string{"company", "country"}, Matcher: matcher},
		"customer": {D: customers, AR: []string{"company"}, Matcher: matcher},
	}, semjoin.RExtConfig{K: 3, H: 14, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	eng := semjoin.NewEngine(&semjoin.Catalog{
		Relations: map[string]*semjoin.Relation{"customer": customers, "product": products},
		Graphs:    map[string]*semjoin.Graph{"G": g},
		Models:    models,
		Matcher:   matcher,
		Mat:       mat,
		K:         3,
	})

	show := func(title, q string) {
		fmt.Println("\n--", title)
		out, err := eng.Query(q)
		if err != nil {
			log.Fatal(title, ": ", err)
		}
		fmt.Print(out)
		for _, p := range eng.Plan {
			fmt.Println("plan:", p)
		}
	}

	show("Q1: risk and backer of fd0 if UK-based", `
		select risk, company
		from product e-join G <company, country> as T
		where T.pid = 'fd0' and T.country = 'UK'`)

	show("Q2: does Ada (cid04) share an invested company with Bob (cid02)?", `
		select T1.cid, T2.cid, T1.company
		from customer e-join G <company> as T1,
		     customer e-join G <company> as T2
		where T1.cid = 'cid04' and T2.cid = 'cid02' and T2.credit = 'good'
		  and T1.company = T2.company`)

	show("Q3: good-credit customers within 3 hops of Bob (cid02)", `
		select customer.cid, customer2.cid, customer2.credit
		from customer l-join <G> customer as customer2
		where customer.cid = 'cid02' and customer2.credit = 'good'
		  and not customer2.cid = 'cid02'`)
}

// buildWorld constructs a Figure-1-style database and graph: customers
// invest in products, companies issue products and are registered in
// countries.
func buildWorld() (*semjoin.Graph, *semjoin.Relation, *semjoin.Relation, map[string]semjoin.VertexID) {
	g := semjoin.NewGraph()
	companies := []string{"Acme Corp", "Globex Corp", "G&L", "Umbrella Corp"}
	countries := []string{"UK", "US", "Germany", "France"}
	categories := []string{"Funds", "Stocks"}
	risks := []string{"low", "medium", "high"}
	credits := []string{"good", "fair"}

	countryV := make([]semjoin.VertexID, len(countries))
	for i, c := range countries {
		countryV[i] = g.AddVertex(c, "country")
	}
	companyV := make([]semjoin.VertexID, len(companies))
	for i, c := range companies {
		companyV[i] = g.AddVertex(c, "company")
		g.AddEdge(companyV[i], "registered_in", countryV[i%len(countries)])
	}
	categoryV := make([]semjoin.VertexID, len(categories))
	for i, c := range categories {
		categoryV[i] = g.AddVertex(c, "category")
	}

	products := semjoin.NewRelation(semjoin.NewSchema("product", "pid",
		semjoin.Attribute{Name: "pid"}, semjoin.Attribute{Name: "name"},
		semjoin.Attribute{Name: "type"}, semjoin.Attribute{Name: "price"},
		semjoin.Attribute{Name: "risk"},
	))
	truth := map[string]semjoin.VertexID{}
	const nProducts = 16
	prodV := make([]semjoin.VertexID, nProducts)
	for i := 0; i < nProducts; i++ {
		pid := fmt.Sprintf("fd%d", i)
		name := fmt.Sprintf("plan %02d", i)
		v := g.AddVertex(name, "product")
		prodV[i] = v
		g.AddEdge(companyV[i%len(companies)], "issues", v)
		g.AddEdge(v, "category", categoryV[i%len(categories)])
		products.InsertVals(semjoin.S(pid), semjoin.S(name),
			semjoin.S(categories[i%len(categories)]), semjoin.I(int64(80+10*(i%5))),
			semjoin.S(risks[i%len(risks)]))
		truth[pid] = v
	}

	customers := semjoin.NewRelation(semjoin.NewSchema("customer", "cid",
		semjoin.Attribute{Name: "cid"}, semjoin.Attribute{Name: "name"},
		semjoin.Attribute{Name: "credit"}, semjoin.Attribute{Name: "bal"},
	))
	names := []string{"Bob", "Bob", "Guy", "Ada", "Eve", "Joe", "Ann", "Sam", "Ida", "Max", "Lia", "Tom"}
	for i, name := range names {
		cid := fmt.Sprintf("cid%02d", i+1)
		v := g.AddVertex(fmt.Sprintf("%s %02d", name, i+1), "person")
		g.AddEdge(v, "invest", prodV[i%nProducts])
		g.AddEdge(v, "invest", prodV[(i*5+2)%nProducts])
		customers.InsertVals(semjoin.S(cid), semjoin.S(name),
			semjoin.S(credits[(i+1)%2]), semjoin.I(int64(50000+i*25000)))
		truth[cid] = v
	}
	return g, customers, products, truth
}
