// Incremental: IncExt (§III-B) maintaining an extracted relation under a
// stream of graph updates. We extract once with RExt, then apply batches
// of ΔG — an edge rewire and random churn — and show that (a) affected
// entities are re-extracted while the rest of the relation is reused,
// and (b) a keyword update re-ranks the discovered pattern clusters
// without re-clustering.
//
//	go run ./examples/incremental
package main

import (
	"fmt"
	"log"
	"sort"

	"semjoin"
)

func main() {
	c := semjoin.GenerateCollection("MovKB", semjoin.DatasetConfig{Entities: 40, Seed: 7})
	g := c.G
	movies, _ := c.Drop("movie", []string{"studio", "country", "language"})
	models := semjoin.TrainModels(g, 6, 7)
	matcher := c.Oracle("movie")

	ex := semjoin.NewExtractor(g, models, semjoin.RExtConfig{
		K: 3, H: 30, Keywords: []string{"studio", "country"}, Seed: 7,
	})
	dg, err := ex.Run(movies, matcher.Match(movies, g))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial extraction: %s, %d rows\n", dg.Schema, dg.Len())
	printSample(ex, 4)

	// Update 1: a studio relocates to another country.
	studio := semjoin.FindVertex(g, "Acme Corp")
	oldC := semjoin.FindVertex(g, "UK")
	newC := semjoin.FindVertex(g, "Japan")
	if newC == semjoin.NoVertex {
		newC = g.AddVertex("Japan", "country")
	}
	batch := semjoin.GraphBatch{
		{Op: semjoin.DeleteEdge, Edge: semjoin.Edge{From: studio, Label: "based_in", To: oldC}},
		{Op: semjoin.InsertEdge, Edge: semjoin.Edge{From: studio, Label: "based_in", To: newC}},
	}
	stats, err := ex.ApplyGraphUpdate(batch, matcher)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nΔG #1 (Acme Corp relocates UK→Japan): touched %d vertices, re-extracted %d entities, dropped %d rows\n",
		stats.Touched, stats.Affected, stats.Removed)
	printSample(ex, 4)

	// Update 2: random churn — equal insertions and deletions.
	churn := semjoin.RandomGraphBatch(g, 13, 10)
	stats, err = ex.ApplyGraphUpdate(churn, matcher)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nΔG #2 (random churn of 10 edges): re-extracted %d entities\n", stats.Affected)

	// Keyword update: the user's interest shifts to language — only the
	// ranking/selection step reruns; retained attributes copy their
	// existing column.
	dg2, err := ex.UpdateKeywords([]string{"studio", "language"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkeyword update {studio, country} → {studio, language}: schema now %s\n", dg2.Schema)
	printSample(ex, 4)
}

func printSample(ex *semjoin.Extractor, n int) {
	dg := ex.Result()
	rows := append([]semjoin.Tuple(nil), dg.Tuples...)
	sort.Slice(rows, func(i, j int) bool { return rows[i][0].Int() < rows[j][0].Int() })
	sample := semjoin.NewRelation(dg.Schema)
	for i := 0; i < n && i < len(rows); i++ {
		sample.Insert(rows[i])
	}
	fmt.Print(sample)
}
