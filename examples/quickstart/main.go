// Quickstart: enrich a relation with attributes extracted from a
// knowledge graph via a semantic join, in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"semjoin"
)

func main() {
	// A tiny typed knowledge graph: companies issue products and are
	// registered in countries.
	g := semjoin.NewGraph()
	uk := g.AddVertex("UK", "country")
	us := g.AddVertex("US", "country")
	acme := g.AddVertex("Acme Corp", "company")
	globex := g.AddVertex("Globex Corp", "company")
	g.AddEdge(acme, "registered_in", uk)
	g.AddEdge(globex, "registered_in", us)

	products := semjoin.NewRelation(semjoin.NewSchema("product", "pid",
		semjoin.Attribute{Name: "pid"},
		semjoin.Attribute{Name: "name"},
	))
	truth := map[string]semjoin.VertexID{}
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("gadget %02d", i)
		v := g.AddVertex(name, "product")
		issuer := acme
		if i%2 == 1 {
			issuer = globex
		}
		g.AddEdge(issuer, "issues", v)
		pid := fmt.Sprintf("p%02d", i)
		products.InsertVals(semjoin.S(pid), semjoin.S(name))
		truth[pid] = v
	}

	// Train the sequence model Mρ and word embedder Me on random walks
	// over the graph — fully unsupervised.
	models := semjoin.TrainModels(g, 8, 1)

	// HER: here a ground-truth oracle; semjoin.NewSimilarityMatcher gives
	// a JedAI-style matcher for real data.
	matcher := semjoin.NewOracleMatcher(truth)

	// The semantic join: extract `company` and `country` for every
	// product — attributes that exist nowhere in the relation.
	out, err := semjoin.EnrichmentJoin(products, g, models, matcher,
		[]string{"company", "country"}, semjoin.RExtConfig{K: 3, H: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(out)
}
