// FakeNews: the paper's Exp-1 case study q2 — "find domain keywords used
// by fake news authors" — over the generated FakeNews collection. An
// author's topic is not stored in the fakenews relation; it lives two
// hops away in topicKG (author →wrote→ article →about→ topic), so the
// query needs an enrichment join whose extraction scheme discovers the
// wrote/about path pattern.
//
//	go run ./examples/fakenews
package main

import (
	"fmt"
	"log"

	"semjoin"
)

func main() {
	c := semjoin.GenerateCollection("FakeNews", semjoin.DatasetConfig{Entities: 48, Seed: 7})
	g := c.G
	fmt.Printf("FakeNews: %d authors; topicKG %d vertices / %d edges\n",
		c.Main().Len(), g.NumVertices(), g.NumEdges())

	// The relation as a newsroom would store it: no topic column.
	newsDB, truthCols := c.Drop("fakenews", []string{"topic", "country"})

	models := semjoin.TrainModels(g, 6, 7)
	matcher := c.Oracle("fakenews")
	mat, err := semjoin.BuildMaterialized(g, models, map[string]semjoin.BaseSpec{
		"fakenews": {D: newsDB, AR: []string{"topic", "country"}, Matcher: matcher},
	}, semjoin.RExtConfig{K: 3, H: 30, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	eng := semjoin.NewEngine(&semjoin.Catalog{
		Relations: map[string]*semjoin.Relation{"fakenews": newsDB},
		Graphs:    map[string]*semjoin.Graph{"G": g},
		Models:    models, Matcher: matcher, Mat: mat, K: 3,
	})

	// q2: the best topic per author, plus how authors distribute over
	// topics.
	out, err := eng.Query(`
		select author, topic from fakenews e-join G <topic> as T
		order by author limit 10`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nq2 — extracted author topics (first 10):")
	fmt.Print(out)

	agg, err := eng.Query(`
		select topic, count(*) as authors
		from fakenews e-join G <topic> as T
		group by topic order by authors desc, topic`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntopic distribution:")
	fmt.Print(agg)

	// Score against ground truth.
	full, err := eng.Query(`select author, topic from fakenews e-join G <topic> as T`)
	if err != nil {
		log.Fatal(err)
	}
	hits := 0
	for _, t := range full.Tuples {
		if full.Get(t, "topic").Str() == truthCols["topic"][full.Get(t, "author").Str()] {
			hits++
		}
	}
	fmt.Printf("\naccuracy vs ground truth: %d/%d\n", hits, full.Len())
}
