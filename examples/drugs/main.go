// Drugs: the paper's Exp-1 case study q1 — "find drugs that are for the
// same disease but in conflict with each other" — over the generated
// Drugs collection (drug + interact relations, drugKG-like graph).
//
// The query needs semantic joins because the `disease` attribute is not
// in the drug relation: it must be extracted from the graph, and the
// graph deliberately contains misleading paths (every drug reaches
// diseases through drug→has_efficacy→relieves→^has_symptom chains even
// when it does not treat them — the Spinosad vs Dimenhydrinate phenomenon
// of §V Exp-1). RExt's learned path selection and clustering tell the
// treats pattern from the symptom-overlap pattern.
//
//	go run ./examples/drugs
package main

import (
	"fmt"
	"log"

	"semjoin"
)

func main() {
	c := semjoin.GenerateCollection("Drugs", semjoin.DatasetConfig{Entities: 48, Seed: 7})
	g := c.G
	fmt.Printf("Drugs: %d drugs, %d interactions; graph %d vertices / %d edges\n",
		c.Main().Len(), c.Rels["interact"].Len(), g.NumVertices(), g.NumEdges())

	// The queryable database holds only what a pharmacy DB would: ids and
	// names. Disease/class/efficacy live in the knowledge graph.
	drugDB, truthCols := c.Drop("drug", []string{"class", "disease", "efficacy"})

	models := semjoin.TrainModels(g, 6, 7)
	matcher := c.Oracle("drug")
	mat, err := semjoin.BuildMaterialized(g, models, map[string]semjoin.BaseSpec{
		"drug": {D: drugDB, AR: []string{"class", "disease", "efficacy"}, Matcher: matcher},
	}, semjoin.RExtConfig{K: 3, H: 30, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	eng := semjoin.NewEngine(&semjoin.Catalog{
		Relations: map[string]*semjoin.Relation{"drug": drugDB, "interact": c.Rels["interact"]},
		Graphs:    map[string]*semjoin.Graph{"G": g},
		Models:    models, Matcher: matcher, Mat: mat, K: 3,
	})

	// q1: conflicting (type = -1) drug pairs whose extracted diseases
	// coincide.
	out, err := eng.Query(`
		select T1.name, T2.name, T1.disease
		from drug e-join G <disease> as T1,
		     drug e-join G <disease> as T2,
		     interact
		where interact.cas1 = T1.cas and interact.cas2 = T2.cas
		  and interact.type = -1 and T1.disease = T2.disease
		  and not T1.cas = T2.cas
		order by T1.disease, T1.name limit 12`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nq1 — conflicting drugs for the same disease:")
	fmt.Print(out)
	for _, p := range eng.Plan {
		fmt.Println("plan:", p)
	}

	// The Spinosad discrimination: its extracted disease must be the one
	// it treats, not one merely sharing a symptom through its efficacy.
	sp, err := eng.Query(`
		select name, disease from drug e-join G <disease> as T
		where T.name = 'Spinosad'`)
	if err != nil {
		log.Fatal(err)
	}
	want := truthCols["disease"]["CAS-0000"]
	got := ""
	if sp.Len() > 0 {
		got = sp.Get(sp.Tuples[0], "disease").Str()
	}
	fmt.Printf("\nSpinosad: extracted disease %q, ground truth %q — %s\n",
		got, want, verdict(got == want))
}

func verdict(ok bool) string {
	if ok {
		return "correctly discriminated from symptom-linked diseases"
	}
	return "MISMATCH"
}
