package semjoin

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadePersistence(t *testing.T) {
	g, products, truth := buildPublicWorld()
	models := TrainModels(g, 6, 1)

	var mbuf bytes.Buffer
	if err := SaveModels(&mbuf, models); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModels(bytes.NewReader(mbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Discover a scheme with the original, extract with the loaded pair.
	ex := NewExtractor(g, models, RExtConfig{K: 3, H: 8, Keywords: []string{"company"}})
	matches := NewOracleMatcher(truth).Match(products, g)
	if _, err := ex.Run(products, matches); err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := SaveScheme(&sbuf, ex.Scheme()); err != nil {
		t.Fatal(err)
	}
	scheme, err := LoadScheme(bytes.NewReader(sbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ex2 := NewExtractor(g, loaded, RExtConfig{K: 3, H: 8, Keywords: []string{"company"}})
	dg, err := ex2.ExtractWithScheme(products, scheme, matches)
	if err != nil {
		t.Fatal(err)
	}
	if dg.Len() != ex.Result().Len() {
		t.Fatalf("reloaded extraction rows = %d, want %d", dg.Len(), ex.Result().Len())
	}

	var rbuf bytes.Buffer
	if err := SaveRelation(&rbuf, dg); err != nil {
		t.Fatal(err)
	}
	back, err := LoadRelation(bytes.NewReader(rbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != dg.Len() {
		t.Fatal("relation round trip changed rows")
	}
}

func TestFacadeCSVAndTSV(t *testing.T) {
	r, err := LoadRelationCSV(strings.NewReader("id,name\n1,alpha\n2,beta\n"), "t", "id")
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("rows = %d", r.Len())
	}
	var buf bytes.Buffer
	if err := WriteRelationCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "alpha") {
		t.Fatal("csv output missing data")
	}

	g, products, _ := buildPublicWorld()
	_ = products
	var gbuf bytes.Buffer
	if err := WriteGraphTSV(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	g2, ids, err := LoadGraphTSV(bytes.NewReader(gbuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("graph round trip changed shape")
	}
	if len(ids) != g.NumVertices() {
		t.Fatal("id mapping incomplete")
	}
}
