package semjoin

// Tests of the public facade: everything a downstream user touches is
// exercised through the exported surface only.

import (
	"fmt"
	"strings"
	"testing"
)

// buildPublicWorld assembles a small typed world through the facade.
func buildPublicWorld() (*Graph, *Relation, map[string]VertexID) {
	g := NewGraph()
	uk := g.AddVertex("UK", "country")
	us := g.AddVertex("US", "country")
	acme := g.AddVertex("Acme Corp", "company")
	globex := g.AddVertex("Globex Corp", "company")
	g.AddEdge(acme, "registered_in", uk)
	g.AddEdge(globex, "registered_in", us)

	products := NewRelation(NewSchema("product", "pid",
		Attribute{Name: "pid"}, Attribute{Name: "name"}))
	truth := map[string]VertexID{}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("gadget %02d", i)
		v := g.AddVertex(name, "product")
		issuer := acme
		if i%2 == 1 {
			issuer = globex
		}
		g.AddEdge(issuer, "issues", v)
		pid := fmt.Sprintf("p%02d", i)
		products.InsertVals(S(pid), S(name))
		truth[pid] = v
	}
	return g, products, truth
}

func TestFacadeEnrichmentJoin(t *testing.T) {
	g, products, truth := buildPublicWorld()
	models := TrainModels(g, 8, 1)
	out, err := EnrichmentJoin(products, g, models, NewOracleMatcher(truth),
		[]string{"company", "country"}, RExtConfig{K: 3, H: 8})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != products.Len() {
		t.Fatalf("rows = %d", out.Len())
	}
	hits := 0
	for _, tp := range out.Tuples {
		pid := out.Get(tp, "pid").Str()
		want := "Acme Corp"
		if strings.HasSuffix(pid, "1") || strings.HasSuffix(pid, "3") ||
			strings.HasSuffix(pid, "5") || strings.HasSuffix(pid, "7") || strings.HasSuffix(pid, "9") {
			want = "Globex Corp"
		}
		if out.Get(tp, "company").Str() == want {
			hits++
		}
	}
	if hits < 9 {
		t.Fatalf("company accuracy %d/10", hits)
	}
}

func TestFacadeSimilarityMatcher(t *testing.T) {
	g, products, truth := buildPublicWorld()
	matches := NewSimilarityMatcher(HERConfig{TypeFilter: "product"}).Match(products, g)
	if len(matches) != products.Len() {
		t.Fatalf("matches = %d", len(matches))
	}
	for _, m := range matches {
		if truth[m.TID.String()] != m.Vertex {
			t.Fatalf("similarity HER mismatched %s", m.TID)
		}
	}
}

func TestFacadeLinkJoin(t *testing.T) {
	g, products, truth := buildPublicWorld()
	// Products of the same issuer are 2 hops apart.
	out, err := LinkJoin(products, products, g, NewOracleMatcher(truth), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no links")
	}
}

func TestFacadeGSQLEngine(t *testing.T) {
	g, products, truth := buildPublicWorld()
	models := TrainModels(g, 8, 1)
	matcher := NewOracleMatcher(truth)
	mat, err := BuildMaterialized(g, models, map[string]BaseSpec{
		"product": {D: products, AR: []string{"company", "country"}, Matcher: matcher},
	}, RExtConfig{K: 3, H: 8})
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(&Catalog{
		Relations: map[string]*Relation{"product": products},
		Graphs:    map[string]*Graph{"G": g},
		Models:    models, Matcher: matcher, Mat: mat, K: 3,
	})
	out, err := eng.Query(`
		select pid, company from product e-join G <company, country> as T
		where T.country = 'UK' order by pid`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 5 {
		t.Fatalf("UK products = %d, want 5\n%v", out.Len(), out)
	}
	q, err := ParseGSQL(`select * from product e-join G <company> as T`)
	if err != nil {
		t.Fatal(err)
	}
	if !eng.WellBehaved(q) {
		t.Fatal("base-table e-join with A ⊆ AR should be well-behaved")
	}
}

func TestFacadeGraphUpdatesAndIncExt(t *testing.T) {
	g, products, truth := buildPublicWorld()
	models := TrainModels(g, 8, 1)
	matcher := NewOracleMatcher(truth)
	ex := NewExtractor(g, models, RExtConfig{K: 3, H: 8, Keywords: []string{"company"}})
	if _, err := ex.Run(products, matcher.Match(products, g)); err != nil {
		t.Fatal(err)
	}
	acme := FindVertex(g, "Acme Corp")
	p0 := truth["p00"]
	globex := FindVertex(g, "Globex Corp")
	stats, err := ex.ApplyGraphUpdate(GraphBatch{
		{Op: DeleteEdge, Edge: Edge{From: acme, Label: "issues", To: p0}},
		{Op: InsertEdge, Edge: Edge{From: globex, Label: "issues", To: p0}},
	}, matcher)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Affected == 0 {
		t.Fatal("update should affect entities")
	}
	dg := ex.Result()
	for _, tp := range dg.Tuples {
		if VertexID(dg.Get(tp, "vid").Int()) == p0 {
			if got := dg.Get(tp, "company").Str(); got != "Globex Corp" {
				t.Fatalf("p00 company after update = %q", got)
			}
		}
	}
}

func TestFacadeCollections(t *testing.T) {
	c := GenerateCollection("Movie", DatasetConfig{Entities: 20, Seed: 3})
	if c == nil || c.Main().Len() != 20 {
		t.Fatal("collection generation failed")
	}
	if GenerateCollection("NoSuch", DatasetConfig{}) != nil {
		t.Fatal("unknown collection should be nil")
	}
	reduced, truthCols := c.Drop("movie", []string{"director"})
	if reduced.Schema.Has("director") || len(truthCols["director"]) != 20 {
		t.Fatal("Drop broken via facade")
	}
}

func TestFacadeFindVertex(t *testing.T) {
	g, _, _ := buildPublicWorld()
	if FindVertex(g, "UK") == NoVertex {
		t.Fatal("UK should be found")
	}
	if FindVertex(g, "Atlantis") != NoVertex {
		t.Fatal("Atlantis should not be found")
	}
}

func TestFacadeRandomGraphBatch(t *testing.T) {
	g, _, _ := buildPublicWorld()
	b := RandomGraphBatch(g, 5, 6)
	if len(b) != 6 {
		t.Fatalf("batch = %d", len(b))
	}
	b.Apply(g)
}

func TestFacadeValues(t *testing.T) {
	if S("x").Str() != "x" || I(3).Int() != 3 || F(2.5).Float() != 2.5 || !B(true).Bool() {
		t.Fatal("value constructors broken")
	}
	if !Null.IsNull() {
		t.Fatal("Null should be null")
	}
}
