package prop

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"semjoin/internal/graph"
)

// Oracle is one property of the system. Check must be deterministic in
// (seed, stream): the shrinker and the PROP_SEED replay workflow both
// rely on re-running it with identical inputs reproducing the verdict.
// Stream-less oracles (StreamLen == 0) receive a nil stream.
type Oracle struct {
	Name      string
	StreamLen int
	Check     func(seed int64, stream Stream) error
}

// Counterexample is a failing (seed, stream) pair, minimised by the
// shrinker.
type Counterexample struct {
	Seed   int64
	Stream Stream // shrunk; nil for stream-less oracles
	Err    error  // the property violation the shrunk input reproduces
	Checks int    // Check invocations the shrinker spent
}

// Hunt runs the oracle on each seed in order and returns the first
// failure, shrunk, or nil when every seed passes.
func Hunt(o Oracle, seeds []int64) *Counterexample {
	for _, seed := range seeds {
		var stream Stream
		if o.StreamLen > 0 {
			stream = NewWorkload(seed).GenStream(o.StreamLen)
		}
		err := o.Check(seed, stream)
		if err == nil {
			continue
		}
		ce := &Counterexample{Seed: seed, Stream: stream, Err: err}
		if o.StreamLen > 0 {
			ce.shrink(o)
		}
		return ce
	}
	return nil
}

// shrinkBudget caps the Check invocations one shrink may spend, so a
// pathological failure still reports promptly.
const shrinkBudget = 200

// shrink minimises c.Stream while the failure reproduces: first whole
// steps are removed delta-debugging style (halving chunk sizes, then
// singles), then individual updates inside surviving graph batches.
// Relation steps carry positional selectors and graph batches skip
// operations on dead endpoints, so any sub-stream remains applicable.
func (c *Counterexample) shrink(o Oracle) {
	fails := func(s Stream) error {
		c.Checks++
		return o.Check(c.Seed, s)
	}
	stream := c.Stream
	for chunk := (len(stream) + 1) / 2; chunk >= 1; chunk /= 2 {
		for i := 0; i+chunk <= len(stream) && c.Checks < shrinkBudget; {
			cand := append(append(Stream{}, stream[:i]...), stream[i+chunk:]...)
			if err := fails(cand); err != nil {
				stream = cand
				c.Err = err
			} else {
				i += chunk
			}
		}
	}
	for si := 0; si < len(stream); si++ {
		if stream[si].Kind != StepGraph {
			continue
		}
		for i := 0; i < len(stream[si].Batch) && c.Checks < shrinkBudget; {
			b := stream[si].Batch
			cand := append(Stream{}, stream...)
			cand[si].Batch = append(append(graph.Batch{}, b[:i]...), b[i+1:]...)
			if err := fails(cand); err != nil {
				stream = cand
				c.Err = err
			} else {
				i++
			}
		}
	}
	c.Stream = stream
}

// Report renders the counterexample with its one-line replay recipe.
// testName is the `go test -run` pattern that reaches the oracle.
func (c *Counterexample) Report(testName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "property violated: %v\n", c.Err)
	if c.Stream != nil {
		fmt.Fprintf(&b, "shrunk to %d steps / %d graph updates (%d checks spent):\n%s\n",
			len(c.Stream), c.Stream.Updates(), c.Checks, c.Stream)
	}
	fmt.Fprintf(&b, "replay: PROP_SEED=%d go test ./internal/prop -run %s -prop.rounds=1\n",
		c.Seed, testName)
	return b.String()
}

// SaveArtifact writes the report to $PROP_ARTIFACT_DIR (if set) so CI
// can upload failing counterexamples; it returns the file path, or ""
// when the variable is unset.
func (c *Counterexample) SaveArtifact(testName string) (string, error) {
	dir := os.Getenv("PROP_ARTIFACT_DIR")
	if dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.txt", testName, c.Seed))
	return path, os.WriteFile(path, []byte(c.Report(testName)), 0o644)
}
