package prop

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"semjoin/internal/core"
	"semjoin/internal/graph"
	"semjoin/internal/gsql/difftest"
	"semjoin/internal/rel"
	"semjoin/internal/wal"
)

// crashTarget is the update-stream surface shared by the durable store
// under test and the in-memory control run.
type crashTarget interface {
	ApplyGraphUpdate(delta graph.Batch) (core.IncStats, error)
	ApplyRelationUpdate(d *rel.Relation) (core.IncStats, error)
	UpdateKeywords(keywords []string) (*rel.Relation, error)
}

// directBase drives a plain materialisation through the same surface,
// mirroring the bookkeeping DurableStore performs around the extractor.
type directBase struct{ b *core.BaseMaterialization }

func (d *directBase) ApplyGraphUpdate(delta graph.Batch) (core.IncStats, error) {
	return d.b.Extractor.ApplyGraphUpdate(delta, d.b.Spec.Matcher)
}

func (d *directBase) ApplyRelationUpdate(r *rel.Relation) (core.IncStats, error) {
	st, err := d.b.Extractor.ApplyRelationUpdate(r, d.b.Spec.Matcher)
	if err == nil {
		d.b.Spec.D = r
	}
	return st, err
}

func (d *directBase) UpdateKeywords(keywords []string) (*rel.Relation, error) {
	out, err := d.b.Extractor.UpdateKeywords(keywords)
	if err == nil {
		d.b.Extracted = out
	}
	return out, err
}

// streamDriver applies stream steps to a target, tracking ΔD row
// membership. The membership flags are a pure function of the steps
// applied, so a driver survives a crash of its target: swap the target
// and keep going.
type streamDriver struct {
	target  crashTarget
	master  *rel.Relation
	present []bool
}

func newStreamDriver(t crashTarget, master *rel.Relation) *streamDriver {
	p := make([]bool, master.Len())
	for i := range p {
		p[i] = true
	}
	return &streamDriver{target: t, master: master, present: p}
}

func (d *streamDriver) step(i int, st Step) error {
	switch st.Kind {
	case StepGraph:
		if _, err := d.target.ApplyGraphUpdate(st.Batch); err != nil {
			return fmt.Errorf("harness: step %d ApplyGraphUpdate: %w", i, err)
		}
	case StepRelation:
		applyRelStep(d.present, st)
		if _, err := d.target.ApplyRelationUpdate(subsetRelation(d.master, d.present)); err != nil {
			return fmt.Errorf("harness: step %d ApplyRelationUpdate: %w", i, err)
		}
	case StepKeywords:
		if _, err := d.target.UpdateKeywords(st.Keywords); err != nil {
			return fmt.Errorf("harness: step %d UpdateKeywords(%v): %w", i, st.Keywords, err)
		}
	}
	return nil
}

// productBase materialises just the product base for the workload —
// the durability domain the crash oracle runs against.
func productBase(w *Workload) (*core.BaseMaterialization, error) {
	m, err := core.BuildMaterialized(w.G, w.Models, map[string]core.BaseSpec{
		"product": {D: w.Products, AR: w.AR, Matcher: w.Matcher},
	}, w.Cfg)
	if err != nil {
		return nil, err
	}
	return m.Base("product"), nil
}

func graphImage(g *graph.Graph) ([]byte, error) {
	var buf bytes.Buffer
	err := g.Save(&buf)
	return buf.Bytes(), err
}

// CheckCrashRecovery is oracle 7: durability must be invisible to
// semantics. A seeded update stream runs against a write-ahead-logged
// store that crashes — via the MemFS power-loss model, which discards
// everything not fsynced — at a seed-chosen record boundary, recovers
// by WAL replay onto pristine boot state, and then finishes the
// stream. The final graph, extracted relation and reference relation
// must equal an uninterrupted in-memory run of the identical stream.
func CheckCrashRecovery(seed int64, stream Stream) error {
	ctx := context.Background()
	m := 0
	if len(stream) > 0 {
		m = rand.New(rand.NewSource(seed ^ 0xc4a54)).Intn(len(stream) + 1)
	}

	// Durable run up to the crash point. SyncAlways means every
	// acknowledged step must survive the crash bit for bit.
	mem := wal.NewMemFS()
	w := NewWorkload(seed)
	base, err := productBase(w)
	if err != nil {
		return fmt.Errorf("harness: materialize: %w", err)
	}
	st, err := core.OpenDurable(ctx, "db",
		core.DurableBoot{Base: base, Graph: w.G, Models: w.Models, Cfg: w.Cfg},
		core.DurableOptions{Policy: wal.SyncAlways, FS: mem})
	if err != nil {
		return fmt.Errorf("harness: open durable: %w", err)
	}
	drv := newStreamDriver(st, w.Products)
	for i := 0; i < m; i++ {
		if err := drv.step(i, stream[i]); err != nil {
			return err
		}
	}
	mem.Crash()

	// Recovery: pristine boot state (a workload rebuild is bit-identical)
	// plus WAL replay must reconstruct the pre-crash state, then carry
	// the rest of the stream.
	w2 := NewWorkload(seed)
	base2, err := productBase(w2)
	if err != nil {
		return fmt.Errorf("harness: rematerialize: %w", err)
	}
	st2, err := core.OpenDurable(ctx, "db",
		core.DurableBoot{Base: base2, Graph: w2.G, Models: w2.Models, Cfg: w2.Cfg},
		core.DurableOptions{FS: mem})
	if err != nil {
		return fmt.Errorf("recovery after crash at step %d failed: %w", m, err)
	}
	if skipped := st2.ReplaySkipped(); skipped != 0 {
		return fmt.Errorf("recovery skipped %d replay records", skipped)
	}
	drv.target = st2
	for i := m; i < len(stream); i++ {
		if err := drv.step(i, stream[i]); err != nil {
			return err
		}
	}

	// Uninterrupted control run of the identical stream.
	wc := NewWorkload(seed)
	basec, err := productBase(wc)
	if err != nil {
		return fmt.Errorf("harness: control materialize: %w", err)
	}
	ctl := newStreamDriver(&directBase{b: basec}, wc.Products)
	for i, s := range stream {
		if err := ctl.step(i, s); err != nil {
			return err
		}
	}

	gGot, err := graphImage(st2.Graph())
	if err != nil {
		return fmt.Errorf("harness: save recovered graph: %w", err)
	}
	gWant, err := graphImage(wc.G)
	if err != nil {
		return fmt.Errorf("harness: save control graph: %w", err)
	}
	if !bytes.Equal(gGot, gWant) {
		return fmt.Errorf("crash at step %d/%d: recovered graph differs from uninterrupted run", m, len(stream))
	}
	if d := difftest.Diff(st2.Base().Extracted, basec.Extracted); d != "" {
		return fmt.Errorf("crash at step %d/%d: extracted relation diverged: %s", m, len(stream), d)
	}
	if d := difftest.Diff(st2.Base().Extractor.Result(), basec.Extractor.Result()); d != "" {
		return fmt.Errorf("crash at step %d/%d: extractor result diverged: %s", m, len(stream), d)
	}
	if d := difftest.Diff(st2.Base().Spec.D, basec.Spec.D); d != "" {
		return fmt.Errorf("crash at step %d/%d: reference relation diverged: %s", m, len(stream), d)
	}
	return nil
}
