package prop

import (
	"flag"
	"os"
	"strconv"
	"strings"
	"testing"
)

// propRounds is the number of seeds each property checks. The default
// keeps `go test ./internal/prop` comfortably inside a CI budget even
// under -race; raise it for soak runs:
//
//	go test ./internal/prop -prop.rounds=50
var propRounds = flag.Int("prop.rounds", 3, "seeds per property (raise for long mode)")

// seedsFor resolves which seeds to run: PROP_SEED=<n> replays exactly
// that seed (the recipe a failure report prints), otherwise a fixed
// deterministic ladder of *propRounds seeds.
func seedsFor(t *testing.T) []int64 {
	if env := os.Getenv("PROP_SEED"); env != "" {
		v, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("PROP_SEED=%q is not an integer: %v", env, err)
		}
		t.Logf("replaying PROP_SEED=%d", v)
		return []int64{v}
	}
	out := make([]int64, *propRounds)
	for i := range out {
		out[i] = int64(100 + i)
	}
	return out
}

// runOracle drives one oracle through Hunt, logging the seed set (so
// any run can be replayed) and failing with the shrunk, replayable
// counterexample report.
func runOracle(t *testing.T, o Oracle) {
	seeds := seedsFor(t)
	t.Logf("prop: %s over seeds %v (replay one with: PROP_SEED=<n> go test ./internal/prop -run %s -prop.rounds=1)",
		o.Name, seeds, t.Name())
	ce := Hunt(o, seeds)
	if ce == nil {
		return
	}
	if path, err := ce.SaveArtifact(t.Name()); err != nil {
		t.Logf("could not save counterexample artifact: %v", err)
	} else if path != "" {
		t.Logf("counterexample saved to %s", path)
	}
	t.Fatal(ce.Report(t.Name()))
}

// TestIncExtOracle checks oracle 1: IncExt over random ΔG/ΔD/keyword
// streams equals fresh extraction on the final state.
func TestIncExtOracle(t *testing.T) {
	runOracle(t, Oracle{Name: "incext-vs-fresh", StreamLen: 8, Check: CheckIncExt})
}

// TestExecEquivalenceOracle checks oracle 2: serial, parallel,
// cache-cold and cache-warm executions agree on every generated query.
func TestExecEquivalenceOracle(t *testing.T) {
	runOracle(t, Oracle{Name: "exec-equivalence", Check: CheckExec})
}

// TestRewriteOracle checks oracle 3: gSQL e-join/l-join rewrites match
// direct evaluation of the join semantics outside the engine.
func TestRewriteOracle(t *testing.T) {
	runOracle(t, Oracle{Name: "rewrite-vs-direct", Check: CheckRewrite})
}

// TestPersistOracle checks oracle 4: persistence round-trips are
// behaviour-preserving.
func TestPersistOracle(t *testing.T) {
	runOracle(t, Oracle{Name: "persist-round-trip", Check: CheckPersist})
}

// TestVectorizedOracle checks oracle 5: the tuple-at-a-time engine and
// the vectorized batch engine (serial and parallel) agree on every
// generated query.
func TestVectorizedOracle(t *testing.T) {
	runOracle(t, Oracle{Name: "row-vs-batch", Check: CheckVectorized})
}

// TestConcurrentOracle checks oracle 6: N engines with divergent
// session settings racing over one catalog stay bag-equal to a lone
// serial engine on every generated query.
func TestConcurrentOracle(t *testing.T) {
	runOracle(t, Oracle{Name: "concurrent-vs-serial", Check: CheckConcurrent})
}

// TestCrashRecoveryOracle checks oracle 7: a WAL-backed store that
// crashes at a seed-chosen record boundary and recovers must finish an
// update stream in the exact state of an uninterrupted run.
func TestCrashRecoveryOracle(t *testing.T) {
	runOracle(t, Oracle{Name: "crash-recovery", StreamLen: 6, Check: CheckCrashRecovery})
}

// TestForcedViolationIsCaughtAndShrunk is the harness's own regression
// test: with IncExt's delete maintenance deliberately broken
// (CheckIncExtBroken), the oracle must catch the divergence on some
// seed, shrink the stream, and emit a replayable PROP_SEED recipe. If
// this test fails, the oracle bank has lost its teeth.
func TestForcedViolationIsCaughtAndShrunk(t *testing.T) {
	o := Oracle{Name: "incext-broken-deletes", StreamLen: 8, Check: CheckIncExtBroken}
	// The fault only fires on streams that delete (or unmatch) an
	// extracted entity vertex; scan a bounded seed range for one.
	seeds := make([]int64, 30)
	for i := range seeds {
		seeds[i] = int64(500 + i)
	}
	ce := Hunt(o, seeds)
	if ce == nil {
		t.Fatalf("broken delete maintenance was not caught on any of %d seeds", len(seeds))
	}
	if len(ce.Stream) == 0 {
		t.Fatalf("counterexample shrunk to an empty stream; the failure cannot depend on no updates")
	}
	if len(ce.Stream) > o.StreamLen {
		t.Fatalf("shrinking grew the stream: %d > %d", len(ce.Stream), o.StreamLen)
	}
	// Determinism: the shrunk counterexample must still reproduce.
	if err := o.Check(ce.Seed, ce.Stream); err == nil {
		t.Fatalf("shrunk counterexample does not reproduce (seed %d, stream:\n%s)", ce.Seed, ce.Stream)
	}
	report := ce.Report(t.Name())
	if !strings.Contains(report, "PROP_SEED=") {
		t.Fatalf("report lacks the PROP_SEED replay recipe:\n%s", report)
	}
	t.Logf("forced violation caught and shrunk to %d steps / %d updates (%d checks):\n%s",
		len(ce.Stream), ce.Stream.Updates(), ce.Checks, report)
	// And the unbroken path must pass on the very same input: the
	// counterexample isolates the injected fault, not harness noise.
	if err := CheckIncExt(ce.Seed, ce.Stream); err != nil {
		t.Fatalf("healthy IncExt fails on the counterexample too — harness bug: %v", err)
	}
}
