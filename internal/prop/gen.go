// Package prop is the metamorphic correctness harness for semantic
// joins: seeded random workloads (graphs, relations, keyword sets,
// update streams, gSQL query strings) checked against a bank of
// property-based oracles —
//
//  1. IncExt over a random ΔG/ΔD/keyword stream must equal a fresh
//     extraction on the final state (oracle_incext.go);
//  2. serial, parallel, gL-cache-cold and cache-warm executions of one
//     query must be bag-equal (oracle_exec.go);
//  3. well-behaved gSQL rewrites must match direct enrichment/link-join
//     evaluation computed outside the engine (oracle_rewrite.go);
//  4. persistence round-trips must be behaviour-preserving
//     (oracle_persist.go);
//  5. tuple-at-a-time and vectorized executions of one query must be
//     bag-equal (oracle_vectorized.go);
//  6. concurrent engines racing over one catalog must match a lone
//     serial engine (oracle_concurrent.go);
//  7. a WAL-backed store crashing mid-stream and recovering must end
//     in the state of an uninterrupted run (oracle_crash.go).
//
// Every run is deterministic in its seed. A failing seed shrinks
// automatically (prop.go) and prints a one-line PROP_SEED=<n> replay
// recipe; `go test ./internal/prop` runs a short default budget,
// raised with -prop.rounds.
package prop

import (
	"fmt"
	"math/rand"
	"strings"

	"semjoin/internal/core"
	"semjoin/internal/embed"
	"semjoin/internal/graph"
	"semjoin/internal/gsql"
	"semjoin/internal/her"
	"semjoin/internal/mat"
	"semjoin/internal/rel"
)

// Value pools shared by the workload builder and the query generator,
// so generated predicates reference plausible data. Deliberately
// disjoint from internal/gsql/difftest's pools: the two harnesses
// must not mask each other's fixtures.
var (
	poolCompanies = []string{"Vertex Holdings", "Nimbus Capital", "Orchid Group", "Quarry Partners", "Helix Trust"}
	poolCountries = []string{"UK", "US", "Japan", "Brazil"}
	poolTypes     = []string{"Funds", "Stocks"}
	poolRisks     = []string{"low", "medium", "high"}
	poolCredits   = []string{"good", "fair", "poor"}
	poolKeywords  = []string{"company", "country", "category"}
)

// Workload is one seeded random instance of the harness schema —
// product(pid, name, issuer, type, price, risk) and customer(cid,
// name, credit, bal) over a property graph with oracle ground truth.
// The models use the character embedder with random path extension
// (no LSTM/GloVe training), so building a workload costs milliseconds
// while still exercising every extraction code path.
type Workload struct {
	Seed      int64
	G         *graph.Graph
	Products  *rel.Relation
	Customers *rel.Relation
	Truth     map[string]graph.VertexID
	Matcher   *her.OracleMatcher
	Models    core.Models
	Cfg       core.Config // template: K, H, Seed
	AR        []string    // reference keywords of the product base
}

// NewWorkload builds the workload for seed. The same seed always
// yields the same graph, relations and ground truth.
func NewWorkload(seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()

	nCompanies := 3 + rng.Intn(len(poolCompanies)-2)
	companies := poolCompanies[:nCompanies]

	countryV := make([]graph.VertexID, len(poolCountries))
	for i, c := range poolCountries {
		countryV[i] = g.AddVertex(c, "country")
	}
	companyV := make([]graph.VertexID, nCompanies)
	for i, c := range companies {
		companyV[i] = g.AddVertex(c, "company")
		g.AddEdge(companyV[i], "registered_in", countryV[rng.Intn(len(poolCountries))])
	}
	categoryV := make([]graph.VertexID, len(poolTypes))
	for i, c := range poolTypes {
		categoryV[i] = g.AddVertex(c, "category")
	}

	products := rel.NewRelation(rel.NewSchema("product", "pid",
		rel.Attribute{Name: "pid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "issuer", Type: rel.KindString},
		rel.Attribute{Name: "type", Type: rel.KindString},
		rel.Attribute{Name: "price", Type: rel.KindInt},
		rel.Attribute{Name: "risk", Type: rel.KindString},
	))
	customers := rel.NewRelation(rel.NewSchema("customer", "cid",
		rel.Attribute{Name: "cid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "credit", Type: rel.KindString},
		rel.Attribute{Name: "bal", Type: rel.KindInt},
	))
	truth := map[string]graph.VertexID{}

	nProducts := 8 + rng.Intn(7)
	prodV := make([]graph.VertexID, nProducts)
	for i := 0; i < nProducts; i++ {
		pid := fmt.Sprintf("pp%d", i)
		name := fmt.Sprintf("asset %02d", i)
		ci := rng.Intn(nCompanies)
		ti := rng.Intn(len(poolTypes))
		v := g.AddVertex(name, "product")
		prodV[i] = v
		g.AddEdge(companyV[ci], "issues", v)
		g.AddEdge(v, "category", categoryV[ti])
		products.InsertVals(
			rel.S(pid), rel.S(name), rel.S(companies[ci]),
			rel.S(poolTypes[ti]), rel.I(int64(60+10*rng.Intn(10))),
			rel.S(poolRisks[rng.Intn(len(poolRisks))]))
		truth[pid] = v
	}
	nCust := 5 + rng.Intn(5)
	for i := 0; i < nCust; i++ {
		cid := fmt.Sprintf("cc%02d", i)
		name := fmt.Sprintf("client %02d", i)
		v := g.AddVertex(name, "person")
		truth[cid] = v
		for _, p := range rng.Perm(nProducts)[:1+rng.Intn(3)] {
			g.AddEdge(v, "invest", prodV[p])
		}
		customers.InsertVals(rel.S(cid), rel.S(name),
			rel.S(poolCredits[rng.Intn(len(poolCredits))]),
			rel.I(int64(40000+10000*rng.Intn(20))))
	}

	return &Workload{
		Seed:      seed,
		G:         g,
		Products:  products,
		Customers: customers,
		Truth:     truth,
		Matcher:   her.NewOracleMatcher(truth),
		Models:    core.Models{Word: embed.NewCharEmbedder(32, uint64(seed)+17), RandomPaths: true},
		Cfg:       core.Config{K: 3, H: 10, Seed: uint64(seed) + 5},
		AR:        []string{"company", "country"},
	}
}

// Materialize runs the offline pre-computation for both bases.
func (w *Workload) Materialize() (*core.Materialized, error) {
	return core.BuildMaterialized(w.G, w.Models, map[string]core.BaseSpec{
		"product":  {D: w.Products, AR: w.AR, Matcher: w.Matcher},
		"customer": {D: w.Customers, AR: []string{"company", "product"}, Matcher: w.Matcher},
	}, w.Cfg)
}

// Catalog builds the gsql catalog the engine oracles run against.
func (w *Workload) Catalog() (*gsql.Catalog, error) {
	m, err := w.Materialize()
	if err != nil {
		return nil, err
	}
	return &gsql.Catalog{
		Relations: map[string]*rel.Relation{"product": w.Products, "customer": w.Customers},
		Graphs:    map[string]*graph.Graph{"G": w.G, "Gp": w.G},
		Models:    w.Models,
		Matcher:   w.Matcher,
		Mat:       m,
		K:         w.Cfg.K,
		RExt:      core.Config{H: w.Cfg.H, Seed: w.Cfg.Seed},
	}, nil
}

// ------------------------------------------------------------- streams

// StepKind is the flavour of one update-stream step.
type StepKind int

const (
	// StepGraph applies a ΔG batch through IncExt.
	StepGraph StepKind = iota
	// StepRelation toggles rows of the reference relation (ΔD).
	StepRelation
	// StepKeywords changes the user's interest set A.
	StepKeywords
)

// Step is one element of an update stream. Relation steps carry
// selectors rather than concrete rows: Remove picks among the rows
// currently present (modulo their count), Restore among the rows
// currently absent — so a stream remains applicable, and deterministic,
// after a shrinker has dropped arbitrary prefixes of it.
type Step struct {
	Kind     StepKind
	Batch    graph.Batch // StepGraph
	Remove   []int       // StepRelation: selectors into present rows
	Restore  []int       // StepRelation: selectors into absent rows
	Keywords []string    // StepKeywords
}

func (s Step) String() string {
	switch s.Kind {
	case StepGraph:
		return fmt.Sprintf("graph(%d updates)", len(s.Batch))
	case StepRelation:
		return fmt.Sprintf("relation(remove %v, restore %v)", s.Remove, s.Restore)
	default:
		return fmt.Sprintf("keywords(%s)", strings.Join(s.Keywords, ","))
	}
}

// Stream is an ordered update stream; the unit the shrinker minimises.
type Stream []Step

func (s Stream) String() string {
	parts := make([]string, len(s))
	for i, st := range s {
		parts[i] = fmt.Sprintf("  %2d: %s", i, st)
	}
	return strings.Join(parts, "\n")
}

// Updates counts the individual graph updates across the stream.
func (s Stream) Updates() int {
	n := 0
	for _, st := range s {
		n += len(st.Batch)
	}
	return n
}

// GenStream generates an n-step update stream for the workload,
// deterministically in the workload seed. Graph batches are generated
// against a scratch copy of the graph that evolves with the stream, so
// later steps reference vertices and edges that plausibly exist; if a
// shrinker drops earlier steps, later batches degrade gracefully
// (Batch.Apply skips operations on non-live endpoints).
func (w *Workload) GenStream(n int) Stream {
	rng := rand.New(rand.NewSource(w.Seed ^ 0x517ea11))
	mrng := mat.NewRNG(uint64(w.Seed) + 0xb10b)
	scratch := w.G.Clone()
	var steps Stream
	for len(steps) < n {
		switch rng.Intn(5) {
		case 0, 1, 2: // ΔG, biased: the graph path has the most to get wrong
			b := graph.RandomMixedBatch(scratch, mrng, 1+rng.Intn(4))
			if b == nil {
				continue
			}
			b.Apply(scratch)
			steps = append(steps, Step{Kind: StepGraph, Batch: b})
		case 3: // ΔD membership toggles
			st := Step{Kind: StepRelation}
			for i := rng.Intn(3); i > 0; i-- {
				st.Remove = append(st.Remove, rng.Intn(1<<16))
			}
			for i := rng.Intn(3); i > 0; i-- {
				st.Restore = append(st.Restore, rng.Intn(1<<16))
			}
			if len(st.Remove) == 0 && len(st.Restore) == 0 {
				st.Remove = []int{rng.Intn(1 << 16)}
			}
			steps = append(steps, st)
		default: // keyword change
			var kws []string
			for _, kw := range poolKeywords {
				if rng.Intn(2) == 0 {
					kws = append(kws, kw)
				}
			}
			if len(kws) == 0 {
				kws = []string{poolKeywords[rng.Intn(len(poolKeywords))]}
			}
			steps = append(steps, Step{Kind: StepKeywords, Keywords: kws})
		}
	}
	return steps
}

// --------------------------------------------------------- query strings

// QueryGen is a seeded random generator of gSQL query strings over the
// workload schema, spanning the implemented grammar: projections,
// boolean predicates (and/or/not/between/in/like), distinct, group-by
// aggregates, order by/limit, cross joins, e-joins and l-joins. Every
// emitted query must plan and execute; the oracles treat an execution
// error as a harness bug. ejoinAttrs restricts e-joins to attributes
// the materialisation actually extracted for this seed — keywords
// outside it would plan but fail at iterator build time.
type QueryGen struct {
	rng        *rand.Rand
	ejoinAttrs []string
}

// NewQueryGen returns a generator; the same seed yields the same query
// sequence. ejoinAttrs are the extracted attributes available for
// e-join queries (possibly empty).
func NewQueryGen(seed int64, ejoinAttrs []string) *QueryGen {
	return &QueryGen{rng: rand.New(rand.NewSource(seed)), ejoinAttrs: ejoinAttrs}
}

func (g *QueryGen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

func (g *QueryGen) pred(table, prefix string) string {
	if table == "product" {
		switch g.rng.Intn(6) {
		case 0:
			return fmt.Sprintf("%sprice >= %d", prefix, 60+10*g.rng.Intn(10))
		case 1:
			return fmt.Sprintf("%sprice < %d", prefix, 60+10*g.rng.Intn(10))
		case 2:
			return fmt.Sprintf("%srisk = '%s'", prefix, g.pick(poolRisks))
		case 3:
			return fmt.Sprintf("%stype <> '%s'", prefix, g.pick(poolTypes))
		case 4:
			return fmt.Sprintf("%sprice between %d and %d", prefix, 60+10*g.rng.Intn(4), 100+10*g.rng.Intn(5))
		default:
			return fmt.Sprintf("%spid in ('pp1', 'pp3', 'pp%d')", prefix, g.rng.Intn(8))
		}
	}
	switch g.rng.Intn(4) {
	case 0:
		return fmt.Sprintf("%sbal >= %d", prefix, 40000+10000*g.rng.Intn(20))
	case 1:
		return fmt.Sprintf("%scredit = '%s'", prefix, g.pick(poolCredits))
	case 2:
		return fmt.Sprintf("%scredit <> '%s'", prefix, g.pick(poolCredits))
	default:
		return fmt.Sprintf("%sname like 'client%%'", prefix)
	}
}

func (g *QueryGen) where(table, prefix string) string {
	p1 := g.pred(table, prefix)
	switch g.rng.Intn(4) {
	case 0:
		return p1
	case 1:
		return p1 + " and " + g.pred(table, prefix)
	case 2:
		return p1 + " or " + g.pred(table, prefix)
	default:
		return "not (" + p1 + ")"
	}
}

var genCols = map[string][]string{
	"product":  {"pid", "name", "issuer", "type", "price", "risk"},
	"customer": {"cid", "name", "credit", "bal"},
}

// Query emits one random query string.
func (g *QueryGen) Query() string {
	fam := g.rng.Intn(10)
	if fam >= 7 && len(g.ejoinAttrs) == 0 {
		fam = g.rng.Intn(7) // no extracted attrs this seed: skip e-joins
	}
	switch fam {
	case 0, 1, 2: // plain select
		table := g.pick([]string{"product", "customer"})
		all := genCols[table]
		var kept []string
		for _, c := range all {
			if g.rng.Intn(2) == 0 {
				kept = append(kept, c)
			}
		}
		if len(kept) == 0 {
			kept = all
		}
		q := "select " + strings.Join(kept, ", ") + " from " + table
		if g.rng.Intn(3) > 0 {
			q += " where " + g.where(table, "")
		}
		if g.rng.Intn(2) == 0 {
			q += " order by " + g.pick(kept)
			if g.rng.Intn(2) == 0 {
				q += " desc"
			}
		}
		if g.rng.Intn(3) == 0 {
			q += fmt.Sprintf(" limit %d", 1+g.rng.Intn(8))
		}
		return q
	case 3: // distinct on a low-cardinality column
		if g.rng.Intn(2) == 0 {
			return "select distinct risk from product"
		}
		return "select distinct credit from customer where " + g.where("customer", "")
	case 4, 5: // aggregates
		table, gcol, mcol := "product", "risk", "price"
		if g.rng.Intn(2) == 0 {
			table, gcol, mcol = "customer", "credit", "bal"
		}
		agg := g.pick([]string{
			"count(*) as n", "sum(" + mcol + ") as s", "avg(" + mcol + ") as a",
			"min(" + mcol + ") as lo", "max(" + mcol + ") as hi",
		})
		q := fmt.Sprintf("select %s, %s from %s", gcol, agg, table)
		if g.rng.Intn(2) == 0 {
			q += " where " + g.where(table, "")
		}
		return q + " group by " + gcol
	case 6: // cross join
		q := fmt.Sprintf("select c.cid, p.pid from customer as c, product as p where %s and %s",
			g.where("customer", "c."), g.where("product", "p."))
		if g.rng.Intn(2) == 0 {
			q += " order by c.cid, p.pid"
		}
		return q
	case 7, 8: // e-join over the attrs this seed extracted
		a := g.ejoinAttrs
		col := g.pick(a)
		q := fmt.Sprintf("select pid, %s from product e-join G <%s> as T", col, strings.Join(a, ", "))
		switch g.rng.Intn(3) {
		case 0:
			q += " where T." + g.pred("product", "")
		case 1:
			if col == "country" {
				q += fmt.Sprintf(" where T.country = '%s'", g.pick(poolCountries))
			} else {
				q += fmt.Sprintf(" where T.%s = '%s'", col, g.pick(poolCompanies))
			}
		}
		return q
	default: // l-join: self and cross-base
		switch g.rng.Intn(3) {
		case 0:
			q := "select product.pid, product2.pid from product l-join <Gp> product as product2"
			if g.rng.Intn(2) == 0 {
				q += " where " + g.pred("product", "product.")
			}
			return q
		case 1:
			q := "select customer.cid, customer2.cid from customer l-join <Gp> customer as customer2"
			if g.rng.Intn(2) == 0 {
				q += " where " + g.pred("customer", "customer.")
			}
			return q
		default:
			q := "select product.pid, c2.cid from product l-join <G> customer as c2"
			if g.rng.Intn(2) == 0 {
				q += " where " + g.pred("product", "product.")
			}
			return q
		}
	}
}
