package prop

import (
	"fmt"

	"semjoin/internal/core"
	"semjoin/internal/gsql"
	"semjoin/internal/gsql/difftest"
	"semjoin/internal/obs"
)

// execQueriesPerSeed is how many generated queries one seed checks
// through all four execution routes.
const execQueriesPerSeed = 12

// CheckExec is oracle 2: for every generated query, serial execution,
// parallel execution, execution with a freshly-cleared gL connectivity
// cache, and a cache-warm re-execution must all return the same bag of
// tuples on one shared materialisation.
func CheckExec(seed int64, _ Stream) error {
	w := NewWorkload(seed)
	cat, err := w.Catalog()
	if err != nil {
		return fmt.Errorf("harness: catalog: %w", err)
	}
	serial := gsql.NewEngine(cat)
	serial.Parallelism = 1
	serial.Obs = obs.NewRegistry()
	par := gsql.NewEngine(cat)
	par.Parallelism = 4
	par.Obs = obs.NewRegistry()

	qg := NewQueryGen(seed^0x9e11, extractedEJoinAttrs(cat.Mat))
	for i := 0; i < execQueriesPerSeed; i++ {
		q := qg.Query()
		a, err := serial.Query(q)
		if err != nil {
			return fmt.Errorf("harness: serial %q: %w", q, err)
		}
		b, err := par.Query(q)
		if err != nil {
			return fmt.Errorf("harness: parallel %q: %w", q, err)
		}
		if d := difftest.Diff(a, b); d != "" {
			return fmt.Errorf("serial vs parallel disagree on %q: %s", q, d)
		}
		// Cold route: drop every cached gL relation, forcing the BFS to
		// re-run; the result must not change.
		cat.Mat.ClearGLCache()
		cold, err := par.Query(q)
		if err != nil {
			return fmt.Errorf("harness: cache-cold %q: %w", q, err)
		}
		if d := difftest.Diff(b, cold); d != "" {
			return fmt.Errorf("cache-warm vs cache-cold disagree on %q: %s", q, d)
		}
		// Warm route: immediately re-run, now served from the cache.
		warm, err := par.Query(q)
		if err != nil {
			return fmt.Errorf("harness: cache-warm %q: %w", q, err)
		}
		if d := difftest.Diff(cold, warm); d != "" {
			return fmt.Errorf("cache-cold vs re-warmed disagree on %q: %s", q, d)
		}
	}
	return nil
}

// extractedEJoinAttrs returns the reference keywords of the product
// base that the materialisation actually extracted as columns; e-join
// query generation is restricted to those (a seed's statistical
// discovery may select fewer attributes than AR).
func extractedEJoinAttrs(m *core.Materialized) []string {
	b := m.Base("product")
	if b == nil {
		return nil
	}
	var out []string
	for _, kw := range b.AR() {
		if b.Extracted.Schema.Col(kw) >= 0 {
			out = append(out, kw)
		}
	}
	return out
}
