package prop

import (
	"fmt"
	"math/rand"
	"strings"

	"semjoin/internal/core"
	"semjoin/internal/graph"
	"semjoin/internal/gsql"
	"semjoin/internal/her"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// Pred is a structured atomic predicate over a base-relation column.
// It renders to gSQL (for the engine route) and evaluates directly on
// tuples (for the ground-truth route), so both routes share one
// semantics by construction.
type Pred struct {
	Col   string
	Op    string // "=", "<>", ">=", "<"
	Str   string // operand for string comparisons
	Num   int64  // operand for numeric comparisons
	IsNum bool
}

// SQL renders the predicate with the given column prefix (e.g. "T.").
func (p Pred) SQL(prefix string) string {
	if p.IsNum {
		return fmt.Sprintf("%s%s %s %d", prefix, p.Col, p.Op, p.Num)
	}
	return fmt.Sprintf("%s%s %s '%s'", prefix, p.Col, p.Op, p.Str)
}

// Match evaluates the predicate against one value of its column.
func (p Pred) Match(v rel.Value) bool {
	switch p.Op {
	case "=":
		return v.String() == p.Str
	case "<>":
		return v.String() != p.Str
	case ">=":
		return v.Int() >= p.Num
	default: // "<"
		return v.Int() < p.Num
	}
}

// randProductPred draws a predicate over the product base columns.
func randProductPred(rng *rand.Rand) Pred {
	switch rng.Intn(4) {
	case 0:
		return Pred{Col: "risk", Op: "=", Str: poolRisks[rng.Intn(len(poolRisks))]}
	case 1:
		return Pred{Col: "type", Op: "<>", Str: poolTypes[rng.Intn(len(poolTypes))]}
	case 2:
		return Pred{Col: "price", Op: ">=", Num: int64(60 + 10*rng.Intn(10)), IsNum: true}
	default:
		return Pred{Col: "price", Op: "<", Num: int64(60 + 10*rng.Intn(10)), IsNum: true}
	}
}

// rewriteRoundsPerSeed is how many predicate/keyword draws one seed
// checks for each join flavour.
const rewriteRoundsPerSeed = 3

// CheckRewrite is oracle 3: a gSQL e-join (l-join) query must return
// exactly what direct evaluation of the enrichment (link) join
// semantics computes outside the engine — S ⋈ f(D,G) ⋈ h(D,G) read
// straight off the materialised relations for e-joins; brute-force
// pairwise k-hop connectivity, cross-checked against core.LinkJoin's
// online evaluation, for l-joins.
func CheckRewrite(seed int64, _ Stream) error {
	w := NewWorkload(seed)
	cat, err := w.Catalog()
	if err != nil {
		return fmt.Errorf("harness: catalog: %w", err)
	}
	eng := gsql.NewEngine(cat)
	eng.Obs = obs.NewRegistry()
	rng := rand.New(rand.NewSource(seed ^ 0x3e3a7))
	for i := 0; i < rewriteRoundsPerSeed; i++ {
		if err := checkEJoinRewrite(w, cat, eng, rng); err != nil {
			return err
		}
		if err := checkLJoinRewrite(w, cat, eng, rng); err != nil {
			return err
		}
	}
	return nil
}

// checkEJoinRewrite compares the engine's answer to a well-behaved
// e-join against the three-way reduction computed by hand from the
// materialised f(D,G) and h(D,G).
func checkEJoinRewrite(w *Workload, cat *gsql.Catalog, eng *gsql.Engine, rng *rand.Rand) error {
	avail := extractedEJoinAttrs(cat.Mat)
	if len(avail) == 0 {
		return nil // this seed's discovery extracted none of AR; nothing to rewrite
	}
	a := avail
	if len(a) > 1 && rng.Intn(2) == 0 {
		a = a[:1+rng.Intn(len(a)-1)]
	}
	var pred *Pred
	if rng.Intn(2) == 0 {
		p := randProductPred(rng)
		pred = &p
	}
	base := genCols["product"]
	q := fmt.Sprintf("select %s, vid, %s from product e-join G <%s> as T",
		strings.Join(base, ", "), strings.Join(a, ", "), strings.Join(a, ", "))
	if pred != nil {
		q += " where " + pred.SQL("T.")
	}
	got, err := eng.Query(q)
	if err != nil {
		return fmt.Errorf("harness: e-join %q: %w", q, err)
	}

	b := cat.Mat.Base("product")
	vidToExt := map[int64]rel.Tuple{}
	extVid := b.Extracted.Schema.Col("vid")
	for _, t := range b.Extracted.Tuples {
		vidToExt[t[extVid].Int()] = t
	}
	pidToVid := map[string]int64{}
	mKey := b.MatchRel.Schema.Col("pid")
	mVid := b.MatchRel.Schema.Col("vid")
	for _, t := range b.MatchRel.Tuples {
		pidToVid[t[mKey].String()] = t[mVid].Int()
	}

	var want []rel.Tuple
	pidCol := w.Products.Schema.Col("pid")
	for _, t := range w.Products.Tuples {
		vid, ok := pidToVid[t[pidCol].String()]
		if !ok {
			continue // unmatched tuples drop out of S ⋈ f(D,G)
		}
		ext, ok := vidToExt[vid]
		if !ok {
			continue
		}
		if pred != nil && !pred.Match(t[w.Products.Schema.Col(pred.Col)]) {
			continue
		}
		row := append(append(rel.Tuple{}, t...), rel.I(vid))
		for _, col := range a {
			row = append(row, ext[b.Extracted.Schema.Col(col)])
		}
		want = append(want, row)
	}
	if d := bagDiff(got, want); d != "" {
		return fmt.Errorf("e-join rewrite %q diverged from direct S ⋈ f ⋈ h evaluation: %s", q, d)
	}
	return nil
}

// checkLJoinRewrite compares the engine's l-join answer against (a)
// brute-force pairwise WithinKHops over the oracle matches and (b)
// core.LinkJoin's online evaluation of the same join.
func checkLJoinRewrite(w *Workload, cat *gsql.Catalog, eng *gsql.Engine, rng *rand.Rand) error {
	var pred *Pred
	if rng.Intn(2) == 0 {
		p := randProductPred(rng)
		pred = &p
	}
	q := "select product.pid, c2.cid from product l-join <G> customer as c2"
	if pred != nil {
		q += " where " + pred.SQL("product.")
	}
	got, err := eng.Query(q)
	if err != nil {
		return fmt.Errorf("harness: l-join %q: %w", q, err)
	}

	// Route A: brute force. Two tuples join iff their matched vertices
	// are within K hops (bidirectional BFS — a different implementation
	// than the engine's per-source k-hop expansion).
	prodMatch := matchMap(w.Products, w.G, w.Matcher)
	custMatch := matchMap(w.Customers, w.G, w.Matcher)
	pidCol := w.Products.Schema.Col("pid")
	cidCol := w.Customers.Schema.Col("cid")
	var want []rel.Tuple
	for _, pt := range w.Products.Tuples {
		if pred != nil && !pred.Match(pt[w.Products.Schema.Col(pred.Col)]) {
			continue
		}
		pv, ok := prodMatch[pt[pidCol].String()]
		if !ok {
			continue
		}
		for _, ct := range w.Customers.Tuples {
			cv, ok := custMatch[ct[cidCol].String()]
			if !ok {
				continue
			}
			if w.G.WithinKHops(pv, cv, cat.K) >= 0 {
				want = append(want, rel.Tuple{pt[pidCol], ct[cidCol]})
			}
		}
	}
	if d := bagDiff(got, want); d != "" {
		return fmt.Errorf("l-join rewrite %q diverged from brute-force connectivity: %s", q, d)
	}

	// Route B: core.LinkJoin, the conceptual-level online evaluation.
	lj, err := core.LinkJoin(w.Products, rel.Rename(w.Customers, "c2"), w.G, w.Matcher, cat.K)
	if err != nil {
		return fmt.Errorf("harness: core.LinkJoin: %w", err)
	}
	ljPid := lj.Schema.Col("product.pid")
	ljCid := lj.Schema.Col("c2.cid")
	var fromLJ []rel.Tuple
	for _, t := range lj.Tuples {
		if pred != nil && !pred.Match(t[lj.Schema.Col("product."+pred.Col)]) {
			continue
		}
		fromLJ = append(fromLJ, rel.Tuple{t[ljPid], t[ljCid]})
	}
	if d := bagDiff(got, fromLJ); d != "" {
		return fmt.Errorf("l-join rewrite %q diverged from core.LinkJoin: %s", q, d)
	}
	return nil
}

// matchMap resolves each tuple key to its matched vertex via the HER
// matcher (first match wins, mirroring the extractor's tie-break).
func matchMap(s *rel.Relation, g *graph.Graph, m her.Matcher) map[string]graph.VertexID {
	out := map[string]graph.VertexID{}
	for _, mt := range m.Match(s, g) {
		if _, ok := out[mt.TID.String()]; !ok {
			out[mt.TID.String()] = mt.Vertex
		}
	}
	return out
}

// bagDiff compares got's tuples against want as bags of canonical tuple
// keys, ignoring schema names (the two sides are built with the same
// column order by construction). It returns "" on equality.
func bagDiff(got *rel.Relation, want []rel.Tuple) string {
	if got == nil {
		return "nil relation from engine"
	}
	if len(got.Tuples) != len(want) {
		return fmt.Sprintf("row count mismatch: engine %d vs direct %d", len(got.Tuples), len(want))
	}
	counts := make(map[string]int, len(want))
	for _, t := range want {
		counts[tupleKey(t)]++
	}
	for _, t := range got.Tuples {
		k := tupleKey(t)
		counts[k]--
		if counts[k] < 0 {
			return fmt.Sprintf("tuple %q appears more often in the engine result", k)
		}
	}
	return ""
}

func tupleKey(t rel.Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.Key()
	}
	return strings.Join(parts, "\x1f")
}
