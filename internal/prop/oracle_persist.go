package prop

import (
	"bytes"
	"fmt"

	"semjoin/internal/core"
	"semjoin/internal/gsql/difftest"
	"semjoin/internal/rel"
)

// CheckPersist is oracle 4: persistence round-trips must be
// behaviour-preserving. Three layers are checked per seed — the
// relation codec reproduces the relation exactly; a base
// materialisation survives SaveBase/LoadBase with its match and
// extraction relations intact and its loaded scheme re-extracting the
// identical h(D,G); and, strongest, the loaded extractor maintains the
// same results as the original under an identical ΔG stream.
func CheckPersist(seed int64, _ Stream) error {
	w := NewWorkload(seed)

	// Layer 1: relation codec round-trip.
	var rbuf bytes.Buffer
	if err := w.Products.Save(&rbuf); err != nil {
		return fmt.Errorf("harness: Save relation: %w", err)
	}
	r2, err := rel.LoadRelation(&rbuf)
	if err != nil {
		return fmt.Errorf("relation round-trip failed to load: %w", err)
	}
	if d := difftest.Diff(w.Products, r2); d != "" {
		return fmt.Errorf("relation round-trip not identity: %s", d)
	}

	// Layer 2: base materialisation round-trip.
	m, err := w.Materialize()
	if err != nil {
		return fmt.Errorf("harness: materialize: %w", err)
	}
	b := m.Base("product")
	var bbuf bytes.Buffer
	if err := core.SaveBase(&bbuf, b); err != nil {
		return fmt.Errorf("harness: SaveBase: %w", err)
	}
	g2 := w.G.Clone()
	lb, err := core.LoadBase(&bbuf, w.Products, g2, w.Models, w.Matcher, w.Cfg)
	if err != nil {
		return fmt.Errorf("base round-trip failed to load: %w", err)
	}
	if d := difftest.Diff(b.MatchRel, lb.MatchRel); d != "" {
		return fmt.Errorf("base round-trip changed f(D,G): %s", d)
	}
	if d := difftest.Diff(b.Extracted, lb.Extracted); d != "" {
		return fmt.Errorf("base round-trip changed h(D,G): %s", d)
	}

	// The loaded scheme must drive extraction to the same h(D,G): a
	// fresh extractor over the cloned graph, handed the deserialised
	// scheme, must reproduce the persisted extraction bit for bit.
	cfg := w.Cfg
	cfg.Keywords = w.AR
	cfg.MaxAttrs = len(w.AR)
	ref := core.NewExtractor(g2, w.Models, cfg)
	again, err := ref.ExtractWithScheme(w.Products, lb.Extractor.Scheme(), w.Matcher.Match(w.Products, g2))
	if err != nil {
		return fmt.Errorf("loaded-scheme extraction: %w", err)
	}
	if d := difftest.Diff(b.Extracted, again); d != "" {
		return fmt.Errorf("loaded scheme does not reproduce h(D,G): %s", d)
	}

	// Layer 3: behaviour preservation under maintenance. The original
	// and the loaded extractor see the same ΔG stream on their own
	// graph copies and must stay in lockstep.
	for i, st := range w.GenStream(4) {
		if st.Kind != StepGraph {
			continue
		}
		if _, err := b.Extractor.ApplyGraphUpdate(st.Batch, w.Matcher); err != nil {
			return fmt.Errorf("harness: step %d original ApplyGraphUpdate: %w", i, err)
		}
		if _, err := lb.Extractor.ApplyGraphUpdate(st.Batch, w.Matcher); err != nil {
			return fmt.Errorf("harness: step %d loaded ApplyGraphUpdate: %w", i, err)
		}
	}
	if d := difftest.Diff(b.Extractor.Result(), lb.Extractor.Result()); d != "" {
		return fmt.Errorf("original and loaded extractors diverged under the same ΔG stream: %s", d)
	}
	return nil
}
