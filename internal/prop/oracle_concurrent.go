package prop

import (
	"fmt"
	"sync"

	"semjoin/internal/gsql"
	"semjoin/internal/gsql/difftest"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// Concurrency-oracle dimensions: how many engines race over one
// catalog, and how many generated queries each runs.
const (
	concurrentSessions   = 6
	concurrentPerSession = 8
)

// CheckConcurrent is oracle 6: N engines sharing one catalog — with
// differing parallelism and executor settings, like network sessions —
// run the same generated query set concurrently, and every result must
// be bag-equal to a lone serial engine's. Any cross-engine
// interference through the shared materialisation, gL cache or
// columnar images shows up as a bag difference (or, under -race, as a
// race report).
func CheckConcurrent(seed int64, _ Stream) error {
	w := NewWorkload(seed)
	cat, err := w.Catalog()
	if err != nil {
		return fmt.Errorf("harness: catalog: %w", err)
	}
	qg := NewQueryGen(seed^0x9e11, extractedEJoinAttrs(cat.Mat))
	queries := make([]string, concurrentPerSession)
	for i := range queries {
		queries[i] = qg.Query()
	}

	serial := gsql.NewEngine(cat)
	serial.Parallelism = 1
	serial.Obs = obs.NewRegistry()
	want := make([]*queryRef, len(queries))
	for i, q := range queries {
		out, err := serial.Query(q)
		if err != nil {
			return fmt.Errorf("harness: serial %q: %w", q, err)
		}
		want[i] = &queryRef{q: q, out: out}
	}

	errs := make([]error, concurrentSessions)
	var wg sync.WaitGroup
	for s := 0; s < concurrentSessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng := gsql.NewEngine(cat)
			eng.Parallelism = 1 + s%4
			eng.RowAtATime = s%2 == 1
			eng.Obs = obs.NewRegistry()
			// Offset walk: different engines hit different queries at the
			// same instant, maximising plan/cache overlap.
			for k := 0; k < len(want); k++ {
				ref := want[(k+s)%len(want)]
				out, err := eng.Query(ref.q)
				if err != nil {
					errs[s] = fmt.Errorf("engine %d (par=%d row=%v) %q: %w",
						s, eng.Parallelism, eng.RowAtATime, ref.q, err)
					return
				}
				if d := difftest.Diff(ref.out, out); d != "" {
					errs[s] = fmt.Errorf("engine %d (par=%d row=%v) diverged from serial on %q: %s",
						s, eng.Parallelism, eng.RowAtATime, ref.q, d)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// queryRef pairs a generated query with its serial reference result.
type queryRef struct {
	q   string
	out *rel.Relation
}
