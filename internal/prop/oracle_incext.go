package prop

import (
	"fmt"

	"semjoin/internal/core"
	"semjoin/internal/gsql/difftest"
	"semjoin/internal/rel"
)

// CheckIncExt is oracle 1: running IncExt over a random ΔG/ΔD/keyword
// update stream must leave the extracted relation bag-equal to a fresh
// extraction on the final state. The fresh side reuses the incremental
// extractor's final scheme (ExtractWithScheme) rather than re-running
// discovery: pattern discovery is statistical and may legitimately
// pick a different scheme on the updated graph, while extraction under
// a fixed scheme is the paper's no-accuracy-loss claim for IncExt.
func CheckIncExt(seed int64, stream Stream) error {
	return checkIncExt(seed, stream, false)
}

// CheckIncExtBroken is CheckIncExt with the delete-maintenance fault
// injected (core.Extractor.SetSkipDeleteMaintenance): the harness's own
// regression test uses it to prove a real IncExt bug is caught and
// shrunk to a replayable counterexample.
func CheckIncExtBroken(seed int64, stream Stream) error {
	return checkIncExt(seed, stream, true)
}

func checkIncExt(seed int64, stream Stream, skipDeletes bool) error {
	w := NewWorkload(seed)
	gInc := w.G
	gRef := w.G.Clone()

	cfg := w.Cfg
	cfg.Keywords = w.AR
	cfg.MaxAttrs = len(w.AR)
	ex := core.NewExtractor(gInc, w.Models, cfg)
	cur := w.Products
	if _, err := ex.Run(cur, w.Matcher.Match(cur, gInc)); err != nil {
		return fmt.Errorf("harness: initial RExt run: %w", err)
	}
	ex.SetSkipDeleteMaintenance(skipDeletes)

	// ΔD membership state: master row set with a present/absent flag per
	// row. Relation steps toggle flags through their positional selectors.
	master := w.Products
	present := make([]bool, master.Len())
	for i := range present {
		present[i] = true
	}

	for i, st := range stream {
		switch st.Kind {
		case StepGraph:
			if _, err := ex.ApplyGraphUpdate(st.Batch, w.Matcher); err != nil {
				return fmt.Errorf("harness: step %d ApplyGraphUpdate: %w", i, err)
			}
			// The reference graph sees the identical batch; sequential
			// vertex-id allocation keeps the two graphs in lockstep.
			st.Batch.Apply(gRef)
		case StepRelation:
			applyRelStep(present, st)
			cur = subsetRelation(master, present)
			if _, err := ex.ApplyRelationUpdate(cur, w.Matcher); err != nil {
				return fmt.Errorf("harness: step %d ApplyRelationUpdate: %w", i, err)
			}
		case StepKeywords:
			if _, err := ex.UpdateKeywords(st.Keywords); err != nil {
				return fmt.Errorf("harness: step %d UpdateKeywords(%v): %w", i, st.Keywords, err)
			}
		}
	}

	ref := core.NewExtractor(gRef, w.Models, cfg)
	want, err := ref.ExtractWithScheme(cur, ex.Scheme(), w.Matcher.Match(cur, gRef))
	if err != nil {
		return fmt.Errorf("harness: reference extraction: %w", err)
	}
	if d := difftest.Diff(ex.Result(), want); d != "" {
		return fmt.Errorf("IncExt diverged from fresh extraction on the final state after %d steps: %s",
			len(stream), d)
	}
	return nil
}

// applyRelStep toggles row membership. Remove selectors index the
// currently-present rows (always leaving at least one), Restore
// selectors the currently-absent ones; both are taken modulo the
// respective count so any selector value applies to any state.
func applyRelStep(present []bool, st Step) {
	for _, sel := range st.Remove {
		idxs := flagged(present, true)
		if len(idxs) <= 1 {
			break
		}
		present[idxs[sel%len(idxs)]] = false
	}
	for _, sel := range st.Restore {
		idxs := flagged(present, false)
		if len(idxs) == 0 {
			break
		}
		present[idxs[sel%len(idxs)]] = true
	}
}

func flagged(present []bool, want bool) []int {
	var out []int
	for i, p := range present {
		if p == want {
			out = append(out, i)
		}
	}
	return out
}

// subsetRelation builds the relation holding master's rows whose flag
// is set, in master order.
func subsetRelation(master *rel.Relation, present []bool) *rel.Relation {
	out := rel.NewRelation(master.Schema)
	for i, t := range master.Tuples {
		if present[i] {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}
