package prop

import (
	"fmt"

	"semjoin/internal/gsql"
	"semjoin/internal/gsql/difftest"
	"semjoin/internal/obs"
)

// vectorizedQueriesPerSeed is how many generated queries one seed
// checks through the row and batch engines.
const vectorizedQueriesPerSeed = 12

// CheckVectorized is oracle 5: the vectorized batch engine is a pure
// execution-strategy change, so for every generated query the classic
// tuple-at-a-time engine (SET VECTORIZED OFF), the serial batch engine
// and the parallel batch engine must return the same bag of tuples on
// one shared materialisation. Any divergence — a miscompiled
// predicate, a selection vector surviving where it should not, a batch
// boundary splitting a group — is a counterexample the harness shrinks
// and reports with its seed.
func CheckVectorized(seed int64, _ Stream) error {
	w := NewWorkload(seed)
	cat, err := w.Catalog()
	if err != nil {
		return fmt.Errorf("harness: catalog: %w", err)
	}
	row := gsql.NewEngine(cat)
	row.RowAtATime = true
	row.Parallelism = 1
	row.Obs = obs.NewRegistry()
	vec := gsql.NewEngine(cat)
	vec.Parallelism = 1
	vec.Obs = obs.NewRegistry()
	vecPar := gsql.NewEngine(cat)
	vecPar.Parallelism = 4
	vecPar.Obs = obs.NewRegistry()

	qg := NewQueryGen(seed^0x51ec, extractedEJoinAttrs(cat.Mat))
	for i := 0; i < vectorizedQueriesPerSeed; i++ {
		q := qg.Query()
		want, err := row.Query(q)
		if err != nil {
			return fmt.Errorf("harness: row engine %q: %w", q, err)
		}
		got, err := vec.Query(q)
		if err != nil {
			return fmt.Errorf("harness: batch engine %q: %w", q, err)
		}
		if d := difftest.Diff(want, got); d != "" {
			return fmt.Errorf("row vs batch engine disagree on %q: %s", q, d)
		}
		gotPar, err := vecPar.Query(q)
		if err != nil {
			return fmt.Errorf("harness: parallel batch engine %q: %w", q, err)
		}
		if d := difftest.Diff(got, gotPar); d != "" {
			return fmt.Errorf("serial vs parallel batch engine disagree on %q: %s", q, d)
		}
	}
	// The session statement must actually flip the engine: a round trip
	// through SET VECTORIZED OFF and ON ends where it started.
	if _, err := vec.Query("set vectorized off"); err != nil {
		return fmt.Errorf("harness: SET VECTORIZED OFF: %w", err)
	}
	if !vec.RowAtATime {
		return fmt.Errorf("SET VECTORIZED OFF did not disable the batch engine")
	}
	if _, err := vec.Query("set vectorized on"); err != nil {
		return fmt.Errorf("harness: SET VECTORIZED ON: %w", err)
	}
	if vec.RowAtATime {
		return fmt.Errorf("SET VECTORIZED ON did not restore the batch engine")
	}
	return nil
}
