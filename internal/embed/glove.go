package embed

import (
	"math"
	"sort"

	"semjoin/internal/mat"
)

// GloVeConfig parameterises TrainGloVe. Zero fields take defaults.
type GloVeConfig struct {
	Dim    int     // vector size (default 64; 50 ≈ RExtShortEmb)
	Window int     // co-occurrence window (default 4)
	XMax   float64 // weighting cutoff (default 20)
	Alpha  float64 // weighting exponent (default 0.75)
	LR     float64 // AdaGrad learning rate (default 0.05)
	Epochs int     // passes over the co-occurrence cells (default 15)
	Seed   uint64  // init seed (default 1)
}

func (c GloVeConfig) withDefaults() GloVeConfig {
	if c.Dim == 0 {
		c.Dim = 64
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.XMax == 0 {
		c.XMax = 20
	}
	if c.Alpha == 0 {
		c.Alpha = 0.75
	}
	if c.LR == 0 {
		c.LR = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 15
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// GloVe holds trained word vectors plus a character-level fallback for
// out-of-vocabulary tokens.
type GloVe struct {
	dim   int
	vecs  map[string]mat.Vector
	chars *CharEmbedder
}

// TrainGloVe builds word vectors from a corpus of sentences. Each sentence
// is a sequence of labels; labels are word-tokenised first so multi-word
// labels contribute each word. Training follows Pennington et al.'s
// objective: minimise Σ f(X_ij)(w_i·w̃_j + b_i + b̃_j − log X_ij)² with
// AdaGrad, and the published trick of summing the two vector sets for the
// final representation.
func TrainGloVe(corpus [][]string, cfg GloVeConfig) *GloVe {
	cfg = cfg.withDefaults()

	// Word-tokenise every sentence.
	var sentences [][]string
	for _, sent := range corpus {
		var words []string
		for _, label := range sent {
			words = append(words, Tokenize(label)...)
		}
		if len(words) > 0 {
			sentences = append(sentences, words)
		}
	}

	// Deterministic vocabulary: sorted by frequency then lexicographic.
	freq := map[string]int{}
	for _, s := range sentences {
		for _, w := range s {
			freq[w]++
		}
	}
	type wf struct {
		w string
		n int
	}
	var order []wf
	for w, n := range freq {
		order = append(order, wf{w, n})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].n != order[j].n {
			return order[i].n > order[j].n
		}
		return order[i].w < order[j].w
	})
	wordID := make(map[string]int, len(order))
	words := make([]string, len(order))
	for i, e := range order {
		wordID[e.w] = i
		words[i] = e.w
	}
	V := len(words)

	// Co-occurrence counts with 1/distance weighting.
	type cell struct {
		i, j int
		x    float64
	}
	counts := map[[2]int]float64{}
	for _, s := range sentences {
		for i, w := range s {
			wi := wordID[w]
			for d := 1; d <= cfg.Window && i+d < len(s); d++ {
				wj := wordID[s[i+d]]
				if wi == wj {
					continue
				}
				inc := 1 / float64(d)
				counts[[2]int{wi, wj}] += inc
				counts[[2]int{wj, wi}] += inc
			}
		}
	}
	cells := make([]cell, 0, len(counts))
	for k, x := range counts {
		cells = append(cells, cell{k[0], k[1], x})
	}
	sort.Slice(cells, func(a, b int) bool {
		if cells[a].i != cells[b].i {
			return cells[a].i < cells[b].i
		}
		return cells[a].j < cells[b].j
	})

	// Parameters: main and context vectors plus biases, AdaGrad state.
	rng := mat.NewRNG(cfg.Seed)
	w := mat.NewMatrix(V, cfg.Dim)
	wt := mat.NewMatrix(V, cfg.Dim)
	rng.FillUniform(mat.Vector(w.Data), 0.5/float64(cfg.Dim))
	rng.FillUniform(mat.Vector(wt.Data), 0.5/float64(cfg.Dim))
	b := mat.NewVector(V)
	bt := mat.NewVector(V)
	gw := mat.NewMatrix(V, cfg.Dim)
	gwt := mat.NewMatrix(V, cfg.Dim)
	gb := mat.NewVector(V)
	gbt := mat.NewVector(V)
	mat.Vector(gw.Data).Fill(1)
	mat.Vector(gwt.Data).Fill(1)
	gb.Fill(1)
	gbt.Fill(1)

	for e := 0; e < cfg.Epochs; e++ {
		rng.Shuffle(len(cells), func(a, bIdx int) { cells[a], cells[bIdx] = cells[bIdx], cells[a] })
		for _, c := range cells {
			wi, wj := w.Row(c.i), wt.Row(c.j)
			diff := mat.Dot(wi, wj) + b[c.i] + bt[c.j] - math.Log(c.x)
			fx := 1.0
			if c.x < cfg.XMax {
				fx = math.Pow(c.x/cfg.XMax, cfg.Alpha)
			}
			g := fx * diff
			if g > 10 {
				g = 10
			} else if g < -10 {
				g = -10
			}
			gwi, gwj := gw.Row(c.i), gwt.Row(c.j)
			for d := 0; d < cfg.Dim; d++ {
				gi := g * wj[d]
				gj := g * wi[d]
				wi[d] -= cfg.LR * gi / math.Sqrt(gwi[d])
				wj[d] -= cfg.LR * gj / math.Sqrt(gwj[d])
				gwi[d] += gi * gi
				gwj[d] += gj * gj
			}
			b[c.i] -= cfg.LR * g / math.Sqrt(gb[c.i])
			bt[c.j] -= cfg.LR * g / math.Sqrt(gbt[c.j])
			gb[c.i] += g * g
			gbt[c.j] += g * g
		}
	}

	vecs := make(map[string]mat.Vector, V)
	for i, word := range words {
		v := w.Row(i).Clone()
		v.Add(wt.Row(i))
		vecs[word] = v
	}
	// Mean-centre the space: raw GloVe vectors are anisotropic (every
	// pair has a large positive cosine), which would wash out the
	// relative comparisons RExt's ranking function makes. Subtracting the
	// vocabulary mean restores discriminative cosines.
	if V > 0 {
		mean := mat.NewVector(cfg.Dim)
		for _, word := range words { // fixed order: keeps training deterministic
			mean.Add(vecs[word])
		}
		mean.Scale(1 / float64(V))
		for _, word := range words {
			vecs[word].Sub(mean)
		}
	}
	return &GloVe{dim: cfg.Dim, vecs: vecs, chars: NewCharEmbedder(cfg.Dim, cfg.Seed)}
}

// Dim returns the vector size.
func (g *GloVe) Dim() int { return g.dim }

// Has reports whether word has a trained vector.
func (g *GloVe) Has(word string) bool {
	_, ok := g.vecs[word]
	return ok
}

// WordVector returns the trained vector for an in-vocabulary word and
// whether it exists. The returned vector is shared; callers must not
// modify it.
func (g *GloVe) WordVector(word string) (mat.Vector, bool) {
	v, ok := g.vecs[word]
	return v, ok
}

// Embed returns the mean of the word vectors of text's tokens, with the
// character-level fallback for out-of-vocabulary tokens (§III-A's
// trade-off for meaningless labels). Empty text embeds to the zero vector.
func (g *GloVe) Embed(text string) mat.Vector {
	toks := Tokenize(text)
	out := mat.NewVector(g.dim)
	if len(toks) == 0 {
		return out
	}
	for _, tok := range toks {
		if v, ok := g.vecs[tok]; ok {
			out.Add(v)
		} else {
			out.Add(g.chars.Embed(tok))
		}
	}
	out.Scale(1 / float64(len(toks)))
	return out
}
