package embed

import (
	"bytes"
	"testing"

	"semjoin/internal/mat"
)

// clusterCorpus makes two topical word clusters: finance words co-occur
// with each other, biology words with each other.
func clusterCorpus() [][]string {
	fin := []string{"stock", "fund", "price", "market", "invest"}
	bio := []string{"drug", "disease", "symptom", "dose", "patient"}
	var corpus [][]string
	rng := mat.NewRNG(9)
	for i := 0; i < 400; i++ {
		pool := fin
		if i%2 == 0 {
			pool = bio
		}
		sent := make([]string, 6)
		for j := range sent {
			sent[j] = pool[rng.Intn(len(pool))]
		}
		corpus = append(corpus, sent)
	}
	return corpus
}

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"based_on", []string{"based", "on"}},
		{"G&L ESG", []string{"g", "l", "esg"}},
		{"", nil},
		{"  ", nil},
		{"Hello-World42", []string{"hello", "world42"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestGloVeClustersCooccurringWords(t *testing.T) {
	g := TrainGloVe(clusterCorpus(), GloVeConfig{Dim: 24, Epochs: 25, Seed: 4})
	intra := mat.Cosine(g.Embed("stock"), g.Embed("fund"))
	inter := mat.Cosine(g.Embed("stock"), g.Embed("disease"))
	if intra <= inter {
		t.Fatalf("co-occurring words should be closer: intra=%.3f inter=%.3f", intra, inter)
	}
	intra2 := mat.Cosine(g.Embed("drug"), g.Embed("symptom"))
	inter2 := mat.Cosine(g.Embed("drug"), g.Embed("market"))
	if intra2 <= inter2 {
		t.Fatalf("bio words should cluster: intra=%.3f inter=%.3f", intra2, inter2)
	}
}

func TestGloVeMultiWordMean(t *testing.T) {
	g := TrainGloVe(clusterCorpus(), GloVeConfig{Dim: 16, Epochs: 5, Seed: 4})
	both := g.Embed("stock fund")
	s, f := g.Embed("stock"), g.Embed("fund")
	want := s.Clone()
	want.Add(f)
	want.Scale(0.5)
	if mat.Cosine(both, want) < 0.99999 {
		t.Fatal("multi-word embedding should be the token mean")
	}
}

func TestGloVeOOVFallsBackToChars(t *testing.T) {
	g := TrainGloVe(clusterCorpus(), GloVeConfig{Dim: 16, Epochs: 3, Seed: 4})
	v := g.Embed("zzqy123")
	if mat.Norm(v) == 0 {
		t.Fatal("OOV token should get a char-level vector")
	}
	if g.Has("zzqy123") {
		t.Fatal("OOV token must not be in vocabulary")
	}
	// Similar strings should be more similar than dissimilar ones.
	a := g.Embed("freebase0x2af1")
	b := g.Embed("freebase0x2af2")
	c := g.Embed("wq9")
	if mat.Cosine(a, b) <= mat.Cosine(a, c) {
		t.Fatal("char fallback should reflect string similarity")
	}
}

func TestGloVeDeterministic(t *testing.T) {
	c := clusterCorpus()
	g1 := TrainGloVe(c, GloVeConfig{Dim: 8, Epochs: 3, Seed: 4})
	g2 := TrainGloVe(c, GloVeConfig{Dim: 8, Epochs: 3, Seed: 4})
	v1, v2 := g1.Embed("stock"), g2.Embed("stock")
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("same seed should reproduce identical vectors")
		}
	}
}

func TestGloVeEmptyTextZeroVector(t *testing.T) {
	g := TrainGloVe(clusterCorpus(), GloVeConfig{Dim: 8, Epochs: 1})
	if mat.Norm(g.Embed("")) != 0 {
		t.Fatal("empty text should embed to zero")
	}
	if g.Dim() != 8 {
		t.Fatalf("Dim = %d", g.Dim())
	}
}

func TestGloVeWordVector(t *testing.T) {
	g := TrainGloVe(clusterCorpus(), GloVeConfig{Dim: 8, Epochs: 1})
	if _, ok := g.WordVector("stock"); !ok {
		t.Fatal("stock should be in vocabulary")
	}
	if _, ok := g.WordVector("absent"); ok {
		t.Fatal("absent should not be in vocabulary")
	}
}

func TestCharEmbedderProperties(t *testing.T) {
	c := NewCharEmbedder(32, 7)
	if c.Dim() != 32 {
		t.Fatalf("Dim = %d", c.Dim())
	}
	a1, a2 := c.Embed("spinosad"), c.Embed("spinosad")
	if mat.Cosine(a1, a2) < 0.999999 {
		t.Fatal("char embedding must be deterministic")
	}
	if mat.Norm(c.Embed("")) != 0 {
		t.Fatal("empty token embeds to zero")
	}
	// Near-anagram strings share characters and bigrams partially.
	sim := mat.Cosine(c.Embed("pediculosis"), c.Embed("pediculosus"))
	dis := mat.Cosine(c.Embed("pediculosis"), c.Embed("xqz"))
	if sim <= dis {
		t.Fatalf("string similarity not reflected: %.3f vs %.3f", sim, dis)
	}
}

func TestHashEmbedder(t *testing.T) {
	h := NewHashEmbedder(48, 3)
	a := h.Embed("alpha")
	b := h.Embed("alpha")
	if mat.Cosine(a, b) < 0.999999 {
		t.Fatal("hash embedding must be deterministic")
	}
	// Distinct tokens near-orthogonal in high dimension.
	c := h.Embed("beta")
	if cos := mat.Cosine(a, c); cos > 0.5 || cos < -0.5 {
		t.Fatalf("distinct tokens should be near-orthogonal: %.3f", cos)
	}
	if n := mat.Norm(a); n < 0.999 || n > 1.001 {
		t.Fatalf("hash vectors should be unit: %v", n)
	}
}

func TestNewEmbeddersPanicOnBadDim(t *testing.T) {
	for _, f := range []func(){
		func() { NewCharEmbedder(0, 1) },
		func() { NewHashEmbedder(-1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestGloVeSaveLoadRoundTrip(t *testing.T) {
	g := TrainGloVe(clusterCorpus(), GloVeConfig{Dim: 12, Epochs: 3, Seed: 4})
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadGloVe(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Dim() != g.Dim() {
		t.Fatal("dim changed")
	}
	for _, w := range []string{"stock", "drug", "zz-oov-token"} {
		a, b := g.Embed(w), back.Embed(w)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("embedding for %q changed at %d", w, i)
			}
		}
	}
	// Corrupt input errors.
	if _, err := LoadGloVe(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("corrupt glove should error")
	}
	if _, err := LoadGloVe(bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Fatal("truncated glove should error")
	}
}

func TestCharEmbedderDim(t *testing.T) {
	if NewCharEmbedder(7, 1).Dim() != 7 {
		t.Fatal("Dim wrong")
	}
}
