package embed

import (
	"hash/fnv"

	"semjoin/internal/mat"
)

// CharEmbedder embeds a token as the mean of deterministic per-character
// vectors (plus character-bigram vectors for a little positional signal).
// It substitutes for the paper's "mean of character GloVe embeddings" for
// meaningless labels: string-similar tokens receive cosine-similar
// vectors, which is the property the extraction pipeline relies on.
type CharEmbedder struct {
	dim  int
	seed uint64
}

// NewCharEmbedder returns an embedder producing dim-sized vectors.
func NewCharEmbedder(dim int, seed uint64) *CharEmbedder {
	if dim <= 0 {
		panic("embed: non-positive char embedding dim") //lint:allow nopanic programmer-error guard: embedding dims are constants; embed_test pins this panic
	}
	return &CharEmbedder{dim: dim, seed: seed}
}

// Dim returns the vector size.
func (c *CharEmbedder) Dim() int { return c.dim }

// Embed returns the mean of unit vectors derived from each character and
// each adjacent character pair of the token.
func (c *CharEmbedder) Embed(token string) mat.Vector {
	out := mat.NewVector(c.dim)
	if token == "" {
		return out
	}
	n := 0
	runes := []rune(token)
	addUnit := func(key string) {
		h := fnv.New64a()
		h.Write([]byte(key))
		rng := mat.NewRNG(h.Sum64() ^ c.seed)
		v := mat.NewVector(c.dim)
		rng.FillNormal(v, 1)
		mat.Normalize(v)
		out.Add(v)
		n++
	}
	for _, r := range runes {
		addUnit("c:" + string(r))
	}
	for i := 0; i+1 < len(runes); i++ {
		addUnit("b:" + string(runes[i:i+2]))
	}
	out.Scale(1 / float64(n))
	return out
}

// HashEmbedder maps every distinct token to an independent pseudo-random
// unit vector. It deliberately carries no semantics at all and serves as
// the degenerate ablation baseline (unrelated tokens are near-orthogonal,
// identical tokens identical).
type HashEmbedder struct {
	dim  int
	seed uint64
}

// NewHashEmbedder returns a hash embedder of the given dimensionality.
func NewHashEmbedder(dim int, seed uint64) *HashEmbedder {
	if dim <= 0 {
		panic("embed: non-positive hash embedding dim") //lint:allow nopanic programmer-error guard: embedding dims are constants; embed_test pins this panic
	}
	return &HashEmbedder{dim: dim, seed: seed}
}

// Dim returns the vector size.
func (h *HashEmbedder) Dim() int { return h.dim }

// Embed returns the deterministic unit vector for text.
func (h *HashEmbedder) Embed(text string) mat.Vector {
	hash := fnv.New64a()
	hash.Write([]byte(text))
	rng := mat.NewRNG(hash.Sum64() ^ h.seed)
	v := mat.NewVector(h.dim)
	rng.FillNormal(v, 1)
	return mat.Normalize(v)
}
