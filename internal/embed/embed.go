// Package embed provides the word-embedding model Me of §III-A. The paper
// represents a vertex label by the mean of (pretrained) GloVe embeddings
// of its words, falling back to the mean of character embeddings for
// "meaningless" labels. Pretrained vectors are unavailable offline, so
// this package trains GloVe-style vectors on the same random-walk corpus
// the LSTM sees (co-occurrence matrix + AdaGrad on the weighted
// least-squares GloVe objective); the cosine geometry over label
// co-occurrence is the property RExt's ranking function needs. A
// deterministic hashing embedder serves as a no-semantics ablation
// baseline, and a Transformer adapter provides the RExtBertEmb baseline.
package embed

import (
	"strings"
	"unicode"

	"semjoin/internal/mat"
)

// Embedder turns a label or keyword string into a fixed-size vector.
type Embedder interface {
	// Embed returns the vector for text. Implementations must return a
	// vector the caller may modify.
	Embed(text string) mat.Vector
	// Dim returns the embedding dimensionality.
	Dim() int
}

// Tokenize lower-cases text and splits it into word tokens on any
// non-alphanumeric rune (so "based_on" → ["based","on"], "G&L ESG" →
// ["g","l","esg"]).
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}
