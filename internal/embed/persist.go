package embed

import (
	"fmt"
	"io"
	"sort"

	"semjoin/internal/bin"
	"semjoin/internal/mat"
)

// Save persists the trained word vectors (sorted for deterministic
// output) plus the character-fallback seed.
func (g *GloVe) Save(out io.Writer) error {
	w := bin.NewWriter(out)
	w.Header("glove", 1)
	w.Int(g.dim)
	w.U64(g.chars.seed)
	words := make([]string, 0, len(g.vecs))
	for word := range g.vecs {
		words = append(words, word)
	}
	sort.Strings(words)
	w.Int(len(words))
	for _, word := range words {
		w.String(word)
		w.F64s(g.vecs[word])
	}
	return w.Err()
}

// LoadGloVe restores vectors written by Save.
func LoadGloVe(in io.Reader) (*GloVe, error) {
	r := bin.NewReader(in)
	if v := r.Header("glove"); r.Err() == nil && v != 1 {
		return nil, fmt.Errorf("embed: unsupported glove version %d", v)
	}
	dim := r.Int()
	seed := r.U64()
	n := r.Len()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("embed: bad dimension %d", dim)
	}
	g := &GloVe{dim: dim, vecs: make(map[string]mat.Vector, n), chars: NewCharEmbedder(dim, seed)}
	for i := 0; i < n; i++ {
		word := r.String()
		vec := r.F64s()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(vec) != dim {
			return nil, fmt.Errorf("embed: vector size %d for %q, want %d", len(vec), word, dim)
		}
		g.vecs[word] = vec
	}
	return g, r.Err()
}
