package bin

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header("test", 3)
	w.U64(42)
	w.I64(-7)
	w.Int(123456)
	w.F64(3.14159)
	w.Bool(true)
	w.Bool(false)
	w.String("hello")
	w.String("")
	w.F64s([]float64{1, 2.5, -3})
	w.Strings([]string{"a", "", "c"})
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if v := r.Header("test"); v != 3 {
		t.Fatalf("version = %d", v)
	}
	if r.U64() != 42 || r.I64() != -7 || r.Int() != 123456 {
		t.Fatal("ints wrong")
	}
	if r.F64() != 3.14159 {
		t.Fatal("float wrong")
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("bools wrong")
	}
	if r.String() != "hello" || r.String() != "" {
		t.Fatal("strings wrong")
	}
	fs := r.F64s()
	if len(fs) != 3 || fs[1] != 2.5 {
		t.Fatalf("f64s = %v", fs)
	}
	ss := r.Strings()
	if len(ss) != 3 || ss[2] != "c" {
		t.Fatalf("strings = %v", ss)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestHeaderMismatch(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Header("alpha", 1)
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Header("beta")
	if r.Err() == nil {
		t.Fatal("section mismatch should error")
	}
	r2 := NewReader(strings.NewReader("XXXX"))
	r2.Header("alpha")
	if r2.Err() == nil {
		t.Fatal("bad magic should error")
	}
}

func TestStickyErrors(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	_ = r.U64() // EOF
	if r.Err() == nil {
		t.Fatal("expected EOF")
	}
	// Everything after the first error is a no-op returning zero values.
	if r.String() != "" || r.F64s() != nil || r.Int() != 0 {
		t.Fatal("poisoned reader returned data")
	}
}

func TestImplausibleLength(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.I64(1 << 40)
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Len()
	if r.Err() == nil {
		t.Fatal("huge length should poison the reader")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(u uint64, i int64, fl float64, s string, fs []float64, ss []string) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		w.U64(u)
		w.I64(i)
		w.F64(fl)
		w.String(s)
		w.F64s(fs)
		w.Strings(ss)
		if w.Err() != nil {
			return false
		}
		r := NewReader(bytes.NewReader(buf.Bytes()))
		if r.U64() != u || r.I64() != i {
			return false
		}
		got := r.F64()
		if got != fl && !(got != got && fl != fl) { // NaN-safe
			return false
		}
		if r.String() != s {
			return false
		}
		gfs := r.F64s()
		if len(gfs) != len(fs) {
			return false
		}
		for k := range fs {
			if gfs[k] != fs[k] && !(gfs[k] != gfs[k] && fs[k] != fs[k]) {
				return false
			}
		}
		gss := r.Strings()
		if len(gss) != len(ss) {
			return false
		}
		for k := range ss {
			if gss[k] != ss[k] {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
