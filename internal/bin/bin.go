// Package bin is a small sticky-error binary codec used to persist
// trained models and materialised extractions (little-endian, explicit
// framing, no reflection). Writers and readers carry the first error and
// turn subsequent operations into no-ops, so encoders read linearly
// without per-call error plumbing.
package bin

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Magic prefixes a semjoin binary file.
const Magic = "SEMJ"

// Writer encodes values to an io.Writer, retaining the first error.
type Writer struct {
	w   io.Writer
	err error
	buf [8]byte
}

// NewWriter returns a writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

// U64 writes a fixed 64-bit unsigned integer.
func (w *Writer) U64(x uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], x)
	w.write(w.buf[:])
}

// I64 writes a fixed 64-bit signed integer.
func (w *Writer) I64(x int64) { w.U64(uint64(x)) }

// Int writes an int (as 64-bit).
func (w *Writer) Int(x int) { w.I64(int64(x)) }

// F64 writes a float64.
func (w *Writer) F64(x float64) { w.U64(math.Float64bits(x)) }

// Bool writes a boolean byte.
func (w *Writer) Bool(b bool) {
	var x uint64
	if b {
		x = 1
	}
	w.U64(x)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Int(len(s))
	w.write([]byte(s))
}

// F64s writes a length-prefixed float64 slice.
func (w *Writer) F64s(xs []float64) {
	w.Int(len(xs))
	for _, x := range xs {
		w.F64(x)
	}
}

// Strings writes a length-prefixed string slice.
func (w *Writer) Strings(ss []string) {
	w.Int(len(ss))
	for _, s := range ss {
		w.String(s)
	}
}

// Header writes the file magic plus a section tag and version.
func (w *Writer) Header(section string, version int) {
	w.write([]byte(Magic))
	w.String(section)
	w.Int(version)
}

// Reader decodes values from an io.Reader, retaining the first error.
type Reader struct {
	r   io.Reader
	err error
	buf [8]byte
}

// NewReader returns a reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Err returns the first read error, if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	_, r.err = io.ReadFull(r.r, p)
}

// U64 reads a fixed 64-bit unsigned integer.
func (r *Reader) U64() uint64 {
	r.read(r.buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(r.buf[:])
}

// I64 reads a fixed 64-bit signed integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int. Negative or absurd lengths poison the reader.
func (r *Reader) Int() int { return int(r.I64()) }

// Len reads a non-negative length, bounding it to guard against corrupt
// input.
func (r *Reader) Len() int {
	n := r.Int()
	if r.err == nil && (n < 0 || n > 1<<30) {
		r.err = fmt.Errorf("bin: implausible length %d", n)
		return 0
	}
	return n
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.U64() != 0 }

// allocChunk bounds the upfront allocation for length-prefixed reads: a
// corrupt length within the Len() bound could still demand a ~1 GiB
// allocation before the first payload byte is read. Growing in chunks
// means a short stream poisons the reader after at most one chunk.
const allocChunk = 1 << 16

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len()
	if r.err != nil || n == 0 {
		return ""
	}
	var p []byte
	for len(p) < n {
		c := n - len(p)
		if c > allocChunk {
			c = allocChunk
		}
		chunk := make([]byte, c)
		r.read(chunk)
		if r.err != nil {
			return ""
		}
		p = append(p, chunk...)
	}
	return string(p)
}

// F64s reads a length-prefixed float64 slice.
func (r *Reader) F64s() []float64 {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	var out []float64
	for i := 0; i < n; i++ {
		x := r.F64()
		if r.err != nil {
			return nil
		}
		out = append(out, x)
	}
	return out
}

// Strings reads a length-prefixed string slice.
func (r *Reader) Strings() []string {
	n := r.Len()
	if r.err != nil {
		return nil
	}
	var out []string
	for i := 0; i < n; i++ {
		s := r.String()
		if r.err != nil {
			return nil
		}
		out = append(out, s)
	}
	return out
}

// Header checks the magic and section tag, returning the version.
func (r *Reader) Header(section string) int {
	p := make([]byte, len(Magic))
	r.read(p)
	if r.err == nil && string(p) != Magic {
		r.err = fmt.Errorf("bin: bad magic %q", p)
		return 0
	}
	got := r.String()
	if r.err == nil && got != section {
		r.err = fmt.Errorf("bin: expected section %q, found %q", section, got)
		return 0
	}
	return r.Int()
}
