package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// sampleDiags is a fixed diagnostic set for the serialization tests:
// absolute paths under a fake root, out of order on purpose (Write*
// receives them as Run sorted them, so the goldens record that order).
func sampleDiags(root string) []Diagnostic {
	return []Diagnostic{
		{
			Analyzer: "spanfinish",
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "server", "server.go"), Line: 42, Column: 2},
			Message:  "span/trace is not ended on every path (missing sp.End/Finish on some return, or hand it off)",
		},
		{
			Analyzer: "fsyncrename",
			Pos:      token.Position{Filename: filepath.Join(root, "internal", "wal", "wal.go"), Line: 7, Column: 5},
			Message:  "rename is never followed by a directory fsync (SyncDir) — the new entry may not survive a crash",
		},
	}
}

// golden compares got against testdata/output/<name>, failing with the
// diff. Regenerate by deleting the file and re-running the test.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "output", name)
	want, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote golden %s", path)
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("fake", "module")
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, sampleDiags(root)); err != nil {
		t.Fatal(err)
	}
	golden(t, "diags.json.golden", buf.Bytes())

	// The output must round-trip as the baseline format.
	if _, err := ReadBaseline(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("JSON output is not a valid baseline: %v", err)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, "", nil); err != nil {
		t.Fatal(err)
	}
	if got := string(bytes.TrimSpace(buf.Bytes())); got != "[]" {
		t.Fatalf("empty diagnostics must encode as [], got %q", got)
	}
}

func TestWriteSARIFGolden(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("fake", "module")
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, sampleDiags(root)); err != nil {
		t.Fatal(err)
	}
	golden(t, "diags.sarif.golden", buf.Bytes())
}

// TestSARIFStructure validates the emitted log against the slice of
// the SARIF 2.1.0 contract the CI code-scanning upload relies on.
func TestSARIFStructure(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("fake", "module")
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, root, sampleDiags(root)); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if log.Schema != sarifSchemaURI {
		t.Errorf("$schema = %q", log.Schema)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "semjoinlint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if want := len(All) + 1; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d (every analyzer plus allowcheck)", len(run.Tool.Driver.Rules), want)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		if r.ShortDescription.Text == "" {
			t.Errorf("rule %s has no shortDescription", r.ID)
		}
		ruleIDs[r.ID] = true
	}
	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	for _, res := range run.Results {
		if !ruleIDs[res.RuleID] {
			t.Errorf("result references unknown rule %q", res.RuleID)
		}
		if res.Level != "error" {
			t.Errorf("level = %q, want error", res.Level)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("locations = %d, want 1", len(res.Locations))
		}
		loc := res.Locations[0].PhysicalLocation
		if filepath.IsAbs(loc.ArtifactLocation.URI) {
			t.Errorf("artifact URI %q must be root-relative", loc.ArtifactLocation.URI)
		}
		if loc.Region.StartLine == 0 {
			t.Error("startLine missing")
		}
	}
}

func TestBaselineFilter(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("fake", "module")
	old := sampleDiags(root)

	// Record the current findings as the baseline.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, root, old); err != nil {
		t.Fatal(err)
	}
	base, err := ReadBaseline(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// Direction 1: the recorded findings are fully absorbed.
	if got := base.Filter(root, old); len(got) != 0 {
		t.Fatalf("baseline did not absorb its own findings: %v", got)
	}

	// Direction 2: a new finding — and a third copy of a recorded
	// shape beyond its count — both survive.
	injected := Diagnostic{
		Analyzer: "walorder",
		Pos:      token.Position{Filename: filepath.Join(root, "internal", "core", "durable.go"), Line: 100, Column: 3},
		Message:  "in-memory apply precedes the WAL Append (log-then-apply: a crash here loses the update)",
	}
	dup := old[0] // same (file, analyzer, message) as a baselined entry
	got := base.Filter(root, append(append([]Diagnostic{}, old...), injected, dup))
	if len(got) != 2 {
		t.Fatalf("got %d surviving diagnostics, want 2 (the injected one and the over-count duplicate): %v", len(got), got)
	}
	found := map[string]bool{}
	for _, d := range got {
		found[d.Analyzer] = true
	}
	if !found["walorder"] || !found[dup.Analyzer] {
		t.Fatalf("surviving set wrong: %v", got)
	}

	// Line moves do not resurrect baselined findings: the key is
	// (file, analyzer, message), not position.
	moved := old[1]
	moved.Pos.Line += 37
	if got := base.Filter(root, []Diagnostic{moved}); len(got) != 0 {
		t.Fatalf("line shift resurrected a baselined finding: %v", got)
	}

	// A nil baseline passes everything through.
	var none *Baseline
	if got := none.Filter(root, old); len(got) != len(old) {
		t.Fatal("nil baseline must be a no-op")
	}
}

func TestReadBaselineFileErrors(t *testing.T) {
	if _, err := ReadBaselineFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline file must error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaselineFile(bad); err == nil {
		t.Fatal("malformed baseline file must error")
	}
}
