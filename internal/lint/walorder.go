package lint

import (
	"go/ast"
	"strings"
)

// walPkg is the write-ahead log implementation package from PR 9.
const walPkg = "semjoin/internal/wal"

// walOrderScope lists the packages holding the log-then-apply
// discipline: core owns DurableStore, server acks client updates.
var walOrderScope = map[string]bool{
	"semjoin/internal/core":   true,
	"semjoin/internal/server": true,
}

// walApplyPrefixes name the state-mutating entry points of the update
// streams. A call to any of them from inside a logging function is the
// "apply" half of the write path.
var walApplyPrefixes = []string{
	"ApplyGraphUpdate",
	"ApplyRelationUpdate",
	"UpdateKeywords",
}

// WalOrder enforces the PR-9 write-ahead discipline inside
// internal/core and internal/server: in any function that appends to a
// *wal.Log, the in-memory apply (ApplyGraphUpdate*,
// ApplyRelationUpdate*, UpdateKeywords*) must come strictly after the
// Append — the record must be on disk (fsynced per the log's
// SyncPolicy, which Append handles internally) before the state it
// describes exists in memory. Apply-before-log means a crash between
// the two leaves an applied update with no record: recovery silently
// loses it, and the WALInfo/LastSeq accounting the server reports is a
// lie. Functions that never Append (replay, recovery, read paths) are
// out of scope — replay intentionally applies without logging.
var WalOrder = &Analyzer{
	Name: "walorder",
	Doc:  "state-mutating applies must follow the WAL Append on every path (log-then-apply), never precede it",
	Run:  runWalOrder,
}

func runWalOrder(p *Pass) error {
	if !walOrderScope[p.Pkg.Path()] && !strings.HasSuffix(p.Pkg.Path(), "/testdata/src/walorder") {
		return nil
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, b := range funcBodies(fd.Body) {
				checkWalOrderBody(p, b)
			}
		}
	}
	return nil
}

// isWalAppend matches `<log>.Append(...)` / `<log>.Sync()` on a
// *wal.Log receiver — the durability point of the write path.
func isWalAppend(p *Pass, n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Append" && sel.Sel.Name != "Sync" {
		return false
	}
	return isNamedType(p.TypeOf(sel.X), walPkg, "Log")
}

// isWalApply matches a call to one of the update-stream entry points.
func isWalApply(n ast.Node) (*ast.CallExpr, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	for _, prefix := range walApplyPrefixes {
		if strings.HasPrefix(sel.Sel.Name, prefix) {
			return call, true
		}
	}
	return nil, false
}

// checkWalOrderBody flags every apply call that some execution path
// reaches from the function entry without first passing a WAL Append —
// i.e. the in-memory mutation can happen while nothing is on disk yet.
// Phrasing the query from the entry (rather than "an Append is
// reachable after the apply") keeps the canonical per-record loop
//
//	for _, b := range batches {
//		log.Append(b); apply(b)
//	}
//
// clean: the back-edge makes the next Append reachable from the
// previous apply, but every path from the entry to an apply has
// already logged.
func checkWalOrderBody(p *Pass, body *ast.BlockStmt) {
	if len(body.List) == 0 {
		return
	}
	cfg := NewCFG(body)

	containsAppend := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			if isWalAppend(p, m) {
				found = true
			}
			return !found
		})
		return found
	}

	// The check only triggers in functions that log: a function with
	// no Append on a wal.Log is a read or replay path.
	appends := false
	for _, bl := range cfg.Blocks {
		for _, n := range bl.Nodes {
			if containsAppend(n) {
				appends = true
			}
		}
	}
	if !appends {
		return
	}

	for _, bl := range cfg.Blocks {
		for _, n := range bl.Nodes {
			node := n
			ast.Inspect(node, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				apply, ok := isWalApply(m)
				if !ok {
					return true
				}
				// An Append earlier in this same statement covers the
				// apply (`log.Append(..); apply(..)` fused forms).
				logged := false
				ast.Inspect(node, func(q ast.Node) bool {
					if isWalAppend(p, q) && q.Pos() < apply.Pos() {
						logged = true
					}
					return !logged
				})
				if logged {
					return true
				}
				reachedUnlogged := cfg.PathFromStmtWithout(body.List[0],
					func(q ast.Node) bool { return q == node },
					containsAppend)
				if reachedUnlogged {
					p.Reportf(apply.Pos(), "in-memory apply precedes the WAL Append (log-then-apply: a crash here loses the update)")
				}
				return true
			})
		}
	}
}
