package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FsyncRename enforces the PR-9 atomic-publish protocol for temp-file
// writes: write → file fsync → rename → directory fsync. Two rules,
// checked path-sensitively over the function's CFG:
//
//  1. rename-before-sync: a write to a created file must not reach the
//     rename that publishes it (correlated by the shared temp-name
//     expression) on a path without the file's own Sync. Renaming an
//     unsynced file publishes a name whose content can be lost or torn
//     by a crash — the checkpoint CRC then reads as corruption at
//     recovery, or worse, an older snapshot silently wins.
//  2. missing directory fsync: a rename on an FS-like store (a method
//     set with Create/Rename/SyncDir — wal.FS and friends) must have
//     some path to a SyncDir; without one the new directory entry
//     itself is not durable. Error returns between the two are fine;
//     only a rename with no SyncDir anywhere downstream is flagged.
//
// Flush on a derived writer (bufio, gob) is buffered I/O, not
// durability — it never satisfies rule 1. Functions named Rename are
// exempt from rule 2: they are the FS wrappers themselves (OSFS.Rename
// delegating to os.Rename), where the caller owns the protocol.
var FsyncRename = &Analyzer{
	Name: "fsyncrename",
	Doc:  "temp-file publishes must follow write → fsync → rename → dir-fsync; flags unsynced renames and renames with no directory sync",
	Run:  runFsyncRename,
}

func runFsyncRename(p *Pass) error {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exemptRename := fd.Name.Name == "Rename"
			for _, b := range funcBodies(fd.Body) {
				checkFsyncRenameBody(p, b, exemptRename)
			}
		}
	}
	return nil
}

// isFSLike reports whether t's method set (or its pointer's) has the
// Create/Rename/SyncDir triple that marks a durable file store.
func isFSLike(t types.Type) bool {
	if t == nil {
		return false
	}
	has := func(ms *types.MethodSet) bool {
		var create, rename, syncDir bool
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "Create":
				create = true
			case "Rename":
				rename = true
			case "SyncDir":
				syncDir = true
			}
		}
		return create && rename && syncDir
	}
	if has(types.NewMethodSet(t)) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return has(types.NewMethodSet(types.NewPointer(t)))
	}
	return false
}

// trackedFile is one created temp file in a function body.
type trackedFile struct {
	obj     types.Object // the file variable
	nameKey string       // exprString of the creation's name argument
	writes  []ast.Node   // CFG nodes that write to the file
}

// fileCreation matches `f, err := X.Create(name)` (or OpenAppend /
// os.Create / os.OpenFile / os.CreateTemp) and returns the file object
// and the name-argument key.
func fileCreation(p *Pass, as *ast.AssignStmt) (types.Object, string, bool) {
	if len(as.Rhs) != 1 || len(as.Lhs) == 0 {
		return nil, "", false
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Create", "OpenAppend", "OpenFile", "CreateTemp":
	default:
		return nil, "", false
	}
	if pkg, _ := stdFuncCall(p, sel); pkg != "os" && !isFSLike(p.TypeOf(sel.X)) {
		return nil, "", false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, "", false
	}
	obj := p.TypesInfo.Defs[id]
	if obj == nil {
		obj = p.TypesInfo.Uses[id]
	}
	if obj == nil {
		return nil, "", false
	}
	return obj, exprString(call.Args[0]), true
}

// renameCall matches `X.Rename(old, new)` on an FS-like receiver or
// os.Rename, returning the call and whether the receiver is FS-like.
func renameCall(p *Pass, n ast.Node) (*ast.CallExpr, bool, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return nil, false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rename" {
		return nil, false, false
	}
	if pkg, _ := stdFuncCall(p, sel); pkg == "os" {
		return call, false, true
	}
	if isFSLike(p.TypeOf(sel.X)) {
		return call, true, true
	}
	return nil, false, false
}

func checkFsyncRenameBody(p *Pass, body *ast.BlockStmt, exemptRename bool) {
	cfg := NewCFG(body)

	// Pass A: collect created files and derived writers.
	files := map[types.Object]*trackedFile{}
	derived := map[types.Object]types.Object{} // writer var -> file var
	for _, bl := range cfg.Blocks {
		for _, n := range bl.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				continue
			}
			if obj, key, ok := fileCreation(p, as); ok {
				files[obj] = &trackedFile{obj: obj, nameKey: key}
				continue
			}
			// w := bufio.NewWriter(f) / enc := gob.NewEncoder(f):
			// writes through w reach f's buffers, not the disk.
			if len(as.Rhs) == 1 && len(as.Lhs) == 1 {
				if call, ok := as.Rhs[0].(*ast.CallExpr); ok {
					for _, a := range call.Args {
						aid, ok := a.(*ast.Ident)
						if !ok {
							continue
						}
						fobj := p.TypesInfo.Uses[aid]
						if _, tracked := files[fobj]; !tracked {
							continue
						}
						if lid, ok := as.Lhs[0].(*ast.Ident); ok {
							if wobj := p.TypesInfo.Defs[lid]; wobj != nil {
								derived[wobj] = fobj
							}
						}
					}
				}
			}
		}
	}

	usesAsRecv := func(n ast.Node, obj types.Object, names ...string) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return !found
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || p.TypesInfo.Uses[id] != obj {
				return !found
			}
			for _, name := range names {
				if sel.Sel.Name == name || (strings.HasSuffix(name, "*") && strings.HasPrefix(sel.Sel.Name, strings.TrimSuffix(name, "*"))) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// Pass B: classify write nodes per file.
	for _, bl := range cfg.Blocks {
		for _, n := range bl.Nodes {
			for _, tf := range files {
				if usesAsRecv(n, tf.obj, "Write*", "ReadFrom") {
					tf.writes = append(tf.writes, n)
					continue
				}
				for wobj, fobj := range derived {
					if fobj == tf.obj && usesAsRecv(n, wobj, "Write*", "Encode*", "Flush", "ReadFrom") {
						tf.writes = append(tf.writes, n)
					}
				}
			}
		}
	}

	// Pass C: the rules, per rename node.
	reported := map[ast.Node]bool{}
	for _, bl := range cfg.Blocks {
		for _, n := range bl.Nodes {
			node := n
			ast.Inspect(node, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				call, fsLike, ok := renameCall(p, m)
				if !ok {
					return true
				}
				// Rule 1: any write to the file this rename publishes
				// that reaches it without the file's Sync.
				for _, tf := range files {
					if exprString(call.Args[0]) != tf.nameKey {
						continue
					}
					syncsFile := func(q ast.Node) bool { return usesAsRecv(q, tf.obj, "Sync") }
					isThisRename := func(q ast.Node) bool { return q == node }
					for _, w := range tf.writes {
						if w == node {
							continue
						}
						if !reported[node] && cfg.PathWithout(w, isThisRename, syncsFile) {
							reported[node] = true
							p.Reportf(call.Pos(), "rename publishes %s before the file is fsynced (write → Sync → Rename)", tf.nameKey)
						}
					}
				}
				// Rule 2: an FS-like rename with no directory sync
				// anywhere downstream.
				if fsLike && !exemptRename {
					containsSyncDir := func(q ast.Node) bool {
						found := false
						ast.Inspect(q, func(r ast.Node) bool {
							if c, ok := r.(*ast.CallExpr); ok {
								if s, ok := c.Fun.(*ast.SelectorExpr); ok && s.Sel.Name == "SyncDir" {
									found = true
								}
							}
							return !found
						})
						return found
					}
					if !containsSyncDir(node) && !cfg.Reaches(node, containsSyncDir) {
						p.Reportf(call.Pos(), "rename is never followed by a directory fsync (SyncDir) — the new entry may not survive a crash")
					}
				}
				return true
			})
		}
	}
}
