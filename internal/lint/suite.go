package lint

// All is the semjoinlint suite in reporting order. cmd/semjoinlint
// drives exactly this list; the fixture harness iterates it to
// guarantee every shipped analyzer has failing-then-passing coverage.
var All = []*Analyzer{
	NoPanic,
	IterClose,
	LockOrder,
	CtxLoop,
	ObsNil,
	SpanFinish,
	WalOrder,
	FsyncRename,
	BatchSel,
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}
