package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop enforces the cancellation contract of the PR-2 worker
// pools: a goroutine that loops unboundedly (a `for {}` dispatch loop
// or a `for range ch` consumer) inside a function that has a
// context.Context in scope must observe cancellation inside the loop
// via ctx.Done() or ctx.Err(). Bounded loops (over slices, index
// ranges) and goroutines in context-free helpers are exempt — a
// worker that drains a channel the same function closes does not need
// a context to terminate.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc:  "unbounded worker loops in goroutines must select on ctx.Done() (or check ctx.Err()) when a context is in scope",
	Run:  runCtxLoop,
}

func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

func runCtxLoop(p *Pass) error {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !ctxInScope(p, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				fl, ok := g.Call.Fun.(*ast.FuncLit)
				if !ok {
					return true
				}
				checkWorkerLoops(p, fl)
				return true
			})
		}
	}
	return nil
}

// ctxInScope reports whether fd binds or uses any value of type
// context.Context — a parameter, a local, or a field access like
// o.ctx. If it does, worker loops it spawns could and therefore must
// observe cancellation.
func ctxInScope(p *Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isContextType(p.TypeOf(e)) {
			found = true
		}
		return !found
	})
	return found
}

// checkWorkerLoops flags unbounded loops in one goroutine body that
// never consult the context.
func checkWorkerLoops(p *Pass, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			if loop.Cond != nil {
				return true // bounded by its condition
			}
			if !consultsContext(p, loop) {
				p.Reportf(loop.Pos(), "infinite worker loop in goroutine does not select on ctx.Done() or check ctx.Err()")
			}
		case *ast.RangeStmt:
			if t := p.TypeOf(loop.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					if !consultsContext(p, loop) {
						p.Reportf(loop.Pos(), "channel-range worker loop in goroutine does not select on ctx.Done() or check ctx.Err()")
					}
				}
			}
		}
		return true
	})
}

// consultsContext reports whether the loop subtree calls Done or Err
// on a context.Context value.
func consultsContext(p *Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Done" || sel.Sel.Name == "Err") && isContextType(p.TypeOf(sel.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}
