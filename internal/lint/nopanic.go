package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoPanic enforces the PR-4 contract that library code reports
// failures as errors: no panic, log.Fatal* or os.Exit outside package
// main and test files. Invariant-violation panics that must stay (the
// documented Must-constructors, math-kernel shape checks) carry a
// //lint:allow nopanic <reason> annotation.
var NoPanic = &Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic/log.Fatal/os.Exit in non-test library code",
	Run:  runNoPanic,
}

func runNoPanic(p *Pass) error {
	if p.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range p.Files {
		// nopanic is a library-code invariant; test files keep their
		// panics/Fatals even under -tests, so the suffix check here is
		// deliberate and unconditional.
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if obj, ok := p.TypesInfo.Uses[fun].(*types.Builtin); ok && obj.Name() == "panic" {
					p.Reportf(call.Pos(), "panic in library code; return an error (or annotate with //lint:allow nopanic <reason>)")
				}
			case *ast.SelectorExpr:
				pkgName, fn := stdFuncCall(p, fun)
				switch {
				case pkgName == "log" && strings.HasPrefix(fn, "Fatal"):
					p.Reportf(call.Pos(), "log.%s in library code; return an error instead of exiting the process", fn)
				case pkgName == "os" && fn == "Exit":
					p.Reportf(call.Pos(), "os.Exit in library code; return an error instead of exiting the process")
				}
			}
			return true
		})
	}
	return nil
}

// stdFuncCall resolves sel to ("pkg", "Func") when it is a package-
// level function selection like log.Fatalf; otherwise ("", "").
func stdFuncCall(p *Pass, sel *ast.SelectorExpr) (string, string) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := p.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
