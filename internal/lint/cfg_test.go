package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `src` as the body of a function and builds its CFG.
func parseBody(t *testing.T, src string) *CFG {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return NewCFG(fd.Body)
}

// hasCall reports whether a CFG node's subtree contains a call to the
// bare identifier name.
func hasCall(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return !found
		})
		return found
	}
}

// nodeWithCall finds the indexed CFG node containing a call to name.
func nodeWithCall(t *testing.T, c *CFG, name string) ast.Node {
	t.Helper()
	pred := hasCall(name)
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if pred(n) {
				return n
			}
		}
	}
	t.Fatalf("no CFG node calls %s", name)
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	c := parseBody(t, `a(); b(); rel()`)
	start := nodeWithCall(t, c, "a")
	if c.PathWithout(start, hasCall("rel"), hasCall("b")) {
		t.Error("b should block the path from a to rel")
	}
	if !c.PathWithout(start, hasCall("rel"), nil) {
		t.Error("rel should be reachable from a")
	}
	if c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("every path to exit passes rel")
	}
}

func TestCFGIfElse(t *testing.T) {
	// Release only on the then-branch: the else path leaks.
	c := parseBody(t, `a(); if cond() { rel() }; tail()`)
	start := nodeWithCall(t, c, "a")
	if !c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("the else path should reach exit without rel")
	}
	// Release on both branches: no leak.
	c = parseBody(t, `a(); if cond() { rel() } else { rel() }; tail()`)
	start = nodeWithCall(t, c, "a")
	if c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("both branches release; no leaking path should exist")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	c := parseBody(t, `a(); if cond() { return }; rel()`)
	start := nodeWithCall(t, c, "a")
	if !c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("the early return path should bypass rel")
	}
}

func TestCFGPanicDiverges(t *testing.T) {
	c := parseBody(t, `a(); if cond() { panic("x") }; rel()`)
	start := nodeWithCall(t, c, "a")
	if c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("panic never reaches exit; the surviving path passes rel")
	}
	c = parseBody(t, `a(); if cond() { os.Exit(1) }; rel()`)
	start = nodeWithCall(t, c, "a")
	if c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("os.Exit never reaches exit")
	}
}

func TestCFGForLoop(t *testing.T) {
	// A conditional loop can run zero times: rel inside is not certain.
	c := parseBody(t, `a(); for i := 0; i < n; i++ { rel() }`)
	start := nodeWithCall(t, c, "a")
	if !c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("zero-iteration path should bypass rel")
	}
	// An infinite loop with no break never reaches exit.
	c = parseBody(t, `a(); for { b() }`)
	start = nodeWithCall(t, c, "a")
	if c.PathWithout(start, nil, nil) {
		t.Error("for{} never reaches exit")
	}
	// break makes the exit reachable again, bypassing rel.
	c = parseBody(t, `a(); for { if cond() { break }; rel() }; tail()`)
	start = nodeWithCall(t, c, "a")
	if !c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("break path should bypass rel")
	}
	if !c.Reaches(start, hasCall("tail")) {
		t.Error("tail is reachable via break")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	c := parseBody(t, `a(); for _, v := range xs { use(v); rel() }`)
	start := nodeWithCall(t, c, "a")
	if !c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("an empty range should bypass rel")
	}
	if !c.Reaches(start, hasCall("use")) {
		t.Error("the range body is reachable")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	c := parseBody(t, `
a()
L:
	for {
		for {
			if cond() {
				break L
			}
			rel()
		}
	}
tail()`)
	start := nodeWithCall(t, c, "a")
	if !c.Reaches(start, hasCall("tail")) {
		t.Error("break L should reach tail")
	}
	if !c.PathWithout(start, hasCall("tail"), hasCall("rel")) {
		t.Error("break L path should bypass rel")
	}
}

func TestCFGSwitch(t *testing.T) {
	c := parseBody(t, `
a()
switch k() {
case 1:
	rel()
case 2:
	b()
}
tail()`)
	start := nodeWithCall(t, c, "a")
	if !c.PathWithout(start, hasCall("tail"), hasCall("rel")) {
		t.Error("case 2 path should reach tail without rel")
	}
	// With a default releasing too, only case 2 leaks.
	c = parseBody(t, `
a()
switch k() {
case 1:
	rel()
default:
	rel()
}
tail()`)
	start = nodeWithCall(t, c, "a")
	if c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("all switch arms release; no leaking path")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := parseBody(t, `
a()
switch k() {
case 1:
	b()
	fallthrough
case 2:
	rel()
default:
	rel()
}
tail()`)
	start := nodeWithCall(t, c, "a")
	if c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("case 1 falls through into rel; every arm releases")
	}
}

func TestCFGSelect(t *testing.T) {
	c := parseBody(t, `
a()
select {
case v := <-ch:
	use(v)
case out <- x:
	rel()
}
tail()`)
	start := nodeWithCall(t, c, "a")
	if !c.Reaches(start, hasCall("tail")) {
		t.Error("select clauses fall through to tail")
	}
	if !c.PathWithout(start, hasCall("tail"), hasCall("rel")) {
		t.Error("the recv clause reaches tail without rel")
	}
	// Every comm clause and clause body is marked in-select.
	marked := 0
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			if c.InSelect(n) {
				marked++
			}
		}
	}
	if marked < 4 {
		t.Errorf("expected the select comm+body nodes marked, got %d", marked)
	}
	if c.InSelect(start) {
		t.Error("a() is outside the select")
	}
}

func TestCFGReturnInSelect(t *testing.T) {
	c := parseBody(t, `
a()
select {
case <-done:
	return
case v := <-ch:
	use(v)
}
rel()`)
	start := nodeWithCall(t, c, "a")
	if !c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("the done clause returns before rel")
	}
}

func TestCFGTypeSwitch(t *testing.T) {
	c := parseBody(t, `
a()
switch v := x.(type) {
case int:
	use(v)
	rel()
case string:
	b()
}
tail()`)
	start := nodeWithCall(t, c, "a")
	if !c.PathWithout(start, hasCall("tail"), hasCall("rel")) {
		t.Error("the string arm reaches tail without rel")
	}
}

func TestCFGDeferOpaque(t *testing.T) {
	// The defer node is indexed whole; its call is visible to
	// predicates at the defer site (callers decide defer semantics).
	c := parseBody(t, `a(); defer rel(); if cond() { return }; tail()`)
	start := nodeWithCall(t, c, "a")
	if c.PathWithout(start, nil, hasCall("rel")) {
		t.Error("every path passes the defer node before returning")
	}
}

func TestCFGContinue(t *testing.T) {
	c := parseBody(t, `
a()
for i := 0; i < n; i++ {
	if cond() {
		continue
	}
	rel()
}
tail()`)
	start := nodeWithCall(t, c, "a")
	if !c.PathWithout(start, hasCall("tail"), hasCall("rel")) {
		t.Error("continue path bypasses rel")
	}
}

func TestCFGUnreachableIndexed(t *testing.T) {
	// Code after return is unreachable but still indexed, so analyzers
	// can look it up without crashing.
	c := parseBody(t, `a(); return; b()`)
	n := nodeWithCall(t, c, "b") // lookup must succeed
	c.PathWithout(n, nil, nil)   // and querying from it must not panic
	// The unreachable block has no predecessors: nothing reaches b.
	start := nodeWithCall(t, c, "a")
	if c.Reaches(start, hasCall("b")) {
		t.Error("b is unreachable after return")
	}
}
