package lint

import (
	"go/ast"
)

// obsPkg is the package whose constructor discipline ObsNil enforces.
const obsPkg = "semjoin/internal/obs"

// obsCtorOnly lists the obs types that must be built through their
// nil-safe constructors: a zero-value Registry has nil series maps and
// panics on first registration; a zero-value Histogram has no bucket
// bounds; QueryLog is paired with NewQueryLog for the same reason.
// The tracing additions follow the same doctrine: a zero-value Tracer
// samples nothing (rate 0), a zero-value TraceStore silently falls
// back to the default capacity instead of the one the caller meant,
// and a zero-value Logger discards every record — each looks like a
// working instance at the call site, which is exactly the bug class
// this analyzer exists to catch. Counters and gauges are deliberately
// absent — their zero values are fully usable.
var obsCtorOnly = map[string]string{
	"Registry":   "NewRegistry",
	"Histogram":  "Registry.Histogram",
	"QueryLog":   "NewQueryLog",
	"Tracer":     "NewTracer",
	"TraceStore": "NewTraceStore",
	"Logger":     "NewLogger",
}

// ObsNil enforces the PR-3 contract that observability state is only
// created through the nil-safe constructor API: no composite
// literals, new() calls or zero-value variable declarations of
// obs.Registry / obs.Histogram / obs.QueryLog outside the obs package
// itself.
var ObsNil = &Analyzer{
	Name: "obsnil",
	Doc:  "obs registries must be built via the constructor API (NewRegistry etc.), never by direct struct construction",
	Run:  runObsNil,
}

func runObsNil(p *Pass) error {
	if p.Pkg.Path() == obsPkg {
		return nil
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if name, ok := obsCtorType(p, n.Type); ok {
					p.Reportf(n.Pos(), "direct construction of obs.%s bypasses the nil-safe API; use obs.%s", name, obsCtorOnly[name])
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if name, ok := obsCtorType(p, n.Args[0]); ok {
						p.Reportf(n.Pos(), "new(obs.%s) bypasses the nil-safe API; use obs.%s", name, obsCtorOnly[name])
					}
				}
			case *ast.ValueSpec:
				// Pointer declarations are fine (nil *Registry is the
				// designed no-op state); zero-value declarations by
				// value are not.
				if _, isPtr := n.Type.(*ast.StarExpr); n.Type != nil && !isPtr && len(n.Values) == 0 {
					if name, ok := obsCtorType(p, n.Type); ok {
						p.Reportf(n.Pos(), "zero-value obs.%s bypasses the nil-safe API; use obs.%s", name, obsCtorOnly[name])
					}
				}
			}
			return true
		})
	}
	return nil
}

// obsCtorType reports whether the type expression denotes one of the
// constructor-only obs types (by value, not by pointer — a *Registry
// variable is fine, it is nil until assigned from a constructor).
func obsCtorType(p *Pass, e ast.Expr) (string, bool) {
	t := p.TypeOf(e)
	if t == nil {
		return "", false
	}
	for name := range obsCtorOnly {
		if isNamedType(t, obsPkg, name) {
			// Pointer declarations are allowed; construction is not.
			// Composite literals and new() always denote the value
			// type here, so only ValueSpec needs the distinction.
			return name, true
		}
	}
	return "", false
}
