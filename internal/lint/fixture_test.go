package lint

import (
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	fixtureOnce sync.Once
	fixtureProg *Program
	fixtureErr  error
)

// fixtureProgram loads the module-local packages the fixtures import
// (obs for the tracing analyzers, wal for the durability ones, rel for
// batchsel) so every fixture package can be checked against the shared
// program.
func fixtureProgram(t *testing.T) *Program {
	t.Helper()
	fixtureOnce.Do(func() {
		root, err := ModuleRoot(".")
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureProg, fixtureErr = Load(root,
			"semjoin/internal/obs", "semjoin/internal/wal", "semjoin/internal/rel")
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureProg
}

// wantQuoted extracts the quoted patterns of a `// want "..."` comment.
var wantQuoted = regexp.MustCompile(`"([^"]*)"`)

// runFixture checks one analyzer against its testdata package in the
// analysistest style: every diagnostic must be announced by a
// `// want "pattern"` comment on its line, and every want must be hit.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	prog := fixtureProgram(t)
	dir := filepath.Join("testdata", "src", a.Name)
	pkg, err := prog.CheckDir(dir, "semjoin/internal/lint/testdata/src/"+a.Name)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Analyzer{a}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[int][]*want{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				line := prog.Fset.Position(c.Pos()).Line
				for _, m := range wantQuoted.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(regexp.QuoteMeta(m[1]))
					if err != nil {
						t.Fatalf("line %d: bad want pattern %q: %v", line, m[1], err)
					}
					wants[line] = append(wants[line], &want{re: re})
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments", dir)
	}

	for _, d := range diags {
		found := false
		for _, w := range wants[d.Pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, found = true, true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for line, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("line %d: expected a diagnostic matching %q, got none", line, w.re)
			}
		}
	}
}

// TestFixtures runs every analyzer against its want-annotated fixture
// package. The subtest names are stable API: the CI lint-fixtures
// matrix runs `-run TestFixtures/<name>` per analyzer.
func TestFixtures(t *testing.T) {
	for _, a := range All {
		a := a
		t.Run(a.Name, func(t *testing.T) { runFixture(t, a) })
	}
}

func TestByName(t *testing.T) {
	for _, a := range All {
		if ByName(a.Name) != a {
			t.Fatalf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("no-such-analyzer") != nil {
		t.Fatal("unknown name should yield nil")
	}
}
