package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAllowDirectives drives the allowcheck fixture through a full
// Run: every genuine violation must be suppressed by its directive,
// and the hygiene pass must flag exactly the unknown-analyzer and
// stale directives.
func TestAllowDirectives(t *testing.T) {
	prog := fixtureProgram(t)
	pkg, err := prog.CheckDir(filepath.Join("testdata", "src", "allowcheck"),
		"semjoin/internal/lint/testdata/src/allowcheck")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(All, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}

	// Every panic in the fixture is excused by a directive — trailing,
	// line-above and function-doc (multi-line statement) styles alike.
	for _, d := range res.Diagnostics {
		t.Errorf("directive failed to suppress: %s", d)
	}

	checks := res.AllowCheck()
	type want struct {
		substr string
		found  bool
	}
	wants := []*want{
		{substr: `unknown analyzer "nopanics"`},
		{substr: "stale //lint:allow nopanic"}, // fixedLongAgo
		{substr: "stale //lint:allow nopanic"}, // cleanBody (doc-comment)
	}
	for _, d := range checks {
		if d.Analyzer != AllowCheckName {
			t.Errorf("hygiene diagnostic under wrong analyzer: %s", d)
		}
		matched := false
		for _, w := range wants {
			if !w.found && strings.Contains(d.Message, w.substr) {
				w.found, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected allowcheck diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.found {
			t.Errorf("missing allowcheck diagnostic containing %q", w.substr)
		}
	}
}

// TestAllowCheckSkipsAnalyzersThatDidNotRun pins the staleness rule:
// a directive for an analyzer outside the run set is left alone — its
// staleness cannot be judged from this run.
func TestAllowCheckSkipsAnalyzersThatDidNotRun(t *testing.T) {
	prog := fixtureProgram(t)
	pkg, err := prog.CheckDir(filepath.Join("testdata", "src", "allowcheck"),
		"semjoin/internal/lint/testdata/src/allowcheck")
	if err != nil {
		t.Fatal(err)
	}
	// Run only iterclose: the nopanic directives (used and stale alike)
	// must produce no staleness findings, while the unknown-analyzer
	// typo is still reported — existence does not depend on the run set.
	res, err := Run([]*Analyzer{IterClose}, []*Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.AllowCheck() {
		if strings.Contains(d.Message, "stale") {
			t.Errorf("stale verdict for an analyzer that did not run: %s", d)
		}
		if !strings.Contains(d.Message, `unknown analyzer "nopanics"`) {
			t.Errorf("unexpected allowcheck diagnostic: %s", d)
		}
	}
}
