package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// IterClose enforces the Volcano iterator discipline from PR 1: an
// iterator that is opened must reach Close on every path, including
// the error return from Open itself (the Materialize pattern
//
//	if err := it.Open(ctx); err != nil {
//		it.Close()
//		return nil, err
//	}
//
// ). Two rules:
//
//  1. A local variable with an iterator-shaped method set (Open, Next
//     or NextBatch, Close) that has Open called on it, never has Close
//     called on it
//     anywhere in the function, and does not escape (returned, passed
//     to a call, stored, sent) is a leak.
//  2. An `if err := x.Open(...); err != nil` (or `err = x.Open(...)`
//     followed by `if err != nil`) whose body returns without closing
//     x — and with no earlier `defer x.Close()` — leaks everything the
//     iterator tree opened before the failure.
var IterClose = &Analyzer{
	Name: "iterclose",
	Doc:  "every opened iterator must reach Close on all paths, including Open's own error return",
	Run:  runIterClose,
}

// isIteratorType reports whether t's method set (or its pointer's)
// contains Open, an advance method (Next or NextBatch) and Close — the
// shape shared by rel.Iterator, rel.BatchIterator and every concrete
// operator, row or vectorized.
func isIteratorType(t types.Type) bool {
	if t == nil {
		return false
	}
	has := func(ms *types.MethodSet) bool {
		var open, next, closed bool
		for i := 0; i < ms.Len(); i++ {
			switch ms.At(i).Obj().Name() {
			case "Open":
				open = true
			case "Next", "NextBatch":
				next = true
			case "Close":
				closed = true
			}
		}
		return open && next && closed
	}
	if has(types.NewMethodSet(t)) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return has(types.NewMethodSet(types.NewPointer(t)))
	}
	return false
}

func runIterClose(p *Pass) error {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkIterLeaks(p, fd.Body)
			// One CFG per function body, literals included — the
			// enclosing graph treats closures as opaque.
			for _, b := range funcBodies(fd.Body) {
				checkOpenErrorPaths(p, b, NewCFG(b))
			}
		}
	}
	return nil
}

// iterVar tracks one iterator-typed local through the function body.
type iterVar struct {
	openPos ast.Node
	closed  bool
	escaped bool
}

// checkIterLeaks implements rule 1 on one function body.
func checkIterLeaks(p *Pass, body *ast.BlockStmt) {
	vars := map[types.Object]*iterVar{}
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.TypesInfo.Defs[id]
		if !ok || obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok && isIteratorType(v.Type()) {
			vars[obj] = &iterVar{}
		}
		return true
	})
	if len(vars) == 0 {
		return
	}
	objOf := func(e ast.Expr) types.Object {
		if id, ok := e.(*ast.Ident); ok {
			return p.TypesInfo.Uses[id]
		}
		return nil
	}
	// markEscapes flags every tracked variable used inside e.
	markEscapes := func(e ast.Node) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v := vars[p.TypesInfo.Uses[id]]; v != nil {
					v.escaped = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if v := vars[objOf(sel.X)]; v != nil {
					switch sel.Sel.Name {
					case "Open":
						if v.openPos == nil {
							v.openPos = n
						}
					case "Close":
						v.closed = true
					}
					// Other method calls on the iterator itself
					// (Next, Schema, Stats) are not escapes.
					if len(n.Args) > 0 {
						for _, a := range n.Args {
							markEscapes(a)
						}
					}
					return false
				}
			}
			for _, a := range n.Args {
				markEscapes(a)
			}
			return true
		case *ast.ReturnStmt:
			markEscapes(n)
			return false
		case *ast.AssignStmt:
			// Aliasing: the iterator appearing on the right of a
			// later assignment may keep living under another name.
			for _, r := range n.Rhs {
				if _, isCall := r.(*ast.CallExpr); !isCall {
					markEscapes(r)
				}
			}
			return true
		case *ast.CompositeLit:
			markEscapes(n)
			return false
		case *ast.SendStmt:
			markEscapes(n.Value)
			return true
		}
		return true
	})
	for _, v := range vars {
		if v.openPos != nil && !v.closed && !v.escaped {
			p.Reportf(v.openPos.Pos(), "iterator is opened but never closed in this function")
		}
	}
}

// checkOpenErrorPaths implements rule 2 on one function body, path-
// sensitively over the CFG: from the top of the error body, does some
// execution path reach the function exit without closing (or handing
// off) the receiver? The pre-CFG version accepted a Close anywhere in
// the error body's subtree, so `if cond { it.Close() }; return err`
// passed even though the other branch leaked.
func checkOpenErrorPaths(p *Pass, body *ast.BlockStmt, cfg *CFG) {
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			ifs, ok := stmt.(*ast.IfStmt)
			if !ok {
				continue
			}
			var recv ast.Expr
			var errObj types.Object
			if init, ok := ifs.Init.(*ast.AssignStmt); ok {
				recv, errObj = openAssign(p, init)
			} else if ifs.Init == nil && i > 0 {
				if prev, ok := list[i-1].(*ast.AssignStmt); ok {
					recv, errObj = openAssign(p, prev)
				}
			}
			if recv == nil || !condIsErrNotNil(p, ifs.Cond, errObj) {
				continue
			}
			if !bodyReturns(ifs.Body) {
				continue
			}
			if len(ifs.Body.List) == 0 {
				continue
			}
			key := exprString(recv)
			// A defer anywhere before the if covers its error path.
			if deferredCloseBefore(p, body, key, ifs.Pos()) {
				continue
			}
			if cfg.PathFromStmtWithout(ifs.Body.List[0], nil, releasesIter(p, key)) {
				p.Reportf(ifs.Pos(), "error path after %s.Open returns without closing the iterator", key)
			}
		}
		return true
	})
}

// releasesIter builds the rule-2 release predicate for one receiver
// key: a CFG node releases the obligation when it closes the iterator
// (directly or via defer) or hands it off — passes it to a call or
// returns it, making some other owner responsible for the Close.
func releasesIter(p *Pass, key string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		released := false
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" && exprString(sel.X) == key {
					released = true
				}
				for _, a := range m.Args {
					if exprString(a) == key {
						released = true
					}
				}
			case *ast.ReturnStmt:
				for _, r := range m.Results {
					if exprString(r) == key {
						released = true
					}
				}
			}
			return !released
		})
		return released
	}
}

// openAssign matches `err := x.Open(...)` / `err = x.Open(...)` on an
// iterator-typed receiver, returning the receiver and the error object.
func openAssign(p *Pass, as *ast.AssignStmt) (ast.Expr, types.Object) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil, nil
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Open" {
		return nil, nil
	}
	if !isIteratorType(p.TypeOf(sel.X)) {
		return nil, nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, nil
	}
	obj := p.TypesInfo.Defs[id]
	if obj == nil {
		obj = p.TypesInfo.Uses[id]
	}
	return sel.X, obj
}

// condIsErrNotNil matches `err != nil` against the given err object.
func condIsErrNotNil(p *Pass, cond ast.Expr, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	b, ok := cond.(*ast.BinaryExpr)
	if !ok || b.Op.String() != "!=" {
		return false
	}
	for _, pair := range [][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		if id, ok := pair[0].(*ast.Ident); ok && p.TypesInfo.Uses[id] == errObj {
			if nilID, ok := pair[1].(*ast.Ident); ok && nilID.Name == "nil" {
				return true
			}
		}
	}
	return false
}

// bodyReturns reports whether the block contains a return statement
// (at any depth outside nested function literals).
func bodyReturns(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			found = true
		}
		return !found
	})
	return found
}

// deferredCloseBefore reports whether a `defer <key>.Close()` occurs
// before pos in the function body.
func deferredCloseBefore(p *Pass, body *ast.BlockStmt, key string, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		if d.Pos() >= pos {
			return false
		}
		if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" && exprString(sel.X) == key {
			found = true
		}
		return !found
	})
	return found
}
