package lint

import (
	"strings"
	"testing"
)

// TestModuleBaselineClean is the clean-baseline guard: the full
// analyzer suite over the real module — test files included — must
// report nothing, and the //lint:allow directives that keep it that
// way must all be live. A new panic, stranded iterator, lock
// violation, context-free worker loop, direct obs construction,
// leaked span, apply-before-log, unsynced rename or selection-blind
// kernel anywhere in the tree turns this test (and the CI lint leg)
// red.
func TestModuleBaselineClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; skipped under -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := LoadWith(LoadOpts{Tests: true}, root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	targets := prog.Targets()

	// The sweep must cover every layer, the lint driver itself
	// included — a cmd/ package silently dropping out of the load
	// would hollow out this guard.
	covered := map[string]bool{}
	testFiles := false
	for _, pkg := range targets {
		covered[pkg.Path] = true
		if !pkg.Tests {
			t.Errorf("package %s was loaded without its test files", pkg.Path)
		}
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				testFiles = true
			}
		}
	}
	for _, want := range []string{
		"semjoin",
		"semjoin/cmd/semjoinlint",
		"semjoin/internal/core",
		"semjoin/internal/lint",
		"semjoin/internal/obs",
		"semjoin/internal/rel",
		"semjoin/internal/server",
		"semjoin/internal/wal",
	} {
		if !covered[want] {
			t.Errorf("module sweep does not cover %s", want)
		}
	}
	if !testFiles {
		t.Error("tests-mode load produced no _test.go files; the -tests path is broken")
	}

	res, err := Run(All, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		t.Errorf("baseline violation: %s", d)
	}
	for _, d := range res.AllowCheck() {
		t.Errorf("directive hygiene violation: %s", d)
	}
}
