package lint

import "testing"

// TestModuleBaselineClean is the clean-baseline guard: the full
// analyzer suite over the real module must report nothing. A new
// panic, stranded iterator, lock violation, context-free worker loop
// or direct obs construction anywhere in the tree turns this test (and
// the CI lint leg) red.
func TestModuleBaselineClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; skipped under -short")
	}
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(All, prog.Targets())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("baseline violation: %s", d)
	}
}
