// Package fixture exercises the fsyncrename analyzer: temp-file
// publishes must follow write → file fsync → rename → directory fsync.
package fixture

import (
	"bufio"

	"semjoin/internal/wal"
)

// The PR-9 regression shape: the snapshot temp file is renamed into
// place without ever being fsynced; a crash after the rename leaves a
// published name with unstable content.
func publishUnsynced(fs wal.FS, dir string, data []byte) error {
	tmp := dir + "/snap.tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	f.Close()
	if err := fs.Rename(tmp, dir+"/snap.bin"); err != nil { // want "before the file is fsynced"
		return err
	}
	return fs.SyncDir(dir)
}

// Sync on one branch only: the fast path renames unsynced content.
func syncOnOneBranch(fs wal.FS, dir string, data []byte, fast bool) error {
	tmp := dir + "/seg.tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	if !fast {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	f.Close()
	if err := fs.Rename(tmp, dir+"/seg"); err != nil { // want "before the file is fsynced"
		return err
	}
	return fs.SyncDir(dir)
}

// Flush is buffered I/O, not durability: a bufio Flush does not stand
// in for the file's own Sync.
func flushIsNotSync(fs wal.FS, dir string, data []byte) error {
	tmp := dir + "/idx.tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	w.Write(data)
	w.Flush()
	f.Close()
	if err := fs.Rename(tmp, dir+"/idx"); err != nil { // want "before the file is fsynced"
		return err
	}
	return fs.SyncDir(dir)
}

// The rename lands but no SyncDir ever follows: the directory entry
// itself is not durable.
func publishNoDirSync(fs wal.FS, dir string, data []byte) error {
	tmp := dir + "/meta.tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	f.Close()
	return fs.Rename(tmp, dir+"/meta") // want "never followed by a directory fsync"
}

// -------- compliant shapes --------

// The full checkpoint protocol: write → Sync → Close → Rename →
// SyncDir, with error returns between the steps.
func publishProtocol(fs wal.FS, dir string, data []byte) error {
	tmp := dir + "/snap2.tmp"
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, dir+"/snap2.bin"); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

// A store wrapper named Rename is the protocol's building block, not a
// violation of it.
type wrapped struct{ fs wal.FS }

func (w *wrapped) Rename(oldname, newname string) error {
	return w.fs.Rename(oldname, newname)
}

// Renames with no tracked temp-file write in scope only owe the
// directory sync.
func retireSegment(fs wal.FS, dir, oldName, newName string) error {
	if err := fs.Rename(dir+"/"+oldName, dir+"/"+newName); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}
