// Package fixture exercises the ctxloop analyzer: unbounded worker
// loops spawned where a context is in scope must observe cancellation.
package fixture

import "context"

func spin(ctx context.Context, work chan int) {
	go func() {
		for { // want "infinite worker loop in goroutine"
			<-work
		}
	}()
}

func drain(ctx context.Context, work chan int) {
	go func() {
		for range work { // want "channel-range worker loop in goroutine"
		}
	}()
}

// -------- compliant shapes --------

func polite(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-work:
			}
		}
	}()
}

func errChecked(ctx context.Context, work chan int) {
	go func() {
		for v := range work {
			if ctx.Err() != nil {
				return
			}
			_ = v
		}
	}()
}

// No context in scope: the function that closes the channel bounds
// the worker's lifetime, no cancellation needed.
func noCtx(work chan int) {
	go func() {
		for range work {
		}
	}()
}

// Bounded loops are exempt even without a ctx check.
func bounded(ctx context.Context, xs []int) {
	go func() {
		sum := 0
		for i := 0; i < len(xs); i++ {
			sum += xs[i]
		}
		_ = sum
	}()
}
