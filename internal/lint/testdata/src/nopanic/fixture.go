// Package fixture exercises the nopanic analyzer: library code must
// report failures as errors, not crash the process.
package fixture

import (
	"errors"
	"log"
	"os"
)

func bad(x int) error {
	if x < 0 {
		panic("negative") // want "panic in library code"
	}
	if x == 1 {
		log.Fatalf("x = %d", x) // want "log.Fatalf in library code"
	}
	if x == 2 {
		os.Exit(2) // want "os.Exit in library code"
	}
	return nil
}

func good(x int) error {
	if x < 0 {
		return errors.New("negative")
	}
	log.Printf("x = %d", x) // logging without exiting is fine
	return nil
}

// The escape hatch suppresses the diagnostic, trailing-comment style.
func annotatedTrailing(x int) {
	if x < 0 {
		panic("invariant") //lint:allow nopanic documented invariant guard
	}
}

// ...and comment-above style.
func annotatedAbove(x int) {
	if x < 0 {
		//lint:allow nopanic documented invariant guard
		panic("invariant")
	}
}
