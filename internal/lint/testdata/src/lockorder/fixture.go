// Package fixture exercises the lockorder analyzer: release on every
// path, and never hold a shard lock across a blocking or fan-out
// boundary.
package fixture

import "sync"

type shard struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func neverReleased(s *shard) {
	s.mu.Lock() // want "s.mu is locked but never released"
	s.n++
}

// RLock paired with the writer Unlock is a mismatch, not a release.
func mismatch(s *shard) {
	s.rw.RLock() // want "s.rw is locked but never released"
	s.n++
	s.rw.Unlock()
}

func returnWhileHeld(s *shard) int {
	s.mu.Lock()
	if s.n > 0 {
		return s.n // want "return while s.mu is held"
	}
	s.mu.Unlock()
	return 0
}

func sendWhileHeld(s *shard, ch chan int) {
	s.mu.Lock()
	ch <- s.n // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func receiveWhileHeld(s *shard, ch chan int) {
	s.mu.Lock()
	s.n = <-ch // want "blocking channel receive while s.mu is held"
	s.mu.Unlock()
}

func fanOutWhileHeld(s *shard) {
	s.mu.Lock()
	go s.bump() // want "goroutine fan-out while s.mu is held"
	s.mu.Unlock()
}

func (s *shard) bump() { s.n++ }

func waitWhileHeld(s *shard, wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "WaitGroup.Wait while s.mu is held"
	s.mu.Unlock()
}

// -------- compliant shapes --------

func deferred(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func straightLine(s *shard) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func reader(s *shard) int {
	s.rw.RLock()
	n := s.n
	s.rw.RUnlock()
	return n
}

// A select-with-default peek is non-blocking by construction; the
// singleflight cache relies on this exemption.
func peek(s *shard, ready chan struct{}) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-ready:
		return true
	default:
		return false
	}
}

// -------- WAL group-commit shapes --------

type walLog struct {
	mu       sync.Mutex
	unsynced int
	werr     error
}

// Compliant: the group-commit append holds the lock across the write
// and the conditional fsync — file IO is not one of the blocking
// boundaries this analyzer flags — and releases on the fall-through.
func appendRecord(l *walLog, syncNow bool) {
	l.mu.Lock()
	l.unsynced++
	if syncNow {
		l.unsynced = 0
	}
	l.mu.Unlock()
}

// Violation: waking a commit waiter with a channel send while the log
// lock is held deadlocks the moment the waiter needs the same lock.
func notifyCommitWhileHeld(l *walLog, committed chan int) {
	l.mu.Lock()
	l.unsynced = 0
	committed <- 0 // want "channel send while l.mu is held"
	l.mu.Unlock()
}

// Violation: surfacing the sticky write error must not leave the log
// wedged AND locked.
func wedgeLeavesLocked(l *walLog) error {
	l.mu.Lock()
	if l.werr != nil {
		return l.werr // want "return while l.mu is held"
	}
	l.mu.Unlock()
	return nil
}

// Compliant form of the same check, deferred.
func wedgeChecked(l *walLog) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.werr
}
