// Package fixture exercises the lockorder analyzer: release on every
// path, and never hold a shard lock across a blocking or fan-out
// boundary.
package fixture

import "sync"

type shard struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func neverReleased(s *shard) {
	s.mu.Lock() // want "s.mu is locked but never released"
	s.n++
}

// RLock paired with the writer Unlock is a mismatch, not a release.
func mismatch(s *shard) {
	s.rw.RLock() // want "s.rw is locked but never released"
	s.n++
	s.rw.Unlock()
}

func returnWhileHeld(s *shard) int {
	s.mu.Lock()
	if s.n > 0 {
		return s.n // want "return while s.mu is held"
	}
	s.mu.Unlock()
	return 0
}

func sendWhileHeld(s *shard, ch chan int) {
	s.mu.Lock()
	ch <- s.n // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func receiveWhileHeld(s *shard, ch chan int) {
	s.mu.Lock()
	s.n = <-ch // want "blocking channel receive while s.mu is held"
	s.mu.Unlock()
}

func fanOutWhileHeld(s *shard) {
	s.mu.Lock()
	go s.bump() // want "goroutine fan-out while s.mu is held"
	s.mu.Unlock()
}

func (s *shard) bump() { s.n++ }

func waitWhileHeld(s *shard, wg *sync.WaitGroup) {
	s.mu.Lock()
	wg.Wait() // want "WaitGroup.Wait while s.mu is held"
	s.mu.Unlock()
}

// -------- compliant shapes --------

func deferred(s *shard) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func straightLine(s *shard) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

func reader(s *shard) int {
	s.rw.RLock()
	n := s.n
	s.rw.RUnlock()
	return n
}

// A select-with-default peek is non-blocking by construction; the
// singleflight cache relies on this exemption.
func peek(s *shard, ready chan struct{}) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-ready:
		return true
	default:
		return false
	}
}
