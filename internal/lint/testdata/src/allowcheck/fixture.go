// Package fixture exercises //lint:allow directive handling: line and
// line-above coverage, function-doc coverage of multi-line statements,
// and the allowcheck hygiene pass (unknown analyzers, stale
// directives).
package fixture

// Line-level directive on the offending line: used, not stale.
func trailing() {
	panic("boom") //lint:allow nopanic fixture: designed trap
}

// Directive on the line above the offending one: used, not stale.
func above() {
	//lint:allow nopanic fixture: designed trap
	panic("boom")
}

// A function-doc directive covers the whole function body — here the
// panic sits deep inside a multi-line composite literal, far from both
// the doc comment's line and the function's first line, where a
// line-scoped directive could never reach it.
//
//lint:allow nopanic fixture: registry construction is init-time only
func multiLine() map[string]func() {
	return map[string]func(){
		"a": func() {
			panic("deep inside a multi-line statement")
		},
	}
}

// The directive names an analyzer that does not exist: it suppresses
// nothing and allowcheck must say so.
func typoed() {
	x := 1 //lint:allow nopanics fixture: typo, should be reported
	_ = x
}

// The violation this directive once excused is gone: stale.
func fixedLongAgo() {
	y := 2 //lint:allow nopanic fixture: the panic here was removed
	_ = y
}

// A stale function-doc directive: nothing in the body trips nopanic.
//
//lint:allow nopanic fixture: body no longer panics
func cleanBody() int { return 3 }
