// Package fixture exercises the batchsel analyzer: kernels must honor
// the selection vector, never mutate a handed-off batch, and never
// pull row-at-a-time inside a batch kernel.
package fixture

import "semjoin/internal/rel"

// Selection-vector blindness: the live-row counter indexes column
// data directly; one upstream filter and this reads dead rows.
func sumBlind(b *rel.Batch, col int) float64 {
	v := b.Col(col)
	var sum float64
	for i, n := 0, b.Rows(); i < n; i++ {
		if v.IsNull(i) { // want "vector indexed by the live-row counter"
			continue
		}
		sum += v.ValueAt(i).Float() // want "vector indexed by the live-row counter"
	}
	return sum
}

// Same bug with the bound spelled inline.
func firstBlind(b *rel.Batch, col int) rel.Value {
	for i := 0; i < b.Rows(); i++ {
		return b.Col(col).ValueAt(i) // want "vector indexed by the live-row counter"
	}
	return rel.Null
}

// Mutation after handoff: the consumer already owns the batch when
// Refine shrinks it under their feet.
func sendThenRefine(out chan<- *rel.Batch, b *rel.Batch, keep func(int) bool) {
	out <- b
	b.Refine(keep) // want "on a batch already sent downstream"
}

// Row-at-a-time pull inside a batch kernel.
type rowIter struct{}

func (rowIter) Open() error              { return nil }
func (rowIter) Next() (rel.Tuple, error) { return nil, nil }
func (rowIter) Close() error             { return nil }

type bridgeKernel struct {
	in rowIter
	b  *rel.Batch
}

func (k *bridgeKernel) NextBatch() (*rel.Batch, error) {
	t, err := k.in.Next() // want "row-at-a-time Next inside a batch kernel"
	if err != nil {
		return nil, err
	}
	if t != nil {
		k.b.AppendTuple(t)
	}
	return k.b, nil
}

// -------- compliant shapes --------

// The canonical kernel loop: the counter goes through RowIdx before
// touching column data.
func sumSelAware(b *rel.Batch, col int) float64 {
	v := b.Col(col)
	var sum float64
	for i, n := 0, b.Rows(); i < n; i++ {
		r := b.RowIdx(i)
		if v.IsNull(r) {
			continue
		}
		sum += v.ValueAt(r).Float()
	}
	return sum
}

// The dense fast path is legal under the Sel() == nil guard.
func sumDenseFast(b *rel.Batch, col int) float64 {
	v := b.Col(col)
	var sum float64
	if b.Sel() == nil {
		for i, n := 0, b.Rows(); i < n; i++ {
			sum += v.ValueAt(i).Float()
		}
		return sum
	}
	for i, n := 0, b.Rows(); i < n; i++ {
		sum += v.ValueAt(b.RowIdx(i)).Float()
	}
	return sum
}

// TupleAt maps through the selection vector itself.
func collect(b *rel.Batch) []rel.Tuple {
	var out []rel.Tuple
	for i, n := 0, b.Rows(); i < n; i++ {
		out = append(out, b.TupleAt(i))
	}
	return out
}

// The producer loop: each send hands off the previous batch and the
// variable is reassigned to a fresh one before the next mutation.
func produce(out chan<- *rel.Batch, s *rel.Schema, rows []rel.Tuple) {
	b := rel.NewBatch(s)
	for _, t := range rows {
		b.AppendTuple(t)
		if b.Rows() >= 2 {
			out <- b
			b = rel.NewBatch(s)
		}
	}
	out <- b
}
