// Package fixture exercises the obsnil analyzer: Registry, Histogram
// and QueryLog must come from their nil-safe constructors.
package fixture

import "semjoin/internal/obs"

func literal() *obs.Registry {
	return &obs.Registry{} // want "direct construction of obs.Registry"
}

func newCall() *obs.QueryLog {
	return new(obs.QueryLog) // want "bypasses the nil-safe API"
}

func zeroValue() {
	var q obs.QueryLog // want "zero-value obs.QueryLog bypasses the nil-safe API"
	_ = q
}

// -------- compliant shapes --------

// A nil *Registry is the designed no-op state; pointer declarations
// are fine until assigned from a constructor.
func lazy() {
	var r *obs.Registry
	_ = r.Counter("noop")
}

func constructed() *obs.Histogram {
	r := obs.NewRegistry()
	return r.Histogram("latency_ms", []float64{1, 2, 4})
}

func logger() *obs.QueryLog {
	return obs.NewQueryLog()
}
