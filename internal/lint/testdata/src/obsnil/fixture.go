// Package fixture exercises the obsnil analyzer: Registry, Histogram,
// QueryLog, Tracer, TraceStore and Logger must come from their
// nil-safe constructors.
package fixture

import "semjoin/internal/obs"

func literal() *obs.Registry {
	return &obs.Registry{} // want "direct construction of obs.Registry"
}

func newCall() *obs.QueryLog {
	return new(obs.QueryLog) // want "bypasses the nil-safe API"
}

func zeroValue() {
	var q obs.QueryLog // want "zero-value obs.QueryLog bypasses the nil-safe API"
	_ = q
}

func tracerLiteral() *obs.Tracer {
	return &obs.Tracer{} // want "direct construction of obs.Tracer"
}

func storeNew() *obs.TraceStore {
	return new(obs.TraceStore) // want "new(obs.TraceStore) bypasses the nil-safe API"
}

func loggerZero() {
	var l obs.Logger // want "zero-value obs.Logger bypasses the nil-safe API"
	_ = l
}

// -------- compliant shapes --------

// A nil *Registry is the designed no-op state; pointer declarations
// are fine until assigned from a constructor.
func lazy() {
	var r *obs.Registry
	_ = r.Counter("noop")
}

func constructed() *obs.Histogram {
	r := obs.NewRegistry()
	return r.Histogram("latency_ms", []float64{1, 2, 4})
}

func logger() *obs.QueryLog {
	return obs.NewQueryLog()
}

// Pointer declarations of the tracing types are the designed nil
// no-op state; constructors produce the working instances.
func tracing() {
	var ts *obs.TraceStore
	ts.Add(nil)
	tr := obs.NewTracer(0.01, 0)
	_ = tr
	_ = obs.NewTraceStore(64)
	_ = obs.NopLogger()
}
