// Package fixture exercises the iterclose analyzer. The cursor type
// has the row iterator shape (Open/Next/Close) the analyzer keys on;
// batchCursor has the vectorized shape (Open/NextBatch/Close).
package fixture

import "context"

type cursor struct{ opened bool }

func (c *cursor) Open(ctx context.Context) error { c.opened = true; return nil }
func (c *cursor) Next() (int, error)             { return 0, nil }
func (c *cursor) Close() error                   { c.opened = false; return nil }

type batchCursor struct{ opened bool }

func (c *batchCursor) Open(ctx context.Context) error { c.opened = true; return nil }
func (c *batchCursor) NextBatch() ([]int, error)      { return nil, nil }
func (c *batchCursor) Close() error                   { c.opened = false; return nil }

// Rule 1: opened, never closed, never escapes.
func leak(ctx context.Context) {
	c := &cursor{}
	c.Open(ctx) // want "iterator is opened but never closed"
	c.Next()
}

// Rule 2: the error return from Open leaks what the tree opened.
func openErrLeak(ctx context.Context, c *cursor) error {
	if err := c.Open(ctx); err != nil { // want "error path after c.Open returns without closing"
		return err
	}
	defer c.Close()
	return nil
}

// Rule 2, split-assignment form.
func openErrLeakSplit(ctx context.Context, c *cursor) error {
	err := c.Open(ctx)
	if err != nil { // want "error path after c.Open returns without closing"
		return err
	}
	c.Close()
	return nil
}

// Closing on the error path satisfies both rules (the Materialize
// pattern).
func openErrClosed(ctx context.Context) error {
	c := &cursor{}
	if err := c.Open(ctx); err != nil {
		c.Close()
		return err
	}
	defer c.Close()
	return nil
}

// A defer placed before Open covers its error path too.
func openErrDeferred(ctx context.Context, c *cursor) error {
	defer c.Close()
	if err := c.Open(ctx); err != nil {
		return err
	}
	return nil
}

// An iterator handed to the caller is the caller's to close.
func handoff(ctx context.Context) *cursor {
	c := &cursor{}
	c.Open(ctx)
	return c
}

// An iterator passed to another function escapes likewise.
func delegate(ctx context.Context) {
	c := &cursor{}
	c.Open(ctx)
	register(c)
}

func register(c *cursor) { _ = c }

// Rule 1 applies to batch iterators: opened, never closed, no escape.
func batchLeak(ctx context.Context) {
	c := &batchCursor{}
	c.Open(ctx) // want "iterator is opened but never closed"
	c.NextBatch()
}

// Rule 2 applies to batch iterators: Open's error return must close.
func batchOpenErrLeak(ctx context.Context, c *batchCursor) error {
	if err := c.Open(ctx); err != nil { // want "error path after c.Open returns without closing"
		return err
	}
	defer c.Close()
	return nil
}

// The drain-then-close discipline satisfies both rules for batches.
func batchClosed(ctx context.Context) error {
	c := &batchCursor{}
	if err := c.Open(ctx); err != nil {
		c.Close()
		return err
	}
	for {
		b, err := c.NextBatch()
		if err != nil {
			c.Close()
			return err
		}
		if b == nil {
			break
		}
	}
	return c.Close()
}

// -------- WAL recovery shapes --------
//
// segmentCursor is the write-ahead-log recovery scan: open a segment
// file, iterate records until a torn or corrupt frame, close. The
// torn-tail early return is exactly where a scanner is tempted to
// abandon the handle.

type segmentCursor struct{ off int64 }

func (c *segmentCursor) Open(ctx context.Context) error { c.off = 0; return nil }
func (c *segmentCursor) Next() (int, error)             { c.off++; return 0, nil }
func (c *segmentCursor) Close() error                   { return nil }

// Rule 1 on the recovery shape: replay stops at the torn tail but the
// segment is never closed on any path.
func replayLeak(ctx context.Context) {
	c := &segmentCursor{}
	c.Open(ctx) // want "iterator is opened but never closed"
	for {
		if _, err := c.Next(); err != nil {
			return
		}
	}
}

// Rule 2 on the recovery shape: Open of a segment can fail (missing
// or unreadable file) and must not strand it.
func replayOpenErrLeak(ctx context.Context, c *segmentCursor) error {
	if err := c.Open(ctx); err != nil { // want "error path after c.Open returns without closing"
		return err
	}
	defer c.Close()
	return nil
}

// The compliant scan: truncate-at-corruption still closes via the
// early defer, mirroring wal.Open's segment loop.
func replayTruncates(ctx context.Context) error {
	c := &segmentCursor{}
	if err := c.Open(ctx); err != nil {
		c.Close()
		return err
	}
	defer c.Close()
	for {
		if _, err := c.Next(); err != nil {
			return nil // torn tail: stop replaying, keep the prefix
		}
	}
}
