// Package fixture exercises the iterclose analyzer. The cursor type
// has the iterator shape (Open/Next/Close) the analyzer keys on.
package fixture

import "context"

type cursor struct{ opened bool }

func (c *cursor) Open(ctx context.Context) error { c.opened = true; return nil }
func (c *cursor) Next() (int, error)             { return 0, nil }
func (c *cursor) Close() error                   { c.opened = false; return nil }

// Rule 1: opened, never closed, never escapes.
func leak(ctx context.Context) {
	c := &cursor{}
	c.Open(ctx) // want "iterator is opened but never closed"
	c.Next()
}

// Rule 2: the error return from Open leaks what the tree opened.
func openErrLeak(ctx context.Context, c *cursor) error {
	if err := c.Open(ctx); err != nil { // want "error path after c.Open returns without closing"
		return err
	}
	defer c.Close()
	return nil
}

// Rule 2, split-assignment form.
func openErrLeakSplit(ctx context.Context, c *cursor) error {
	err := c.Open(ctx)
	if err != nil { // want "error path after c.Open returns without closing"
		return err
	}
	c.Close()
	return nil
}

// Closing on the error path satisfies both rules (the Materialize
// pattern).
func openErrClosed(ctx context.Context) error {
	c := &cursor{}
	if err := c.Open(ctx); err != nil {
		c.Close()
		return err
	}
	defer c.Close()
	return nil
}

// A defer placed before Open covers its error path too.
func openErrDeferred(ctx context.Context, c *cursor) error {
	defer c.Close()
	if err := c.Open(ctx); err != nil {
		return err
	}
	return nil
}

// An iterator handed to the caller is the caller's to close.
func handoff(ctx context.Context) *cursor {
	c := &cursor{}
	c.Open(ctx)
	return c
}

// An iterator passed to another function escapes likewise.
func delegate(ctx context.Context) {
	c := &cursor{}
	c.Open(ctx)
	register(c)
}

func register(c *cursor) { _ = c }
