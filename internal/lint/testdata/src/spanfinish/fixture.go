// Package fixture exercises the spanfinish analyzer: every span or
// trace created via obs.StartSpan, Span.StartChild, Trace.StartSpan or
// Tracer.Start must reach End/Finish on all paths or be handed off.
package fixture

import (
	"errors"
	"time"

	"semjoin/internal/obs"
)

var errBoom = errors.New("boom")

func work() error { return errBoom }

// The PR-8 regression shape: the span is ended on the happy path only;
// the early error return leaks it and the duration histogram never
// sees the failed request.
func leakOnEarlyReturn() error {
	sp := obs.StartSpan("execute") // want "span/trace is not ended on every path"
	if err := work(); err != nil {
		return err
	}
	sp.End()
	return nil
}

func leakChildOnBranch(root *obs.Span) {
	child := root.StartChild("probe") // want "span/trace is not ended on every path"
	if work() != nil {
		return
	}
	child.End()
}

func traceNeverFinished(tr *obs.Tracer) error {
	t := tr.Start("query", 1) // want "span/trace is not ended on every path"
	if err := work(); err != nil {
		return err
	}
	t.Finish("ok")
	return nil
}

func droppedChild(root *obs.Span) {
	root.StartChild("orphan") // want "result of span creation is discarded"
}

func droppedRootSpan(t *obs.Trace) {
	t.StartSpan("orphan") // want "result of span creation is discarded"
	// t is never finished here, so nothing can end the root span.
}

// -------- compliant shapes --------

func deferEnd() error {
	sp := obs.StartSpan("execute")
	defer sp.End()
	return work()
}

func endBeforeErrorReturn() error {
	sp := obs.StartSpan("phase")
	err := work()
	sp.End()
	if err != nil {
		return err
	}
	return nil
}

// Trace.Finish ends the root span it handed out, so finishing the
// trace discharges the span obligation by provenance.
func provenanceFinish(tr *obs.Tracer) {
	t := tr.Start("query", 2)
	root := t.StartSpan("request")
	root.StartChild("admission").End()
	t.Finish("ok")
}

// The nil-guarded fallback reassigns the same variable; both creations
// share the one End.
func nilGuardFallback(t *obs.Trace) {
	root := t.StartSpan("query")
	if root == nil {
		root = obs.StartSpan("query")
	}
	root.End()
}

func handedOff(sink func(*obs.Span)) {
	sp := obs.StartSpan("handoff")
	sink(sp) // the callee owns the span now
}

func returned() *obs.Span {
	sp := obs.StartSpan("caller-owned")
	return sp
}

type holder struct{ sp *obs.Span }

func stored(h *holder) {
	sp := obs.StartSpan("stored")
	h.sp = sp
}

func captured() func() {
	sp := obs.StartSpan("deferred-elsewhere")
	return func() { sp.End() }
}

// Span.Record returns an already-ended child; it is not a creation.
func recorded(root *obs.Span) {
	root.Record("cached", time.Now(), 0)
}
