// Package fixture exercises the walorder analyzer: in functions that
// append to a *wal.Log, the in-memory apply must come strictly after
// the Append (log-then-apply).
package fixture

import "semjoin/internal/wal"

type engine struct{}

func (e *engine) ApplyGraphUpdate(payload []byte) error    { return nil }
func (e *engine) ApplyRelationUpdate(payload []byte) error { return nil }
func (e *engine) UpdateKeywords(words []string) error      { return nil }

type store struct {
	log *wal.Log
	eng *engine
}

// Apply-before-log: a crash between the two lines loses the update.
func (s *store) applyThenLog(payload []byte) error {
	if err := s.eng.ApplyGraphUpdate(payload); err != nil { // want "in-memory apply precedes the WAL Append"
		return err
	}
	if _, err := s.log.Append(1, payload); err != nil {
		return err
	}
	return nil
}

// The branch shape: on the retry path the apply has already happened
// when Append runs.
func (s *store) applyBeforeLogOnRetry(payload []byte, retry bool) error {
	if retry {
		if err := s.eng.ApplyRelationUpdate(payload); err != nil { // want "in-memory apply precedes the WAL Append"
			return err
		}
	}
	_, err := s.log.Append(2, payload)
	return err
}

// Loop shape: the first iteration's apply runs before anything has
// been logged.
func (s *store) applyInLoop(batches [][]byte) error {
	for _, b := range batches {
		if err := s.eng.ApplyGraphUpdate(b); err != nil { // want "in-memory apply precedes the WAL Append"
			return err
		}
		if _, err := s.log.Append(1, b); err != nil {
			return err
		}
	}
	return nil
}

// -------- compliant shapes --------

// The canonical DurableStore write path: log (fsynced per policy),
// then apply.
func (s *store) logThenApply(payload []byte) error {
	if _, err := s.log.Append(1, payload); err != nil {
		return err
	}
	return s.eng.ApplyGraphUpdate(payload)
}

func (s *store) logSyncThenApply(words []string, payload []byte) error {
	if _, err := s.log.Append(3, payload); err != nil {
		return err
	}
	if err := s.log.Sync(); err != nil {
		return err
	}
	return s.eng.UpdateKeywords(words)
}

// The per-record loop: every path to an apply has already logged that
// iteration's record — the back-edge to the next Append is not an
// ordering violation.
func (s *store) logThenApplyLoop(batches [][]byte) error {
	for _, b := range batches {
		if _, err := s.log.Append(1, b); err != nil {
			return err
		}
		if err := s.eng.ApplyGraphUpdate(b); err != nil {
			return err
		}
	}
	return nil
}

// Replay applies without logging — no Append in the function, so the
// analyzer stays silent.
func (s *store) replay(records [][]byte) error {
	for _, r := range records {
		if err := s.eng.ApplyGraphUpdate(r); err != nil {
			return err
		}
	}
	return nil
}
