// Package lint is a stdlib-only static-analysis suite that enforces
// the engine's cross-layer runtime invariants at compile time:
// iterator Open/Next/Close discipline, shard/cache lock discipline,
// context cancellation in worker fan-outs, no-panic library code and
// nil-safe obs construction. The framework mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic and a
// multichecker driver in cmd/semjoinlint) but is built on go/ast,
// go/types and go/importer alone, so the module stays dependency-free.
//
// Every analyzer honours an escape hatch: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line (or the line directly above it) suppresses
// that analyzer's diagnostics for the line. The reason is mandatory by
// convention — it is the reviewable record of why the invariant is
// deliberately violated at that site.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, run once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// allowDirective is the comment prefix of the escape hatch.
const allowDirective = "lint:allow"

// allowedLines scans a file's comments for //lint:allow directives and
// returns the set of (line, analyzer) pairs they suppress. A directive
// suppresses its own line and the line directly below it, so both the
// trailing-comment and the comment-above styles work:
//
//	panic(err) //lint:allow nopanic documented Must-constructor
//
//	//lint:allow nopanic documented Must-constructor
//	panic(err)
func allowedLines(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := map[int]map[string]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			for _, name := range strings.Split(fields[0], ",") {
				for _, l := range []int{line, line + 1} {
					if out[l] == nil {
						out[l] = map[string]bool{}
					}
					out[l][name] = true
				}
			}
		}
	}
	return out
}

// RunAnalyzers applies each analyzer to each package and returns the
// surviving diagnostics (suppressed ones filtered out), sorted by
// position.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		// The suppression index is per-file, keyed by filename.
		allowed := map[string]map[int]map[string]bool{}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			allowed[name] = allowedLines(pkg.Fset, f)
		}
		for _, a := range analyzers {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range raw {
				if m := allowed[d.Pos.Filename]; m != nil && m[d.Pos.Line][a.Name] {
					continue
				}
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ---------------------------------------------------------------- helpers

// exprString renders a (small) expression to its source-ish form; the
// lock analyzer uses it to identify "the same mutex" syntactically
// (e.g. "sh.mu", "e.mu", "s.mu").
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// namedOrPointee unwraps pointers and returns the named type of t, or
// nil when t is not (a pointer to) a named type.
func namedOrPointee(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isNamedType reports whether t is (a pointer to) the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
