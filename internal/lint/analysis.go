// Package lint is a stdlib-only static-analysis suite that enforces
// the engine's cross-layer runtime invariants at compile time:
// iterator Open/Next/Close discipline, shard/cache lock discipline,
// context cancellation in worker fan-outs, no-panic library code and
// nil-safe obs construction. The framework mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer / Pass / Diagnostic and a
// multichecker driver in cmd/semjoinlint) but is built on go/ast,
// go/types and go/importer alone, so the module stays dependency-free.
//
// Every analyzer honours an escape hatch: a comment of the form
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line (or the line directly above it) suppresses
// that analyzer's diagnostics for the line; placed in a function's doc
// comment it suppresses them for the whole function. The reason is
// mandatory by convention — it is the reviewable record of why the
// invariant is deliberately violated at that site. Directives are
// themselves checked: the allowcheck pass reports directives naming an
// unknown analyzer and directives that no longer suppress anything.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check, run once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Tests is set when the package was loaded with its _test.go files
	// included (-tests); analyzers then stop skipping them.
	Tests bool

	diags *[]Diagnostic
}

// SkipFile reports whether f is excluded from this pass: _test.go
// files are skipped unless the package was loaded in tests mode.
func (p *Pass) SkipFile(f *ast.File) bool {
	if p.Tests {
		return false
	}
	return strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go")
}

// Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}

// allowDirective is the comment prefix of the escape hatch.
const allowDirective = "lint:allow"

// AllowCheckName is the pseudo-analyzer name under which directive
// hygiene findings (unknown analyzer, stale directive) are reported.
const AllowCheckName = "allowcheck"

// allowRecord is one parsed //lint:allow directive for one analyzer
// name (a comma-separated directive yields one record per name).
type allowRecord struct {
	pos      token.Position
	analyzer string
	// from/to is the inclusive line range the directive covers.
	from, to int
	used     bool
}

// parseAllows scans a file's comments for //lint:allow directives. A
// directive suppresses its own line and the line directly below it,
// so both the trailing-comment and the comment-above styles work:
//
//	panic(err) //lint:allow nopanic documented Must-constructor
//
//	//lint:allow nopanic documented Must-constructor
//	panic(err)
//
// A directive inside a function's doc comment covers the entire
// function — the escape hatch for diagnostics anchored deep inside
// multi-line statements or reported at several sites of one protocol.
func parseAllows(fset *token.FileSet, f *ast.File) []*allowRecord {
	// Doc-comment membership: comment → line range of the documented
	// function.
	funcRange := map[*ast.Comment][2]int{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		r := [2]int{fset.Position(fd.Pos()).Line, fset.Position(fd.End()).Line}
		for _, c := range fd.Doc.List {
			funcRange[c] = r
		}
	}
	var out []*allowRecord
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, allowDirective) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, allowDirective))
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			from, to := pos.Line, pos.Line+1
			if r, ok := funcRange[c]; ok {
				from, to = r[0], r[1]
			}
			for _, name := range strings.Split(fields[0], ",") {
				out = append(out, &allowRecord{pos: pos, analyzer: name, from: from, to: to})
			}
		}
	}
	return out
}

// Result is the outcome of one Run: the surviving diagnostics plus
// the directive bookkeeping the allowcheck pass reads.
type Result struct {
	// Diagnostics are the findings not suppressed by a directive,
	// sorted by position.
	Diagnostics []Diagnostic

	allows []*allowRecord
	ran    map[string]bool
}

// Run applies each analyzer to each package, filters the findings
// through the //lint:allow directives, and returns both the surviving
// diagnostics and the directive usage record.
func Run(analyzers []*Analyzer, pkgs []*Package) (*Result, error) {
	res := &Result{ran: map[string]bool{}}
	for _, a := range analyzers {
		res.ran[a.Name] = true
	}
	for _, pkg := range pkgs {
		// The suppression index is per-file, keyed by filename.
		allowed := map[string][]*allowRecord{}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			recs := parseAllows(pkg.Fset, f)
			allowed[name] = recs
			res.allows = append(res.allows, recs...)
		}
		for _, a := range analyzers {
			var raw []Diagnostic
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Tests:     pkg.Tests,
				diags:     &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
			}
		next:
			for _, d := range raw {
				for _, rec := range allowed[d.Pos.Filename] {
					if rec.analyzer == a.Name && rec.from <= d.Pos.Line && d.Pos.Line <= rec.to {
						rec.used = true
						continue next
					}
				}
				res.Diagnostics = append(res.Diagnostics, d)
			}
		}
	}
	sortDiagnostics(res.Diagnostics)
	return res, nil
}

// AllowCheck returns directive-hygiene diagnostics for the completed
// run: directives naming an analyzer that does not exist (likely a
// typo silently disabling nothing), and stale directives — ones whose
// analyzer ran over their file yet suppressed no finding, meaning the
// violation they document is gone. Directives for analyzers that did
// not run are left alone: their staleness cannot be judged.
func (r *Result) AllowCheck() []Diagnostic {
	known := map[string]bool{AllowCheckName: true}
	for _, a := range All {
		known[a.Name] = true
	}
	var out []Diagnostic
	for _, rec := range r.allows {
		switch {
		case !known[rec.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: AllowCheckName,
				Pos:      rec.pos,
				Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q (directive suppresses nothing)", rec.analyzer),
			})
		case rec.analyzer != AllowCheckName && r.ran[rec.analyzer] && !rec.used:
			out = append(out, Diagnostic{
				Analyzer: AllowCheckName,
				Pos:      rec.pos,
				Message:  fmt.Sprintf("stale //lint:allow %s: the directive no longer suppresses any diagnostic", rec.analyzer),
			})
		}
	}
	sortDiagnostics(out)
	return out
}

// RunAnalyzers is the historical entry point: Run without the
// directive bookkeeping.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	res, err := Run(analyzers, pkgs)
	if err != nil {
		return nil, err
	}
	return res.Diagnostics, nil
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// ---------------------------------------------------------------- helpers

// exprString renders a (small) expression to its source-ish form; the
// lock analyzer uses it to identify "the same mutex" syntactically
// (e.g. "sh.mu", "e.mu", "s.mu").
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// namedOrPointee unwraps pointers and returns the named type of t, or
// nil when t is not (a pointer to) a named type.
func namedOrPointee(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	if n == nil {
		if p, ok := t.(*types.Pointer); ok {
			n, _ = p.Elem().(*types.Named)
		}
	}
	return n
}

// isNamedType reports whether t is (a pointer to) the named type
// pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	n := namedOrPointee(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}
