package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Baseline is a multiset of previously-accepted diagnostics, keyed by
// (file, analyzer, message) — deliberately not by line, so unrelated
// edits that shift code do not resurrect suppressed findings. Counts
// make the key a multiset: three accepted findings of one shape in one
// file absorb at most three current ones; a fourth is new.
type Baseline struct {
	counts map[baselineKey]int
}

type baselineKey struct {
	File     string
	Analyzer string
	Message  string
}

// ReadBaselineFile loads a baseline from a -json output file.
func ReadBaselineFile(path string) (*Baseline, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := ReadBaseline(f)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	return b, nil
}

// ReadBaseline parses baseline JSON (the -json diagnostic array).
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var recs []jsonDiagnostic
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, err
	}
	b := &Baseline{counts: map[baselineKey]int{}}
	for _, rec := range recs {
		b.counts[baselineKey{File: rec.File, Analyzer: rec.Analyzer, Message: rec.Message}]++
	}
	return b, nil
}

// Filter returns the diagnostics not absorbed by the baseline: each
// baseline entry forgives at most its recorded count of matching
// findings (matched in position order). root relativizes diagnostic
// paths the same way the baseline file records them.
func (b *Baseline) Filter(root string, diags []Diagnostic) []Diagnostic {
	if b == nil {
		return diags
	}
	remaining := make(map[baselineKey]int, len(b.counts))
	for k, v := range b.counts {
		remaining[k] = v
	}
	var out []Diagnostic
	for _, d := range diags {
		k := baselineKey{
			File:     rootRelative(root, d.Pos.Filename),
			Analyzer: d.Analyzer,
			Message:  d.Message,
		}
		if remaining[k] > 0 {
			remaining[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}
