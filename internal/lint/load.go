package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Target marks packages named by the load patterns (as opposed to
	// dependencies pulled in for type-checking only).
	Target bool
	// Tests marks packages loaded with their in-package _test.go files
	// included (LoadOpts.Tests).
	Tests bool
}

// Program is a loaded set of packages sharing one FileSet and one
// type-checker universe.
type Program struct {
	Fset *token.FileSet
	// Pkgs holds the module-local packages in dependency order.
	Pkgs []*Package

	byPath  map[string]*Package
	std     types.ImporterFrom
	dir     string
	modPath string
}

// Targets returns the packages matched by the load patterns.
func (p *Program) Targets() []*Package {
	var out []*Package
	for _, pkg := range p.Pkgs {
		if pkg.Target {
			out = append(out, pkg)
		}
	}
	return out
}

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath  string
	Dir         string
	Name        string
	GoFiles     []string
	TestGoFiles []string
	Imports     []string
	Standard    bool
	DepOnly     bool
}

// goList runs `go list -deps -json <patterns>` in dir and decodes the
// stream. -deps output is already in dependency order (dependencies
// before dependents), which the type-checking loop relies on.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,Name,GoFiles,TestGoFiles,Imports,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	return pkgs, nil
}

// ModuleRoot locates the enclosing module directory of dir.
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Dir}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// modulePath reports the module path of the module enclosing dir.
func modulePath(dir string) (string, error) {
	cmd := exec.Command("go", "list", "-m", "-f", "{{.Path}}")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("lint: go list -m: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// LoadOpts configures Load.
type LoadOpts struct {
	// Tests includes each target package's in-package _test.go files
	// (go list's TestGoFiles; external foo_test packages are out of
	// scope). Test-only module-local imports are loaded on demand.
	Tests bool
}

// Load lists, parses and type-checks the module packages matched by
// patterns (plus their module-local dependencies), rooted at dir.
// Standard-library imports are resolved from source via go/importer;
// nothing outside the standard library and the module itself is
// required.
func Load(dir string, patterns ...string) (*Program, error) {
	return LoadWith(LoadOpts{}, dir, patterns...)
}

// LoadWith is Load with options.
func LoadWith(opts LoadOpts, dir string, patterns ...string) (*Program, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	prog := &Program{
		Fset:    fset,
		byPath:  map[string]*Package{},
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		dir:     dir,
		modPath: modPath,
	}
	for _, lp := range listed {
		if lp.Standard {
			continue
		}
		if _, ok := prog.byPath[lp.ImportPath]; ok {
			continue // already pulled in on demand by a test import
		}
		names := lp.GoFiles
		withTests := opts.Tests && !lp.DepOnly
		if withTests && len(lp.TestGoFiles) > 0 {
			names = append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...)
		}
		if len(names) == 0 {
			continue
		}
		files := make([]string, len(names))
		for i, f := range names {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := prog.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkg.Target = !lp.DepOnly
		pkg.Tests = withTests
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

// Import resolves path against the already-checked module packages,
// loading module-local packages on demand (test files import packages
// outside the -deps closure of the production build), and falling back
// to the standard-library source importer. It implements
// types.Importer for the checker.
func (p *Program) Import(path string) (*types.Package, error) {
	if pkg, ok := p.byPath[path]; ok {
		return pkg.Types, nil
	}
	if p.modPath != "" && (path == p.modPath || strings.HasPrefix(path, p.modPath+"/")) {
		if err := p.loadOnDemand(path); err != nil {
			return nil, err
		}
		if pkg, ok := p.byPath[path]; ok {
			return pkg.Types, nil
		}
	}
	return p.std.Import(path)
}

// loadOnDemand lists path with its dependency closure and checks every
// module-local package not yet loaded, in dependency order. On-demand
// packages are never targets and never include test files. In-package
// test imports cannot cycle back into their own package (the compiler
// rejects that), so the recursion through check → Import terminates.
func (p *Program) loadOnDemand(path string) error {
	listed, err := goList(p.dir, []string{path})
	if err != nil {
		return err
	}
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		if _, ok := p.byPath[lp.ImportPath]; ok {
			continue
		}
		files := make([]string, len(lp.GoFiles))
		for i, f := range lp.GoFiles {
			files[i] = filepath.Join(lp.Dir, f)
		}
		pkg, err := p.check(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return err
		}
		p.Pkgs = append(p.Pkgs, pkg)
	}
	return nil
}

// check parses and type-checks one package from explicit file paths.
func (p *Program) check(importPath, dir string, filenames []string) (*Package, error) {
	sort.Strings(filenames)
	files := make([]*ast.File, 0, len(filenames))
	for _, fn := range filenames {
		f, err := parser.ParseFile(p.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %v", fn, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: p, FakeImportC: true}
	tpkg, err := conf.Check(importPath, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %v", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: p.Fset, Files: files, Types: tpkg, Info: info}
	p.byPath[importPath] = pkg
	return pkg, nil
}

// CheckDir parses and type-checks every non-test .go file of one
// directory as a standalone package under the given import path, with
// module-local imports resolved through the already-loaded program.
// The fixture tests use it to check testdata packages that are
// deliberately excluded from the normal build.
func (p *Program) CheckDir(dir, importPath string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var files []string
	for _, m := range matches {
		if strings.HasSuffix(m, "_test.go") {
			continue
		}
		files = append(files, m)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	return p.check(importPath, dir, files)
}
