package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// jsonDiagnostic is the machine-readable diagnostic record emitted by
// -json. The same shape is what -baseline consumes: a baseline file is
// simply a previous run's -json output.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// rootRelative rewrites an absolute diagnostic path to be relative to
// the module root, so -json/-sarif output and baseline files are
// machine-independent. Paths outside the root pass through unchanged.
func rootRelative(root, filename string) string {
	if root == "" {
		return filename
	}
	if rel, err := filepath.Rel(root, filename); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filename
}

func toJSONDiagnostics(root string, diags []Diagnostic) []jsonDiagnostic {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			Analyzer: d.Analyzer,
			File:     rootRelative(root, d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

// WriteJSON emits the diagnostics as a JSON array (never null) with
// module-root-relative paths. The output doubles as a -baseline file.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(toJSONDiagnostics(root, diags))
}

// ---------------------------------------------------------------- SARIF

// The static-analysis interchange types below cover the slice of SARIF
// 2.1.0 that code-scanning UIs consume: one run, one tool with a rule
// per analyzer, one result per diagnostic with a physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

const sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// WriteSARIF emits the diagnostics as a SARIF 2.1.0 log. Every suite
// analyzer (plus the allowcheck pseudo-analyzer) appears as a rule
// even when it found nothing, so code-scanning UIs list the whole
// rule catalogue; results reference rules by ID.
func WriteSARIF(w io.Writer, root string, diags []Diagnostic) error {
	rules := make([]sarifRule, 0, len(All)+1)
	for _, a := range All {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifMessage{Text: a.Doc},
		})
	}
	rules = append(rules, sarifRule{
		ID:               AllowCheckName,
		ShortDescription: sarifMessage{Text: "lint:allow directives must name a real analyzer and still suppress something"},
	})
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: rootRelative(root, d.Pos.Filename)},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "semjoinlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
