package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockOrder enforces the shard/cache mutex discipline from PR 2:
// every sync.Mutex/RWMutex acquired in a function is released on
// every return path, and the held region never crosses a blocking
// channel operation or a fan-out boundary (go statement, WaitGroup
// Wait). Channel operations inside a select are exempt — the
// singleflight cache peeks at ready-channels with a
// select-with-default while holding the shard lock, which is
// non-blocking by construction.
//
// The analysis is intentionally linear: it scans the statement list
// containing each Lock call up to the matching Unlock (deferred
// unlocks end the analysis immediately). That is exactly the shape of
// every lock region in this codebase; exotic flow (lock in one
// function, unlock in another) needs a //lint:allow lockorder
// annotation explaining the protocol.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutexes must be released on every return path and never held across blocking channel ops or fan-out boundaries",
	Run:  runLockOrder,
}

// isMutexType reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// lockCall matches a statement of the form `<expr>.Lock()` (or RLock/
// Unlock/RUnlock) on a mutex-typed receiver and returns the canonical
// key ("sh.mu" / "sh.mu#R") plus which operation it is.
func lockCall(p *Pass, stmt ast.Stmt) (key string, op string) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", ""
	}
	return lockCallExpr(p, es.X)
}

func lockCallExpr(p *Pass, e ast.Expr) (key string, op string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	if !isMutexType(p.TypeOf(sel.X)) {
		return "", ""
	}
	key = exprString(sel.X)
	if strings.HasPrefix(name, "R") {
		key += "#R"
	}
	if name == "Lock" || name == "RLock" {
		return key, "lock"
	}
	return key, "unlock"
}

func runLockOrder(p *Pass) error {
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBody(p, fd.Body)
		}
	}
	return nil
}

func checkLockBody(p *Pass, body *ast.BlockStmt) {
	// Pass 1 over the whole body (closures included): which keys are
	// ever unlocked, and which are released by a defer.
	unlocked := map[string]bool{}
	deferred := map[string]bool{}
	locks := map[string][]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if k, op := lockCallExpr(p, n.Call); op == "unlock" {
				deferred[k] = true
				unlocked[k] = true
			}
			// defer func() { ...; mu.Unlock() }() also counts.
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.ExprStmt); ok {
						if k, op := lockCallExpr(p, call.X); op == "unlock" {
							deferred[k] = true
							unlocked[k] = true
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			if k, op := lockCallExpr(p, n); op != "" {
				if op == "unlock" {
					unlocked[k] = true
				} else {
					locks[k] = append(locks[k], n)
				}
			}
		}
		return true
	})
	for k, sites := range locks {
		if !unlocked[k] {
			for _, site := range sites {
				p.Reportf(site.Pos(), "%s is locked but never released in this function (missing Unlock or defer)", displayKey(k))
			}
		}
	}
	// Pass 2: linear held-region scan of every statement list.
	ast.Inspect(body, func(n ast.Node) bool {
		var list []ast.Stmt
		switch n := n.(type) {
		case *ast.BlockStmt:
			list = n.List
		case *ast.CaseClause:
			list = n.Body
		case *ast.CommClause:
			list = n.Body
		default:
			return true
		}
		for i, stmt := range list {
			k, op := lockCall(p, stmt)
			if op != "lock" || deferred[k] {
				continue
			}
			scanHeldRegion(p, k, list[i+1:])
		}
		return true
	})
}

// scanHeldRegion walks the statements following a Lock until one of
// them releases the same key, flagging blocking operations and
// returns inside the held region.
func scanHeldRegion(p *Pass, key string, rest []ast.Stmt) {
	for _, stmt := range rest {
		if stmtUnlocks(p, stmt, key) {
			return
		}
		reportHeldViolations(p, key, stmt)
	}
}

// stmtUnlocks reports whether the statement subtree (closures
// excluded) releases key, either directly or via defer.
func stmtUnlocks(p *Pass, stmt ast.Stmt, key string) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if k, op := lockCallExpr(p, n); op == "unlock" && k == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// reportHeldViolations flags blocking channel operations, fan-out
// boundaries and returns inside one held-region statement. Select
// statements are skipped wholesale (the select-with-default peek is
// non-blocking; a select with a ctx.Done arm is bounded), as are
// nested function literals and defers (they do not run while the lock
// is held at this point).
func reportHeldViolations(p *Pass, key string, stmt ast.Stmt) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.SelectStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			p.Reportf(n.Pos(), "channel send while %s is held", displayKey(key))
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				p.Reportf(n.Pos(), "blocking channel receive while %s is held", displayKey(key))
			}
		case *ast.GoStmt:
			p.Reportf(n.Pos(), "goroutine fan-out while %s is held", displayKey(key))
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if isNamedType(p.TypeOf(sel.X), "sync", "WaitGroup") {
					p.Reportf(n.Pos(), "WaitGroup.Wait while %s is held", displayKey(key))
				}
			}
		case *ast.ReturnStmt:
			p.Reportf(n.Pos(), "return while %s is held (missing %s.Unlock on this path)", displayKey(key), displayKey(key))
		}
		return true
	})
}

// displayKey strips the reader-lock marker for messages.
func displayKey(key string) string {
	return strings.TrimSuffix(key, "#R")
}
