package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder enforces the shard/cache mutex discipline from PR 2:
// every sync.Mutex/RWMutex acquired in a function is released on
// every return path, and the held region never crosses a blocking
// channel operation or a fan-out boundary (go statement, WaitGroup
// Wait). Channel operations inside a select are exempt — the
// singleflight cache peeks at ready-channels with a
// select-with-default while holding the shard lock, which is
// non-blocking by construction.
//
// Since PR 10 the held-region analysis walks the function's CFG: from
// each non-deferred Lock, every path is followed until a node releases
// the same key, and the nodes inside that region are checked. Unlike
// the linear list scan it replaces, this sees through branches — in
//
//	mu.Lock()
//	if fast { mu.Unlock(); return }
//	<-ch
//
// the receive is reached with the lock held via the slow path and is
// flagged. Exotic flow (lock in one function, unlock in another) still
// needs a //lint:allow lockorder annotation explaining the protocol.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "mutexes must be released on every return path and never held across blocking channel ops or fan-out boundaries",
	Run:  runLockOrder,
}

// isMutexType reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// lockCallExpr matches `<expr>.Lock()` (or RLock/Unlock/RUnlock) on a
// mutex-typed receiver and returns the canonical key ("sh.mu" /
// "sh.mu#R") plus which operation it is.
func lockCallExpr(p *Pass, e ast.Expr) (key string, op string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", ""
	}
	if !isMutexType(p.TypeOf(sel.X)) {
		return "", ""
	}
	key = exprString(sel.X)
	if strings.HasPrefix(name, "R") {
		key += "#R"
	}
	if name == "Lock" || name == "RLock" {
		return key, "lock"
	}
	return key, "unlock"
}

func runLockOrder(p *Pass) error {
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockBody(p, fd.Body)
		}
	}
	return nil
}

func checkLockBody(p *Pass, body *ast.BlockStmt) {
	// Pass 1 over the whole body (closures included): which keys are
	// ever unlocked, and which are released by a defer.
	unlocked := map[string]bool{}
	deferred := map[string]bool{}
	locks := map[string][]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if k, op := lockCallExpr(p, n.Call); op == "unlock" {
				deferred[k] = true
				unlocked[k] = true
			}
			// defer func() { ...; mu.Unlock() }() also counts.
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, func(m ast.Node) bool {
					if call, ok := m.(*ast.ExprStmt); ok {
						if k, op := lockCallExpr(p, call.X); op == "unlock" {
							deferred[k] = true
							unlocked[k] = true
						}
					}
					return true
				})
			}
		case *ast.CallExpr:
			if k, op := lockCallExpr(p, n); op != "" {
				if op == "unlock" {
					unlocked[k] = true
				} else {
					locks[k] = append(locks[k], n)
				}
			}
		}
		return true
	})
	for k, sites := range locks {
		if !unlocked[k] {
			for _, site := range sites {
				p.Reportf(site.Pos(), "%s is locked but never released in this function (missing Unlock or defer)", displayKey(k))
			}
		}
	}
	// Pass 2: CFG held-region traversal from every non-deferred Lock,
	// once per function body (closures get their own graphs).
	for _, fb := range funcBodies(body) {
		cfg := NewCFG(fb)
		for _, bl := range cfg.Blocks {
			for i, n := range bl.Nodes {
				es, ok := n.(*ast.ExprStmt)
				if !ok {
					continue
				}
				k, op := lockCallExpr(p, es.X)
				if op != "lock" || deferred[k] {
					continue
				}
				scanHeldRegion(p, cfg, k, bl, i+1)
			}
		}
	}
}

// scanHeldRegion follows every CFG path from just after a Lock until a
// node releases the same key, flagging blocking operations, fan-out
// boundaries and returns inside the held region. Each violating
// position is reported once even when several paths reach it.
func scanHeldRegion(p *Pass, cfg *CFG, key string, start *Block, idx int) {
	type violation struct {
		pos    token.Pos
		format string
	}
	var found []violation
	reported := map[token.Pos]bool{}
	report := func(pos token.Pos, format string) {
		if !reported[pos] {
			reported[pos] = true
			found = append(found, violation{pos, format})
		}
	}
	seen := map[*Block]bool{}
	var walk func(bl *Block, i int)
	walk = func(bl *Block, i int) {
		for ; i < len(bl.Nodes); i++ {
			n := bl.Nodes[i]
			if nodeUnlocks(p, n, key) {
				return
			}
			collectHeldViolations(p, cfg, key, n, report)
		}
		for _, s := range bl.Succs {
			if !seen[s] {
				seen[s] = true
				walk(s, 0)
			}
		}
	}
	walk(start, idx)
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, v := range found {
		p.Reportf(v.pos, v.format, displayKey(key))
	}
}

// nodeUnlocks reports whether the CFG node's subtree (closures
// excluded) releases key, either directly or via defer.
func nodeUnlocks(p *Pass, node ast.Node, key string) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if k, op := lockCallExpr(p, n); op == "unlock" && k == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// collectHeldViolations flags blocking channel operations, fan-out
// boundaries and returns inside one held-region CFG node. Nodes lifted
// out of a select are exempt (the select-with-default peek is
// non-blocking; a select with a ctx.Done arm is bounded), as are
// nested function literals and defers (they do not run while the lock
// is held at this point).
func collectHeldViolations(p *Pass, cfg *CFG, key string, node ast.Node, report func(token.Pos, string)) {
	if cfg.InSelect(node) {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.SelectStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			report(n.Pos(), "channel send while %s is held")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				report(n.Pos(), "blocking channel receive while %s is held")
			}
		case *ast.GoStmt:
			report(n.Pos(), "goroutine fan-out while %s is held")
			return false
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				if isNamedType(p.TypeOf(sel.X), "sync", "WaitGroup") {
					report(n.Pos(), "WaitGroup.Wait while %s is held")
				}
			}
		case *ast.ReturnStmt:
			report(n.Pos(), "return while %s is held (missing Unlock on this path)")
		}
		return true
	})
}

// displayKey strips the reader-lock marker for messages.
func displayKey(key string) string {
	return strings.TrimSuffix(key, "#R")
}
