package lint

import (
	"go/ast"
	"go/types"
)

// SpanFinish is the tracing analogue of iterclose, enforcing the PR-8
// span lifecycle: every span or trace created in a function —
// obs.StartSpan, (*Span).StartChild, (*Trace).StartSpan and
// (*Tracer).Start — must reach its End/Finish on every path, including
// early error returns, or be handed off to another owner (passed to a
// call, returned, stored, captured). A span that is never ended keeps
// a zero Duration and is silently dropped from duration histograms and
// the slow-span accounting; a trace that is never finished is never
// sampled and never reaches the TraceStore, which is how a shed or
// crashed request disappears from /traces exactly when it matters.
//
// Two extra release channels reflect the runtime:
//
//   - provenance: a span obtained from tr.StartSpan is also released by
//     tr.Finish(...) on the same trace expression — Trace.Finish ends
//     the root span it handed out.
//   - reassignment of the tracked variable is neutral, so the
//     nil-guarded fallback `if root == nil { root = obs.StartSpan(..) }`
//     keeps one obligation, discharged by the shared End.
//
// (*Span).Record is not a creation: it returns an already-ended child.
var SpanFinish = &Analyzer{
	Name: "spanfinish",
	Doc:  "every created span/trace must reach End/Finish (or escape to a new owner) on all paths, including error returns",
	Run:  runSpanFinish,
}

// spanObligation is one tracked creation site.
type spanObligation struct {
	node ast.Node     // the creating assignment (a CFG node)
	obj  types.Object // the variable holding the span/trace
	// provKey is the receiver spelling for provenance release
	// ("tr" when created via tr.StartSpan), or "".
	provKey string
}

func runSpanFinish(p *Pass) error {
	if p.Pkg.Path() == obsPkg {
		return nil // the implementation manages its own lifecycles
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, b := range funcBodies(fd.Body) {
				checkSpanBody(p, b, NewCFG(b))
			}
			checkDroppedSpans(p, fd.Body)
		}
	}
	return nil
}

// spanCreation matches a span/trace-creating call and returns what it
// creates plus the provenance receiver key (for Trace.StartSpan).
func spanCreation(p *Pass, call *ast.CallExpr) (kind string, provKey string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	// Package function: obs.StartSpan.
	if pkg, fn := stdFuncCall(p, sel); pkg == obsPkg && fn == "StartSpan" {
		return "span", "", true
	}
	recv := p.TypeOf(sel.X)
	switch sel.Sel.Name {
	case "StartSpan":
		if isNamedType(recv, obsPkg, "Trace") {
			return "span", exprString(sel.X), true
		}
	case "StartChild":
		if isNamedType(recv, obsPkg, "Span") {
			return "span", "", true
		}
	case "Start":
		if isNamedType(recv, obsPkg, "Tracer") {
			return "trace", "", true
		}
	}
	return "", "", false
}

// checkSpanBody runs the path-sensitive lifecycle check over one
// function body's CFG.
func checkSpanBody(p *Pass, body *ast.BlockStmt, cfg *CFG) {
	var obligations []spanObligation
	for _, bl := range cfg.Blocks {
		for _, n := range bl.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			call, ok := as.Rhs[0].(*ast.CallExpr)
			if !ok {
				continue
			}
			_, provKey, ok := spanCreation(p, call)
			if !ok {
				continue
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := p.TypesInfo.Defs[id]
			if obj == nil {
				obj = p.TypesInfo.Uses[id]
			}
			if obj == nil {
				continue
			}
			obligations = append(obligations, spanObligation{node: n, obj: obj, provKey: provKey})
		}
	}
	for _, ob := range obligations {
		if cfg.PathWithout(ob.node, nil, spanReleased(p, ob)) {
			p.Reportf(ob.node.Pos(), "span/trace is not ended on every path (missing %s.End/Finish on some return, or hand it off)", ob.obj.Name())
		}
	}
}

// spanReleased builds the release predicate for one obligation: the
// node ends the span (End/Finish on the variable, directly or behind a
// defer), finishes the provenance trace, or lets the variable escape
// to a new owner (call argument, return value, composite literal,
// channel send, aliasing assignment, closure capture).
func spanReleased(p *Pass, ob spanObligation) func(ast.Node) bool {
	usesObj := func(e ast.Node) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && p.TypesInfo.Uses[id] == ob.obj {
				found = true
			}
			return !found
		})
		return found
	}
	return func(node ast.Node) bool {
		released := false
		ast.Inspect(node, func(n ast.Node) bool {
			if released {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && p.TypesInfo.Uses[id] == ob.obj {
						switch sel.Sel.Name {
						case "End", "Finish":
							released = true
							return false
						}
						// Other method calls on the variable itself are
						// neutral, but their arguments can still escape it.
						for _, a := range n.Args {
							if usesObj(a) {
								released = true
							}
						}
						return false
					}
					if ob.provKey != "" && sel.Sel.Name == "Finish" && exprString(sel.X) == ob.provKey {
						released = true
						return false
					}
				}
				for _, a := range n.Args {
					if usesObj(a) {
						released = true // handed off
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					if usesObj(r) {
						released = true
					}
				}
			case *ast.CompositeLit:
				if usesObj(n) {
					released = true
				}
				return false
			case *ast.SendStmt:
				if usesObj(n.Value) {
					released = true
				}
			case *ast.AssignStmt:
				// Only non-call RHS alias the object; a method call on
				// it (root := tr.StartSpan(..)) derives a new value and
				// is handled by the CallExpr case.
				for _, r := range n.Rhs {
					if _, isCall := r.(*ast.CallExpr); !isCall && usesObj(r) {
						released = true // aliased or stored
					}
				}
			case *ast.FuncLit:
				if usesObj(n) {
					released = true // captured; the closure owns it now
				}
				return false
			}
			return !released
		})
		return released
	}
}

// checkDroppedSpans flags creations whose result is discarded: a bare
// `x.StartChild(...)` statement creates a child that nothing can ever
// end. A dropped `tr.StartSpan(...)` is tolerated when the same
// function finishes tr — Trace.Finish ends the root span it handed
// out — and flagged otherwise.
func checkDroppedSpans(p *Pass, body *ast.BlockStmt) {
	finished := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Finish" {
				if isNamedType(p.TypeOf(sel.X), obsPkg, "Trace") {
					finished[exprString(sel.X)] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		es, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		kind, provKey, ok := spanCreation(p, call)
		if !ok {
			return true
		}
		if provKey != "" && finished[provKey] {
			return true // root span; Finish on the trace ends it
		}
		p.Reportf(es.Pos(), "result of %s creation is discarded; the span can never be ended", kind)
		return true
	})
}
