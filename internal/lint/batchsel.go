package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// relPkg is the columnar execution package from PR 7.
const relPkg = "semjoin/internal/rel"

// BatchSel enforces the vectorized-execution contracts of internal/rel:
//
//  1. selection-vector blindness: inside a loop bounded by b.Rows(),
//     the live-row counter maps physical data only through b.RowIdx(i)
//     or b.TupleAt(i). Calling Vector.ValueAt/IsNull with the counter
//     directly reads the wrong rows the moment the batch carries a
//     selection vector — filters refine sel in place, so the bug is
//     invisible until a filter sits upstream. Loops dominated by a
//     `b.Sel() == nil` (or `b.sel == nil`) guard are exempt: dense
//     fast paths are the designed use of that guard.
//  2. no mutation after handoff: once a batch has been sent
//     downstream on a channel, AppendTuple/Refine on it races with the
//     consumer. Reassigning the variable to a fresh batch (the
//     producer-loop idiom) resets the obligation.
//  3. no row-at-a-time bridge inside batch kernels: a NextBatch/next
//     method that returns (*Batch, error) must not pull tuples with
//     iterator.Next() — that reintroduces the per-row virtual-call
//     overhead the batch engine exists to amortise. The one designed
//     bridge (batcherKernel) carries a //lint:allow.
var BatchSel = &Analyzer{
	Name: "batchsel",
	Doc:  "batch kernels must honor the selection vector, never mutate a handed-off batch, and never pull row-at-a-time inside NextBatch",
	Run:  runBatchSel,
}

func runBatchSel(p *Pass) error {
	if p.Pkg.Path() != relPkg && !strings.HasSuffix(p.Pkg.Path(), "/testdata/src/batchsel") {
		return nil
	}
	for _, f := range p.Files {
		if p.SkipFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSelBlindLoops(p, fd.Body)
			checkRowBridge(p, fd)
			for _, b := range funcBodies(fd.Body) {
				checkMutateAfterSend(p, b, NewCFG(b))
			}
		}
	}
	return nil
}

// rowsBound matches the bound of `for i := 0; i < <bound>; i++` when
// it is b.Rows() (directly, or an ident assigned from b.Rows() inside
// body), returning the batch key ("b").
func rowsBound(p *Pass, body *ast.BlockStmt, bound ast.Expr) (string, bool) {
	if key, ok := rowsCallKey(p, bound); ok {
		return key, true
	}
	id, ok := bound.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := p.TypesInfo.Uses[id]
	if obj == nil {
		return "", false
	}
	key, found := "", false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return !found
		}
		for i, l := range as.Lhs {
			lid, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			lobj := p.TypesInfo.Defs[lid]
			if lobj == nil {
				lobj = p.TypesInfo.Uses[lid]
			}
			if lobj != obj {
				continue
			}
			if k, ok := rowsCallKey(p, as.Rhs[i]); ok {
				key, found = k, true
			}
		}
		return !found
	})
	return key, found
}

// rowsCallKey matches `<batch>.Rows()` and returns exprString(batch).
func rowsCallKey(p *Pass, e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Rows" {
		return "", false
	}
	if !isNamedType(p.TypeOf(sel.X), relPkg, "Batch") {
		return "", false
	}
	return exprString(sel.X), true
}

// denseGuards returns the source ranges within which batch key is
// proven dense: the body of `if key.Sel() == nil` / `if key.sel == nil`
// and the else of the negated form.
func denseGuards(p *Pass, body *ast.BlockStmt, key string) [][2]token.Pos {
	var regions [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		op, ok := selNilCheck(ifs.Cond, key)
		if !ok {
			return true
		}
		if op == token.EQL {
			regions = append(regions, [2]token.Pos{ifs.Body.Pos(), ifs.Body.End()})
		} else if ifs.Else != nil {
			regions = append(regions, [2]token.Pos{ifs.Else.Pos(), ifs.Else.End()})
		}
		return true
	})
	return regions
}

// selNilCheck matches `key.Sel() == nil`, `key.sel == nil` and their
// != forms, returning the operator.
func selNilCheck(cond ast.Expr, key string) (token.Token, bool) {
	b, ok := cond.(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return 0, false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil"
	}
	isSel := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.CallExpr:
			sel, ok := e.Fun.(*ast.SelectorExpr)
			return ok && sel.Sel.Name == "Sel" && exprString(sel.X) == key
		case *ast.SelectorExpr:
			return e.Sel.Name == "sel" && exprString(e.X) == key
		}
		return false
	}
	if (isSel(b.X) && isNil(b.Y)) || (isSel(b.Y) && isNil(b.X)) {
		return b.Op, true
	}
	return 0, false
}

// checkSelBlindLoops implements rule 1 on one function body.
func checkSelBlindLoops(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond == nil {
			return true
		}
		cond, ok := loop.Cond.(*ast.BinaryExpr)
		if !ok || (cond.Op != token.LSS && cond.Op != token.LEQ) {
			return true
		}
		iv, ok := cond.X.(*ast.Ident)
		if !ok {
			return true
		}
		ivObj := p.TypesInfo.Uses[iv]
		if ivObj == nil {
			return true
		}
		key, ok := rowsBound(p, body, cond.Y)
		if !ok {
			return true
		}
		for _, g := range denseGuards(p, body, key) {
			if loop.Pos() >= g[0] && loop.End() <= g[1] {
				return true // dense fast path under a Sel()==nil guard
			}
		}
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			if _, ok := m.(*ast.FuncLit); ok {
				return false
			}
			call, ok := m.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "ValueAt", "IsNull":
			default:
				return true
			}
			if !isNamedType(p.TypeOf(sel.X), relPkg, "Vector") {
				return true
			}
			if arg, ok := call.Args[0].(*ast.Ident); ok && p.TypesInfo.Uses[arg] == ivObj {
				p.Reportf(call.Pos(), "vector indexed by the live-row counter %s without %s.RowIdx (selection vector ignored)", iv.Name, key)
			}
			return true
		})
		return true
	})
}

// checkMutateAfterSend implements rule 2 over one body's CFG.
func checkMutateAfterSend(p *Pass, body *ast.BlockStmt, cfg *CFG) {
	type mutation struct {
		node ast.Node
		pos  token.Pos
		name string
	}
	batchObj := func(e ast.Expr) *ast.Ident {
		id, ok := e.(*ast.Ident)
		if !ok || !isNamedType(p.TypeOf(id), relPkg, "Batch") {
			return nil
		}
		return id
	}
	for _, bl := range cfg.Blocks {
		for _, n := range bl.Nodes {
			send, ok := n.(*ast.SendStmt)
			if !ok {
				continue
			}
			id := batchObj(send.Value)
			if id == nil {
				continue
			}
			obj := p.TypesInfo.Uses[id]
			if obj == nil {
				continue
			}
			// Collect this body's mutations of the same variable.
			var muts []mutation
			for _, bl2 := range cfg.Blocks {
				for _, m := range bl2.Nodes {
					node := m
					ast.Inspect(node, func(q ast.Node) bool {
						if _, ok := q.(*ast.FuncLit); ok {
							return false
						}
						call, ok := q.(*ast.CallExpr)
						if !ok {
							return true
						}
						sel, ok := call.Fun.(*ast.SelectorExpr)
						if !ok {
							return true
						}
						if sel.Sel.Name != "AppendTuple" && sel.Sel.Name != "Refine" {
							return true
						}
						if rid, ok := sel.X.(*ast.Ident); ok && p.TypesInfo.Uses[rid] == obj {
							muts = append(muts, mutation{node: node, pos: call.Pos(), name: sel.Sel.Name})
						}
						return true
					})
				}
			}
			// Reassigning the variable (fresh batch) ends the handoff.
			reassigned := func(q ast.Node) bool {
				as, ok := q.(*ast.AssignStmt)
				if !ok {
					return false
				}
				for _, l := range as.Lhs {
					if lid, ok := l.(*ast.Ident); ok {
						lobj := p.TypesInfo.Defs[lid]
						if lobj == nil {
							lobj = p.TypesInfo.Uses[lid]
						}
						if lobj == obj {
							return true
						}
					}
				}
				return false
			}
			for _, mu := range muts {
				target := mu.node
				if cfg.PathWithout(n, func(q ast.Node) bool { return q == target }, reassigned) {
					p.Reportf(mu.pos, "%s on a batch already sent downstream (mutation after handoff races with the consumer)", mu.name)
				}
			}
		}
	}
}

// checkRowBridge implements rule 3: no iterator.Next() calls inside a
// batch-producing kernel method.
func checkRowBridge(p *Pass, fd *ast.FuncDecl) {
	if fd.Name.Name != "NextBatch" && fd.Name.Name != "next" {
		return
	}
	if !returnsBatch(p, fd) {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Next" {
			return true
		}
		if !isIteratorType(p.TypeOf(sel.X)) {
			return true
		}
		p.Reportf(call.Pos(), "row-at-a-time Next inside a batch kernel (pull NextBatch from children instead)")
		return true
	})
}

// returnsBatch reports whether fd's first result is *rel.Batch.
func returnsBatch(p *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	return isNamedType(p.TypeOf(fd.Type.Results.List[0].Type), relPkg, "Batch")
}
