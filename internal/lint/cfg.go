package lint

import (
	"go/ast"
	"go/token"
)

// This file is the shared intraprocedural control-flow-graph layer the
// path-sensitive analyzers (iterclose, lockorder, spanfinish, walorder,
// fsyncrename, batchsel) are built on. The graph is deliberately
// syntactic — it is computed from one function body's go/ast alone,
// with no SSA form and no interprocedural edges — because every
// invariant the suite enforces is a *local* protocol ("the thing
// acquired here is released before every exit of this function",
// "the rename here happens after the sync there").
//
// Shape:
//
//   - A Block is a maximal straight-line run of nodes. Its Nodes are
//     statements and *decomposed* control expressions (an if's Init and
//     Cond, a for's Init/Cond/Post, a switch's Tag) in execution order,
//     with the guarantee that no indexed node's subtree contains
//     another indexed node — analyzers may ast.Inspect a node without
//     double-counting its neighbours.
//   - Return edges go to a synthetic Exit block. Calls that cannot
//     return (panic, os.Exit, log.Fatal*, runtime.Goexit) terminate
//     their block with no successors, so paths through them never
//     reach Exit and never produce "missing release" reports.
//   - Function literals are opaque: a FuncLit body is never inlined
//     into the enclosing graph (each analyzer walks literals as
//     separate functions, or treats capture as an escape).
//   - Statements belonging to a select (comm clauses and clause
//     bodies) are marked, so lockorder can keep its
//     select-with-default exemption from PR 5.
type CFG struct {
	Entry *Block
	Exit  *Block
	// Blocks lists every block, Entry first and Exit second.
	Blocks []*Block

	pos      map[ast.Node]stmtPos
	entry    map[ast.Stmt]stmtPos
	inSelect map[ast.Node]bool
}

// Block is one straight-line run of CFG nodes.
type Block struct {
	Nodes []ast.Node
	Succs []*Block
}

// stmtPos locates one indexed node inside its block.
type stmtPos struct {
	block *Block
	idx   int
}

// InSelect reports whether n was lifted out of a select statement
// (either a comm clause or a clause body statement).
func (c *CFG) InSelect(n ast.Node) bool { return c.inSelect[n] }

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	c := &CFG{
		pos:      map[ast.Node]stmtPos{},
		entry:    map[ast.Stmt]stmtPos{},
		inSelect: map[ast.Node]bool{},
	}
	b := &cfgBuilder{cfg: c, labels: map[string]*labelTarget{}}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.stmtList(body.List)
	b.edge(b.cur, c.Exit)
	return c
}

// ---------------------------------------------------------------- builder

type labelTarget struct {
	brk, cont *Block
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a jump, meaning
	// the next statement is unreachable (it still gets a fresh block so
	// every node is indexed).
	cur *Block

	breaks    []*Block // innermost-last targets of an unlabeled break
	continues []*Block // innermost-last targets of an unlabeled continue
	labels    map[string]*labelTarget
	// pendingLabel is set by a LabeledStmt for the construct it labels.
	pendingLabel string
	// nextCase is the fallthrough target inside a switch.
	nextCase *Block
	// selDepth > 0 while building select clauses.
	selDepth int
}

func (b *cfgBuilder) newBlock() *Block {
	bl := &Block{}
	b.cfg.Blocks = append(b.cfg.Blocks, bl)
	return bl
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

// add appends n to the current block and indexes it.
func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code keeps a (pred-less) home
	}
	b.cfg.pos[n] = stmtPos{b.cur, len(b.cur.Nodes)}
	b.cur.Nodes = append(b.cur.Nodes, n)
	if b.selDepth > 0 {
		b.cfg.inSelect[n] = true
	}
}

// takeLabel consumes the pending label for the construct now being
// built, registering its break/continue targets for the body.
func (b *cfgBuilder) takeLabel(brk, cont *Block) string {
	lbl := b.pendingLabel
	b.pendingLabel = ""
	if lbl != "" {
		b.labels[lbl] = &labelTarget{brk: brk, cont: cont}
	}
	return lbl
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	// Record where execution of s begins, even for compound statements
	// that are decomposed rather than indexed as one node — path
	// queries can then start "at the top of this if/for/block".
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cfg.entry[s] = stmtPos{b.cur, len(b.cur.Nodes)}
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		head := b.cur
		join := b.newBlock()
		thenB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(head, join)
		}
		b.cur = join

	case *ast.ForStmt:
		b.add(s.Init)
		header := b.newBlock()
		b.edge(b.cur, header)
		b.cur = header
		b.add(s.Cond)
		condEnd := b.cur
		join := b.newBlock()
		post := b.newBlock()
		lbl := b.takeLabel(join, post)
		bodyB := b.newBlock()
		b.edge(condEnd, bodyB)
		if s.Cond != nil {
			b.edge(condEnd, join) // cond false exits the loop
		}
		b.pushLoop(join, post)
		b.cur = bodyB
		b.stmtList(s.Body.List)
		b.popLoop(lbl)
		b.edge(b.cur, post)
		b.cur = post
		b.add(s.Post)
		b.edge(b.cur, header)
		b.cur = join

	case *ast.RangeStmt:
		header := b.newBlock()
		b.edge(b.cur, header)
		b.cur = header
		b.add(s.X) // the ranged expression stands in for the header
		headEnd := b.cur
		join := b.newBlock()
		lbl := b.takeLabel(join, header)
		bodyB := b.newBlock()
		b.edge(headEnd, bodyB)
		b.edge(headEnd, join) // range may be empty / exhausted
		b.pushLoop(join, header)
		b.cur = bodyB
		b.stmtList(s.Body.List)
		b.popLoop(lbl)
		b.edge(b.cur, header)
		b.cur = join

	case *ast.SwitchStmt:
		b.add(s.Init)
		b.add(s.Tag)
		b.caseClauses(s.Body, func(cc *ast.CaseClause) ([]ast.Stmt, bool) {
			return cc.Body, cc.List == nil
		})

	case *ast.TypeSwitchStmt:
		b.add(s.Init)
		b.add(s.Assign)
		b.caseClauses(s.Body, func(cc *ast.CaseClause) ([]ast.Stmt, bool) {
			return cc.Body, cc.List == nil
		})

	case *ast.SelectStmt:
		head := b.cur
		join := b.newBlock()
		lbl := b.takeLabel(join, nil)
		b.breaks = append(b.breaks, join)
		b.selDepth++
		for _, raw := range s.Body.List {
			cc := raw.(*ast.CommClause)
			bl := b.newBlock()
			b.edge(head, bl)
			b.cur = bl
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.selDepth--
		b.breaks = b.breaks[:len(b.breaks)-1]
		if lbl != "" {
			delete(b.labels, lbl)
		}
		// select{} blocks forever: head keeps no successor and join
		// stays unreachable, which is exactly the runtime behaviour.
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.cur, b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				if t := b.labels[s.Label.Name]; t != nil {
					b.edge(b.cur, t.brk)
				}
			} else if n := len(b.breaks); n > 0 {
				b.edge(b.cur, b.breaks[n-1])
			}
		case token.CONTINUE:
			if s.Label != nil {
				if t := b.labels[s.Label.Name]; t != nil {
					b.edge(b.cur, t.cont)
				}
			} else if n := len(b.continues); n > 0 {
				b.edge(b.cur, b.continues[n-1])
			}
		case token.FALLTHROUGH:
			b.edge(b.cur, b.nextCase)
		case token.GOTO:
			// Not modelled: the path simply ends here. Conservative in
			// the right direction — an unmodelled path produces no
			// "missing release" report.
		}
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if callDiverges(s.X) {
			b.cur = nil // panic / os.Exit never fall through
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// Assign, Decl, Send, IncDec, Go, Defer: plain nodes. Defer and
		// go bodies stay opaque (function literals are never inlined).
		b.add(s)
	}
}

// caseClauses builds switch/type-switch clause blocks with fallthrough
// edges and a shared join that is also the break target.
func (b *cfgBuilder) caseClauses(body *ast.BlockStmt, split func(*ast.CaseClause) ([]ast.Stmt, bool)) {
	head := b.cur
	join := b.newBlock()
	lbl := b.takeLabel(join, nil)
	b.breaks = append(b.breaks, join)
	savedNext := b.nextCase
	blocks := make([]*Block, len(body.List))
	for i := range body.List {
		blocks[i] = b.newBlock()
	}
	hasDefault := false
	for i, raw := range body.List {
		cc := raw.(*ast.CaseClause)
		stmts, isDefault := split(cc)
		if isDefault {
			hasDefault = true
		}
		b.edge(head, blocks[i])
		if i+1 < len(blocks) {
			b.nextCase = blocks[i+1]
		} else {
			b.nextCase = nil
		}
		b.cur = blocks[i]
		b.stmtList(stmts)
		b.edge(b.cur, join)
	}
	if !hasDefault {
		b.edge(head, join) // no case matched
	}
	b.nextCase = savedNext
	b.breaks = b.breaks[:len(b.breaks)-1]
	if lbl != "" {
		delete(b.labels, lbl)
	}
	b.cur = join
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *cfgBuilder) popLoop(lbl string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
	if lbl != "" {
		delete(b.labels, lbl)
	}
}

// callDiverges reports (syntactically) whether e is a call that never
// returns: panic(...), os.Exit, log.Fatal/Fatalf/Fatalln,
// runtime.Goexit.
func callDiverges(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			switch fun.Sel.Name {
			case "Fatal", "Fatalf", "Fatalln":
				return true
			}
		case "runtime":
			return fun.Sel.Name == "Goexit"
		}
	}
	return false
}

// funcBodies returns body plus the body of every function literal
// nested inside it (at any depth). CFGs never inline literals, so a
// path-sensitive analyzer runs once per returned body to cover the
// code the enclosing graph treats as opaque.
func funcBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	out := []*ast.BlockStmt{body}
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
			out = append(out, fl.Body)
		}
		return true
	})
	return out
}

// ---------------------------------------------------------------- queries

// lookup locates n in the graph.
func (c *CFG) lookup(n ast.Node) (stmtPos, bool) {
	p, ok := c.pos[n]
	return p, ok
}

// PathWithout reports whether some execution path starting *just
// after* the indexed node from reaches a node satisfying to — or the
// function exit, when to is nil — without first passing a node
// satisfying stop (stop may be nil). Both predicates see whole CFG
// nodes; callers that care about sub-expressions inspect inside.
//
// Nodes with no successors that are not the Exit block (panic,
// os.Exit, infinite loops with no break) terminate their path without
// satisfying a nil to: diverging can never "reach the exit".
func (c *CFG) PathWithout(from ast.Node, to, stop func(ast.Node) bool) bool {
	p, ok := c.lookup(from)
	if !ok {
		return false
	}
	return c.path(p.block, p.idx+1, to, stop)
}

// PathFromWithout is PathWithout starting *at* the indexed node start
// (inclusive): start itself is tested against to and stop first.
func (c *CFG) PathFromWithout(start ast.Node, to, stop func(ast.Node) bool) bool {
	p, ok := c.lookup(start)
	if !ok {
		return false
	}
	return c.path(p.block, p.idx, to, stop)
}

// PathFromStmtWithout is PathFromWithout anchored at the execution
// entry of statement s — usable for compound statements (if, for,
// block) whose own node is decomposed rather than indexed.
func (c *CFG) PathFromStmtWithout(s ast.Stmt, to, stop func(ast.Node) bool) bool {
	p, ok := c.entry[s]
	if !ok {
		return false
	}
	return c.path(p.block, p.idx, to, stop)
}

// Reaches reports whether a node satisfying to is reachable after from.
func (c *CFG) Reaches(from ast.Node, to func(ast.Node) bool) bool {
	return c.PathWithout(from, to, nil)
}

// path answers the query from (bl, idx). Reachability through cycles
// is computed as a fixpoint over whole blocks, so cyclic graphs cannot
// cache a contaminated intermediate result.
func (c *CFG) path(bl *Block, idx int, to, stop func(ast.Node) bool) bool {
	// scan classifies one block from its start: +1 the target is hit
	// before any stop, -1 a stop is hit first, 0 the block is neutral
	// and the answer depends on its successors.
	scan := func(b *Block, start int) int {
		for i := start; i < len(b.Nodes); i++ {
			n := b.Nodes[i]
			if to != nil && to(n) {
				return +1
			}
			if stop != nil && stop(n) {
				return -1
			}
		}
		if to == nil && b == c.Exit {
			return +1
		}
		return 0
	}
	switch scan(bl, idx) {
	case +1:
		return true
	case -1:
		return false
	}
	// canReach[b] = true when the suffix of the graph from b's start
	// satisfies the query. Monotone boolean system; iterate to fixpoint.
	canReach := map[*Block]bool{}
	kind := map[*Block]int{}
	for _, b := range c.Blocks {
		kind[b] = scan(b, 0)
		if kind[b] == +1 {
			canReach[b] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, b := range c.Blocks {
			if canReach[b] || kind[b] != 0 {
				continue
			}
			for _, s := range b.Succs {
				if canReach[s] {
					canReach[b] = true
					changed = true
					break
				}
			}
		}
	}
	for _, s := range bl.Succs {
		if canReach[s] {
			return true
		}
	}
	return false
}
