package gsql

import (
	"strings"
	"testing"

	"semjoin/internal/rel"
)

func planContains(e *Engine, substr string) bool {
	for _, p := range e.Plan {
		if strings.Contains(p, substr) {
			return true
		}
	}
	return false
}

func TestEngineQ1StaticEnrichment(t *testing.T) {
	// The paper's Q1: risk and company of a product with a UK backer.
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select risk, company
		from product e-join G <company, country> as T
		where T.pid = 'fd0' and T.country = 'UK'`)
	if err != nil {
		t.Fatal(err)
	}
	if !planContains(e, "well-behaved") {
		t.Fatalf("Q1 should run statically; plan = %v", e.Plan)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d, want 1\n%v", out.Len(), out)
	}
	if got := out.Get(out.Tuples[0], "company").Str(); got != f.companyOf["fd0"] {
		t.Fatalf("company = %q, want %q", got, f.companyOf["fd0"])
	}
	if got := out.Get(out.Tuples[0], "risk").Str(); got != "low" {
		t.Fatalf("risk = %q", got)
	}
}

func TestEngineQ2TwoEnrichmentJoins(t *testing.T) {
	// The paper's Q2: join two enriched customers on an attribute that is
	// not in D but extracted from G.
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select T1.cid, T2.cid, T1.company
		from customer e-join G <company> as T1,
		     customer e-join G <company> as T2
		where T1.cid = 'cid00' and T2.credit = 'good'
		  and T1.company = T2.company and T2.cid <> 'cid00'`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("expected customers sharing cid00's company")
	}
	// Verify against ground truth: every returned T2 invests in some
	// product of the same company as one of cid00's products.
	companies00 := map[string]bool{}
	for _, pid := range f.investOf["cid00"] {
		companies00[f.companyOf[pid]] = true
	}
	cidCol := out.Schema.Col("T2.cid")
	coCol := out.Schema.Col("T1.company")
	if cidCol < 0 || coCol < 0 {
		t.Fatalf("schema = %v", out.Schema)
	}
	for _, tp := range out.Tuples {
		if !companies00[tp[coCol].Str()] {
			t.Fatalf("returned company %q not among cid00's: %v", tp[coCol].Str(), companies00)
		}
		match := false
		for _, pid := range f.investOf[tp[cidCol].Str()] {
			if f.companyOf[pid] == tp[coCol].Str() {
				match = true
			}
		}
		if !match {
			t.Fatalf("customer %s does not invest with %s", tp[cidCol].Str(), tp[coCol].Str())
		}
	}
}

func TestEngineQ3LinkJoin(t *testing.T) {
	// The paper's Q3: good-credit customers within k hops of cid00.
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select customer.cid, customer2.cid, customer2.credit
		from customer l-join <Gp> customer as customer2
		where customer.cid = 'cid00' and customer2.credit = 'good'`)
	if err != nil {
		t.Fatal(err)
	}
	if !planContains(e, "l-join") {
		t.Fatalf("plan = %v", e.Plan)
	}
	if out.Len() == 0 {
		t.Fatal("expected linked customers")
	}
	for _, tp := range out.Tuples {
		if out.Get(tp, "customer2.credit").Str() != "good" {
			t.Fatal("credit filter violated")
		}
	}
	// cid00 invests in fd0; customers sharing a product are 2 hops away.
	found := false
	for _, tp := range out.Tuples {
		if out.Get(tp, "customer2.cid").Str() == "cid04" {
			found = true // cid04 invests in fd4... verify via ground truth below
		}
	}
	_ = found // existence asserted by out.Len() > 0; exact set checked elsewhere
}

func TestEngineBaselineAgreesWithStatic(t *testing.T) {
	// Exactness (§IV-A): the optimised static path returns the same
	// answers as the conceptual-level baseline.
	f := getFintech(t)
	q := `
		select pid, company
		from product e-join G <company> as T
		where T.company <> 'nothing'`
	auto := NewEngine(f.cat)
	a, err := auto.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	base := NewEngine(f.cat)
	base.Mode = ModeBaseline
	b, err := base.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !planContains(base, "baseline") {
		t.Fatalf("baseline plan = %v", base.Plan)
	}
	am := map[string]string{}
	for _, tp := range a.Tuples {
		am[a.Get(tp, "pid").Str()] = a.Get(tp, "company").Str()
	}
	if len(am) != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", len(am), b.Len())
	}
	for _, tp := range b.Tuples {
		if am[b.Get(tp, "pid").Str()] != b.Get(tp, "company").Str() {
			t.Fatalf("baseline and static disagree on %s", b.Get(tp, "pid").Str())
		}
	}
}

func TestEngineHeuristicForNonWellBehaved(t *testing.T) {
	// Example 10's shape: the e-join source mixes two base relations, so
	// the query is not well-behaved and the heuristic path must kick in.
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select pid, company
		from (select product.pid as pid, product.name as name, customer.cid as cid
		      from customer, product
		      where customer.credit = 'good' and product.risk = 'medium')
		     e-join G <company> as T`)
	if err != nil {
		t.Fatal(err)
	}
	if !planContains(e, "heuristic") {
		t.Fatalf("plan = %v", e.Plan)
	}
	if out.Len() == 0 {
		t.Fatal("heuristic join returned nothing")
	}
	hit, total := 0, 0
	for _, tp := range out.Tuples {
		total++
		if out.Get(tp, "company").Str() == f.companyOf[out.Get(tp, "pid").Str()] {
			hit++
		}
	}
	if frac := float64(hit) / float64(total); frac < 0.7 {
		t.Fatalf("heuristic accuracy = %.2f", frac)
	}
}

func TestEngineWellBehavedAnalysis(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	cases := []struct {
		q    string
		want bool
	}{
		{`select * from product e-join G <company> as T`, true},
		{`select * from product e-join G <company, country> as T where T.pid = 'x'`, true},
		{`select * from product e-join G <ceo> as T`, false}, // ceo ∉ AR
		{`select * from (select pid from product where risk = 'low') e-join G <company> as T`, true},
		{`select * from (select customer.cid as cid, product.pid as pid from customer, product) e-join G <company> as T`, false},
		{`select * from customer l-join <G> customer as c2`, true},
		{`select * from nosuch e-join G <company> as T`, false},
	}
	for _, c := range cases {
		q := mustParse(t, c.q)
		if got := e.WellBehaved(q); got != c.want {
			t.Errorf("WellBehaved(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestEngineAggregationOverEJoin(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select company, count(*) as n, avg(price) as avg_price
		from product e-join G <company> as T
		group by company order by company`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("groups = %d, want 4\n%v", out.Len(), out)
	}
	var total int64
	for _, tp := range out.Tuples {
		total += out.Get(tp, "n").Int()
	}
	if total != int64(f.products.Len()) {
		t.Fatalf("counts sum to %d", total)
	}
	// Sorted ascending by company.
	for i := 1; i < out.Len(); i++ {
		if out.Get(out.Tuples[i-1], "company").Str() > out.Get(out.Tuples[i], "company").Str() {
			t.Fatal("order by violated")
		}
	}
}

func TestEnginePlainSQLStillWorks(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select distinct credit from customer order by credit desc limit 1`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Tuples[0][0].Str() != "good" {
		t.Fatalf("result = %v", out)
	}
	// Classic two-table join via where.
	j, err := e.Query(`
		select customer.cid, product.pid
		from customer, product
		where customer.bal >= 1000 and product.risk = 'high' and customer.credit = 'good'`)
	if err != nil {
		t.Fatal(err)
	}
	if j.Len() == 0 {
		t.Fatal("expected rows")
	}
}

func TestEngineErrors(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	bad := []string{
		`select * from nosuch`,
		`select nosuchcol from product`,
		`select * from product e-join NoGraph <company> as T`,
		`select pid, count(*) as n from product`, // pid not grouped
		`select *, count(*) as n from product`,
		`select * from product l-join <NoGraph> product as p2`,
	}
	for _, q := range bad {
		if _, err := e.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestEngineSelectItemRenaming(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`select pid as id, name as title from product limit 3`)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Schema.Has("id") || !out.Schema.Has("title") {
		t.Fatalf("schema = %v", out.Schema)
	}
	if out.Len() != 3 {
		t.Fatalf("limit ignored: %d", out.Len())
	}
}

func TestEngineGLCachePopulatedByLinkJoin(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	q := `
		select customer.cid, customer2.cid
		from customer l-join <G> customer as customer2
		where customer.credit = 'fair'`
	first, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	rels, _ := f.cat.Mat.GLCacheSize()
	if rels == 0 {
		t.Fatal("gL cache should be populated by a well-behaved l-join")
	}
	second, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if first.Len() != second.Len() {
		t.Fatalf("cache changed answers: %d vs %d", first.Len(), second.Len())
	}
}

var _ = rel.Null

func TestEngineChainedEJoin(t *testing.T) {
	// An e-join source may itself be an e-join: extract company first,
	// then country in a second enrichment over the intermediate result.
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select pid, company, country
		from product e-join G <company> e-join G <country> as T
		where T.pid = 'fd0'`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d\n%v", out.Len(), out)
	}
	if got := out.Get(out.Tuples[0], "company").Str(); got != f.companyOf["fd0"] {
		t.Fatalf("company = %q", got)
	}
	if got := out.Get(out.Tuples[0], "country").Str(); got != f.countryOf["fd0"] {
		t.Fatalf("country = %q", got)
	}
}

func TestEngineEJoinKeepsProvenanceForOuterJoin(t *testing.T) {
	// The enrichment result of a base relation keeps single-base
	// provenance, so a second semantic join over it stays well-behaved.
	f := getFintech(t)
	e := NewEngine(f.cat)
	q := mustParse(t, `select * from product e-join G <company> e-join G <country> as T`)
	if !e.WellBehaved(q) {
		t.Fatal("chained e-joins over one base should be well-behaved")
	}
}

func TestEngineExplain(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`explain select pid from product e-join G <company> as T`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() < 2 {
		t.Fatalf("explain rows = %d\n%v", out.Len(), out)
	}
	if got := out.Get(out.Tuples[0], "note").Str(); got != "well-behaved: true" {
		t.Fatalf("verdict = %q", got)
	}
	if !strings.Contains(out.Get(out.Tuples[1], "note").Str(), "e-join") {
		t.Fatalf("plan note = %v", out.Tuples[1])
	}
	// Case-insensitive prefix.
	if _, err := e.Query(`EXPLAIN select pid from product`); err != nil {
		t.Fatal(err)
	}
}

func TestEngineOrderByMultipleKeys(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select credit, cid from customer order by credit asc, cid desc`)
	if err != nil {
		t.Fatal(err)
	}
	// Within each credit group, cids must be descending; credits ascending.
	for i := 1; i < out.Len(); i++ {
		c0 := out.Get(out.Tuples[i-1], "credit").Str()
		c1 := out.Get(out.Tuples[i], "credit").Str()
		if c0 > c1 {
			t.Fatal("primary key order violated")
		}
		if c0 == c1 {
			if out.Get(out.Tuples[i-1], "cid").Str() < out.Get(out.Tuples[i], "cid").Str() {
				t.Fatal("secondary key order violated")
			}
		}
	}
}

func TestEngineLimitZeroAndDistinct(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`select cid from customer limit 0`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("limit 0 rows = %d", out.Len())
	}
	d, err := e.Query(`select distinct company from product e-join G <company> as T`)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, tp := range d.Tuples {
		v := d.Get(tp, "company").Str()
		if seen[v] {
			t.Fatalf("duplicate %q after distinct", v)
		}
		seen[v] = true
	}
}

func TestLinkJoinPredicatePushdown(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	// With pushdown, the same query must return the same answers as the
	// unpushed evaluation (pushdown is a pure optimisation).
	q := `
		select customer.cid, customer2.cid
		from customer l-join <G> customer as customer2
		where customer.cid = 'cid00' and customer2.credit = 'good'`
	out, err := e.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range out.Tuples {
		if out.Get(tp, "customer.cid").Str() != "cid00" {
			t.Fatal("left predicate violated")
		}
		if out.Get(tp, "customer2.credit").Str() != "" {
			t.Fatal("projection should not include credit")
		}
	}
	if out.Len() == 0 {
		t.Fatal("expected rows")
	}
	// Adding a single-side negation must subtract exactly the rows it
	// names (pushdown is a pure optimisation, not a semantics change).
	withNot, err := e.Query(q + ` and not customer2.cid = 'cid00'`)
	if err != nil {
		t.Fatal(err)
	}
	self := 0
	for _, tp := range out.Tuples {
		if out.Get(tp, "customer2.cid").Str() == "cid00" {
			self++
		}
	}
	if withNot.Len() != out.Len()-self {
		t.Fatalf("negated pushdown rows = %d, want %d", withNot.Len(), out.Len()-self)
	}
	// The gL cache key must reflect the pushed predicates: a different
	// selection must not reuse the same connectivity pairs.
	out2, err := e.Query(`
		select customer.cid, customer2.cid
		from customer l-join <G> customer as customer2
		where customer.cid = 'cid01'`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range out2.Tuples {
		if out2.Get(tp, "customer.cid").Str() != "cid01" {
			t.Fatal("second query contaminated by cached pairs")
		}
	}
	if out2.Len() == 0 {
		t.Fatal("expected rows for cid01")
	}
	// Cross-side predicate must NOT be pushed (stays as residual).
	out3, err := e.Query(`
		select customer.cid, customer2.cid
		from customer l-join <G> customer as customer2
		where customer.cid < customer2.cid`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range out3.Tuples {
		if !(out3.Get(tp, "customer.cid").Str() < out3.Get(tp, "customer2.cid").Str()) {
			t.Fatal("residual predicate violated")
		}
	}
}

func TestEngineQualifiedStarProjection(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select T1.*, T2.cid
		from customer as T1, customer as T2
		where T1.cid = 'cid00' and T2.cid = 'cid01'`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
	// All of T1's columns plus T2.cid.
	if len(out.Schema.Attrs) != len(f.customers.Schema.Attrs)+1 {
		t.Fatalf("schema = %v", out.Schema)
	}
	if _, err := e.Query(`select Tx.* from customer as T1`); err == nil {
		t.Fatal("unknown qualifier star should fail")
	}
}

func TestEngineSelectStarWithOtherColumnsFails(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	// star mixed with aggregate is rejected.
	if _, err := e.Query(`select *, count(*) as n from customer`); err == nil {
		t.Fatal("expected error")
	}
}

func TestPredSignatureForms(t *testing.T) {
	q := mustParse(t, `
		select * from (select cid from customer where credit = 'good') l-join <G>
		(select cid from customer) as r2`)
	lj := q.From[0]
	if got := predSignature(lj.Left); got == "" || got == "true" {
		t.Fatalf("left signature = %q", got)
	}
	if got := predSignature(lj.Right); got != "" {
		// Sub-query without WHERE renders an empty conjunct set.
		_ = got
	}
	q2 := mustParse(t, `select * from customer e-join G <company> l-join <G> customer as c2`)
	lj2 := q2.From[0]
	if got := predSignature(lj2.Left); len(got) < 2 || got[:2] != "e:" {
		t.Fatalf("e-join signature = %q", got)
	}
}

func TestLinkSideNamesDefaults(t *testing.T) {
	sub := FromItem{Kind: FromSubquery}
	f := FromItem{Kind: FromLJoin, Left: &sub, Right: &sub}
	n1, n2 := linkSideNames(&f)
	if n1 != "left" || n2 != "right" {
		t.Fatalf("names = %q %q", n1, n2)
	}
}
