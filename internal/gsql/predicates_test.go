package gsql

import (
	"testing"

	"semjoin/internal/rel"
)

func evalWhere(t *testing.T, where string, s *rel.Schema, tup rel.Tuple) bool {
	t.Helper()
	q := mustParse(t, "select * from t where "+where)
	return q.Where.Eval(s, tup)
}

func predSchema() (*rel.Schema, rel.Tuple) {
	s := rel.NewSchema("t", "",
		rel.Attribute{Name: "a", Type: rel.KindInt},
		rel.Attribute{Name: "b", Type: rel.KindString},
		rel.Attribute{Name: "n", Type: rel.KindString},
	)
	return s, rel.Tuple{rel.I(5), rel.S("hello world"), rel.Null}
}

func TestInPredicate(t *testing.T) {
	s, tup := predSchema()
	cases := []struct {
		q    string
		want bool
	}{
		{"a in (1, 5, 9)", true},
		{"a in (1, 2)", false},
		{"a not in (1, 2)", true},
		{"a not in (5)", false},
		{"b in ('hello world', 'x')", true},
		{"n in (1, 2)", false},     // null never matches
		{"n not in (1, 2)", false}, // SQL: null NOT IN is unknown → false
	}
	for _, c := range cases {
		if got := evalWhere(t, c.q, s, tup); got != c.want {
			t.Errorf("%q = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestLikePredicate(t *testing.T) {
	s, tup := predSchema()
	cases := []struct {
		q    string
		want bool
	}{
		{"b like 'hello%'", true},
		{"b like '%world'", true},
		{"b like '%lo wo%'", true},
		{"b like 'hello_world'", true},
		{"b like 'h_llo world'", true},
		{"b like 'hello'", false},
		{"b like '%'", true},
		{"b not like 'xyz%'", true},
		{"b like 'HELLO%'", false}, // case sensitive
		{"n like '%'", false},      // null never matches
	}
	for _, c := range cases {
		if got := evalWhere(t, c.q, s, tup); got != c.want {
			t.Errorf("%q = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestLikeMatchCorners(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"", "", true},
		{"", "%", true},
		{"", "_", false},
		{"ab", "a%b", true},
		{"aXXb", "a%b", true},
		{"ab", "%%", true},
		{"abc", "a%c%", true},
		{"mississippi", "%iss%ippi", true},
		{"mississippi", "%iss%x", false},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestBetweenPredicate(t *testing.T) {
	s, tup := predSchema()
	cases := []struct {
		q    string
		want bool
	}{
		{"a between 1 and 9", true},
		{"a between 5 and 5", true},
		{"a between 6 and 9", false},
		{"a not between 6 and 9", true},
		{"b between 'h' and 'i'", true},
		{"n between 1 and 9", false},
	}
	for _, c := range cases {
		if got := evalWhere(t, c.q, s, tup); got != c.want {
			t.Errorf("%q = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestPredicateStrings(t *testing.T) {
	q := mustParse(t, `select * from t where a in (1, 2) and b like 'x%' and a not between 3 and 4`)
	s := q.Where.String()
	for _, want := range []string{"in (", "like", "not between"} {
		if !containsStr(s, want) {
			t.Errorf("rendered %q missing %q", s, want)
		}
	}
	cols := Columns(q.Where)
	if len(cols) != 3 {
		t.Fatalf("Columns = %v", cols)
	}
}

func TestHavingClause(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select credit, count(*) as n from customer
		group by credit having n >= 8 order by credit`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range out.Tuples {
		if out.Get(tup, "n").Int() < 8 {
			t.Fatalf("having violated: %v", tup)
		}
	}
	// All groups filtered out is fine.
	empty, err := e.Query(`
		select credit, count(*) as n from customer group by credit having n > 1000`)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatal("expected no groups")
	}
}

func TestInLikeOverEJoin(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`
		select pid, company from product e-join G <company> as T
		where T.company in ('Acme Corp', 'Globex Corp') and T.pid like 'fd1%'`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range out.Tuples {
		c := out.Get(tup, "company").Str()
		if c != "Acme Corp" && c != "Globex Corp" {
			t.Fatalf("IN violated: %q", c)
		}
		if pid := out.Get(tup, "pid").Str(); len(pid) < 3 || pid[:3] != "fd1" {
			t.Fatalf("LIKE violated: %q", pid)
		}
	}
}

func TestParseErrorsForNewPredicates(t *testing.T) {
	bad := []string{
		"select * from t where a in ()",
		"select * from t where a in (1",
		"select * from t where a like x",
		"select * from t where a between 1",
		"select * from t where a not = 1",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
