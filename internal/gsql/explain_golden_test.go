package gsql

import (
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"semjoin/internal/rel"
)

var updateGolden = flag.Bool("update", false, "rewrite golden EXPLAIN files")

// redactExplain replaces the run-dependent parts of an EXPLAIN
// rendering (timings, worker counts, gL cache state) with stable
// placeholders so the operator tree can be golden-tested. It parses
// each plan line into fields rather than pattern-matching the text:
// notes may themselves contain ']' (e.g. "gL miss [cap=4]"), which a
// `\[gL [^\]]*\]` regex would split at the wrong bracket, leaving a
// dangling tail in the golden. Non-plan lines (the verdict, strategy
// notes) pass through untouched.
func redactExplain(text string) string {
	lines := strings.Split(text, "\n")
	for i, line := range lines {
		l, ok := rel.ParsePlanLine(line)
		if !ok {
			continue
		}
		// The gL cache is engine-shared state, so hit/miss depends on
		// which test ran first; the goldens pin the plan shape, not the
		// cache temperature.
		gl := strings.HasPrefix(l.Note, "gL ")
		note := l.Note
		if gl {
			note = "gL <STATE>"
		}
		out := strings.Repeat("  ", l.Depth) + l.Label
		if note != "" {
			out += " [" + note + "]"
		}
		out += "  rows=" + strconv.FormatInt(l.Rows, 10) + " time=<T>"
		// Batch counts are deterministic (input size over batch size,
		// identical serial vs parallel by the one-batch-per-morsel
		// rule), so vectorized annotations stay in the golden verbatim.
		if l.Batches > 0 {
			out += " batches=" + strconv.FormatInt(l.Batches, 10) +
				" rows/batch=" + strconv.FormatInt(l.RowsPerBatch(), 10)
		}
		// A gL miss runs the BFS pool (workers= present), a hit serves
		// from cache (absent) — cache temperature decides the worker
		// annotation too, so it is dropped with the state.
		if l.Workers > 0 && !gl {
			out += " workers=<W>"
		}
		lines[i] = out
	}
	return strings.Join(lines, "\n")
}

func TestExplainGolden(t *testing.T) {
	f := getFintech(t)
	cases := []struct {
		name  string
		par   int
		query string
	}{
		{"select_order_limit", 2, `
			select pid, risk from product
			where price >= 100 order by pid limit 5`},
		{"select_serial", 1, `
			select pid, risk from product
			where price >= 100 order by pid limit 5`},
		{"aggregate_group", 2, `
			select risk, count(*) as n from product
			group by risk order by risk`},
		{"ejoin_static", 2, `
			select risk, company
			from product e-join G <company, country> as T
			where T.country = 'UK'`},
		{"ljoin_static", 2, `
			select customer.cid, customer2.cid
			from customer l-join <Gp> customer as customer2
			where customer.credit = 'fair'`},
		{"cross_join_distinct", 2, `
			select distinct c.credit
			from customer as c, product as p
			where c.bal >= 100000 and p.risk = 'high'`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(f.cat)
			e.Parallelism = tc.par
			text, err := e.Explain(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			got := redactExplain(text)
			path := filepath.Join("testdata", "explain_"+tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

func TestExplainGoldenRedaction(t *testing.T) {
	in := "l-join static [gL miss, populated]  rows=3 time=1.234ms workers=8\n" +
		"exchange  rows=10 time=57µs workers=4\n"
	got := redactExplain(in)
	for _, leak := range []string{"1.234ms", "57µs", "workers=8", "workers=4", "miss, populated"} {
		if strings.Contains(got, leak) {
			t.Fatalf("redaction leaked %q: %s", leak, got)
		}
	}
	if !strings.Contains(got, "[gL <STATE>]") || !strings.Contains(got, "workers=<W>") || !strings.Contains(got, "time=<T>") {
		t.Fatalf("placeholders missing: %s", got)
	}
	// Notes containing ']' must redact cleanly: the old regex matched
	// up to the FIRST ']', leaving a dangling "]" behind the placeholder.
	nested := "  l-join static [gL miss [cap=4]]  rows=3 time=9ms workers=2\n"
	got = redactExplain(nested)
	want := "  l-join static [gL <STATE>]  rows=3 time=<T>\n"
	if got != want {
		t.Fatalf("bracketed note redaction:\n got %q\nwant %q", got, want)
	}
	// Non-plan lines (verdict, strategy notes) pass through untouched,
	// even when they mention rows or brackets.
	passthrough := "well-behaved: true\nstrategy: l-join(Gp): well-behaved (gL key customer[x]|customer[y]|k=3)\n"
	if got := redactExplain(passthrough); got != passthrough {
		t.Fatalf("non-plan lines altered:\n got %q\nwant %q", got, passthrough)
	}
}

func TestSetParallelismStatement(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`set parallelism 3`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Parallelism != 3 || e.Par() != 3 {
		t.Fatalf("Parallelism = %d, Par = %d", e.Parallelism, e.Par())
	}
	if out.Len() != 1 || out.Get(out.Tuples[0], "parallelism").Int() != 3 {
		t.Fatalf("status relation = %v", out)
	}
	// DEFAULT restores the GOMAXPROCS default.
	if _, err := e.Query(`SET PARALLELISM DEFAULT`); err != nil {
		t.Fatal(err)
	}
	if e.Parallelism != 0 || e.Par() < 1 {
		t.Fatalf("reset failed: Parallelism=%d Par=%d", e.Parallelism, e.Par())
	}
	// Zero and negative degrees are rejected: there is no zero-worker
	// execution (0 used to silently mean "default", masking typos).
	for _, bad := range []string{`set parallelism`, `set parallelism 0`, `set parallelism -1`, `set parallelism x`, `set parallelism 2 3`} {
		if _, err := e.Query(bad); err == nil {
			t.Fatalf("%q should error", bad)
		}
	}
	// The statement changes the engine's plans: P=1 has no exchange, P>1 does.
	if _, err := e.Query(`set parallelism 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`select pid from product where price >= 100`); err != nil {
		t.Fatal(err)
	}
	serial := e.LastStats.String()
	if strings.Contains(serial, "exchange") {
		t.Fatalf("P=1 plan should not contain an exchange:\n%s", serial)
	}
	if _, err := e.Query(`set parallelism 4`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`select pid from product where price >= 100`); err != nil {
		t.Fatal(err)
	}
	par := e.LastStats.String()
	if !strings.Contains(par, "exchange") {
		t.Fatalf("P=4 plan should contain an exchange:\n%s", par)
	}
}
