package gsql

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden EXPLAIN files")

var (
	redactTime    = regexp.MustCompile(`time=[^ \n]+`)
	redactWorkers = regexp.MustCompile(`workers=\d+`)
	// The gL cache is engine-shared state, so hit/miss depends on which
	// test ran first; the golden files pin the plan shape, not the cache
	// temperature.
	redactGL = regexp.MustCompile(`\[gL [^\]]*\]`)
)

// redactExplain replaces the run-dependent parts of an EXPLAIN
// rendering (timings, worker counts, gL cache state) with stable
// placeholders so the operator tree can be golden-tested.
func redactExplain(text string) string {
	text = redactTime.ReplaceAllString(text, "time=<T>")
	text = redactWorkers.ReplaceAllString(text, "workers=<W>")
	text = redactGL.ReplaceAllString(text, "[gL <STATE>]")
	// A gL miss runs the BFS pool (workers= present), a hit serves from
	// cache (absent) — cache temperature is shared engine state, so the
	// annotation itself has to go on that line.
	lines := strings.Split(text, "\n")
	for i, l := range lines {
		if strings.Contains(l, "[gL <STATE>]") {
			lines[i] = strings.TrimSuffix(l, " workers=<W>")
		}
	}
	return strings.Join(lines, "\n")
}

func TestExplainGolden(t *testing.T) {
	f := getFintech(t)
	cases := []struct {
		name  string
		par   int
		query string
	}{
		{"select_order_limit", 2, `
			select pid, risk from product
			where price >= 100 order by pid limit 5`},
		{"select_serial", 1, `
			select pid, risk from product
			where price >= 100 order by pid limit 5`},
		{"aggregate_group", 2, `
			select risk, count(*) as n from product
			group by risk order by risk`},
		{"ejoin_static", 2, `
			select risk, company
			from product e-join G <company, country> as T
			where T.country = 'UK'`},
		{"ljoin_static", 2, `
			select customer.cid, customer2.cid
			from customer l-join <Gp> customer as customer2
			where customer.credit = 'fair'`},
		{"cross_join_distinct", 2, `
			select distinct c.credit
			from customer as c, product as p
			where c.bal >= 100000 and p.risk = 'high'`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(f.cat)
			e.Parallelism = tc.par
			text, err := e.Explain(tc.query)
			if err != nil {
				t.Fatal(err)
			}
			got := redactExplain(text)
			path := filepath.Join("testdata", "explain_"+tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
			}
		})
	}
}

func TestExplainGoldenRedaction(t *testing.T) {
	in := "l-join static [gL miss, populated]  rows=3 time=1.234ms workers=8\n" +
		"exchange  rows=10 time=57µs workers=4\n"
	got := redactExplain(in)
	for _, leak := range []string{"1.234ms", "57µs", "workers=8", "workers=4", "miss, populated"} {
		if strings.Contains(got, leak) {
			t.Fatalf("redaction leaked %q: %s", leak, got)
		}
	}
	if !strings.Contains(got, "[gL <STATE>]") || !strings.Contains(got, "workers=<W>") || !strings.Contains(got, "time=<T>") {
		t.Fatalf("placeholders missing: %s", got)
	}
}

func TestSetParallelismStatement(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`set parallelism 3`)
	if err != nil {
		t.Fatal(err)
	}
	if e.Parallelism != 3 || e.Par() != 3 {
		t.Fatalf("Parallelism = %d, Par = %d", e.Parallelism, e.Par())
	}
	if out.Len() != 1 || out.Get(out.Tuples[0], "parallelism").Int() != 3 {
		t.Fatalf("status relation = %v", out)
	}
	// 0 restores the GOMAXPROCS default.
	if _, err := e.Query(`SET PARALLELISM 0`); err != nil {
		t.Fatal(err)
	}
	if e.Parallelism != 0 || e.Par() < 1 {
		t.Fatalf("reset failed: Parallelism=%d Par=%d", e.Parallelism, e.Par())
	}
	for _, bad := range []string{`set parallelism`, `set parallelism -1`, `set parallelism x`, `set parallelism 2 3`} {
		if _, err := e.Query(bad); err == nil {
			t.Fatalf("%q should error", bad)
		}
	}
	// The statement changes the engine's plans: P=1 has no exchange, P>1 does.
	if _, err := e.Query(`set parallelism 1`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`select pid from product where price >= 100`); err != nil {
		t.Fatal(err)
	}
	serial := e.LastStats.String()
	if strings.Contains(serial, "exchange") {
		t.Fatalf("P=1 plan should not contain an exchange:\n%s", serial)
	}
	if _, err := e.Query(`set parallelism 4`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`select pid from product where price >= 100`); err != nil {
		t.Fatal(err)
	}
	par := e.LastStats.String()
	if !strings.Contains(par, "exchange") {
		t.Fatalf("P=4 plan should contain an exchange:\n%s", par)
	}
}
