package gsql

import (
	"context"
	"fmt"

	"semjoin/internal/core"
	"semjoin/internal/rel"
)

// openDurable handles OPEN <base> <dir>: it opens (creating or
// recovering) the write-ahead-logged store for a materialized base and
// rebinds the catalog to the recovered state — the base
// materialisation, the reference relation, and (when recovery loaded a
// snapshot with its own graph copy) every catalog graph that pointed
// at the base's previous graph.
func (e *Engine) openDurable(ctx context.Context, args []string) (*rel.Relation, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("gsql: usage: OPEN <base> <dir>")
	}
	name, dir := args[0], args[1]
	cat := e.Cat
	if cat == nil || cat.Mat == nil || cat.Mat.Base(name) == nil {
		return nil, fmt.Errorf("gsql: OPEN %s: no materialized base by that name", name)
	}
	if cat.Durable == nil {
		cat.Durable = core.NewDurableSet()
	}
	if cat.Durable.Get(name) != nil {
		return nil, fmt.Errorf("gsql: durable store %q already open", name)
	}
	cfg := cat.RExt
	cfg.K = cat.K
	oldG := cat.Mat.G
	st, err := core.OpenDurable(ctx, dir, core.DurableBoot{
		Base: cat.Mat.Base(name), Graph: oldG,
		Models: cat.Models, Cfg: cfg, Matcher: cat.Matcher,
	}, cat.DurableOpts)
	if err != nil {
		return nil, err
	}
	if err := cat.Durable.Put(name, st); err != nil {
		st.Close()
		return nil, err
	}
	// Rebind the catalog to the recovered state. On a fresh directory
	// the store adopted the boot state and these are no-ops; after a
	// snapshot recovery the store carries its own graph copy, so every
	// name bound to the old graph follows it.
	cat.Mat.SetBase(name, st.Base())
	if cat.Relations != nil {
		cat.Relations[name] = st.Base().Spec.D
	}
	if g := st.Graph(); g != oldG {
		cat.Mat.G = g
		for gn, cg := range cat.Graphs {
			if cg == oldG {
				cat.Graphs[gn] = g
			}
		}
	}
	info := st.WALInfo()
	out := rel.NewRelation(rel.NewSchema("status", "",
		rel.Attribute{Name: "base", Type: rel.KindString},
		rel.Attribute{Name: "dir", Type: rel.KindString},
		rel.Attribute{Name: "snapshot_seq", Type: rel.KindInt},
		rel.Attribute{Name: "wal_records", Type: rel.KindInt},
		rel.Attribute{Name: "truncated", Type: rel.KindString},
	))
	trunc := "false"
	if info.Truncated {
		trunc = "true"
	}
	out.InsertVals(rel.S(name), rel.S(dir),
		rel.I(int64(st.SnapshotSeq())), rel.I(int64(info.Records)), rel.S(trunc))
	return out, nil
}

// checkpointDurable handles CHECKPOINT [<base>]: it snapshots one
// named durable store — or all of them — and compacts their logs.
func (e *Engine) checkpointDurable(ctx context.Context, args []string) (*rel.Relation, error) {
	if len(args) > 1 {
		return nil, fmt.Errorf("gsql: usage: CHECKPOINT [<base>]")
	}
	cat := e.Cat
	if cat == nil || cat.Durable == nil || len(cat.Durable.Names()) == 0 {
		return nil, fmt.Errorf("gsql: no durable stores open (use OPEN <base> <dir>)")
	}
	name := ""
	if len(args) == 1 {
		name = args[0]
	}
	if err := cat.Durable.Checkpoint(ctx, name); err != nil {
		return nil, err
	}
	targets := cat.Durable.Names()
	if name != "" {
		targets = []string{name}
	}
	out := rel.NewRelation(rel.NewSchema("status", "",
		rel.Attribute{Name: "base", Type: rel.KindString},
		rel.Attribute{Name: "snapshot_seq", Type: rel.KindInt},
	))
	for _, n := range targets {
		out.InsertVals(rel.S(n), rel.I(int64(cat.Durable.Get(n).SnapshotSeq())))
	}
	return out, nil
}
