// Vectorized stage compilation: WHERE and projection stages run as
// batch operators over columnar data when the engine is in its default
// vectorized mode. Predicates compile once per schema into closure
// trees with pre-resolved column indexes and pre-dispatched comparison
// ops, so the per-row work inside a batch is a tight loop with no
// schema lookups, no Expr interface dispatch and no scratch tuples.
package gsql

import (
	"fmt"
	"strings"

	"semjoin/internal/rel"
)

// rowTest is a compiled predicate over one live row of a batch. The
// row index is physical (pre-selection), as handed out by Batch.Refine.
type rowTest func(b *rel.Batch, row int) bool

// valueAt is a compiled operand: a column access with the index
// resolved at bind time, or a captured literal.
type valueAt func(b *rel.Batch, row int) rel.Value

func compileOperand(s *rel.Schema, o Operand) valueAt {
	if !o.IsCol {
		v := o.Val
		return func(*rel.Batch, int) rel.Value { return v }
	}
	c := s.Col(o.Col)
	if c < 0 {
		return func(*rel.Batch, int) rel.Value { return rel.Null }
	}
	return func(b *rel.Batch, row int) rel.Value { return b.Col(c).ValueAt(row) }
}

// compileTest lowers an Expr into a rowTest against schema s. The
// second return is false when the expression has a shape this compiler
// does not cover; the caller then falls back to scratch-tuple
// evaluation, which is always semantically correct.
func compileTest(s *rel.Schema, e Expr) (rowTest, bool) {
	switch x := e.(type) {
	case Cmp:
		l, r := compileOperand(s, x.L), compileOperand(s, x.R)
		var cmp func(a, b rel.Value) bool
		switch x.Op {
		case "=":
			cmp = func(a, b rel.Value) bool { return a.Equal(b) }
		case "<>", "!=":
			cmp = func(a, b rel.Value) bool { return !a.Equal(b) }
		case "<":
			cmp = func(a, b rel.Value) bool { return a.Compare(b) < 0 }
		case "<=":
			cmp = func(a, b rel.Value) bool { return a.Compare(b) <= 0 }
		case ">":
			cmp = func(a, b rel.Value) bool { return a.Compare(b) > 0 }
		case ">=":
			cmp = func(a, b rel.Value) bool { return a.Compare(b) >= 0 }
		default:
			return nil, false
		}
		return func(b *rel.Batch, row int) bool {
			lv, rv := l(b, row), r(b, row)
			if lv.IsNull() || rv.IsNull() {
				return false
			}
			return cmp(lv, rv)
		}, true
	case IsNull:
		c := s.Col(x.Col)
		neg := x.Negate
		return func(b *rel.Batch, row int) bool {
			isNull := c < 0 || b.Col(c).IsNull(row)
			return isNull != neg
		}, true
	case In:
		l := compileOperand(s, x.L)
		vals, neg := x.Vals, x.Negate
		return func(b *rel.Batch, row int) bool {
			v := l(b, row)
			if v.IsNull() {
				return false
			}
			found := false
			for _, w := range vals {
				if v.Equal(w) {
					found = true
					break
				}
			}
			return found != neg
		}, true
	case Like:
		l := compileOperand(s, x.L)
		pat, neg := x.Pattern, x.Negate
		return func(b *rel.Batch, row int) bool {
			v := l(b, row)
			if v.IsNull() {
				return false
			}
			return likeMatch(v.String(), pat) != neg
		}, true
	case Between:
		l := compileOperand(s, x.L)
		lo, hi, neg := x.Lo, x.Hi, x.Negate
		return func(b *rel.Batch, row int) bool {
			v := l(b, row)
			if v.IsNull() {
				return false
			}
			in := v.Compare(lo) >= 0 && v.Compare(hi) <= 0
			return in != neg
		}, true
	case And:
		lt, ok := compileTest(s, x.L)
		if !ok {
			return nil, false
		}
		rt, ok := compileTest(s, x.R)
		if !ok {
			return nil, false
		}
		return func(b *rel.Batch, row int) bool { return lt(b, row) && rt(b, row) }, true
	case Or:
		lt, ok := compileTest(s, x.L)
		if !ok {
			return nil, false
		}
		rt, ok := compileTest(s, x.R)
		if !ok {
			return nil, false
		}
		return func(b *rel.Batch, row int) bool { return lt(b, row) || rt(b, row) }, true
	case Not:
		t, ok := compileTest(s, x.E)
		if !ok {
			return nil, false
		}
		return func(b *rel.Batch, row int) bool { return !t(b, row) }, true
	}
	return nil, false
}

// batchFilterStage returns the WHERE clause as a batch pipeline stage.
// The predicate compiles per schema at bind time; shapes the compiler
// does not cover evaluate through a scratch tuple instead (RowPred),
// keeping the batch plan available for every expression.
func batchFilterStage(w Expr) rel.BatchPipelineBuilder {
	return func(in rel.BatchIterator) rel.BatchIterator {
		return rel.NewBatchFilterWith("select", in, func(s *rel.Schema) (rel.BatchPred, error) {
			if test, ok := compileTest(s, w); ok {
				return func(b *rel.Batch) {
					b.Refine(func(row int) bool { return test(b, row) })
				}, nil
			}
			return rel.RowPred(s, func(t rel.Tuple) bool { return w.Eval(s, t) }), nil
		})
	}
}

// batchProjectStage returns the SELECT list as a zero-copy batch
// projection stage, sharing resolveProjection with the row engine so
// star expansion, validation and _N renaming behave identically.
// A bare SELECT * is the identity (nil stage).
func (e *Engine) batchProjectStage(q *Query) rel.BatchPipelineBuilder {
	if len(q.Select) == 1 && q.Select[0].Star {
		return nil
	}
	sel := q.Select
	return func(in rel.BatchIterator) rel.BatchIterator {
		return rel.NewBatchProjectWith("project", in, func(in *rel.Schema) (*rel.Schema, []int, error) {
			return resolveProjection(sel, in)
		})
	}
}

// resolveProjection resolves a SELECT list against an input schema:
// star expansion, unknown-column validation, output renaming with _N
// collision dedup, and key survival. Both the row transform stage and
// the batch projection stage bind through it, so the two engines agree
// on every projection edge case by construction.
func resolveProjection(sel []SelectItem, in *rel.Schema) (*rel.Schema, []int, error) {
	var names []string
	var outNames []string
	for _, it := range sel {
		switch {
		case it.Star:
			for _, a := range in.Attrs {
				names = append(names, a.Name)
				outNames = append(outNames, a.Name)
			}
		case strings.HasSuffix(it.Col, ".*"):
			prefix := strings.TrimSuffix(it.Col, "*")
			found := false
			for _, a := range in.Attrs {
				if strings.HasPrefix(a.Name, prefix) {
					names = append(names, a.Name)
					outNames = append(outNames, a.Name)
					found = true
				}
			}
			if !found {
				return nil, nil, fmt.Errorf("gsql: no columns match %q", it.Col)
			}
		default:
			if in.Col(it.Col) < 0 {
				return nil, nil, fmt.Errorf("gsql: unknown column %q in %s", it.Col, in)
			}
			names = append(names, it.Col)
			outNames = append(outNames, it.OutName())
		}
	}
	cols := make([]int, len(names))
	attrs := make([]rel.Attribute, len(names))
	for i, n := range names {
		cols[i] = in.Col(n)
		attrs[i] = rel.Attribute{Name: n, Type: in.Attrs[cols[i]].Type}
	}
	key := ""
	for _, n := range names {
		if n == in.Key {
			key = n
		}
	}
	schema, err := renamedSchema(in.Name, key, attrs, outNames)
	if err != nil {
		return nil, nil, err
	}
	return schema, cols, nil
}

// applyBatchStages chains batch pipeline stages onto cur: the input
// unwraps to zero-copy batch scans where possible (ToBatches), the
// stages run inline when serial or under one batch exchange when
// parallel, and an unbatcher restores the row Iterator contract for
// the operators above. With no stages cur passes through untouched.
func (e *Engine) applyBatchStages(cur rel.Iterator, stages []rel.BatchPipelineBuilder) rel.Iterator {
	if len(stages) == 0 {
		return cur
	}
	combined := func(in rel.BatchIterator) rel.BatchIterator {
		for _, s := range stages {
			in = s(in)
		}
		return in
	}
	src := rel.ToBatches(cur, 0)
	var out rel.BatchIterator
	if p := e.Par(); p > 1 {
		out = rel.NewBatchExchange(src, p, combined)
	} else {
		out = combined(src)
	}
	return rel.NewUnbatcher(out)
}

// setVectorized handles the session statement SET VECTORIZED ON|OFF:
// OFF pins the classic tuple-at-a-time operators (the differential
// oracle's reference side), ON restores the default batch engine. It
// returns a one-row status relation carrying the effective setting.
func (e *Engine) setVectorized(args []string) (*rel.Relation, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("gsql: usage: SET VECTORIZED ON|OFF")
	}
	switch {
	case strings.EqualFold(args[0], "on") || strings.EqualFold(args[0], "true"):
		e.RowAtATime = false
	case strings.EqualFold(args[0], "off") || strings.EqualFold(args[0], "false"):
		e.RowAtATime = true
	default:
		return nil, fmt.Errorf("gsql: SET VECTORIZED: want ON or OFF, got %q", args[0])
	}
	out := rel.NewRelation(rel.NewSchema("status", "",
		rel.Attribute{Name: "vectorized", Type: rel.KindBool},
	))
	out.InsertVals(rel.B(!e.RowAtATime))
	return out, nil
}
