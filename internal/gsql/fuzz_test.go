package gsql

import (
	"context"
	"sync"
	"testing"
	"time"

	"semjoin/internal/core"
	"semjoin/internal/embed"
	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// fuzzCatOnce builds one tiny catalog shared by every fuzz execution:
// two products, one company, a materialised base — big enough to reach
// every plan family, small enough that any query finishes instantly.
var fuzzCatOnce struct {
	sync.Once
	cat *Catalog
}

func fuzzCatalog() *Catalog {
	fuzzCatOnce.Do(func() {
		g := graph.New()
		uk := g.AddVertex("UK", "country")
		acme := g.AddVertex("Acme", "company")
		g.AddEdge(acme, "registered_in", uk)
		p0 := g.AddVertex("asset 0", "product")
		p1 := g.AddVertex("asset 1", "product")
		g.AddEdge(acme, "issues", p0)
		g.AddEdge(acme, "issues", p1)
		products := rel.NewRelation(rel.NewSchema("product", "pid",
			rel.Attribute{Name: "pid", Type: rel.KindString},
			rel.Attribute{Name: "name", Type: rel.KindString},
			rel.Attribute{Name: "price", Type: rel.KindInt},
		))
		products.InsertVals(rel.S("p0"), rel.S("asset 0"), rel.I(60))
		products.InsertVals(rel.S("p1"), rel.S("asset 1"), rel.I(90))
		oracle := her.NewOracleMatcher(map[string]graph.VertexID{"p0": p0, "p1": p1})
		models := core.Models{Word: embed.NewCharEmbedder(16, 1), RandomPaths: true}
		cfg := core.Config{K: 2, H: 6, Seed: 7}
		mat, err := core.BuildMaterialized(g, models, map[string]core.BaseSpec{
			"product": {D: products, AR: []string{"company"}, Matcher: oracle},
		}, cfg)
		if err != nil {
			mat = nil // degrade to the online plan families
		}
		fuzzCatOnce.cat = &Catalog{
			Relations: map[string]*rel.Relation{"product": products},
			Graphs:    map[string]*graph.Graph{"G": g},
			Models:    models,
			Matcher:   oracle,
			Mat:       mat,
			K:         2,
			RExt:      core.Config{H: 6, Seed: 7},
		}
	})
	return fuzzCatOnce.cat
}

// FuzzParseGSQL feeds arbitrary strings through the full query path:
// lexer, parser, planner and executor must return errors — never panic
// or hang — and the engine must stay usable afterwards (a broken query
// must not poison session state for the next one).
func FuzzParseGSQL(f *testing.F) {
	for _, q := range []string{
		"select pid, name from product where price >= 60 order by pid limit 5",
		"select distinct name from product where not (price < 70)",
		"select pid, count(*) as n from product group by pid",
		"select pid, company from product e-join G <company> as T where T.company = 'Acme'",
		"select product.pid, product2.pid from product l-join <G> product as product2",
		"select a.pid, b.pid from product as a, product as b where a.price between 50 and 95",
		"explain select pid from product",
		"explain analyze select pid from product",
		"set parallelism 2",
		"set parallelism default",
		"show metrics",
		"select from where",
		"select pid from product e-join",
		"l-join <G> <G> <G>",
		"select * from product where pid in (",
		"\x00\xff select",
	} {
		f.Add(q)
	}
	f.Fuzz(func(t *testing.T, query string) {
		if len(query) > 4096 {
			return // bound lexer work; long inputs add nothing new
		}
		if _, err := Parse(query); err != nil {
			_ = err // rejecting is fine; panicking is the bug
		}
		e := NewEngine(fuzzCatalog())
		e.Obs = obs.NewRegistry()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if _, err := e.QueryContext(ctx, query); err != nil {
			_ = err
		}
		if _, err := e.QueryContext(ctx, "select pid from product"); err != nil {
			t.Fatalf("engine unusable after %q: %v", query, err)
		}
	})
}
