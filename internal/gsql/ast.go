package gsql

import (
	"strings"

	"semjoin/internal/rel"
)

// Query is a parsed gSQL query of the §II-C form.
type Query struct {
	Distinct bool
	Select   []SelectItem
	From     []FromItem
	Where    Expr // nil when absent
	GroupBy  []string
	Having   Expr // nil when absent; evaluated over the aggregate output
	OrderBy  []OrderKey
	Limit    int // -1 when absent
}

// SelectItem is one output column: '*', an attribute, or an aggregate.
type SelectItem struct {
	Star bool
	Col  string // attribute reference when Agg == ""
	Agg  string // "count", "sum", "avg", "min", "max" or ""
	Arg  string // aggregate argument attribute or "*"
	As   string // output name; defaults to Col or agg(arg)
}

// OutName returns the column name this item produces.
func (s SelectItem) OutName() string {
	if s.As != "" {
		return s.As
	}
	if s.Agg != "" {
		return s.Agg + "_" + strings.ReplaceAll(s.Arg, "*", "all")
	}
	return s.Col
}

// FromKind discriminates FROM items.
type FromKind int

// FROM item kinds.
const (
	FromTable FromKind = iota
	FromSubquery
	FromEJoin
	FromLJoin
)

// FromItem is one entry of the FROM clause.
type FromItem struct {
	Kind  FromKind
	Alias string

	// FromTable
	Table string

	// FromSubquery
	Sub *Query

	// FromEJoin: Source e-join Graph⟨Keywords⟩
	Source   *FromItem
	Graph    string
	Keywords []string

	// FromLJoin: Left l-join ⟨Graph⟩ Right
	Left, Right *FromItem
}

// Name returns the binding name of the item (alias, or table name).
func (f *FromItem) Name() string {
	if f.Alias != "" {
		return f.Alias
	}
	switch f.Kind {
	case FromTable:
		return f.Table
	case FromEJoin:
		return f.Source.Name()
	}
	return ""
}

// Expr is a boolean/comparison expression tree over tuple attributes.
type Expr interface {
	// Eval evaluates the expression against a tuple of the given schema.
	Eval(s *rel.Schema, t rel.Tuple) bool
	// String renders the expression (diagnostics).
	String() string
}

// Cmp is a binary comparison between two operands (columns or literals).
type Cmp struct {
	Op   string // "=", "<>", "<", "<=", ">", ">="
	L, R Operand
}

// IsNull tests an attribute for (non-)nullness.
type IsNull struct {
	Col    string
	Negate bool
}

// In tests membership of an operand in a literal list.
type In struct {
	L      Operand
	Vals   []rel.Value
	Negate bool
}

// Like matches an operand against a SQL LIKE pattern (% and _).
type Like struct {
	L       Operand
	Pattern string
	Negate  bool
}

// Between tests lo <= operand <= hi.
type Between struct {
	L      Operand
	Lo, Hi rel.Value
	Negate bool
}

// And is a conjunction.
type And struct{ L, R Expr }

// Or is a disjunction.
type Or struct{ L, R Expr }

// Not negates an expression.
type Not struct{ E Expr }

// Operand is a comparison operand.
type Operand struct {
	Col   string    // attribute name when IsCol
	Val   rel.Value // literal otherwise
	IsCol bool
}

func (o Operand) value(s *rel.Schema, t rel.Tuple) rel.Value {
	if !o.IsCol {
		return o.Val
	}
	c := s.Col(o.Col)
	if c < 0 {
		return rel.Null
	}
	return t[c]
}

func (o Operand) String() string {
	if o.IsCol {
		return o.Col
	}
	return "'" + o.Val.String() + "'"
}

// Eval implements Expr.
func (c Cmp) Eval(s *rel.Schema, t rel.Tuple) bool {
	l, r := c.L.value(s, t), c.R.value(s, t)
	if l.IsNull() || r.IsNull() {
		return false // SQL three-valued logic collapses to false
	}
	switch c.Op {
	case "=":
		return l.Equal(r)
	case "<>", "!=":
		return !l.Equal(r)
	case "<":
		return l.Compare(r) < 0
	case "<=":
		return l.Compare(r) <= 0
	case ">":
		return l.Compare(r) > 0
	case ">=":
		return l.Compare(r) >= 0
	}
	return false
}

func (c Cmp) String() string { return c.L.String() + " " + c.Op + " " + c.R.String() }

// Eval implements Expr.
func (i IsNull) Eval(s *rel.Schema, t rel.Tuple) bool {
	col := s.Col(i.Col)
	isNull := col < 0 || t[col].IsNull()
	if i.Negate {
		return !isNull
	}
	return isNull
}

func (i IsNull) String() string {
	if i.Negate {
		return i.Col + " is not null"
	}
	return i.Col + " is null"
}

// Eval implements Expr.
func (i In) Eval(s *rel.Schema, t rel.Tuple) bool {
	v := i.L.value(s, t)
	if v.IsNull() {
		return false
	}
	found := false
	for _, x := range i.Vals {
		if v.Equal(x) {
			found = true
			break
		}
	}
	if i.Negate {
		return !found
	}
	return found
}

func (i In) String() string {
	out := i.L.String()
	if i.Negate {
		out += " not"
	}
	out += " in ("
	for j, v := range i.Vals {
		if j > 0 {
			out += ", "
		}
		out += "'" + v.String() + "'"
	}
	return out + ")"
}

// Eval implements Expr.
func (l Like) Eval(s *rel.Schema, t rel.Tuple) bool {
	v := l.L.value(s, t)
	if v.IsNull() {
		return false
	}
	ok := likeMatch(v.String(), l.Pattern)
	if l.Negate {
		return !ok
	}
	return ok
}

func (l Like) String() string {
	op := " like "
	if l.Negate {
		op = " not like "
	}
	return l.L.String() + op + "'" + l.Pattern + "'"
}

// likeMatch implements SQL LIKE: % matches any run, _ one character.
// Matching is case-sensitive, like PostgreSQL's LIKE.
func likeMatch(s, pattern string) bool {
	// Iterative two-pointer matching with backtracking on %.
	si, pi := 0, 0
	star, sBack := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			sBack = si
			pi++
		case star >= 0:
			sBack++
			si = sBack
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// Eval implements Expr.
func (b Between) Eval(s *rel.Schema, t rel.Tuple) bool {
	v := b.L.value(s, t)
	if v.IsNull() || b.Lo.IsNull() || b.Hi.IsNull() {
		return false
	}
	ok := v.Compare(b.Lo) >= 0 && v.Compare(b.Hi) <= 0
	if b.Negate {
		return !ok
	}
	return ok
}

func (b Between) String() string {
	op := " between "
	if b.Negate {
		op = " not between "
	}
	return b.L.String() + op + "'" + b.Lo.String() + "' and '" + b.Hi.String() + "'"
}

// Eval implements Expr.
func (a And) Eval(s *rel.Schema, t rel.Tuple) bool { return a.L.Eval(s, t) && a.R.Eval(s, t) }

func (a And) String() string { return "(" + a.L.String() + " and " + a.R.String() + ")" }

// Eval implements Expr.
func (o Or) Eval(s *rel.Schema, t rel.Tuple) bool { return o.L.Eval(s, t) || o.R.Eval(s, t) }

func (o Or) String() string { return "(" + o.L.String() + " or " + o.R.String() + ")" }

// Eval implements Expr.
func (n Not) Eval(s *rel.Schema, t rel.Tuple) bool { return !n.E.Eval(s, t) }

func (n Not) String() string { return "not " + n.E.String() }

// OrderKey is one ORDER BY key.
type OrderKey struct {
	Col  string
	Desc bool
}

// Columns returns every attribute name referenced by the expression
// (used by the planner for gL cache keys and diagnostics).
func Columns(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case Cmp:
			if x.L.IsCol {
				out = append(out, x.L.Col)
			}
			if x.R.IsCol {
				out = append(out, x.R.Col)
			}
		case IsNull:
			out = append(out, x.Col)
		case In:
			if x.L.IsCol {
				out = append(out, x.L.Col)
			}
		case Like:
			if x.L.IsCol {
				out = append(out, x.L.Col)
			}
		case Between:
			if x.L.IsCol {
				out = append(out, x.L.Col)
			}
		case And:
			walk(x.L)
			walk(x.R)
		case Or:
			walk(x.L)
			walk(x.R)
		case Not:
			walk(x.E)
		}
	}
	if e != nil {
		walk(e)
	}
	return out
}
