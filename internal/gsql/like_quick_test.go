package gsql

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// likeToRegexp builds the reference implementation: translate a LIKE
// pattern into an anchored regexp.
func likeToRegexp(pattern string) *regexp.Regexp {
	var b strings.Builder
	b.WriteString("^")
	for _, r := range pattern {
		switch r {
		case '%':
			b.WriteString("(?s).*")
		case '_':
			b.WriteString("(?s).")
		default:
			b.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	b.WriteString("$")
	return regexp.MustCompile(b.String())
}

// Property: likeMatch agrees with the regexp translation on random
// inputs over a small alphabet (small alphabets maximise collisions and
// backtracking).
func TestLikeMatchAgainstRegexp(t *testing.T) {
	alpha := []byte("ab%_")
	mk := func(xs []uint8, n int) string {
		var b strings.Builder
		for _, x := range xs {
			b.WriteByte(alpha[int(x)%n])
		}
		return b.String()
	}
	f := func(sRaw, pRaw []uint8) bool {
		s := mk(sRaw, 2) // subject over {a, b}
		p := mk(pRaw, 4) // pattern over {a, b, %, _}
		if len(p) > 12 || len(s) > 24 {
			return true // keep regexp backtracking bounded
		}
		return likeMatch(s, p) == likeToRegexp(p).MatchString(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
