package gsql

import (
	"fmt"
	"strconv"

	"semjoin/internal/rel"
)

// Parse parses one gSQL query.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF, "") {
		return nil, p.errf("trailing input %q", p.cur().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, found %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("gsql: at offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

// parseQuery := SELECT [DISTINCT] selectList FROM fromList [WHERE expr]
//
//	[GROUP BY cols] [ORDER BY keys] [LIMIT n]
func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokKeyword, "select"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	q.Distinct = p.accept(tokKeyword, "distinct")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "from"); err != nil {
		return nil, err
	}
	for {
		item, err := p.parseFromItem()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, item)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "where") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.accept(tokKeyword, "group") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			name, err := p.parseQualifiedIdent()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, name)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "having") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Having = e
	}
	if p.accept(tokKeyword, "order") {
		if _, err := p.expect(tokKeyword, "by"); err != nil {
			return nil, err
		}
		for {
			name, err := p.parseQualifiedIdent()
			if err != nil {
				return nil, err
			}
			key := OrderKey{Col: name}
			if p.accept(tokKeyword, "desc") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "asc")
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "limit") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errf("bad limit %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept(tokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// Aggregate?
	if t := p.cur(); t.kind == tokKeyword {
		switch t.text {
		case "count", "sum", "avg", "min", "max":
			p.next()
			if _, err := p.expect(tokSymbol, "("); err != nil {
				return SelectItem{}, err
			}
			arg := "*"
			if !p.accept(tokSymbol, "*") {
				name, err := p.parseQualifiedIdent()
				if err != nil {
					return SelectItem{}, err
				}
				arg = name
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return SelectItem{}, err
			}
			item := SelectItem{Agg: t.text, Arg: arg}
			if p.accept(tokKeyword, "as") {
				a, err := p.expect(tokIdent, "")
				if err != nil {
					return SelectItem{}, err
				}
				item.As = a.text
			}
			return item, nil
		}
	}
	name, err := p.parseQualifiedIdent()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Col: name}
	if p.accept(tokKeyword, "as") {
		a, err := p.expect(tokIdent, "")
		if err != nil {
			return SelectItem{}, err
		}
		item.As = a.text
	}
	return item, nil
}

// parseQualifiedIdent parses ident ('.' ident)? and also tolerates
// alias '.' '*' — returned as "alias.*".
func (p *parser) parseQualifiedIdent() (string, error) {
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return "", err
	}
	name := t.text
	if p.accept(tokSymbol, ".") {
		if p.accept(tokSymbol, "*") {
			return name + ".*", nil
		}
		t2, err := p.expect(tokIdent, "")
		if err != nil {
			return "", err
		}
		name += "." + t2.text
	}
	return name, nil
}

// parseFromItem := primary [ 'e-join' ident '<' identList '>' ] [ 'l-join' '<' ident '>' primary ] [AS ident]
func (p *parser) parseFromItem() (FromItem, error) {
	prim, err := p.parseFromPrimary()
	if err != nil {
		return FromItem{}, err
	}
	item := prim
	for {
		switch {
		case p.accept(tokKeyword, "e-join"):
			g, err := p.expect(tokIdent, "")
			if err != nil {
				return FromItem{}, err
			}
			if _, err := p.expect(tokSymbol, "<"); err != nil {
				return FromItem{}, err
			}
			var kws []string
			for {
				k, err := p.parseKeyword()
				if err != nil {
					return FromItem{}, err
				}
				kws = append(kws, k)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if _, err := p.expect(tokSymbol, ">"); err != nil {
				return FromItem{}, err
			}
			src := item
			item = FromItem{Kind: FromEJoin, Source: &src, Graph: g.text, Keywords: kws}
		case p.accept(tokKeyword, "l-join"):
			if _, err := p.expect(tokSymbol, "<"); err != nil {
				return FromItem{}, err
			}
			g, err := p.expect(tokIdent, "")
			if err != nil {
				return FromItem{}, err
			}
			if _, err := p.expect(tokSymbol, ">"); err != nil {
				return FromItem{}, err
			}
			right, err := p.parseFromPrimary()
			if err != nil {
				return FromItem{}, err
			}
			if p.accept(tokKeyword, "as") {
				a, err := p.expect(tokIdent, "")
				if err != nil {
					return FromItem{}, err
				}
				right.Alias = a.text
			}
			left := item
			item = FromItem{Kind: FromLJoin, Graph: g.text, Left: &left, Right: &right}
			return item, nil
		default:
			if p.accept(tokKeyword, "as") {
				a, err := p.expect(tokIdent, "")
				if err != nil {
					return FromItem{}, err
				}
				item.Alias = a.text
			}
			return item, nil
		}
	}
}

// parseKeyword parses one extraction keyword: an identifier or a string
// literal (value exemplars may contain spaces).
func (p *parser) parseKeyword() (string, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.next()
		return t.text, nil
	case tokString:
		p.next()
		return t.text, nil
	}
	return "", p.errf("expected keyword, found %q", t.text)
}

func (p *parser) parseFromPrimary() (FromItem, error) {
	if p.accept(tokSymbol, "(") {
		sub, err := p.parseQuery()
		if err != nil {
			return FromItem{}, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return FromItem{}, err
		}
		return FromItem{Kind: FromSubquery, Sub: sub}, nil
	}
	t, err := p.expect(tokIdent, "")
	if err != nil {
		return FromItem{}, err
	}
	return FromItem{Kind: FromTable, Table: t.text}, nil
}

// parseOr := parseAnd ('or' parseAnd)*
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

// parseAnd := parseNot ('and' parseNot)*
func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.accept(tokKeyword, "not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return Not{E: e}, nil
	}
	if p.accept(tokSymbol, "(") {
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.accept(tokKeyword, "is") {
		neg := p.accept(tokKeyword, "not")
		if _, err := p.expect(tokKeyword, "null"); err != nil {
			return nil, err
		}
		if !l.IsCol {
			return nil, p.errf("IS NULL needs a column")
		}
		return IsNull{Col: l.Col, Negate: neg}, nil
	}
	// Operand-level NOT: a NOT IN (...), a NOT LIKE ..., a NOT BETWEEN ...
	negate := false
	if p.at(tokKeyword, "not") {
		next := p.toks[p.pos+1]
		if next.kind == tokKeyword && (next.text == "in" || next.text == "like" || next.text == "between") {
			p.next()
			negate = true
		}
	}
	switch {
	case p.accept(tokKeyword, "in"):
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var vals []rel.Value
		for {
			v, err := p.parseLiteral()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return In{L: l, Vals: vals, Negate: negate}, nil
	case p.accept(tokKeyword, "like"):
		t, err := p.expect(tokString, "")
		if err != nil {
			return nil, err
		}
		return Like{L: l, Pattern: t.text, Negate: negate}, nil
	case p.accept(tokKeyword, "between"):
		lo, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "and"); err != nil {
			return nil, err
		}
		hi, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		return Between{L: l, Lo: lo, Hi: hi, Negate: negate}, nil
	}
	if negate {
		return nil, p.errf("dangling NOT")
	}
	op := p.cur()
	if op.kind != tokSymbol {
		return nil, p.errf("expected comparison operator, found %q", op.text)
	}
	switch op.text {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		p.next()
	default:
		return nil, p.errf("unsupported operator %q", op.text)
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	o := op.text
	if o == "!=" {
		o = "<>"
	}
	return Cmp{Op: o, L: l, R: r}, nil
}

// parseLiteral parses a string, number or NULL literal.
func (p *parser) parseLiteral() (rel.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.next()
		return rel.S(t.text), nil
	case tokNumber:
		p.next()
		return rel.Parse(t.text), nil
	case tokKeyword:
		if t.text == "null" {
			p.next()
			return rel.Null, nil
		}
	}
	return rel.Null, p.errf("expected literal, found %q", t.text)
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokString:
		p.next()
		return Operand{Val: rel.S(t.text)}, nil
	case tokNumber:
		p.next()
		return Operand{Val: rel.Parse(t.text)}, nil
	case tokKeyword:
		if t.text == "null" {
			p.next()
			return Operand{Val: rel.Null}, nil
		}
	case tokIdent:
		name, err := p.parseQualifiedIdent()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Col: name, IsCol: true}, nil
	}
	return Operand{}, p.errf("expected operand, found %q", t.text)
}
