package gsql

import (
	"strings"
	"testing"
)

func TestEngineExplainEnrichmentJoin(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	text, err := e.Explain(`
		select risk, company
		from product e-join G <company, country> as T
		where T.pid = 'fd0' and T.country = 'UK'`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"well-behaved: true",
		"strategy: e-join(G): well-behaved, static over materialised h(D,G)",
		"rows=",
		"time=",
		"project",
		"select",
		"scan product",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("explain output missing %q:\n%s", want, text)
		}
	}
	// Every operator line carries a row count and the tree is indented.
	lines := strings.Split(strings.TrimSpace(text), "\n")
	opLines := 0
	for _, l := range lines {
		if strings.Contains(l, "rows=") {
			opLines++
		}
	}
	if opLines < 3 {
		t.Fatalf("expected an operator tree, got %d op lines:\n%s", opLines, text)
	}
}

func TestEngineExplainLinkJoin(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	text, err := e.Explain(`
		select customer.cid, customer2.cid
		from customer l-join <Gp> customer as customer2
		where customer.credit = 'fair'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "l-join") || !strings.Contains(text, "rows=") {
		t.Fatalf("explain output:\n%s", text)
	}
	// The static link join's operator note records the gL cache outcome.
	if !strings.Contains(text, "gL") {
		t.Fatalf("expected a gL cache note:\n%s", text)
	}
	// A second run must be served from the cache.
	text2, err := e.Explain(`
		select customer.cid, customer2.cid
		from customer l-join <Gp> customer as customer2
		where customer.credit = 'fair'`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text2, "gL hit") {
		t.Fatalf("second run should hit the gL cache:\n%s", text2)
	}
}

func TestEngineLastStats(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`select cid from customer where credit = 'good'`)
	if err != nil {
		t.Fatal(err)
	}
	if e.LastStats == nil || len(e.LastStats.Lines) == 0 {
		t.Fatal("LastStats not populated")
	}
	root := e.LastStats.Lines[0]
	if root.Rows != int64(out.Len()) {
		t.Fatalf("root rows=%d, result rows=%d", root.Rows, out.Len())
	}
	if e.LastStats.TotalRows() < root.Rows {
		t.Fatal("TotalRows smaller than root rows")
	}
}

func TestEngineExplainRelationIncludesOperatorTree(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	out, err := e.Query(`explain select pid from product e-join G <company> as T`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tp := range out.Tuples {
		if strings.Contains(out.Get(tp, "note").Str(), "rows=") {
			found = true
		}
	}
	if !found {
		t.Fatalf("EXPLAIN relation lacks operator rows:\n%v", out)
	}
}
