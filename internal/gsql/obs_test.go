package gsql

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// newObsEngine builds a fintech engine with a private registry and
// query log, so assertions see only this test's traffic.
func newObsEngine(t *testing.T) (*Engine, *obs.Registry, *obs.QueryLog) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	e.Obs = obs.NewRegistry()
	e.Queries = obs.NewQueryLog()
	return e, e.Obs, e.Queries
}

func TestQueryMetricsRecorded(t *testing.T) {
	e, reg, _ := newObsEngine(t)
	if _, err := e.Query(`select pid from product where price >= 100`); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(`select bogus from nowhere`); err == nil {
		t.Fatal("want error for unknown relation")
	}
	vals := reg.CounterValues()
	if vals["gsql_queries_total"] != 2 {
		t.Fatalf("gsql_queries_total = %d, want 2", vals["gsql_queries_total"])
	}
	if vals["gsql_query_errors_total"] != 1 {
		t.Fatalf("gsql_query_errors_total = %d, want 1", vals["gsql_query_errors_total"])
	}
	snap := reg.Snapshot()
	if snap["gsql_query_seconds_count"] != 2 {
		t.Fatalf("gsql_query_seconds_count = %v, want 2", snap["gsql_query_seconds_count"])
	}
	// Per-operator row counters flow through the query context.
	if vals[`rel_op_rows_total{op="scan"}`] == 0 {
		t.Fatalf("no scan rows recorded: %v", vals)
	}
}

func TestMetricsEndpointServesEngineTraffic(t *testing.T) {
	e, reg, log := newObsEngine(t)
	// Two identical l-joins: the first misses the gL cache, the second
	// hits, so both counters appear in the exposition. The predicate is
	// unique to this test — the fixture's gL cache is shared across the
	// package, and a key another test already populated would turn the
	// expected miss into a hit.
	q := `select customer.cid from customer l-join <Gp> customer as customer2
	      where customer.bal >= 98765`
	for i := 0; i < 2; i++ {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(obs.Handler(reg, log, obs.NewTraceStore(8)))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"core_gl_hits_total 1",
		"core_gl_misses_total 1",
		"# TYPE gsql_query_seconds histogram",
		`gsql_query_seconds_bucket{le="+Inf"} 2`,
		"gsql_queries_total 2",
		"core_gl_entries ", // gauge counts the shared fixture cache, so only presence is stable
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestShowMetricsStatement(t *testing.T) {
	e, _, _ := newObsEngine(t)
	if _, err := e.Query(`select pid from product`); err != nil {
		t.Fatal(err)
	}
	out, err := e.Query(`show metrics`)
	if err != nil {
		t.Fatal(err)
	}
	found := map[string]string{}
	for _, tup := range out.Tuples {
		found[out.Get(tup, "metric").String()] = out.Get(tup, "value").String()
	}
	if found["gsql_queries_total"] != "1" {
		t.Fatalf("gsql_queries_total = %q in %v", found["gsql_queries_total"], found)
	}
	if _, ok := found["gsql_query_seconds_p95"]; !ok {
		t.Fatalf("histogram quantiles missing from SHOW METRICS: %v", found)
	}
	// Rows come out sorted by metric name.
	var prev string
	for _, tup := range out.Tuples {
		name := out.Get(tup, "metric").String()
		if name < prev {
			t.Fatalf("SHOW METRICS not sorted: %q after %q", name, prev)
		}
		prev = name
	}
	if _, err := e.Query(`show metrics please`); err == nil {
		t.Fatal("trailing arguments should error")
	}
}

func TestSetSlowQueryMSStatement(t *testing.T) {
	e, reg, log := newObsEngine(t)
	out, err := e.Query(`set slow_query_ms 0`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || out.Get(out.Tuples[0], "slow_query_ms").Int() != 0 {
		t.Fatalf("status relation = %v", out)
	}
	if _, err := e.Query(`select pid from product`); err != nil {
		t.Fatal(err)
	}
	if len(log.Slow()) != 0 {
		t.Fatal("threshold 0 must disable slow classification")
	}
	// A 1ns threshold makes every query slow.
	log.SetSlowThreshold(time.Nanosecond)
	if _, err := e.Query(`select pid from product`); err != nil {
		t.Fatal(err)
	}
	if len(log.Slow()) != 1 {
		t.Fatalf("slow queries = %d, want 1", len(log.Slow()))
	}
	if reg.CounterValues()["gsql_slow_queries_total"] != 1 {
		t.Fatal("gsql_slow_queries_total not incremented")
	}
	if len(log.Recent()) != 2 {
		t.Fatalf("recent queries = %d, want 2", len(log.Recent()))
	}
	for _, bad := range []string{`set slow_query_ms`, `set slow_query_ms -1`, `set slow_query_ms x`} {
		if _, err := e.Query(bad); err == nil {
			t.Fatalf("%q should error", bad)
		}
	}
}

func TestExplainAnalyzeTrace(t *testing.T) {
	e, _, _ := newObsEngine(t)
	e.Parallelism = 2
	text, err := e.ExplainAnalyze(`explain analyze
		select pid, risk from product where price >= 100 order by pid limit 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(text, "well-behaved: ") {
		t.Fatalf("verdict missing:\n%s", text)
	}
	for _, want := range []string{"query  time=", "  parse  time=", "  plan  time=", "  execute  time="} {
		if !strings.Contains(text, want) {
			t.Fatalf("span %q missing:\n%s", want, text)
		}
	}
	// The operator tree nests under the execute span: every LastStats
	// line appears, indented two levels deeper than its own depth.
	for _, l := range e.LastStats.Lines {
		nl := l
		nl.Depth += 2
		if !strings.Contains(text, nl.String()+"\n") {
			t.Fatalf("operator line %q missing:\n%s", nl.String(), text)
		}
	}
	// Span ordering: parse before plan before execute, all after query.
	pq := strings.Index(text, "query  time=")
	pp := strings.Index(text, "  parse  time=")
	pl := strings.Index(text, "  plan  time=")
	px := strings.Index(text, "  execute  time=")
	if !(pq < pp && pp < pl && pl < px) {
		t.Fatalf("span order wrong (%d %d %d %d):\n%s", pq, pp, pl, px, text)
	}
}

func TestExplainAnalyzeQueryPrefix(t *testing.T) {
	e, _, _ := newObsEngine(t)
	out, err := e.Query(`explain analyze select pid from product`)
	if err != nil {
		t.Fatal(err)
	}
	if out.Schema.Name != "plan" {
		t.Fatalf("schema = %v", out.Schema)
	}
	var notes []string
	for _, tup := range out.Tuples {
		notes = append(notes, out.Get(tup, "note").String())
	}
	joined := strings.Join(notes, "\n")
	for _, want := range []string{"well-behaved: ", "query  time=", "  execute  time="} {
		if !strings.Contains(joined, want) {
			t.Fatalf("EXPLAIN ANALYZE relation missing %q:\n%s", want, joined)
		}
	}
}

func TestExplainAnalyzeConsistentWithPlanLines(t *testing.T) {
	e, _, _ := newObsEngine(t)
	text, err := e.ExplainAnalyze(`select customer.cid from customer l-join <Gp> customer as customer2`)
	if err != nil {
		t.Fatal(err)
	}
	// Every plan line embedded in the trace parses back to the same
	// label/rows as LastStats reports (the span tree and the operator
	// stats describe one and the same execution).
	var parsed []rel.PlanLine
	for _, line := range strings.Split(text, "\n") {
		if l, ok := rel.ParsePlanLine(line); ok && l.Label != "query" {
			parsed = append(parsed, l)
		}
	}
	if len(parsed) != len(e.LastStats.Lines) {
		t.Fatalf("trace has %d operator lines, stats %d:\n%s", len(parsed), len(e.LastStats.Lines), text)
	}
	for i, l := range e.LastStats.Lines {
		if parsed[i].Label != l.Label || parsed[i].Rows != l.Rows || parsed[i].Depth != l.Depth+2 {
			t.Fatalf("line %d mismatch: trace %+v vs stats %+v", i, parsed[i], l)
		}
	}
}
