// Package gsql implements the SQL dialect of §II-C: standard
// select/from/where SQL extended with the `e-join` (enrichment join) and
// `l-join` (link join) syntactic sugar, a recursive-descent parser, and an
// executor that plans each semantic join as static (pre-materialised),
// dynamic, heuristic, or conceptual-baseline — including the linear-time
// well-behaved analysis of §IV-A.
package gsql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token kinds.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokString
	tokNumber
	tokSymbol
)

// token is one lexical token with its position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int
}

// keywords of gSQL, stored lowercase.
var keywords = map[string]bool{
	"select": true, "from": true, "where": true, "as": true,
	"and": true, "or": true, "not": true,
	"group": true, "by": true, "distinct": true,
	"e-join": true, "l-join": true,
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"is": true, "null": true, "order": true, "asc": true, "desc": true,
	"limit": true, "in": true, "like": true, "between": true, "having": true,
	"explain": true,
}

// lex splits input into tokens. Identifiers may be qualified (a.b) and may
// contain hyphens (so the e-join / l-join keywords lex naturally);
// strings use single quotes with ” escapes.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			for {
				if i >= n {
					return nil, fmt.Errorf("gsql: unterminated string at %d", start)
				}
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			toks = append(toks, token{tokString, sb.String(), start})
		case unicode.IsDigit(c) || (c == '-' && i+1 < n && unicode.IsDigit(rune(input[i+1])) && expectsValue(toks)):
			start := i
			if c == '-' {
				i++
			}
			for i < n && (unicode.IsDigit(rune(input[i])) || input[i] == '.') {
				i++
			}
			toks = append(toks, token{tokNumber, input[start:i], start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < n && isIdentRune(rune(input[i])) {
				i++
			}
			text := input[start:i]
			kind := tokIdent
			if keywords[strings.ToLower(text)] {
				kind = tokKeyword
				text = strings.ToLower(text)
			}
			toks = append(toks, token{kind, text, start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=":
				toks = append(toks, token{tokSymbol, two, start})
				i += 2
				continue
			}
			switch c {
			case ',', '(', ')', '<', '>', '=', '*', '.':
				toks = append(toks, token{tokSymbol, string(c), start})
				i++
			default:
				return nil, fmt.Errorf("gsql: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

// isIdentRune reports whether r may continue an identifier. Hyphens are
// allowed so `e-join` lexes as one keyword; dots are NOT part of the
// identifier token (qualification is parsed as ident '.' ident).
func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

// expectsValue reports whether a '-' at the current position should start
// a negative number literal (i.e. the previous token cannot end an
// expression operand).
func expectsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.kind {
	case tokIdent, tokString, tokNumber:
		return false
	case tokSymbol:
		return last.text != ")" && last.text != "*"
	}
	return true
}
