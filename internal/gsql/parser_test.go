package gsql

import (
	"testing"

	"semjoin/internal/rel"
)

func mustParse(t *testing.T, q string) *Query {
	t.Helper()
	out, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := lex("select a.b, 'it''s' from t where x <= -3.5")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.kind)
		texts = append(texts, tok.text)
	}
	want := []string{"select", "a", ".", "b", ",", "it's", "from", "t", "where", "x", "<=", "-3.5", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q (all: %v)", i, texts[i], want[i], texts)
		}
	}
	if kinds[0] != tokKeyword || kinds[5] != tokString || kinds[11] != tokNumber {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestLexEJoinKeyword(t *testing.T) {
	toks, err := lex("product e-join G")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].kind != tokKeyword || toks[1].text != "e-join" {
		t.Fatalf("e-join lexed as %v %q", toks[1].kind, toks[1].text)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex("select 'unterminated"); err == nil {
		t.Fatal("unterminated string should fail")
	}
	if _, err := lex("select @"); err == nil {
		t.Fatal("bad character should fail")
	}
}

func TestParseQ1(t *testing.T) {
	// The paper's Q1 from Section I.
	q := mustParse(t, `
		select risk, company
		from product e-join G <company, loc> as T
		where T.pid = 'fd1' and T.loc = 'UK'`)
	if len(q.Select) != 2 || q.Select[0].Col != "risk" {
		t.Fatalf("select = %+v", q.Select)
	}
	if len(q.From) != 1 || q.From[0].Kind != FromEJoin {
		t.Fatalf("from = %+v", q.From)
	}
	ej := q.From[0]
	if ej.Graph != "G" || ej.Alias != "T" {
		t.Fatalf("ejoin = %+v", ej)
	}
	if len(ej.Keywords) != 2 || ej.Keywords[0] != "company" || ej.Keywords[1] != "loc" {
		t.Fatalf("keywords = %v", ej.Keywords)
	}
	if ej.Source.Kind != FromTable || ej.Source.Table != "product" {
		t.Fatalf("source = %+v", ej.Source)
	}
	and, ok := q.Where.(And)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	cmp := and.L.(Cmp)
	if cmp.L.Col != "T.pid" || cmp.R.Val.Str() != "fd1" {
		t.Fatalf("cmp = %+v", cmp)
	}
}

func TestParseQ2TwoEJoins(t *testing.T) {
	// The paper's Q2: a traditional join over two enrichment joins.
	q := mustParse(t, `
		select * from customer e-join G <stock, company> as T1,
		              customer e-join G <stock, company> as T2
		where T1.cid = 'cid04' and T2.cid = 'cid02' and T2.credit = 'good'
		  and T1.company = T2.company`)
	if len(q.From) != 2 {
		t.Fatalf("from items = %d", len(q.From))
	}
	if q.From[0].Alias != "T1" || q.From[1].Alias != "T2" {
		t.Fatalf("aliases = %q %q", q.From[0].Alias, q.From[1].Alias)
	}
	if !q.Select[0].Star {
		t.Fatal("expected star select")
	}
}

func TestParseQ3LinkJoin(t *testing.T) {
	// The paper's Q3: customer l-join ⟨G'⟩ customer as customer2.
	q := mustParse(t, `
		select * from customer l-join <Gp> customer as customer2
		where customer.cid = 'cid02' and customer2.credit = 'good'`)
	lj := q.From[0]
	if lj.Kind != FromLJoin || lj.Graph != "Gp" {
		t.Fatalf("ljoin = %+v", lj)
	}
	if lj.Left.Table != "customer" || lj.Right.Table != "customer" || lj.Right.Alias != "customer2" {
		t.Fatalf("sides = %+v %+v", lj.Left, lj.Right)
	}
}

func TestParseSubquery(t *testing.T) {
	q := mustParse(t, `
		select * from (select pid from product where risk = 'medium') e-join G <company> as T`)
	ej := q.From[0]
	if ej.Kind != FromEJoin || ej.Source.Kind != FromSubquery {
		t.Fatalf("from = %+v", ej)
	}
	if ej.Source.Sub.From[0].Table != "product" {
		t.Fatal("inner table wrong")
	}
}

func TestParseAggregates(t *testing.T) {
	q := mustParse(t, `
		select type, count(*) as n, avg(price) as p
		from product group by type order by n desc limit 5`)
	if q.Select[1].Agg != "count" || q.Select[1].Arg != "*" || q.Select[1].As != "n" {
		t.Fatalf("agg = %+v", q.Select[1])
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "type" {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Fatalf("order by = %+v", q.OrderBy)
	}
	if q.Limit != 5 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseNegationAndNulls(t *testing.T) {
	q := mustParse(t, `
		select * from t where not (a = 1 or b <> 2) and c is not null and d is null`)
	if _, ok := q.Where.(And); !ok {
		t.Fatalf("where = %T", q.Where)
	}
	s := q.Where.String()
	if s == "" {
		t.Fatal("expr should render")
	}
}

func TestParseKeywordExemplars(t *testing.T) {
	// Keywords may be quoted value exemplars ("vol. 41", "NASA").
	q := mustParse(t, `select * from dblp e-join KG <'vol. 41', affiliation>`)
	kws := q.From[0].Keywords
	if kws[0] != "vol. 41" || kws[1] != "affiliation" {
		t.Fatalf("keywords = %v", kws)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select",
		"select * from",
		"select * from t where",
		"select * from t where a =",
		"select * from (select * from t",
		"select * from t e-join G company>",
		"select * from t extra garbage",
		"select count(, from t",
		"select * from t limit -1",
		"select * from t where a is 3",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestExprEval(t *testing.T) {
	s := rel.NewSchema("t", "",
		rel.Attribute{Name: "a", Type: rel.KindInt},
		rel.Attribute{Name: "b", Type: rel.KindString},
	)
	tup := rel.Tuple{rel.I(5), rel.S("x")}
	cases := []struct {
		q    string
		want bool
	}{
		{"a = 5", true},
		{"a <> 5", false},
		{"a != 5", false},
		{"a < 6 and b = 'x'", true},
		{"a >= 6 or b = 'x'", true},
		{"not a = 5", false},
		{"a <= 4", false},
		{"b > 'w'", true},
		{"missing = 1", false}, // unresolved column reads null, compares false
		{"b is not null", true},
		{"missing is null", true},
	}
	for _, c := range cases {
		q := mustParse(t, "select * from t where "+c.q)
		if got := q.Where.Eval(s, tup); got != c.want {
			t.Errorf("%q = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestColumnsWalk(t *testing.T) {
	q := mustParse(t, "select * from t where a = 1 and (b.x <> c or not d is null)")
	cols := Columns(q.Where)
	want := map[string]bool{"a": true, "b.x": true, "c": true, "d": true}
	if len(cols) != 4 {
		t.Fatalf("cols = %v", cols)
	}
	for _, c := range cols {
		if !want[c] {
			t.Fatalf("unexpected column %q", c)
		}
	}
}
