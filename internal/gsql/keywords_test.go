package gsql

import "testing"

func TestCollectKeywords(t *testing.T) {
	log := []string{
		`select * from product e-join G <company, loc> as T`,
		`select * from product e-join G <company> as T`,
		`select * from (select pid from product) e-join G <risk> as T`,
		`select * from a e-join H <topic> as T, b e-join G <company> as U`,
		`select * from a l-join <G> b`,
		`this is not sql at all`,
	}
	u := CollectKeywords(log)
	if u.Parsed != 5 || u.Failed != 1 {
		t.Fatalf("parsed=%d failed=%d", u.Parsed, u.Failed)
	}
	if u.ByGraph["G"]["company"] != 3 {
		t.Fatalf("company count = %d", u.ByGraph["G"]["company"])
	}
	if u.ByGraph["H"]["topic"] != 1 {
		t.Fatalf("topic count = %d", u.ByGraph["H"]["topic"])
	}

	ref := u.Reference("G", 1)
	if len(ref) != 3 || ref[0] != "company" {
		t.Fatalf("reference = %v", ref)
	}
	ref2 := u.Reference("G", 2)
	if len(ref2) != 1 || ref2[0] != "company" {
		t.Fatalf("minCount=2 reference = %v", ref2)
	}
	if got := u.Reference("NoGraph", 1); len(got) != 0 {
		t.Fatalf("unknown graph reference = %v", got)
	}
}

func TestCollectKeywordsNestedEJoin(t *testing.T) {
	// Keywords inside sub-query e-joins count too.
	u := CollectKeywords([]string{`
		select * from (select pid from product e-join G <inner_kw> as X)
		e-join G <outer_kw> as T`})
	if u.ByGraph["G"]["inner_kw"] != 1 || u.ByGraph["G"]["outer_kw"] != 1 {
		t.Fatalf("nested keywords = %v", u.ByGraph["G"])
	}
}
