package gsql

import (
	"bytes"
	"testing"

	"semjoin/internal/core"
	"semjoin/internal/graph"
	"semjoin/internal/mat"
	"semjoin/internal/wal"
)

// TestOpenCheckpointStatements drives the OPEN / CHECKPOINT statement
// surface end to end on a fresh fixture over an in-memory filesystem:
// open, duplicate-open rejection, querying through the durable base,
// checkpointing, and the usage errors.
func TestOpenCheckpointStatements(t *testing.T) {
	fin := buildFintech()
	fs := wal.NewMemFS()
	fin.cat.DurableOpts = core.DurableOptions{Policy: wal.SyncAlways, FS: fs}
	eng := &Engine{Cat: fin.cat}

	if _, err := eng.Query("CHECKPOINT"); err == nil {
		t.Fatal("CHECKPOINT with no open stores should error")
	}
	if _, err := eng.Query("OPEN product"); err == nil {
		t.Fatal("OPEN with one arg should error")
	}
	out, err := eng.Query("OPEN product db")
	if err != nil {
		t.Fatalf("OPEN: %v", err)
	}
	if out.Len() != 1 || out.Schema.Col("snapshot_seq") < 0 {
		t.Fatalf("OPEN status relation malformed: %v", out.Schema)
	}
	st := fin.cat.Durable.Get("product")
	if st == nil {
		t.Fatal("OPEN did not register the store")
	}
	if _, err := eng.Query("OPEN product db2"); err == nil {
		t.Fatal("duplicate OPEN should error")
	}
	if _, err := eng.Query("OPEN nosuch db3"); err == nil {
		t.Fatal("OPEN of unknown base should error")
	}

	// Queries keep working through the durable base, under its lock.
	rows, err := eng.Query("select pid from product")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != fin.products.Len() {
		t.Fatalf("query through durable base returned %d rows, want %d", rows.Len(), fin.products.Len())
	}

	// An update through the store is logged; CHECKPOINT compacts it.
	if _, err := st.ApplyGraphUpdate(graph.RandomMixedBatch(st.Graph(), mat.NewRNG(3), 4)); err != nil {
		t.Fatal(err)
	}
	before := st.LastSeq()
	if before == 0 {
		t.Fatal("update was not logged")
	}
	out, err = eng.Query("CHECKPOINT product")
	if err != nil {
		t.Fatalf("CHECKPOINT: %v", err)
	}
	if out.Len() != 1 {
		t.Fatalf("CHECKPOINT status rows = %d", out.Len())
	}
	if got := st.SnapshotSeq(); got != before {
		t.Fatalf("SnapshotSeq = %d, want %d", got, before)
	}
	if _, err := eng.Query("CHECKPOINT nosuch"); err == nil {
		t.Fatal("CHECKPOINT of unknown store should error")
	}
	// Bare CHECKPOINT hits every open store.
	if _, err := eng.Query("checkpoint"); err != nil {
		t.Fatalf("bare CHECKPOINT: %v", err)
	}
}

// TestOpenRecoversAndRebindsCatalog checkpoints a mutated store, then
// opens the same directory from a brand-new pristine catalog: OPEN
// must load the snapshot and rebind the catalog's base, reference
// relation and graphs to the recovered copies.
func TestOpenRecoversAndRebindsCatalog(t *testing.T) {
	fs := wal.NewMemFS()

	fin1 := buildFintech()
	fin1.cat.DurableOpts = core.DurableOptions{Policy: wal.SyncAlways, FS: fs}
	eng1 := &Engine{Cat: fin1.cat}
	if _, err := eng1.Query("OPEN product db"); err != nil {
		t.Fatal(err)
	}
	st1 := fin1.cat.Durable.Get("product")
	if _, err := st1.ApplyGraphUpdate(graph.RandomMixedBatch(st1.Graph(), mat.NewRNG(9), 6)); err != nil {
		t.Fatal(err)
	}
	if _, err := eng1.Query("CHECKPOINT"); err != nil {
		t.Fatal(err)
	}
	wantGraph := graphImageBytes(t, st1.Graph())
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	fin2 := buildFintech()
	fin2.cat.DurableOpts = core.DurableOptions{FS: fs}
	eng2 := &Engine{Cat: fin2.cat}
	if _, err := eng2.Query("OPEN product db"); err != nil {
		t.Fatalf("OPEN over snapshot: %v", err)
	}
	st2 := fin2.cat.Durable.Get("product")
	if st2.Graph() == fin2.g {
		t.Fatal("snapshot recovery should carry its own graph copy")
	}
	if fin2.cat.Mat.G != st2.Graph() || fin2.cat.Graphs["G"] != st2.Graph() || fin2.cat.Graphs["Gp"] != st2.Graph() {
		t.Fatal("catalog graphs not rebound to the recovered graph")
	}
	if fin2.cat.Mat.Base("product") != st2.Base() {
		t.Fatal("materialized base not rebound")
	}
	if fin2.cat.Relations["product"] != st2.Base().Spec.D {
		t.Fatal("reference relation not rebound")
	}
	if got := graphImageBytes(t, st2.Graph()); string(got) != string(wantGraph) {
		t.Fatal("recovered graph differs from the checkpointed one")
	}
	// And the rebound catalog still answers queries.
	rows, err := eng2.Query("select pid, company from product e-join G <company, country> as T")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() == 0 {
		t.Fatal("e-join over recovered base returned no rows")
	}
}

func graphImageBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
