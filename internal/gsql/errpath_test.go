package gsql

import (
	"strings"
	"testing"

	"semjoin/internal/obs"
)

// TestErrorPathsLeaveEngineUsable drives the engine through the error
// surface — malformed join clauses, invalid SET values, EXPLAIN ANALYZE
// over failing queries — and asserts two things for every input: the
// engine returns an error (it must not panic), and the session is not
// poisoned: the same engine answers a normal query immediately after.
func TestErrorPathsLeaveEngineUsable(t *testing.T) {
	f := getFintech(t)
	e := NewEngine(f.cat)
	e.Obs = obs.NewRegistry()

	assertUsable := func(after string) {
		t.Helper()
		res, err := e.Query("select pid from product where price >= 100 order by pid limit 3")
		if err != nil {
			t.Fatalf("engine unusable after %q: %v", after, err)
		}
		if res == nil || res.Len() == 0 {
			t.Fatalf("engine returned no rows after %q", after)
		}
	}

	cases := []struct {
		name  string
		query string
	}{
		// Malformed e-join clauses: missing graph, missing keyword list,
		// unknown graph, unknown source relation, truncated alias.
		{"ejoin-no-graph", "select pid, company from product e-join <company> as T"},
		{"ejoin-no-keywords", "select pid from product e-join G as T"},
		{"ejoin-unknown-graph", "select pid, company from product e-join NOPE <company> as T"},
		{"ejoin-unknown-relation", "select pid, company from nope e-join G <company> as T"},
		{"ejoin-truncated", "select pid from product e-join"},
		{"ejoin-empty-keywords", "select pid from product e-join G <> as T"},
		// Malformed l-join clauses: missing right side, unknown graph,
		// bare l-join with no left relation.
		{"ljoin-no-right", "select product.pid from product l-join <G>"},
		{"ljoin-unknown-graph", "select product.pid, c.cid from product l-join <NOPE> customer as c"},
		{"ljoin-bare", "l-join <G> <G> <G>"},
		{"ljoin-missing-brackets", "select product.pid, c.cid from product l-join G customer as c"},
		// SET PARALLELISM rejects non-positive widths (DEFAULT is the way
		// to restore the runtime-chosen width).
		{"parallelism-zero", "set parallelism 0"},
		{"parallelism-negative", "set parallelism -4"},
		{"parallelism-garbage", "set parallelism lots"},
		// EXPLAIN ANALYZE executes the query, so a failing body must
		// surface its error through the analyze path without panicking.
		{"explain-analyze-unknown-relation", "explain analyze select pid from nope"},
		{"explain-analyze-unknown-column", "explain analyze select nope from product"},
		{"explain-analyze-bad-ejoin", "explain analyze select pid from product e-join NOPE <company> as T"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := e.Query(tc.query); err == nil {
				t.Fatalf("query %q succeeded, want error", tc.query)
			}
			assertUsable(tc.query)
		})
	}

	// A rejected SET must not have changed the session width: EXPLAIN
	// ANALYZE still runs with the default parallel plan.
	res, err := e.Query("explain analyze select pid, company from product e-join G <company> as T")
	if err != nil {
		t.Fatalf("well-formed e-join after error storm: %v", err)
	}
	found := false
	for _, tp := range res.Tuples {
		for _, v := range tp {
			if strings.Contains(v.String(), "e-join") {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("explain analyze output lost the join operator:\n%v", res)
	}
}
