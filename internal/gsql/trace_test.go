package gsql

import (
	"strings"
	"testing"

	"semjoin/internal/obs"
)

// newTracedEngine isolates the engine's trace store and tracer so
// SHOW TRACES sees only this test's traffic.
func newTracedEngine(t *testing.T) *Engine {
	f := getFintech(t)
	e := NewEngine(f.cat)
	e.Obs = obs.NewRegistry()
	e.Queries = obs.NewQueryLog()
	e.Tracer = obs.NewTracer(1.0, 0)
	e.Traces = obs.NewTraceStore(16)
	return e
}

func TestTraceStatement(t *testing.T) {
	e := newTracedEngine(t)
	out, err := e.Query("trace select pid, price from product where price >= 60 order by pid")
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() < 4 {
		t.Fatalf("trace output rows = %d, want the id row plus a span tree\n%v", out.Len(), out)
	}
	first := out.Get(out.Tuples[0], "note").Str()
	if !strings.HasPrefix(first, "trace_id: ") {
		t.Fatalf("first row = %q, want the trace id", first)
	}
	id := strings.TrimPrefix(first, "trace_id: ")

	var tree strings.Builder
	for _, tp := range out.Tuples[1:] {
		tree.WriteString(out.Get(tp, "note").Str())
		tree.WriteString("\n")
	}
	for _, want := range []string{"query", "parse", "plan", "execute", "op:scan product"} {
		if !strings.Contains(tree.String(), want) {
			t.Errorf("span tree missing %q:\n%s", want, tree.String())
		}
	}

	// The forced trace must be retained even though TRACE bypasses the
	// sampling coin entirely.
	tr := e.Traces.Get(id)
	if tr == nil {
		t.Fatalf("trace %s not in store", id)
	}
	if !tr.Forced() || tr.Status() != "ok" {
		t.Fatalf("forced=%v status=%q", tr.Forced(), tr.Status())
	}
	if e.LastTraceID != id {
		t.Fatalf("LastTraceID = %q, want %q", e.LastTraceID, id)
	}
}

func TestTraceStatementError(t *testing.T) {
	e := newTracedEngine(t)
	if _, err := e.Query("trace select x from no_such_table"); err == nil {
		t.Fatal("TRACE over a failing query must propagate the error")
	}
	if _, err := e.Query("trace"); err == nil || !strings.Contains(err.Error(), "usage") {
		t.Fatalf("bare TRACE: err = %v, want usage error", err)
	}
	// The failed query's trace is still retained with status error.
	found := false
	for _, tr := range e.Traces.List() {
		if tr.Status() == "error" {
			found = true
		}
	}
	if !found {
		t.Fatal("failing TRACE left no error trace in the store")
	}
}

func TestShowTraces(t *testing.T) {
	e := newTracedEngine(t)
	queries := []string{
		"select pid from product where price >= 60",
		"select cid, bal from customer order by bal desc limit 2",
	}
	for _, q := range queries {
		if _, err := e.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	out, err := e.Query("show traces")
	if err != nil {
		t.Fatal(err)
	}
	// The SHOW TRACES statement itself is not yet finished while it
	// runs, so only the two completed queries appear.
	if out.Len() != 2 {
		t.Fatalf("show traces rows = %d, want 2\n%v", out.Len(), out)
	}
	// Newest first: row 0 is the second query.
	ops := []string{
		out.Get(out.Tuples[0], "op").Str(),
		out.Get(out.Tuples[1], "op").Str(),
	}
	if ops[0] != queries[1] || ops[1] != queries[0] {
		t.Fatalf("ops = %v, want newest-first %v", ops, queries)
	}
	for _, tp := range out.Tuples {
		if out.Get(tp, "status").Str() != "ok" {
			t.Errorf("status = %q", out.Get(tp, "status").Str())
		}
		if out.Get(tp, "spans").Int() <= 0 {
			t.Errorf("spans = %d", out.Get(tp, "spans").Int())
		}
		if out.Get(tp, "trace_id").Str() == "" {
			t.Error("empty trace_id")
		}
	}

	if _, err := e.Query("show traces extra"); err == nil {
		t.Fatal("SHOW TRACES with arguments must error")
	}
}

func TestEngineSamplingRateZeroKeepsNothing(t *testing.T) {
	e := newTracedEngine(t)
	e.Tracer = obs.NewTracer(0, 0)
	if _, err := e.Query("select pid from product"); err != nil {
		t.Fatal(err)
	}
	if n := e.Traces.Len(); n != 0 {
		t.Fatalf("rate-0 tracer kept %d traces", n)
	}
	// TRACE still forces retention at rate 0.
	if _, err := e.Query("trace select pid from product"); err != nil {
		t.Fatal(err)
	}
	if n := e.Traces.Len(); n != 1 {
		t.Fatalf("forced trace not kept at rate 0: len = %d", n)
	}
}
