package gsql

import (
	"fmt"
	"sync"
	"testing"

	"semjoin/internal/core"
	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/rel"
)

// fintech is a Figure-1-style fixture: customers invest in products,
// companies issue products and are registered in countries.
type fintech struct {
	g         *graph.Graph
	customers *rel.Relation
	products  *rel.Relation
	truth     map[string]graph.VertexID
	companyOf map[string]string // pid -> company
	countryOf map[string]string // pid -> country
	investOf  map[string][]string
	models    core.Models
	cat       *Catalog
}

var (
	fintechOnce sync.Once
	theFintech  *fintech
)

func getFintech(t *testing.T) *fintech {
	t.Helper()
	fintechOnce.Do(func() { theFintech = buildFintech() })
	return theFintech
}

func buildFintech() *fintech {
	g := graph.New()
	companies := []string{"Acme Corp", "Globex Corp", "Initech Corp", "Umbrella Corp"}
	countries := []string{"UK", "US", "Germany", "France"}
	categories := []string{"Funds", "Stocks"}
	risks := []string{"low", "medium", "high"}

	countryV := make([]graph.VertexID, len(countries))
	for i, c := range countries {
		countryV[i] = g.AddVertex(c, "country")
	}
	companyV := make([]graph.VertexID, len(companies))
	for i, c := range companies {
		companyV[i] = g.AddVertex(c, "company")
		g.AddEdge(companyV[i], "registered_in", countryV[i%len(countries)])
	}
	categoryV := make([]graph.VertexID, len(categories))
	for i, c := range categories {
		categoryV[i] = g.AddVertex(c, "category")
	}

	products := rel.NewRelation(rel.NewSchema("product", "pid",
		rel.Attribute{Name: "pid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "issuer", Type: rel.KindString},
		rel.Attribute{Name: "type", Type: rel.KindString},
		rel.Attribute{Name: "price", Type: rel.KindInt},
		rel.Attribute{Name: "risk", Type: rel.KindString},
	))
	customers := rel.NewRelation(rel.NewSchema("customer", "cid",
		rel.Attribute{Name: "cid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "credit", Type: rel.KindString},
		rel.Attribute{Name: "bal", Type: rel.KindInt},
	))
	truth := map[string]graph.VertexID{}
	companyOf := map[string]string{}
	countryOf := map[string]string{}
	investOf := map[string][]string{}

	const nProducts = 20
	prodV := make([]graph.VertexID, nProducts)
	for i := 0; i < nProducts; i++ {
		pid := fmt.Sprintf("fd%d", i)
		name := fmt.Sprintf("prod %02d", i)
		ci := i % len(companies)
		v := g.AddVertex(name, "product")
		prodV[i] = v
		g.AddEdge(companyV[ci], "issues", v)
		g.AddEdge(v, "category", categoryV[i%len(categories)])
		products.InsertVals(
			rel.S(pid), rel.S(name), rel.S(companies[ci]),
			rel.S(categories[i%len(categories)]), rel.I(int64(80+10*(i%5))),
			rel.S(risks[i%len(risks)]))
		truth[pid] = v
		companyOf[pid] = companies[ci]
		countryOf[pid] = countries[ci%len(countries)]
	}
	const nCustomers = 16
	credits := []string{"good", "fair"}
	for i := 0; i < nCustomers; i++ {
		cid := fmt.Sprintf("cid%02d", i)
		name := fmt.Sprintf("person %02d", i)
		v := g.AddVertex(name, "person")
		truth[cid] = v
		// Each customer invests in two products.
		p1, p2 := i%nProducts, (i*3+1)%nProducts
		g.AddEdge(v, "invest", prodV[p1])
		g.AddEdge(v, "invest", prodV[p2])
		investOf[cid] = []string{fmt.Sprintf("fd%d", p1), fmt.Sprintf("fd%d", p2)}
		customers.InsertVals(rel.S(cid), rel.S(name), rel.S(credits[i%2]), rel.I(int64(50000+i*10000)))
	}

	models := core.TrainModels(g, 8, 11)
	oracle := her.NewOracleMatcher(truth)

	mat, err := core.BuildMaterialized(g, models, map[string]core.BaseSpec{
		"product":  {D: products, AR: []string{"company", "country"}, Matcher: oracle},
		"customer": {D: customers, AR: []string{"company", "product"}, Matcher: oracle},
	}, core.Config{K: 3, H: 14, Seed: 5})
	if err != nil {
		panic(err)
	}
	profiles := core.ProfileGraph(g, models, map[string][]string{
		"product": {"company", "country"},
	}, 2, core.Config{K: 3, H: 14, Seed: 5})

	cat := &Catalog{
		Relations: map[string]*rel.Relation{"product": products, "customer": customers},
		Graphs:    map[string]*graph.Graph{"G": g, "Gp": g},
		Models:    models,
		Matcher:   oracle,
		Mat:       mat,
		Heur:      core.NewHeuristicJoiner(profiles),
		K:         3,
		RExt:      core.Config{H: 14, Seed: 5},
	}
	return &fintech{
		g: g, customers: customers, products: products, truth: truth,
		companyOf: companyOf, countryOf: countryOf, investOf: investOf,
		models: models, cat: cat,
	}
}
