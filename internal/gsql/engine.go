package gsql

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"semjoin/internal/core"
	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// Mode selects the semantic-join execution strategy.
type Mode int

// Execution modes.
const (
	// ModeAuto uses the static/dynamic implementation for well-behaved
	// joins, the heuristic joiner for non-well-behaved ones (when
	// profiled), and falls back to the conceptual baseline.
	ModeAuto Mode = iota
	// ModeBaseline always runs HER and RExt online (§IV-A baseline).
	ModeBaseline
	// ModeHeuristic forces heuristic joins everywhere (used by the
	// Table III accuracy experiment).
	ModeHeuristic
)

// Catalog binds names to data and to the machinery the executor needs.
type Catalog struct {
	Relations map[string]*rel.Relation
	Graphs    map[string]*graph.Graph

	// Models and Matcher power the conceptual-level baseline.
	Models  core.Models
	Matcher her.Matcher
	// Mat holds the offline pre-computation for static joins (optional).
	Mat *core.Materialized
	// Heur answers non-well-behaved joins without HER/RExt (optional).
	Heur *core.HeuristicJoiner
	// K is the path/hop bound for semantic joins (default 3).
	K int
	// RExt is the template configuration for online extractions.
	RExt core.Config

	// Durable registers the write-ahead-logged stores opened with the
	// OPEN statement (or -data-dir at startup). Query execution takes
	// every store's read lock, so streamed updates never race a scan.
	Durable *core.DurableSet
	// DurableOpts configures stores opened through this catalog
	// (fsync policy, segment size, auto-checkpoint cadence).
	DurableOpts core.DurableOptions
}

// Relation resolves a base relation name, preferring the live durable
// state when the base is backed by an open WAL store: a relation
// replacement streamed through the store is visible to the next query
// without rebinding the catalog map. Safe during execution because
// the engine holds every store's read lock for the whole query.
func (c *Catalog) Relation(name string) *rel.Relation {
	if st := c.Durable.Get(name); st != nil {
		return st.Base().Spec.D
	}
	return c.Relations[name]
}

// Engine plans gSQL queries into pipelined operator trees and drains
// them against a catalog.
type Engine struct {
	Cat  *Catalog
	Mode Mode

	// Parallelism is the degree of parallelism for morsel-driven
	// operators (exchange over WHERE/projection) and the per-vertex BFS
	// fan-out of link joins: 0 (the default) means one worker per
	// logical CPU, 1 forces serial execution. Settable per session with
	// the statement SET PARALLELISM n.
	Parallelism int

	// RowAtATime disables vectorized execution: WHERE/projection stages
	// run the classic tuple-at-a-time operators instead of columnar
	// batch kernels. The zero value selects the vectorized engine.
	// Settable per session with SET VECTORIZED ON|OFF; the row engine
	// is kept as the differential-testing reference.
	RowAtATime bool

	// Plan records, for the last query, one line per semantic join
	// describing the strategy chosen (static / dynamic / heuristic /
	// baseline) — the observable outcome of the well-behaved analysis.
	Plan []string
	// LastStats holds the per-operator counters (rows out, wall time)
	// of the last executed query's operator tree.
	LastStats *rel.ExecStats

	// Obs receives the engine's metrics (query counters and latency,
	// operator row counts, gL cache traffic, ...). Nil means the
	// process-wide obs.Default registry — the one -debug-addr serves.
	Obs *obs.Registry
	// Queries is the recent/slow query log; nil means obs.DefaultQueries.
	// The slow threshold is settable per session with SET SLOW_QUERY_MS n.
	Queries *obs.QueryLog
	// LastTrace is the root span of the last executed query: parse,
	// plan and execute children with wall times. EXPLAIN ANALYZE renders
	// it merged with LastStats.
	LastTrace *obs.Span

	// Tracer decides trace ids and sampling; nil means obs.DefaultTracer
	// (keep everything). When the caller (the network server) already
	// installed a trace in the context, the engine attaches its spans to
	// that trace instead of starting one.
	Tracer *obs.Tracer
	// Traces receives kept traces; nil means obs.DefaultTraces. SHOW
	// TRACES lists this store.
	Traces *obs.TraceStore
	// Log receives structured query-outcome records (errors, slow
	// queries); nil disables engine logging (the wrapper no-ops).
	Log *obs.Logger
	// LastTraceID is the id of the last executed query's trace — the
	// handle /traces/<id> serves when the trace was kept.
	LastTraceID string
}

// NewEngine returns an engine in ModeAuto.
func NewEngine(cat *Catalog) *Engine {
	if cat.K == 0 {
		cat.K = 3
	}
	return &Engine{Cat: cat}
}

// Par resolves the engine's degree of parallelism: Parallelism when
// positive, GOMAXPROCS otherwise.
func (e *Engine) Par() int {
	if e.Parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return e.Parallelism
}

// reg resolves the engine's metrics registry (obs.Default unless set).
func (e *Engine) reg() *obs.Registry {
	if e.Obs != nil {
		return e.Obs
	}
	return obs.Default
}

// qlog resolves the engine's query log (obs.DefaultQueries unless set).
func (e *Engine) qlog() *obs.QueryLog {
	if e.Queries != nil {
		return e.Queries
	}
	return obs.DefaultQueries
}

// tracer resolves the engine's tracer (obs.DefaultTracer unless set).
func (e *Engine) tracer() *obs.Tracer {
	if e.Tracer != nil {
		return e.Tracer
	}
	return obs.DefaultTracer
}

// traces resolves the engine's trace store (obs.DefaultTraces unless set).
func (e *Engine) traces() *obs.TraceStore {
	if e.Traces != nil {
		return e.Traces
	}
	return obs.DefaultTraces
}

// Query parses and executes input, returning the result relation. An
// input prefixed with EXPLAIN executes the query and returns the plan
// notes (the well-behaved verdict, one row per semantic join, then the
// annotated operator tree) instead of the data.
func (e *Engine) Query(input string) (*rel.Relation, error) {
	return e.QueryContext(context.Background(), input)
}

// QueryContext is Query with cancellation: ctx is checked periodically
// while the operator tree drains.
func (e *Engine) QueryContext(ctx context.Context, input string) (*rel.Relation, error) {
	trimmed := strings.TrimSpace(input)
	if f := strings.Fields(trimmed); len(f) >= 1 {
		two := len(f) >= 2
		switch {
		case two && strings.EqualFold(f[0], "set") && strings.EqualFold(f[1], "parallelism"):
			return e.setParallelism(f[2:])
		case two && strings.EqualFold(f[0], "set") && strings.EqualFold(f[1], "slow_query_ms"):
			return e.setSlowQueryMS(f[2:])
		case two && strings.EqualFold(f[0], "set") && strings.EqualFold(f[1], "vectorized"):
			return e.setVectorized(f[2:])
		case two && strings.EqualFold(f[0], "show") && strings.EqualFold(f[1], "metrics"):
			return e.showMetrics(f[2:])
		case two && strings.EqualFold(f[0], "show") && strings.EqualFold(f[1], "session"):
			return e.showSession(f[2:])
		case two && strings.EqualFold(f[0], "show") && strings.EqualFold(f[1], "traces"):
			return e.showTraces(f[2:])
		case strings.EqualFold(f[0], "open"):
			return e.openDurable(ctx, f[1:])
		case strings.EqualFold(f[0], "checkpoint"):
			return e.checkpointDurable(ctx, f[1:])
		case strings.EqualFold(f[0], "trace"):
			// Matches a bare TRACE too, so the usage error comes from
			// traceQuery rather than a confusing parser diagnostic.
			return e.traceQuery(ctx, strings.TrimSpace(trimmed[len(f[0]):]))
		}
	}
	explain, analyze := false, false
	if len(trimmed) >= 7 && strings.EqualFold(trimmed[:7], "explain") {
		explain = true
		input = trimmed[7:]
		if rest := strings.TrimSpace(input); len(rest) >= 7 && strings.EqualFold(rest[:7], "analyze") {
			analyze = true
			input = rest[7:]
		}
	}
	out, q, err := e.run(ctx, input)
	if err != nil {
		return nil, err
	}
	if analyze {
		return e.analyzeRelation(q), nil
	}
	if explain {
		return e.explainRelation(q), nil
	}
	return out, nil
}

// run parses, plans and executes one query under a root trace span,
// recording latency metrics and a query-log entry for every outcome
// (parse and plan errors included). The span tree is kept on LastTrace.
//
// Tracing ownership: when the caller already put a trace in ctx (the
// network server does, so the wire-read and admission spans precede
// the engine's), run attaches the "query" span to it and leaves
// Finish/Keep to the owner. Otherwise run owns the trace end to end:
// it creates one, finishes it with the outcome status, and retains it
// in the trace store when the tracer's sampling says so.
func (e *Engine) run(ctx context.Context, input string) (*rel.Relation, *Query, error) {
	// Durable stores: hold every store's read lock while the query
	// plans and drains, so update streams cannot mutate extractor
	// state mid-scan. Nil-safe and free when nothing is open.
	if e.Cat != nil {
		release := e.Cat.Durable.RLockAll()
		defer release()
	}
	reg := e.reg()
	ctx = obs.WithRegistry(ctx, reg)
	tr := obs.TraceFromContext(ctx)
	owned := tr == nil
	if owned {
		tr = e.tracer().Start(strings.TrimSpace(input), 0)
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	root := tr.StartSpan("query")
	if root == nil {
		root = obs.StartSpan("query")
	}
	e.LastTrace = root
	e.LastTraceID = tr.ID()
	out, q, err := e.runSpanned(ctx, root, input)
	root.End()

	reg.Counter("gsql_queries_total").Inc()
	status := "ok"
	if err != nil {
		reg.Counter("gsql_query_errors_total").Inc()
		status = "error"
	}
	reg.Histogram("gsql_query_seconds", nil).Observe(root.Duration.Seconds())
	rec := obs.QueryRecord{
		Query: strings.TrimSpace(input), Start: root.Start,
		Duration: root.Duration, Status: status, TraceID: tr.ID(),
	}
	if out != nil {
		rec.Rows = out.Len()
	}
	if err != nil {
		rec.Err = err.Error()
	}
	slow := e.qlog().Record(rec)
	if slow {
		reg.Counter("gsql_slow_queries_total").Inc()
	}
	tr.SetOperators(statsOps(e.LastStats))
	if owned {
		tr.Finish(status)
		if e.tracer().Keep(tr) {
			e.traces().Add(tr)
		}
	}
	if err != nil {
		e.Log.Warn("query failed", "err", err.Error(), "trace_id", tr.ID(), "query", rec.Query)
	} else if slow {
		e.Log.Info("slow query",
			"duration_ms", float64(root.Duration)/float64(time.Millisecond),
			"trace_id", tr.ID(), "rows", rec.Rows, "query", rec.Query)
	}
	return out, q, err
}

// statsOps flattens the executed plan's per-operator stats into the
// obs representation traces carry.
func statsOps(stats *rel.ExecStats) []obs.OpNode {
	if stats == nil || len(stats.Lines) == 0 {
		return nil
	}
	ops := make([]obs.OpNode, len(stats.Lines))
	for i, l := range stats.Lines {
		ops[i] = obs.OpNode{
			Depth: l.Depth, Name: l.Label, Note: l.Note,
			Rows: l.Rows, Batches: l.Batches, Workers: l.Workers,
			Elapsed: l.Elapsed,
		}
	}
	return ops
}

// runSpanned is run's traced body: parse, plan and execute children
// hang off root, and LastStats is collected even when execution fails.
func (e *Engine) runSpanned(ctx context.Context, root *obs.Span, input string) (*rel.Relation, *Query, error) {
	sp := root.StartChild("parse")
	q, err := Parse(input)
	sp.End()
	if err != nil {
		return nil, nil, err
	}
	e.Plan = e.Plan[:0]
	sp = root.StartChild("plan")
	top, _, err := e.planQuery(q)
	sp.End()
	if err != nil {
		return nil, q, err
	}
	sp = root.StartChild("execute")
	out, err := rel.Materialize(ctx, top)
	sp.End()
	e.LastStats = rel.CollectStats(top)
	if err != nil {
		return nil, q, err
	}
	return out, q, nil
}

// setParallelism handles the session statement SET PARALLELISM n
// (n >= 1; SET PARALLELISM DEFAULT restores the GOMAXPROCS default).
// A zero or negative degree is rejected: there is no zero-worker
// execution, and silently treating 0 as "default" used to mask typos.
// It returns a one-row status relation carrying the effective degree of
// parallelism.
func (e *Engine) setParallelism(args []string) (*rel.Relation, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("gsql: usage: SET PARALLELISM n|DEFAULT (n >= 1)")
	}
	n := 0
	if !strings.EqualFold(args[0], "default") {
		var err error
		n, err = strconv.Atoi(args[0])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("gsql: SET PARALLELISM: want a positive integer or DEFAULT, got %q", args[0])
		}
	}
	e.Parallelism = n
	out := rel.NewRelation(rel.NewSchema("status", "",
		rel.Attribute{Name: "parallelism", Type: rel.KindInt},
	))
	out.InsertVals(rel.I(int64(e.Par())))
	return out, nil
}

// setSlowQueryMS handles SET SLOW_QUERY_MS n: queries slower than n
// milliseconds land in the slow-query ring (/queries and /metrics
// surface them); n = 0 disables the classification.
func (e *Engine) setSlowQueryMS(args []string) (*rel.Relation, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("gsql: usage: SET SLOW_QUERY_MS n (0 = disabled)")
	}
	n, err := strconv.Atoi(args[0])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("gsql: SET SLOW_QUERY_MS: want a non-negative integer, got %q", args[0])
	}
	e.qlog().SetSlowThreshold(time.Duration(n) * time.Millisecond)
	out := rel.NewRelation(rel.NewSchema("status", "",
		rel.Attribute{Name: "slow_query_ms", Type: rel.KindInt},
	))
	out.InsertVals(rel.I(int64(n)))
	return out, nil
}

// showMetrics handles SHOW METRICS: the engine registry's snapshot as
// a sorted (metric, value) relation, histograms exploded into _count,
// _sum and quantile series.
func (e *Engine) showMetrics(extra []string) (*rel.Relation, error) {
	if len(extra) != 0 {
		return nil, fmt.Errorf("gsql: usage: SHOW METRICS")
	}
	snap := e.reg().Snapshot()
	keys := make([]string, 0, len(snap))
	for k := range snap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := rel.NewRelation(rel.NewSchema("metrics", "metric",
		rel.Attribute{Name: "metric", Type: rel.KindString},
		rel.Attribute{Name: "value", Type: rel.KindString},
	))
	for _, k := range keys {
		out.InsertVals(rel.S(k), rel.S(strconv.FormatFloat(snap[k], 'g', -1, 64)))
	}
	return out, nil
}

// showSession handles SHOW SESSION: the per-session settings as a
// sorted (setting, value) relation — the effective degree of
// parallelism, the execution engine (vectorized or row), and the
// slow-query threshold of this session's query log. Sessions sharing
// one catalog diverge only in these knobs, so the session-isolation
// property tests observe leakage (or its absence) through this
// statement alone.
func (e *Engine) showSession(extra []string) (*rel.Relation, error) {
	if len(extra) != 0 {
		return nil, fmt.Errorf("gsql: usage: SHOW SESSION")
	}
	vec := "on"
	if e.RowAtATime {
		vec = "off"
	}
	out := rel.NewRelation(rel.NewSchema("session", "setting",
		rel.Attribute{Name: "setting", Type: rel.KindString},
		rel.Attribute{Name: "value", Type: rel.KindString},
	))
	out.InsertVals(rel.S("parallelism"), rel.S(strconv.Itoa(e.Par())))
	out.InsertVals(rel.S("slow_query_ms"), rel.S(strconv.FormatInt(e.qlog().SlowThreshold().Milliseconds(), 10)))
	out.InsertVals(rel.S("vectorized"), rel.S(vec))
	return out, nil
}

// showTraces handles SHOW TRACES: the retained traces newest-first as
// a (trace_id, status, duration_ms, spans, op) relation — the gSQL
// view of the same ring buffer /traces serves.
func (e *Engine) showTraces(extra []string) (*rel.Relation, error) {
	if len(extra) != 0 {
		return nil, fmt.Errorf("gsql: usage: SHOW TRACES")
	}
	out := rel.NewRelation(rel.NewSchema("traces", "trace_id",
		rel.Attribute{Name: "trace_id", Type: rel.KindString},
		rel.Attribute{Name: "status", Type: rel.KindString},
		rel.Attribute{Name: "duration_ms", Type: rel.KindFloat},
		rel.Attribute{Name: "spans", Type: rel.KindInt},
		rel.Attribute{Name: "op", Type: rel.KindString},
	))
	for _, t := range e.traces().List() {
		out.InsertVals(
			rel.S(t.ID()),
			rel.S(t.Status()),
			rel.F(float64(t.Duration())/float64(time.Millisecond)),
			rel.I(int64(t.SpanCount())),
			rel.S(t.Op()),
		)
	}
	return out, nil
}

// traceQuery handles TRACE <query>: it executes the query with
// tracing forced on (bypassing sampling), retains the trace, and
// returns the rendered span tree — phases and per-operator spans
// grafted in — as a (step, note) relation whose first row carries the
// trace id for /traces/<id> lookup. Under the network server the
// query's trace already exists (the server started it at the wire);
// TRACE then forces that trace to be kept and renders the engine's
// view of it.
func (e *Engine) traceQuery(ctx context.Context, rest string) (*rel.Relation, error) {
	if rest == "" {
		return nil, fmt.Errorf("gsql: usage: TRACE <query>")
	}
	tr := obs.TraceFromContext(ctx)
	owned := tr == nil
	if owned {
		tr = e.tracer().Start(rest, 0)
		ctx = obs.ContextWithTrace(ctx, tr)
	}
	tr.SetForced()
	_, _, err := e.run(ctx, rest)
	if owned {
		status := "ok"
		if err != nil {
			status = "error"
		}
		tr.Finish(status)
		e.traces().Add(tr)
	}
	if err != nil {
		return nil, err
	}
	out := rel.NewRelation(rel.NewSchema("trace", "",
		rel.Attribute{Name: "step", Type: rel.KindInt},
		rel.Attribute{Name: "note", Type: rel.KindString},
	))
	out.InsertVals(rel.I(0), rel.S("trace_id: "+tr.ID()))
	tree := strings.TrimRight(tr.RenderTree(e.LastTrace).String(), "\n")
	step := int64(1)
	for _, line := range strings.Split(tree, "\n") {
		out.InsertVals(rel.I(step), rel.S(line))
		step++
	}
	return out, nil
}

// Explain executes input (with or without a leading EXPLAIN keyword)
// and renders the well-behaved verdict, the strategy notes and the
// operator tree annotated with per-operator rows-out and wall time.
func (e *Engine) Explain(input string) (string, error) {
	return e.ExplainContext(context.Background(), input)
}

// ExplainContext is Explain with cancellation.
func (e *Engine) ExplainContext(ctx context.Context, input string) (string, error) {
	trimmed := strings.TrimSpace(input)
	if len(trimmed) >= 7 && strings.EqualFold(trimmed[:7], "explain") {
		trimmed = trimmed[7:]
	}
	_, q, err := e.run(ctx, trimmed)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	e.writeVerdict(&b, q)
	b.WriteString(e.LastStats.String())
	return b.String(), nil
}

// ExplainAnalyze executes input (stripping a leading EXPLAIN ANALYZE if
// present) and renders the verdict and strategy notes followed by the
// query's trace: the parse/plan/execute spans with wall times, the
// executed operator tree nested under the execute span.
func (e *Engine) ExplainAnalyze(input string) (string, error) {
	return e.ExplainAnalyzeContext(context.Background(), input)
}

// ExplainAnalyzeContext is ExplainAnalyze with cancellation.
func (e *Engine) ExplainAnalyzeContext(ctx context.Context, input string) (string, error) {
	trimmed := strings.TrimSpace(input)
	if len(trimmed) >= 7 && strings.EqualFold(trimmed[:7], "explain") {
		trimmed = strings.TrimSpace(trimmed[7:])
	}
	if len(trimmed) >= 7 && strings.EqualFold(trimmed[:7], "analyze") {
		trimmed = trimmed[7:]
	}
	_, q, err := e.run(ctx, trimmed)
	if err != nil {
		return "", err
	}
	return e.renderAnalyze(q), nil
}

// writeVerdict writes the well-behaved verdict and strategy notes.
func (e *Engine) writeVerdict(b *strings.Builder, q *Query) {
	verdict := "false"
	if e.WellBehaved(q) {
		verdict = "true"
	}
	fmt.Fprintf(b, "well-behaved: %s\n", verdict)
	for _, p := range e.Plan {
		fmt.Fprintf(b, "strategy: %s\n", p)
	}
}

// renderAnalyze merges the last trace with the last operator stats:
// the span tree renders one line per span, and the operator PlanLines
// nest under the execute span one level deeper.
func (e *Engine) renderAnalyze(q *Query) string {
	var b strings.Builder
	e.writeVerdict(&b, q)
	if e.LastTrace == nil {
		return b.String()
	}
	e.LastTrace.Walk(func(s *obs.Span, depth int) {
		indent := strings.Repeat("  ", depth)
		note := ""
		if s.Note != "" {
			note = " [" + s.Note + "]"
		}
		fmt.Fprintf(&b, "%s%s%s  time=%s\n", indent, s.Name, note, s.Duration.Round(time.Microsecond))
		if s.Name == "execute" && e.LastStats != nil {
			for _, l := range e.LastStats.Lines {
				nl := l
				nl.Depth += depth + 1
				b.WriteString(nl.String())
				b.WriteByte('\n')
			}
		}
	})
	return b.String()
}

// analyzeRelation renders the EXPLAIN ANALYZE output as a (step, note)
// relation, one line per row.
func (e *Engine) analyzeRelation(q *Query) *rel.Relation {
	plan := rel.NewRelation(rel.NewSchema("plan", "",
		rel.Attribute{Name: "step", Type: rel.KindInt},
		rel.Attribute{Name: "note", Type: rel.KindString},
	))
	text := strings.TrimRight(e.renderAnalyze(q), "\n")
	for i, line := range strings.Split(text, "\n") {
		plan.InsertVals(rel.I(int64(i)), rel.S(line))
	}
	return plan
}

// explainRelation renders the EXPLAIN result as a (step, note)
// relation: the verdict, the strategy notes, then the operator tree.
func (e *Engine) explainRelation(q *Query) *rel.Relation {
	plan := rel.NewRelation(rel.NewSchema("plan", "",
		rel.Attribute{Name: "step", Type: rel.KindInt},
		rel.Attribute{Name: "note", Type: rel.KindString},
	))
	verdict := "well-behaved: false"
	if e.WellBehaved(q) {
		verdict = "well-behaved: true"
	}
	plan.InsertVals(rel.I(0), rel.S(verdict))
	step := int64(1)
	for _, p := range e.Plan {
		plan.InsertVals(rel.I(step), rel.S(p))
		step++
	}
	if e.LastStats != nil {
		for _, l := range e.LastStats.Lines {
			plan.InsertVals(rel.I(step), rel.S(l.String()))
			step++
		}
	}
	return plan
}

// provenance tracks, bottom-up, whether a (sub-)result still refers to the
// tuples of exactly one base relation — the well-behaved condition (2) of
// §IV-A. keyed reports that the base's tuple id survives in the schema.
type provenance struct {
	base  string
	keyed bool
}

// WellBehaved reports whether every semantic join in q is well-behaved
// w.r.t. the catalog's materialisation (A ⊆ AR and single-base
// provenance), via the linear-time bottom-up scan the paper describes.
func (e *Engine) WellBehaved(q *Query) bool {
	ok := true
	var walkQuery func(*Query) provenance
	var walkFrom func(*FromItem) provenance
	walkFrom = func(f *FromItem) provenance {
		switch f.Kind {
		case FromTable:
			r := e.Cat.Relation(f.Table)
			if r == nil {
				ok = false
				return provenance{}
			}
			return provenance{base: f.Table, keyed: r.Schema.Key != ""}
		case FromSubquery:
			return walkQuery(f.Sub)
		case FromEJoin:
			p := walkFrom(f.Source)
			if p.base == "" || e.Cat.Mat == nil ||
				!e.Cat.Mat.WellBehavedKeywords(p.base, f.Keywords) {
				ok = false
			}
			return p
		case FromLJoin:
			pl := walkFrom(f.Left)
			pr := walkFrom(f.Right)
			if pl.base == "" || pr.base == "" || e.Cat.Mat == nil ||
				e.Cat.Mat.Base(pl.base) == nil || e.Cat.Mat.Base(pr.base) == nil {
				ok = false
			}
			return provenance{}
		}
		return provenance{}
	}
	walkQuery = func(q *Query) provenance {
		if len(q.From) == 1 && len(q.GroupBy) == 0 && !hasAgg(q.Select) {
			p := walkFrom(&q.From[0])
			// Projection may drop the key; condition (2)(b) still allows
			// single-base provenance.
			return p
		}
		for i := range q.From {
			walkFrom(&q.From[i])
		}
		return provenance{}
	}
	walkQuery(q)
	return ok
}

func hasAgg(items []SelectItem) bool {
	for _, it := range items {
		if it.Agg != "" {
			return true
		}
	}
	return false
}

// planQuery builds the operator tree for a query and returns its root
// plus provenance. Validation that needs only plan-time schemas
// happens here; the rest surfaces through the root's Open.
func (e *Engine) planQuery(q *Query) (rel.Iterator, provenance, error) {
	if len(q.From) == 0 {
		return nil, provenance{}, fmt.Errorf("gsql: empty FROM")
	}
	// Link-join predicate pushdown: the paper's Q3 algebra is
	// σ_P1(S1) ⋈_G σ_P2(S2) — single-side conjuncts of the WHERE clause
	// move into the join sides, shrinking the pairwise connectivity work
	// and making the gL cache keyed by the actual predicates.
	where := q.Where
	var push *linkFilters
	if len(q.From) == 1 && q.From[0].Kind == FromLJoin && where != nil {
		push, where = e.splitLinkFilters(&q.From[0], where)
	}

	// Plan FROM items.
	type bound struct {
		it   rel.Iterator
		prov provenance
	}
	var parts []bound
	for i := range q.From {
		var it rel.Iterator
		var p provenance
		var err error
		if i == 0 && push != nil {
			it, p, err = e.planLJoin(&q.From[0], push)
		} else {
			it, p, err = e.planFrom(&q.From[i])
		}
		if err != nil {
			return nil, provenance{}, err
		}
		parts = append(parts, bound{it, p})
	}
	// Combine with an n-ary cross join (flat qualified names). The first
	// binding streams; the rest materialise at Open.
	cur := parts[0].it
	prov := parts[0].prov
	if len(parts) > 1 {
		its := make([]rel.Iterator, len(parts))
		names := make([]string, len(parts))
		for i := range parts {
			its[i] = parts[i].it
			names[i] = q.From[i].Name()
			if names[i] == "" {
				names[i] = fmt.Sprintf("f%d", i)
			}
		}
		cur = rel.NewCrossJoin(its, names)
		prov = provenance{}
	}
	// WHERE (minus any conjuncts pushed into a link join) and, when no
	// aggregation follows, the projection — collected as pipeline
	// stages. In the default vectorized mode the stages are batch
	// kernels over columnar data (compiled predicates, zero-copy
	// projection); SET VECTORIZED OFF selects the classic per-tuple
	// operators. Either way, with parallelism the stage chain becomes
	// one exchange's sub-pipeline: the input splits into morsels, each
	// filtered and projected on its own worker, and the outputs merge
	// back in morsel order — the exact serial tuple sequence, just
	// produced on Par() workers.
	agg := hasAgg(q.Select) || len(q.GroupBy) > 0
	if e.RowAtATime {
		var stages []rel.PipelineBuilder
		if where != nil {
			w := where
			stages = append(stages, func(in rel.Iterator) rel.Iterator {
				return rel.NewSelectWith("select", in, func(s *rel.Schema) (rel.Pred, error) {
					return func(t rel.Tuple) bool { return w.Eval(s, t) }, nil
				})
			})
		}
		if !agg {
			if proj := e.projectStage(q); proj != nil {
				stages = append(stages, proj)
			}
		}
		cur = e.applyStages(cur, stages)
	} else {
		var stages []rel.BatchPipelineBuilder
		if where != nil {
			stages = append(stages, batchFilterStage(where))
		}
		if !agg {
			if proj := e.batchProjectStage(q); proj != nil {
				stages = append(stages, proj)
			}
		}
		cur = e.applyBatchStages(cur, stages)
	}
	// Aggregation (the projection stage is already applied otherwise).
	out := cur
	if agg {
		var err error
		out, err = e.planAggregate(q, cur)
		if err != nil {
			return nil, provenance{}, err
		}
		if q.Having != nil {
			h := q.Having
			out = rel.NewSelectWith("having", out, func(s *rel.Schema) (rel.Pred, error) {
				return func(t rel.Tuple) bool { return h.Eval(s, t) }, nil
			})
		}
		prov = provenance{}
	} else if prov.base != "" {
		// Projection keeps provenance; key survival decides keyed.
		if base := e.Cat.Relation(prov.base); base != nil {
			if s := out.Schema(); s != nil {
				prov.keyed = s.Has(base.Schema.Key)
			} else {
				prov.keyed = selectKeepsKey(q.Select, base.Schema.Key, prov.keyed)
			}
		}
	}
	if q.Distinct {
		out = rel.NewDistinct(out)
	}
	for i := len(q.OrderBy) - 1; i >= 0; i-- { // stable sort: minor keys first
		key := q.OrderBy[i]
		out = rel.NewSort(out, key.Col)
		if key.Desc {
			out = rel.NewReverse(out)
		}
	}
	if q.Limit >= 0 {
		out = rel.NewLimit(out, q.Limit)
	}
	return out, prov, nil
}

// selectKeepsKey approximates key survival from the SELECT list when
// the output schema is only known after Open (opaque semantic-join
// sources): stars keep whatever the source had, explicit items keep
// the key if one of them names it.
func selectKeepsKey(items []SelectItem, key string, fromKeyed bool) bool {
	if key == "" {
		return false
	}
	for _, it := range items {
		if it.Star || strings.HasSuffix(it.Col, ".*") {
			if fromKeyed {
				return true
			}
			continue
		}
		if it.OutName() == key || it.Col == key || strings.HasSuffix(it.Col, "."+key) {
			return true
		}
	}
	return false
}

// applyStages chains per-tuple pipeline stages onto cur: inline when
// serial, as one morsel-driven exchange when the engine is parallel.
func (e *Engine) applyStages(cur rel.Iterator, stages []rel.PipelineBuilder) rel.Iterator {
	if len(stages) == 0 {
		return cur
	}
	combined := func(in rel.Iterator) rel.Iterator {
		for _, s := range stages {
			in = s(in)
		}
		return in
	}
	if p := e.Par(); p > 1 {
		return rel.NewExchange(cur, p, combined)
	}
	return combined(cur)
}

// projectStage returns the SELECT list (no aggregates) as a transform
// stage: star expansion, validation and column renaming bind once the
// input schema is known. A bare SELECT * is the identity (nil stage).
// The transform is stateless per tuple, so with parallelism it runs as
// part of an exchange's sub-pipeline over morsels.
func (e *Engine) projectStage(q *Query) rel.PipelineBuilder {
	if len(q.Select) == 1 && q.Select[0].Star {
		return nil
	}
	sel := q.Select
	return func(in rel.Iterator) rel.Iterator {
		return rel.NewTransform("project", in, func(in *rel.Schema) (*rel.Schema, func(rel.Tuple) (rel.Tuple, error), error) {
			schema, cols, err := resolveProjection(sel, in)
			if err != nil {
				return nil, nil, err
			}
			fn := func(t rel.Tuple) (rel.Tuple, error) {
				nt := make(rel.Tuple, len(cols))
				for i, c := range cols {
					nt[i] = t[c]
				}
				return nt, nil
			}
			return schema, fn, nil
		})
	}
}

// renamedSchema renames projected attributes to their output names,
// deduplicating collisions with an _N suffix and keeping the key when
// an attribute still carries its name (the eager renameColumns rule).
func renamedSchema(name, key string, attrs []rel.Attribute, outNames []string) (*rel.Schema, error) {
	renamed := make([]rel.Attribute, len(outNames))
	seen := map[string]int{}
	for i, n := range outNames {
		seen[n]++
		if seen[n] > 1 {
			n = fmt.Sprintf("%s_%d", n, seen[n])
		}
		renamed[i] = rel.Attribute{Name: n, Type: attrs[i].Type}
	}
	outKey := ""
	for _, a := range renamed {
		if a.Name == key {
			outKey = a.Name
		}
	}
	return rel.TrySchema(name, outKey, renamed...)
}

// planAggregate applies GROUP BY + aggregates and projects in SELECT
// order (validation happens at plan time when the input schema is
// static, otherwise at Open).
func (e *Engine) planAggregate(q *Query, cur rel.Iterator) (rel.Iterator, error) {
	var specs []rel.AggSpec
	var order []string // output column order
	for _, it := range q.Select {
		switch {
		case it.Star:
			return nil, fmt.Errorf("gsql: SELECT * cannot be combined with aggregates")
		case it.Agg != "":
			var fn rel.AggFunc
			switch it.Agg {
			case "count":
				fn = rel.AggCount
			case "sum":
				fn = rel.AggSum
			case "avg":
				fn = rel.AggAvg
			case "min":
				fn = rel.AggMin
			case "max":
				fn = rel.AggMax
			}
			specs = append(specs, rel.AggSpec{Func: fn, Attr: it.Arg, As: it.OutName()})
			order = append(order, it.OutName())
		default:
			inGroup := false
			for _, g := range q.GroupBy {
				if g == it.Col {
					inGroup = true
				}
			}
			if !inGroup {
				return nil, fmt.Errorf("gsql: column %q must appear in GROUP BY", it.Col)
			}
			order = append(order, it.Col)
		}
	}
	agg := rel.NewAggregate(cur, q.GroupBy, specs)
	return rel.NewProject(agg, order...), nil
}

// planFrom plans one FROM item.
func (e *Engine) planFrom(f *FromItem) (rel.Iterator, provenance, error) {
	switch f.Kind {
	case FromTable:
		r := e.Cat.Relation(f.Table)
		if r == nil {
			return nil, provenance{}, fmt.Errorf("gsql: unknown relation %q", f.Table)
		}
		var it rel.Iterator = rel.NewScan(r)
		if f.Alias != "" {
			it = rel.NewRename(it, f.Alias)
		}
		return it, provenance{base: f.Table, keyed: r.Schema.Key != ""}, nil
	case FromSubquery:
		it, p, err := e.planQuery(f.Sub)
		if err != nil {
			return nil, provenance{}, err
		}
		if f.Alias != "" {
			it = rel.NewRename(it, f.Alias)
		}
		return it, p, nil
	case FromEJoin:
		return e.planEJoin(f)
	case FromLJoin:
		return e.planLJoin(f, nil)
	}
	return nil, provenance{}, fmt.Errorf("gsql: bad FROM item")
}

// planEJoin plans an enrichment join, choosing the strategy per §IV.
func (e *Engine) planEJoin(f *FromItem) (rel.Iterator, provenance, error) {
	src, prov, err := e.planFrom(f.Source)
	if err != nil {
		return nil, provenance{}, err
	}
	g := e.Cat.Graphs[f.Graph]
	if g == nil {
		return nil, provenance{}, fmt.Errorf("gsql: unknown graph %q", f.Graph)
	}
	kind := f.Source.Kind
	joinName := "dynamic"
	if kind == FromTable {
		joinName = "static"
	}

	var out rel.Iterator
	switch {
	case e.Mode != ModeBaseline && e.Mode != ModeHeuristic &&
		prov.base != "" && prov.keyed && e.Cat.Mat != nil &&
		e.Cat.Mat.WellBehavedKeywords(prov.base, f.Keywords):
		out, err = e.Cat.Mat.StaticEnrichIter(prov.base, src, f.Keywords)
		e.note("e-join(%s): well-behaved, %s over materialised h(D,G)", f.Graph, joinName)
	case e.Mode != ModeBaseline && prov.base != "" && !prov.keyed && e.Cat.Mat != nil &&
		e.Cat.Mat.WellBehavedKeywords(prov.base, f.Keywords) && e.Mode != ModeHeuristic:
		// Condition (2)(b): recover tuple ids by joining back to the base
		// on the surviving attributes, then join statically.
		base := e.Cat.Relation(prov.base)
		rejoined := rel.NewNaturalJoin(src, rel.NewScan(base))
		out, err = e.Cat.Mat.StaticEnrichIter(prov.base, rejoined, f.Keywords)
		e.note("e-join(%s): well-behaved via id recovery, %s", f.Graph, joinName)
	case e.Mode != ModeBaseline && e.Cat.Heur != nil:
		out = core.HeuristicEnrichIter(e.Cat.Heur, src, f.Keywords)
		e.note("e-join(%s): heuristic via gτ", f.Graph)
	default:
		cfg := e.Cat.RExt
		cfg.K = e.Cat.K
		if cfg.Obs == nil {
			cfg.Obs = e.reg()
		}
		out = core.BaselineEnrichIter(g, e.Cat.Models, e.Cat.Matcher, f.Keywords, cfg, src)
		e.note("e-join(%s): conceptual baseline (HER+RExt online)", f.Graph)
	}
	if err != nil {
		return nil, provenance{}, err
	}
	if f.Alias != "" {
		out = rel.NewRename(out, f.Alias)
	}
	return out, prov, nil
}

// linkFilters carries the WHERE conjuncts pushed into a link join's sides.
type linkFilters struct {
	left, right Expr
	leftSig     string
	rightSig    string
}

// splitLinkFilters partitions a WHERE conjunction into left-side,
// right-side and residual predicates for a single l-join FROM clause.
// A conjunct moves to a side iff every column it references resolves in
// that side's (aliased) schema and not ambiguously in both. The sides
// are planned (not executed) just for their schemas; when a side's
// schema is only known after Open, pushdown is skipped.
func (e *Engine) splitLinkFilters(f *FromItem, where Expr) (*linkFilters, Expr) {
	mark := len(e.Plan)
	left, _, errL := e.planFrom(f.Left)
	right, _, errR := e.planFrom(f.Right)
	e.Plan = e.Plan[:mark] // probing must not leave strategy notes
	if errL != nil || errR != nil {
		return nil, where // let normal planning surface the error
	}
	leftSchema, rightSchema := left.Schema(), right.Schema()
	if leftSchema == nil || rightSchema == nil {
		return nil, where
	}
	n1, n2 := linkSideNames(f)
	ls := leftSchema.Qualified(n1)
	rs := rightSchema.Qualified(n2)

	var lf, rf, rest Expr
	addTo := func(dst *Expr, c Expr) {
		if *dst == nil {
			*dst = c
		} else {
			*dst = And{L: *dst, R: c}
		}
	}
	for _, c := range splitConjuncts(where) {
		cols := Columns(c)
		inL, inR := true, true
		for _, col := range cols {
			if ls.Col(col) < 0 && leftSchema.Col(col) < 0 {
				inL = false
			}
			if rs.Col(col) < 0 && rightSchema.Col(col) < 0 {
				inR = false
			}
		}
		switch {
		case len(cols) == 0:
			addTo(&rest, c)
		case inL && !inR:
			addTo(&lf, c)
		case inR && !inL:
			addTo(&rf, c)
		default:
			addTo(&rest, c)
		}
	}
	if lf == nil && rf == nil {
		return nil, where
	}
	out := &linkFilters{left: lf, right: rf, leftSig: "true", rightSig: "true"}
	if lf != nil {
		out.leftSig = lf.String()
	}
	if rf != nil {
		out.rightSig = rf.String()
	}
	return out, rest
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e Expr) []Expr {
	if a, ok := e.(And); ok {
		return append(splitConjuncts(a.L), splitConjuncts(a.R)...)
	}
	return []Expr{e}
}

func linkSideNames(f *FromItem) (string, string) {
	n1, n2 := f.Left.Name(), f.Right.Name()
	if n1 == "" {
		n1 = "left"
	}
	if n2 == "" || n2 == n1 {
		n2 += "2"
		if n2 == "2" {
			n2 = "right"
		}
	}
	return n1, n2
}

// planLJoin plans a link join, with optional pushed-down side filters.
func (e *Engine) planLJoin(f *FromItem, filters *linkFilters) (rel.Iterator, provenance, error) {
	g := e.Cat.Graphs[f.Graph]
	if g == nil {
		return nil, provenance{}, fmt.Errorf("gsql: unknown graph %q", f.Graph)
	}
	s1, p1, err := e.planFrom(f.Left)
	if err != nil {
		return nil, provenance{}, err
	}
	s2, p2, err := e.planFrom(f.Right)
	if err != nil {
		return nil, provenance{}, err
	}
	// Give both sides distinct names for qualified output attributes.
	n1, n2 := linkSideNames(f)
	s1 = rel.NewRename(s1, n1)
	s2 = rel.NewRename(s2, n2)

	// Apply pushed-down side predicates (σ_P1 / σ_P2 of the paper's Q3
	// algebra) before computing connectivity.
	sig1, sig2 := predSignature(f.Left), predSignature(f.Right)
	if filters != nil {
		if lf := filters.left; lf != nil {
			s1 = rel.NewSelectWith("select σ_P1", s1, func(s *rel.Schema) (rel.Pred, error) {
				return func(t rel.Tuple) bool { return lf.Eval(s, t) }, nil
			})
		}
		if rf := filters.right; rf != nil {
			s2 = rel.NewSelectWith("select σ_P2", s2, func(s *rel.Schema) (rel.Pred, error) {
				return func(t rel.Tuple) bool { return rf.Eval(s, t) }, nil
			})
		}
		sig1 += "&" + filters.leftSig
		sig2 += "&" + filters.rightSig
	}

	var out rel.Iterator
	switch {
	case e.Mode == ModeHeuristic && e.Cat.Heur != nil:
		out = core.HeuristicLinkIter(e.Cat.Heur, g, e.Cat.K, s1, s2)
		e.note("l-join(%s): heuristic via gτ alignment", f.Graph)
	case e.Mode != ModeBaseline && p1.base != "" && p2.base != "" && e.Cat.Mat != nil &&
		e.Cat.Mat.Base(p1.base) != nil && e.Cat.Mat.Base(p2.base) != nil:
		key := core.LinkCacheKey(p1.base, sig1, p2.base, sig2, e.Cat.K)
		out = e.Cat.Mat.StaticLinkIter(p1.base, s1, p2.base, s2, e.Cat.K, e.Par(), key)
		e.note("l-join(%s): well-behaved over pre-computed matches (gL key %s)", f.Graph, key)
	default:
		out = core.LinkJoinIter(g, e.Cat.Matcher, e.Cat.K, e.Par(), s1, s2)
		e.note("l-join(%s): online bidirectional search", f.Graph)
	}
	if f.Alias != "" {
		out = rel.NewRename(out, f.Alias)
	}
	return out, provenance{}, nil
}

// predSignature renders the selection predicates of a FROM side for the
// gL cache key (§IV-A: gL is keyed by the predicate sets of the two
// sub-queries).
func predSignature(f *FromItem) string {
	switch f.Kind {
	case FromTable:
		return "true"
	case FromSubquery:
		parts := []string{}
		if f.Sub.Where != nil {
			parts = append(parts, f.Sub.Where.String())
		}
		sort.Strings(parts)
		return strings.Join(parts, "&")
	case FromEJoin:
		return "e:" + predSignature(f.Source)
	}
	return "?"
}

func (e *Engine) note(format string, args ...any) {
	e.Plan = append(e.Plan, fmt.Sprintf(format, args...))
}
