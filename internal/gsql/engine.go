package gsql

import (
	"fmt"
	"sort"
	"strings"

	"semjoin/internal/core"
	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/rel"
)

// Mode selects the semantic-join execution strategy.
type Mode int

// Execution modes.
const (
	// ModeAuto uses the static/dynamic implementation for well-behaved
	// joins, the heuristic joiner for non-well-behaved ones (when
	// profiled), and falls back to the conceptual baseline.
	ModeAuto Mode = iota
	// ModeBaseline always runs HER and RExt online (§IV-A baseline).
	ModeBaseline
	// ModeHeuristic forces heuristic joins everywhere (used by the
	// Table III accuracy experiment).
	ModeHeuristic
)

// Catalog binds names to data and to the machinery the executor needs.
type Catalog struct {
	Relations map[string]*rel.Relation
	Graphs    map[string]*graph.Graph

	// Models and Matcher power the conceptual-level baseline.
	Models  core.Models
	Matcher her.Matcher
	// Mat holds the offline pre-computation for static joins (optional).
	Mat *core.Materialized
	// Heur answers non-well-behaved joins without HER/RExt (optional).
	Heur *core.HeuristicJoiner
	// K is the path/hop bound for semantic joins (default 3).
	K int
	// RExt is the template configuration for online extractions.
	RExt core.Config
}

// Engine executes gSQL queries against a catalog.
type Engine struct {
	Cat  *Catalog
	Mode Mode

	// Plan records, for the last query, one line per semantic join
	// describing the strategy chosen (static / dynamic / heuristic /
	// baseline) — the observable outcome of the well-behaved analysis.
	Plan []string
}

// NewEngine returns an engine in ModeAuto.
func NewEngine(cat *Catalog) *Engine {
	if cat.K == 0 {
		cat.K = 3
	}
	return &Engine{Cat: cat}
}

// Query parses and executes input, returning the result relation. An
// input prefixed with EXPLAIN executes the query and returns the plan
// notes (one row per semantic join, plus the well-behaved verdict)
// instead of the data.
func (e *Engine) Query(input string) (*rel.Relation, error) {
	trimmed := strings.TrimSpace(input)
	explain := false
	if len(trimmed) >= 7 && strings.EqualFold(trimmed[:7], "explain") {
		explain = true
		input = trimmed[7:]
	}
	q, err := Parse(input)
	if err != nil {
		return nil, err
	}
	e.Plan = e.Plan[:0]
	out, _, err := e.evalQuery(q)
	if err != nil {
		return nil, err
	}
	if explain {
		plan := rel.NewRelation(rel.NewSchema("plan", "",
			rel.Attribute{Name: "step", Type: rel.KindInt},
			rel.Attribute{Name: "note", Type: rel.KindString},
		))
		verdict := "well-behaved: false"
		if e.WellBehaved(q) {
			verdict = "well-behaved: true"
		}
		plan.InsertVals(rel.I(0), rel.S(verdict))
		for i, p := range e.Plan {
			plan.InsertVals(rel.I(int64(i+1)), rel.S(p))
		}
		return plan, nil
	}
	return out, err
}

// provenance tracks, bottom-up, whether a (sub-)result still refers to the
// tuples of exactly one base relation — the well-behaved condition (2) of
// §IV-A. keyed reports that the base's tuple id survives in the schema.
type provenance struct {
	base  string
	keyed bool
}

// WellBehaved reports whether every semantic join in q is well-behaved
// w.r.t. the catalog's materialisation (A ⊆ AR and single-base
// provenance), via the linear-time bottom-up scan the paper describes.
func (e *Engine) WellBehaved(q *Query) bool {
	ok := true
	var walkQuery func(*Query) provenance
	var walkFrom func(*FromItem) provenance
	walkFrom = func(f *FromItem) provenance {
		switch f.Kind {
		case FromTable:
			r := e.Cat.Relations[f.Table]
			if r == nil {
				ok = false
				return provenance{}
			}
			return provenance{base: f.Table, keyed: r.Schema.Key != ""}
		case FromSubquery:
			return walkQuery(f.Sub)
		case FromEJoin:
			p := walkFrom(f.Source)
			if p.base == "" || e.Cat.Mat == nil ||
				!e.Cat.Mat.WellBehavedKeywords(p.base, f.Keywords) {
				ok = false
			}
			return p
		case FromLJoin:
			pl := walkFrom(f.Left)
			pr := walkFrom(f.Right)
			if pl.base == "" || pr.base == "" || e.Cat.Mat == nil ||
				e.Cat.Mat.Base(pl.base) == nil || e.Cat.Mat.Base(pr.base) == nil {
				ok = false
			}
			return provenance{}
		}
		return provenance{}
	}
	walkQuery = func(q *Query) provenance {
		if len(q.From) == 1 && len(q.GroupBy) == 0 && !hasAgg(q.Select) {
			p := walkFrom(&q.From[0])
			// Projection may drop the key; condition (2)(b) still allows
			// single-base provenance.
			return p
		}
		for i := range q.From {
			walkFrom(&q.From[i])
		}
		return provenance{}
	}
	walkQuery(q)
	return ok
}

func hasAgg(items []SelectItem) bool {
	for _, it := range items {
		if it.Agg != "" {
			return true
		}
	}
	return false
}

// evalQuery executes a query and returns its result plus provenance.
func (e *Engine) evalQuery(q *Query) (*rel.Relation, provenance, error) {
	if len(q.From) == 0 {
		return nil, provenance{}, fmt.Errorf("gsql: empty FROM")
	}
	// Link-join predicate pushdown: the paper's Q3 algebra is
	// σ_P1(S1) ⋈_G σ_P2(S2) — single-side conjuncts of the WHERE clause
	// move into the join sides, shrinking the pairwise connectivity work
	// and making the gL cache keyed by the actual predicates.
	where := q.Where
	var push *linkFilters
	if len(q.From) == 1 && q.From[0].Kind == FromLJoin && where != nil {
		push, where = e.splitLinkFilters(&q.From[0], where)
	}

	// Evaluate FROM items.
	type bound struct {
		r    *rel.Relation
		prov provenance
	}
	var parts []bound
	for i := range q.From {
		var r *rel.Relation
		var p provenance
		var err error
		if i == 0 && push != nil {
			r, p, err = e.evalLJoinFiltered(&q.From[0], push)
		} else {
			r, p, err = e.evalFrom(&q.From[i])
		}
		if err != nil {
			return nil, provenance{}, err
		}
		parts = append(parts, bound{r, p})
	}
	// Combine with an n-ary cross product (flat qualified names).
	cur := parts[0].r
	prov := parts[0].prov
	if len(parts) > 1 {
		rels := make([]*rel.Relation, len(parts))
		names := make([]string, len(parts))
		for i := range parts {
			rels[i] = parts[i].r
			names[i] = q.From[i].Name()
			if names[i] == "" {
				names[i] = fmt.Sprintf("f%d", i)
			}
		}
		cur = rel.CrossJoinAll(rels, names)
		prov = provenance{}
	}
	// WHERE (minus any conjuncts pushed into a link join).
	if where != nil {
		s := cur.Schema
		w := where
		cur = rel.Select(cur, func(t rel.Tuple) bool { return w.Eval(s, t) })
	}
	// Aggregation or projection.
	var out *rel.Relation
	var err error
	if hasAgg(q.Select) || len(q.GroupBy) > 0 {
		out, err = e.aggregate(q, cur)
		if err == nil && q.Having != nil {
			s := out.Schema
			h := q.Having
			out = rel.Select(out, func(t rel.Tuple) bool { return h.Eval(s, t) })
		}
		prov = provenance{}
	} else {
		out, err = e.project(q, cur)
		if err == nil && prov.base != "" {
			// Projection keeps provenance; key survival decides keyed.
			if base := e.Cat.Relations[prov.base]; base != nil {
				prov.keyed = out.Schema.Has(base.Schema.Key)
			}
		}
	}
	if err != nil {
		return nil, provenance{}, err
	}
	if q.Distinct {
		out = rel.Distinct(out)
	}
	for i := len(q.OrderBy) - 1; i >= 0; i-- { // stable sort: minor keys first
		key := q.OrderBy[i]
		out = rel.SortBy(out, key.Col)
		if key.Desc {
			rev := rel.NewRelation(out.Schema)
			for j := len(out.Tuples) - 1; j >= 0; j-- {
				rev.Tuples = append(rev.Tuples, out.Tuples[j])
			}
			out = rev
		}
	}
	if q.Limit >= 0 && out.Len() > q.Limit {
		lim := rel.NewRelation(out.Schema)
		lim.Tuples = out.Tuples[:q.Limit]
		out = lim
	}
	return out, prov, nil
}

// project applies the SELECT list (no aggregates).
func (e *Engine) project(q *Query, cur *rel.Relation) (*rel.Relation, error) {
	if len(q.Select) == 1 && q.Select[0].Star {
		return cur, nil
	}
	var names []string
	var outNames []string
	for _, it := range q.Select {
		switch {
		case it.Star:
			for _, a := range cur.Schema.Attrs {
				names = append(names, a.Name)
				outNames = append(outNames, a.Name)
			}
		case strings.HasSuffix(it.Col, ".*"):
			prefix := strings.TrimSuffix(it.Col, "*")
			found := false
			for _, a := range cur.Schema.Attrs {
				if strings.HasPrefix(a.Name, prefix) {
					names = append(names, a.Name)
					outNames = append(outNames, a.Name)
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("gsql: no columns match %q", it.Col)
			}
		default:
			if cur.Schema.Col(it.Col) < 0 {
				return nil, fmt.Errorf("gsql: unknown column %q in %s", it.Col, cur.Schema)
			}
			names = append(names, it.Col)
			outNames = append(outNames, it.OutName())
		}
	}
	out := rel.Project(cur, names...)
	return renameColumns(out, outNames), nil
}

// aggregate applies GROUP BY + aggregates and projects in SELECT order.
func (e *Engine) aggregate(q *Query, cur *rel.Relation) (*rel.Relation, error) {
	var specs []rel.AggSpec
	var order []string // output column order
	for _, it := range q.Select {
		switch {
		case it.Star:
			return nil, fmt.Errorf("gsql: SELECT * cannot be combined with aggregates")
		case it.Agg != "":
			var fn rel.AggFunc
			switch it.Agg {
			case "count":
				fn = rel.AggCount
			case "sum":
				fn = rel.AggSum
			case "avg":
				fn = rel.AggAvg
			case "min":
				fn = rel.AggMin
			case "max":
				fn = rel.AggMax
			}
			specs = append(specs, rel.AggSpec{Func: fn, Attr: it.Arg, As: it.OutName()})
			order = append(order, it.OutName())
		default:
			inGroup := false
			for _, g := range q.GroupBy {
				if g == it.Col {
					inGroup = true
				}
			}
			if !inGroup {
				return nil, fmt.Errorf("gsql: column %q must appear in GROUP BY", it.Col)
			}
			order = append(order, it.Col)
		}
	}
	agg := rel.Aggregate(cur, q.GroupBy, specs)
	return rel.Project(agg, order...), nil
}

// renameColumns rebuilds r's schema with new attribute names (same arity).
func renameColumns(r *rel.Relation, names []string) *rel.Relation {
	changed := false
	for i, a := range r.Schema.Attrs {
		if a.Name != names[i] {
			changed = true
		}
	}
	if !changed {
		return r
	}
	attrs := make([]rel.Attribute, len(names))
	seen := map[string]int{}
	for i, n := range names {
		seen[n]++
		if seen[n] > 1 {
			n = fmt.Sprintf("%s_%d", n, seen[n])
		}
		attrs[i] = rel.Attribute{Name: n, Type: r.Schema.Attrs[i].Type}
	}
	key := ""
	for _, a := range attrs {
		if a.Name == r.Schema.Key {
			key = a.Name
		}
	}
	out := rel.NewRelation(rel.NewSchema(r.Schema.Name, key, attrs...))
	out.Tuples = r.Tuples
	return out
}

// evalFrom evaluates one FROM item.
func (e *Engine) evalFrom(f *FromItem) (*rel.Relation, provenance, error) {
	switch f.Kind {
	case FromTable:
		r := e.Cat.Relations[f.Table]
		if r == nil {
			return nil, provenance{}, fmt.Errorf("gsql: unknown relation %q", f.Table)
		}
		out := r
		if f.Alias != "" {
			out = rel.Rename(r, f.Alias)
		}
		return out, provenance{base: f.Table, keyed: r.Schema.Key != ""}, nil
	case FromSubquery:
		out, p, err := e.evalQuery(f.Sub)
		if err != nil {
			return nil, provenance{}, err
		}
		if f.Alias != "" {
			out = rel.Rename(out, f.Alias)
		}
		return out, p, nil
	case FromEJoin:
		return e.evalEJoin(f)
	case FromLJoin:
		return e.evalLJoin(f)
	}
	return nil, provenance{}, fmt.Errorf("gsql: bad FROM item")
}

// evalEJoin executes an enrichment join, choosing the strategy per §IV.
func (e *Engine) evalEJoin(f *FromItem) (*rel.Relation, provenance, error) {
	s, prov, err := e.evalFrom(f.Source)
	if err != nil {
		return nil, provenance{}, err
	}
	g := e.Cat.Graphs[f.Graph]
	if g == nil {
		return nil, provenance{}, fmt.Errorf("gsql: unknown graph %q", f.Graph)
	}
	kind := f.Source.Kind
	joinName := "dynamic"
	if kind == FromTable {
		joinName = "static"
	}

	var out *rel.Relation
	switch {
	case e.Mode != ModeBaseline && e.Mode != ModeHeuristic &&
		prov.base != "" && prov.keyed && e.Cat.Mat != nil &&
		e.Cat.Mat.WellBehavedKeywords(prov.base, f.Keywords):
		out, err = e.Cat.Mat.StaticEnrich(prov.base, s, f.Keywords)
		e.note("e-join(%s): well-behaved, %s over materialised h(D,G)", f.Graph, joinName)
	case e.Mode != ModeBaseline && prov.base != "" && !prov.keyed && e.Cat.Mat != nil &&
		e.Cat.Mat.WellBehavedKeywords(prov.base, f.Keywords) && e.Mode != ModeHeuristic:
		// Condition (2)(b): recover tuple ids by joining back to the base
		// on the surviving attributes, then join statically.
		base := e.Cat.Relations[prov.base]
		rejoined := rel.NaturalJoin(s, base)
		out, err = e.Cat.Mat.StaticEnrich(prov.base, rejoined, f.Keywords)
		e.note("e-join(%s): well-behaved via id recovery, %s", f.Graph, joinName)
	case e.Mode != ModeBaseline && e.Cat.Heur != nil:
		var typ string
		out, typ, err = e.Cat.Heur.Enrich(s, f.Keywords)
		e.note("e-join(%s): heuristic via gτ(%s)", f.Graph, typ)
	default:
		cfg := e.Cat.RExt
		cfg.K = e.Cat.K
		out, err = core.EnrichmentJoin(s, g, e.Cat.Models, e.Cat.Matcher, f.Keywords, cfg)
		e.note("e-join(%s): conceptual baseline (HER+RExt online)", f.Graph)
	}
	if err != nil {
		return nil, provenance{}, err
	}
	if f.Alias != "" {
		out = rel.Rename(out, f.Alias)
	}
	return out, prov, nil
}

// linkFilters carries the WHERE conjuncts pushed into a link join's sides.
type linkFilters struct {
	left, right Expr
	leftSig     string
	rightSig    string
}

// splitLinkFilters partitions a WHERE conjunction into left-side,
// right-side and residual predicates for a single l-join FROM clause.
// A conjunct moves to a side iff every column it references resolves in
// that side's (aliased) schema and not ambiguously in both.
func (e *Engine) splitLinkFilters(f *FromItem, where Expr) (*linkFilters, Expr) {
	leftRel, _, errL := e.evalFrom(f.Left)
	rightRel, _, errR := e.evalFrom(f.Right)
	if errL != nil || errR != nil {
		return nil, where // let normal evaluation surface the error
	}
	n1, n2 := linkSideNames(f)
	ls := leftRel.Schema.Qualified(n1)
	rs := rightRel.Schema.Qualified(n2)

	var lf, rf, rest Expr
	addTo := func(dst *Expr, c Expr) {
		if *dst == nil {
			*dst = c
		} else {
			*dst = And{L: *dst, R: c}
		}
	}
	for _, c := range splitConjuncts(where) {
		cols := Columns(c)
		inL, inR := true, true
		for _, col := range cols {
			if ls.Col(col) < 0 && leftRel.Schema.Col(col) < 0 {
				inL = false
			}
			if rs.Col(col) < 0 && rightRel.Schema.Col(col) < 0 {
				inR = false
			}
		}
		switch {
		case len(cols) == 0:
			addTo(&rest, c)
		case inL && !inR:
			addTo(&lf, c)
		case inR && !inL:
			addTo(&rf, c)
		default:
			addTo(&rest, c)
		}
	}
	if lf == nil && rf == nil {
		return nil, where
	}
	out := &linkFilters{left: lf, right: rf, leftSig: "true", rightSig: "true"}
	if lf != nil {
		out.leftSig = lf.String()
	}
	if rf != nil {
		out.rightSig = rf.String()
	}
	return out, rest
}

// splitConjuncts flattens a tree of ANDs into its conjuncts.
func splitConjuncts(e Expr) []Expr {
	if a, ok := e.(And); ok {
		return append(splitConjuncts(a.L), splitConjuncts(a.R)...)
	}
	return []Expr{e}
}

func linkSideNames(f *FromItem) (string, string) {
	n1, n2 := f.Left.Name(), f.Right.Name()
	if n1 == "" {
		n1 = "left"
	}
	if n2 == "" || n2 == n1 {
		n2 += "2"
		if n2 == "2" {
			n2 = "right"
		}
	}
	return n1, n2
}

// evalLJoinFiltered executes a link join with pushed-down side filters.
func (e *Engine) evalLJoinFiltered(f *FromItem, filters *linkFilters) (*rel.Relation, provenance, error) {
	return e.evalLJoinImpl(f, filters)
}

// evalLJoin executes a link join.
func (e *Engine) evalLJoin(f *FromItem) (*rel.Relation, provenance, error) {
	return e.evalLJoinImpl(f, nil)
}

func (e *Engine) evalLJoinImpl(f *FromItem, filters *linkFilters) (*rel.Relation, provenance, error) {
	g := e.Cat.Graphs[f.Graph]
	if g == nil {
		return nil, provenance{}, fmt.Errorf("gsql: unknown graph %q", f.Graph)
	}
	s1, p1, err := e.evalFrom(f.Left)
	if err != nil {
		return nil, provenance{}, err
	}
	s2, p2, err := e.evalFrom(f.Right)
	if err != nil {
		return nil, provenance{}, err
	}
	// Give both sides distinct names for qualified output attributes.
	n1, n2 := linkSideNames(f)
	s1 = rel.Rename(s1, n1)
	s2 = rel.Rename(s2, n2)

	// Apply pushed-down side predicates (σ_P1 / σ_P2 of the paper's Q3
	// algebra) before computing connectivity.
	sig1, sig2 := predSignature(f.Left), predSignature(f.Right)
	if filters != nil {
		if lf := filters.left; lf != nil {
			s := s1.Schema
			s1 = rel.Select(s1, func(t rel.Tuple) bool { return lf.Eval(s, t) })
		}
		if rf := filters.right; rf != nil {
			s := s2.Schema
			s2 = rel.Select(s2, func(t rel.Tuple) bool { return rf.Eval(s, t) })
		}
		sig1 += "&" + filters.leftSig
		sig2 += "&" + filters.rightSig
	}

	var out *rel.Relation
	if e.Mode == ModeHeuristic && e.Cat.Heur != nil {
		out, err = e.Cat.Heur.Link(s1, s2, g, e.Cat.K)
		if err != nil {
			return nil, provenance{}, err
		}
		e.note("l-join(%s): heuristic via gτ alignment", f.Graph)
		if f.Alias != "" {
			out = rel.Rename(out, f.Alias)
		}
		return out, provenance{}, nil
	}
	if e.Mode != ModeBaseline && p1.base != "" && p2.base != "" && e.Cat.Mat != nil &&
		e.Cat.Mat.Base(p1.base) != nil && e.Cat.Mat.Base(p2.base) != nil {
		key := core.LinkCacheKey(p1.base, sig1, p2.base, sig2, e.Cat.K)
		out, err = e.Cat.Mat.StaticLink(p1.base, s1, p2.base, s2, e.Cat.K, key)
		e.note("l-join(%s): well-behaved over pre-computed matches (gL key %s)", f.Graph, key)
	} else {
		out = core.LinkJoin(s1, s2, g, e.Cat.Matcher, e.Cat.K)
		e.note("l-join(%s): online bidirectional search", f.Graph)
	}
	if err != nil {
		return nil, provenance{}, err
	}
	if f.Alias != "" {
		out = rel.Rename(out, f.Alias)
	}
	return out, provenance{}, nil
}

// predSignature renders the selection predicates of a FROM side for the
// gL cache key (§IV-A: gL is keyed by the predicate sets of the two
// sub-queries).
func predSignature(f *FromItem) string {
	switch f.Kind {
	case FromTable:
		return "true"
	case FromSubquery:
		parts := []string{}
		if f.Sub.Where != nil {
			parts = append(parts, f.Sub.Where.String())
		}
		sort.Strings(parts)
		return strings.Join(parts, "&")
	case FromEJoin:
		return "e:" + predSignature(f.Source)
	}
	return "?"
}

func (e *Engine) note(format string, args ...any) {
	e.Plan = append(e.Plan, fmt.Sprintf(format, args...))
}
