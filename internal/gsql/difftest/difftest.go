// Package difftest is a differential test harness for the gsql engine.
// It builds seeded random fintech-style fixtures (graph + base
// relations + oracle-matched materialization), generates seeded random
// queries spanning every plan family (selects with predicates, order
// by/limit/distinct, aggregates, cross joins, e-joins and l-joins),
// and runs each query on a serial engine (Parallelism = 1) and a
// parallel one, checking the two executions agree.
//
// The order-preserving exchange makes most plans identical tuple for
// tuple, but aggregate group order depends on map iteration, so the
// harness compares bags (multisets of canonical tuple keys), which is
// the semantics SQL promises anyway.
//
// Determinism invariant: the harness must never assume anything about
// the order in which morsel-driven workers finish. The parallel
// exchange reassembles output morsels by input morsel index (an
// explicit merge step), which makes scan-rooted plans order-stable,
// but that is an implementation courtesy — not a contract. Any
// assertion added here has to go through Diff's bag comparison (or
// sort first); asserting on raw tuple positions would flake under
// -count=N whenever GOMAXPROCS, morsel size, or scheduling changes.
package difftest

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"semjoin/internal/core"
	"semjoin/internal/graph"
	"semjoin/internal/gsql"
	"semjoin/internal/her"
	"semjoin/internal/rel"
)

// Value pools shared by the fixture builder and the query generator,
// so generated predicates always reference plausible data.
var (
	poolCompanies = []string{"Acme Corp", "Globex Corp", "Initech Corp", "Umbrella Corp", "Stark Ltd"}
	poolCountries = []string{"UK", "US", "Germany", "France"}
	poolTypes     = []string{"Funds", "Stocks"}
	poolRisks     = []string{"low", "medium", "high"}
	poolCredits   = []string{"good", "fair", "poor"}
)

// Fixture is one seeded random instance of the fintech schema:
// product(pid, name, issuer, type, price, risk) and
// customer(cid, name, credit, bal) over a property graph, with the
// offline materialization the static join strategies need.
type Fixture struct {
	Seed      int64
	Cat       *gsql.Catalog
	NProducts int
	NCust     int
}

// Build constructs a fixture from seed. The same seed always yields
// the same graph, relations and materialization. Materialization
// failures (a miswired base spec) surface as errors.
func Build(seed int64) (*Fixture, error) {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New()

	nCompanies := 3 + rng.Intn(len(poolCompanies)-2)
	companies := poolCompanies[:nCompanies]

	countryV := make([]graph.VertexID, len(poolCountries))
	for i, c := range poolCountries {
		countryV[i] = g.AddVertex(c, "country")
	}
	companyV := make([]graph.VertexID, nCompanies)
	countryOfCompany := make([]int, nCompanies)
	for i, c := range companies {
		companyV[i] = g.AddVertex(c, "company")
		countryOfCompany[i] = rng.Intn(len(poolCountries))
		g.AddEdge(companyV[i], "registered_in", countryV[countryOfCompany[i]])
	}
	categoryV := make([]graph.VertexID, len(poolTypes))
	for i, c := range poolTypes {
		categoryV[i] = g.AddVertex(c, "category")
	}

	products := rel.NewRelation(rel.NewSchema("product", "pid",
		rel.Attribute{Name: "pid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "issuer", Type: rel.KindString},
		rel.Attribute{Name: "type", Type: rel.KindString},
		rel.Attribute{Name: "price", Type: rel.KindInt},
		rel.Attribute{Name: "risk", Type: rel.KindString},
	))
	customers := rel.NewRelation(rel.NewSchema("customer", "cid",
		rel.Attribute{Name: "cid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "credit", Type: rel.KindString},
		rel.Attribute{Name: "bal", Type: rel.KindInt},
	))
	truth := map[string]graph.VertexID{}

	nProducts := 12 + rng.Intn(9)
	prodV := make([]graph.VertexID, nProducts)
	for i := 0; i < nProducts; i++ {
		pid := fmt.Sprintf("fd%d", i)
		name := fmt.Sprintf("prod %02d", i)
		ci := rng.Intn(nCompanies)
		ti := rng.Intn(len(poolTypes))
		v := g.AddVertex(name, "product")
		prodV[i] = v
		g.AddEdge(companyV[ci], "issues", v)
		g.AddEdge(v, "category", categoryV[ti])
		products.InsertVals(
			rel.S(pid), rel.S(name), rel.S(companies[ci]),
			rel.S(poolTypes[ti]), rel.I(int64(60+10*rng.Intn(10))),
			rel.S(poolRisks[rng.Intn(len(poolRisks))]))
		truth[pid] = v
	}
	nCust := 8 + rng.Intn(9)
	for i := 0; i < nCust; i++ {
		cid := fmt.Sprintf("cid%02d", i)
		name := fmt.Sprintf("person %02d", i)
		v := g.AddVertex(name, "person")
		truth[cid] = v
		for _, p := range rng.Perm(nProducts)[:1+rng.Intn(3)] {
			g.AddEdge(v, "invest", prodV[p])
		}
		customers.InsertVals(rel.S(cid), rel.S(name),
			rel.S(poolCredits[rng.Intn(len(poolCredits))]),
			rel.I(int64(40000+10000*rng.Intn(20))))
	}

	models := core.TrainModels(g, 4, uint64(seed)+11)
	oracle := her.NewOracleMatcher(truth)
	cfg := core.Config{K: 3, H: 14, Seed: uint64(seed) + 5}
	mat, err := core.BuildMaterialized(g, models, map[string]core.BaseSpec{
		"product":  {D: products, AR: []string{"company", "country"}, Matcher: oracle},
		"customer": {D: customers, AR: []string{"company", "product"}, Matcher: oracle},
	}, cfg)
	if err != nil {
		return nil, fmt.Errorf("difftest: materializing fixture %d: %w", seed, err)
	}
	profiles := core.ProfileGraph(g, models, map[string][]string{
		"product": {"company", "country"},
	}, 2, cfg)

	return &Fixture{
		Seed:      seed,
		NProducts: nProducts,
		NCust:     nCust,
		Cat: &gsql.Catalog{
			Relations: map[string]*rel.Relation{"product": products, "customer": customers},
			Graphs:    map[string]*graph.Graph{"G": g, "Gp": g},
			Models:    models,
			Matcher:   oracle,
			Mat:       mat,
			Heur:      core.NewHeuristicJoiner(profiles),
			K:         3,
			RExt:      core.Config{H: 14, Seed: uint64(seed) + 5},
		},
	}, nil
}

// Gen is a seeded random query generator over the fixture schema.
type Gen struct{ rng *rand.Rand }

// NewGen returns a generator; the same seed yields the same query
// sequence.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

func (g *Gen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

// pred emits one atomic predicate over table (optionally qualified
// with prefix, e.g. "p." for a cross-join alias).
func (g *Gen) pred(table, prefix string) string {
	switch table {
	case "product":
		switch g.rng.Intn(7) {
		case 0:
			return fmt.Sprintf("%sprice >= %d", prefix, 60+10*g.rng.Intn(10))
		case 1:
			return fmt.Sprintf("%sprice < %d", prefix, 60+10*g.rng.Intn(10))
		case 2:
			return fmt.Sprintf("%srisk = '%s'", prefix, g.pick(poolRisks))
		case 3:
			return fmt.Sprintf("%srisk <> '%s'", prefix, g.pick(poolRisks))
		case 4:
			return fmt.Sprintf("%stype = '%s'", prefix, g.pick(poolTypes))
		case 5:
			return fmt.Sprintf("%sprice between %d and %d", prefix, 60+10*g.rng.Intn(4), 100+10*g.rng.Intn(5))
		default:
			return fmt.Sprintf("%spid in ('fd1', 'fd3', 'fd%d')", prefix, g.rng.Intn(12))
		}
	default: // customer
		switch g.rng.Intn(5) {
		case 0:
			return fmt.Sprintf("%sbal >= %d", prefix, 40000+10000*g.rng.Intn(20))
		case 1:
			return fmt.Sprintf("%scredit = '%s'", prefix, g.pick(poolCredits))
		case 2:
			return fmt.Sprintf("%scredit <> '%s'", prefix, g.pick(poolCredits))
		case 3:
			return fmt.Sprintf("%sbal between %d and %d", prefix, 40000+10000*g.rng.Intn(5), 120000+10000*g.rng.Intn(8))
		default:
			return fmt.Sprintf("%sname like 'person%%'", prefix)
		}
	}
}

// where emits a boolean combination of 1-3 atomic predicates.
func (g *Gen) where(table, prefix string) string {
	p1 := g.pred(table, prefix)
	switch g.rng.Intn(5) {
	case 0:
		return p1
	case 1:
		return p1 + " and " + g.pred(table, prefix)
	case 2:
		return p1 + " or " + g.pred(table, prefix)
	case 3:
		return "not (" + p1 + ")"
	default:
		return p1 + " and (" + g.pred(table, prefix) + " or " + g.pred(table, prefix) + ")"
	}
}

var tableCols = map[string][]string{
	"product":  {"pid", "name", "issuer", "type", "price", "risk"},
	"customer": {"cid", "name", "credit", "bal"},
}

// cols picks a random non-empty projection list, preserving schema
// order, or "*".
func (g *Gen) cols(table string) (string, []string) {
	all := tableCols[table]
	if g.rng.Intn(3) == 0 {
		return "*", all
	}
	var kept []string
	for _, c := range all {
		if g.rng.Intn(2) == 0 {
			kept = append(kept, c)
		}
	}
	if len(kept) == 0 {
		kept = []string{all[0]}
	}
	return strings.Join(kept, ", "), kept
}

// Query emits one random query string. Every query the generator
// emits must plan and execute successfully on both engines; the
// differential test treats an execution error as a harness bug.
func (g *Gen) Query() string {
	switch g.rng.Intn(10) {
	case 0, 1, 2: // plain select with optional order by / limit
		table := g.pick([]string{"product", "customer"})
		colList, kept := g.cols(table)
		q := "select " + colList + " from " + table
		if g.rng.Intn(3) > 0 {
			q += " where " + g.where(table, "")
		}
		if g.rng.Intn(2) == 0 {
			q += " order by " + g.pick(kept)
			if g.rng.Intn(2) == 0 {
				q += " desc"
			}
		}
		if g.rng.Intn(3) == 0 {
			q += fmt.Sprintf(" limit %d", 1+g.rng.Intn(10))
		}
		return q
	case 3: // distinct
		table := g.pick([]string{"product", "customer"})
		col := g.pick(tableCols[table][2:]) // low-cardinality columns
		q := "select distinct " + col + " from " + table
		if g.rng.Intn(2) == 0 {
			q += " where " + g.where(table, "")
		}
		return q
	case 4, 5: // aggregate with group by
		table := g.pick([]string{"product", "customer"})
		gcol, mcol := "risk", "price"
		if table == "customer" {
			gcol, mcol = "credit", "bal"
		}
		if table == "product" && g.rng.Intn(2) == 0 {
			gcol = "type"
		}
		agg := g.pick([]string{
			"count(*) as n",
			"sum(" + mcol + ") as s",
			"avg(" + mcol + ") as a",
			"min(" + mcol + ") as lo",
			"max(" + mcol + ") as hi",
		})
		q := fmt.Sprintf("select %s, %s from %s", gcol, agg, table)
		if g.rng.Intn(2) == 0 {
			q += " where " + g.where(table, "")
		}
		q += " group by " + gcol
		if g.rng.Intn(2) == 0 {
			q += " order by " + gcol
		}
		return q
	case 6: // cross join with per-side predicates
		q := fmt.Sprintf("select c.cid, p.pid from customer as c, product as p where %s and %s",
			g.where("customer", "c."), g.where("product", "p."))
		if g.rng.Intn(2) == 0 {
			q += " order by c.cid, p.pid"
		}
		if g.rng.Intn(3) == 0 {
			q += fmt.Sprintf(" limit %d", 1+g.rng.Intn(20))
		}
		return q
	case 7, 8: // e-join against the graph's extension attributes
		q := "select pid, company from product e-join G <company, country> as T"
		switch g.rng.Intn(3) {
		case 0:
			q += fmt.Sprintf(" where T.country = '%s'", g.pick(poolCountries))
		case 1:
			q += fmt.Sprintf(" where T.company = '%s'", g.pick(poolCompanies))
		}
		return q
	default: // l-join: k-hop connectivity self-join
		table := g.pick([]string{"customer", "product"})
		key := "cid"
		if table == "product" {
			key = "pid"
		}
		q := fmt.Sprintf("select %s.%s, %s2.%s from %s l-join <Gp> %s as %s2",
			table, key, table, key, table, table, table)
		if g.rng.Intn(2) == 0 {
			q += " where " + g.pred(table, table+".")
		}
		return q
	}
}

// Diff compares two relations as bags of tuples. It returns "" when
// the schemas match and every tuple occurs the same number of times
// in both, and a human-readable description of the first discrepancy
// otherwise.
func Diff(a, b *rel.Relation) string {
	if a == nil || b == nil {
		return fmt.Sprintf("nil relation: a=%v b=%v", a == nil, b == nil)
	}
	an, bn := attrNames(a.Schema), attrNames(b.Schema)
	if strings.Join(an, ",") != strings.Join(bn, ",") {
		return fmt.Sprintf("schema mismatch: %v vs %v", an, bn)
	}
	if len(a.Tuples) != len(b.Tuples) {
		return fmt.Sprintf("row count mismatch: %d vs %d", len(a.Tuples), len(b.Tuples))
	}
	counts := make(map[string]int, len(a.Tuples))
	for _, t := range a.Tuples {
		counts[tupleKey(t)]++
	}
	for _, t := range b.Tuples {
		k := tupleKey(t)
		counts[k]--
		if counts[k] < 0 {
			return fmt.Sprintf("tuple %q occurs more often in second relation", k)
		}
	}
	var leftovers []string
	for k, n := range counts {
		if n != 0 {
			leftovers = append(leftovers, k)
		}
	}
	if len(leftovers) > 0 {
		sort.Strings(leftovers)
		return fmt.Sprintf("tuples only in first relation: %v", leftovers)
	}
	return ""
}

func attrNames(s *rel.Schema) []string {
	if s == nil {
		return nil
	}
	names := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		names[i] = a.Name
	}
	return names
}

// tupleKey canonicalizes one tuple: the concatenation of each value's
// Key() with an unprintable separator.
func tupleKey(t rel.Tuple) string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.Key()
	}
	return strings.Join(parts, "\x1f")
}
