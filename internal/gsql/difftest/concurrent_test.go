package difftest

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"semjoin/internal/gsql"
	"semjoin/internal/rel"
)

// TestConcurrentEnginesMatchSerial is the engine-level concurrency
// oracle: N engines sharing one catalog run a seeded query set
// concurrently, and every result must be bag-equal to the same query
// run on a lone serial engine. Run under -race this also proves the
// shared catalog (relations, graph, materialisation, gL cache,
// columnar images) is safe for concurrent readers. The grid covers
// both executors at both ends of the parallelism knob.
func TestConcurrentEnginesMatchSerial(t *testing.T) {
	const (
		sessions         = 8
		queriesPerWorker = 25
	)
	grid := []struct {
		par        int
		vectorized bool
	}{
		{1, true}, {4, true}, {1, false}, {4, false},
	}
	for _, cfg := range grid {
		name := fmt.Sprintf("par=%d/vectorized=%v", cfg.par, cfg.vectorized)
		t.Run(name, func(t *testing.T) {
			f, err := Build(11)
			if err != nil {
				t.Fatal(err)
			}
			// One deterministic query list, shared by every worker: the
			// point is many sessions racing over the same plans and
			// caches, not coverage breadth (the generator handles that).
			gen := NewGen(11 ^ 0x5eed)
			queries := make([]string, queriesPerWorker)
			for i := range queries {
				queries[i] = gen.Query()
			}

			serial := gsql.NewEngine(f.Cat)
			serial.Parallelism = 1
			want := make([]*rel.Relation, len(queries))
			wantErr := make([]bool, len(queries))
			ctx := context.Background()
			for i, q := range queries {
				out, err := serial.QueryContext(ctx, q)
				if err != nil {
					wantErr[i] = true
					continue
				}
				want[i] = out
			}

			var wg sync.WaitGroup
			for w := 0; w < sessions; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					eng := gsql.NewEngine(f.Cat)
					eng.Parallelism = cfg.par
					eng.RowAtATime = !cfg.vectorized
					// Each worker walks the query list at its own offset so
					// different queries overlap in time.
					for k := 0; k < len(queries); k++ {
						i := (k + w) % len(queries)
						out, err := eng.QueryContext(ctx, queries[i])
						if wantErr[i] {
							if err == nil {
								t.Errorf("worker %d query %q: serial errored, concurrent did not", w, queries[i])
							}
							continue
						}
						if err != nil {
							t.Errorf("worker %d query %q: %v", w, queries[i], err)
							continue
						}
						if d := Diff(want[i], out); d != "" {
							t.Errorf("worker %d query %q diverged from serial: %s", w, queries[i], d)
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
