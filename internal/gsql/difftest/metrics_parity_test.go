package difftest

import (
	"strings"
	"testing"

	"semjoin/internal/gsql"
	"semjoin/internal/obs"
)

// workerDependent reports whether a counter series legitimately
// differs between serial and parallel executions: exchange traffic
// and parallel-build bookkeeping only exist when workers fan out.
func workerDependent(name string) bool {
	for _, s := range []string{"exchange", "worker", "parallel"} {
		if strings.Contains(name, s) {
			return true
		}
	}
	return false
}

// TestMetricsParitySerialVsParallel is the differential harness lifted
// from tuples to telemetry: the same seeded query stream runs on a
// serial and a parallel engine, each over its own identical fixture
// (separate gL caches) and its own registry, and every counter that is
// not inherently worker-dependent must agree exactly. Divergence means
// an operator is over- or under-counting in one execution mode — e.g.
// a morsel source scan double-counting rows the exchange input already
// counted.
func TestMetricsParitySerialVsParallel(t *testing.T) {
	const seed = 1117
	queries := 40
	if testing.Short() {
		queries = 12
	}
	// Two fixtures from one seed: identical data, independent gL caches
	// — a shared cache would let the first engine's misses become the
	// second engine's hits.
	serialFix, parFix := mustBuild(t, seed), mustBuild(t, seed)
	serial := gsql.NewEngine(serialFix.Cat)
	serial.Parallelism = 1
	serial.Obs = obs.NewRegistry()
	serial.Queries = obs.NewQueryLog()
	par := gsql.NewEngine(parFix.Cat)
	par.Parallelism = 4
	par.Obs = obs.NewRegistry()
	par.Queries = obs.NewQueryLog()

	gen := NewGen(seed)
	ran := 0
	for ran < queries {
		q := gen.Query()
		// LIMIT plans early-stop serially, but exchange workers process
		// every morsel eagerly, so per-operator row counts legitimately
		// diverge; parity is asserted over the exhaustive plans only.
		if strings.Contains(q, " limit ") {
			continue
		}
		ran++
		outS, errS := serial.Query(q)
		outP, errP := par.Query(q)
		if errS != nil || errP != nil {
			t.Fatalf("query %q: serial err=%v, parallel err=%v", q, errS, errP)
		}
		if d := Diff(outS, outP); d != "" {
			t.Fatalf("query %q: result mismatch: %s", q, d)
		}
	}

	sv, pv := serial.Obs.CounterValues(), par.Obs.CounterValues()
	for name, v := range sv {
		if workerDependent(name) {
			continue
		}
		if pv[name] != v {
			t.Errorf("counter %s: serial %d, parallel %d", name, v, pv[name])
		}
	}
	for name, v := range pv {
		if workerDependent(name) {
			continue
		}
		if _, ok := sv[name]; !ok {
			t.Errorf("counter %s (= %d) recorded only by the parallel engine", name, v)
		}
	}
	// Sanity: the comparison must not be vacuous — the stream has to
	// have produced query and operator counters on both sides.
	if sv["gsql_queries_total"] != int64(ran) || pv["gsql_queries_total"] != int64(ran) {
		t.Fatalf("gsql_queries_total: serial %d, parallel %d, want %d",
			sv["gsql_queries_total"], pv["gsql_queries_total"], ran)
	}
	hasOpRows := false
	for name := range sv {
		if strings.HasPrefix(name, "rel_op_rows_total") {
			hasOpRows = true
		}
	}
	if !hasOpRows {
		t.Fatal("no per-operator row counters recorded")
	}
}
