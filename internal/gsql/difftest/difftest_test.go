package difftest

import (
	"context"
	"runtime"
	"strings"
	"testing"
	"time"

	"semjoin/internal/gsql"
)

// TestDifferentialSerialVsParallel is the differential harness proper:
// for each fixture seed it generates a stream of random queries and
// checks that a serial engine (Parallelism = 1) and a parallel engine
// produce the same bag of tuples for every one. In full (non-short)
// mode it covers at least 200 query/fixture pairs.
// mustBuild constructs a fixture, failing the test on error.
func mustBuild(t testing.TB, seed int64) *Fixture {
	t.Helper()
	f, err := Build(seed)
	if err != nil {
		t.Fatalf("Build(%d): %v", seed, err)
	}
	return f
}

func TestDifferentialSerialVsParallel(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	queriesPer := 60
	if testing.Short() {
		seeds = seeds[:2]
		queriesPer = 15
	}
	pairs := 0
	for _, seed := range seeds {
		f := mustBuild(t, seed)
		serial := gsql.NewEngine(f.Cat)
		serial.Parallelism = 1
		par := gsql.NewEngine(f.Cat)
		par.Parallelism = 4
		gen := NewGen(seed*1000 + 7)
		for i := 0; i < queriesPer; i++ {
			q := gen.Query()
			sr, serr := serial.Query(q)
			pr, perr := par.Query(q)
			if serr != nil || perr != nil {
				t.Fatalf("seed %d query %d %q: serial err=%v, parallel err=%v", seed, i, q, serr, perr)
			}
			if d := Diff(sr, pr); d != "" {
				t.Errorf("seed %d query %d diverged\nquery: %s\ndiff: %s", seed, i, q, d)
			}
			pairs++
		}
	}
	if !testing.Short() && pairs < 200 {
		t.Fatalf("harness covered only %d pairs, want >= 200", pairs)
	}
	t.Logf("compared %d query/fixture pairs", pairs)
}

// TestGeneratorCoverage pins that the generator actually exercises
// every plan family — a regression here would silently hollow out the
// differential test above.
func TestGeneratorCoverage(t *testing.T) {
	gen := NewGen(42)
	families := map[string]int{
		"e-join": 0, "l-join": 0, "group by": 0, "distinct": 0,
		"order by": 0, "limit": 0, "customer as c, product as p": 0,
		"like": 0, "between": 0, " in (": 0,
	}
	for i := 0; i < 400; i++ {
		q := gen.Query()
		for marker := range families {
			if strings.Contains(q, marker) {
				families[marker]++
			}
		}
	}
	for marker, n := range families {
		if n == 0 {
			t.Errorf("generator never emitted a query containing %q", marker)
		}
	}
}

// TestFixtureDeterminism pins that Build is a pure function of its
// seed — without this, failures found by seed would not reproduce.
func TestFixtureDeterminism(t *testing.T) {
	a, b := mustBuild(t, 9), mustBuild(t, 9)
	for _, name := range []string{"product", "customer"} {
		if d := Diff(a.Cat.Relations[name], b.Cat.Relations[name]); d != "" {
			t.Fatalf("fixture %q not deterministic: %s", name, d)
		}
	}
	if c := mustBuild(t, 10); Diff(a.Cat.Relations["product"], c.Cat.Relations["product"]) == "" &&
		Diff(a.Cat.Relations["customer"], c.Cat.Relations["customer"]) == "" {
		t.Fatal("different seeds produced identical fixtures")
	}
}

// settleGoroutines polls until the goroutine count returns to at most
// base or the deadline expires.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d > %d", runtime.NumGoroutine(), base)
}

// TestCancellationLeavesNoGoroutines cancels parallel queries
// mid-flight — both with a context that dies while the query runs and
// with one cancelled before the query starts — and checks the worker
// pools wind down completely.
func TestCancellationLeavesNoGoroutines(t *testing.T) {
	f := mustBuild(t, 3)
	e := gsql.NewEngine(f.Cat)
	e.Parallelism = 4
	// Warm the engine (and the fixture's gL cache) so the settle
	// baseline is taken after any lazily started runtime helpers.
	if _, err := e.Query(`select pid from product`); err != nil {
		t.Fatal(err)
	}
	base := runtime.NumGoroutine()

	heavy := `select c.cid, p.pid from customer as c, product as p
		where c.bal >= 40000 and p.price >= 60 order by c.cid, p.pid`
	for i := 0; i < 30; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		// Race the cancel against the query so some iterations cancel
		// mid-drain and some complete.
		go func() {
			time.Sleep(time.Duration(i%5) * 100 * time.Microsecond)
			cancel()
		}()
		out, err := e.QueryContext(ctx, heavy)
		if err == nil && out == nil {
			t.Fatal("nil relation without error")
		}
		if err != nil && !strings.Contains(err.Error(), "context canceled") {
			t.Fatalf("iteration %d: unexpected error: %v", i, err)
		}
		cancel()
	}
	// A context cancelled before the query starts must fail fast.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, heavy); err == nil {
		t.Fatal("pre-cancelled context should error")
	}
	settleGoroutines(t, base)
}
