package gsql

import "testing"

// showSessionMap runs SHOW SESSION and indexes it by setting name.
func showSessionMap(t *testing.T, e *Engine) map[string]string {
	t.Helper()
	out, err := e.Query(`show session`)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, tup := range out.Tuples {
		got[out.Get(tup, "setting").String()] = out.Get(tup, "value").String()
	}
	return got
}

func TestShowSessionStatement(t *testing.T) {
	e, _, _ := newObsEngine(t)
	got := showSessionMap(t, e)
	if len(got) != 3 {
		t.Fatalf("SHOW SESSION rows = %v, want 3 settings", got)
	}
	if got["vectorized"] != "on" || got["slow_query_ms"] != "0" {
		t.Fatalf("defaults = %v", got)
	}
	if got["parallelism"] == "" || got["parallelism"] == "0" {
		t.Fatalf("parallelism = %q, want the effective worker count", got["parallelism"])
	}

	// Every SET knob is reflected.
	for _, q := range []string{
		`set parallelism 2`, `set vectorized off`, `set slow_query_ms 150`,
	} {
		if _, err := e.Query(q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}
	got = showSessionMap(t, e)
	if got["parallelism"] != "2" || got["vectorized"] != "off" || got["slow_query_ms"] != "150" {
		t.Fatalf("after SETs: %v", got)
	}

	// A sibling engine over the same catalog is untouched: the
	// settings are engine-scoped, which is what makes them
	// session-scoped in the network server.
	sibling, _, _ := newObsEngine(t)
	if got := showSessionMap(t, sibling); got["parallelism"] == "2" && got["vectorized"] == "off" {
		t.Fatalf("sibling engine inherited session settings: %v", got)
	}

	if _, err := e.Query(`show session please`); err == nil {
		t.Fatal("trailing arguments should error")
	}
}
