package gsql

import (
	"testing"

	"semjoin/internal/graph"
)

// TestDebugGtauQuality dumps the profiled g_product relation quality;
// enable with -v.
func TestDebugGtauQuality(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug helper")
	}
	f := getFintech(t)
	gt := f.cat.Heur
	_ = gt
	// Reach into the profile via a fresh ProfileGraph-equivalent: easier
	// to recompute vid->truth maps.
	byVid := map[graph.VertexID]string{}
	for pid, v := range f.truth {
		if c, ok := f.companyOf[pid]; ok {
			byVid[v] = c
		}
	}
	// Run the heuristic enrich on the full product relation and measure.
	out, typ, err := f.cat.Heur.Enrich(f.products, []string{"company"})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("type=%s rows=%d", typ, out.Len())
	vidCol := out.Schema.Col("vid")
	companyCol := out.Schema.Col("company")
	pidCol := out.Schema.Col("pid")
	hits, vidHits := 0, 0
	for _, tp := range out.Tuples {
		pid := tp[pidCol].Str()
		if tp[companyCol].Str() == f.companyOf[pid] {
			hits++
		}
		if f.truth[pid] == graph.VertexID(tp[vidCol].Int()) {
			vidHits++
		} else {
			t.Logf("pid %s matched wrong vid %d (gt company %q, want %q)",
				pid, tp[vidCol].Int(), tp[companyCol].Str(), f.companyOf[pid])
		}
	}
	t.Logf("company acc=%.2f vid acc=%.2f of %d", float64(hits)/float64(out.Len()),
		float64(vidHits)/float64(out.Len()), out.Len())
}
