package gsql

import "sort"

// KeywordUsage aggregates how often each extraction keyword appears in a
// query log, per graph name — the raw material for the reference keyword
// lists AR of §IV-A ("RExt profiles graph G and extracts frequent
// keywords ... from query logs, user specifications, and selected vertex
// and edge labels").
type KeywordUsage struct {
	// ByGraph maps graph name -> keyword -> occurrence count.
	ByGraph map[string]map[string]int
	// Parsed and Failed count the log entries by parse outcome.
	Parsed, Failed int
}

// CollectKeywords parses a gSQL query log and tallies every keyword used
// in an e-join, per graph. Unparsable entries are counted and skipped.
func CollectKeywords(log []string) KeywordUsage {
	u := KeywordUsage{ByGraph: map[string]map[string]int{}}
	for _, text := range log {
		q, err := Parse(text)
		if err != nil {
			u.Failed++
			continue
		}
		u.Parsed++
		var walkQuery func(*Query)
		var walkFrom func(*FromItem)
		walkFrom = func(f *FromItem) {
			switch f.Kind {
			case FromSubquery:
				walkQuery(f.Sub)
			case FromEJoin:
				m := u.ByGraph[f.Graph]
				if m == nil {
					m = map[string]int{}
					u.ByGraph[f.Graph] = m
				}
				for _, kw := range f.Keywords {
					m[kw]++
				}
				walkFrom(f.Source)
			case FromLJoin:
				walkFrom(f.Left)
				walkFrom(f.Right)
			}
		}
		walkQuery = func(q *Query) {
			for i := range q.From {
				walkFrom(&q.From[i])
			}
		}
		walkQuery(q)
	}
	return u
}

// Reference returns the keywords for one graph whose usage count is at
// least minCount, most frequent first (ties alphabetical) — a reference
// list AR users can pick from and the materialisation can pre-extract.
func (u KeywordUsage) Reference(graphName string, minCount int) []string {
	m := u.ByGraph[graphName]
	type kc struct {
		k string
		n int
	}
	var list []kc
	for k, n := range m {
		if n >= minCount {
			list = append(list, kc{k, n})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].k < list[j].k
	})
	out := make([]string, len(list))
	for i, e := range list {
		out[i] = e.k
	}
	return out
}
