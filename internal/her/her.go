// Package her implements Heterogeneous Entity Resolution: the black-box
// function f(S,G) of §II-B that pairs tuples of a relation S with vertices
// of a graph G referring to the same real-world entity. The paper plugs in
// existing systems (JedAI, parametric simulation, MAGNN, ...); this
// package provides a blocking + weighted-similarity matcher with the same
// interface, plus a noise wrapper used to study cascading HER error
// (Exp-2(c), Fig 5(g)).
package her

import (
	"sort"

	"semjoin/internal/embed"
	"semjoin/internal/graph"
	"semjoin/internal/rel"
)

// Match pairs one tuple of S (by index and tuple id) with one vertex of G.
type Match struct {
	TupleIdx int
	TID      rel.Value
	Vertex   graph.VertexID
	Score    float64
}

// Matcher computes the HER match relation f(S,G).
type Matcher interface {
	Match(s *rel.Relation, g *graph.Graph) []Match
}

// Config parameterises the similarity matcher.
type Config struct {
	// Threshold is the minimum similarity for a match (default 0.2).
	Threshold float64
	// TypeFilter restricts candidate vertices to one type; "" matches all.
	TypeFilter string
	// MaxCandidates caps the blocking candidates scored per tuple
	// (default 64).
	MaxCandidates int
	// OneToOne enforces that each vertex matches at most one tuple
	// (greedy by score).
	OneToOne bool
}

func (c Config) withDefaults() Config {
	if c.Threshold == 0 {
		c.Threshold = 0.2
	}
	if c.MaxCandidates == 0 {
		c.MaxCandidates = 64
	}
	return c
}

// SimilarityMatcher is a JedAI-style rule-based matcher: token blocking on
// vertex labels and 1-hop neighbourhood labels, scored by weighted token
// overlap between a tuple's attribute values and a vertex's "document"
// (its label plus the labels one hop away, which is where graph entities
// keep properties that relations keep in columns).
type SimilarityMatcher struct {
	cfg Config
}

// NewSimilarityMatcher returns a matcher with the given configuration.
func NewSimilarityMatcher(cfg Config) *SimilarityMatcher {
	return &SimilarityMatcher{cfg: cfg.withDefaults()}
}

// vertexDoc is the token profile of one candidate vertex.
type vertexDoc struct {
	id     graph.VertexID
	labels map[string]float64 // token -> weight (own label 2, neighbour 1)
}

// Match computes f(S,G).
func (m *SimilarityMatcher) Match(s *rel.Relation, g *graph.Graph) []Match {
	docs, block := m.buildDocs(g)
	keyCol := s.Schema.KeyCol()
	var out []Match
	for ti, t := range s.Tuples {
		// Tuple token multiset.
		toks := map[string]float64{}
		for ci, v := range t {
			if v.IsNull() {
				continue
			}
			w := 1.0
			if ci == keyCol {
				w = 2.0
			}
			for _, tok := range embed.Tokenize(v.String()) {
				toks[tok] += w
			}
		}
		if len(toks) == 0 {
			continue
		}
		// Blocking: candidates share at least one token.
		candSet := map[int]int{}
		for tok := range toks {
			for _, di := range block[tok] {
				candSet[di]++
			}
		}
		type cand struct {
			di      int
			overlap int
		}
		cands := make([]cand, 0, len(candSet))
		for di, ov := range candSet {
			cands = append(cands, cand{di, ov})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].overlap != cands[j].overlap {
				return cands[i].overlap > cands[j].overlap
			}
			return docs[cands[i].di].id < docs[cands[j].di].id
		})
		if len(cands) > m.cfg.MaxCandidates {
			cands = cands[:m.cfg.MaxCandidates]
		}
		best, bestScore := -1, m.cfg.Threshold
		for _, c := range cands {
			sc := score(toks, docs[c.di].labels)
			if sc > bestScore || (sc == bestScore && best >= 0 && docs[c.di].id < docs[best].id) {
				best, bestScore = c.di, sc
			}
		}
		if best < 0 {
			continue
		}
		tid := rel.Null
		if keyCol >= 0 {
			tid = t[keyCol]
		}
		out = append(out, Match{TupleIdx: ti, TID: tid, Vertex: docs[best].id, Score: bestScore})
	}
	if m.cfg.OneToOne {
		out = enforceOneToOne(out)
	}
	return out
}

// buildDocs profiles every candidate vertex and builds the token block
// index.
func (m *SimilarityMatcher) buildDocs(g *graph.Graph) ([]vertexDoc, map[string][]int) {
	var docs []vertexDoc
	block := map[string][]int{}
	add := func(v graph.Vertex) {
		doc := vertexDoc{id: v.ID, labels: map[string]float64{}}
		for _, tok := range embed.Tokenize(v.Label) {
			doc.labels[tok] += 2
		}
		for _, he := range g.Out(v.ID) {
			for _, tok := range embed.Tokenize(g.Label(he.To)) {
				doc.labels[tok]++
			}
		}
		for _, he := range g.In(v.ID) {
			for _, tok := range embed.Tokenize(g.Label(he.To)) {
				doc.labels[tok] += 0.5
			}
		}
		if len(doc.labels) == 0 {
			return
		}
		di := len(docs)
		docs = append(docs, doc)
		for tok := range doc.labels {
			block[tok] = append(block[tok], di)
		}
	}
	if m.cfg.TypeFilter != "" {
		for _, id := range g.VerticesOfType(m.cfg.TypeFilter) {
			add(g.Vertex(id))
		}
	} else {
		g.Vertices(add)
	}
	return docs, block
}

// score is the weighted token overlap normalised by the tuple weight mass
// (how much of the tuple's information the vertex document covers). A hit
// is discounted by where the token lives in the document: a vertex's own
// label carries full evidence, a neighbour's label half — otherwise a hub
// (a company listing its products) ties with the entity itself on the
// entity's own name tokens.
func score(tuple map[string]float64, doc map[string]float64) float64 {
	var hit, total float64
	for tok, w := range tuple {
		total += w
		if dw, ok := doc[tok]; ok {
			f := dw / 2 // own-label tokens have weight 2 → factor 1
			if f > 1 {
				f = 1
			}
			hit += w * f
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

// enforceOneToOne keeps, for each vertex, only the highest-scoring match.
func enforceOneToOne(ms []Match) []Match {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Score != ms[j].Score {
			return ms[i].Score > ms[j].Score
		}
		return ms[i].TupleIdx < ms[j].TupleIdx
	})
	usedV := map[graph.VertexID]bool{}
	usedT := map[int]bool{}
	var out []Match
	for _, m := range ms {
		if usedV[m.Vertex] || usedT[m.TupleIdx] {
			continue
		}
		usedV[m.Vertex] = true
		usedT[m.TupleIdx] = true
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TupleIdx < out[j].TupleIdx })
	return out
}

// MatchSchema is the schema Rm(tid, vid) of §II-B.
func MatchSchema(name string) *rel.Schema {
	return rel.NewSchema(name, "tid",
		rel.Attribute{Name: "tid", Type: rel.KindString},
		rel.Attribute{Name: "vid", Type: rel.KindInt},
	)
}

// MatchRelation materialises matches as a relation of schema Rm(tid, vid).
func MatchRelation(name string, ms []Match) *rel.Relation {
	r := rel.NewRelation(MatchSchema(name))
	for _, m := range ms {
		r.InsertVals(m.TID, rel.I(int64(m.Vertex)))
	}
	return r
}
