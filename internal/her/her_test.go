package her

import (
	"testing"

	"semjoin/internal/graph"
	"semjoin/internal/rel"
)

// figure1 builds the product relation and product vertices of the paper's
// Figure 1, where HER must identify fd1 ↔ pid1 by comparing name, issuer
// and type, some of which are one hop away in the graph.
func figure1() (*rel.Relation, *graph.Graph, map[string]graph.VertexID) {
	s := rel.NewSchema("product", "pid",
		rel.Attribute{Name: "pid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "issuer", Type: rel.KindString},
		rel.Attribute{Name: "type", Type: rel.KindString},
	)
	r := rel.NewRelation(s)
	r.InsertVals(rel.S("fd1"), rel.S("GL ESG"), rel.S("GL"), rel.S("Funds"))
	r.InsertVals(rel.S("fd2"), rel.S("Beta"), rel.S("companyone"), rel.S("Stocks"))
	r.InsertVals(rel.S("fd4"), rel.S("RainForest"), rel.S("companytwo"), rel.S("Stocks"))

	g := graph.New()
	pid1 := g.AddVertex("pid1", "product")
	pid2 := g.AddVertex("pid2", "product")
	pid4 := g.AddVertex("pid4", "product")
	nameESG := g.AddVertex("GL ESG", "name")
	nameBeta := g.AddVertex("Beta", "name")
	nameRF := g.AddVertex("RainForest", "name")
	gl := g.AddVertex("GL", "company")
	c1 := g.AddVertex("companyone", "company")
	c2 := g.AddVertex("companytwo", "company")
	funds := g.AddVertex("Funds", "category")
	stocks := g.AddVertex("Stocks", "category")

	g.AddEdge(pid1, "name", nameESG)
	g.AddEdge(gl, "issue", pid1)
	g.AddEdge(pid1, "type", funds)
	g.AddEdge(pid2, "name", nameBeta)
	g.AddEdge(c1, "issue", pid2)
	g.AddEdge(pid2, "type", stocks)
	g.AddEdge(pid4, "name", nameRF)
	g.AddEdge(c2, "issue", pid4)
	g.AddEdge(pid4, "type", stocks)

	truth := map[string]graph.VertexID{"fd1": pid1, "fd2": pid2, "fd4": pid4}
	return r, g, truth
}

func TestSimilarityMatcherFindsTruth(t *testing.T) {
	r, g, truth := figure1()
	m := NewSimilarityMatcher(Config{TypeFilter: "product"})
	ms := m.Match(r, g)
	if len(ms) != 3 {
		t.Fatalf("matches = %d, want 3", len(ms))
	}
	for _, match := range ms {
		want := truth[match.TID.String()]
		if match.Vertex != want {
			t.Errorf("tuple %s matched vertex %d (%s), want %d",
				match.TID, match.Vertex, g.Label(match.Vertex), want)
		}
		if match.Score <= 0 || match.Score > 1 {
			t.Errorf("score out of range: %v", match.Score)
		}
	}
}

func TestSimilarityMatcherTypeFilter(t *testing.T) {
	r, g, _ := figure1()
	m := NewSimilarityMatcher(Config{TypeFilter: "category"})
	for _, match := range m.Match(r, g) {
		if g.Type(match.Vertex) != "category" {
			t.Fatal("type filter violated")
		}
	}
}

func TestSimilarityMatcherThreshold(t *testing.T) {
	r, g, _ := figure1()
	m := NewSimilarityMatcher(Config{Threshold: 0.99, TypeFilter: "product"})
	if got := m.Match(r, g); len(got) != 0 {
		t.Fatalf("high threshold should reject weak matches, got %d", len(got))
	}
}

func TestSimilarityMatcherOneToOne(t *testing.T) {
	// Two identical tuples compete for one vertex.
	s := rel.NewSchema("r", "id",
		rel.Attribute{Name: "id", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
	)
	r := rel.NewRelation(s)
	r.InsertVals(rel.S("t1"), rel.S("alpha"))
	r.InsertVals(rel.S("t2"), rel.S("alpha"))
	g := graph.New()
	g.AddVertex("alpha", "thing")

	many := NewSimilarityMatcher(Config{}).Match(r, g)
	if len(many) != 2 {
		t.Fatalf("without one-to-one both tuples should match: %d", len(many))
	}
	one := NewSimilarityMatcher(Config{OneToOne: true}).Match(r, g)
	if len(one) != 1 {
		t.Fatalf("one-to-one should keep a single match: %d", len(one))
	}
}

func TestSimilarityMatcherSkipsEmptyTuples(t *testing.T) {
	s := rel.NewSchema("r", "id", rel.Attribute{Name: "id", Type: rel.KindString})
	r := rel.NewRelation(s)
	r.InsertVals(rel.Null)
	g := graph.New()
	g.AddVertex("x", "")
	if got := NewSimilarityMatcher(Config{}).Match(r, g); len(got) != 0 {
		t.Fatal("all-null tuple should not match")
	}
}

func TestMatchRelation(t *testing.T) {
	ms := []Match{
		{TID: rel.S("fd1"), Vertex: 7},
		{TID: rel.S("fd2"), Vertex: 9},
	}
	r := MatchRelation("m", ms)
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if r.Get(r.Tuples[0], "tid").Str() != "fd1" || r.Get(r.Tuples[0], "vid").Int() != 7 {
		t.Fatalf("tuple = %v", r.Tuples[0])
	}
	if r.Schema.Key != "tid" {
		t.Fatal("match schema key should be tid")
	}
}

func TestOracleMatcher(t *testing.T) {
	r, g, truth := figure1()
	o := NewOracleMatcher(truth)
	ms := o.Match(r, g)
	if len(ms) != 3 {
		t.Fatalf("oracle matches = %d", len(ms))
	}
	for _, m := range ms {
		if truth[m.TID.String()] != m.Vertex {
			t.Fatal("oracle returned wrong vertex")
		}
	}
	// Deleted vertices are skipped.
	g.RemoveVertex(truth["fd1"])
	if got := o.Match(r, g); len(got) != 2 {
		t.Fatalf("oracle should skip dead vertices: %d", len(got))
	}
}

func TestNoisyMatcher(t *testing.T) {
	r, g, truth := figure1()
	base := NewOracleMatcher(truth)
	noisy := WithNoise(base, 1.0, 5) // corrupt everything
	ms := noisy.Match(r, g)
	if len(ms) != 3 {
		t.Fatalf("noisy matches = %d", len(ms))
	}
	for _, m := range ms {
		if m.Vertex == truth[m.TID.String()] {
			t.Fatal("eta=1 should corrupt every match")
		}
	}
	clean := WithNoise(base, 0, 5).Match(r, g)
	for _, m := range clean {
		if m.Vertex != truth[m.TID.String()] {
			t.Fatal("eta=0 should corrupt nothing")
		}
	}
	// Partial corruption count.
	r2, g2, truth2 := figure1()
	half := WithNoise(NewOracleMatcher(truth2), 0.34, 6).Match(r2, g2)
	bad := 0
	for _, m := range half {
		if m.Vertex != truth2[m.TID.String()] {
			bad++
		}
	}
	if bad != 1 { // 3 * 0.34 = 1.02 → 1
		t.Fatalf("corrupted = %d, want 1", bad)
	}
	_ = g2
}
