package her

import (
	"semjoin/internal/graph"
	"semjoin/internal/mat"
	"semjoin/internal/rel"
)

// NoisyMatcher wraps a Matcher and corrupts a fraction η of its matches by
// redirecting them to uniformly random other vertices, simulating HER
// mismatch for the cascading-error study of Exp-2(c) (Fig 5(g)).
type NoisyMatcher struct {
	inner Matcher
	eta   float64
	seed  uint64
}

// WithNoise wraps m so that a fraction eta of matches point at wrong
// vertices.
func WithNoise(m Matcher, eta float64, seed uint64) *NoisyMatcher {
	return &NoisyMatcher{inner: m, eta: eta, seed: seed}
}

// Match runs the inner matcher and injects mismatches.
func (n *NoisyMatcher) Match(s *rel.Relation, g *graph.Graph) []Match {
	ms := n.inner.Match(s, g)
	if n.eta <= 0 || len(ms) == 0 {
		return ms
	}
	var ids []graph.VertexID
	g.Vertices(func(v graph.Vertex) { ids = append(ids, v.ID) })
	if len(ids) < 2 {
		return ms
	}
	rng := mat.NewRNG(n.seed)
	corrupt := int(float64(len(ms)) * n.eta)
	perm := rng.Perm(len(ms))
	for i := 0; i < corrupt && i < len(perm); i++ {
		mi := perm[i]
		// Pick any vertex other than the true match.
		v := ids[rng.Intn(len(ids))]
		for v == ms[mi].Vertex {
			v = ids[rng.Intn(len(ids))]
		}
		ms[mi].Vertex = v
	}
	return ms
}

// OracleMatcher matches tuples to vertices via a caller-provided ground
// truth (tid value -> vertex). Dataset generators expose exact alignments,
// letting experiments isolate RExt quality from HER quality ("assuming HER
// and RExt are accurate", Exp-2(II)).
type OracleMatcher struct {
	truth map[string]graph.VertexID
}

// NewOracleMatcher builds an oracle over the tid→vertex ground truth.
func NewOracleMatcher(truth map[string]graph.VertexID) *OracleMatcher {
	return &OracleMatcher{truth: truth}
}

// Extend registers one additional ground-truth pair. Update streams in
// property-based tests use it to keep the oracle aligned as generated
// relation updates introduce tuples for fresh graph vertices.
func (o *OracleMatcher) Extend(tid string, v graph.VertexID) {
	o.truth[tid] = v
}

// Match returns the ground-truth pairs for tuples whose tid is known. For
// unkeyed relations (intermediate query results) it scans every attribute
// for a value present in the ground truth, so Example-10-style sub-query
// outputs that carry a base id in some column still align.
func (o *OracleMatcher) Match(s *rel.Relation, g *graph.Graph) []Match {
	keyCol := s.Schema.KeyCol()
	var out []Match
	for ti, t := range s.Tuples {
		var tid rel.Value
		var vertex graph.VertexID = graph.NoVertex
		if keyCol >= 0 {
			tid = t[keyCol]
			if tid.IsNull() {
				continue
			}
			if v, ok := o.truth[tid.String()]; ok {
				vertex = v
			}
		} else {
			for _, val := range t {
				if val.IsNull() {
					continue
				}
				if v, ok := o.truth[val.String()]; ok {
					tid, vertex = val, v
					break
				}
			}
		}
		if vertex != graph.NoVertex && g.Live(vertex) {
			out = append(out, Match{TupleIdx: ti, TID: tid, Vertex: vertex, Score: 1})
		}
	}
	return out
}
