// Bulk ingestion: the OpIngest wire op applies update batches to a
// WAL-backed durable store while queries keep flowing on other
// sessions. Ingest requests pass the same admission controller as
// queries, so a loaded server sheds writes and reads by one policy.
package server

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"semjoin/internal/core"
	"semjoin/internal/graph"
	"semjoin/internal/rel"
)

// ingest admits and applies one OpIngest batch. The store's own lock
// orders concurrent writers; gSQL queries running through the engine
// hold the durable set's read lock, so a batch never interleaves with
// a half-read query.
func (ss *session) ingest(ctx context.Context, in inbound) Response {
	req := in.req
	release, err := ss.ctl.Admit(ctx)
	if err != nil {
		code := "error"
		if errors.Is(err, ErrServerBusy) {
			code = "busy"
		}
		ss.log.Warn("ingest shed", "reason", shedReason(err), "base", req.Base)
		return errResp(req.ID, code, err)
	}
	defer release()

	st := ss.durableStore(req.Base)
	if st == nil {
		return errResp(req.ID, "error",
			fmt.Errorf("server: no durable store %q (OPEN it first)", req.Base))
	}
	start := time.Now()
	if err := applyIngest(ctx, st, req); err != nil {
		ss.reg.Counter("server_ingest_errors_total").Inc()
		return errResp(req.ID, "error", err)
	}
	elapsed := time.Since(start)
	ss.reg.Counter("server_ingest_total").Inc()
	ss.reg.Histogram("server_ingest_seconds", nil).Observe(elapsed.Seconds())
	return Response{
		ID: req.ID, OK: true,
		Seq:       st.LastSeq(),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
}

// durableStore resolves an opened store by base name (nil-safe at
// every level: engines without a catalog simply have no stores).
func (ss *session) durableStore(base string) *core.DurableStore {
	if ss.eng == nil || ss.eng.Cat == nil {
		return nil
	}
	return ss.eng.Cat.Durable.Get(base)
}

// applyIngest decodes and applies one batch per req.Kind.
func applyIngest(ctx context.Context, st *core.DurableStore, req Request) error {
	switch req.Kind {
	case "graph":
		batch, err := decodeIngestBatch(req.Updates)
		if err != nil {
			return err
		}
		_, err = st.ApplyGraphUpdateContext(ctx, batch)
		return err
	case "relation":
		d, err := relationFromRows(st.Base().Spec.D.Schema, req.Rows)
		if err != nil {
			return err
		}
		_, err = st.ApplyRelationUpdateContext(ctx, d)
		return err
	case "keywords":
		if len(req.Keywords) == 0 {
			return fmt.Errorf("server: ingest kind %q needs keywords", req.Kind)
		}
		_, err := st.UpdateKeywordsContext(ctx, req.Keywords)
		return err
	default:
		return fmt.Errorf("server: unknown ingest kind %q (want graph, relation or keywords)", req.Kind)
	}
}

// decodeIngestBatch maps wire updates onto a graph.Batch.
func decodeIngestBatch(ups []IngestUpdate) (graph.Batch, error) {
	if len(ups) == 0 {
		return nil, fmt.Errorf("server: ingest kind \"graph\" needs updates")
	}
	batch := make(graph.Batch, 0, len(ups))
	for i, u := range ups {
		var op graph.UpdateOp
		switch u.Op {
		case "insert_edge":
			op = graph.InsertEdge
		case "delete_edge":
			op = graph.DeleteEdge
		case "insert_vertex":
			op = graph.InsertVertex
		case "delete_vertex":
			op = graph.DeleteVertex
		default:
			return nil, fmt.Errorf("server: update %d: unknown op %q", i, u.Op)
		}
		batch = append(batch, graph.Update{
			Op: op,
			Edge: graph.Edge{
				From:  graph.VertexID(u.From),
				Label: u.Label,
				To:    graph.VertexID(u.To),
			},
			Label: u.Label,
			Type:  u.Type,
		})
	}
	return batch, nil
}

// relationFromRows builds a replacement relation over the base's own
// schema, parsing each cell by its attribute kind. Row widths must
// match the schema exactly — a short row is a client bug, not data.
func relationFromRows(schema *rel.Schema, rows [][]string) (*rel.Relation, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("server: ingest kind \"relation\" needs rows")
	}
	out := rel.NewRelation(schema)
	for ri, row := range rows {
		if len(row) != len(schema.Attrs) {
			return nil, fmt.Errorf("server: row %d has %d values, schema %s has %d attributes",
				ri, len(row), schema.Name, len(schema.Attrs))
		}
		vals := make([]rel.Value, len(row))
		for ci, cell := range row {
			switch schema.Attrs[ci].Type {
			case rel.KindInt:
				n, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("server: row %d, attribute %s: %w", ri, schema.Attrs[ci].Name, err)
				}
				vals[ci] = rel.I(n)
			case rel.KindFloat:
				f, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return nil, fmt.Errorf("server: row %d, attribute %s: %w", ri, schema.Attrs[ci].Name, err)
				}
				vals[ci] = rel.F(f)
			default:
				vals[ci] = rel.S(cell)
			}
		}
		out.InsertVals(vals...)
	}
	return out, nil
}
