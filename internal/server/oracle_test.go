package server

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"semjoin/internal/gsql/difftest"
)

// wireBag canonicalizes a wire response into a comparable bag string:
// the column list plus the sorted multiset of row renderings.
func wireBag(resp Response) string {
	rows := make([]string, len(resp.Rows))
	for i, r := range resp.Rows {
		rows[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(rows)
	return strings.Join(resp.Columns, ",") + "\n" + strings.Join(rows, "\n")
}

// TestConcurrentSessionsMatchSerial is the wire-level concurrency
// oracle: a seeded query set is first run through one session
// serially, then through N concurrent sessions — with the sessions
// deliberately diverging on SET PARALLELISM / SET VECTORIZED — and
// every concurrent result must be bag-equal to the serial one. Run
// under -race this covers the full stack: wire decode, admission,
// per-session engines, the shared catalog, and response encoding.
func TestConcurrentSessionsMatchSerial(t *testing.T) {
	const (
		sessions   = 8
		numQueries = 30
	)
	srv := newTestServer(t, 17, Limits{}, nil)

	gen := difftest.NewGen(17 ^ 0x5eed)
	queries := make([]string, numQueries)
	for i := range queries {
		queries[i] = gen.Query()
	}

	// Serial reference: one session, parallelism 1, default executor.
	ref := dialPipe(t, srv)
	ref.mustRows("set parallelism 1")
	want := make([]string, len(queries))
	wantErr := make([]bool, len(queries))
	for i, q := range queries {
		resp := ref.query(q)
		if !resp.OK {
			if resp.Code != "error" {
				t.Fatalf("serial query %q: unexpected code %q (%s)", q, resp.Code, resp.Error)
			}
			wantErr[i] = true
			continue
		}
		want[i] = wireBag(resp)
	}

	var wg sync.WaitGroup
	for w := 0; w < sessions; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := dialPipe(t, srv)
			// Sessions diverge on their knobs; the results must not.
			c.mustRows(fmt.Sprintf("set parallelism %d", 1+w%4))
			if w%2 == 1 {
				c.mustRows("set vectorized off")
			}
			for k := 0; k < len(queries); k++ {
				i := (k + w) % len(queries)
				resp := c.query(queries[i])
				if wantErr[i] {
					if resp.OK {
						t.Errorf("worker %d query %q: serial errored, concurrent succeeded", w, queries[i])
					}
					continue
				}
				if !resp.OK {
					t.Errorf("worker %d query %q: %s (%s)", w, queries[i], resp.Error, resp.Code)
					continue
				}
				if got := wireBag(resp); got != want[i] {
					t.Errorf("worker %d query %q diverged from serial:\n got: %q\nwant: %q",
						w, queries[i], got, want[i])
				}
			}
		}(w)
	}
	wg.Wait()
}
