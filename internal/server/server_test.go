package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"semjoin/internal/gsql/difftest"
	"semjoin/internal/obs"
)

// newTestServer boots a server over a seeded difftest fixture with an
// isolated registry, registered for shutdown at test end.
func newTestServer(t *testing.T, seed int64, lim Limits, sig Signals) *Server {
	t.Helper()
	fix, err := difftest.Build(seed)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Cat: fix.Cat, Reg: obs.NewRegistry(), Limits: lim, Signals: sig})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv
}

// client is a test-side wire client over an in-process pipe.
type client struct {
	t    *testing.T
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// dialPipe connects a new session and consumes the hello banner.
func dialPipe(t *testing.T, srv *Server) *client {
	t.Helper()
	c := dialPipeRaw(t, srv)
	hello := c.read()
	if !hello.OK || hello.Code != "hello" || hello.Session == 0 {
		t.Fatalf("bad banner: %+v", hello)
	}
	return c
}

// dialPipeRaw connects without reading the banner (session-cap tests
// need to see the rejection banner themselves).
func dialPipeRaw(t *testing.T, srv *Server) *client {
	t.Helper()
	cli, srvEnd := net.Pipe()
	srv.ServeConn(srvEnd)
	t.Cleanup(func() { _ = cli.Close() })
	sc := bufio.NewScanner(cli)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	return &client{t: t, conn: cli, enc: json.NewEncoder(cli), sc: sc}
}

// read scans one response line.
func (c *client) read() Response {
	c.t.Helper()
	if !c.sc.Scan() {
		c.t.Fatalf("connection closed early: %v", c.sc.Err())
	}
	var resp Response
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		c.t.Fatalf("bad response %q: %v", c.sc.Text(), err)
	}
	return resp
}

// roundTrip sends one request and reads its response.
func (c *client) roundTrip(req Request) Response {
	c.t.Helper()
	if err := c.enc.Encode(req); err != nil {
		c.t.Fatalf("send: %v", err)
	}
	return c.read()
}

// query runs one statement, failing the test on a wire-level error.
func (c *client) query(q string) Response {
	c.t.Helper()
	return c.roundTrip(Request{Op: OpQuery, Query: q})
}

// mustRows runs a statement and requires success.
func (c *client) mustRows(q string) Response {
	c.t.Helper()
	resp := c.query(q)
	if !resp.OK {
		c.t.Fatalf("query %q: %s (%s)", q, resp.Error, resp.Code)
	}
	return resp
}

func TestServerQueryRoundTrip(t *testing.T) {
	srv := newTestServer(t, 3, Limits{}, nil)
	c := dialPipe(t, srv)
	resp := c.mustRows("select pid, price from product where price >= 60 order by pid limit 3")
	if len(resp.Columns) != 2 || resp.Columns[0] != "pid" || resp.Columns[1] != "price" {
		t.Fatalf("columns = %v", resp.Columns)
	}
	if resp.RowsTotal != len(resp.Rows) {
		t.Fatalf("rows_total %d != len(rows) %d", resp.RowsTotal, len(resp.Rows))
	}
	if len(resp.Rows) == 0 || len(resp.Rows) > 3 {
		t.Fatalf("rows = %v", resp.Rows)
	}
	if resp.ElapsedMS <= 0 {
		t.Fatalf("elapsed_ms = %v", resp.ElapsedMS)
	}
	// IDs echo; errors carry code "error" and leave the session usable.
	if resp := c.roundTrip(Request{ID: 42, Op: OpQuery, Query: "select nope from nothing"}); resp.OK || resp.ID != 42 || resp.Code != "error" {
		t.Fatalf("error response: %+v", resp)
	}
	if resp := c.roundTrip(Request{Op: OpPing}); !resp.OK {
		t.Fatalf("ping after error: %+v", resp)
	}
}

func TestServerPreparedStatements(t *testing.T) {
	srv := newTestServer(t, 3, Limits{}, nil)
	c := dialPipe(t, srv)
	if resp := c.roundTrip(Request{Op: OpPrepare, Name: "by_price",
		Query: "select pid from product where price >= $1 and risk = $2"}); !resp.OK {
		t.Fatalf("prepare: %+v", resp)
	}
	resp := c.roundTrip(Request{Op: OpExec, Name: "by_price", Args: []any{70, "low"}})
	if !resp.OK {
		t.Fatalf("exec: %+v", resp)
	}
	want := c.mustRows("select pid from product where price >= 70 and risk = 'low'")
	if len(resp.Rows) != len(want.Rows) {
		t.Fatalf("exec rows %d != literal rows %d", len(resp.Rows), len(want.Rows))
	}

	// Binding errors are client errors, not session killers.
	cases := []Request{
		{Op: OpExec, Name: "missing"},                                      // unknown statement
		{Op: OpExec, Name: "by_price", Args: []any{70}},                    // too few args
		{Op: OpExec, Name: "by_price", Args: []any{70, "low", "huh"}},      // unused arg
		{Op: OpPrepare, Name: "", Query: "select 1"},                       // no name
		{Op: OpPrepare, Name: "x"},                                         // no query
		{Op: OpExec, Name: "by_price", Args: []any{nil, map[string]any{}}}, // unbindable
	}
	for _, req := range cases {
		if resp := c.roundTrip(req); resp.OK {
			t.Fatalf("request %+v should fail", req)
		}
	}
	if resp := c.roundTrip(Request{Op: OpPing}); !resp.OK {
		t.Fatal("session unusable after binding errors")
	}
}

// TestBindParams covers the substitution corner cases directly.
func TestBindParams(t *testing.T) {
	ok := []struct {
		in, want string
		args     []any
	}{
		{"select * from t where a = $1", "select * from t where a = 'x'", []any{"x"}},
		{"where a = $1 and b = $1", "where a = 7 and b = 7", []any{float64(7)}},
		{"where a = $2 and b = $1", "where a = 'y' and b = 'x'", []any{"x", "y"}},
		{"where s = 'lit $1' and a = $1", "where s = 'lit $1' and a = 1", []any{float64(1)}},
		{"where s = 'it''s $1' and a = $1", "where s = 'it''s $1' and a = 2", []any{float64(2)}},
		{"where a = $1", "where a = 'o''brien'", []any{"o'brien"}},
		{"where a = $1", "where a = 1.5", []any{1.5}},
	}
	for _, c := range ok {
		got, err := bindParams(c.in, c.args)
		if err != nil || got != c.want {
			t.Fatalf("bindParams(%q, %v) = %q, %v; want %q", c.in, c.args, got, err, c.want)
		}
	}
	bad := []struct {
		in   string
		args []any
	}{
		{"where a = $1", nil},              // no arg for placeholder
		{"where a = $3", []any{1.0, 2.0}},  // out of range
		{"where a = $0", []any{1.0}},       // $0 invalid
		{"where a = $1", []any{1.0, 2.0}},  // unused arg
		{"where a = 'open $1", []any{1.0}}, // unterminated literal
		{"where a = $1", []any{[]any{1}}},  // unbindable type
	}
	for _, c := range bad {
		if got, err := bindParams(c.in, c.args); err == nil {
			t.Fatalf("bindParams(%q, %v) = %q, want error", c.in, c.args, got)
		}
	}
}

func TestServerUnknownOpAndMalformedLine(t *testing.T) {
	srv := newTestServer(t, 3, Limits{}, nil)
	c := dialPipe(t, srv)
	if resp := c.roundTrip(Request{Op: "launch"}); resp.OK || !strings.Contains(resp.Error, "unknown op") {
		t.Fatalf("unknown op: %+v", resp)
	}
	// A malformed line gets one error response, then the connection
	// closes (framing is unrecoverable on a line protocol).
	if _, err := c.conn.Write([]byte("{this is not json\n")); err != nil {
		t.Fatal(err)
	}
	resp := c.read()
	if resp.OK || !strings.Contains(resp.Error, "malformed") {
		t.Fatalf("malformed line: %+v", resp)
	}
	if c.sc.Scan() {
		t.Fatalf("connection should close after malformed line, got %q", c.sc.Text())
	}
}

func TestServerCloseOp(t *testing.T) {
	srv := newTestServer(t, 3, Limits{}, nil)
	c := dialPipe(t, srv)
	if resp := c.roundTrip(Request{Op: OpClose}); !resp.OK {
		t.Fatalf("close: %+v", resp)
	}
	if c.sc.Scan() {
		t.Fatal("connection should close after close op")
	}
	waitSessions(t, srv, 0)
}

// TestServerSessionCap: connections beyond MaxSessions are rejected
// with a busy banner and do not occupy a session.
func TestServerSessionCap(t *testing.T) {
	srv := newTestServer(t, 3, Limits{MaxSessions: 2}, nil)
	c1, c2 := dialPipe(t, srv), dialPipe(t, srv)
	_ = c2
	c3 := dialPipeRaw(t, srv)
	banner := c3.read()
	if banner.OK || banner.Code != "busy" || !strings.Contains(banner.Error, "sessions") {
		t.Fatalf("over-cap banner: %+v", banner)
	}
	if c3.sc.Scan() {
		t.Fatal("over-cap connection should be closed")
	}
	// Dropping a session frees the slot.
	_ = c1.conn.Close()
	waitSessions(t, srv, 1)
	c4 := dialPipe(t, srv)
	if resp := c4.roundTrip(Request{Op: OpPing}); !resp.OK {
		t.Fatalf("ping on freed slot: %+v", resp)
	}
}

// TestServerShedsOverWire: with the gauge source reporting overload,
// a query is rejected with code "busy" on the wire and the session
// stays usable.
func TestServerShedsOverWire(t *testing.T) {
	sig := &fakeSignals{}
	srv := newTestServer(t, 3, Limits{MaxConcurrent: 1, MaxQueue: 2}, sig)
	c := dialPipe(t, srv)
	// Occupy the only slot directly, then claim the queue is full.
	release, err := srv.Controller().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sig.queued.Store(2)
	resp := c.query("select pid from product")
	if resp.OK || resp.Code != "busy" || !strings.Contains(resp.Error, "server busy") {
		t.Fatalf("shed response: %+v", resp)
	}
	sig.queued.Store(0)
	release()
	if resp := c.mustRows("select pid from product"); resp.RowsTotal == 0 {
		t.Fatal("no rows after load subsided")
	}
}

// TestServerTCPServe exercises the real listener path end to end:
// Serve on a TCP socket, one query, Shutdown unblocks Serve.
func TestServerTCPServe(t *testing.T) {
	fix, err := difftest.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Cat: fix.Cat, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	served := make(chan error, 1)
	go func() { served <- srv.Serve(ln) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	c := &client{t: t, conn: conn, enc: json.NewEncoder(conn), sc: sc}
	if banner := c.read(); banner.Code != "hello" {
		t.Fatalf("banner: %+v", banner)
	}
	if resp := c.mustRows("select cid from customer order by cid limit 1"); len(resp.Rows) != 1 {
		t.Fatalf("rows: %v", resp.Rows)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v after Shutdown, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
}

// waitSessions polls until the live session count reaches want.
func waitSessions(t *testing.T, srv *Server, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Sessions() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("sessions = %d, want %d", srv.Sessions(), want)
}
