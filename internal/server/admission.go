// Admission control: every request entering the server passes through
// a Controller before it may touch the engine. The controller admits
// up to MaxConcurrent queries, queues a bounded number of waiters
// beyond that, and sheds everything else with a typed BusyError — the
// server degrades to fast rejections under overload instead of
// accumulating goroutines until it collapses.
//
// Decisions are driven by load signals, not internal guesses: the
// controller publishes its own occupancy and queue depth as obs
// gauges (server_queries_active, server_queue_depth) and reads the
// decision inputs back through a Signals source, which by default
// reads those same gauges plus the engine's slow-query counter. Tests
// substitute a fake Signals source to exercise every decision branch
// deterministically.
package server

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"

	"semjoin/internal/obs"
)

// BusyError is the typed admission rejection: the server is saturated
// and chose to shed this request rather than queue it. Clients see it
// on the wire as code "busy" and should back off and retry.
type BusyError struct {
	// Reason names the tripped limit: "queue_full", "queue_timeout",
	// "slow_queries" or "sessions".
	Reason string
}

// Error renders the busy condition with its reason.
func (e *BusyError) Error() string { return "server busy: " + e.Reason }

// Is matches any *BusyError, so errors.Is(err, ErrServerBusy) detects
// admission rejections regardless of reason.
func (e *BusyError) Is(target error) bool {
	_, ok := target.(*BusyError)
	return ok
}

// ErrServerBusy is the sentinel for errors.Is checks against
// admission rejections.
var ErrServerBusy = &BusyError{Reason: "busy"}

// Signals is one point-in-time load reading — the gauges an admission
// decision consults. The production source reads the obs registry;
// tests fake it.
type Signals interface {
	// Active is the number of queries executing right now (worker
	// occupancy).
	Active() int64
	// Queued is the number of requests waiting for an execution slot.
	Queued() int64
	// SlowTotal is the cumulative slow-query count; the controller
	// differentiates it into a rate.
	SlowTotal() int64
}

// regSignals reads the load gauges the controller itself publishes,
// plus the engine's slow-query counter, from one registry.
type regSignals struct{ reg *obs.Registry }

func (s regSignals) Active() int64    { return s.reg.Gauge("server_queries_active").Value() }
func (s regSignals) Queued() int64    { return s.reg.Gauge("server_queue_depth").Value() }
func (s regSignals) SlowTotal() int64 { return s.reg.Counter("gsql_slow_queries_total").Value() }

// Limits bounds what the controller admits. The zero value selects
// sensible defaults via withDefaults.
type Limits struct {
	// MaxConcurrent is the number of queries that may execute at once;
	// <= 0 means 2×GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue is the number of requests that may wait for a slot
	// beyond MaxConcurrent; <= 0 means 16×MaxConcurrent. Requests
	// arriving with the queue full are shed.
	MaxQueue int
	// QueueWait is the longest a request may wait in the queue before
	// being shed; <= 0 means 5s.
	QueueWait time.Duration
	// SlowShedPerSec sheds new load while the engine-wide slow-query
	// rate (differentiated from gsql_slow_queries_total) exceeds this
	// many per second; 0 disables slow-query shedding.
	SlowShedPerSec float64
	// MaxSessions caps concurrently connected sessions; <= 0 means
	// 4096. The server rejects further connections with a "sessions"
	// BusyError banner.
	MaxSessions int
}

// withDefaults resolves zero fields to their defaults.
func (l Limits) withDefaults() Limits {
	if l.MaxConcurrent <= 0 {
		l.MaxConcurrent = 2 * runtime.GOMAXPROCS(0)
	}
	if l.MaxQueue <= 0 {
		l.MaxQueue = 16 * l.MaxConcurrent
	}
	if l.QueueWait <= 0 {
		l.QueueWait = 5 * time.Second
	}
	if l.MaxSessions <= 0 {
		l.MaxSessions = 4096
	}
	return l
}

// Controller is the admission gate. All methods are goroutine-safe.
type Controller struct {
	lim Limits
	reg *obs.Registry
	sig Signals
	now func() time.Time

	sem chan struct{} // execution slots, cap MaxConcurrent

	// Slow-rate sampling state: the last counter reading and when it
	// was taken, updated lock-free (monotonic enough for shedding).
	lastSlow   atomic.Int64
	lastSlowAt atomic.Int64  // unix nanos
	slowRateMu chan struct{} // 1-slot mutex so one sampler updates at a time
}

// NewController builds a controller over reg. A nil sig installs the
// registry-backed source (the production wiring); tests pass a fake.
func NewController(lim Limits, reg *obs.Registry, sig Signals) *Controller {
	if reg == nil {
		reg = obs.Default
	}
	lim = lim.withDefaults()
	if sig == nil {
		sig = regSignals{reg}
	}
	c := &Controller{
		lim:        lim,
		reg:        reg,
		sig:        sig,
		now:        time.Now,
		sem:        make(chan struct{}, lim.MaxConcurrent),
		slowRateMu: make(chan struct{}, 1),
	}
	c.lastSlowAt.Store(c.now().UnixNano())
	// Materialise the decision gauges so SHOW METRICS and /metrics
	// expose them from the first scrape, before any traffic.
	reg.Gauge("server_queries_active").Set(0)
	reg.Gauge("server_queue_depth").Set(0)
	return c
}

// Limits returns the resolved limits the controller enforces.
func (c *Controller) Limits() Limits { return c.lim }

// Admit gates one request. It returns a release function that must be
// called when the query finishes, or a *BusyError when the request is
// shed (queue full, queue wait exceeded, or slow-query overload), or
// ctx's error when the caller went away while queued.
func (c *Controller) Admit(ctx context.Context) (release func(), err error) {
	// Fast path: a free slot admits immediately.
	select {
	case c.sem <- struct{}{}:
		return c.admitted(), nil
	default:
	}
	// Saturated. Shed outright when the queue is already at capacity
	// or the slow-query rate says the engine is drowning — a queued
	// request would only time out later, wasting the client's wait.
	if c.sig.Queued() >= int64(c.lim.MaxQueue) {
		return nil, c.shed("queue_full")
	}
	if c.lim.SlowShedPerSec > 0 && c.slowRate() > c.lim.SlowShedPerSec {
		return nil, c.shed("slow_queries")
	}
	// Queue: wait for a slot, bounded by QueueWait and ctx.
	c.reg.Counter("server_queued_total").Inc()
	c.reg.Gauge("server_queue_depth").Add(1)
	defer c.reg.Gauge("server_queue_depth").Add(-1)
	timer := time.NewTimer(c.lim.QueueWait)
	defer timer.Stop()
	select {
	case c.sem <- struct{}{}:
		return c.admitted(), nil
	case <-timer.C:
		return nil, c.shed("queue_timeout")
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// admitted records an admission and returns its paired release.
func (c *Controller) admitted() func() {
	c.reg.Counter("server_admitted_total").Inc()
	c.reg.Gauge("server_queries_active").Add(1)
	var once atomic.Bool
	return func() {
		if !once.CompareAndSwap(false, true) {
			return
		}
		c.reg.Gauge("server_queries_active").Add(-1)
		<-c.sem
	}
}

// shed counts one rejection and returns its typed error.
func (c *Controller) shed(reason string) *BusyError {
	c.reg.Counter("server_shed_total").Inc()
	c.reg.Counter("server_shed_total", "reason", reason).Inc()
	return &BusyError{Reason: reason}
}

// slowRate differentiates the slow-query counter into a per-second
// rate over the window since the previous sample. Samples closer than
// 100ms apart reuse the previous reading's rate of 0 — the signal is
// for sustained overload, not single spikes.
func (c *Controller) slowRate() float64 {
	now := c.now().UnixNano()
	total := c.sig.SlowTotal()
	select {
	case c.slowRateMu <- struct{}{}:
	default:
		return 0 // another admission is sampling; don't double-count
	}
	last, lastAt := c.lastSlow.Load(), c.lastSlowAt.Load()
	elapsed := time.Duration(now - lastAt)
	if elapsed < 100*time.Millisecond {
		<-c.slowRateMu
		return 0
	}
	c.lastSlow.Store(total)
	c.lastSlowAt.Store(now)
	<-c.slowRateMu
	return float64(total-last) / elapsed.Seconds()
}
