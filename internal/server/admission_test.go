package server

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"semjoin/internal/gsql"
	"semjoin/internal/gsql/difftest"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// fakeSignals is a hand-cranked gauge source: tests set the load the
// controller believes it is under, independent of what it actually is.
type fakeSignals struct {
	active, queued, slow atomic.Int64
}

func (f *fakeSignals) Active() int64    { return f.active.Load() }
func (f *fakeSignals) Queued() int64    { return f.queued.Load() }
func (f *fakeSignals) SlowTotal() int64 { return f.slow.Load() }

func TestAdmitFastPathAndRelease(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewController(Limits{MaxConcurrent: 2}, reg, &fakeSignals{})
	rel1, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("server_queries_active").Value(); got != 1 {
		t.Fatalf("active gauge after admit: %d, want 1", got)
	}
	rel1()
	rel1() // release must be idempotent
	if got := reg.Gauge("server_queries_active").Value(); got != 0 {
		t.Fatalf("active gauge after release: %d, want 0", got)
	}
	if got := reg.Counter("server_admitted_total").Value(); got != 1 {
		t.Fatalf("admitted counter: %d, want 1", got)
	}
}

// TestAdmitQueuesBelowThreshold pins the backpressure side: with the
// slots full but the queue below MaxQueue, a request waits instead of
// being rejected, and is admitted as soon as a slot frees.
func TestAdmitQueuesBelowThreshold(t *testing.T) {
	reg := obs.NewRegistry()
	sig := &fakeSignals{}
	c := NewController(Limits{MaxConcurrent: 1, MaxQueue: 4, QueueWait: 5 * time.Second}, reg, sig)
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r2, err := c.Admit(context.Background())
		if err == nil {
			r2()
		}
		got <- err
	}()
	// The second request must be queued, not shed.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("server_queued_total").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := reg.Counter("server_queued_total").Value(); n != 1 {
		t.Fatalf("queued counter: %d, want 1", n)
	}
	if n := reg.Counter("server_shed_total").Value(); n != 0 {
		t.Fatalf("shed counter while queuing: %d, want 0", n)
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued request should be admitted after release, got %v", err)
	}
}

// TestAdmitShedsAboveQueueThreshold: when the gauge source reports the
// queue at capacity, a saturated controller sheds immediately with the
// typed busy error instead of queuing.
func TestAdmitShedsAboveQueueThreshold(t *testing.T) {
	reg := obs.NewRegistry()
	sig := &fakeSignals{}
	c := NewController(Limits{MaxConcurrent: 1, MaxQueue: 4}, reg, sig)
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	sig.queued.Store(4) // gauge says: queue full
	_, err = c.Admit(context.Background())
	if err == nil {
		t.Fatal("want shed, got admission")
	}
	var busy *BusyError
	if !errors.As(err, &busy) {
		t.Fatalf("want *BusyError, got %T: %v", err, err)
	}
	if busy.Reason != "queue_full" {
		t.Fatalf("reason = %q, want queue_full", busy.Reason)
	}
	if !errors.Is(err, ErrServerBusy) {
		t.Fatal("errors.Is(err, ErrServerBusy) = false")
	}
	if n := reg.Counter("server_shed_total").Value(); n != 1 {
		t.Fatalf("shed counter: %d, want 1", n)
	}
	if n := reg.Counter(`server_shed_total`, "reason", "queue_full").Value(); n != 1 {
		t.Fatalf("shed-by-reason counter: %d, want 1", n)
	}
}

// TestAdmitQueueTimeoutSheds: a queued request that never gets a slot
// is shed with reason queue_timeout once QueueWait expires.
func TestAdmitQueueTimeoutSheds(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewController(Limits{MaxConcurrent: 1, MaxQueue: 4, QueueWait: 20 * time.Millisecond}, reg, &fakeSignals{})
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = c.Admit(context.Background())
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Reason != "queue_timeout" {
		t.Fatalf("want queue_timeout BusyError, got %v", err)
	}
	if got := reg.Gauge("server_queue_depth").Value(); got != 0 {
		t.Fatalf("queue depth gauge after timeout: %d, want 0", got)
	}
}

// TestAdmitShedsOnSlowQueryRate: the slow-query counter climbing fast
// enough trips the overload signal and sheds saturated arrivals.
func TestAdmitShedsOnSlowQueryRate(t *testing.T) {
	reg := obs.NewRegistry()
	sig := &fakeSignals{}
	c := NewController(Limits{MaxConcurrent: 1, MaxQueue: 100, SlowShedPerSec: 5}, reg, sig)
	// Fix the clock one second after construction and report 100 slow
	// queries accumulated in that window: rate 100/s >> 5/s.
	base := time.Now()
	c.now = func() time.Time { return base.Add(time.Second) }
	sig.slow.Store(100)
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	_, err = c.Admit(context.Background())
	var busy *BusyError
	if !errors.As(err, &busy) || busy.Reason != "slow_queries" {
		t.Fatalf("want slow_queries BusyError, got %v", err)
	}
}

// TestAdmitHonorsContext: a caller that disappears while queued gets
// its context error, not a busy error, and the queue gauge drains.
func TestAdmitHonorsContext(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewController(Limits{MaxConcurrent: 1, MaxQueue: 4, QueueWait: 5 * time.Second}, reg, &fakeSignals{})
	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	_, err = c.Admit(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if errors.Is(err, ErrServerBusy) {
		t.Fatal("a cancelled wait must not classify as busy")
	}
	if got := reg.Gauge("server_queue_depth").Value(); got != 0 {
		t.Fatalf("queue depth gauge after cancel: %d, want 0", got)
	}
}

// TestShowMetricsCountsQueuedAndShed closes the loop the satellite
// asks for: after one queued and one shed request, SHOW METRICS run
// on an engine sharing the controller's registry reports both
// counters in-band.
func TestShowMetricsCountsQueuedAndShed(t *testing.T) {
	reg := obs.NewRegistry()
	sig := &fakeSignals{}
	c := NewController(Limits{MaxConcurrent: 1, MaxQueue: 2, QueueWait: 5 * time.Second}, reg, sig)

	release, err := c.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// One queued request (admitted after release)...
	done := make(chan error, 1)
	go func() {
		r, err := c.Admit(context.Background())
		if err == nil {
			r()
		}
		done <- err
	}()
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("server_queued_total").Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	// ...and one shed request (gauge source reports the queue full).
	sig.queued.Store(2)
	if _, err := c.Admit(context.Background()); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("want busy, got %v", err)
	}
	sig.queued.Store(0)
	release()
	if err := <-done; err != nil {
		t.Fatalf("queued request: %v", err)
	}

	fix, err := difftest.Build(11)
	if err != nil {
		t.Fatal(err)
	}
	eng := gsql.NewEngine(fix.Cat)
	eng.Obs = reg
	out, err := eng.Query("show metrics")
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]string{}
	for _, tup := range out.Tuples {
		vals[tup[0].Str()] = tup[1].Str()
	}
	if vals["server_queued_total"] != "1" {
		t.Fatalf("SHOW METRICS server_queued_total = %q, want 1 (have: %s)",
			vals["server_queued_total"], metricsWith(out, "server_"))
	}
	if vals["server_shed_total"] != "1" {
		t.Fatalf("SHOW METRICS server_shed_total = %q, want 1 (have: %s)",
			vals["server_shed_total"], metricsWith(out, "server_"))
	}
	if vals["server_admitted_total"] != "2" {
		t.Fatalf("SHOW METRICS server_admitted_total = %q, want 2", vals["server_admitted_total"])
	}
}

// metricsWith lists the metric rows whose name contains substr, for
// failure messages.
func metricsWith(out *rel.Relation, substr string) string {
	var parts []string
	for _, tup := range out.Tuples {
		if strings.Contains(tup[0].Str(), substr) {
			parts = append(parts, tup[0].Str()+"="+tup[1].Str())
		}
	}
	return strings.Join(parts, " ")
}
