package server

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// sessionSettings reads SHOW SESSION into a map.
func sessionSettings(t *testing.T, c *client) map[string]string {
	t.Helper()
	resp := c.mustRows("show session")
	out := map[string]string{}
	for _, row := range resp.Rows {
		if len(row) == 2 {
			out[row[0]] = row[1]
		}
	}
	return out
}

// TestSessionIsolation is the session-isolation property: SET
// PARALLELISM / SET VECTORIZED / SET SLOW_QUERY_MS in one session
// must never become visible in another — neither in an existing
// concurrent session nor in one opened afterwards.
func TestSessionIsolation(t *testing.T) {
	srv := newTestServer(t, 3, Limits{}, nil)
	a, b := dialPipe(t, srv), dialPipe(t, srv)

	before := sessionSettings(t, b)
	defPar := before["parallelism"]
	if before["vectorized"] != "on" || before["slow_query_ms"] != "0" {
		t.Fatalf("unexpected defaults: %v", before)
	}

	// Diverge session A on every knob.
	a.mustRows("set parallelism 1")
	a.mustRows("set vectorized off")
	a.mustRows("set slow_query_ms 250")
	gotA := sessionSettings(t, a)
	if gotA["parallelism"] != "1" || gotA["vectorized"] != "off" || gotA["slow_query_ms"] != "250" {
		t.Fatalf("session A settings did not apply: %v", gotA)
	}

	// Session B must still see the defaults...
	gotB := sessionSettings(t, b)
	if gotB["parallelism"] != defPar {
		t.Errorf("SET PARALLELISM leaked: B sees %q, want %q", gotB["parallelism"], defPar)
	}
	if gotB["vectorized"] != "on" {
		t.Errorf("SET VECTORIZED leaked: B sees %q, want on", gotB["vectorized"])
	}
	if gotB["slow_query_ms"] != "0" {
		t.Errorf("SET SLOW_QUERY_MS leaked: B sees %q, want 0", gotB["slow_query_ms"])
	}
	// ...and so must a session opened after A diverged.
	cNew := dialPipe(t, srv)
	gotNew := sessionSettings(t, cNew)
	if gotNew["parallelism"] != defPar || gotNew["vectorized"] != "on" || gotNew["slow_query_ms"] != "0" {
		t.Errorf("fresh session inherited A's settings: %v", gotNew)
	}

	// The isolation is bidirectional: B diverging must not touch A.
	b.mustRows("set parallelism 3")
	if got := sessionSettings(t, a); got["parallelism"] != "1" {
		t.Errorf("B's SET PARALLELISM leaked into A: %v", got["parallelism"])
	}
}

// TestSessionTeardownLeavesNoGoroutines opens and tears down a wave
// of sessions — each having run real queries — and requires the
// goroutine count to settle back to its baseline.
func TestSessionTeardownLeavesNoGoroutines(t *testing.T) {
	srv := newTestServer(t, 3, Limits{}, nil)
	// Warm: the first session exercises lazy engine state (gL cache,
	// columnar images) so the baseline is taken after one-time setup.
	w := dialPipe(t, srv)
	w.mustRows("select pid from product")
	if resp := w.roundTrip(Request{Op: OpClose}); !resp.OK {
		t.Fatal("warm close failed")
	}
	waitSessions(t, srv, 0)
	base := runtime.NumGoroutine()

	for wave := 0; wave < 3; wave++ {
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := dialPipe(t, srv)
				c.mustRows("set parallelism 2")
				c.mustRows(fmt.Sprintf("select pid, price from product where price >= %d", 60+10*(i%5)))
				c.mustRows("select count(*) as n from customer")
				if i%2 == 0 {
					_ = c.conn.Close() // abrupt disconnect
				} else if resp := c.roundTrip(Request{Op: OpClose}); !resp.OK {
					t.Errorf("close: %+v", resp)
				}
			}(i)
		}
		wg.Wait()
		waitSessions(t, srv, 0)
	}
	settleGoroutines(t, base)
}

// TestMidQueryDisconnectCancelsAndLeavesNoGoroutines: a client that
// vanishes while its query is executing must have that query's
// context cancelled (the worker pools wind down) — no stranded
// workers, and the server keeps serving others.
func TestMidQueryDisconnectCancelsAndLeavesNoGoroutines(t *testing.T) {
	srv := newTestServer(t, 3, Limits{}, nil)
	// A long-lived control session pins the server "warm" and proves
	// liveness afterwards.
	ctl := dialPipe(t, srv)
	ctl.mustRows("select pid from product")
	base := runtime.NumGoroutine()

	// The 3-way cross join is large enough that some disconnects land
	// mid-drain; the staggered delay sweeps the window from "before
	// execution" to "after completion".
	heavy := `select c.cid, p.pid from customer as c, product as p, customer as c2
		where c.bal >= 0 and p.price >= 0 order by c.cid, p.pid limit 100000`
	for i := 0; i < 24; i++ {
		c := dialPipe(t, srv)
		c.mustRows("set parallelism 4")
		if err := c.enc.Encode(Request{Op: OpQuery, Query: heavy}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Duration(i%6) * 200 * time.Microsecond)
		_ = c.conn.Close()
	}
	waitSessions(t, srv, 1) // only the control session remains
	settleGoroutines(t, base)

	// The engine is still healthy for everyone else.
	if resp := ctl.mustRows("select count(*) as n from product"); resp.RowsTotal != 1 {
		t.Fatalf("control session after disconnect storm: %+v", resp)
	}
}

// TestShutdownCancelsInFlightQueries: Shutdown must not wait for slow
// queries to finish — their contexts are cancelled and sessions drain
// promptly.
func TestShutdownCancelsInFlightQueries(t *testing.T) {
	srv := newTestServer(t, 3, Limits{}, nil)
	var clients []*client
	for i := 0; i < 8; i++ {
		c := dialPipe(t, srv)
		c.mustRows("set parallelism 2")
		// Fire a heavy query without reading the response.
		if err := c.enc.Encode(Request{Op: OpQuery, Query: `select c.cid, p.pid
			from customer as c, product as p, customer as c2 order by c.cid limit 100000`}); err != nil {
			t.Fatal(err)
		}
		clients = append(clients, c)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with in-flight queries: %v (after %s)", err, time.Since(start))
	}
	for _, c := range clients {
		_ = c.conn.Close()
	}
}

// settleGoroutines polls until the goroutine count returns to at most
// base or the deadline expires.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d > %d", runtime.NumGoroutine(), base)
}
