package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"

	"semjoin/internal/gsql/difftest"
	"semjoin/internal/obs"
)

// tracedServer boots a server over a seeded fixture with an isolated
// trace store, query log and (optionally buffered) structured logger,
// so trace assertions never race with other tests' default-store
// traffic.
func tracedServer(t *testing.T, lim Limits, sig Signals, logBuf *bytes.Buffer) (*Server, *obs.TraceStore, *obs.QueryLog) {
	t.Helper()
	fix, err := difftest.Build(3)
	if err != nil {
		t.Fatal(err)
	}
	ts := obs.NewTraceStore(64)
	ql := obs.NewQueryLog()
	var logger *obs.Logger
	if logBuf != nil {
		logger = obs.NewLogger(logBuf, slog.LevelDebug)
	}
	srv, err := New(Config{
		Cat: fix.Cat, Reg: obs.NewRegistry(), Limits: lim, Signals: sig,
		Tracer: obs.NewTracer(1.0, 0), Traces: ts, Queries: ql, Log: logger,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return srv, ts, ql
}

// spanNames flattens a rendered trace tree into its span names.
func spanNames(tr *obs.Trace) []string {
	var names []string
	tr.RenderRoot().Walk(func(sp *obs.Span, _ int) { names = append(names, sp.Name) })
	return names
}

func TestWireTraceIDPropagation(t *testing.T) {
	srv, ts, _ := tracedServer(t, Limits{}, nil, nil)
	c := dialPipe(t, srv)

	resp := c.roundTrip(Request{Op: OpQuery, Query: "select pid from product", TraceID: "client-chose-this"})
	if !resp.OK {
		t.Fatalf("query failed: %+v", resp)
	}
	if resp.TraceID != "client-chose-this" {
		t.Fatalf("response trace id = %q, want the client-supplied one", resp.TraceID)
	}
	tr := ts.Get("client-chose-this")
	if tr == nil {
		t.Fatal("client-named trace not retained")
	}
	names := spanNames(tr)
	for _, want := range []string{"request", "wire_read", "admission", "query", "parse", "plan", "execute"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("trace missing span %q; got %v", want, names)
		}
	}
	if tr.Status() != "ok" {
		t.Errorf("status = %q", tr.Status())
	}
}

func TestWireTraceIDSanitized(t *testing.T) {
	srv, ts, _ := tracedServer(t, Limits{}, nil, nil)
	c := dialPipe(t, srv)

	// Newlines and spaces could inject log fields; the server must
	// discard the id and assign its own.
	resp := c.roundTrip(Request{Op: OpQuery, Query: "select pid from product", TraceID: "evil\ninjection"})
	if !resp.OK {
		t.Fatalf("query failed: %+v", resp)
	}
	if resp.TraceID == "evil\ninjection" || resp.TraceID == "" || len(resp.TraceID) != 16 {
		t.Fatalf("unsanitized or missing trace id %q", resp.TraceID)
	}
	if ts.Get("evil\ninjection") != nil {
		t.Fatal("hostile id must not become a store key")
	}
	if ts.Get(resp.TraceID) == nil {
		t.Fatal("replacement id not retained")
	}
}

// TestConcurrentSessionTraces drives N sessions in parallel (run under
// -race in CI) and requires each session's trace to be a well-formed,
// non-interleaved tree: exactly one engine query subtree under the
// request root, operators nested under that session's own execute
// span, and the N session ids all distinct.
func TestConcurrentSessionTraces(t *testing.T) {
	const n = 8
	srv, ts, _ := tracedServer(t, Limits{}, nil, nil)

	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialPipe(t, srv)
			q := fmt.Sprintf("select pid, price from product where price >= %d order by pid", 10+i)
			resp := c.roundTrip(Request{Op: OpQuery, Query: q})
			if !resp.OK {
				t.Errorf("session %d: %+v", i, resp)
				return
			}
			ids[i] = resp.TraceID
		}(i)
	}
	wg.Wait()

	sessions := map[int64]bool{}
	for i, id := range ids {
		if id == "" {
			t.Fatalf("session %d returned no trace id", i)
		}
		tr := ts.Get(id)
		if tr == nil {
			t.Fatalf("trace %s not retained", id)
		}
		sessions[tr.Session()] = true

		// Well-formed: one request root, exactly one query child with
		// exactly one parse/plan/execute each — an interleaved tree
		// would double up or lose spans.
		counts := map[string]int{}
		for _, name := range spanNames(tr) {
			counts[name]++
		}
		for _, want := range []string{"request", "query", "parse", "plan", "execute", "wire_read", "admission"} {
			if counts[want] != 1 {
				t.Errorf("trace %s: span %q count = %d, want 1", id, want, counts[want])
			}
		}
		if counts["op:scan product"] == 0 {
			t.Errorf("trace %s: no operator spans grafted", id)
		}
	}
	if len(sessions) != n {
		t.Fatalf("distinct sessions in traces = %d, want %d", len(sessions), n)
	}
}

// TestShedRequestsTracedAndLogged forces a queue_full shed and checks
// all three observability surfaces agree: the response carries a
// trace id, the trace store retains the shed trace (always, despite
// sampling), the shared query log records status "shed", and the
// structured log names the reason and trace id.
func TestShedRequestsTracedAndLogged(t *testing.T) {
	sig := &fakeSignals{}
	var logBuf bytes.Buffer
	srv, ts, ql := tracedServer(t, Limits{MaxConcurrent: 1, MaxQueue: 2}, sig, &logBuf)
	c := dialPipe(t, srv)

	release, err := srv.Controller().Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sig.queued.Store(2)
	resp := c.query("select pid from product")
	sig.queued.Store(0)
	release()

	if resp.OK || resp.Code != "busy" {
		t.Fatalf("expected shed, got %+v", resp)
	}
	if resp.TraceID == "" {
		t.Fatal("shed response must carry a trace id")
	}
	tr := ts.Get(resp.TraceID)
	if tr == nil {
		t.Fatal("shed trace not retained")
	}
	if tr.Status() != "shed" {
		t.Fatalf("trace status = %q, want shed", tr.Status())
	}

	var rec obs.QueryRecord
	for _, r := range ql.Recent() {
		if r.TraceID == resp.TraceID {
			rec = r
		}
	}
	if rec.TraceID == "" {
		t.Fatal("shed request missing from shared query log")
	}
	if rec.EffectiveStatus() != "shed" {
		t.Fatalf("query log status = %q, want shed", rec.EffectiveStatus())
	}

	logged := false
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var entry map[string]any
		if json.Unmarshal([]byte(line), &entry) != nil {
			continue
		}
		if entry["msg"] == "request shed" {
			logged = true
			if entry["reason"] != "queue_full" {
				t.Errorf("shed reason = %v, want queue_full", entry["reason"])
			}
			if entry["trace_id"] != resp.TraceID {
				t.Errorf("shed log trace_id = %v, want %s", entry["trace_id"], resp.TraceID)
			}
		}
	}
	if !logged {
		t.Fatalf("no structured shed record in log:\n%s", logBuf.String())
	}
}

// TestErrorQueryTraced: a failing statement still produces a finished
// trace with status "error" and a matching query-log record.
func TestErrorQueryTraced(t *testing.T) {
	srv, ts, ql := tracedServer(t, Limits{}, nil, nil)
	c := dialPipe(t, srv)

	resp := c.query("select nope from no_such_table")
	if resp.OK {
		t.Fatal("query against a missing table must fail")
	}
	if resp.TraceID == "" {
		t.Fatal("error response must carry a trace id")
	}
	tr := ts.Get(resp.TraceID)
	if tr == nil || tr.Status() != "error" {
		t.Fatalf("trace = %v (status %q), want retained with status error", tr, tr.Status())
	}
	found := false
	for _, r := range ql.Recent() {
		if r.TraceID == resp.TraceID && r.EffectiveStatus() == "error" {
			found = true
		}
	}
	if !found {
		t.Fatal("error not recorded in shared query log")
	}
}
