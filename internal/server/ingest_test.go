package server

import (
	"context"
	"strconv"
	"testing"
	"time"

	"semjoin/internal/graph"
	"semjoin/internal/gsql/difftest"
	"semjoin/internal/obs"
	"semjoin/internal/wal"
)

// newIngestServer boots a server whose fixture catalog is wired for
// in-memory durability, and opens the product store over the wire so
// ingest requests have somewhere to land.
func newIngestServer(t *testing.T, fs *wal.MemFS) (*Server, *client) {
	t.Helper()
	fix, err := difftest.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	fix.Cat.DurableOpts.Policy = wal.SyncAlways
	fix.Cat.DurableOpts.FS = fs
	srv, err := New(Config{Cat: fix.Cat, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := fix.Cat.Durable.Close(); err != nil {
			t.Errorf("durable close: %v", err)
		}
	})
	c := dialPipe(t, srv)
	c.mustRows("OPEN product db")
	return srv, c
}

func TestIngestGraphBatch(t *testing.T) {
	_, c := newIngestServer(t, wal.NewMemFS())

	resp := c.roundTrip(Request{Op: OpIngest, Base: "product", Kind: "graph",
		Updates: []IngestUpdate{
			{Op: "insert_vertex", Label: "acme gmbh", Type: "company"},
			{Op: "insert_edge", From: 0, To: 1, Label: "based_in"},
		}})
	if !resp.OK {
		t.Fatalf("ingest: %s (%s)", resp.Error, resp.Code)
	}
	if resp.Seq == 0 {
		t.Fatal("ingest response missing WAL seq")
	}
	// A second batch advances the sequence.
	resp2 := c.roundTrip(Request{Op: OpIngest, Base: "product", Kind: "graph",
		Updates: []IngestUpdate{{Op: "delete_edge", From: 0, To: 1, Label: "based_in"}}})
	if !resp2.OK || resp2.Seq <= resp.Seq {
		t.Fatalf("second ingest seq = %d after %d (ok=%v %s)", resp2.Seq, resp.Seq, resp2.OK, resp2.Error)
	}
	// Queries on the same connection still answer afterwards.
	c.mustRows("select pid from product limit 1")
}

func TestIngestRelationAndKeywords(t *testing.T) {
	_, c := newIngestServer(t, wal.NewMemFS())

	// Replace the product relation with a two-row version rendered by
	// the wire convention (schema order, display strings).
	rows := c.mustRows("select * from product limit 2")
	if len(rows.Rows) != 2 {
		t.Fatalf("want 2 seed rows, got %d", len(rows.Rows))
	}
	resp := c.roundTrip(Request{Op: OpIngest, Base: "product", Kind: "relation", Rows: rows.Rows})
	if !resp.OK {
		t.Fatalf("relation ingest: %s", resp.Error)
	}
	after := c.mustRows("select pid from product")
	if after.RowsTotal != 2 {
		t.Fatalf("product has %d rows after replacement, want 2", after.RowsTotal)
	}

	kw := c.roundTrip(Request{Op: OpIngest, Base: "product", Kind: "keywords", Keywords: []string{"company"}})
	if !kw.OK || kw.Seq <= resp.Seq {
		t.Fatalf("keyword ingest: ok=%v seq=%d (after %d): %s", kw.OK, kw.Seq, resp.Seq, kw.Error)
	}
}

func TestIngestErrors(t *testing.T) {
	_, c := newIngestServer(t, wal.NewMemFS())

	for name, req := range map[string]Request{
		"unknown base": {Op: OpIngest, Base: "nosuch", Kind: "graph", Updates: []IngestUpdate{{Op: "delete_vertex"}}},
		"unknown kind": {Op: OpIngest, Base: "product", Kind: "csv"},
		"empty graph":  {Op: OpIngest, Base: "product", Kind: "graph"},
		"bad op":       {Op: OpIngest, Base: "product", Kind: "graph", Updates: []IngestUpdate{{Op: "upsert"}}},
		"empty rows":   {Op: OpIngest, Base: "product", Kind: "relation"},
		"short row":    {Op: OpIngest, Base: "product", Kind: "relation", Rows: [][]string{{"fd0"}}},
		"bad int cell": {Op: OpIngest, Base: "product", Kind: "relation", Rows: [][]string{{"fd0", "x", "y", "notanint"}}},
		"no keywords":  {Op: OpIngest, Base: "product", Kind: "keywords"},
	} {
		resp := c.roundTrip(req)
		if resp.OK || resp.Code != "error" {
			t.Errorf("%s: want error response, got %+v", name, resp)
		}
	}
}

// TestIngestSurvivesRestart checkpoints nothing: it writes a graph
// batch over the wire, tears the whole server down, then boots a
// fresh server over the same in-memory filesystem and checks the WAL
// replay carried the update into query results.
func TestIngestSurvivesRestart(t *testing.T) {
	fs := wal.NewMemFS()

	fix, err := difftest.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	fix.Cat.DurableOpts.Policy = wal.SyncAlways
	fix.Cat.DurableOpts.FS = fs
	srv, err := New(Config{Cat: fix.Cat, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	c := dialPipe(t, srv)
	c.mustRows("OPEN product db")
	before := c.mustRows("select vid from product e-join G <company> as T").RowsTotal

	// Grow the graph: a fresh company vertex per seed product edge
	// keeps the update visible without caring about concrete ids.
	resp := c.roundTrip(Request{Op: OpIngest, Base: "product", Kind: "graph",
		Updates: []IngestUpdate{{Op: "insert_vertex", Label: "restartco", Type: "company"}}})
	if !resp.OK {
		t.Fatalf("ingest: %s", resp.Error)
	}
	seq := resp.Seq
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// Abandon the catalog without Close: the WAL must already be
	// durable (SyncAlways) — this is the kill -9 the CI leg replays.
	fs.Crash()

	fix2, err := difftest.Build(7)
	if err != nil {
		t.Fatal(err)
	}
	fix2.Cat.DurableOpts.FS = fs
	srv2, err := New(Config{Cat: fix2.Cat, Reg: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv2.Shutdown(ctx)
		_ = fix2.Cat.Durable.Close()
	})
	c2 := dialPipe(t, srv2)
	open := c2.mustRows("OPEN product db")
	// wal_records column must cover the logged batch.
	recCol := -1
	for i, col := range open.Columns {
		if col == "wal_records" {
			recCol = i
		}
	}
	if recCol < 0 {
		t.Fatalf("OPEN status lacks wal_records: %v", open.Columns)
	}
	n, err := strconv.Atoi(open.Rows[0][recCol])
	if err != nil || uint64(n) < seq {
		t.Fatalf("replayed %v records, want >= %d", open.Rows[0][recCol], seq)
	}
	st := fix2.Cat.Durable.Get("product")
	if st.LastSeq() != seq {
		t.Fatalf("recovered LastSeq = %d, want %d", st.LastSeq(), seq)
	}
	found := false
	st.Graph().Vertices(func(v graph.Vertex) {
		if v.Label == "restartco" {
			found = true
		}
	})
	if !found {
		t.Fatal("ingested vertex lost across restart")
	}
	after := c2.mustRows("select vid from product e-join G <company> as T").RowsTotal
	if after != before {
		t.Fatalf("e-join rows changed %d -> %d across restart (vertex is disconnected)", before, after)
	}
}
