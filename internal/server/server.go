// Package server promotes the gsql engine into a long-running
// multi-session network frontend. Many concurrent sessions share one
// catalog (relations, graph, materialisation, gL cache); each session
// owns a private gsql.Engine, so SET PARALLELISM / SET VECTORIZED /
// SET SLOW_QUERY_MS and prepared statements are session-scoped and
// die with the connection. Every request passes the admission
// Controller first, so overload degrades into typed "server busy"
// rejections instead of goroutine pile-ups.
//
// The lifecycle of one connection:
//
//	accept → session cap check → banner (code "hello", session id)
//	→ request loop (one Response per Request, in order)
//	→ disconnect or OpClose → in-flight query cancelled → teardown
//
// A client that disconnects mid-query cancels that query's context:
// the morsel-driven worker pools observe cancellation and wind down,
// leaving no stranded goroutines (the isolation tests assert this
// under -race).
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"semjoin/internal/gsql"
	"semjoin/internal/obs"
)

// maxLine is the longest request line (1 MiB) the server accepts —
// the same bound the interactive shell places on stdin.
const maxLine = 1 << 20

// maxPrepared caps the prepared statements one session may hold.
const maxPrepared = 256

// Config wires a server to its engine machinery.
type Config struct {
	// Cat is the shared catalog every session queries. Required.
	Cat *gsql.Catalog
	// Mode is the semantic-join strategy mode sessions start in.
	Mode gsql.Mode
	// Reg receives all server and engine metrics; nil means
	// obs.Default. SHOW METRICS inside any session reads this
	// registry, so admission counters are visible in-band.
	Reg *obs.Registry
	// Limits bounds admission (zero fields default; see Limits).
	Limits Limits
	// Signals overrides the admission load source (tests); nil reads
	// the gauges the controller itself publishes in Reg.
	Signals Signals
}

// Server accepts connections and runs one session per connection.
type Server struct {
	cfg Config
	reg *obs.Registry
	ctl *Controller

	ctx    context.Context
	cancel context.CancelFunc

	wg          sync.WaitGroup
	mu          sync.Mutex
	conns       map[net.Conn]struct{}
	sessions    atomic.Int64
	nextSession atomic.Int64
	inShutdown  atomic.Bool
}

// New builds a server from cfg. Call Serve (or ServeConn) to run it
// and Shutdown to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.Cat == nil {
		return nil, fmt.Errorf("server: Config.Cat is required")
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.Default
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:    cfg,
		reg:    reg,
		ctl:    NewController(cfg.Limits, reg, cfg.Signals),
		ctx:    ctx,
		cancel: cancel,
		conns:  map[net.Conn]struct{}{},
	}, nil
}

// Controller exposes the admission gate (tests drive it directly).
func (s *Server) Controller() *Controller { return s.ctl }

// Sessions reports the number of live sessions.
func (s *Server) Sessions() int64 { return s.sessions.Load() }

// Serve accepts connections on ln until Shutdown closes it. It
// returns nil after a Shutdown-initiated stop and the accept error
// otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.inShutdown.Load() {
		s.mu.Unlock()
		return fmt.Errorf("server: already shut down")
	}
	s.mu.Unlock()
	// Close the listener when the server context dies so Accept
	// unblocks; guarded by a handle so Serve can also exit on its own
	// accept errors.
	stop := context.AfterFunc(s.ctx, func() { _ = ln.Close() })
	defer stop()
	for {
		if s.ctx.Err() != nil {
			return nil
		}
		conn, err := ln.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.startConn(conn)
	}
}

// ServeConn runs one session over an already-established connection
// (net.Pipe in tests, an in-process transport in gsqlload's self-test
// mode). It returns immediately; the session runs until the peer
// disconnects or the server shuts down.
func (s *Server) ServeConn(conn net.Conn) {
	s.startConn(conn)
}

// startConn applies the session cap and launches the session
// goroutine.
func (s *Server) startConn(conn net.Conn) {
	if s.inShutdown.Load() {
		_ = conn.Close()
		return
	}
	if s.sessions.Load() >= int64(s.ctl.Limits().MaxSessions) {
		busy := s.ctl.shed("sessions")
		// The rejection banner is written off the accept path (and
		// bounded by a deadline): a peer that never reads must not be
		// able to stall the accept loop — or, over a synchronous pipe,
		// deadlock the dialer.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			_ = json.NewEncoder(conn).Encode(Response{OK: false, Code: "busy", Error: busy.Error()})
			_ = conn.Close()
		}()
		return
	}
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.sessions.Add(1)
	s.reg.Counter("server_sessions_total").Inc()
	s.reg.Gauge("server_sessions_active").Add(1)
	s.wg.Add(1)
	go s.runSession(conn)
}

// Shutdown stops the server: no new connections, every session's
// context cancelled (aborting in-flight queries), every connection
// closed. It waits for session goroutines to finish or ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.cancel()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown wait: %w", ctx.Err())
	}
}

// session is the per-connection state: a private engine over the
// shared catalog plus the prepared-statement namespace.
type session struct {
	id       int64
	eng      *gsql.Engine
	ctl      *Controller
	reg      *obs.Registry
	prepared map[string]string
}

// runSession is the lifetime of one connection: banner, request loop,
// teardown. The reader goroutine feeds decoded requests through a
// channel and cancels the session context when the peer goes away, so
// a mid-query disconnect aborts the query rather than letting it run
// to completion for nobody.
func (s *Server) runSession(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.sessions.Add(-1)
		s.reg.Gauge("server_sessions_active").Add(-1)
	}()
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	eng := gsql.NewEngine(s.cfg.Cat)
	eng.Mode = s.cfg.Mode
	eng.Obs = s.reg
	// A private query log isolates SET SLOW_QUERY_MS per session; the
	// shared registry still counts slow queries engine-wide.
	eng.Queries = obs.NewQueryLog()
	ss := &session{
		id:       s.nextSession.Add(1),
		eng:      eng,
		ctl:      s.ctl,
		reg:      s.reg,
		prepared: map[string]string{},
	}

	enc := json.NewEncoder(conn)
	if err := enc.Encode(Response{OK: true, Code: "hello", Session: ss.id}); err != nil {
		return
	}

	reqs := make(chan Request)
	go s.readLoop(ctx, cancel, conn, reqs)
	for {
		select {
		case <-ctx.Done():
			return
		case req, ok := <-reqs:
			if !ok {
				return
			}
			resp := ss.handle(ctx, req)
			if err := enc.Encode(resp); err != nil {
				cancel()
				return
			}
			if req.Op == OpClose {
				return
			}
		}
	}
}

// readLoop decodes request lines off conn into reqs. Any read or
// decode-framing failure (EOF, reset, oversized line) means the peer
// is gone or broken: the loop cancels the session context — aborting
// whatever query is running — and closes reqs.
func (s *Server) readLoop(ctx context.Context, cancel context.CancelFunc, conn net.Conn, reqs chan<- Request) {
	defer close(reqs)
	defer cancel()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	for sc.Scan() {
		if ctx.Err() != nil {
			return
		}
		line := sc.Bytes()
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			// Malformed framing is unrecoverable on a line protocol —
			// respond via the request channel so the writer stays the
			// only goroutine touching conn.
			req = Request{Op: "malformed", Query: err.Error()}
		}
		select {
		case reqs <- req:
		case <-ctx.Done():
			return
		}
		if req.Op == "malformed" || req.Op == OpClose {
			return
		}
	}
}

// handle dispatches one request to its op handler.
func (ss *session) handle(ctx context.Context, req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{ID: req.ID, OK: true}
	case OpClose:
		return Response{ID: req.ID, OK: true}
	case OpPrepare:
		return ss.prepare(req)
	case OpExec:
		tmpl, ok := ss.prepared[req.Name]
		if !ok {
			return errResp(req.ID, "error", fmt.Errorf("server: unknown prepared statement %q", req.Name))
		}
		q, err := bindParams(tmpl, req.Args)
		if err != nil {
			return errResp(req.ID, "error", err)
		}
		return ss.runQuery(ctx, req.ID, q)
	case OpQuery:
		return ss.runQuery(ctx, req.ID, req.Query)
	case "malformed":
		return errResp(req.ID, "error", fmt.Errorf("server: malformed request: %s", req.Query))
	default:
		return errResp(req.ID, "error", fmt.Errorf("server: unknown op %q", req.Op))
	}
}

// prepare validates and stores a statement template.
func (ss *session) prepare(req Request) Response {
	if req.Name == "" {
		return errResp(req.ID, "error", fmt.Errorf("server: prepare needs a name"))
	}
	if req.Query == "" {
		return errResp(req.ID, "error", fmt.Errorf("server: prepare needs a query"))
	}
	if _, exists := ss.prepared[req.Name]; !exists && len(ss.prepared) >= maxPrepared {
		return errResp(req.ID, "error", fmt.Errorf("server: too many prepared statements (max %d)", maxPrepared))
	}
	ss.prepared[req.Name] = req.Query
	return Response{ID: req.ID, OK: true}
}

// runQuery passes admission, executes q on the session engine and
// encodes the result.
func (ss *session) runQuery(ctx context.Context, id int64, q string) Response {
	release, err := ss.ctl.Admit(ctx)
	if err != nil {
		if errors.Is(err, ErrServerBusy) {
			return errResp(id, "busy", err)
		}
		return errResp(id, "error", err)
	}
	defer release()
	ss.reg.Counter("server_requests_total").Inc()
	start := time.Now()
	out, err := ss.eng.QueryContext(ctx, q)
	elapsed := time.Since(start)
	ss.reg.Histogram("server_request_seconds", nil).Observe(elapsed.Seconds())
	if err != nil {
		return errResp(id, "error", err)
	}
	cols, rows := encodeRelation(out)
	return Response{
		ID: id, OK: true,
		Columns: cols, Rows: rows, RowsTotal: len(rows),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
	}
}

// errResp builds a failure response.
func errResp(id int64, code string, err error) Response {
	return Response{ID: id, OK: false, Code: code, Error: err.Error()}
}
