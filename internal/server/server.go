// Package server promotes the gsql engine into a long-running
// multi-session network frontend. Many concurrent sessions share one
// catalog (relations, graph, materialisation, gL cache); each session
// owns a private gsql.Engine, so SET PARALLELISM / SET VECTORIZED /
// SET SLOW_QUERY_MS and prepared statements are session-scoped and
// die with the connection. Every request passes the admission
// Controller first, so overload degrades into typed "server busy"
// rejections instead of goroutine pile-ups.
//
// The lifecycle of one connection:
//
//	accept → session cap check → banner (code "hello", session id)
//	→ request loop (one Response per Request, in order)
//	→ disconnect or OpClose → in-flight query cancelled → teardown
//
// A client that disconnects mid-query cancels that query's context:
// the morsel-driven worker pools observe cancellation and wind down,
// leaving no stranded goroutines (the isolation tests assert this
// under -race).
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"semjoin/internal/gsql"
	"semjoin/internal/obs"
)

// maxLine is the longest request line (1 MiB) the server accepts —
// the same bound the interactive shell places on stdin.
const maxLine = 1 << 20

// maxPrepared caps the prepared statements one session may hold.
const maxPrepared = 256

// Config wires a server to its engine machinery.
type Config struct {
	// Cat is the shared catalog every session queries. Required.
	Cat *gsql.Catalog
	// Mode is the semantic-join strategy mode sessions start in.
	Mode gsql.Mode
	// Reg receives all server and engine metrics; nil means
	// obs.Default. SHOW METRICS inside any session reads this
	// registry, so admission counters are visible in-band.
	Reg *obs.Registry
	// Limits bounds admission (zero fields default; see Limits).
	Limits Limits
	// Signals overrides the admission load source (tests); nil reads
	// the gauges the controller itself publishes in Reg.
	Signals Signals
	// Tracer samples query traces; nil means obs.DefaultTracer (keep
	// every trace — the bounded store caps memory).
	Tracer *obs.Tracer
	// Traces retains kept traces for /traces and SHOW TRACES; nil
	// means obs.DefaultTraces.
	Traces *obs.TraceStore
	// Queries is the server-wide query log: every request outcome
	// lands here — including admission sheds, with status "shed" — so
	// /queries reconciles with server_shed_total. Nil means
	// obs.DefaultQueries. (Each session additionally keeps a private
	// log for its SET SLOW_QUERY_MS scope.)
	Queries *obs.QueryLog
	// Log receives structured JSON records (session lifecycle, shed
	// decisions with reasons and trace ids, query failures); nil
	// disables server logging.
	Log *obs.Logger
}

// Server accepts connections and runs one session per connection.
type Server struct {
	cfg     Config
	reg     *obs.Registry
	ctl     *Controller
	tracer  *obs.Tracer
	traces  *obs.TraceStore
	queries *obs.QueryLog
	log     *obs.Logger

	ctx    context.Context
	cancel context.CancelFunc

	wg          sync.WaitGroup
	mu          sync.Mutex
	conns       map[net.Conn]struct{}
	sessions    atomic.Int64
	nextSession atomic.Int64
	inShutdown  atomic.Bool
}

// New builds a server from cfg. Call Serve (or ServeConn) to run it
// and Shutdown to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.Cat == nil {
		return nil, fmt.Errorf("server: Config.Cat is required")
	}
	reg := cfg.Reg
	if reg == nil {
		reg = obs.Default
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer
	}
	traces := cfg.Traces
	if traces == nil {
		traces = obs.DefaultTraces
	}
	queries := cfg.Queries
	if queries == nil {
		queries = obs.DefaultQueries
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		reg:     reg,
		ctl:     NewController(cfg.Limits, reg, cfg.Signals),
		tracer:  tracer,
		traces:  traces,
		queries: queries,
		log:     cfg.Log,
		ctx:     ctx,
		cancel:  cancel,
		conns:   map[net.Conn]struct{}{},
	}, nil
}

// Controller exposes the admission gate (tests drive it directly).
func (s *Server) Controller() *Controller { return s.ctl }

// Sessions reports the number of live sessions.
func (s *Server) Sessions() int64 { return s.sessions.Load() }

// Serve accepts connections on ln until Shutdown closes it. It
// returns nil after a Shutdown-initiated stop and the accept error
// otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.inShutdown.Load() {
		s.mu.Unlock()
		return fmt.Errorf("server: already shut down")
	}
	s.mu.Unlock()
	// Close the listener when the server context dies so Accept
	// unblocks; guarded by a handle so Serve can also exit on its own
	// accept errors.
	stop := context.AfterFunc(s.ctx, func() { _ = ln.Close() })
	defer stop()
	for {
		if s.ctx.Err() != nil {
			return nil
		}
		conn, err := ln.Accept()
		if err != nil {
			if s.ctx.Err() != nil {
				return nil
			}
			return err
		}
		s.startConn(conn)
	}
}

// ServeConn runs one session over an already-established connection
// (net.Pipe in tests, an in-process transport in gsqlload's self-test
// mode). It returns immediately; the session runs until the peer
// disconnects or the server shuts down.
func (s *Server) ServeConn(conn net.Conn) {
	s.startConn(conn)
}

// startConn applies the session cap and launches the session
// goroutine.
func (s *Server) startConn(conn net.Conn) {
	if s.inShutdown.Load() {
		_ = conn.Close()
		return
	}
	if s.sessions.Load() >= int64(s.ctl.Limits().MaxSessions) {
		busy := s.ctl.shed("sessions")
		s.log.Warn("connection shed", "reason", "sessions",
			"sessions_active", s.sessions.Load(), "remote", remoteAddr(conn))
		// The rejection banner is written off the accept path (and
		// bounded by a deadline): a peer that never reads must not be
		// able to stall the accept loop — or, over a synchronous pipe,
		// deadlock the dialer.
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
			_ = json.NewEncoder(conn).Encode(Response{OK: false, Code: "busy", Error: busy.Error()})
			_ = conn.Close()
		}()
		return
	}
	s.mu.Lock()
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
	s.sessions.Add(1)
	s.reg.Counter("server_sessions_total").Inc()
	s.reg.Gauge("server_sessions_active").Add(1)
	s.wg.Add(1)
	go s.runSession(conn)
}

// Shutdown stops the server: no new connections, every session's
// context cancelled (aborting in-flight queries), every connection
// closed. It waits for session goroutines to finish or ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.inShutdown.Store(true)
	s.cancel()
	s.mu.Lock()
	for c := range s.conns {
		_ = c.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: shutdown wait: %w", ctx.Err())
	}
}

// remoteAddr renders the peer address for log records ("" when the
// transport has none, e.g. net.Pipe).
func remoteAddr(conn net.Conn) string {
	if addr := conn.RemoteAddr(); addr != nil {
		return addr.String()
	}
	return ""
}

// session is the per-connection state: a private engine over the
// shared catalog plus the prepared-statement namespace.
type session struct {
	id       int64
	eng      *gsql.Engine
	ctl      *Controller
	reg      *obs.Registry
	tracer   *obs.Tracer
	traces   *obs.TraceStore
	queries  *obs.QueryLog
	log      *obs.Logger
	prepared map[string]string
}

// runSession is the lifetime of one connection: banner, request loop,
// teardown. The reader goroutine feeds decoded requests through a
// channel and cancels the session context when the peer goes away, so
// a mid-query disconnect aborts the query rather than letting it run
// to completion for nobody.
func (s *Server) runSession(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.sessions.Add(-1)
		s.reg.Gauge("server_sessions_active").Add(-1)
	}()
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	id := s.nextSession.Add(1)
	slog := s.log.With("session", id)
	eng := gsql.NewEngine(s.cfg.Cat)
	eng.Mode = s.cfg.Mode
	eng.Obs = s.reg
	eng.Tracer = s.tracer
	eng.Traces = s.traces
	eng.Log = slog
	// A private query log isolates SET SLOW_QUERY_MS per session; the
	// shared registry still counts slow queries engine-wide, and the
	// server-wide log (s.queries) records every outcome including sheds.
	eng.Queries = obs.NewQueryLog()
	ss := &session{
		id:       id,
		eng:      eng,
		ctl:      s.ctl,
		reg:      s.reg,
		tracer:   s.tracer,
		traces:   s.traces,
		queries:  s.queries,
		log:      slog,
		prepared: map[string]string{},
	}
	slog.Debug("session start", "remote", remoteAddr(conn))
	defer slog.Debug("session end")
	ctx = obs.ContextWithLogger(ctx, slog)

	enc := json.NewEncoder(conn)
	if err := enc.Encode(Response{OK: true, Code: "hello", Session: ss.id}); err != nil {
		return
	}

	reqs := make(chan inbound)
	go s.readLoop(ctx, cancel, conn, reqs)
	for {
		select {
		case <-ctx.Done():
			return
		case in, ok := <-reqs:
			if !ok {
				return
			}
			resp := ss.handle(ctx, in)
			if err := enc.Encode(resp); err != nil {
				cancel()
				return
			}
			if in.req.Op == OpClose {
				return
			}
		}
	}
}

// inbound is one decoded request plus its wire-level timing: recvAt
// is the instant the request line came off the wire (query traces
// start here, so queue time inside the session loop is attributed to
// the request, not hidden) and readDur is the time spent decoding the
// line into a Request — the "wire_read" span of the trace.
type inbound struct {
	req     Request
	recvAt  time.Time
	readDur time.Duration
}

// readLoop decodes request lines off conn into reqs. Any read or
// decode-framing failure (EOF, reset, oversized line) means the peer
// is gone or broken: the loop cancels the session context — aborting
// whatever query is running — and closes reqs.
func (s *Server) readLoop(ctx context.Context, cancel context.CancelFunc, conn net.Conn, reqs chan<- inbound) {
	defer close(reqs)
	defer cancel()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 64<<10), maxLine)
	for sc.Scan() {
		if ctx.Err() != nil {
			return
		}
		recvAt := time.Now()
		line := sc.Bytes()
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			// Malformed framing is unrecoverable on a line protocol —
			// respond via the request channel so the writer stays the
			// only goroutine touching conn.
			req = Request{Op: "malformed", Query: err.Error()}
		}
		in := inbound{req: req, recvAt: recvAt, readDur: time.Since(recvAt)}
		select {
		case reqs <- in:
		case <-ctx.Done():
			return
		}
		if req.Op == "malformed" || req.Op == OpClose {
			return
		}
	}
}

// handle dispatches one request to its op handler.
func (ss *session) handle(ctx context.Context, in inbound) Response {
	req := in.req
	switch req.Op {
	case OpPing:
		return Response{ID: req.ID, OK: true}
	case OpClose:
		return Response{ID: req.ID, OK: true}
	case OpPrepare:
		return ss.prepare(req)
	case OpExec:
		tmpl, ok := ss.prepared[req.Name]
		if !ok {
			return errResp(req.ID, "error", fmt.Errorf("server: unknown prepared statement %q", req.Name))
		}
		q, err := bindParams(tmpl, req.Args)
		if err != nil {
			return errResp(req.ID, "error", err)
		}
		return ss.runQuery(ctx, in, q)
	case OpQuery:
		return ss.runQuery(ctx, in, req.Query)
	case OpIngest:
		return ss.ingest(ctx, in)
	case "malformed":
		ss.log.Warn("malformed request", "err", req.Query)
		return errResp(req.ID, "error", fmt.Errorf("server: malformed request: %s", req.Query))
	default:
		return errResp(req.ID, "error", fmt.Errorf("server: unknown op %q", req.Op))
	}
}

// prepare validates and stores a statement template.
func (ss *session) prepare(req Request) Response {
	if req.Name == "" {
		return errResp(req.ID, "error", fmt.Errorf("server: prepare needs a name"))
	}
	if req.Query == "" {
		return errResp(req.ID, "error", fmt.Errorf("server: prepare needs a query"))
	}
	if _, exists := ss.prepared[req.Name]; !exists && len(ss.prepared) >= maxPrepared {
		return errResp(req.ID, "error", fmt.Errorf("server: too many prepared statements (max %d)", maxPrepared))
	}
	ss.prepared[req.Name] = req.Query
	return Response{ID: req.ID, OK: true}
}

// runQuery traces, admits and executes q on the session engine and
// encodes the result. The trace starts at the instant the request
// came off the wire and owns the whole server-side path: a completed
// wire_read child, an admission child around the controller, then the
// engine's query/parse/plan/execute subtree via the context. Every
// response — success, error and shed alike — carries the trace id.
func (ss *session) runQuery(ctx context.Context, in inbound, q string) Response {
	id := in.req.ID
	tr := ss.tracer.Start(q, ss.id)
	tr.SetStart(in.recvAt)
	if wireID := sanitizeTraceID(in.req.TraceID); wireID != "" {
		// Client-chosen id: propagate it and force the trace kept so the
		// client can always fetch what it asked to follow.
		tr.SetID(wireID)
	}
	root := tr.StartSpan("request")
	root.Record("wire_read", in.recvAt, in.readDur)

	asp := root.StartChild("admission")
	release, err := ss.ctl.Admit(ctx)
	asp.End()
	if err != nil {
		busy := errors.Is(err, ErrServerBusy)
		code, status := "error", "error"
		if busy {
			code, status = "busy", "shed"
		}
		tr.Finish(status)
		if busy || ss.tracer.Keep(tr) {
			// Shed traces are always retained: the whole point of shedding
			// visibility is finding the requests that never ran.
			ss.traces.Add(tr)
		}
		ss.queries.Record(obs.QueryRecord{
			Query: q, Start: in.recvAt, Duration: tr.Duration(),
			Status: status, TraceID: tr.ID(), Err: err.Error(),
		})
		ss.log.Warn("request shed", "reason", shedReason(err),
			"trace_id", tr.ID(), "query", truncateQuery(q))
		return errRespTraced(id, code, err, tr.ID())
	}
	defer release()
	ss.reg.Counter("server_requests_total").Inc()

	qctx := obs.ContextWithTrace(ctx, tr)
	start := time.Now()
	out, err := ss.eng.QueryContext(qctx, q)
	elapsed := time.Since(start)
	ss.reg.Histogram("server_request_seconds", nil).Observe(elapsed.Seconds())

	status := "ok"
	if err != nil {
		status = "error"
	}
	tr.Finish(status)
	if ss.tracer.Keep(tr) {
		ss.traces.Add(tr)
	}
	rec := obs.QueryRecord{
		Query: q, Start: in.recvAt, Duration: tr.Duration(),
		Status: status, TraceID: tr.ID(),
	}
	if out != nil {
		rec.Rows = out.Len()
	}
	if err != nil {
		rec.Err = err.Error()
	}
	ss.queries.Record(rec)
	if err != nil {
		return errRespTraced(id, "error", err, tr.ID())
	}
	cols, rows := encodeRelation(out)
	return Response{
		ID: id, OK: true,
		Columns: cols, Rows: rows, RowsTotal: len(rows),
		ElapsedMS: float64(elapsed) / float64(time.Millisecond),
		TraceID:   tr.ID(),
	}
}

// shedReason extracts the admission reason from a *BusyError ("" for
// other errors, e.g. context cancellation).
func shedReason(err error) string {
	var busy *BusyError
	if errors.As(err, &busy) {
		return busy.Reason
	}
	return ""
}

// truncateQuery bounds statement text in log records.
func truncateQuery(q string) string {
	const max = 200
	if len(q) > max {
		return q[:max] + "…"
	}
	return q
}

// sanitizeTraceID accepts a client-supplied trace id only when it is
// short and plain (hex-ish identifier charset): wire input must not
// be able to inject log fields or unbounded map keys.
func sanitizeTraceID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return ""
		}
	}
	return id
}

// errResp builds a failure response.
func errResp(id int64, code string, err error) Response {
	return Response{ID: id, OK: false, Code: code, Error: err.Error()}
}

// errRespTraced builds a failure response carrying the trace id.
func errRespTraced(id int64, code string, err error, traceID string) Response {
	r := errResp(id, code, err)
	r.TraceID = traceID
	return r
}
