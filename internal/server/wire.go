// Wire protocol: newline-delimited JSON over a byte stream (TCP in
// production, net.Pipe in tests). The client sends one Request object
// per line; the server answers each with exactly one Response line, in
// order. The connection is a session: per-session state (SET
// PARALLELISM, SET VECTORIZED, SET SLOW_QUERY_MS, prepared
// statements) lives exactly as long as the connection.
//
//	→ {"id":1,"op":"query","query":"select pid from product limit 2"}
//	← {"id":1,"ok":true,"columns":["pid"],"rows":[["fd0"],["fd1"]],"rows_total":2,"elapsed_ms":0.21}
//	→ {"id":2,"op":"prepare","name":"by_price","query":"select pid from product where price >= $1"}
//	← {"id":2,"ok":true}
//	→ {"id":3,"op":"exec","name":"by_price","args":[80]}
//	← {"id":3,"ok":true,"columns":["pid"],...}
//
// A shed request fails with code "busy"; everything else that goes
// wrong fails with code "error". On connect the server sends one
// banner line (code "hello") carrying the session id.
package server

import (
	"fmt"
	"strconv"
	"strings"

	"semjoin/internal/rel"
)

// Request ops.
const (
	// OpQuery executes req.Query (any gSQL statement, including SET,
	// SHOW METRICS, SHOW SESSION, EXPLAIN [ANALYZE]).
	OpQuery = "query"
	// OpPrepare stores req.Query under req.Name with $1..$n
	// placeholders for later OpExec.
	OpPrepare = "prepare"
	// OpExec binds req.Args into the prepared statement req.Name and
	// executes it.
	OpExec = "exec"
	// OpIngest applies a durable update batch to the WAL-backed store
	// named req.Base: req.Kind selects the stream ("graph" applies
	// req.Updates as a graph delta, "relation" replaces the base
	// relation's contents with req.Rows, "keywords" re-extracts for
	// req.Keywords). The store must have been opened first (gSQL OPEN,
	// or the server's -data-dir flag). The response carries the WAL
	// sequence number the batch was logged at.
	OpIngest = "ingest"
	// OpPing answers ok without touching the engine (liveness probe;
	// not subject to admission control).
	OpPing = "ping"
	// OpClose ends the session; the server answers ok and closes the
	// connection.
	OpClose = "close"
)

// Request is one client message.
type Request struct {
	// ID is echoed verbatim on the response so clients can match
	// pipelined requests; optional.
	ID int64 `json:"id,omitempty"`
	// Op is one of the Op* constants.
	Op string `json:"op"`
	// Query is the statement text (OpQuery, OpPrepare).
	Query string `json:"query,omitempty"`
	// Name identifies a prepared statement (OpPrepare, OpExec).
	Name string `json:"name,omitempty"`
	// Args bind $1..$n in a prepared statement (OpExec): JSON strings,
	// numbers and booleans.
	Args []any `json:"args,omitempty"`
	// TraceID optionally names the trace of this request (OpQuery,
	// OpExec): the server adopts the id (sanitized: at most 64 chars
	// of [0-9A-Za-z_-]) and always keeps the trace, so a client can
	// follow its own request through /traces/<id>. Empty lets the
	// server assign one.
	TraceID string `json:"trace_id,omitempty"`
	// Base names the durable store to apply an OpIngest batch to.
	Base string `json:"base,omitempty"`
	// Kind selects the OpIngest update stream: "graph", "relation" or
	// "keywords".
	Kind string `json:"kind,omitempty"`
	// Updates is the graph delta for Kind "graph".
	Updates []IngestUpdate `json:"updates,omitempty"`
	// Rows is the full replacement contents of the base relation for
	// Kind "relation", rendered per attribute of the base's schema.
	Rows [][]string `json:"rows,omitempty"`
	// Keywords is the new extraction keyword set for Kind "keywords".
	Keywords []string `json:"keywords,omitempty"`
}

// IngestUpdate is one wire-encoded graph update. Op is one of
// "insert_edge", "delete_edge" (From, Label, To), "insert_vertex"
// (Label, Type) or "delete_vertex" (From).
type IngestUpdate struct {
	Op    string `json:"op"`
	From  int64  `json:"from,omitempty"`
	To    int64  `json:"to,omitempty"`
	Label string `json:"label,omitempty"`
	Type  string `json:"type,omitempty"`
}

// Response is one server message.
type Response struct {
	ID int64 `json:"id,omitempty"`
	OK bool  `json:"ok"`
	// Code classifies non-data responses: "hello" on the connection
	// banner, "busy" on admission rejection, "error" on any other
	// failure, empty on success.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
	// Session is the server-assigned session id (banner only).
	Session int64 `json:"session,omitempty"`
	// Columns and Rows carry a result relation; every value is
	// rendered as its display string.
	Columns []string   `json:"columns,omitempty"`
	Rows    [][]string `json:"rows,omitempty"`
	// RowsTotal is len(Rows) — kept explicit so clients need not
	// rebuild it and truncating proxies stay honest.
	RowsTotal int `json:"rows_total,omitempty"`
	// ElapsedMS is the server-side wall time of the statement.
	ElapsedMS float64 `json:"elapsed_ms,omitempty"`
	// Seq is the WAL sequence number an OpIngest batch was logged at:
	// by the time the client reads it, every update in the batch is
	// durable to the store's sync policy.
	Seq uint64 `json:"seq,omitempty"`
	// TraceID identifies the server-side trace of this request (query
	// and exec responses, successes and failures alike). Whether the
	// trace was retained for /traces/<id> depends on sampling; shed
	// requests are always retained.
	TraceID string `json:"trace_id,omitempty"`
}

// encodeRelation renders a result relation into wire columns and rows.
func encodeRelation(r *rel.Relation) (cols []string, rows [][]string) {
	if r == nil || r.Schema == nil {
		return nil, nil
	}
	cols = make([]string, len(r.Schema.Attrs))
	for i, a := range r.Schema.Attrs {
		cols[i] = a.Name
	}
	rows = make([][]string, len(r.Tuples))
	for i, t := range r.Tuples {
		row := make([]string, len(t))
		for j, v := range t {
			row[j] = v.String()
		}
		rows[i] = row
	}
	return cols, rows
}

// bindParams substitutes $1..$n placeholders in a prepared statement
// with literal renderings of args. Placeholders inside single-quoted
// string literals are left alone. Every argument must be used at
// least once and every placeholder must have an argument — partial
// binds are client bugs worth failing loudly on.
func bindParams(query string, args []any) (string, error) {
	var b strings.Builder
	b.Grow(len(query) + 16*len(args))
	used := make([]bool, len(args))
	inString := false
	for i := 0; i < len(query); i++ {
		ch := query[i]
		if inString {
			b.WriteByte(ch)
			if ch == '\'' {
				// '' is an escaped quote inside the literal.
				if i+1 < len(query) && query[i+1] == '\'' {
					b.WriteByte('\'')
					i++
				} else {
					inString = false
				}
			}
			continue
		}
		switch {
		case ch == '\'':
			inString = true
			b.WriteByte(ch)
		case ch == '$' && i+1 < len(query) && query[i+1] >= '0' && query[i+1] <= '9':
			j := i + 1
			for j < len(query) && query[j] >= '0' && query[j] <= '9' {
				j++
			}
			n, err := strconv.Atoi(query[i+1 : j])
			if err != nil || n < 1 || n > len(args) {
				return "", fmt.Errorf("server: placeholder %s has no argument (%d supplied)", query[i:j], len(args))
			}
			lit, err := renderLiteral(args[n-1])
			if err != nil {
				return "", fmt.Errorf("server: argument %d: %w", n, err)
			}
			b.WriteString(lit)
			used[n-1] = true
			i = j - 1
		default:
			b.WriteByte(ch)
		}
	}
	if inString {
		return "", fmt.Errorf("server: unterminated string literal in prepared statement")
	}
	for i, u := range used {
		if !u {
			return "", fmt.Errorf("server: argument %d is not referenced by any placeholder", i+1)
		}
	}
	return b.String(), nil
}

// renderLiteral renders one bound argument as a gSQL literal: strings
// become single-quoted literals with ” escaping, numbers stay
// numeric (JSON decodes them as float64; integral values render
// without a fraction so they keep comparing as ints).
func renderLiteral(arg any) (string, error) {
	switch v := arg.(type) {
	case string:
		return "'" + strings.ReplaceAll(v, "'", "''") + "'", nil
	case float64:
		if v == float64(int64(v)) {
			return strconv.FormatInt(int64(v), 10), nil
		}
		return strconv.FormatFloat(v, 'g', -1, 64), nil
	case int:
		return strconv.Itoa(v), nil
	case int64:
		return strconv.FormatInt(v, 10), nil
	case bool:
		if v {
			return "'true'", nil
		}
		return "'false'", nil
	case nil:
		return "", fmt.Errorf("null is not bindable (gSQL has no NULL literal)")
	default:
		return "", fmt.Errorf("unbindable argument type %T", arg)
	}
}
