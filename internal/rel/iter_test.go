package rel

import (
	"context"
	"errors"
	"strings"
	"testing"
)

// eq compares two relations tuple-by-tuple after stable-sorting both,
// so pipelined and eager results can be checked for set equality.
func eqSorted(t *testing.T, a, b *Relation) {
	t.Helper()
	if len(a.Schema.Attrs) != len(b.Schema.Attrs) {
		t.Fatalf("arity %d vs %d", len(a.Schema.Attrs), len(b.Schema.Attrs))
	}
	if a.Len() != b.Len() {
		t.Fatalf("size %d vs %d", a.Len(), b.Len())
	}
	key := func(tp Tuple) string {
		var sb strings.Builder
		for _, v := range tp {
			sb.WriteString(v.Key())
			sb.WriteByte('|')
		}
		return sb.String()
	}
	counts := map[string]int{}
	for _, tp := range a.Tuples {
		counts[key(tp)]++
	}
	for _, tp := range b.Tuples {
		counts[key(tp)]--
		if counts[key(tp)] < 0 {
			t.Fatalf("tuple %v only in second relation", tp)
		}
	}
}

func TestPipelineEquivalenceWithEager(t *testing.T) {
	c, p := customers(), products()
	// Eager: σ → π over customers.
	eagerSel := Select(c, func(tp Tuple) bool { return c.Get(tp, "credit").Equal(S("good")) })
	eager := must(Project(eagerSel, "cid", "name"))
	// Pipelined: same plan as an operator tree.
	it := NewProject(
		NewSelect(NewScan(c), func(tp Tuple) bool { return tp[2].Equal(S("good")) }),
		"cid", "name")
	piped := must(Materialize(context.Background(), it))
	eqSorted(t, eager, piped)

	// Hash join, both build sides.
	iss := NewRelation(NewSchema("iss", "issuer", Attribute{Name: "issuer"}, Attribute{Name: "country"}))
	iss.InsertVals(S("G&L"), S("UK"))
	iss.InsertVals(S("company1"), S("UK"))
	eagerJ := must(HashJoin(p, iss, "issuer", "issuer"))
	for _, buildLeft := range []bool{true, false} {
		jt := NewHashJoin(NewScan(p), NewScan(iss), "issuer", "issuer", buildLeft)
		pj := must(Materialize(context.Background(), jt))
		eqSorted(t, eagerJ, pj)
	}
}

func TestHashJoinIterNullKeysBothSides(t *testing.T) {
	a := NewRelation(NewSchema("a", "", Attribute{Name: "k"}, Attribute{Name: "v"}))
	a.InsertVals(Null, I(1))
	a.InsertVals(I(7), I(2))
	b := NewRelation(NewSchema("b", "", Attribute{Name: "k"}))
	b.InsertVals(Null)
	b.InsertVals(I(7))
	for _, buildLeft := range []bool{true, false} {
		j := must(Materialize(context.Background(),
			NewHashJoin(NewScan(a), NewScan(b), "k", "k", buildLeft)))
		if j.Len() != 1 {
			t.Fatalf("buildLeft=%v: rows = %d, want 1 (nulls must not join)", buildLeft, j.Len())
		}
		if j.Tuples[0][0].Int() != 7 {
			t.Fatalf("joined wrong row: %v", j.Tuples[0])
		}
	}
}

func TestUnionArityMismatchError(t *testing.T) {
	a := NewRelation(NewSchema("a", "", Attribute{Name: "x"}))
	b := NewRelation(NewSchema("b", "", Attribute{Name: "x"}, Attribute{Name: "y"}))
	if _, err := Union(a, b); err == nil {
		t.Fatal("expected arity mismatch error")
	}
	it := NewUnion(NewScan(a), NewScan(b))
	defer it.Close()
	if err := it.Open(context.Background()); err == nil {
		t.Fatal("iterator Open should surface the arity mismatch")
	} else if !strings.Contains(err.Error(), "arity mismatch") {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestOpenErrorsInsteadOfPanics(t *testing.T) {
	r := customers()
	cases := []Iterator{
		NewProject(NewScan(r), "no_such"),
		NewSort(NewScan(r), "no_such"),
		NewHashJoin(NewScan(r), NewScan(r), "no_such", "cid", true),
		NewAggregate(NewScan(r), []string{"no_such"}, nil),
	}
	for i, it := range cases {
		if _, err := Materialize(context.Background(), it); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestMaterializeCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Materialize(ctx, NewScan(customers())); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMaterializeOwnsFreshSlices(t *testing.T) {
	r := customers()
	out := must(Materialize(context.Background(), NewScan(r)))
	if out.Len() != r.Len() {
		t.Fatalf("rows = %d", out.Len())
	}
	// Appending to the materialised copy must not disturb the source.
	before := r.Len()
	out.Tuples = append(out.Tuples[:1], out.Tuples[2:]...)
	if r.Len() != before {
		t.Fatal("materialised relation shares its Tuples slice with the source")
	}
}

func TestSelectRenameNoAliasing(t *testing.T) {
	// Satellite (b): the eager Select/Rename shims must hand out Tuples
	// slices whose backing arrays are not shared with the source, per the
	// ownership rule on Relation.
	r := customers()
	sel := Select(r, func(Tuple) bool { return true })
	if sel.Len() != r.Len() {
		t.Fatalf("rows = %d", sel.Len())
	}
	sel.Tuples[0], sel.Tuples[1] = sel.Tuples[1], sel.Tuples[0]
	if r.Get(r.Tuples[0], "cid").Str() != "cid01" {
		t.Fatal("Select shares its Tuples backing array with the source")
	}
	ren := Rename(r, "alias")
	ren.Tuples = ren.Tuples[:0]
	if r.Len() == 0 {
		t.Fatal("Rename shares its Tuples backing array with the source")
	}
}

func TestCollectStatsCountsRows(t *testing.T) {
	c := customers()
	it := NewLimit(NewSort(NewScan(c), "cid"), 2)
	out := must(Materialize(context.Background(), it))
	if out.Len() != 2 {
		t.Fatalf("rows = %d", out.Len())
	}
	st := CollectStats(it)
	if len(st.Lines) != 3 {
		t.Fatalf("plan lines = %d, want 3\n%s", len(st.Lines), st)
	}
	// Pre-order: limit, sort, scan.
	if st.Lines[0].Rows != 2 || st.Lines[1].Rows < 2 || st.Lines[2].Rows != int64(c.Len()) {
		t.Fatalf("rows-out wrong:\n%s", st)
	}
	if st.Lines[2].Depth != 2 {
		t.Fatalf("scan depth = %d", st.Lines[2].Depth)
	}
	if !strings.Contains(st.String(), "rows=") {
		t.Fatalf("rendering missing rows=:\n%s", st)
	}
	if st.TotalRows() < int64(c.Len())+2 {
		t.Fatalf("TotalRows = %d", st.TotalRows())
	}
}

func TestIteratorRewind(t *testing.T) {
	// Operators must be re-openable: the cross-join kernel re-opens its
	// first child for every pass.
	a := NewRelation(NewSchema("a", "", Attribute{Name: "x"}))
	a.InsertVals(I(1))
	a.InsertVals(I(2))
	b := NewRelation(NewSchema("b", "", Attribute{Name: "y"}))
	b.InsertVals(I(3))
	b.InsertVals(I(4))
	it := NewCrossJoin([]Iterator{NewScan(a), NewScan(b)}, []string{"a", "b"})
	out := must(Materialize(context.Background(), it))
	if out.Len() != 4 {
		t.Fatalf("cross rows = %d", out.Len())
	}
	again := must(Materialize(context.Background(), it))
	eqSorted(t, out, again)
}

// closeTracker counts Open/Close calls through to the wrapped iterator.
type closeTracker struct {
	Iterator
	opens, closes int
}

func (c *closeTracker) Open(ctx context.Context) error { c.opens++; return c.Iterator.Open(ctx) }
func (c *closeTracker) Close() error                   { c.closes++; return c.Iterator.Close() }

// noopKernel yields no tuples; it exists so tests can build an op with
// arbitrary children without any kernel behaviour.
type noopKernel struct{ baseKernel }

func (noopKernel) next(o *op) (Tuple, error) { return nil, nil }

// TestOpenFailureClosesOpenedChildren pins the atomicity of op.Open:
// when a child fails to open mid-fan, every child opened before it
// (and the failed child itself) must be closed before the error
// propagates — a caller that only forwards the error must not strand
// open iterators. Found by the iterclose analyzer during the
// semjoinlint baseline cleanup.
func TestOpenFailureClosesOpenedChildren(t *testing.T) {
	r := customers()
	a := &closeTracker{Iterator: NewScan(r)}
	bad := &closeTracker{Iterator: errOp("boom", errors.New("boom"))}
	after := &closeTracker{Iterator: NewScan(r)}
	it := newOp("parent", noopKernel{}, a, bad, after)

	if err := it.Open(context.Background()); err == nil {
		t.Fatal("expected Open to fail through the failing child")
	}
	if a.opens != 1 || a.closes != 1 {
		t.Fatalf("first child: opens=%d closes=%d, want 1/1", a.opens, a.closes)
	}
	if bad.closes != 1 {
		t.Fatalf("failed child: closes=%d, want 1", bad.closes)
	}
	if after.opens != 0 {
		t.Fatalf("later child was opened (%d times) despite the earlier failure", after.opens)
	}
	// The documented convention — close even after a failed Open — must
	// stay safe on the already-unwound tree.
	if err := it.Close(); err != nil {
		t.Fatalf("Close after failed Open: %v", err)
	}
}

// TestKernelFailureClosesChildren covers the other two unwind paths:
// a kernel that fails to resolve (or open) must close the children
// that were already opened.
func TestKernelFailureClosesChildren(t *testing.T) {
	child := &closeTracker{Iterator: NewScan(customers())}
	it := newOp("parent", &errKernel{err: errors.New("resolve failed")}, child)
	if err := it.Open(context.Background()); err == nil {
		t.Fatal("expected Open to fail in the kernel")
	}
	if child.opens != 1 || child.closes != 1 {
		t.Fatalf("child: opens=%d closes=%d, want 1/1", child.opens, child.closes)
	}
	if err := it.Close(); err != nil {
		t.Fatalf("Close after failed Open: %v", err)
	}
}
