// BatchIterator plumbing: the batch-at-a-time mirror of the Volcano
// Iterator. Batch operators share the op conventions — atomic Open
// with close-on-failure, late schema resolution through
// errSchemaPending, per-operator stats, cancellation checks and
// once-per-execution metric accounting — plus a Batches counter so
// EXPLAIN can report rows-per-batch. NewBatcher and NewUnbatcher
// bridge the two worlds in either direction, which is how the eager
// *Relation API and the semantic-join operators in internal/core stay
// source-compatible with the vectorized pipeline.
package rel

import (
	"context"
	"fmt"
	"time"

	"semjoin/internal/obs"
)

// BatchIterator is a Volcano-style pull operator exchanging column
// batches instead of single tuples.
type BatchIterator interface {
	// Schema returns the output schema, or nil while it is unknown.
	Schema() *Schema
	// Open prepares the operator, recursively opening children first.
	Open(ctx context.Context) error
	// NextBatch returns the next non-empty batch, or (nil, nil) at end
	// of stream. The batch is only valid until the following call.
	NextBatch() (*Batch, error)
	// Close releases resources; safe after a failed Open and at most
	// once per Open.
	Close() error
	// Stats returns the operator's live counters.
	Stats() *OpStats
	// BatchChildren returns the child operators for plan traversal.
	// (Named so that bridge operators can also satisfy Iterator, whose
	// Children has a different signature.)
	BatchChildren() []BatchIterator
}

// batchKernel is the per-operator behaviour plugged into batchOp,
// mirroring kernel.
type batchKernel interface {
	resolve(o *batchOp) error
	open(o *batchOp) error
	next(o *batchOp) (*Batch, error)
	close(o *batchOp) error
}

// batchOp wraps a batchKernel with the shared BatchIterator plumbing.
// rowKids are row-iterator children (the Batcher bridge), opened and
// closed alongside and surfaced to CollectStats.
type batchOp struct {
	k         batchKernel
	children  []BatchIterator
	rowKids   []Iterator
	schema    *Schema
	stats     OpStats
	ctx       context.Context
	opened    bool
	done      bool
	resolved  bool
	metered   bool
	unmetered bool
}

func newBatchOp(label string, k batchKernel, children ...BatchIterator) *batchOp {
	o := &batchOp{k: k, children: children}
	o.stats.Label = label
	o.resolved = k.resolve(o) == nil
	return o
}

func (o *batchOp) Schema() *Schema                { return o.schema }
func (o *batchOp) BatchChildren() []BatchIterator { return o.children }
func (o *batchOp) RowChildren() []Iterator        { return o.rowKids }
func (o *batchOp) Stats() *OpStats                { return &o.stats }

func (o *batchOp) Open(ctx context.Context) error {
	start := time.Now()
	defer func() { o.stats.Elapsed += time.Since(start) }()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	o.ctx = ctx
	o.done = false
	for i, c := range o.children {
		if err := c.Open(ctx); err != nil {
			// Open is atomic, exactly as for row ops: close the failed
			// child and every sibling opened before it.
			c.Close()
			for _, prev := range o.children[:i] {
				prev.Close()
			}
			return err
		}
	}
	for i, c := range o.rowKids {
		if err := c.Open(ctx); err != nil {
			c.Close()
			for _, prev := range o.rowKids[:i] {
				prev.Close()
			}
			for _, prev := range o.children {
				prev.Close()
			}
			return err
		}
	}
	if !o.resolved {
		if err := o.k.resolve(o); err != nil {
			o.closeChildren()
			return err
		}
		o.resolved = true
	}
	if err := o.k.open(o); err != nil {
		o.closeChildren()
		return err
	}
	o.opened = true
	o.metered = !o.unmetered
	return nil
}

func (o *batchOp) closeChildren() {
	for _, c := range o.children {
		c.Close()
	}
	for _, c := range o.rowKids {
		c.Close()
	}
}

func (o *batchOp) NextBatch() (*Batch, error) {
	if o.done || !o.opened {
		return nil, nil
	}
	start := time.Now()
	b, err := o.k.next(o)
	o.stats.Elapsed += time.Since(start)
	if err != nil || b == nil {
		o.done = true
		return nil, err
	}
	o.stats.RowsOut += int64(b.Rows())
	o.stats.Batches++
	// One cancellation check per batch replaces the row engine's
	// every-256-rows check at a fraction of the frequency.
	if err := o.ctx.Err(); err != nil {
		o.done = true
		return nil, err
	}
	return b, nil
}

func (o *batchOp) Close() error {
	var first error
	if o.opened {
		if err := o.k.close(o); err != nil {
			first = err
		}
		o.opened = false
	}
	if o.metered {
		o.metered = false
		reg := obs.FromContext(o.ctx)
		kind := opKind(o.stats.Label)
		reg.Counter("rel_op_rows_total", "op", kind).Add(o.stats.RowsOut)
		reg.Counter("rel_op_batches_total", "op", kind).Add(o.stats.Batches)
	}
	for _, c := range o.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, c := range o.rowKids {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	o.done = true
	return first
}

// baseBatchKernel provides no-op resolve/open/close for embedding.
type baseBatchKernel struct{}

func (baseBatchKernel) resolve(o *batchOp) error { return nil }
func (baseBatchKernel) open(o *batchOp) error    { return nil }
func (baseBatchKernel) close(o *batchOp) error   { return nil }

// errBatchKernel surfaces a construction-time error through Open.
type errBatchKernel struct {
	baseBatchKernel
	err error
}

func (k *errBatchKernel) resolve(o *batchOp) error        { return k.err }
func (k *errBatchKernel) next(o *batchOp) (*Batch, error) { return nil, k.err }

func errBatchOp(label string, err error) BatchIterator {
	return newBatchOp(label, &errBatchKernel{err: err})
}

// drainBatches pulls every remaining batch from an already-open batch
// iterator.
func drainBatches(c BatchIterator) ([]*Batch, error) {
	var out []*Batch
	for {
		b, err := c.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return out, nil
		}
		out = append(out, b)
	}
}

// MaterializeBatches opens it, drains it into a relation and closes
// it — the batch-world Materialize.
func MaterializeBatches(ctx context.Context, it BatchIterator) (*Relation, error) {
	if err := it.Open(ctx); err != nil {
		it.Close()
		return nil, err
	}
	var ts []Tuple
	for {
		b, err := it.NextBatch()
		if err != nil {
			it.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		ts = b.AppendTuplesTo(ts)
	}
	if err := it.Close(); err != nil {
		return nil, err
	}
	s := it.Schema()
	if s == nil {
		return nil, fmt.Errorf("rel: materialize: batch iterator produced no schema")
	}
	out := NewRelation(s)
	out.Tuples = ts
	return out, nil
}

// ------------------------------------------------------------ batcher

// batcherKernel adapts a row iterator into the batch world by pulling
// up to size tuples per NextBatch.
type batcherKernel struct {
	baseBatchKernel
	size int
	buf  *Batch
}

func (k *batcherKernel) resolve(o *batchOp) error {
	s := o.rowKids[0].Schema()
	if s == nil {
		return errSchemaPending
	}
	o.schema = s
	return nil
}

func (k *batcherKernel) open(o *batchOp) error { k.buf = nil; return nil }

func (k *batcherKernel) next(o *batchOp) (*Batch, error) {
	b := NewBatch(o.schema)
	child := o.rowKids[0]
	for b.Rows() < k.size {
		t, err := child.Next() //lint:allow batchsel batcherKernel is the designed row-to-batch bridge; NewBatcher exists to wrap row-only operators
		if err != nil {
			return nil, err
		}
		if t == nil {
			break
		}
		b.AppendTuple(t)
	}
	if b.Rows() == 0 {
		return nil, nil
	}
	return b, nil
}

// NewBatcher adapts a row iterator into a BatchIterator producing
// batches of up to size rows (size <= 0 means DefaultBatchSize).
func NewBatcher(child Iterator, size int) BatchIterator {
	if size <= 0 {
		size = DefaultBatchSize
	}
	// Built by hand rather than via newBatchOp: resolve reads rowKids,
	// which must be in place before the first resolve attempt.
	o := &batchOp{k: &batcherKernel{size: size}, rowKids: []Iterator{child}}
	o.stats.Label = "batch"
	o.resolved = o.k.resolve(o) == nil
	return o
}

// ToBatches lifts a row iterator into the batch world. Plain relation
// scans (optionally under a rename) unwrap into zero-copy batch scans
// of the relation's columnar image; anything else is wrapped with a
// Batcher that forms batches of up to size rows.
func ToBatches(it Iterator, size int) BatchIterator {
	if o, ok := it.(*op); ok {
		switch k := o.k.(type) {
		case *scanKernel:
			return NewBatchScan(k.r)
		case *renameKernel:
			if co, ok := o.children[0].(*op); ok {
				if ck, ok := co.k.(*scanKernel); ok {
					return NewBatchRename(NewBatchScan(ck.r), k.name)
				}
			}
		}
	}
	return NewBatcher(it, size)
}

// ---------------------------------------------------------- unbatcher

// unbatcher adapts a BatchIterator back into the row world. It
// implements Iterator (so it drops into any row plan) and exposes its
// batch child through BatchChildren for plan traversal.
type unbatcher struct {
	child  BatchIterator
	stats  OpStats
	cur    *Batch
	i      int
	opened bool
	ctx    context.Context
}

// NewUnbatcher adapts a batch iterator into a row Iterator streaming
// the live rows of every batch in order.
func NewUnbatcher(child BatchIterator) Iterator {
	u := &unbatcher{child: child}
	u.stats.Label = "unbatch"
	return u
}

func (u *unbatcher) Schema() *Schema                { return u.child.Schema() }
func (u *unbatcher) Children() []Iterator           { return nil }
func (u *unbatcher) BatchChildren() []BatchIterator { return []BatchIterator{u.child} }
func (u *unbatcher) Stats() *OpStats                { return &u.stats }

func (u *unbatcher) Open(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := u.child.Open(ctx); err != nil {
		u.child.Close()
		return err
	}
	u.ctx = ctx
	u.cur, u.i = nil, 0
	u.opened = true
	return nil
}

func (u *unbatcher) Next() (Tuple, error) {
	if !u.opened {
		return nil, nil
	}
	for {
		if u.cur != nil && u.i < u.cur.Rows() {
			t := u.cur.TupleAt(u.i)
			u.i++
			u.stats.RowsOut++
			return t, nil
		}
		b, err := u.child.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		u.stats.Batches++
		u.cur, u.i = b, 0
	}
}

func (u *unbatcher) Close() error {
	u.opened = false
	u.cur = nil
	return u.child.Close()
}
