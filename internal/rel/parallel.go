// Morsel-driven parallel execution. NewExchange splits its input into
// fixed-size morsels, runs an independent copy of a sub-pipeline over
// each morsel on a bounded worker pool, and merges the per-morsel
// outputs back into one stream *in morsel order* — so a parallel plan
// produces exactly the tuple sequence of its serial counterpart, which
// keeps SORT/LIMIT plans deterministic and lets the differential test
// harness compare serial and parallel executions row for row.
package rel

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/maphash"
	"math"
	"strings"
	"sync"
	"sync/atomic"

	"semjoin/internal/obs"
)

// DefaultMorselSize is the tuple count per morsel when NewExchange is
// used without an explicit size. Small enough that short inputs still
// fan out, large enough that per-morsel pipeline setup is noise.
const DefaultMorselSize = 256

// PipelineBuilder constructs one worker's sub-pipeline over a morsel
// source. It is called once per morsel (pipeline construction is cheap)
// and must be reusable: any state it closes over has to be read-only.
type PipelineBuilder func(source Iterator) Iterator

type exchangeTask struct {
	done chan struct{}
	out  []Tuple
	err  error
}

type exchangeKernel struct {
	baseKernel
	p      int
	morsel int
	build  PipelineBuilder

	tasks  []*exchangeTask
	cancel context.CancelFunc
	wg     sync.WaitGroup
	cur    int // morsel being drained
	i      int // next tuple within the current morsel
}

func (k *exchangeKernel) resolve(o *op) error {
	in := o.children[0].Schema()
	if in == nil {
		return errSchemaPending
	}
	// Probe the sub-pipeline over an empty input to learn the output
	// schema; builders whose schema needs data (generators) force a
	// short open/close round trip.
	probe := k.build(NewScan(NewRelation(in)))
	if probe.Schema() == nil {
		if err := probe.Open(context.Background()); err != nil {
			probe.Close()
			return err
		}
		defer probe.Close()
	}
	s := probe.Schema()
	if s == nil {
		return fmt.Errorf("rel: exchange: sub-pipeline produced no schema")
	}
	o.schema = s
	// The per-morsel operators never appear as children in the plan
	// tree, so record the sub-pipeline's spine as the exchange's note:
	// "exchange [project <- select]".
	if o.stats.Note == "" {
		var labels []string
		for it := probe; it != nil; {
			cs := it.Children()
			if len(cs) == 0 {
				break // the morsel source scan
			}
			labels = append(labels, it.Stats().Label)
			it = cs[0]
		}
		o.stats.Note = strings.Join(labels, " <- ")
	}
	return nil
}

func (k *exchangeKernel) open(o *op) error {
	rows, err := drain(o.children[0])
	if err != nil {
		return err
	}
	in := o.children[0].Schema()
	morsel := k.morsel
	if morsel <= 0 {
		morsel = DefaultMorselSize
	}
	n := (len(rows) + morsel - 1) / morsel
	if n == 0 {
		n = 1 // one empty morsel keeps generators/edge cases uniform
	}
	k.tasks = make([]*exchangeTask, n)
	for i := range k.tasks {
		k.tasks[i] = &exchangeTask{done: make(chan struct{})}
	}
	workers := k.p
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	o.stats.Workers = workers

	// Worker-occupancy metrics: morsel count (batches), input rows and
	// the realised worker count per exchange. Recorded once per Open, so
	// the morsel hot loop stays clean.
	reg := obs.FromContext(o.ctx)
	reg.Counter("rel_exchange_morsels_total").Add(int64(n))
	reg.Counter("rel_exchange_input_rows_total").Add(int64(len(rows)))
	reg.Histogram("rel_exchange_workers", obs.SizeBuckets).Observe(float64(workers))

	ctx, cancel := context.WithCancel(o.ctx)
	k.cancel = cancel
	var next atomic.Int64
	k.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer k.wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n || ctx.Err() != nil {
					return
				}
				lo := idx * morsel
				hi := lo + morsel
				if hi > len(rows) {
					hi = len(rows)
				}
				t := k.tasks[idx]
				t.out, t.err = runMorsel(ctx, k.build, in, rows[lo:hi])
				close(t.done)
			}
		}()
	}
	k.cur, k.i = 0, 0
	return nil
}

// runMorsel executes one sub-pipeline over a morsel of tuples. The
// morsel source scan is unmetered (its rows were already counted
// entering the exchange); the sub-pipeline's own operators record
// normally, summing across morsels to the serial plan's counts.
func runMorsel(ctx context.Context, build PipelineBuilder, schema *Schema, rows []Tuple) ([]Tuple, error) {
	src := &Relation{Schema: schema, Tuples: rows}
	sub := build(newMorselScan(src))
	if err := sub.Open(ctx); err != nil {
		sub.Close()
		return nil, err
	}
	var out []Tuple
	for {
		t, err := sub.Next()
		if err != nil {
			sub.Close()
			return nil, err
		}
		if t == nil {
			break
		}
		out = append(out, t)
		if len(out)&63 == 0 {
			if err := ctx.Err(); err != nil {
				sub.Close()
				return nil, err
			}
		}
	}
	return out, sub.Close()
}

func (k *exchangeKernel) next(o *op) (Tuple, error) {
	for k.cur < len(k.tasks) {
		t := k.tasks[k.cur]
		select {
		case <-t.done:
		case <-o.ctx.Done():
			return nil, o.ctx.Err()
		}
		if t.err != nil {
			return nil, t.err
		}
		if k.i < len(t.out) {
			tup := t.out[k.i]
			k.i++
			return tup, nil
		}
		t.out = nil // release drained morsel memory early
		k.cur++
		k.i = 0
	}
	return nil, nil
}

func (k *exchangeKernel) close(o *op) error {
	if k.cancel != nil {
		k.cancel()
		k.wg.Wait() // no goroutine outlives Close
		k.cancel = nil
	}
	k.tasks = nil
	return nil
}

// NewExchange is the morsel-driven parallelism operator: it
// materialises child at Open, splits the rows into morsels of
// DefaultMorselSize, runs build's sub-pipeline over the morsels on p
// workers, and merges outputs in morsel order. With p <= 1 it
// degenerates to running the sub-pipeline inline over one morsel
// stream. Cancellation of the Open context stops the workers, and
// Close waits for them, so a cancelled plan leaks no goroutines.
func NewExchange(child Iterator, p int, build PipelineBuilder) Iterator {
	return NewExchangeMorsel(child, p, 0, build)
}

// NewExchangeMorsel is NewExchange with an explicit morsel size
// (tuples per morsel); size <= 0 means DefaultMorselSize. Tests use
// tiny morsels to force multi-worker schedules on small inputs.
func NewExchangeMorsel(child Iterator, p int, morsel int, build PipelineBuilder) Iterator {
	if build == nil {
		return errOp("exchange", errors.New("rel: exchange: nil pipeline builder"))
	}
	return newOp("exchange", &exchangeKernel{p: p, morsel: morsel, build: build}, child)
}

// ---------------------------------------------------- parallel build

var hashSeed = maphash.MakeSeed()

// valuePartition assigns a normalised join key (Value.HashKey) to one
// of n hash partitions. The hash covers the kind tag and the payload
// of the kind actually set, so two values that are == as map keys
// always land in the same partition.
func valuePartition(key Value, n int) int {
	var h maphash.Hash
	h.SetSeed(hashSeed)
	// maphash writes never fail; errors are statically nil.
	h.WriteByte(byte(key.kind))
	switch key.kind {
	case KindString:
		h.WriteString(key.s)
	case KindFloat:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(key.f))
		h.Write(b[:])
		if key.s != "" {
			// Canonical NaN / -0 sentinels carry their identity here.
			h.WriteString(key.s)
		}
	case KindBool:
		if key.b {
			h.WriteByte(1)
		}
	}
	return int(h.Sum64() % uint64(n))
}

// buildPartitioned builds per-partition hash tables over ts in
// parallel: a sequential pass splits the tuples by key hash (keeping
// input order within each partition, so probe results match the serial
// build exactly), then one goroutine per partition builds its table.
// Tables are keyed on normalised Values directly — no per-row string
// formatting.
func buildPartitioned(ts []Tuple, col, workers int) []map[Value][]Tuple {
	parts := make([][]Tuple, workers)
	keys := make([][]Value, workers)
	for _, t := range ts {
		key, ok := t[col].HashKey()
		if !ok {
			continue
		}
		p := valuePartition(key, workers)
		parts[p] = append(parts[p], t)
		keys[p] = append(keys[p], key)
	}
	tables := make([]map[Value][]Tuple, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for p := 0; p < workers; p++ {
		go func(p int) {
			defer wg.Done()
			ht := make(map[Value][]Tuple, len(parts[p]))
			for i, t := range parts[p] {
				key := keys[p][i]
				ht[key] = append(ht[key], t)
			}
			tables[p] = ht
		}(p)
	}
	wg.Wait()
	return tables
}
