package rel

import (
	"bytes"
	"testing"
)

func TestRelationSaveLoadRoundTrip(t *testing.T) {
	r := NewRelation(NewSchema("mix", "id",
		Attribute{Name: "id", Type: KindString},
		Attribute{Name: "n", Type: KindInt},
		Attribute{Name: "f", Type: KindFloat},
		Attribute{Name: "b", Type: KindBool},
		Attribute{Name: "s", Type: KindString},
	))
	r.InsertVals(S("a"), I(-5), F(2.25), B(true), S("hello 'world'"))
	r.InsertVals(S("b"), Null, Null, Null, Null)
	r.InsertVals(S("c"), I(1<<40), F(-0.0), B(false), S(""))

	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadRelation(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.String() != r.Schema.String() || got.Schema.Key != r.Schema.Key {
		t.Fatalf("schema changed: %v", got.Schema)
	}
	if got.Len() != r.Len() {
		t.Fatalf("rows = %d", got.Len())
	}
	for i := range r.Tuples {
		for j := range r.Tuples[i] {
			a, b := r.Tuples[i][j], got.Tuples[i][j]
			if a.IsNull() != b.IsNull() {
				t.Fatalf("null mismatch at %d,%d", i, j)
			}
			if !a.IsNull() && a.Key() != b.Key() {
				t.Fatalf("value mismatch at %d,%d: %v vs %v", i, j, a, b)
			}
		}
	}
}

func TestRelationLoadCorrupt(t *testing.T) {
	if _, err := LoadRelation(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("corrupt input should error")
	}
	r := NewRelation(NewSchema("r", "", Attribute{Name: "x"}))
	r.InsertVals(S("value"))
	var buf bytes.Buffer
	if err := r.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadRelation(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("truncated input should error")
	}
}
