// Morsel-driven parallelism over batches: NewBatchExchange moves whole
// column batches as morsels. The child's batches are drained at Open,
// each batch becomes one task for the worker pool, and per-task
// outputs merge back in input-batch order — so a parallel batch plan
// produces exactly the batch sequence of its serial counterpart, which
// keeps both the tuple order and the per-operator batch counters
// identical to serial execution (the metrics-parity invariant).
package rel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"semjoin/internal/obs"
)

// BatchPipelineBuilder constructs one worker's sub-pipeline over a
// morsel source, the batch analogue of PipelineBuilder. It is called
// once per morsel and must be reusable: any state it closes over has
// to be read-only.
type BatchPipelineBuilder func(source BatchIterator) BatchIterator

type batchExchangeTask struct {
	done chan struct{}
	out  []*Batch
	err  error
}

type batchExchangeKernel struct {
	baseBatchKernel
	p     int
	build BatchPipelineBuilder

	tasks  []*batchExchangeTask
	cancel context.CancelFunc
	wg     sync.WaitGroup
	cur    int // task being drained
	i      int // next batch within the current task
}

func (k *batchExchangeKernel) resolve(o *batchOp) error {
	in := o.children[0].Schema()
	if in == nil {
		return errSchemaPending
	}
	// Probe the sub-pipeline over an empty morsel source to learn the
	// output schema, forcing an open/close round trip when the builder
	// only knows its schema after Open.
	probe := k.build(newMorselBatchSource(in, nil))
	if probe.Schema() == nil {
		if err := probe.Open(context.Background()); err != nil {
			probe.Close()
			return err
		}
		defer probe.Close()
	}
	s := probe.Schema()
	if s == nil {
		return fmt.Errorf("rel: exchange: sub-pipeline produced no schema")
	}
	o.schema = s
	// Record the sub-pipeline's spine as the exchange's note, exactly
	// as the row exchange does: "exchange [project <- select]".
	if o.stats.Note == "" {
		var labels []string
		for it := probe; it != nil; {
			cs := it.BatchChildren()
			if len(cs) == 0 {
				break // the morsel source
			}
			labels = append(labels, it.Stats().Label)
			it = cs[0]
		}
		o.stats.Note = strings.Join(labels, " <- ")
	}
	return nil
}

func (k *batchExchangeKernel) open(o *batchOp) error {
	morsels, err := drainBatches(o.children[0])
	if err != nil {
		return err
	}
	in := o.children[0].Schema()
	n := len(morsels)
	if n == 0 {
		n = 1 // one empty morsel keeps generators/edge cases uniform
		morsels = []*Batch{nil}
	}
	k.tasks = make([]*batchExchangeTask, n)
	for i := range k.tasks {
		k.tasks[i] = &batchExchangeTask{done: make(chan struct{})}
	}
	workers := k.p
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	o.stats.Workers = workers

	var rows int64
	for _, m := range morsels {
		if m != nil {
			rows += int64(m.Rows())
		}
	}
	reg := obs.FromContext(o.ctx)
	reg.Counter("rel_exchange_morsels_total").Add(int64(n))
	reg.Counter("rel_exchange_input_rows_total").Add(rows)
	reg.Histogram("rel_exchange_workers", obs.SizeBuckets).Observe(float64(workers))

	ctx, cancel := context.WithCancel(o.ctx)
	k.cancel = cancel
	var next atomic.Int64
	k.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer k.wg.Done()
			for {
				idx := int(next.Add(1)) - 1
				if idx >= n || ctx.Err() != nil {
					return
				}
				var src []*Batch
				if morsels[idx] != nil {
					src = morsels[idx : idx+1]
				}
				t := k.tasks[idx]
				t.out, t.err = runBatchMorsel(ctx, k.build, in, src)
				close(t.done)
			}
		}()
	}
	k.cur, k.i = 0, 0
	return nil
}

// runBatchMorsel executes one sub-pipeline over a single-batch morsel.
// The morsel source is unmetered (its rows and batches were already
// counted entering the exchange); the sub-pipeline's own operators
// record normally and, because every morsel is exactly one input
// batch, their per-operator batch counts sum to the serial plan's.
func runBatchMorsel(ctx context.Context, build BatchPipelineBuilder, schema *Schema, src []*Batch) ([]*Batch, error) {
	sub := build(newMorselBatchSource(schema, src))
	if err := sub.Open(ctx); err != nil {
		sub.Close()
		return nil, err
	}
	var out []*Batch
	for {
		b, err := sub.NextBatch()
		if err != nil {
			sub.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		out = append(out, b)
		if err := ctx.Err(); err != nil {
			sub.Close()
			return nil, err
		}
	}
	return out, sub.Close()
}

func (k *batchExchangeKernel) next(o *batchOp) (*Batch, error) {
	for k.cur < len(k.tasks) {
		t := k.tasks[k.cur]
		select {
		case <-t.done:
		case <-o.ctx.Done():
			return nil, o.ctx.Err()
		}
		if t.err != nil {
			return nil, t.err
		}
		if k.i < len(t.out) {
			b := t.out[k.i]
			k.i++
			return b, nil
		}
		t.out = nil // release drained morsel memory early
		k.cur++
		k.i = 0
	}
	return nil, nil
}

func (k *batchExchangeKernel) close(o *batchOp) error {
	if k.cancel != nil {
		k.cancel()
		k.wg.Wait() // no goroutine outlives Close
		k.cancel = nil
	}
	k.tasks = nil
	return nil
}

// NewBatchExchange runs build's sub-pipeline over child's batches on p
// workers, one batch per morsel, merging outputs in input-batch order.
// With p <= 1 it degenerates to running the sub-pipeline inline.
// Cancellation of the Open context stops the workers, and Close waits
// for them, so a cancelled plan leaks no goroutines.
func NewBatchExchange(child BatchIterator, p int, build BatchPipelineBuilder) BatchIterator {
	if build == nil {
		return errBatchOp("exchange", errors.New("rel: exchange: nil pipeline builder"))
	}
	return newBatchOp("exchange", &batchExchangeKernel{p: p, build: build}, child)
}
