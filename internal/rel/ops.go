package rel

import (
	"fmt"
	"sort"
)

// Pred is a tuple predicate used by Select and NestedLoopJoin.
type Pred func(Tuple) bool

// Select returns the tuples of r satisfying p, sharing tuple storage.
func Select(r *Relation, p Pred) *Relation {
	out := NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if p(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Project returns r restricted to the named attributes, in the given
// order. Unknown attribute names panic — the planner validates names
// before execution, so reaching this is a bug.
func Project(r *Relation, names ...string) *Relation {
	cols := make([]int, len(names))
	attrs := make([]Attribute, len(names))
	for i, n := range names {
		c := r.Schema.Col(n)
		if c < 0 {
			panic(fmt.Sprintf("rel: project: no attribute %q in %s", n, r.Schema))
		}
		cols[i] = c
		attrs[i] = Attribute{Name: names[i], Type: r.Schema.Attrs[c].Type}
	}
	key := ""
	for _, n := range names {
		if n == r.Schema.Key {
			key = n
		}
	}
	out := NewRelation(NewSchema(r.Schema.Name, key, attrs...))
	for _, t := range r.Tuples {
		nt := make(Tuple, len(cols))
		for i, c := range cols {
			nt[i] = t[c]
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out
}

// Rename returns r with a new relation name (schema copy, tuples shared).
func Rename(r *Relation, name string) *Relation {
	out := NewRelation(r.Schema.Rename(name))
	out.Tuples = r.Tuples
	return out
}

// CrossProduct returns the Cartesian product of a and b with qualified
// attribute names.
func CrossProduct(a, b *Relation, aName, bName string) *Relation {
	qa, qb := a.Schema.Qualified(aName), b.Schema.Qualified(bName)
	attrs := append(append([]Attribute(nil), qa.Attrs...), qb.Attrs...)
	out := NewRelation(NewSchema(aName+"x"+bName, "", attrs...))
	for _, ta := range a.Tuples {
		for _, tb := range b.Tuples {
			nt := make(Tuple, 0, len(ta)+len(tb))
			nt = append(append(nt, ta...), tb...)
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out
}

// CrossJoinAll returns the Cartesian product of several relations with
// attribute names qualified by the given binding names (flat, one level).
func CrossJoinAll(rels []*Relation, names []string) *Relation {
	if len(rels) != len(names) || len(rels) == 0 {
		panic("rel: CrossJoinAll needs one name per relation")
	}
	var attrs []Attribute
	for i, r := range rels {
		attrs = append(attrs, r.Schema.Qualified(names[i]).Attrs...)
	}
	out := NewRelation(NewSchema("cross", "", attrs...))
	var build func(i int, acc Tuple)
	build = func(i int, acc Tuple) {
		if i == len(rels) {
			out.Tuples = append(out.Tuples, acc.Clone())
			return
		}
		for _, t := range rels[i].Tuples {
			build(i+1, append(acc, t...))
		}
	}
	build(0, make(Tuple, 0, len(attrs)))
	return out
}

// HashJoin equijoins a and b on a.leftAttr = b.rightAttr, producing the
// concatenation of both tuple layouts with attribute names qualified by
// the relation names. Null join keys never match (SQL semantics).
func HashJoin(a, b *Relation, leftAttr, rightAttr string) *Relation {
	lc := a.Schema.Col(leftAttr)
	rc := b.Schema.Col(rightAttr)
	if lc < 0 || rc < 0 {
		panic(fmt.Sprintf("rel: hash join: missing attribute %q/%q", leftAttr, rightAttr))
	}
	// Build on the smaller side.
	swap := len(b.Tuples) < len(a.Tuples)
	build, probe := a, b
	bc, pc := lc, rc
	if swap {
		build, probe = b, a
		bc, pc = rc, lc
	}
	ht := make(map[string][]Tuple, len(build.Tuples))
	for _, t := range build.Tuples {
		if t[bc].IsNull() {
			continue
		}
		k := t[bc].Key()
		ht[k] = append(ht[k], t)
	}
	qa := a.Schema.Qualified(a.Schema.Name)
	qb := b.Schema.Qualified(b.Schema.Name)
	attrs := append(append([]Attribute(nil), qa.Attrs...), qb.Attrs...)
	out := NewRelation(NewSchema(a.Schema.Name+"_"+b.Schema.Name, "", attrs...))
	for _, pt := range probe.Tuples {
		if pt[pc].IsNull() {
			continue
		}
		for _, bt := range ht[pt[pc].Key()] {
			// Output layout is always a's values then b's values.
			left, right := bt, pt // build == a, probe == b
			if swap {
				left, right = pt, bt // probe == a, build == b
			}
			nt := make(Tuple, 0, len(left)+len(right))
			nt = append(append(nt, left...), right...)
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out
}

// NestedLoopJoin joins a and b with an arbitrary predicate over the
// concatenated tuple (a's values first). Attribute names are qualified.
func NestedLoopJoin(a, b *Relation, p func(joined Tuple) bool) *Relation {
	qa := a.Schema.Qualified(a.Schema.Name)
	qb := b.Schema.Qualified(b.Schema.Name)
	attrs := append(append([]Attribute(nil), qa.Attrs...), qb.Attrs...)
	out := NewRelation(NewSchema(a.Schema.Name+"_"+b.Schema.Name, "", attrs...))
	joined := make(Tuple, len(attrs))
	for _, ta := range a.Tuples {
		copy(joined, ta)
		for _, tb := range b.Tuples {
			copy(joined[len(ta):], tb)
			if p(joined) {
				out.Tuples = append(out.Tuples, joined.Clone())
			}
		}
	}
	return out
}

// NaturalJoin joins a and b on all shared attribute names (the paper's
// S ⋈ f(S,G) ⋈ h(S,G) reduction uses natural joins on tid/vid). Shared
// attributes appear once; remaining attributes keep their bare names.
func NaturalJoin(a, b *Relation) *Relation {
	var shared []string
	for _, attr := range a.Schema.Attrs {
		if b.Schema.Has(attr.Name) {
			shared = append(shared, attr.Name)
		}
	}
	if len(shared) == 0 {
		return CrossProduct(a, b, a.Schema.Name, b.Schema.Name)
	}
	aCols := make([]int, len(shared))
	bCols := make([]int, len(shared))
	for i, n := range shared {
		aCols[i] = a.Schema.Col(n)
		bCols[i] = b.Schema.Col(n)
	}
	// Output schema: all of a, then b's non-shared attributes.
	attrs := append([]Attribute(nil), a.Schema.Attrs...)
	var bExtra []int
	for i, attr := range b.Schema.Attrs {
		if !a.Schema.Has(attr.Name) {
			attrs = append(attrs, attr)
			bExtra = append(bExtra, i)
		}
	}
	key := a.Schema.Key
	if key == "" {
		key = b.Schema.Key
		if key != "" && !NewSchema("tmp", "", attrs...).Has(key) {
			key = ""
		}
	}
	out := NewRelation(NewSchema(a.Schema.Name+"_"+b.Schema.Name, key, attrs...))
	ht := make(map[string][]Tuple, len(b.Tuples))
	for _, t := range b.Tuples {
		k, ok := jointKey(t, bCols)
		if !ok {
			continue
		}
		ht[k] = append(ht[k], t)
	}
	for _, ta := range a.Tuples {
		k, ok := jointKey(ta, aCols)
		if !ok {
			continue
		}
		for _, tb := range ht[k] {
			nt := make(Tuple, 0, len(attrs))
			nt = append(nt, ta...)
			for _, c := range bExtra {
				nt = append(nt, tb[c])
			}
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out
}

func jointKey(t Tuple, cols []int) (string, bool) {
	k := ""
	for _, c := range cols {
		if t[c].IsNull() {
			return "", false
		}
		k += t[c].Key()
	}
	return k, true
}

// Distinct returns r with duplicate tuples removed (first occurrence kept).
func Distinct(r *Relation) *Relation {
	out := NewRelation(r.Schema)
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		k := ""
		for _, v := range t {
			k += v.Key()
		}
		if !seen[k] {
			seen[k] = true
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Union appends the tuples of b to a copy of a. Schemas must have equal
// arity; b's tuples are reinterpreted under a's schema.
func Union(a, b *Relation) *Relation {
	if len(a.Schema.Attrs) != len(b.Schema.Attrs) {
		panic("rel: union: arity mismatch")
	}
	out := NewRelation(a.Schema)
	out.Tuples = append(append([]Tuple(nil), a.Tuples...), b.Tuples...)
	return out
}

// SortBy sorts r by the named attributes ascending (stable) and returns a
// new relation sharing tuple storage.
func SortBy(r *Relation, names ...string) *Relation {
	cols := make([]int, len(names))
	for i, n := range names {
		c := r.Schema.Col(n)
		if c < 0 {
			panic(fmt.Sprintf("rel: sort: no attribute %q in %s", n, r.Schema))
		}
		cols[i] = c
	}
	out := NewRelation(r.Schema)
	out.Tuples = append([]Tuple(nil), r.Tuples...)
	sort.SliceStable(out.Tuples, func(i, j int) bool {
		for _, c := range cols {
			if cmp := out.Tuples[i][c].Compare(out.Tuples[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return out
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions supported by Aggregate.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one aggregate output column.
type AggSpec struct {
	Func AggFunc
	Attr string // ignored for AggCount with Attr == "*"
	As   string
}

// Aggregate groups r by the groupBy attributes and computes the given
// aggregates per group. With no groupBy attributes a single global group
// is produced (even over an empty input, matching SQL COUNT semantics).
func Aggregate(r *Relation, groupBy []string, specs []AggSpec) *Relation {
	gCols := make([]int, len(groupBy))
	for i, n := range groupBy {
		c := r.Schema.Col(n)
		if c < 0 {
			panic(fmt.Sprintf("rel: aggregate: no attribute %q in %s", n, r.Schema))
		}
		gCols[i] = c
	}
	type group struct {
		key    Tuple
		counts []int64
		sums   []float64
		mins   []Value
		maxs   []Value
	}
	groups := make(map[string]*group)
	var order []string
	for _, t := range r.Tuples {
		k := ""
		for _, c := range gCols {
			k += t[c].Key()
		}
		g, ok := groups[k]
		if !ok {
			key := make(Tuple, len(gCols))
			for i, c := range gCols {
				key[i] = t[c]
			}
			g = &group{
				key:    key,
				counts: make([]int64, len(specs)),
				sums:   make([]float64, len(specs)),
				mins:   make([]Value, len(specs)),
				maxs:   make([]Value, len(specs)),
			}
			for i := range specs {
				g.mins[i] = Null
				g.maxs[i] = Null
			}
			groups[k] = g
			order = append(order, k)
		}
		for i, sp := range specs {
			var v Value
			if sp.Attr == "*" {
				v = I(1)
			} else {
				c := r.Schema.Col(sp.Attr)
				if c < 0 {
					panic(fmt.Sprintf("rel: aggregate: no attribute %q in %s", sp.Attr, r.Schema))
				}
				v = t[c]
			}
			if v.IsNull() {
				continue
			}
			g.counts[i]++
			g.sums[i] += v.Float()
			if g.mins[i].IsNull() || v.Compare(g.mins[i]) < 0 {
				g.mins[i] = v
			}
			if g.maxs[i].IsNull() || v.Compare(g.maxs[i]) > 0 {
				g.maxs[i] = v
			}
		}
	}
	if len(groupBy) == 0 && len(groups) == 0 {
		g := &group{
			counts: make([]int64, len(specs)),
			sums:   make([]float64, len(specs)),
			mins:   make([]Value, len(specs)),
			maxs:   make([]Value, len(specs)),
		}
		for i := range specs {
			g.mins[i] = Null
			g.maxs[i] = Null
		}
		groups[""] = g
		order = append(order, "")
	}
	attrs := make([]Attribute, 0, len(groupBy)+len(specs))
	for i, n := range groupBy {
		attrs = append(attrs, Attribute{Name: n, Type: r.Schema.Attrs[gCols[i]].Type})
	}
	for _, sp := range specs {
		k := KindFloat
		if sp.Func == AggCount {
			k = KindInt
		}
		attrs = append(attrs, Attribute{Name: sp.As, Type: k})
	}
	out := NewRelation(NewSchema(r.Schema.Name+"_agg", "", attrs...))
	for _, k := range order {
		g := groups[k]
		nt := make(Tuple, 0, len(attrs))
		nt = append(nt, g.key...)
		for i, sp := range specs {
			switch sp.Func {
			case AggCount:
				nt = append(nt, I(g.counts[i]))
			case AggSum:
				nt = append(nt, F(g.sums[i]))
			case AggAvg:
				if g.counts[i] == 0 {
					nt = append(nt, Null)
				} else {
					nt = append(nt, F(g.sums[i]/float64(g.counts[i])))
				}
			case AggMin:
				nt = append(nt, g.mins[i])
			case AggMax:
				nt = append(nt, g.maxs[i])
			}
		}
		out.Tuples = append(out.Tuples, nt)
	}
	return out
}
