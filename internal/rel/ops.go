// Eager operator shims. The fallible ones materialise the
// corresponding pipelined iterator (iter.go), so the two execution
// paths share one implementation and every failure (bad attribute
// name, schema collision) surfaces as an error — never a panic,
// matching the iterator engine's no-panic contract. Select, Rename and
// Distinct have no failure modes at all and keep their single-return
// signatures with direct implementations.
package rel

import "errors"

// Pred is a tuple predicate used by Select and NestedLoopJoin.
type Pred func(Tuple) bool

// Select returns the tuples of r satisfying p (tuple rows shared, the
// Tuples slice freshly owned).
func Select(r *Relation, p Pred) *Relation {
	out := NewRelation(r.Schema)
	for _, t := range r.Tuples {
		if p(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Project returns r restricted to the named attributes, in the given
// order. Unknown attribute names are reported as an error.
func Project(r *Relation, names ...string) (*Relation, error) {
	return Materialize(nil, NewProject(NewScan(r), names...))
}

// Rename returns r with a new relation name (schema copy, tuple rows
// shared, Tuples slice freshly owned — renaming no longer aliases the
// input's slice storage).
func Rename(r *Relation, name string) *Relation {
	out := NewRelation(r.Schema.Rename(name))
	out.Tuples = append(out.Tuples, r.Tuples...)
	return out
}

// CrossProduct returns the Cartesian product of a and b with qualified
// attribute names. Colliding qualified names (e.g. identical binding
// names) are reported as an error.
func CrossProduct(a, b *Relation, aName, bName string) (*Relation, error) {
	return Materialize(nil, newCrossJoin(aName+"x"+bName,
		[]Iterator{NewScan(a), NewScan(b)}, []string{aName, bName}))
}

// CrossJoinAll returns the Cartesian product of several relations with
// attribute names qualified by the given binding names (flat, one
// level).
func CrossJoinAll(rels []*Relation, names []string) (*Relation, error) {
	if len(rels) != len(names) || len(rels) == 0 {
		return nil, errors.New("rel: CrossJoinAll needs one name per relation")
	}
	its := make([]Iterator, len(rels))
	for i, r := range rels {
		its[i] = NewScan(r)
	}
	return Materialize(nil, NewCrossJoin(its, names))
}

// HashJoin equijoins a and b on a.leftAttr = b.rightAttr, producing the
// concatenation of both tuple layouts with attribute names qualified by
// the relation names. Null join keys never match (SQL semantics). The
// hash table is built on the smaller side.
func HashJoin(a, b *Relation, leftAttr, rightAttr string) (*Relation, error) {
	buildLeft := len(b.Tuples) >= len(a.Tuples)
	return Materialize(nil, NewHashJoin(NewScan(a), NewScan(b), leftAttr, rightAttr, buildLeft))
}

// NestedLoopJoin joins a and b with an arbitrary predicate over the
// concatenated tuple (a's values first). Attribute names are
// qualified; colliding qualified names are reported as an error.
func NestedLoopJoin(a, b *Relation, p func(joined Tuple) bool) (*Relation, error) {
	return Materialize(nil, NewNestedLoopJoin(NewScan(a), NewScan(b), p))
}

// NaturalJoin joins a and b on all shared attribute names (the paper's
// S ⋈ f(S,G) ⋈ h(S,G) reduction uses natural joins on tid/vid). Shared
// attributes appear once; remaining attributes keep their bare names.
// With no shared attributes the join degenerates to a Cartesian
// product whose qualified names may collide — that surfaces as an
// error instead of a panic.
func NaturalJoin(a, b *Relation) (*Relation, error) {
	return Materialize(nil, NewNaturalJoin(NewScan(a), NewScan(b)))
}

func jointKey(t Tuple, cols []int) (string, bool) {
	k := ""
	for _, c := range cols {
		if t[c].IsNull() {
			return "", false
		}
		k += t[c].Key()
	}
	return k, true
}

// Distinct returns r with duplicate tuples removed (first occurrence kept).
func Distinct(r *Relation) *Relation {
	out := NewRelation(r.Schema)
	seen := make(map[string]bool, len(r.Tuples))
	for _, t := range r.Tuples {
		key := ""
		for _, v := range t {
			key += v.Key()
		}
		if !seen[key] {
			seen[key] = true
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Union appends the tuples of b to a copy of a. Schemas must have equal
// arity; b's tuples are reinterpreted under a's schema.
func Union(a, b *Relation) (*Relation, error) {
	return Materialize(nil, NewUnion(NewScan(a), NewScan(b)))
}

// SortBy sorts r by the named attributes ascending (stable) and returns
// a new relation.
func SortBy(r *Relation, names ...string) (*Relation, error) {
	return Materialize(nil, NewSort(NewScan(r), names...))
}

// AggFunc enumerates aggregate functions.
type AggFunc int

// Aggregate functions supported by Aggregate.
const (
	AggCount AggFunc = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// AggSpec is one aggregate output column.
type AggSpec struct {
	Func AggFunc
	Attr string // ignored for AggCount with Attr == "*"
	As   string
}

// Aggregate groups r by the groupBy attributes and computes the given
// aggregates per group. With no groupBy attributes a single global group
// is produced (even over an empty input, matching SQL COUNT semantics).
func Aggregate(r *Relation, groupBy []string, specs []AggSpec) (*Relation, error) {
	return Materialize(nil, NewAggregate(NewScan(r), groupBy, specs))
}
