package rel

import (
	"fmt"
	"io"

	"semjoin/internal/bin"
)

// Save persists the relation (schema and tuples).
func (r *Relation) Save(out io.Writer) error {
	w := bin.NewWriter(out)
	w.Header("relation", 1)
	writeSchema(w, r.Schema)
	w.Int(len(r.Tuples))
	for _, t := range r.Tuples {
		for _, v := range t {
			writeValue(w, v)
		}
	}
	return w.Err()
}

// LoadRelation restores a relation written by Save.
func LoadRelation(in io.Reader) (*Relation, error) {
	rd := bin.NewReader(in)
	if v := rd.Header("relation"); rd.Err() == nil && v != 1 {
		return nil, fmt.Errorf("rel: unsupported relation version %d", v)
	}
	schema, err := readSchema(rd)
	if err != nil {
		return nil, err
	}
	out := NewRelation(schema)
	n := rd.Len()
	if n > 0 && len(schema.Attrs) == 0 {
		// A zero-arity schema reads no bytes per tuple, so a corrupt tuple
		// count would otherwise allocate unboundedly without ever hitting
		// a read error.
		return nil, fmt.Errorf("rel: %d tuples declared for zero-attribute schema", n)
	}
	for i := 0; i < n; i++ {
		t := make(Tuple, len(schema.Attrs))
		for j := range t {
			t[j] = readValue(rd)
		}
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, rd.Err()
}

func writeSchema(w *bin.Writer, s *Schema) {
	w.String(s.Name)
	w.String(s.Key)
	w.Int(len(s.Attrs))
	for _, a := range s.Attrs {
		w.String(a.Name)
		w.Int(int(a.Type))
	}
}

func readSchema(r *bin.Reader) (*Schema, error) {
	name := r.String()
	key := r.String()
	n := r.Len()
	// Grow incrementally rather than pre-allocating n entries: the count
	// is attacker-controlled in fuzzed/corrupt files, and every loop turn
	// consumes bytes, so a lying header hits a read error long before any
	// large allocation.
	var attrs []Attribute
	for i := 0; i < n; i++ {
		attrs = append(attrs, Attribute{Name: r.String(), Type: Kind(r.Int())})
		if r.Err() != nil {
			return nil, r.Err()
		}
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	// TrySchema, not NewSchema: persisted bytes are external input, and a
	// corrupt file with duplicate attribute names or a dangling key must
	// surface as an error, not a panic (found by FuzzPersistRoundTrip).
	return TrySchema(name, key, attrs...)
}

func writeValue(w *bin.Writer, v Value) {
	w.Int(int(v.kind))
	switch v.kind {
	case KindString:
		w.String(v.s)
	case KindInt:
		w.I64(v.n)
	case KindFloat:
		w.F64(v.f)
	case KindBool:
		w.Bool(v.b)
	}
}

func readValue(r *bin.Reader) Value {
	switch Kind(r.Int()) {
	case KindString:
		return S(r.String())
	case KindInt:
		return I(r.I64())
	case KindFloat:
		return F(r.F64())
	case KindBool:
		return B(r.Bool())
	}
	return Null
}
