package rel

import (
	"fmt"
	"io"

	"semjoin/internal/bin"
)

// Save persists the relation (schema and tuples).
func (r *Relation) Save(out io.Writer) error {
	w := bin.NewWriter(out)
	w.Header("relation", 1)
	writeSchema(w, r.Schema)
	w.Int(len(r.Tuples))
	for _, t := range r.Tuples {
		for _, v := range t {
			writeValue(w, v)
		}
	}
	return w.Err()
}

// LoadRelation restores a relation written by Save.
func LoadRelation(in io.Reader) (*Relation, error) {
	rd := bin.NewReader(in)
	if v := rd.Header("relation"); rd.Err() == nil && v != 1 {
		return nil, fmt.Errorf("rel: unsupported relation version %d", v)
	}
	schema, err := readSchema(rd)
	if err != nil {
		return nil, err
	}
	out := NewRelation(schema)
	n := rd.Len()
	for i := 0; i < n; i++ {
		t := make(Tuple, len(schema.Attrs))
		for j := range t {
			t[j] = readValue(rd)
		}
		if rd.Err() != nil {
			return nil, rd.Err()
		}
		out.Tuples = append(out.Tuples, t)
	}
	return out, rd.Err()
}

func writeSchema(w *bin.Writer, s *Schema) {
	w.String(s.Name)
	w.String(s.Key)
	w.Int(len(s.Attrs))
	for _, a := range s.Attrs {
		w.String(a.Name)
		w.Int(int(a.Type))
	}
}

func readSchema(r *bin.Reader) (*Schema, error) {
	name := r.String()
	key := r.String()
	n := r.Len()
	attrs := make([]Attribute, 0, n)
	for i := 0; i < n; i++ {
		attrs = append(attrs, Attribute{Name: r.String(), Type: Kind(r.Int())})
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	return NewSchema(name, key, attrs...), nil
}

func writeValue(w *bin.Writer, v Value) {
	w.Int(int(v.kind))
	switch v.kind {
	case KindString:
		w.String(v.s)
	case KindInt:
		w.I64(v.n)
	case KindFloat:
		w.F64(v.f)
	case KindBool:
		w.Bool(v.b)
	}
}

func readValue(r *bin.Reader) Value {
	switch Kind(r.Int()) {
	case KindString:
		return S(r.String())
	case KindInt:
		return I(r.I64())
	case KindFloat:
		return F(r.F64())
	case KindBool:
		return B(r.Bool())
	}
	return Null
}
