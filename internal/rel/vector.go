// Columnar value storage. A Vector is one column of a Batch: a
// per-row kind tag (KindNull entries double as the null bitmap) plus
// lazily-allocated typed payload arrays. Columns are usually
// kind-homogeneous, so in the common case a vector carries exactly one
// payload array and batch kernels loop over it without per-row
// interface calls; heterogeneous columns (Parse can mix ints and
// strings in one attribute) stay exact because the tag array, not the
// schema, decides each row's representation.
package rel

// Vector is a typed column of values. The zero value is an empty
// vector ready for appends.
type Vector struct {
	kinds []Kind
	// Payload arrays are allocated on first use and extended to cover
	// row i when row i is written with that kind, so for every row j
	// with kinds[j] == KindString, strs has length > j (and likewise
	// for the other kinds). Rows of other kinds hold zero values.
	strs   []string
	ints   []int64
	floats []float64
	bools  []bool
}

// Len returns the number of rows in the vector.
func (v *Vector) Len() int { return len(v.kinds) }

// KindAt returns row i's kind.
func (v *Vector) KindAt(i int) Kind { return v.kinds[i] }

// IsNull reports whether row i is null.
func (v *Vector) IsNull(i int) bool { return v.kinds[i] == KindNull }

// Kinds exposes the per-row kind tags for kernel loops. Read-only.
func (v *Vector) Kinds() []Kind { return v.kinds }

// Strs exposes the string payload array (may be shorter than Len;
// index it only at rows whose kind is KindString). Read-only.
func (v *Vector) Strs() []string { return v.strs }

// Ints exposes the int payload array under the same contract as Strs.
func (v *Vector) Ints() []int64 { return v.ints }

// Floats exposes the float payload array under the same contract.
func (v *Vector) Floats() []float64 { return v.floats }

// Bools exposes the bool payload array under the same contract.
func (v *Vector) Bools() []bool { return v.bools }

// ValueAt returns row i as a Value. This allocates nothing (Value is a
// plain struct), so the row shims stay cheap.
func (v *Vector) ValueAt(i int) Value {
	switch v.kinds[i] {
	case KindString:
		return Value{kind: KindString, s: v.strs[i]}
	case KindInt:
		return Value{kind: KindInt, n: v.ints[i]}
	case KindFloat:
		return Value{kind: KindFloat, f: v.floats[i]}
	case KindBool:
		return Value{kind: KindBool, b: v.bools[i]}
	}
	return Null
}

// padTo extends s with zero values so that it has length n.
func padTo[T any](s []T, n int) []T {
	if len(s) >= n {
		return s
	}
	if cap(s) >= n {
		t := s[:n]
		var zero T
		for i := len(s); i < n; i++ {
			t[i] = zero
		}
		return t
	}
	t := make([]T, n, max(n, 2*cap(s)))
	copy(t, s)
	return t
}

// Append appends val as the vector's next row.
func (v *Vector) Append(val Value) {
	i := len(v.kinds)
	v.kinds = append(v.kinds, val.kind)
	switch val.kind {
	case KindString:
		v.strs = padTo(v.strs, i+1)
		v.strs[i] = val.s
	case KindInt:
		v.ints = padTo(v.ints, i+1)
		v.ints[i] = val.n
	case KindFloat:
		v.floats = padTo(v.floats, i+1)
		v.floats[i] = val.f
	case KindBool:
		v.bools = padTo(v.bools, i+1)
		v.bools[i] = val.b
	}
}

// clampSlice is s[lo:hi] tolerant of payload arrays shorter than hi
// (rows past their end are of other kinds, so they are never read).
func clampSlice[T any](s []T, lo, hi int) []T {
	if lo >= len(s) {
		return nil
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi:hi]
}

// Slice returns the zero-copy sub-vector of rows [lo, hi). The result
// shares backing arrays with v and must be treated as read-only.
func (v *Vector) Slice(lo, hi int) Vector {
	return Vector{
		kinds:  v.kinds[lo:hi:hi],
		strs:   clampSlice(v.strs, lo, hi),
		ints:   clampSlice(v.ints, lo, hi),
		floats: clampSlice(v.floats, lo, hi),
		bools:  clampSlice(v.bools, lo, hi),
	}
}
