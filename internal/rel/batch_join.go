// Batch-native joins. The build side is hashed once at Open (keyed on
// normalised Values, no per-row string formatting); probe batches
// stream through, and matches gather column-wise into output batches —
// no per-row Tuple allocation on the probe path.
package rel

import (
	"fmt"
)

// ------------------------------------------------------ batch hash join

type batchHashJoinKernel struct {
	baseBatchKernel
	leftAttr, rightAttr string
	buildLeft           bool
	lc, rc              int
	ht                  map[Value][]int32 // build row indexes, input order
	build               *Batch            // gathered build side
	out                 *Batch
}

func (k *batchHashJoinKernel) resolve(o *batchOp) error {
	ls, rs := o.children[0].Schema(), o.children[1].Schema()
	if ls == nil || rs == nil {
		return errSchemaPending
	}
	k.lc, k.rc = ls.Col(k.leftAttr), rs.Col(k.rightAttr)
	if k.lc < 0 || k.rc < 0 {
		return fmt.Errorf("rel: hash join: missing attribute %q/%q", k.leftAttr, k.rightAttr)
	}
	qa := ls.Qualified(ls.Name)
	qb := rs.Qualified(rs.Name)
	attrs := append(append([]Attribute(nil), qa.Attrs...), qb.Attrs...)
	s, err := TrySchema(ls.Name+"_"+rs.Name, "", attrs...)
	if err != nil {
		return err
	}
	o.schema = s
	return nil
}

func (k *batchHashJoinKernel) open(o *batchOp) error {
	buildChild, bc := o.children[1], k.rc
	if k.buildLeft {
		buildChild, bc = o.children[0], k.lc
	}
	batches, err := drainBatches(buildChild)
	if err != nil {
		return err
	}
	gathered := NewBatch(buildChild.Schema())
	for _, b := range batches {
		gathered = appendBatch(gathered, b)
	}
	k.build = gathered
	kv := gathered.Col(bc)
	k.ht = make(map[Value][]int32, kv.Len())
	for i, n := 0, kv.Len(); i < n; i++ {
		key, ok := kv.ValueAt(i).HashKey()
		if !ok {
			continue
		}
		k.ht[key] = append(k.ht[key], int32(i))
	}
	return nil
}

func (k *batchHashJoinKernel) next(o *batchOp) (*Batch, error) {
	probeChild, pc := o.children[0], k.lc
	if k.buildLeft {
		probeChild, pc = o.children[1], k.rc
	}
	for {
		b, err := probeChild.NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		// Gather the (probe row, build row) match pairs for the whole
		// batch, then assemble the output column-at-a-time.
		var probeRows, buildRows []int32
		kv := b.Col(pc)
		for i, n := 0, b.Rows(); i < n; i++ {
			r := b.RowIdx(i)
			key, ok := kv.ValueAt(r).HashKey()
			if !ok {
				continue
			}
			for _, br := range k.ht[key] {
				probeRows = append(probeRows, int32(r))
				buildRows = append(buildRows, br)
			}
		}
		if len(probeRows) == 0 {
			continue
		}
		leftBatch, leftRows := b, probeRows
		rightBatch, rightRows := k.build, buildRows
		if k.buildLeft {
			leftBatch, leftRows = k.build, buildRows
			rightBatch, rightRows = b, probeRows
		}
		out := NewBatch(o.schema)
		gatherCols(out, 0, leftBatch, leftRows)
		gatherCols(out, leftBatch.NumCols(), rightBatch, rightRows)
		return out, nil
	}
}

// gatherCols copies the physical rows listed in rows from every column
// of src into dst's columns starting at column offset at.
func gatherCols(dst *Batch, at int, src *Batch, rows []int32) {
	for c := 0; c < src.NumCols(); c++ {
		sv, dv := src.Col(c), dst.Col(at+c)
		for _, r := range rows {
			dv.Append(sv.ValueAt(int(r)))
		}
	}
}

// NewBatchHashJoin equijoins left.leftAttr = right.rightAttr over
// batches with the row hash join's exact semantics: qualified output
// attributes laid out left-then-right, null keys never match, matches
// emitted in probe order with build-input order within a key.
func NewBatchHashJoin(left, right BatchIterator, leftAttr, rightAttr string, buildLeft bool) BatchIterator {
	k := &batchHashJoinKernel{leftAttr: leftAttr, rightAttr: rightAttr, buildLeft: buildLeft}
	return newBatchOp("hash join "+leftAttr+"="+rightAttr, k, left, right)
}

// ------------------------------------- batch natural join (vs relation)

// batchNaturalKernel natural-joins a streaming batch input against a
// materialised relation hashed at Open. The schema and key-propagation
// rules mirror naturalKernel exactly, so the static enrichment chain
// in internal/core can swap engines without observable change. The
// single-shared-attribute case (the common one: the chain joins on tid
// then vid) probes on normalised Values; multi-attribute joins fall
// back to the concatenated Key string.
type batchNaturalKernel struct {
	baseBatchKernel
	right        *Relation
	cross        bool
	aCols, bCols []int
	bExtra       []int
	htv          map[Value][]int32  // single shared attribute
	hts          map[string][]int32 // multiple shared attributes
}

func (k *batchNaturalKernel) resolve(o *batchOp) error {
	as, bs := o.children[0].Schema(), k.right.Schema
	if as == nil {
		return errSchemaPending
	}
	var shared []string
	for _, attr := range as.Attrs {
		if bs.Has(attr.Name) {
			shared = append(shared, attr.Name)
		}
	}
	if len(shared) == 0 {
		k.cross = true
		qa, qb := as.Qualified(as.Name), bs.Qualified(bs.Name)
		attrs := append(append([]Attribute(nil), qa.Attrs...), qb.Attrs...)
		s, err := TrySchema(as.Name+"x"+bs.Name, "", attrs...)
		if err != nil {
			return err
		}
		o.schema = s
		return nil
	}
	k.aCols = make([]int, len(shared))
	k.bCols = make([]int, len(shared))
	for i, n := range shared {
		k.aCols[i] = as.Col(n)
		k.bCols[i] = bs.Col(n)
	}
	attrs := append([]Attribute(nil), as.Attrs...)
	k.bExtra = nil
	for i, attr := range bs.Attrs {
		if !as.Has(attr.Name) {
			attrs = append(attrs, attr)
			k.bExtra = append(k.bExtra, i)
		}
	}
	key := as.Key
	if key == "" {
		key = bs.Key
		if key != "" {
			tmp, err := TrySchema("tmp", "", attrs...)
			if err != nil {
				return err
			}
			if !tmp.Has(key) {
				key = ""
			}
		}
	}
	s, err := TrySchema(as.Name+"_"+bs.Name, key, attrs...)
	if err != nil {
		return err
	}
	o.schema = s
	return nil
}

func (k *batchNaturalKernel) open(o *batchOp) error {
	if k.cross {
		return nil
	}
	cols := k.right.columns()
	if len(k.bCols) == 1 {
		kv := &cols.cols[k.bCols[0]]
		k.htv = make(map[Value][]int32, cols.n)
		for i := 0; i < cols.n; i++ {
			key, ok := kv.ValueAt(i).HashKey()
			if !ok {
				continue
			}
			k.htv[key] = append(k.htv[key], int32(i))
		}
		return nil
	}
	k.hts = make(map[string][]int32, cols.n)
	for i, t := range k.right.Tuples {
		key, ok := jointKey(t, k.bCols)
		if !ok {
			continue
		}
		k.hts[key] = append(k.hts[key], int32(i))
	}
	return nil
}

func (k *batchNaturalKernel) next(o *batchOp) (*Batch, error) {
	for {
		b, err := o.children[0].NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		cols := k.right.columns()
		var aRows, bRows []int32
		if k.cross {
			for i, n := 0, b.Rows(); i < n; i++ {
				r := int32(b.RowIdx(i))
				for j := 0; j < cols.n; j++ {
					aRows = append(aRows, r)
					bRows = append(bRows, int32(j))
				}
			}
		} else if k.htv != nil {
			kv := b.Col(k.aCols[0])
			for i, n := 0, b.Rows(); i < n; i++ {
				r := b.RowIdx(i)
				key, ok := kv.ValueAt(r).HashKey()
				if !ok {
					continue
				}
				for _, br := range k.htv[key] {
					aRows = append(aRows, int32(r))
					bRows = append(bRows, br)
				}
			}
		} else {
			scratch := make(Tuple, b.NumCols())
			for i, n := 0, b.Rows(); i < n; i++ {
				r := b.RowIdx(i)
				for c := range scratch {
					scratch[c] = b.Col(c).ValueAt(r)
				}
				key, ok := jointKey(scratch, k.aCols)
				if !ok {
					continue
				}
				for _, br := range k.hts[key] {
					aRows = append(aRows, int32(r))
					bRows = append(bRows, br)
				}
			}
		}
		if len(aRows) == 0 {
			continue
		}
		out := NewBatch(o.schema)
		gatherCols(out, 0, b, aRows)
		if k.cross {
			for c := 0; c < len(cols.cols); c++ {
				sv, dv := &cols.cols[c], out.Col(b.NumCols()+c)
				for _, r := range bRows {
					dv.Append(sv.ValueAt(int(r)))
				}
			}
		} else {
			for ci, c := range k.bExtra {
				sv, dv := &cols.cols[c], out.Col(b.NumCols()+ci)
				for _, r := range bRows {
					dv.Append(sv.ValueAt(int(r)))
				}
			}
		}
		return out, nil
	}
}

// NewBatchNaturalJoinRel natural-joins the batch stream left against
// the relation right on all shared attribute names (hashing right at
// Open), with NewNaturalJoin's schema, key-propagation and ordering
// semantics. With no shared attributes it degenerates to a Cartesian
// product.
func NewBatchNaturalJoinRel(left BatchIterator, right *Relation) BatchIterator {
	return newBatchOp("natural join", &batchNaturalKernel{right: right}, left)
}
