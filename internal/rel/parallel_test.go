package rel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"semjoin/internal/obs"
)

// numbered builds a single-column relation 0..n-1.
func numbered(n int) *Relation {
	r := NewRelation(NewSchema("nums", "", Attribute{Name: "x", Type: KindInt}))
	for i := 0; i < n; i++ {
		r.InsertVals(I(int64(i)))
	}
	return r
}

func evenPred(t Tuple) bool { return t[0].Int()%2 == 0 }

func TestExchangeMatchesSerialExactly(t *testing.T) {
	for _, n := range []int{0, 1, 100, 1000, 1024} {
		for _, p := range []int{1, 2, 4, 7} {
			r := numbered(n)
			build := func(in Iterator) Iterator { return NewSelect(in, evenPred) }
			serial, err := Materialize(nil, build(NewScan(r)))
			if err != nil {
				t.Fatal(err)
			}
			par, err := Materialize(nil, NewExchangeMorsel(NewScan(r), p, 64, build))
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Tuples) != len(serial.Tuples) {
				t.Fatalf("n=%d p=%d: %d rows, want %d", n, p, len(par.Tuples), len(serial.Tuples))
			}
			// Order-preserving merge: the exact serial tuple sequence.
			for i := range par.Tuples {
				if !par.Tuples[i][0].Equal(serial.Tuples[i][0]) {
					t.Fatalf("n=%d p=%d: row %d = %v, want %v", n, p, i, par.Tuples[i], serial.Tuples[i])
				}
			}
		}
	}
}

func TestExchangeLimitDeterministic(t *testing.T) {
	// LIMIT without ORDER BY is only deterministic because the exchange
	// merges morsels in index order.
	r := numbered(500)
	build := func(in Iterator) Iterator { return NewSelect(in, evenPred) }
	for i := 0; i < 5; i++ {
		out, err := Materialize(nil, NewLimit(NewExchangeMorsel(NewScan(r), 4, 32, build), 10))
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 10 {
			t.Fatalf("limit rows = %d", out.Len())
		}
		for j, tp := range out.Tuples {
			if tp[0].Int() != int64(2*j) {
				t.Fatalf("run %d row %d = %d, want %d", i, j, tp[0].Int(), 2*j)
			}
		}
	}
}

func TestExchangeWorkersStat(t *testing.T) {
	r := numbered(300)
	ex := NewExchangeMorsel(NewScan(r), 4, 64, func(in Iterator) Iterator { return in })
	if _, err := Materialize(nil, ex); err != nil {
		t.Fatal(err)
	}
	// 300 rows / morsel 64 = 5 morsels, capped by p=4.
	if got := ex.Stats().Workers; got != 4 {
		t.Fatalf("workers = %d, want 4", got)
	}
	line := CollectStats(ex).Lines[0].String()
	if want := "workers=4"; !contains(line, want) {
		t.Fatalf("plan line %q missing %q", line, want)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestExchangeSubPipelineError(t *testing.T) {
	boom := errors.New("boom")
	r := numbered(400)
	ex := NewExchangeMorsel(NewScan(r), 4, 64, func(in Iterator) Iterator {
		return NewTransform("explode", in, func(s *Schema) (*Schema, func(Tuple) (Tuple, error), error) {
			return s, func(tp Tuple) (Tuple, error) {
				if tp[0].Int() == 137 {
					return nil, boom
				}
				return tp, nil
			}, nil
		})
	})
	_, err := Materialize(nil, ex)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestExchangeNilBuilder(t *testing.T) {
	if _, err := Materialize(nil, NewExchange(NewScan(numbered(3)), 2, nil)); err == nil {
		t.Fatal("nil builder should error")
	}
}

// settleGoroutines polls until the goroutine count returns to at most
// base (with slack for runtime helpers) or the deadline expires.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: %d > %d", runtime.NumGoroutine(), base)
}

func TestExchangeCancellationLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	r := numbered(10000)
	slow := func(in Iterator) Iterator {
		return NewTransform("slow", in, func(s *Schema) (*Schema, func(Tuple) (Tuple, error), error) {
			return s, func(tp Tuple) (Tuple, error) {
				time.Sleep(50 * time.Microsecond)
				return tp, nil
			}, nil
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	ex := NewExchangeMorsel(NewScan(r), 4, 16, slow)
	if err := ex.Open(ctx); err != nil {
		t.Fatal(err)
	}
	// Drain a few rows, then cancel mid-stream.
	for i := 0; i < 3; i++ {
		if _, err := ex.Next(); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	for {
		tp, err := ex.Next()
		if err != nil || tp == nil {
			break
		}
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

func TestExchangeCloseWithoutDrainLeaksNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	ex := NewExchangeMorsel(NewScan(numbered(5000)), 8, 16,
		func(in Iterator) Iterator { return NewSelect(in, evenPred) })
	if err := ex.Open(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	settleGoroutines(t, base)
}

func TestParallelHashJoinBuildMatchesSerial(t *testing.T) {
	// Enough build rows to cross parallelBuildMin, with duplicate keys to
	// exercise per-key chains and some probe misses.
	n := 2 * parallelBuildMin
	build := NewRelation(NewSchema("b", "", Attribute{Name: "k", Type: KindInt}, Attribute{Name: "v", Type: KindInt}))
	for i := 0; i < n; i++ {
		build.InsertVals(I(int64(i%97)), I(int64(i)))
	}
	probe := NewRelation(NewSchema("p", "", Attribute{Name: "k", Type: KindInt}, Attribute{Name: "w", Type: KindInt}))
	for i := 0; i < 300; i++ {
		probe.InsertVals(I(int64(i%131)), I(int64(i)))
	}
	serial, err := Materialize(nil, NewHashJoinP(NewScan(probe), NewScan(build), "k", "k", false, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		it := NewHashJoinP(NewScan(probe), NewScan(build), "k", "k", false, workers)
		par, err := Materialize(nil, it)
		if err != nil {
			t.Fatal(err)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("workers=%d: %d rows, want %d", workers, par.Len(), serial.Len())
		}
		// The partitioned build preserves insertion order within each key,
		// so probe output is identical tuple for tuple.
		for i := range par.Tuples {
			for c := range par.Tuples[i] {
				if !par.Tuples[i][c].Equal(serial.Tuples[i][c]) {
					t.Fatalf("workers=%d row %d col %d: %v != %v",
						workers, i, c, par.Tuples[i][c], serial.Tuples[i][c])
				}
			}
		}
		if workers > 1 && it.Stats().Workers != workers {
			t.Fatalf("workers stat = %d, want %d", it.Stats().Workers, workers)
		}
	}
}

func TestParallelHashJoinSmallBuildStaysSerial(t *testing.T) {
	// Below the threshold the parallel build must not engage.
	build := NewRelation(NewSchema("b", "", Attribute{Name: "k", Type: KindInt}))
	for i := 0; i < 10; i++ {
		build.InsertVals(I(int64(i)))
	}
	probe := NewRelation(NewSchema("p", "", Attribute{Name: "k", Type: KindInt}))
	probe.InsertVals(I(3))
	it := NewHashJoinP(NewScan(probe), NewScan(build), "k", "k", false, 8)
	out, err := Materialize(nil, it)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("rows = %d", out.Len())
	}
	if it.Stats().Workers != 0 {
		t.Fatalf("small build should stay serial, workers = %d", it.Stats().Workers)
	}
}

func TestBuildPartitionedCoversAllKeys(t *testing.T) {
	var ts []Tuple
	for i := 0; i < 1000; i++ {
		ts = append(ts, Tuple{I(int64(i % 50))})
	}
	ts = append(ts, Tuple{Null}) // null keys never enter the table
	parts := buildPartitioned(ts, 0, 4)
	total := 0
	for _, p := range parts {
		for _, chain := range p {
			total += len(chain)
		}
	}
	if total != 1000 {
		t.Fatalf("partitioned %d tuples, want 1000", total)
	}
	for k := 0; k < 50; k++ {
		key, ok := I(int64(k)).HashKey()
		if !ok {
			t.Fatalf("key %d unexpectedly null", k)
		}
		chain := parts[valuePartition(key, 4)][key]
		if len(chain) != 20 {
			t.Fatalf("key %d chain = %d, want 20", k, len(chain))
		}
	}
}

func TestExchangeGeneratorSchemaProbe(t *testing.T) {
	// A sub-pipeline whose schema is only known after Open (NewGenerate)
	// still resolves under an exchange via the empty-input probe.
	r := numbered(100)
	build := func(in Iterator) Iterator {
		return NewGenerate("gen", []Iterator{in}, func(ctx context.Context, ins []*Relation) (Generated, error) {
			i := 0
			return Generated{Schema: ins[0].Schema, Pull: func() (Tuple, error) {
				if i >= len(ins[0].Tuples) {
					return nil, nil
				}
				tp := ins[0].Tuples[i]
				i++
				return tp, nil
			}}, nil
		})
	}
	out, err := Materialize(nil, NewExchangeMorsel(NewScan(r), 3, 16, build))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 100 {
		t.Fatalf("rows = %d, want 100", out.Len())
	}
	for i, tp := range out.Tuples {
		if tp[0].Int() != int64(i) {
			t.Fatalf("row %d = %v", i, tp)
		}
	}
}

// BenchmarkParallelHashJoin measures the hash join with its
// partitioned parallel build at P ∈ {1, 2, GOMAXPROCS}. Only the build
// side parallelises, so the end-to-end speedup is bounded by the
// probe's serial share.
func BenchmarkParallelHashJoin(b *testing.B) {
	build := NewRelation(NewSchema("b", "", Attribute{Name: "k", Type: KindInt}, Attribute{Name: "v", Type: KindInt}))
	for i := 0; i < 200000; i++ {
		build.InsertVals(I(int64(i%50021)), I(int64(i)))
	}
	probe := NewRelation(NewSchema("p", "", Attribute{Name: "k", Type: KindInt}, Attribute{Name: "w", Type: KindInt}))
	for i := 0; i < 20000; i++ {
		probe.InsertVals(I(int64(i%60013)), I(int64(i)))
	}
	for _, p := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Materialize(nil, NewHashJoinP(NewScan(probe), NewScan(build), "k", "k", false, p)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelHashJoinObs isolates the metrics layer's cost on
// the hash-join path: the identical join with a nil context (every
// obs call a nil-receiver no-op, the shipped default) and with a live
// registry on the context recording build-row counters and per-op row
// totals. The acceptance bar for the observability work is < 3%
// overhead with metrics enabled.
func BenchmarkParallelHashJoinObs(b *testing.B) {
	build := NewRelation(NewSchema("b", "", Attribute{Name: "k", Type: KindInt}, Attribute{Name: "v", Type: KindInt}))
	for i := 0; i < 200000; i++ {
		build.InsertVals(I(int64(i%50021)), I(int64(i)))
	}
	probe := NewRelation(NewSchema("p", "", Attribute{Name: "k", Type: KindInt}, Attribute{Name: "w", Type: KindInt}))
	for i := 0; i < 20000; i++ {
		probe.InsertVals(I(int64(i%60013)), I(int64(i)))
	}
	for _, bc := range []struct {
		name string
		ctx  context.Context
	}{
		{"metrics=off", nil},
		{"metrics=on", obs.WithRegistry(context.Background(), obs.NewRegistry())},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Materialize(bc.ctx, NewHashJoinP(NewScan(probe), NewScan(build), "k", "k", false, 1)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkExchangeSelect(b *testing.B) {
	r := numbered(100000)
	build := func(in Iterator) Iterator {
		return NewSelect(in, func(tp Tuple) bool {
			// A predicate with some arithmetic weight per tuple.
			x := tp[0].Int()
			return (x*2654435761)%7 == 0
		})
	}
	for _, p := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Materialize(nil, NewExchange(NewScan(r), p, build)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
