package rel

import (
	"fmt"
	"strings"
)

// Attribute is one column of a relation schema.
type Attribute struct {
	Name string
	Type Kind
}

// Schema describes a relation: a name, an ordered attribute list and the
// name of the key attribute (the tuple id of §II-A; may be empty for
// derived relations that carry no entity identity).
type Schema struct {
	Name  string
	Attrs []Attribute
	Key   string // name of the tuple-id attribute, "" if none

	index map[string]int
}

// NewSchema builds a schema. Attribute names must be unique; invalid
// input panics (use TrySchema where names come from a query).
func NewSchema(name string, key string, attrs ...Attribute) *Schema {
	s, err := TrySchema(name, key, attrs...)
	if err != nil {
		panic(err.Error()) //lint:allow nopanic programmer-error guard: NewSchema is called with literal attribute lists
	}
	return s
}

// TrySchema is NewSchema returning an error instead of panicking on
// duplicate attribute names or an unknown key. Iterator kernels use it
// so that planner-reachable schema collisions surface through Open.
func TrySchema(name string, key string, attrs ...Attribute) (*Schema, error) {
	s := &Schema{Name: name, Attrs: attrs, Key: key, index: make(map[string]int, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.index[a.Name]; dup {
			return nil, fmt.Errorf("rel: duplicate attribute %q in schema %q", a.Name, name)
		}
		s.index[a.Name] = i
	}
	if key != "" {
		if _, ok := s.index[key]; !ok {
			return nil, fmt.Errorf("rel: key %q not an attribute of schema %q", key, name)
		}
	}
	return s, nil
}

// Col returns the position of attribute name, or -1 if absent. Both the
// bare name and the qualified "relation.name" form resolve.
func (s *Schema) Col(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	if dot := strings.IndexByte(name, '.'); dot >= 0 {
		rel, attr := name[:dot], name[dot+1:]
		if rel == s.Name {
			if i, ok := s.index[attr]; ok {
				return i
			}
		}
	} else {
		// Bare name may match a single qualified attribute "rel.name".
		found := -1
		for i, a := range s.Attrs {
			if strings.HasSuffix(a.Name, "."+name) {
				if found >= 0 {
					return -1 // ambiguous
				}
				found = i
			}
		}
		return found
	}
	return -1
}

// Has reports whether the schema contains attribute name.
func (s *Schema) Has(name string) bool { return s.Col(name) >= 0 }

// AttrNames returns the attribute names in order.
func (s *Schema) AttrNames() []string {
	out := make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		out[i] = a.Name
	}
	return out
}

// KeyCol returns the position of the key attribute, or -1.
func (s *Schema) KeyCol() int {
	if s.Key == "" {
		return -1
	}
	return s.Col(s.Key)
}

// Rename returns a copy of s with a new relation name.
func (s *Schema) Rename(name string) *Schema {
	return NewSchema(name, s.Key, append([]Attribute(nil), s.Attrs...)...)
}

// Qualified returns a copy of s whose attributes are prefixed "name.attr".
// Joins use it to keep provenance when attribute names collide.
func (s *Schema) Qualified(name string) *Schema {
	attrs := make([]Attribute, len(s.Attrs))
	for i, a := range s.Attrs {
		attrs[i] = Attribute{Name: name + "." + a.Name, Type: a.Type}
	}
	key := ""
	if s.Key != "" {
		key = name + "." + s.Key
	}
	return NewSchema(name, key, attrs...)
}

// String renders the schema as R(a, b, ...).
func (s *Schema) String() string {
	return fmt.Sprintf("%s(%s)", s.Name, strings.Join(s.AttrNames(), ", "))
}

// Tuple is one row. Its length always equals the schema arity.
type Tuple []Value

// Clone returns a copy of t.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Relation is a schema plus its tuples. The zero value is unusable; build
// with NewRelation.
//
// Ownership rule: operators may share individual Tuple rows between
// relations (rows are treated as immutable — Clone before mutating),
// but the Tuples slice header and its backing array belong to exactly
// one relation. Every operator and Materialize return a freshly-owned
// slice, so appending to one relation can never corrupt another.
type Relation struct {
	Schema *Schema
	Tuples []Tuple

	// colCache is the lazily-built columnar image batch scans read
	// (see batch.go); it self-invalidates when Tuples changes. Guarded
	// by colCacheMu, never accessed directly.
	colCache *relColumns
}

// NewRelation returns an empty relation of schema s.
func NewRelation(s *Schema) *Relation {
	return &Relation{Schema: s}
}

// Insert appends a tuple. It panics if the arity does not match.
func (r *Relation) Insert(t Tuple) {
	if len(t) != len(r.Schema.Attrs) {
		panic(fmt.Sprintf("rel: arity mismatch inserting into %s: got %d values", r.Schema, len(t))) //lint:allow nopanic arity invariant: Insert callers construct tuples against the same schema
	}
	r.Tuples = append(r.Tuples, t)
}

// InsertVals appends a tuple built from vals.
func (r *Relation) InsertVals(vals ...Value) { r.Insert(Tuple(vals)) }

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.Tuples) }

// Get returns the value of attribute name in tuple t, or Null if the
// attribute is absent.
func (r *Relation) Get(t Tuple, name string) Value {
	i := r.Schema.Col(name)
	if i < 0 {
		return Null
	}
	return t[i]
}

// Clone returns a deep copy of the relation (tuples copied, schema shared).
func (r *Relation) Clone() *Relation {
	out := NewRelation(r.Schema)
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// String renders the relation as a small ASCII table (useful in examples
// and the gSQL shell).
func (r *Relation) String() string {
	var b strings.Builder
	names := r.Schema.AttrNames()
	widths := make([]int, len(names))
	for i, n := range names {
		widths[i] = len(n)
	}
	rows := make([][]string, len(r.Tuples))
	for ti, t := range r.Tuples {
		row := make([]string, len(t))
		for i, v := range t {
			row[i] = v.String()
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
		rows[ti] = row
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(names)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("-+-")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
