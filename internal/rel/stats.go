package rel

import (
	"fmt"
	"strings"
	"time"
)

// OpStats are one operator's live counters. Elapsed is inclusive of
// the operator's children (time spent inside Open and Next of the
// whole subtree), so the root's Elapsed approximates total plan time.
type OpStats struct {
	Label   string
	Note    string // strategy annotation, e.g. "gL hit"
	RowsOut int64
	Batches int64 // batches emitted by a vectorized operator, 0 for row operators
	Elapsed time.Duration
	Workers int // goroutines used by a parallel operator, 0 if serial
}

// PlanLine is one operator of a rendered plan, in depth-first
// pre-order.
type PlanLine struct {
	Depth   int
	Label   string
	Note    string
	Rows    int64
	Batches int64 // 0 for row-at-a-time operators
	Elapsed time.Duration
	Workers int
}

// RowsPerBatch returns the mean live rows per emitted batch, rounded
// down; 0 when the operator is not vectorized.
func (l PlanLine) RowsPerBatch() int64 {
	if l.Batches <= 0 {
		return 0
	}
	return l.Rows / l.Batches
}

// String renders the line indented by depth, e.g.
// "  hash join tid=tid  rows=42 time=1.2ms workers=4". Vectorized
// operators additionally report their batch traffic:
// "select  rows=500 time=80µs batches=4 rows/batch=125".
func (l PlanLine) String() string {
	label := l.Label
	if l.Note != "" {
		label += " [" + l.Note + "]"
	}
	s := fmt.Sprintf("%s%s  rows=%d time=%s",
		strings.Repeat("  ", l.Depth), label, l.Rows, l.Elapsed.Round(time.Microsecond))
	if l.Batches > 0 {
		s += fmt.Sprintf(" batches=%d rows/batch=%d", l.Batches, l.RowsPerBatch())
	}
	if l.Workers > 0 {
		s += fmt.Sprintf(" workers=%d", l.Workers)
	}
	return s
}

// ParsePlanLine is the inverse of PlanLine.String. It is field-aware
// rather than regex-based: the note may itself contain ']' (e.g.
// "gL miss [cap=4]"), which position-blind patterns mis-split. The
// second return is false when line is not a rendered plan line.
func ParsePlanLine(line string) (PlanLine, bool) {
	var l PlanLine
	// Trailing counters start at the LAST "  rows=" — labels and notes
	// never contain two consecutive spaces, so the split is unambiguous.
	cut := strings.LastIndex(line, "  rows=")
	if cut < 0 {
		return l, false
	}
	head, tail := line[:cut], line[cut+2:]

	fields := strings.Fields(tail)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "rows=") || !strings.HasPrefix(fields[1], "time=") {
		return l, false
	}
	if _, err := fmt.Sscanf(fields[0], "rows=%d", &l.Rows); err != nil {
		return l, false
	}
	d, err := time.ParseDuration(strings.TrimPrefix(fields[1], "time="))
	if err != nil {
		return l, false
	}
	l.Elapsed = d
	// Optional trailing fields, in rendering order: batches= and
	// rows/batch= (vectorized operators), then workers= (parallel
	// operators).
	rest := fields[2:]
	if len(rest) > 0 && strings.HasPrefix(rest[0], "batches=") {
		if _, err := fmt.Sscanf(rest[0], "batches=%d", &l.Batches); err != nil {
			return l, false
		}
		rest = rest[1:]
		if len(rest) == 0 || !strings.HasPrefix(rest[0], "rows/batch=") {
			return l, false
		}
		var perBatch int64
		if _, err := fmt.Sscanf(rest[0], "rows/batch=%d", &perBatch); err != nil {
			return l, false
		}
		rest = rest[1:]
	}
	if len(rest) > 0 {
		if !strings.HasPrefix(rest[0], "workers=") {
			return l, false
		}
		if _, err := fmt.Sscanf(rest[0], "workers=%d", &l.Workers); err != nil {
			return l, false
		}
	}

	for strings.HasPrefix(head, "  ") {
		l.Depth++
		head = head[2:]
	}
	// The note spans from the FIRST " [" to the final ']' — everything
	// in between, brackets included, belongs to the note.
	if i := strings.Index(head, " ["); i >= 0 && strings.HasSuffix(head, "]") {
		l.Label = head[:i]
		l.Note = head[i+2 : len(head)-1]
	} else {
		l.Label = head
	}
	return l, true
}

// ExecStats is the per-operator account of one executed plan: the
// query-level observability layer EXPLAIN and the experiment harness
// report from.
type ExecStats struct {
	Lines []PlanLine
}

// CollectStats snapshots the counters of the operator tree rooted at
// it into an ExecStats (depth-first pre-order, root first). The walk
// descends through row children and batch children alike, so hybrid
// plans (a row pipeline over an unbatched vectorized pipeline, or a
// batcher over row operators) render as one tree.
func CollectStats(it Iterator) *ExecStats {
	st := &ExecStats{}
	var walk func(node statNode, depth int)
	walk = func(node statNode, depth int) {
		s := node.Stats()
		st.Lines = append(st.Lines, PlanLine{
			Depth: depth, Label: s.Label, Note: s.Note,
			Rows: s.RowsOut, Batches: s.Batches, Elapsed: s.Elapsed, Workers: s.Workers,
		})
		if ri, ok := node.(interface{ Children() []Iterator }); ok {
			for _, c := range ri.Children() {
				walk(c, depth+1)
			}
		}
		if bi, ok := node.(interface{ BatchChildren() []BatchIterator }); ok {
			for _, c := range bi.BatchChildren() {
				walk(c, depth+1)
			}
		}
		if rk, ok := node.(interface{ RowChildren() []Iterator }); ok {
			for _, c := range rk.RowChildren() {
				walk(c, depth+1)
			}
		}
	}
	walk(it, 0)
	return st
}

// statNode is the least common denominator of Iterator and
// BatchIterator that the stats walk needs.
type statNode interface {
	Stats() *OpStats
}

// TotalRows sums rows-out across all operators — a proxy for how much
// tuple traffic the plan moved.
func (st *ExecStats) TotalRows() int64 {
	var n int64
	for _, l := range st.Lines {
		n += l.Rows
	}
	return n
}

// String renders the plan tree one operator per line.
func (st *ExecStats) String() string {
	var b strings.Builder
	for _, l := range st.Lines {
		b.WriteString(l.String())
		b.WriteByte('\n')
	}
	return b.String()
}
