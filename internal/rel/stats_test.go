package rel

import (
	"testing"
	"time"
)

func TestParsePlanLineRoundTrip(t *testing.T) {
	cases := []PlanLine{
		{Label: "scan drug", Rows: 12, Elapsed: 42 * time.Microsecond},
		{Depth: 1, Label: "select", Note: "pushdown", Rows: 3, Elapsed: time.Millisecond},
		{Depth: 2, Label: "exchange", Note: "project <- select", Rows: 9, Elapsed: 2 * time.Millisecond, Workers: 4},
		// Notes containing ']' are the regression this parser exists
		// for: regex-based redaction split these at the wrong bracket.
		{Depth: 1, Label: "link join", Note: "gL miss [cap=4]", Rows: 7, Elapsed: 500 * time.Microsecond},
		{Label: "her", Note: "k=2 [bounded]", Rows: 0, Elapsed: 0},
	}
	for _, want := range cases {
		line := want.String()
		got, ok := ParsePlanLine(line)
		if !ok {
			t.Errorf("ParsePlanLine(%q) failed", line)
			continue
		}
		if got != want {
			t.Errorf("round trip %q:\n got %+v\nwant %+v", line, got, want)
		}
	}
}

func TestParsePlanLineRejectsNonPlanText(t *testing.T) {
	for _, line := range []string{
		"",
		"strategy: l-join (static gL)",
		"rows=5",
		"scan  rows=x time=1ms",
		"scan  rows=5 time=banana",
		"scan  rows=5 time=1ms extra=2",
	} {
		if _, ok := ParsePlanLine(line); ok {
			t.Errorf("ParsePlanLine(%q) accepted non-plan line", line)
		}
	}
}
