package rel

import "errors"

// Index is a hash index from the values of one attribute to the tuples
// carrying them. Static semantic joins use indexes over the materialised
// match relation f(D,G) and extracted relation h(D,G) (§IV-A) so that
// three-way natural joins probe instead of scan.
type Index struct {
	rel  *Relation
	col  int
	rows map[string][]int
}

// BuildIndex indexes r on attribute name. Null values are not indexed.
// An unknown attribute is reported as an error.
func BuildIndex(r *Relation, name string) (*Index, error) {
	c := r.Schema.Col(name)
	if c < 0 {
		return nil, errors.New("rel: index: no attribute " + name)
	}
	idx := &Index{rel: r, col: c, rows: make(map[string][]int, len(r.Tuples))}
	for i, t := range r.Tuples {
		if t[c].IsNull() {
			continue
		}
		k := t[c].Key()
		idx.rows[k] = append(idx.rows[k], i)
	}
	return idx, nil
}

// Lookup returns the tuples whose indexed attribute equals v. The returned
// slice must not be modified.
func (idx *Index) Lookup(v Value) []Tuple {
	if v.IsNull() {
		return nil
	}
	rows := idx.rows[v.Key()]
	if len(rows) == 0 {
		return nil
	}
	out := make([]Tuple, len(rows))
	for i, r := range rows {
		out[i] = idx.rel.Tuples[r]
	}
	return out
}

// LookupFirst returns the first tuple with the given key value and whether
// one exists.
func (idx *Index) LookupFirst(v Value) (Tuple, bool) {
	if v.IsNull() {
		return nil, false
	}
	rows := idx.rows[v.Key()]
	if len(rows) == 0 {
		return nil, false
	}
	return idx.rel.Tuples[rows[0]], true
}

// Len returns the number of distinct indexed keys.
func (idx *Index) Len() int { return len(idx.rows) }
