package rel

import (
	"bytes"
	"testing"
)

// FuzzPersistRoundTrip drives the relation codec with arbitrary bytes.
// Two properties: LoadRelation must never panic or over-allocate on
// corrupt input (it returns an error instead), and any relation that
// does load must survive a Save/Load round-trip as a byte-level
// fixpoint — re-encoding the loaded relation and re-loading it yields
// the identical encoding (corrupt value kinds normalise to Null on
// first load, so the fixpoint starts after one decode).
func FuzzPersistRoundTrip(f *testing.F) {
	seed := func(r *Relation) {
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	typical := NewRelation(NewSchema("product", "pid",
		Attribute{Name: "pid", Type: KindString},
		Attribute{Name: "price", Type: KindInt},
		Attribute{Name: "score", Type: KindFloat},
		Attribute{Name: "open", Type: KindBool},
	))
	typical.InsertVals(S("p0"), I(60), F(0.5), B(true))
	typical.InsertVals(S("p1"), I(-7), F(-1.25), B(false))
	typical.Insert(Tuple{S("p2"), Null, Null, Null})
	seed(typical)
	seed(NewRelation(NewSchema("empty", "",
		Attribute{Name: "only", Type: KindString})))
	f.Add([]byte{})
	f.Add([]byte("relation"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := LoadRelation(bytes.NewReader(data))
		if err != nil {
			return // rejecting corrupt input is the expected outcome
		}
		var first bytes.Buffer
		if err := r.Save(&first); err != nil {
			t.Fatalf("loadable relation failed to save: %v", err)
		}
		r2, err := LoadRelation(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded relation failed to load: %v", err)
		}
		var second bytes.Buffer
		if err := r2.Save(&second); err != nil {
			t.Fatalf("round-tripped relation failed to save: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Save/Load is not a fixpoint:\nfirst  %x\nsecond %x", first.Bytes(), second.Bytes())
		}
	})
}
