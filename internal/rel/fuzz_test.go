package rel

import (
	"bytes"
	"context"
	"testing"
)

// FuzzPersistRoundTrip drives the relation codec with arbitrary bytes.
// Two properties: LoadRelation must never panic or over-allocate on
// corrupt input (it returns an error instead), and any relation that
// does load must survive a Save/Load round-trip as a byte-level
// fixpoint — re-encoding the loaded relation and re-loading it yields
// the identical encoding (corrupt value kinds normalise to Null on
// first load, so the fixpoint starts after one decode).
func FuzzPersistRoundTrip(f *testing.F) {
	seed := func(r *Relation) {
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	typical := NewRelation(NewSchema("product", "pid",
		Attribute{Name: "pid", Type: KindString},
		Attribute{Name: "price", Type: KindInt},
		Attribute{Name: "score", Type: KindFloat},
		Attribute{Name: "open", Type: KindBool},
	))
	typical.InsertVals(S("p0"), I(60), F(0.5), B(true))
	typical.InsertVals(S("p1"), I(-7), F(-1.25), B(false))
	typical.Insert(Tuple{S("p2"), Null, Null, Null})
	seed(typical)
	seed(NewRelation(NewSchema("empty", "",
		Attribute{Name: "only", Type: KindString})))
	f.Add([]byte{})
	f.Add([]byte("relation"))
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := LoadRelation(bytes.NewReader(data))
		if err != nil {
			return // rejecting corrupt input is the expected outcome
		}
		var first bytes.Buffer
		if err := r.Save(&first); err != nil {
			t.Fatalf("loadable relation failed to save: %v", err)
		}
		r2, err := LoadRelation(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded relation failed to load: %v", err)
		}
		var second bytes.Buffer
		if err := r2.Save(&second); err != nil {
			t.Fatalf("round-tripped relation failed to save: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Save/Load is not a fixpoint:\nfirst  %x\nsecond %x", first.Bytes(), second.Bytes())
		}
	})
}

// FuzzBatchRoundTrip drives the columnar conversion with arbitrary
// relations (decoded through the persist codec, which rejects corrupt
// bytes). Two round trips must be lossless for values, nulls, order
// and schema: tuple-at-a-time conversion through one Batch, and the
// batch scan / unbatch pipeline over the relation's cached columnar
// image at a batch size derived from the input (so batch boundaries
// land everywhere, including mid-relation and past the end).
func FuzzBatchRoundTrip(f *testing.F) {
	seed := func(r *Relation) {
		var buf bytes.Buffer
		if err := r.Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes(), uint8(3))
	}
	typical := NewRelation(NewSchema("product", "pid",
		Attribute{Name: "pid", Type: KindString},
		Attribute{Name: "price", Type: KindInt},
		Attribute{Name: "score", Type: KindFloat},
		Attribute{Name: "open", Type: KindBool},
	))
	typical.InsertVals(S("p0"), I(60), F(0.5), B(true))
	typical.InsertVals(S("p1"), I(-7), F(-1.25), B(false))
	typical.Insert(Tuple{S("p2"), Null, Null, Null})
	typical.Insert(Tuple{Null, Null, Null, Null})
	seed(typical)
	empty := NewRelation(NewSchema("empty", "",
		Attribute{Name: "only", Type: KindString}))
	seed(empty)
	f.Add([]byte{}, uint8(0))

	f.Fuzz(func(t *testing.T, data []byte, sizeByte uint8) {
		r, err := LoadRelation(bytes.NewReader(data))
		if err != nil {
			return // rejecting corrupt input is the expected outcome
		}
		sameTuple := func(where string, i int, got, want Tuple) {
			if len(got) != len(want) {
				t.Fatalf("%s: row %d has %d values, want %d", where, i, len(got), len(want))
			}
			for c := range want {
				if got[c].Kind() != want[c].Kind() || got[c].Key() != want[c].Key() {
					t.Fatalf("%s: row %d col %d = %v (%v), want %v (%v)",
						where, i, c, got[c], got[c].Kind(), want[c], want[c].Kind())
				}
			}
		}
		// Round trip 1: tuples through one Batch and back.
		b := NewBatch(r.Schema)
		for _, tup := range r.Tuples {
			b.AppendTuple(tup)
		}
		if b.Rows() != r.Len() {
			t.Fatalf("batch rows = %d, want %d", b.Rows(), r.Len())
		}
		for i, want := range r.Tuples {
			sameTuple("batch", i, b.TupleAt(i), want)
		}
		// Round trip 2: the batch scan / unbatch pipeline over the
		// relation's columnar image, at a fuzzed batch size.
		size := int(sizeByte)%(r.Len()+2) + 1
		out, err := Materialize(context.Background(), NewUnbatcher(NewBatchScanSize(r, size)))
		if err != nil {
			t.Fatalf("batch scan pipeline: %v", err)
		}
		if out.Schema.String() != r.Schema.String() {
			t.Fatalf("scan schema = %s, want %s", out.Schema, r.Schema)
		}
		if out.Len() != r.Len() {
			t.Fatalf("scan rows = %d, want %d", out.Len(), r.Len())
		}
		for i, want := range r.Tuples {
			sameTuple("scan", i, out.Tuples[i], want)
		}
	})
}
