package rel

import (
	"strings"
	"testing"
	"testing/quick"
)

// must unwraps the error-returning operators in tests where the inputs
// are known-good fixtures.
func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// customers builds the paper's Figure 1 customer relation.
func customers() *Relation {
	s := NewSchema("customer", "cid",
		Attribute{Name: "cid", Type: KindString},
		Attribute{Name: "name", Type: KindString},
		Attribute{Name: "credit", Type: KindString},
		Attribute{Name: "bal", Type: KindInt},
		Attribute{Name: "address", Type: KindString},
	)
	r := NewRelation(s)
	r.InsertVals(S("cid01"), S("Bob"), S("fair"), I(500000), S("8 Oxford St., London, UK"))
	r.InsertVals(S("cid02"), S("Bob"), S("good"), I(110000), S("31 Minor Ave N, Seattle, US"))
	r.InsertVals(S("cid03"), S("Guy"), S("good"), I(50000), S("10115 Berlin, Germany"))
	r.InsertVals(S("cid04"), S("Ada"), S("fair"), I(100000), S("1200 Albert Ave, Texas, US"))
	return r
}

func products() *Relation {
	s := NewSchema("product", "pid",
		Attribute{Name: "pid", Type: KindString},
		Attribute{Name: "name", Type: KindString},
		Attribute{Name: "issuer", Type: KindString},
		Attribute{Name: "type", Type: KindString},
		Attribute{Name: "price", Type: KindInt},
		Attribute{Name: "risk", Type: KindString},
	)
	r := NewRelation(s)
	r.InsertVals(S("fd1"), S("G&L ESG"), S("G&L"), S("Funds"), I(90), S("medium"))
	r.InsertVals(S("fd2"), S("Beta"), S("company1"), S("Stocks"), I(120), S("high"))
	r.InsertVals(S("fd3"), S("G&L100"), S("G&L"), S("Funds"), I(100), S("low"))
	r.InsertVals(S("fd4"), S("RainForest"), S("company2"), S("Stocks"), I(80), S("medium"))
	return r
}

func TestValueBasics(t *testing.T) {
	if !S("x").Equal(S("x")) || S("x").Equal(S("y")) {
		t.Fatal("string equality wrong")
	}
	if !I(3).Equal(F(3)) {
		t.Fatal("cross-kind numeric equality should hold")
	}
	if Null.Equal(Null) {
		t.Fatal("null must not equal null")
	}
	if I(3).Key() != F(3).Key() {
		t.Fatal("numeric keys should coincide")
	}
	if S("3").Key() == I(3).Key() {
		t.Fatal("string and int keys must differ")
	}
	if I(2).Compare(F(2.5)) != -1 || F(2.5).Compare(I(2)) != 1 {
		t.Fatal("numeric ordering wrong")
	}
	if Null.Compare(S("a")) != -1 {
		t.Fatal("nulls should sort first")
	}
	if B(false).Compare(B(true)) != -1 {
		t.Fatal("bool ordering wrong")
	}
}

func TestValueAccessors(t *testing.T) {
	if I(7).Float() != 7 || F(2.5).Int() != 2 || B(true).Int() != 1 {
		t.Fatal("coercions wrong")
	}
	if S("hi").Str() != "hi" || !B(true).Bool() || I(1).Bool() {
		t.Fatal("accessors wrong")
	}
	if Null.String() != "NULL" || I(-4).String() != "-4" || F(0.5).String() != "0.5" {
		t.Fatal("String rendering wrong")
	}
}

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		kind Kind
	}{
		{"", KindNull},
		{"42", KindInt},
		{"4.5", KindFloat},
		{"true", KindBool},
		{"hello", KindString},
		{"41 High St", KindString},
	}
	for _, c := range cases {
		if got := Parse(c.in).Kind(); got != c.kind {
			t.Fatalf("Parse(%q).Kind = %v, want %v", c.in, got, c.kind)
		}
	}
}

func TestSchemaCol(t *testing.T) {
	s := NewSchema("customer", "cid",
		Attribute{Name: "cid"}, Attribute{Name: "name"})
	if s.Col("cid") != 0 || s.Col("name") != 1 {
		t.Fatal("plain lookup failed")
	}
	if s.Col("customer.name") != 1 {
		t.Fatal("qualified lookup failed")
	}
	if s.Col("other.name") != -1 || s.Col("missing") != -1 {
		t.Fatal("negative lookups failed")
	}
	if s.KeyCol() != 0 {
		t.Fatal("KeyCol wrong")
	}
	q := s.Qualified("T1")
	if q.Col("T1.cid") != 0 {
		t.Fatal("qualified schema direct lookup failed")
	}
	if q.Col("cid") != 0 {
		t.Fatal("qualified schema bare suffix lookup failed")
	}
}

func TestSchemaAmbiguousBareName(t *testing.T) {
	s := NewSchema("j", "",
		Attribute{Name: "a.x"}, Attribute{Name: "b.x"})
	if s.Col("x") != -1 {
		t.Fatal("ambiguous bare name should not resolve")
	}
	if s.Col("a.x") != 0 || s.Col("b.x") != 1 {
		t.Fatal("qualified names should resolve")
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchema("r", "", Attribute{Name: "a"}, Attribute{Name: "a"})
}

func TestInsertArityPanics(t *testing.T) {
	r := customers()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.Insert(Tuple{S("oops")})
}

func TestSelectProject(t *testing.T) {
	c := customers()
	good := Select(c, func(t Tuple) bool { return c.Get(t, "credit").Equal(S("good")) })
	if good.Len() != 2 {
		t.Fatalf("good credit count = %d", good.Len())
	}
	p := must(Project(good, "cid", "name"))
	if p.Len() != 2 || len(p.Schema.Attrs) != 2 {
		t.Fatal("projection wrong")
	}
	if p.Schema.Key != "cid" {
		t.Fatal("projection should retain key when projected")
	}
	p2 := must(Project(good, "name"))
	if p2.Schema.Key != "" {
		t.Fatal("projection should drop key when absent")
	}
}

func TestHashJoin(t *testing.T) {
	c, p := customers(), products()
	// Join customers to products on risk-ish fake condition: name == issuer
	// has no matches; use credit == risk ("good" vs levels) — no matches
	// either. Build a meaningful join: products issued by company named in
	// a small lookup relation instead.
	iss := NewRelation(NewSchema("iss", "issuer", Attribute{Name: "issuer"}, Attribute{Name: "country"}))
	iss.InsertVals(S("G&L"), S("UK"))
	iss.InsertVals(S("company1"), S("UK"))
	j := must(HashJoin(p, iss, "issuer", "issuer"))
	if j.Len() != 3 {
		t.Fatalf("join size = %d, want 3", j.Len())
	}
	if j.Schema.Col("product.pid") < 0 || j.Schema.Col("iss.country") < 0 {
		t.Fatalf("qualified attrs missing: %v", j.Schema)
	}
	// Output layout invariant: a's values first.
	for _, tp := range j.Tuples {
		if tp[j.Schema.Col("product.issuer")].Str() != tp[j.Schema.Col("iss.issuer")].Str() {
			t.Fatal("join key mismatch in output")
		}
	}
	_ = c
}

func TestHashJoinBuildSideSwap(t *testing.T) {
	// Larger left side than right forces a swap; layout must not change.
	a := NewRelation(NewSchema("a", "", Attribute{Name: "k"}, Attribute{Name: "va"}))
	for i := 0; i < 10; i++ {
		a.InsertVals(I(int64(i%3)), I(int64(i)))
	}
	b := NewRelation(NewSchema("b", "", Attribute{Name: "k"}, Attribute{Name: "vb"}))
	b.InsertVals(I(1), S("one"))
	j1 := must(HashJoin(a, b, "k", "k"))
	j2 := must(HashJoin(b, a, "k", "k"))
	if j1.Len() != j2.Len() {
		t.Fatalf("asymmetric join sizes: %d vs %d", j1.Len(), j2.Len())
	}
	for _, tp := range j1.Tuples {
		if tp[j1.Schema.Col("a.k")].Int() != 1 || tp[j1.Schema.Col("b.vb")].Str() != "one" {
			t.Fatalf("layout broken: %v", tp)
		}
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	a := NewRelation(NewSchema("a", "", Attribute{Name: "k"}))
	a.InsertVals(Null)
	b := NewRelation(NewSchema("b", "", Attribute{Name: "k"}))
	b.InsertVals(Null)
	if j := must(HashJoin(a, b, "k", "k")); j.Len() != 0 {
		t.Fatal("null keys must not join")
	}
}

func TestNaturalJoin(t *testing.T) {
	// match(tid, vid) ⋈ extracted(vid, loc): the paper's reduction shape.
	match := NewRelation(NewSchema("match", "tid", Attribute{Name: "tid"}, Attribute{Name: "vid"}))
	match.InsertVals(S("fd1"), I(1))
	match.InsertVals(S("fd2"), I(2))
	ext := NewRelation(NewSchema("ext", "vid", Attribute{Name: "vid"}, Attribute{Name: "loc"}))
	ext.InsertVals(I(1), S("UK"))
	ext.InsertVals(I(3), S("US"))
	j := must(NaturalJoin(match, ext))
	if j.Len() != 1 {
		t.Fatalf("natural join size = %d, want 1", j.Len())
	}
	if j.Get(j.Tuples[0], "loc").Str() != "UK" || j.Get(j.Tuples[0], "tid").Str() != "fd1" {
		t.Fatalf("wrong tuple: %v", j.Tuples[0])
	}
	if len(j.Schema.Attrs) != 3 { // tid, vid, loc — shared vid appears once
		t.Fatalf("schema arity = %d, want 3", len(j.Schema.Attrs))
	}
}

func TestNaturalJoinNoSharedIsCross(t *testing.T) {
	a := NewRelation(NewSchema("a", "", Attribute{Name: "x"}))
	a.InsertVals(I(1))
	a.InsertVals(I(2))
	b := NewRelation(NewSchema("b", "", Attribute{Name: "y"}))
	b.InsertVals(I(3))
	j := must(NaturalJoin(a, b))
	if j.Len() != 2 {
		t.Fatalf("cross size = %d", j.Len())
	}
}

func TestThreeWayNaturalJoinReduction(t *testing.T) {
	// S ⋈ f(S,G) ⋈ h(S,G): verify the full enrichment-join reduction of
	// §IV-A on Figure 1 data.
	p := products()
	match := NewRelation(NewSchema("match", "", Attribute{Name: "pid"}, Attribute{Name: "vid"}))
	match.InsertVals(S("fd1"), I(101))
	match.InsertVals(S("fd2"), I(102))
	ext := NewRelation(NewSchema("ext", "", Attribute{Name: "vid"}, Attribute{Name: "company"}, Attribute{Name: "loc"}))
	ext.InsertVals(I(101), S("company1"), S("UK"))
	ext.InsertVals(I(102), S("company1"), S("US"))
	j := must(NaturalJoin(must(NaturalJoin(p, match)), ext))
	if j.Len() != 2 {
		t.Fatalf("enrichment size = %d", j.Len())
	}
	q := Select(j, func(t Tuple) bool {
		return j.Get(t, "pid").Equal(S("fd1")) && j.Get(t, "loc").Equal(S("UK"))
	})
	if q.Len() != 1 {
		t.Fatalf("Q1 result size = %d, want 1", q.Len())
	}
	res := must(Project(q, "risk", "company"))
	if res.Tuples[0][0].Str() != "medium" || res.Tuples[0][1].Str() != "company1" {
		t.Fatalf("Q1 answer = %v, want (medium, company1)", res.Tuples[0])
	}
}

func TestNestedLoopJoin(t *testing.T) {
	c, p := customers(), products()
	// Example 10's Q': bal >= 1000*price.
	j := must(NestedLoopJoin(c, p, func(joined Tuple) bool {
		bal := joined[3]     // customer.bal
		price := joined[5+4] // product.price (customer has 5 attrs)
		return !bal.IsNull() && bal.Float() >= 1000*price.Float()
	}))
	for _, tp := range j.Tuples {
		if tp[3].Float() < 1000*tp[9].Float() {
			t.Fatal("predicate violated")
		}
	}
	if j.Len() == 0 {
		t.Fatal("expected some joinable pairs")
	}
}

func TestCrossProduct(t *testing.T) {
	c, p := customers(), products()
	x := must(CrossProduct(c, p, "c", "p"))
	if x.Len() != c.Len()*p.Len() {
		t.Fatalf("cross size = %d", x.Len())
	}
	if x.Schema.Col("c.cid") < 0 || x.Schema.Col("p.pid") < 0 {
		t.Fatal("qualified names missing")
	}
}

func TestDistinctUnionSort(t *testing.T) {
	r := NewRelation(NewSchema("r", "", Attribute{Name: "x"}))
	r.InsertVals(I(2))
	r.InsertVals(I(1))
	r.InsertVals(I(2))
	d := Distinct(r)
	if d.Len() != 2 {
		t.Fatalf("distinct = %d", d.Len())
	}
	u := must(Union(d, d))
	if u.Len() != 4 {
		t.Fatalf("union = %d", u.Len())
	}
	s := must(SortBy(r, "x"))
	if s.Tuples[0][0].Int() != 1 || s.Tuples[2][0].Int() != 2 {
		t.Fatal("sort wrong")
	}
}

func TestSortStability(t *testing.T) {
	r := NewRelation(NewSchema("r", "", Attribute{Name: "k"}, Attribute{Name: "seq"}))
	for i := 0; i < 10; i++ {
		r.InsertVals(I(int64(i%2)), I(int64(i)))
	}
	s := must(SortBy(r, "k"))
	last := int64(-1)
	for _, t2 := range s.Tuples {
		if t2[0].Int() == 0 {
			if t2[1].Int() < last {
				t.Fatal("sort not stable")
			}
			last = t2[1].Int()
		}
	}
}

func TestAggregate(t *testing.T) {
	p := products()
	a := must(Aggregate(p, []string{"type"}, []AggSpec{
		{Func: AggCount, Attr: "*", As: "n"},
		{Func: AggAvg, Attr: "price", As: "avg_price"},
		{Func: AggMin, Attr: "price", As: "min_price"},
		{Func: AggMax, Attr: "price", As: "max_price"},
		{Func: AggSum, Attr: "price", As: "sum_price"},
	}))
	if a.Len() != 2 {
		t.Fatalf("groups = %d", a.Len())
	}
	for _, tp := range a.Tuples {
		switch a.Get(tp, "type").Str() {
		case "Funds":
			if a.Get(tp, "n").Int() != 2 || a.Get(tp, "avg_price").Float() != 95 {
				t.Fatalf("Funds agg wrong: %v", tp)
			}
			if a.Get(tp, "min_price").Float() != 90 || a.Get(tp, "max_price").Float() != 100 {
				t.Fatalf("Funds min/max wrong: %v", tp)
			}
		case "Stocks":
			if a.Get(tp, "sum_price").Float() != 200 {
				t.Fatalf("Stocks sum wrong: %v", tp)
			}
		default:
			t.Fatalf("unexpected group %v", tp)
		}
	}
}

func TestAggregateGlobalEmptyInput(t *testing.T) {
	r := NewRelation(NewSchema("r", "", Attribute{Name: "x"}))
	a := must(Aggregate(r, nil, []AggSpec{{Func: AggCount, Attr: "*", As: "n"}, {Func: AggAvg, Attr: "x", As: "m"}}))
	if a.Len() != 1 {
		t.Fatal("global aggregate over empty input must yield one row")
	}
	if a.Get(a.Tuples[0], "n").Int() != 0 || !a.Get(a.Tuples[0], "m").IsNull() {
		t.Fatalf("empty aggregate wrong: %v", a.Tuples[0])
	}
}

func TestAggregateIgnoresNulls(t *testing.T) {
	r := NewRelation(NewSchema("r", "", Attribute{Name: "x"}))
	r.InsertVals(I(10))
	r.InsertVals(Null)
	a := must(Aggregate(r, nil, []AggSpec{
		{Func: AggCount, Attr: "x", As: "n"},
		{Func: AggAvg, Attr: "x", As: "avg"},
	}))
	if a.Get(a.Tuples[0], "n").Int() != 1 || a.Get(a.Tuples[0], "avg").Float() != 10 {
		t.Fatalf("null handling wrong: %v", a.Tuples[0])
	}
}

func TestIndex(t *testing.T) {
	p := products()
	idx := must(BuildIndex(p, "issuer"))
	got := idx.Lookup(S("G&L"))
	if len(got) != 2 {
		t.Fatalf("lookup = %d rows", len(got))
	}
	if _, ok := idx.LookupFirst(S("nobody")); ok {
		t.Fatal("missing key should not be found")
	}
	if idx.Lookup(Null) != nil {
		t.Fatal("null lookup should be empty")
	}
	if idx.Len() != 3 {
		t.Fatalf("distinct keys = %d", idx.Len())
	}
}

func TestRelationString(t *testing.T) {
	p := products()
	s := p.String()
	if !strings.Contains(s, "pid") || !strings.Contains(s, "fd1") {
		t.Fatalf("table rendering missing data:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2+p.Len() {
		t.Fatalf("rendered %d lines", len(lines))
	}
}

func TestGetMissingAttr(t *testing.T) {
	p := products()
	if !p.Get(p.Tuples[0], "no_such").IsNull() {
		t.Fatal("missing attribute should read as null")
	}
}

// Property: Compare is antisymmetric and Equal implies Compare == 0 for
// non-null values.
func TestValueCompareProperties(t *testing.T) {
	mk := func(tag uint8, n int64, s string) Value {
		switch tag % 4 {
		case 0:
			return I(n)
		case 1:
			return F(float64(n) / 3)
		case 2:
			return S(s)
		default:
			return B(n%2 == 0)
		}
	}
	f := func(t1, t2 uint8, n1, n2 int64, s1, s2 string) bool {
		a, b := mk(t1, n1, s1), mk(t2, n2, s2)
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		if a.Equal(b) && a.Compare(b) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: natural join result size never exceeds |A|*|B| and every output
// tuple agrees on shared attributes.
func TestNaturalJoinProperty(t *testing.T) {
	f := func(av, bv []uint8) bool {
		a := NewRelation(NewSchema("a", "", Attribute{Name: "k"}, Attribute{Name: "x"}))
		for i, v := range av {
			a.InsertVals(I(int64(v%4)), I(int64(i)))
		}
		b := NewRelation(NewSchema("b", "", Attribute{Name: "k"}, Attribute{Name: "y"}))
		for i, v := range bv {
			b.InsertVals(I(int64(v%4)), I(int64(i)))
		}
		j := must(NaturalJoin(a, b))
		if j.Len() > a.Len()*b.Len() {
			return false
		}
		// Cross-check against nested-loop count.
		count := 0
		for _, ta := range a.Tuples {
			for _, tb := range b.Tuples {
				if ta[0].Equal(tb[0]) {
					count++
				}
			}
		}
		return j.Len() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
