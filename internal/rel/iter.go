package rel

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"semjoin/internal/obs"
)

// Iterator is a Volcano-style pull operator. Plans are trees of
// iterators; the root is drained with Materialize (or manually via
// Open/Next/Close). All validation errors that the eager operators
// used to panic on are surfaced through Open instead, so a planner
// bug or a bad query degrades into an error, never a crash.
type Iterator interface {
	// Schema returns the output schema, or nil while it is unknown.
	// Most operators know their schema at construction time; sources
	// whose schema depends on data (e.g. semantic joins over opaque
	// inputs) only know it after Open.
	Schema() *Schema
	// Open prepares the operator, recursively opening children first,
	// and surfaces any validation error (unknown attribute, arity
	// mismatch, ...). ctx may be nil for context.Background().
	Open(ctx context.Context) error
	// Next returns the next tuple, or (nil, nil) at end of stream.
	// Cancellation of the Open context is checked periodically.
	Next() (Tuple, error)
	// Close releases resources. It is safe to call after a failed
	// Open and at most once per Open.
	Close() error
	// Stats returns the operator's live counters (rows out, wall
	// time inclusive of children).
	Stats() *OpStats
	// Children returns the child operators for plan traversal.
	Children() []Iterator
}

// errSchemaPending is an internal sentinel: a kernel cannot resolve
// yet because a child schema is only known after Open. newOp swallows
// it at construction time; Open retries once children are open.
var errSchemaPending = errors.New("rel: schema not yet resolved")

// kernel is the per-operator behaviour plugged into op. resolve must
// be idempotent: it runs best-effort at construction (to expose a
// plan-time schema) and again during Open when it failed earlier.
type kernel interface {
	resolve(o *op) error
	open(o *op) error
	next(o *op) (Tuple, error)
	close(o *op) error
}

// op wraps a kernel with the shared Iterator plumbing: child
// management, schema caching, stats accounting and cancellation.
type op struct {
	k         kernel
	children  []Iterator
	schema    *Schema
	stats     OpStats
	ctx       context.Context
	opened    bool
	done      bool
	resolved  bool
	metered   bool // rows-out not yet reported to the registry
	unmetered bool // never report (internal morsel sources)
}

func newOp(label string, k kernel, children ...Iterator) *op {
	o := &op{k: k, children: children}
	o.stats.Label = label
	o.resolved = k.resolve(o) == nil
	return o
}

// opKind reduces an operator label to its metric label: the leading
// word ("hash join tid=tid" -> "hash", "l-join static" -> "l-join").
func opKind(label string) string {
	if i := strings.IndexByte(label, ' '); i > 0 {
		return label[:i]
	}
	return label
}

func (o *op) Schema() *Schema      { return o.schema }
func (o *op) Children() []Iterator { return o.children }
func (o *op) Stats() *OpStats      { return &o.stats }

func (o *op) Open(ctx context.Context) error {
	start := time.Now()
	defer func() { o.stats.Elapsed += time.Since(start) }()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	o.ctx = ctx
	o.done = false
	for i, c := range o.children {
		if err := c.Open(ctx); err != nil {
			// Open is atomic: a child failing mid-fan must not strand
			// its already-opened siblings. Close the failed child and
			// everything opened before it so the tree is fully closed
			// even when the caller only propagates the error.
			c.Close()
			for _, prev := range o.children[:i] {
				prev.Close()
			}
			return err
		}
	}
	if !o.resolved {
		if err := o.k.resolve(o); err != nil {
			o.closeChildren()
			return err
		}
		o.resolved = true
	}
	if err := o.k.open(o); err != nil {
		o.closeChildren()
		return err
	}
	o.opened = true
	o.metered = !o.unmetered
	return nil
}

// closeChildren unwinds the children after a failed Open (the
// kernel's own state was never opened, so o.Close's kernel half is
// not involved). Closing an operator twice is safe, so callers that
// follow the close-on-failed-Open convention stay correct.
func (o *op) closeChildren() {
	for _, c := range o.children {
		c.Close()
	}
}

func (o *op) Next() (Tuple, error) {
	if o.done || !o.opened {
		return nil, nil
	}
	start := time.Now()
	t, err := o.k.next(o)
	o.stats.Elapsed += time.Since(start)
	if err != nil || t == nil {
		o.done = true
		return nil, err
	}
	o.stats.RowsOut++
	if o.stats.RowsOut&255 == 0 {
		if err := o.ctx.Err(); err != nil {
			o.done = true
			return nil, err
		}
	}
	return t, nil
}

func (o *op) Close() error {
	var first error
	if o.opened {
		if err := o.k.close(o); err != nil {
			first = err
		}
		o.opened = false
	}
	if o.metered {
		// Aggregate accounting happens once per execution, at Close, so
		// the per-tuple path stays untouched. The registry travels on the
		// Open context; without one this is a nil no-op.
		o.metered = false
		obs.FromContext(o.ctx).Counter("rel_op_rows_total", "op", opKind(o.stats.Label)).Add(o.stats.RowsOut)
	}
	for _, c := range o.children {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	o.done = true
	return first
}

// baseKernel provides no-op resolve/open/close for embedding.
type baseKernel struct{}

func (baseKernel) resolve(o *op) error { return nil }
func (baseKernel) open(o *op) error    { return nil }
func (baseKernel) close(o *op) error   { return nil }

// drain pulls every remaining tuple from an already-open iterator into
// a freshly-allocated slice.
func drain(c Iterator) ([]Tuple, error) {
	var out []Tuple
	for {
		t, err := c.Next()
		if err != nil {
			return nil, err
		}
		if t == nil {
			return out, nil
		}
		out = append(out, t)
	}
}

// Materialize opens it, drains it into a relation and closes it. A nil
// ctx means context.Background(). The result's Tuples slice is always
// freshly owned (the ownership rule on Relation), so appending to it
// cannot corrupt any operator input.
func Materialize(ctx context.Context, it Iterator) (*Relation, error) {
	if err := it.Open(ctx); err != nil {
		it.Close()
		return nil, err
	}
	ts, err := drain(it)
	cerr := it.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	s := it.Schema()
	if s == nil {
		return nil, fmt.Errorf("rel: materialize: iterator produced no schema")
	}
	out := NewRelation(s)
	out.Tuples = ts
	return out, nil
}

// errKernel always fails with a fixed error; construction-time
// invariant violations (e.g. mismatched argument lengths) become
// operators whose Open reports the problem.
type errKernel struct {
	baseKernel
	err error
}

func (k *errKernel) resolve(o *op) error       { return k.err }
func (k *errKernel) next(o *op) (Tuple, error) { return nil, k.err }

func errOp(label string, err error) Iterator { return newOp(label, &errKernel{err: err}) }

// ---------------------------------------------------------------- scan

type scanKernel struct {
	baseKernel
	r *Relation
	i int
}

func (k *scanKernel) resolve(o *op) error { o.schema = k.r.Schema; return nil }
func (k *scanKernel) open(o *op) error    { k.i = 0; return nil }
func (k *scanKernel) next(o *op) (Tuple, error) {
	if k.i >= len(k.r.Tuples) {
		return nil, nil
	}
	t := k.r.Tuples[k.i]
	k.i++
	return t, nil
}

// NewScan streams the tuples of r.
func NewScan(r *Relation) Iterator {
	return newOp("scan "+r.Schema.Name, &scanKernel{r: r})
}

// newMorselScan is NewScan for the exchange's internal morsel
// sources. Those tuples were already counted once flowing into the
// exchange, so the morsel scans stay unmetered — serial and parallel
// plans then report identical per-operator row counters.
func newMorselScan(r *Relation) Iterator {
	o := newOp("scan "+r.Schema.Name, &scanKernel{r: r})
	o.unmetered = true
	return o
}

// -------------------------------------------------------------- select

type selectKernel struct {
	baseKernel
	bind func(*Schema) (Pred, error)
	p    Pred
}

func (k *selectKernel) resolve(o *op) error {
	s := o.children[0].Schema()
	if s == nil {
		return errSchemaPending
	}
	p, err := k.bind(s)
	if err != nil {
		return err
	}
	o.schema = s
	k.p = p
	return nil
}

func (k *selectKernel) next(o *op) (Tuple, error) {
	for {
		t, err := o.children[0].Next()
		if err != nil || t == nil {
			return nil, err
		}
		if k.p(t) {
			return t, nil
		}
	}
}

// NewSelect streams the tuples of child satisfying p.
func NewSelect(child Iterator, p Pred) Iterator {
	return NewSelectWith("select", child, func(*Schema) (Pred, error) { return p, nil })
}

// NewSelectWith is NewSelect with a late-bound predicate: bind runs
// once the input schema is known, so predicates can resolve column
// positions against schemas that only exist after Open.
func NewSelectWith(label string, child Iterator, bind func(*Schema) (Pred, error)) Iterator {
	return newOp(label, &selectKernel{bind: bind}, child)
}

// ------------------------------------------------------------- project

type projectKernel struct {
	baseKernel
	names []string
	cols  []int
}

func (k *projectKernel) resolve(o *op) error {
	in := o.children[0].Schema()
	if in == nil {
		return errSchemaPending
	}
	cols := make([]int, len(k.names))
	attrs := make([]Attribute, len(k.names))
	for i, n := range k.names {
		c := in.Col(n)
		if c < 0 {
			return fmt.Errorf("rel: project: no attribute %q in %s", n, in)
		}
		cols[i] = c
		attrs[i] = Attribute{Name: n, Type: in.Attrs[c].Type}
	}
	key := ""
	for _, n := range k.names {
		if n == in.Key {
			key = n
		}
	}
	s, err := TrySchema(in.Name, key, attrs...)
	if err != nil {
		return err
	}
	o.schema = s
	k.cols = cols
	return nil
}

func (k *projectKernel) next(o *op) (Tuple, error) {
	t, err := o.children[0].Next()
	if err != nil || t == nil {
		return nil, err
	}
	nt := make(Tuple, len(k.cols))
	for i, c := range k.cols {
		nt[i] = t[c]
	}
	return nt, nil
}

// NewProject restricts child to the named attributes, in order.
func NewProject(child Iterator, names ...string) Iterator {
	return newOp("project", &projectKernel{names: names}, child)
}

// -------------------------------------------------------------- rename

type renameKernel struct {
	baseKernel
	name string
}

func (k *renameKernel) resolve(o *op) error {
	in := o.children[0].Schema()
	if in == nil {
		return errSchemaPending
	}
	o.schema = in.Rename(k.name)
	return nil
}

func (k *renameKernel) next(o *op) (Tuple, error) { return o.children[0].Next() }

// NewRename passes child through under a new relation name.
func NewRename(child Iterator, name string) Iterator {
	return newOp("rename "+name, &renameKernel{name: name}, child)
}

// ---------------------------------------------------------- cross join

type crossKernel struct {
	baseKernel
	outName string
	names   []string
	mats    [][]Tuple // children 1..n-1, materialised at open
	cur     Tuple     // current tuple of the streamed child 0
	idx     []int     // odometer over mats, last index fastest
	width   int
}

func (k *crossKernel) resolve(o *op) error {
	var attrs []Attribute
	for i, c := range o.children {
		s := c.Schema()
		if s == nil {
			return errSchemaPending
		}
		attrs = append(attrs, s.Qualified(k.names[i]).Attrs...)
	}
	s, err := TrySchema(k.outName, "", attrs...)
	if err != nil {
		return err
	}
	o.schema = s
	k.width = len(attrs)
	return nil
}

func (k *crossKernel) open(o *op) error {
	k.mats = make([][]Tuple, len(o.children)-1)
	for i := 1; i < len(o.children); i++ {
		ts, err := drain(o.children[i])
		if err != nil {
			return err
		}
		k.mats[i-1] = ts
	}
	k.idx = make([]int, len(k.mats))
	k.cur = nil
	return nil
}

func (k *crossKernel) next(o *op) (Tuple, error) {
	for _, m := range k.mats {
		if len(m) == 0 {
			return nil, nil
		}
	}
	if k.cur == nil {
		t, err := o.children[0].Next()
		if err != nil || t == nil {
			return nil, err
		}
		k.cur = t
		for i := range k.idx {
			k.idx[i] = 0
		}
	}
	nt := make(Tuple, 0, k.width)
	nt = append(nt, k.cur...)
	for i, m := range k.mats {
		nt = append(nt, m[k.idx[i]]...)
	}
	for i := len(k.idx) - 1; ; i-- {
		if i < 0 {
			k.cur = nil
			break
		}
		k.idx[i]++
		if k.idx[i] < len(k.mats[i]) {
			break
		}
		k.idx[i] = 0
	}
	return nt, nil
}

// NewCrossJoin streams the Cartesian product of the children with
// attribute names qualified by the binding names. The first child
// streams; the rest are materialised at Open.
func NewCrossJoin(children []Iterator, names []string) Iterator {
	return newCrossJoin("cross", children, names)
}

func newCrossJoin(outName string, children []Iterator, names []string) Iterator {
	if len(children) != len(names) || len(children) == 0 {
		return errOp("cross", errors.New("rel: CrossJoinAll needs one name per relation"))
	}
	return newOp("cross", &crossKernel{outName: outName, names: names}, children...)
}

// ----------------------------------------------------------- hash join

type hashJoinKernel struct {
	baseKernel
	leftAttr, rightAttr string
	buildLeft           bool
	workers             int
	lc, rc              int
	ht                  map[Value][]Tuple   // serial build
	parts               []map[Value][]Tuple // parallel partitioned build
	pending             []Tuple
	probe               Tuple
}

// parallelBuildMin is the build-side row count below which a parallel
// hash-join build is not worth the partitioning pass.
const parallelBuildMin = 512

func (k *hashJoinKernel) resolve(o *op) error {
	ls, rs := o.children[0].Schema(), o.children[1].Schema()
	if ls == nil || rs == nil {
		return errSchemaPending
	}
	k.lc, k.rc = ls.Col(k.leftAttr), rs.Col(k.rightAttr)
	if k.lc < 0 || k.rc < 0 {
		return fmt.Errorf("rel: hash join: missing attribute %q/%q", k.leftAttr, k.rightAttr)
	}
	qa := ls.Qualified(ls.Name)
	qb := rs.Qualified(rs.Name)
	attrs := append(append([]Attribute(nil), qa.Attrs...), qb.Attrs...)
	s, err := TrySchema(ls.Name+"_"+rs.Name, "", attrs...)
	if err != nil {
		return err
	}
	o.schema = s
	return nil
}

func (k *hashJoinKernel) open(o *op) error {
	build, bc := o.children[1], k.rc
	if k.buildLeft {
		build, bc = o.children[0], k.lc
	}
	ts, err := drain(build)
	if err != nil {
		return err
	}
	reg := obs.FromContext(o.ctx)
	reg.Counter("rel_hashjoin_build_rows_total").Add(int64(len(ts)))
	if k.workers > 1 && len(ts) >= parallelBuildMin {
		reg.Counter("rel_hashjoin_parallel_builds_total").Inc()
		k.parts = buildPartitioned(ts, bc, k.workers)
		k.ht = nil
		o.stats.Workers = k.workers
	} else {
		k.parts = nil
		k.ht = make(map[Value][]Tuple, len(ts))
		for _, t := range ts {
			key, ok := t[bc].HashKey()
			if !ok {
				continue
			}
			k.ht[key] = append(k.ht[key], t)
		}
	}
	k.pending, k.probe = nil, nil
	return nil
}

// lookup returns the build-side matches for a probe key under either
// build layout. Both layouts keep tuples in build-input order, so probe
// output is identical regardless of the build parallelism.
func (k *hashJoinKernel) lookup(key Value) []Tuple {
	if k.parts != nil {
		return k.parts[valuePartition(key, len(k.parts))][key]
	}
	return k.ht[key]
}

func (k *hashJoinKernel) next(o *op) (Tuple, error) {
	probeChild, pc := o.children[0], k.lc
	if k.buildLeft {
		probeChild, pc = o.children[1], k.rc
	}
	for {
		if len(k.pending) > 0 {
			bt := k.pending[0]
			k.pending = k.pending[1:]
			// Output layout is always left's values then right's.
			lt, rt := k.probe, bt
			if k.buildLeft {
				lt, rt = bt, k.probe
			}
			nt := make(Tuple, 0, len(lt)+len(rt))
			nt = append(append(nt, lt...), rt...)
			return nt, nil
		}
		t, err := probeChild.Next()
		if err != nil || t == nil {
			return nil, err
		}
		key, ok := t[pc].HashKey()
		if !ok {
			continue
		}
		k.pending = k.lookup(key)
		k.probe = t
	}
}

// NewHashJoin equijoins left.leftAttr = right.rightAttr with qualified
// attribute names. buildLeft selects which side is materialised into
// the hash table at Open; the other side streams. Null join keys never
// match (SQL semantics). Output layout is always left-then-right.
func NewHashJoin(left, right Iterator, leftAttr, rightAttr string, buildLeft bool) Iterator {
	return NewHashJoinP(left, right, leftAttr, rightAttr, buildLeft, 1)
}

// NewHashJoinP is NewHashJoin with a parallel build: when workers > 1
// and the build side is large enough, the hash table is built as
// hash-partitioned sub-tables, one goroutine per partition. The probe
// stream and its output order are unchanged.
func NewHashJoinP(left, right Iterator, leftAttr, rightAttr string, buildLeft bool, workers int) Iterator {
	k := &hashJoinKernel{leftAttr: leftAttr, rightAttr: rightAttr, buildLeft: buildLeft, workers: workers}
	return newOp("hash join "+leftAttr+"="+rightAttr, k, left, right)
}

// ---------------------------------------------------- nested-loop join

type nlKernel struct {
	baseKernel
	p      func(Tuple) bool
	right  []Tuple
	cur    Tuple
	ri     int
	joined Tuple
}

func (k *nlKernel) resolve(o *op) error {
	ls, rs := o.children[0].Schema(), o.children[1].Schema()
	if ls == nil || rs == nil {
		return errSchemaPending
	}
	qa := ls.Qualified(ls.Name)
	qb := rs.Qualified(rs.Name)
	attrs := append(append([]Attribute(nil), qa.Attrs...), qb.Attrs...)
	s, err := TrySchema(ls.Name+"_"+rs.Name, "", attrs...)
	if err != nil {
		return err
	}
	o.schema = s
	return nil
}

func (k *nlKernel) open(o *op) error {
	ts, err := drain(o.children[1])
	if err != nil {
		return err
	}
	k.right = ts
	k.cur, k.ri = nil, 0
	k.joined = make(Tuple, len(o.schema.Attrs))
	return nil
}

func (k *nlKernel) next(o *op) (Tuple, error) {
	for {
		if k.cur == nil {
			t, err := o.children[0].Next()
			if err != nil || t == nil {
				return nil, err
			}
			k.cur = t
			k.ri = 0
			copy(k.joined, t)
		}
		for k.ri < len(k.right) {
			tb := k.right[k.ri]
			k.ri++
			copy(k.joined[len(k.cur):], tb)
			if k.p(k.joined) {
				return k.joined.Clone(), nil
			}
		}
		k.cur = nil
	}
}

// NewNestedLoopJoin joins left and right with an arbitrary predicate
// over the concatenated tuple (left's values first). The right side is
// materialised at Open.
func NewNestedLoopJoin(left, right Iterator, p func(joined Tuple) bool) Iterator {
	return newOp("nested-loop join", &nlKernel{p: p}, left, right)
}

// -------------------------------------------------------- natural join

type naturalKernel struct {
	baseKernel
	cross        bool
	aCols, bCols []int
	bExtra       []int
	ht           map[string][]Tuple
	bTuples      []Tuple // cross fallback
	bi           int
	cur          Tuple
	pending      []Tuple
	width        int
}

func (k *naturalKernel) resolve(o *op) error {
	as, bs := o.children[0].Schema(), o.children[1].Schema()
	if as == nil || bs == nil {
		return errSchemaPending
	}
	var shared []string
	for _, attr := range as.Attrs {
		if bs.Has(attr.Name) {
			shared = append(shared, attr.Name)
		}
	}
	if len(shared) == 0 {
		// Degenerates to a Cartesian product with qualified names.
		k.cross = true
		qa, qb := as.Qualified(as.Name), bs.Qualified(bs.Name)
		attrs := append(append([]Attribute(nil), qa.Attrs...), qb.Attrs...)
		s, err := TrySchema(as.Name+"x"+bs.Name, "", attrs...)
		if err != nil {
			return err
		}
		o.schema = s
		k.width = len(attrs)
		return nil
	}
	k.aCols = make([]int, len(shared))
	k.bCols = make([]int, len(shared))
	for i, n := range shared {
		k.aCols[i] = as.Col(n)
		k.bCols[i] = bs.Col(n)
	}
	// Output schema: all of a, then b's non-shared attributes.
	attrs := append([]Attribute(nil), as.Attrs...)
	k.bExtra = nil
	for i, attr := range bs.Attrs {
		if !as.Has(attr.Name) {
			attrs = append(attrs, attr)
			k.bExtra = append(k.bExtra, i)
		}
	}
	key := as.Key
	if key == "" {
		key = bs.Key
		if key != "" {
			tmp, err := TrySchema("tmp", "", attrs...)
			if err != nil {
				return err
			}
			if !tmp.Has(key) {
				key = ""
			}
		}
	}
	s, err := TrySchema(as.Name+"_"+bs.Name, key, attrs...)
	if err != nil {
		return err
	}
	o.schema = s
	k.width = len(attrs)
	return nil
}

func (k *naturalKernel) open(o *op) error {
	ts, err := drain(o.children[1])
	if err != nil {
		return err
	}
	if k.cross {
		k.bTuples = ts
		k.bi = 0
		k.cur = nil
		return nil
	}
	k.ht = make(map[string][]Tuple, len(ts))
	for _, t := range ts {
		key, ok := jointKey(t, k.bCols)
		if !ok {
			continue
		}
		k.ht[key] = append(k.ht[key], t)
	}
	k.cur, k.pending = nil, nil
	return nil
}

func (k *naturalKernel) next(o *op) (Tuple, error) {
	if k.cross {
		for {
			if k.cur == nil {
				t, err := o.children[0].Next()
				if err != nil || t == nil {
					return nil, err
				}
				k.cur = t
				k.bi = 0
			}
			if k.bi < len(k.bTuples) {
				tb := k.bTuples[k.bi]
				k.bi++
				nt := make(Tuple, 0, k.width)
				nt = append(append(nt, k.cur...), tb...)
				return nt, nil
			}
			k.cur = nil
		}
	}
	for {
		if len(k.pending) > 0 {
			tb := k.pending[0]
			k.pending = k.pending[1:]
			nt := make(Tuple, 0, k.width)
			nt = append(nt, k.cur...)
			for _, c := range k.bExtra {
				nt = append(nt, tb[c])
			}
			return nt, nil
		}
		ta, err := o.children[0].Next()
		if err != nil || ta == nil {
			return nil, err
		}
		key, ok := jointKey(ta, k.aCols)
		if !ok {
			continue
		}
		k.pending = k.ht[key]
		k.cur = ta
	}
}

// NewNaturalJoin joins left and right on all shared attribute names
// (the paper's S ⋈ f(S,G) ⋈ h(S,G) reduction joins on tid/vid). The
// right side is hashed at Open; the left side streams. With no shared
// attributes it degenerates to a Cartesian product.
func NewNaturalJoin(left, right Iterator) Iterator {
	return newOp("natural join", &naturalKernel{}, left, right)
}

// ------------------------------------------------------------ distinct

type distinctKernel struct {
	baseKernel
	seen map[string]bool
}

func (k *distinctKernel) resolve(o *op) error {
	s := o.children[0].Schema()
	if s == nil {
		return errSchemaPending
	}
	o.schema = s
	return nil
}

func (k *distinctKernel) open(o *op) error { k.seen = make(map[string]bool); return nil }

func (k *distinctKernel) next(o *op) (Tuple, error) {
	for {
		t, err := o.children[0].Next()
		if err != nil || t == nil {
			return nil, err
		}
		key := ""
		for _, v := range t {
			key += v.Key()
		}
		if !k.seen[key] {
			k.seen[key] = true
			return t, nil
		}
	}
}

// NewDistinct removes duplicate tuples, keeping first occurrences.
func NewDistinct(child Iterator) Iterator {
	return newOp("distinct", &distinctKernel{}, child)
}

// --------------------------------------------------------------- limit

type limitKernel struct {
	baseKernel
	n       int
	emitted int
}

func (k *limitKernel) resolve(o *op) error {
	s := o.children[0].Schema()
	if s == nil {
		return errSchemaPending
	}
	o.schema = s
	return nil
}

func (k *limitKernel) open(o *op) error { k.emitted = 0; return nil }

func (k *limitKernel) next(o *op) (Tuple, error) {
	if k.n >= 0 && k.emitted >= k.n {
		return nil, nil
	}
	t, err := o.children[0].Next()
	if err != nil || t == nil {
		return nil, err
	}
	k.emitted++
	return t, nil
}

// NewLimit caps the stream at n tuples; a negative n means unlimited.
func NewLimit(child Iterator, n int) Iterator {
	return newOp(fmt.Sprintf("limit %d", n), &limitKernel{n: n}, child)
}

// ---------------------------------------------------------------- sort

type sortKernel struct {
	baseKernel
	names []string
	cols  []int
	rows  []Tuple
	i     int
}

func (k *sortKernel) resolve(o *op) error {
	s := o.children[0].Schema()
	if s == nil {
		return errSchemaPending
	}
	cols := make([]int, len(k.names))
	for i, n := range k.names {
		c := s.Col(n)
		if c < 0 {
			return fmt.Errorf("rel: sort: no attribute %q in %s", n, s)
		}
		cols[i] = c
	}
	o.schema = s
	k.cols = cols
	return nil
}

func (k *sortKernel) open(o *op) error {
	rows, err := drain(o.children[0])
	if err != nil {
		return err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range k.cols {
			if cmp := rows[i][c].Compare(rows[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	k.rows = rows
	k.i = 0
	return nil
}

func (k *sortKernel) next(o *op) (Tuple, error) {
	if k.i >= len(k.rows) {
		return nil, nil
	}
	t := k.rows[k.i]
	k.i++
	return t, nil
}

// NewSort is a pipeline breaker sorting by the named attributes
// ascending (stable).
func NewSort(child Iterator, names ...string) Iterator {
	return newOp("sort "+fmt.Sprint(names), &sortKernel{names: names}, child)
}

// ------------------------------------------------------------- reverse

type reverseKernel struct {
	baseKernel
	rows []Tuple
	i    int
}

func (k *reverseKernel) resolve(o *op) error {
	s := o.children[0].Schema()
	if s == nil {
		return errSchemaPending
	}
	o.schema = s
	return nil
}

func (k *reverseKernel) open(o *op) error {
	rows, err := drain(o.children[0])
	if err != nil {
		return err
	}
	for i, j := 0, len(rows)-1; i < j; i, j = i+1, j-1 {
		rows[i], rows[j] = rows[j], rows[i]
	}
	k.rows = rows
	k.i = 0
	return nil
}

func (k *reverseKernel) next(o *op) (Tuple, error) {
	if k.i >= len(k.rows) {
		return nil, nil
	}
	t := k.rows[k.i]
	k.i++
	return t, nil
}

// NewReverse is a pipeline breaker emitting its input in reverse
// order; ORDER BY ... DESC composes it with NewSort.
func NewReverse(child Iterator) Iterator {
	return newOp("reverse", &reverseKernel{}, child)
}

// ----------------------------------------------------------- aggregate

type aggKernel struct {
	baseKernel
	groupBy []string
	specs   []AggSpec
	gCols   []int
	sCols   []int // column per spec, -1 for count(*)
	rows    []Tuple
	i       int
}

func (k *aggKernel) resolve(o *op) error {
	in := o.children[0].Schema()
	if in == nil {
		return errSchemaPending
	}
	k.gCols = make([]int, len(k.groupBy))
	for i, n := range k.groupBy {
		c := in.Col(n)
		if c < 0 {
			return fmt.Errorf("rel: aggregate: no attribute %q in %s", n, in)
		}
		k.gCols[i] = c
	}
	k.sCols = make([]int, len(k.specs))
	for i, sp := range k.specs {
		if sp.Attr == "*" {
			k.sCols[i] = -1
			continue
		}
		c := in.Col(sp.Attr)
		if c < 0 {
			return fmt.Errorf("rel: aggregate: no attribute %q in %s", sp.Attr, in)
		}
		k.sCols[i] = c
	}
	attrs := make([]Attribute, 0, len(k.groupBy)+len(k.specs))
	for i, n := range k.groupBy {
		attrs = append(attrs, Attribute{Name: n, Type: in.Attrs[k.gCols[i]].Type})
	}
	for _, sp := range k.specs {
		kind := KindFloat
		if sp.Func == AggCount {
			kind = KindInt
		}
		attrs = append(attrs, Attribute{Name: sp.As, Type: kind})
	}
	s, err := TrySchema(in.Name+"_agg", "", attrs...)
	if err != nil {
		return err
	}
	o.schema = s
	return nil
}

func (k *aggKernel) open(o *op) error {
	type group struct {
		key    Tuple
		counts []int64
		sums   []float64
		mins   []Value
		maxs   []Value
	}
	newGroup := func(key Tuple) *group {
		g := &group{
			key:    key,
			counts: make([]int64, len(k.specs)),
			sums:   make([]float64, len(k.specs)),
			mins:   make([]Value, len(k.specs)),
			maxs:   make([]Value, len(k.specs)),
		}
		for i := range k.specs {
			g.mins[i] = Null
			g.maxs[i] = Null
		}
		return g
	}
	groups := make(map[string]*group)
	var order []string
	for {
		t, err := o.children[0].Next()
		if err != nil {
			return err
		}
		if t == nil {
			break
		}
		key := ""
		for _, c := range k.gCols {
			key += t[c].Key()
		}
		g, ok := groups[key]
		if !ok {
			gk := make(Tuple, len(k.gCols))
			for i, c := range k.gCols {
				gk[i] = t[c]
			}
			g = newGroup(gk)
			groups[key] = g
			order = append(order, key)
		}
		for i := range k.specs {
			v := I(1)
			if k.sCols[i] >= 0 {
				v = t[k.sCols[i]]
			}
			if v.IsNull() {
				continue
			}
			g.counts[i]++
			g.sums[i] += v.Float()
			if g.mins[i].IsNull() || v.Compare(g.mins[i]) < 0 {
				g.mins[i] = v
			}
			if g.maxs[i].IsNull() || v.Compare(g.maxs[i]) > 0 {
				g.maxs[i] = v
			}
		}
	}
	if len(k.groupBy) == 0 && len(groups) == 0 {
		// A single global group, even over an empty input (SQL COUNT).
		groups[""] = newGroup(nil)
		order = append(order, "")
	}
	k.rows = k.rows[:0]
	for _, key := range order {
		g := groups[key]
		nt := make(Tuple, 0, len(o.schema.Attrs))
		nt = append(nt, g.key...)
		for i, sp := range k.specs {
			switch sp.Func {
			case AggCount:
				nt = append(nt, I(g.counts[i]))
			case AggSum:
				nt = append(nt, F(g.sums[i]))
			case AggAvg:
				if g.counts[i] == 0 {
					nt = append(nt, Null)
				} else {
					nt = append(nt, F(g.sums[i]/float64(g.counts[i])))
				}
			case AggMin:
				nt = append(nt, g.mins[i])
			case AggMax:
				nt = append(nt, g.maxs[i])
			}
		}
		k.rows = append(k.rows, nt)
	}
	k.i = 0
	return nil
}

func (k *aggKernel) next(o *op) (Tuple, error) {
	if k.i >= len(k.rows) {
		return nil, nil
	}
	t := k.rows[k.i]
	k.i++
	return t, nil
}

// NewAggregate is a pipeline breaker grouping by the groupBy attributes
// and computing the given aggregates per group (group order follows
// first occurrence in the input).
func NewAggregate(child Iterator, groupBy []string, specs []AggSpec) Iterator {
	return newOp("aggregate", &aggKernel{groupBy: groupBy, specs: specs}, child)
}

// --------------------------------------------------------------- union

type unionKernel struct {
	baseKernel
	cur int
}

func (k *unionKernel) resolve(o *op) error {
	first := o.children[0].Schema()
	if first == nil {
		return errSchemaPending
	}
	for _, c := range o.children[1:] {
		s := c.Schema()
		if s == nil {
			return errSchemaPending
		}
		if len(s.Attrs) != len(first.Attrs) {
			return errors.New("rel: union: arity mismatch")
		}
	}
	o.schema = first
	return nil
}

func (k *unionKernel) open(o *op) error { k.cur = 0; return nil }

func (k *unionKernel) next(o *op) (Tuple, error) {
	for k.cur < len(o.children) {
		t, err := o.children[k.cur].Next()
		if err != nil {
			return nil, err
		}
		if t != nil {
			return t, nil
		}
		k.cur++
	}
	return nil, nil
}

// NewUnion concatenates its children's streams; every child must have
// the first child's arity, and tuples are reinterpreted under the
// first child's schema.
func NewUnion(children ...Iterator) Iterator {
	if len(children) == 0 {
		return errOp("union", errors.New("rel: union: no inputs"))
	}
	return newOp("union", &unionKernel{}, children...)
}

// ----------------------------------------------------------- transform

type transformKernel struct {
	baseKernel
	bind func(in *Schema) (*Schema, func(Tuple) (Tuple, error), error)
	fn   func(Tuple) (Tuple, error)
}

func (k *transformKernel) resolve(o *op) error {
	in := o.children[0].Schema()
	if in == nil {
		return errSchemaPending
	}
	s, fn, err := k.bind(in)
	if err != nil {
		return err
	}
	o.schema = s
	k.fn = fn
	return nil
}

func (k *transformKernel) next(o *op) (Tuple, error) {
	t, err := o.children[0].Next()
	if err != nil || t == nil {
		return nil, err
	}
	return k.fn(t)
}

// NewTransform is a one-in one-out operator whose output schema and
// row function are late-bound from the input schema; gsql's projection
// with star expansion and column renaming is built on it. bind must be
// side-effect free (it may run at plan time when the input schema is
// already known).
func NewTransform(label string, child Iterator, bind func(in *Schema) (*Schema, func(Tuple) (Tuple, error), error)) Iterator {
	return newOp(label, &transformKernel{bind: bind}, child)
}

// ------------------------------------------------------------ generate

// Generated is what a Generator yields: the output schema, an optional
// note surfaced in EXPLAIN (e.g. "gL hit") and a pull function that
// returns tuples until (nil, nil).
type Generated struct {
	Schema  *Schema
	Note    string
	Workers int // worker count used to generate, surfaced in EXPLAIN when > 0
	Pull    func() (Tuple, error)
}

// Generator consumes fully-materialised inputs and produces a streamed
// output. Semantic joins (enrichment, link) are input-side pipeline
// breakers built on it: HER matching needs whole relations, but their
// results flow on tuple-at-a-time.
type Generator func(ctx context.Context, inputs []*Relation) (Generated, error)

type generateKernel struct {
	baseKernel
	gen  Generator
	pull func() (Tuple, error)
}

func (k *generateKernel) open(o *op) error {
	inputs := make([]*Relation, len(o.children))
	for i, c := range o.children {
		ts, err := drain(c)
		if err != nil {
			return err
		}
		s := c.Schema()
		if s == nil {
			return fmt.Errorf("rel: %s: input %d has no schema", o.stats.Label, i)
		}
		inputs[i] = &Relation{Schema: s, Tuples: ts}
	}
	g, err := k.gen(o.ctx, inputs)
	if err != nil {
		return err
	}
	if g.Schema == nil {
		return fmt.Errorf("rel: %s: generator produced no schema", o.stats.Label)
	}
	o.schema = g.Schema
	if g.Note != "" {
		o.stats.Note = g.Note
	}
	if g.Workers > 0 {
		o.stats.Workers = g.Workers
	}
	k.pull = g.Pull
	return nil
}

func (k *generateKernel) next(o *op) (Tuple, error) { return k.pull() }

// NewGenerate materialises the children at Open, hands them to gen and
// streams the generated output. Its schema is nil until Open.
func NewGenerate(label string, children []Iterator, gen Generator) Iterator {
	return newOp(label, &generateKernel{gen: gen}, children...)
}

// NewApply is NewGenerate for producers that build a whole relation in
// one step: f's result is streamed out, its note annotates the plan.
func NewApply(label string, children []Iterator, f func(ctx context.Context, inputs []*Relation) (*Relation, string, error)) Iterator {
	return NewGenerate(label, children, func(ctx context.Context, inputs []*Relation) (Generated, error) {
		r, note, err := f(ctx, inputs)
		if err != nil {
			return Generated{}, err
		}
		i := 0
		return Generated{Schema: r.Schema, Note: note, Pull: func() (Tuple, error) {
			if i >= len(r.Tuples) {
				return nil, nil
			}
			t := r.Tuples[i]
			i++
			return t, nil
		}}, nil
	})
}
