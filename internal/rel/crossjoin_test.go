package rel

import "testing"

func TestCrossJoinAll(t *testing.T) {
	a := NewRelation(NewSchema("a", "", Attribute{Name: "x"}))
	a.InsertVals(I(1))
	a.InsertVals(I(2))
	b := NewRelation(NewSchema("b", "", Attribute{Name: "y"}))
	b.InsertVals(S("p"))
	c := NewRelation(NewSchema("c", "", Attribute{Name: "z"}))
	c.InsertVals(B(true))
	c.InsertVals(B(false))
	c.InsertVals(Null)

	j := must(CrossJoinAll([]*Relation{a, b, c}, []string{"A", "B", "C"}))
	if j.Len() != 2*1*3 {
		t.Fatalf("size = %d, want 6", j.Len())
	}
	// Flat single-level qualification.
	for _, name := range []string{"A.x", "B.y", "C.z"} {
		if j.Schema.Col(name) < 0 {
			t.Fatalf("missing column %q in %v", name, j.Schema)
		}
	}
	// No double-qualified names.
	for _, attr := range j.Schema.Attrs {
		if n := countDots(attr.Name); n != 1 {
			t.Fatalf("attribute %q has %d dots", attr.Name, n)
		}
	}
	// Row contents: first row is (1, p, true).
	if j.Tuples[0][0].Int() != 1 || j.Tuples[0][1].Str() != "p" || !j.Tuples[0][2].Bool() {
		t.Fatalf("row 0 = %v", j.Tuples[0])
	}
}

func TestCrossJoinAllEmptyRelation(t *testing.T) {
	a := NewRelation(NewSchema("a", "", Attribute{Name: "x"}))
	a.InsertVals(I(1))
	empty := NewRelation(NewSchema("b", "", Attribute{Name: "y"}))
	j := must(CrossJoinAll([]*Relation{a, empty}, []string{"a", "b"}))
	if j.Len() != 0 {
		t.Fatal("cross with empty relation must be empty")
	}
}

func TestCrossJoinAllErrors(t *testing.T) {
	if _, err := CrossJoinAll(nil, nil); err == nil {
		t.Fatal("expected error for empty input")
	}
	a := NewRelation(NewSchema("a", "", Attribute{Name: "x"}))
	if _, err := CrossJoinAll([]*Relation{a}, []string{"a", "b"}); err == nil {
		t.Fatal("expected error for name/relation count mismatch")
	}
}

func countDots(s string) int {
	n := 0
	for _, r := range s {
		if r == '.' {
			n++
		}
	}
	return n
}
