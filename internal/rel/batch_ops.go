// Batch-native kernels: scan, filter, projection, sort, limit and
// aggregation. Scans slice the relation's cached columnar image
// (zero-copy), filters refine the selection vector in place,
// projections re-point column headers — only sort and aggregation
// materialise, exactly like their row counterparts.
package rel

import (
	"fmt"
	"sort"
)

// ----------------------------------------------------------- batch scan

type batchScanKernel struct {
	baseBatchKernel
	r    *Relation
	size int
	cols *relColumns
	i    int
}

func (k *batchScanKernel) resolve(o *batchOp) error { o.schema = k.r.Schema; return nil }

func (k *batchScanKernel) open(o *batchOp) error {
	k.cols = k.r.columns()
	k.i = 0
	return nil
}

func (k *batchScanKernel) next(o *batchOp) (*Batch, error) {
	if k.i >= k.cols.n {
		return nil, nil
	}
	lo := k.i
	hi := lo + k.size
	if hi > k.cols.n {
		hi = k.cols.n
	}
	k.i = hi
	b := &Batch{schema: o.schema, cols: make([]Vector, len(k.cols.cols))}
	for c := range k.cols.cols {
		b.cols[c] = k.cols.cols[c].Slice(lo, hi)
	}
	return b, nil
}

// NewBatchScan streams the rows of r as zero-copy column slices of its
// columnar image, DefaultBatchSize rows per batch.
func NewBatchScan(r *Relation) BatchIterator {
	return NewBatchScanSize(r, 0)
}

// NewBatchScanSize is NewBatchScan with an explicit batch size
// (size <= 0 means DefaultBatchSize). Tests use tiny batches to force
// multi-batch schedules on small relations.
func NewBatchScanSize(r *Relation, size int) BatchIterator {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return newBatchOp("scan "+r.Schema.Name, &batchScanKernel{r: r, size: size})
}

// newMorselBatchSource replays pre-split batches; the batch exchange's
// per-morsel pipelines read from it. Unmetered for the same reason
// morsel scans are: the rows and batches were already counted flowing
// into the exchange.
type morselSourceKernel struct {
	baseBatchKernel
	batches []*Batch
	i       int
}

func (k *morselSourceKernel) next(o *batchOp) (*Batch, error) {
	if k.i >= len(k.batches) {
		return nil, nil
	}
	b := k.batches[k.i]
	k.i++
	return b, nil
}

func newMorselBatchSource(s *Schema, batches []*Batch) BatchIterator {
	o := newBatchOp("scan "+s.Name, &morselSourceKernel{batches: batches})
	o.schema = s
	o.unmetered = true
	return o
}

// --------------------------------------------------------- batch filter

// BatchPred refines a batch's selection vector in place, keeping only
// the rows that satisfy the predicate. Implementations loop over the
// batch's columns directly (see Batch.Refine for the generic form).
type BatchPred func(b *Batch)

type batchFilterKernel struct {
	baseBatchKernel
	bind func(*Schema) (BatchPred, error)
	p    BatchPred
}

func (k *batchFilterKernel) resolve(o *batchOp) error {
	s := o.children[0].Schema()
	if s == nil {
		return errSchemaPending
	}
	p, err := k.bind(s)
	if err != nil {
		return err
	}
	o.schema = s
	k.p = p
	return nil
}

func (k *batchFilterKernel) next(o *batchOp) (*Batch, error) {
	for {
		b, err := o.children[0].NextBatch()
		if err != nil || b == nil {
			return nil, err
		}
		k.p(b)
		if b.Rows() > 0 {
			return b, nil
		}
	}
}

// NewBatchFilter keeps the rows of child satisfying p, refining each
// batch's selection vector in place (no data copied). Fully-filtered
// batches are swallowed, never emitted empty.
func NewBatchFilter(child BatchIterator, p BatchPred) BatchIterator {
	return NewBatchFilterWith("select", child, func(*Schema) (BatchPred, error) { return p, nil })
}

// NewBatchFilterWith is NewBatchFilter with a late-bound predicate,
// mirroring NewSelectWith.
func NewBatchFilterWith(label string, child BatchIterator, bind func(*Schema) (BatchPred, error)) BatchIterator {
	return newBatchOp(label, &batchFilterKernel{bind: bind}, child)
}

// RowPred lifts a row predicate into a BatchPred through a reused
// scratch tuple — the fallback when a predicate cannot be compiled
// into per-column loops.
func RowPred(s *Schema, p Pred) BatchPred {
	scratch := make(Tuple, len(s.Attrs))
	return func(b *Batch) {
		b.Refine(func(row int) bool {
			for c := 0; c < b.NumCols(); c++ {
				scratch[c] = b.Col(c).ValueAt(row)
			}
			return p(scratch)
		})
	}
}

// -------------------------------------------------------- batch project

type batchProjectKernel struct {
	baseBatchKernel
	bind func(in *Schema) (*Schema, []int, error)
	cols []int
}

func (k *batchProjectKernel) resolve(o *batchOp) error {
	in := o.children[0].Schema()
	if in == nil {
		return errSchemaPending
	}
	s, cols, err := k.bind(in)
	if err != nil {
		return err
	}
	for _, c := range cols {
		if c < 0 || c >= len(in.Attrs) {
			return fmt.Errorf("rel: batch project: column %d out of range for %s", c, in)
		}
	}
	o.schema = s
	k.cols = cols
	return nil
}

func (k *batchProjectKernel) next(o *batchOp) (*Batch, error) {
	b, err := o.children[0].NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	return b.Project(o.schema, k.cols), nil
}

// NewBatchProject projects child to the named attributes: a zero-copy
// column pick (duplicates allowed, mirroring NewProject).
func NewBatchProject(child BatchIterator, names ...string) BatchIterator {
	return NewBatchProjectWith("project", child, func(in *Schema) (*Schema, []int, error) {
		cols := make([]int, len(names))
		attrs := make([]Attribute, len(names))
		seen := map[string]bool{}
		for i, n := range names {
			c := in.Col(n)
			if c < 0 {
				return nil, nil, fmt.Errorf("rel: project: no attribute %q in %s", n, in)
			}
			cols[i] = c
			name := in.Attrs[c].Name
			if seen[name] {
				return nil, nil, fmt.Errorf("rel: project: duplicate attribute %q", name)
			}
			seen[name] = true
			attrs[i] = in.Attrs[c]
		}
		key := ""
		if in.Key != "" && seen[in.Key] {
			key = in.Key
		}
		s, err := TrySchema(in.Name, key, attrs...)
		if err != nil {
			return nil, nil, err
		}
		return s, cols, nil
	})
}

// NewBatchProjectWith is the late-bound batch projection: bind maps
// the input schema to the output schema plus the input column index
// per output column. gsql's projection (star expansion, renaming)
// binds through it.
func NewBatchProjectWith(label string, child BatchIterator, bind func(in *Schema) (*Schema, []int, error)) BatchIterator {
	return newBatchOp(label, &batchProjectKernel{bind: bind}, child)
}

// --------------------------------------------------------- batch rename

type batchRenameKernel struct {
	baseBatchKernel
	name string
}

func (k *batchRenameKernel) resolve(o *batchOp) error {
	in := o.children[0].Schema()
	if in == nil {
		return errSchemaPending
	}
	o.schema = in.Rename(k.name)
	return nil
}

func (k *batchRenameKernel) next(o *batchOp) (*Batch, error) {
	b, err := o.children[0].NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	return b.WithSchema(o.schema), nil
}

// NewBatchRename passes child through under a new relation name.
func NewBatchRename(child BatchIterator, name string) BatchIterator {
	return newBatchOp("rename "+name, &batchRenameKernel{name: name}, child)
}

// ----------------------------------------------------------- batch sort

type batchSortKernel struct {
	baseBatchKernel
	names []string
	size  int
	cols  []int
	out   *Batch // gathered + sorted input, emitted in slices
	i     int
}

func (k *batchSortKernel) resolve(o *batchOp) error {
	s := o.children[0].Schema()
	if s == nil {
		return errSchemaPending
	}
	cols := make([]int, len(k.names))
	for i, n := range k.names {
		c := s.Col(n)
		if c < 0 {
			return fmt.Errorf("rel: sort: no attribute %q in %s", n, s)
		}
		cols[i] = c
	}
	o.schema = s
	k.cols = cols
	return nil
}

func (k *batchSortKernel) open(o *batchOp) error {
	batches, err := drainBatches(o.children[0])
	if err != nil {
		return err
	}
	// Gather every live row into one wide batch, then stable-sort a
	// row-index permutation and re-gather in sorted order. Comparison
	// touches only the sort columns.
	var n int
	for _, b := range batches {
		n += b.Rows()
	}
	gathered := NewBatch(o.schema)
	for _, b := range batches {
		gathered = appendBatch(gathered, b)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sortCols := make([]*Vector, len(k.cols))
	for i, c := range k.cols {
		sortCols[i] = gathered.Col(c)
	}
	sort.SliceStable(perm, func(i, j int) bool {
		for _, v := range sortCols {
			if cmp := v.ValueAt(perm[i]).Compare(v.ValueAt(perm[j])); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	out := NewBatch(o.schema)
	for c := 0; c < gathered.NumCols(); c++ {
		src, dst := gathered.Col(c), out.Col(c)
		for _, r := range perm {
			dst.Append(src.ValueAt(r))
		}
	}
	k.out = out
	k.i = 0
	return nil
}

func (k *batchSortKernel) next(o *batchOp) (*Batch, error) {
	n := k.out.Rows()
	if k.i >= n {
		return nil, nil
	}
	lo := k.i
	hi := lo + k.size
	if hi > n {
		hi = n
	}
	k.i = hi
	b := &Batch{schema: o.schema, cols: make([]Vector, k.out.NumCols())}
	for c := range b.cols {
		b.cols[c] = k.out.Col(c).Slice(lo, hi)
	}
	return b, nil
}

// appendBatch appends src's live rows onto dst column-wise. dst must
// be selection-free (it is being built row-by-row).
func appendBatch(dst, src *Batch) *Batch {
	for c := 0; c < src.NumCols(); c++ {
		sv, dv := src.Col(c), dst.Col(c)
		if src.sel == nil {
			for i, n := 0, sv.Len(); i < n; i++ {
				dv.Append(sv.ValueAt(i))
			}
			continue
		}
		for _, i := range src.sel {
			dv.Append(sv.ValueAt(int(i)))
		}
	}
	return dst
}

// NewBatchSort is the batch pipeline breaker sorting by the named
// attributes ascending (stable), re-emitting DefaultBatchSize batches.
func NewBatchSort(child BatchIterator, names ...string) BatchIterator {
	return newBatchOp("sort "+fmt.Sprint(names), &batchSortKernel{names: names, size: DefaultBatchSize}, child)
}

// ---------------------------------------------------------- batch limit

type batchLimitKernel struct {
	baseBatchKernel
	n       int
	emitted int
}

func (k *batchLimitKernel) resolve(o *batchOp) error {
	s := o.children[0].Schema()
	if s == nil {
		return errSchemaPending
	}
	o.schema = s
	return nil
}

func (k *batchLimitKernel) open(o *batchOp) error { k.emitted = 0; return nil }

func (k *batchLimitKernel) next(o *batchOp) (*Batch, error) {
	if k.n >= 0 && k.emitted >= k.n {
		return nil, nil
	}
	b, err := o.children[0].NextBatch()
	if err != nil || b == nil {
		return nil, err
	}
	if k.n >= 0 && k.emitted+b.Rows() > k.n {
		// Trim the batch to the remaining budget via its selection
		// vector — no data moves.
		want := k.n - k.emitted
		if b.sel == nil {
			sel := make([]int32, want)
			for i := range sel {
				sel[i] = int32(i)
			}
			b.sel = sel
		} else {
			b.sel = b.sel[:want]
		}
	}
	k.emitted += b.Rows()
	return b, nil
}

// NewBatchLimit caps the stream at n live rows (negative n means
// unlimited), trimming the final batch through its selection vector.
func NewBatchLimit(child BatchIterator, n int) BatchIterator {
	return newBatchOp(fmt.Sprintf("limit %d", n), &batchLimitKernel{n: n}, child)
}

// ------------------------------------------------------ batch aggregate

type batchAggKernel struct {
	baseBatchKernel
	groupBy []string
	specs   []AggSpec
	size    int
	gCols   []int
	sCols   []int
	out     *Batch
	i       int
}

func (k *batchAggKernel) resolve(o *batchOp) error {
	in := o.children[0].Schema()
	if in == nil {
		return errSchemaPending
	}
	k.gCols = make([]int, len(k.groupBy))
	for i, n := range k.groupBy {
		c := in.Col(n)
		if c < 0 {
			return fmt.Errorf("rel: aggregate: no attribute %q in %s", n, in)
		}
		k.gCols[i] = c
	}
	k.sCols = make([]int, len(k.specs))
	for i, sp := range k.specs {
		if sp.Attr == "*" {
			k.sCols[i] = -1
			continue
		}
		c := in.Col(sp.Attr)
		if c < 0 {
			return fmt.Errorf("rel: aggregate: no attribute %q in %s", sp.Attr, in)
		}
		k.sCols[i] = c
	}
	attrs := make([]Attribute, 0, len(k.groupBy)+len(k.specs))
	for i, n := range k.groupBy {
		attrs = append(attrs, Attribute{Name: n, Type: in.Attrs[k.gCols[i]].Type})
	}
	for _, sp := range k.specs {
		kind := KindFloat
		if sp.Func == AggCount {
			kind = KindInt
		}
		attrs = append(attrs, Attribute{Name: sp.As, Type: kind})
	}
	s, err := TrySchema(in.Name+"_agg", "", attrs...)
	if err != nil {
		return err
	}
	o.schema = s
	return nil
}

// aggState accumulates one group across batches; the accumulator
// layout matches the row aggKernel so results are bit-identical.
type aggState struct {
	key    Tuple
	counts []int64
	sums   []float64
	mins   []Value
	maxs   []Value
}

func (k *batchAggKernel) open(o *batchOp) error {
	newGroup := func(key Tuple) *aggState {
		g := &aggState{
			key:    key,
			counts: make([]int64, len(k.specs)),
			sums:   make([]float64, len(k.specs)),
			mins:   make([]Value, len(k.specs)),
			maxs:   make([]Value, len(k.specs)),
		}
		for i := range k.specs {
			g.mins[i] = Null
			g.maxs[i] = Null
		}
		return g
	}
	groups := make(map[string]*aggState)
	var order []string
	for {
		b, err := o.children[0].NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		gVecs := make([]*Vector, len(k.gCols))
		for i, c := range k.gCols {
			gVecs[i] = b.Col(c)
		}
		sVecs := make([]*Vector, len(k.sCols))
		for i, c := range k.sCols {
			if c >= 0 {
				sVecs[i] = b.Col(c)
			}
		}
		for i, n := 0, b.Rows(); i < n; i++ {
			r := b.RowIdx(i)
			key := ""
			for _, v := range gVecs {
				key += v.ValueAt(r).Key()
			}
			g, ok := groups[key]
			if !ok {
				gk := make(Tuple, len(gVecs))
				for gi, v := range gVecs {
					gk[gi] = v.ValueAt(r)
				}
				g = newGroup(gk)
				groups[key] = g
				order = append(order, key)
			}
			for si := range k.specs {
				v := I(1)
				if sVecs[si] != nil {
					v = sVecs[si].ValueAt(r)
				}
				if v.IsNull() {
					continue
				}
				g.counts[si]++
				g.sums[si] += v.Float()
				if g.mins[si].IsNull() || v.Compare(g.mins[si]) < 0 {
					g.mins[si] = v
				}
				if g.maxs[si].IsNull() || v.Compare(g.maxs[si]) > 0 {
					g.maxs[si] = v
				}
			}
		}
	}
	if len(k.groupBy) == 0 && len(groups) == 0 {
		groups[""] = newGroup(nil)
		order = append(order, "")
	}
	out := NewBatch(o.schema)
	for _, key := range order {
		g := groups[key]
		nt := make(Tuple, 0, len(o.schema.Attrs))
		nt = append(nt, g.key...)
		for i, sp := range k.specs {
			switch sp.Func {
			case AggCount:
				nt = append(nt, I(g.counts[i]))
			case AggSum:
				nt = append(nt, F(g.sums[i]))
			case AggAvg:
				if g.counts[i] == 0 {
					nt = append(nt, Null)
				} else {
					nt = append(nt, F(g.sums[i]/float64(g.counts[i])))
				}
			case AggMin:
				nt = append(nt, g.mins[i])
			case AggMax:
				nt = append(nt, g.maxs[i])
			}
		}
		out.AppendTuple(nt)
	}
	k.out = out
	k.i = 0
	return nil
}

func (k *batchAggKernel) next(o *batchOp) (*Batch, error) {
	n := k.out.Rows()
	if k.i >= n {
		return nil, nil
	}
	lo := k.i
	hi := lo + k.size
	if hi > n {
		hi = n
	}
	k.i = hi
	b := &Batch{schema: o.schema, cols: make([]Vector, k.out.NumCols())}
	for c := range b.cols {
		b.cols[c] = k.out.Col(c).Slice(lo, hi)
	}
	return b, nil
}

// NewBatchAggregate is the batch pipeline breaker grouping by the
// groupBy attributes and computing the given aggregates per group,
// with the row kernel's exact semantics (first-occurrence group order,
// a single global group over empty ungrouped input, SQL null rules).
func NewBatchAggregate(child BatchIterator, groupBy []string, specs []AggSpec) BatchIterator {
	return newBatchOp("aggregate", &batchAggKernel{groupBy: groupBy, specs: specs, size: DefaultBatchSize}, child)
}
