// Package rel implements the relational substrate the paper deploys its
// semantic joins on: schemas, typed tuples, relations and the physical
// operators (selection, projection, hash/natural/nested-loop joins,
// aggregation, sorting, indexes) that the gSQL executor plans over. The
// paper runs atop PostgreSQL; this embedded engine plays the same role —
// §IV reduces every well-behaved semantic join to plain relational joins,
// which this package executes.
package rel

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates value types.
type Kind uint8

const (
	// KindNull is the SQL null. Extraction assigns it when no path pattern
	// matches (§III Algorithm 1).
	KindNull Kind = iota
	// KindString is a UTF-8 string.
	KindString
	// KindInt is a 64-bit integer.
	KindInt
	// KindFloat is a 64-bit float.
	KindFloat
	// KindBool is a boolean.
	KindBool
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Value is a tagged union holding one attribute value.
type Value struct {
	kind Kind
	s    string
	n    int64
	f    float64
	b    bool
}

// Null is the null value.
var Null = Value{kind: KindNull}

// S returns a string value.
func S(s string) Value { return Value{kind: KindString, s: s} }

// I returns an integer value.
func I(n int64) Value { return Value{kind: KindInt, n: n} }

// F returns a float value.
func F(f float64) Value { return Value{kind: KindFloat, f: f} }

// B returns a boolean value.
func B(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is null.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Str returns the string payload ("" if not a string).
func (v Value) Str() string { return v.s }

// Int returns the integer payload (coercing float and bool).
func (v Value) Int() int64 {
	switch v.kind {
	case KindInt:
		return v.n
	case KindFloat:
		return int64(v.f)
	case KindBool:
		if v.b {
			return 1
		}
	}
	return 0
}

// Float returns the numeric payload as float64 (coercing int).
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.n)
	}
	return 0
}

// Bool returns the boolean payload.
func (v Value) Bool() bool { return v.kind == KindBool && v.b }

// String renders v for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindString:
		return v.s
	case KindInt:
		return strconv.FormatInt(v.n, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return "?"
}

// Key returns a canonical string usable as a hash/equality key. Numeric
// values of equal magnitude hash equally regardless of int/float kind.
func (v Value) Key() string {
	switch v.kind {
	case KindNull:
		return "\x00N"
	case KindString:
		return "\x00S" + v.s
	case KindInt:
		return "\x00F" + strconv.FormatFloat(float64(v.n), 'g', -1, 64)
	case KindFloat:
		return "\x00F" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindBool:
		return "\x00B" + strconv.FormatBool(v.b)
	}
	return "\x00?"
}

// HashKey returns v normalised for direct use as a Go map key, and
// false for nulls (which never join). Numeric values of equal
// magnitude collapse to one representation (ints become floats,
// matching Key's float formatting), and NaN gets a canonical non-float
// encoding — a raw NaN key would never equal itself under ==, making
// the map entry unretrievable. Hash joins key their tables on this
// instead of the Key string, skipping the per-row float formatting.
func (v Value) HashKey() (Value, bool) {
	switch v.kind {
	case KindNull:
		return Value{}, false
	case KindString:
		return Value{kind: KindString, s: v.s}, true
	case KindInt:
		return Value{kind: KindFloat, f: float64(v.n)}, true
	case KindFloat:
		if v.f != v.f {
			return Value{kind: KindFloat, s: "\x00NaN"}, true
		}
		if v.f == 0 && math.Signbit(v.f) {
			// -0.0 gets its own canonical encoding: the Key string kept
			// it distinct from +0.0 ("-0" vs "0"), and under == the two
			// would otherwise collapse, changing join results.
			return Value{kind: KindFloat, s: "\x00-0"}, true
		}
		return Value{kind: KindFloat, f: v.f}, true
	case KindBool:
		return Value{kind: KindBool, b: v.b}, true
	}
	return Value{}, false
}

// Equal reports SQL equality: null equals nothing (not even null);
// numerics compare by magnitude across int/float.
func (v Value) Equal(w Value) bool {
	if v.kind == KindNull || w.kind == KindNull {
		return false
	}
	if isNumeric(v.kind) && isNumeric(w.kind) {
		return v.Float() == w.Float()
	}
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindString:
		return v.s == w.s
	case KindBool:
		return v.b == w.b
	}
	return false
}

// Compare orders two values: -1, 0 or +1. Nulls sort first; mixed
// incomparable kinds order by kind. Numerics compare by magnitude.
func (v Value) Compare(w Value) int {
	if v.kind == KindNull || w.kind == KindNull {
		switch {
		case v.kind == w.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if isNumeric(v.kind) && isNumeric(w.kind) {
		a, b := v.Float(), w.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.kind != w.kind {
		if v.kind < w.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindString:
		return strings.Compare(v.s, w.s)
	case KindBool:
		switch {
		case v.b == w.b:
			return 0
		case !v.b:
			return -1
		}
		return 1
	}
	return 0
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// Parse converts a literal string into the most specific Value: int, then
// float, then bool, then string. Empty strings become nulls.
func Parse(s string) Value {
	if s == "" {
		return Null
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return I(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return F(f)
	}
	if b, err := strconv.ParseBool(s); err == nil {
		return B(b)
	}
	return S(s)
}
