// Batch-at-a-time execution: a Batch is a horizontal slice of a
// relation stored column-wise (one Vector per attribute) plus an
// optional selection vector. Filters refine the selection vector in
// place instead of copying rows, scans hand out zero-copy column
// slices of a relation's cached columnar image, and projections pick
// column headers without touching data — the DataFusion/DuckDB
// vectorized execution model scaled down to this engine.
package rel

import "sync"

// DefaultBatchSize is the row count per batch when an operator is
// built without an explicit size: large enough that per-batch overhead
// amortises away, small enough that a batch's columns stay cache
// resident.
const DefaultBatchSize = 1024

// Batch is a column-wise chunk of rows. cols[i] holds the values of
// schema attribute i for every physical row; sel, when non-nil, lists
// the physical indexes of the rows still alive (in order). Operators
// downstream of a filter must iterate via Rows/RowIdx, never assume
// sel is nil.
type Batch struct {
	schema *Schema
	cols   []Vector
	sel    []int32
}

// NewBatch returns an empty batch of schema s.
func NewBatch(s *Schema) *Batch {
	return &Batch{schema: s, cols: make([]Vector, len(s.Attrs))}
}

// Schema returns the batch's schema.
func (b *Batch) Schema() *Schema { return b.schema }

// Col returns column c. The vector is shared — treat it as read-only.
func (b *Batch) Col(c int) *Vector { return &b.cols[c] }

// NumCols returns the column count.
func (b *Batch) NumCols() int { return len(b.cols) }

// physLen returns the physical row count (before selection).
func (b *Batch) physLen() int {
	if len(b.cols) == 0 {
		return 0
	}
	return b.cols[0].Len()
}

// Rows returns the live row count.
func (b *Batch) Rows() int {
	if b.sel != nil {
		return len(b.sel)
	}
	return b.physLen()
}

// Sel returns the selection vector (nil when every physical row is
// live).
func (b *Batch) Sel() []int32 { return b.sel }

// RowIdx maps live row i to its physical index.
func (b *Batch) RowIdx(i int) int {
	if b.sel != nil {
		return int(b.sel[i])
	}
	return i
}

// AppendTuple appends t as a new physical row. Appending to a batch
// that carries a selection vector would desynchronise sel, so it is
// only legal on batches built row-by-row (sel == nil).
func (b *Batch) AppendTuple(t Tuple) {
	for c := range b.cols {
		b.cols[c].Append(t[c])
	}
}

// TupleAt materialises live row i as a freshly-allocated Tuple.
func (b *Batch) TupleAt(i int) Tuple {
	r := b.RowIdx(i)
	t := make(Tuple, len(b.cols))
	for c := range b.cols {
		t[c] = b.cols[c].ValueAt(r)
	}
	return t
}

// AppendTuplesTo appends every live row to ts as freshly-allocated
// tuples and returns the extended slice.
func (b *Batch) AppendTuplesTo(ts []Tuple) []Tuple {
	for i, n := 0, b.Rows(); i < n; i++ {
		ts = append(ts, b.TupleAt(i))
	}
	return ts
}

// Refine keeps only the live rows whose physical index satisfies keep,
// refining the selection vector in place — no column data moves.
func (b *Batch) Refine(keep func(row int) bool) {
	if b.sel == nil {
		n := b.physLen()
		sel := make([]int32, 0, n)
		for i := 0; i < n; i++ {
			if keep(i) {
				sel = append(sel, int32(i))
			}
		}
		b.sel = sel
		return
	}
	out := b.sel[:0]
	for _, i := range b.sel {
		if keep(int(i)) {
			out = append(out, i)
		}
	}
	b.sel = out
}

// Project returns a batch holding only the columns cols (in that
// order) under schema s, sharing column data and the selection vector
// with b — projection is a header operation.
func (b *Batch) Project(s *Schema, cols []int) *Batch {
	out := &Batch{schema: s, cols: make([]Vector, len(cols)), sel: b.sel}
	for i, c := range cols {
		out.cols[i] = b.cols[c]
	}
	return out
}

// WithSchema returns a batch sharing b's data under a renamed schema.
func (b *Batch) WithSchema(s *Schema) *Batch {
	return &Batch{schema: s, cols: b.cols, sel: b.sel}
}

// ------------------------------------------------- columnar relations

// relColumns is a relation's cached columnar image: every attribute
// transposed into a Vector. It is a snapshot — valid only while the
// relation's Tuples slice is unchanged.
type relColumns struct {
	n    int
	base *Tuple // &Tuples[0] at build time (nil when empty)
	cols []Vector
}

func (c *relColumns) valid(r *Relation) bool {
	if c.n != len(r.Tuples) {
		return false
	}
	return c.n == 0 || &r.Tuples[0] == c.base
}

// colCacheMu guards every relation's colCache pointer. The critical
// sections are pointer reads/writes and a cheap validity check; the
// transposition itself runs outside the lock (a lost race rebuilds an
// identical image, which is harmless).
var colCacheMu sync.Mutex

func buildColumns(r *Relation) *relColumns {
	c := &relColumns{n: len(r.Tuples), cols: make([]Vector, len(r.Schema.Attrs))}
	if c.n > 0 {
		c.base = &r.Tuples[0]
	}
	for ci := range c.cols {
		v := &c.cols[ci]
		for _, t := range r.Tuples {
			v.Append(t[ci])
		}
	}
	return c
}

// columns returns the relation's columnar image, transposing and
// caching it on first use. The cache self-invalidates when Tuples
// changes (appends change the length; wholesale replacement changes
// the backing array), relying on the ownership rule that individual
// rows are immutable once inserted.
func (r *Relation) columns() *relColumns {
	colCacheMu.Lock()
	c := r.colCache
	if c != nil && c.valid(r) {
		colCacheMu.Unlock()
		return c
	}
	colCacheMu.Unlock()
	c = buildColumns(r)
	colCacheMu.Lock()
	r.colCache = c
	colCacheMu.Unlock()
	return c
}
