package rel

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// numberedRel builds a relation k(k int, v string, f float) with n rows.
func numberedRel(n int) *Relation {
	s := NewSchema("t", "k",
		Attribute{Name: "k", Type: KindInt},
		Attribute{Name: "v", Type: KindString},
		Attribute{Name: "f", Type: KindFloat},
	)
	r := NewRelation(s)
	for i := 0; i < n; i++ {
		r.InsertVals(I(int64(i)), S(fmt.Sprintf("v%d", i)), F(float64(i)/2))
	}
	return r
}

func mustMaterialize(t *testing.T, it Iterator) *Relation {
	t.Helper()
	r, err := Materialize(context.Background(), it)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func mustMaterializeBatches(t *testing.T, it BatchIterator) *Relation {
	t.Helper()
	r, err := MaterializeBatches(context.Background(), it)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func sameRelation(t *testing.T, got, want *Relation) {
	t.Helper()
	if gs, ws := got.Schema.String(), want.Schema.String(); gs != ws {
		t.Fatalf("schema = %s, want %s", gs, ws)
	}
	if got.Len() != want.Len() {
		t.Fatalf("rows = %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Tuples {
		for c := range want.Tuples[i] {
			g, w := got.Tuples[i][c], want.Tuples[i][c]
			if g.Key() != w.Key() {
				t.Fatalf("row %d col %d = %v, want %v", i, c, g, w)
			}
		}
	}
}

func TestVectorRoundTrip(t *testing.T) {
	vals := []Value{I(1), S("x"), Null, F(2.5), B(true), I(-7), Null, S("")}
	var v Vector
	for _, val := range vals {
		v.Append(val)
	}
	if v.Len() != len(vals) {
		t.Fatalf("len = %d", v.Len())
	}
	for i, want := range vals {
		got := v.ValueAt(i)
		if got.Kind() != want.Kind() || got.Key() != want.Key() {
			t.Fatalf("row %d = %v (%v), want %v (%v)", i, got, got.Kind(), want, want.Kind())
		}
	}
	// Zero-copy slices see the same values under shifted indexes.
	sl := v.Slice(2, 6)
	if sl.Len() != 4 {
		t.Fatalf("slice len = %d", sl.Len())
	}
	for i := 0; i < 4; i++ {
		if sl.ValueAt(i).Key() != vals[2+i].Key() {
			t.Fatalf("slice row %d = %v, want %v", i, sl.ValueAt(i), vals[2+i])
		}
	}
}

func TestBatchTupleRoundTrip(t *testing.T) {
	r := numberedRel(10)
	b := NewBatch(r.Schema)
	for _, tup := range r.Tuples {
		b.AppendTuple(tup)
	}
	if b.Rows() != 10 {
		t.Fatalf("rows = %d", b.Rows())
	}
	for i, want := range r.Tuples {
		got := b.TupleAt(i)
		for c := range want {
			if got[c].Key() != want[c].Key() {
				t.Fatalf("row %d col %d mismatch", i, c)
			}
		}
	}
}

func TestBatchScanMatchesScan(t *testing.T) {
	for _, n := range []int{0, 1, 5, DefaultBatchSize, DefaultBatchSize + 1, 3000} {
		r := numberedRel(n)
		got := mustMaterializeBatches(t, NewBatchScan(r))
		sameRelation(t, got, r)
	}
}

func TestBatchScanBatchCounts(t *testing.T) {
	r := numberedRel(10)
	it := NewBatchScanSize(r, 3)
	out := mustMaterializeBatches(t, it)
	if out.Len() != 10 {
		t.Fatalf("rows = %d", out.Len())
	}
	st := it.Stats()
	if st.Batches != 4 {
		t.Fatalf("batches = %d, want 4", st.Batches)
	}
	if st.RowsOut != 10 {
		t.Fatalf("rows out = %d, want 10", st.RowsOut)
	}
}

func TestBatchFilterRefinesSelection(t *testing.T) {
	r := numberedRel(100)
	pred := func(b *Batch) {
		kv := b.Col(0)
		b.Refine(func(row int) bool {
			return kv.KindAt(row) == KindInt && kv.Ints()[row]%3 == 0
		})
	}
	got := mustMaterializeBatches(t, NewBatchFilter(NewBatchScanSize(r, 7), pred))
	want := mustMaterialize(t, NewSelect(NewScan(r), func(t Tuple) bool { return t[0].Int()%3 == 0 }))
	sameRelation(t, got, want)
}

func TestBatchFilterStacksOnSelection(t *testing.T) {
	// Two filters in a row: the second must refine the first's
	// selection vector, not reset it.
	r := numberedRel(50)
	even := func(b *Batch) {
		kv := b.Col(0)
		b.Refine(func(row int) bool { return kv.Ints()[row]%2 == 0 })
	}
	big := func(b *Batch) {
		kv := b.Col(0)
		b.Refine(func(row int) bool { return kv.Ints()[row] >= 20 })
	}
	got := mustMaterializeBatches(t, NewBatchFilter(NewBatchFilter(NewBatchScan(r), even), big))
	want := mustMaterialize(t, NewSelect(NewScan(r), func(t Tuple) bool {
		return t[0].Int()%2 == 0 && t[0].Int() >= 20
	}))
	sameRelation(t, got, want)
}

func TestBatchProjectMatchesProject(t *testing.T) {
	r := numberedRel(30)
	got := mustMaterializeBatches(t, NewBatchProject(NewBatchScanSize(r, 4), "v", "k"))
	want := mustMaterialize(t, NewProject(NewScan(r), "v", "k"))
	sameRelation(t, got, want)
}

func TestBatchRename(t *testing.T) {
	r := numberedRel(5)
	it := NewBatchRename(NewBatchScan(r), "renamed")
	out := mustMaterializeBatches(t, it)
	if out.Schema.Name != "renamed" {
		t.Fatalf("name = %q", out.Schema.Name)
	}
	if out.Len() != 5 {
		t.Fatalf("rows = %d", out.Len())
	}
}

func TestBatchSortMatchesSort(t *testing.T) {
	r := NewRelation(NewSchema("t", "", Attribute{Name: "a", Type: KindInt}, Attribute{Name: "b", Type: KindString}))
	for i := 0; i < 97; i++ {
		r.InsertVals(I(int64((i*37)%10)), S(fmt.Sprintf("s%02d", i)))
	}
	got := mustMaterializeBatches(t, NewBatchSort(NewBatchScanSize(r, 10), "a"))
	want := mustMaterialize(t, NewSort(NewScan(r), "a"))
	sameRelation(t, got, want)
}

func TestBatchLimitTrimsSelection(t *testing.T) {
	r := numberedRel(100)
	for _, lim := range []int{0, 1, 7, 99, 100, 150, -1} {
		got := mustMaterializeBatches(t, NewBatchLimit(NewBatchScanSize(r, 8), lim))
		want := mustMaterialize(t, NewLimit(NewScan(r), lim))
		sameRelation(t, got, want)
	}
	// Limit downstream of a filter trims an existing selection vector.
	pred := func(b *Batch) {
		kv := b.Col(0)
		b.Refine(func(row int) bool { return kv.Ints()[row]%2 == 0 })
	}
	got := mustMaterializeBatches(t, NewBatchLimit(NewBatchFilter(NewBatchScanSize(r, 8), pred), 11))
	want := mustMaterialize(t, NewLimit(NewSelect(NewScan(r), func(t Tuple) bool { return t[0].Int()%2 == 0 }), 11))
	sameRelation(t, got, want)
}

func TestBatchAggregateMatchesAggregate(t *testing.T) {
	r := NewRelation(NewSchema("t", "",
		Attribute{Name: "g", Type: KindString},
		Attribute{Name: "x", Type: KindInt},
	))
	for i := 0; i < 61; i++ {
		g := S(fmt.Sprintf("g%d", i%4))
		x := I(int64(i))
		if i%13 == 0 {
			x = Null // aggregates skip nulls
		}
		r.InsertVals(g, x)
	}
	specs := []AggSpec{
		{Func: AggCount, Attr: "*", As: "n"},
		{Func: AggSum, Attr: "x", As: "sx"},
		{Func: AggAvg, Attr: "x", As: "ax"},
		{Func: AggMin, Attr: "x", As: "mn"},
		{Func: AggMax, Attr: "x", As: "mx"},
	}
	got := mustMaterializeBatches(t, NewBatchAggregate(NewBatchScanSize(r, 9), []string{"g"}, specs))
	want := mustMaterialize(t, NewAggregate(NewScan(r), []string{"g"}, specs))
	sameRelation(t, got, want)

	// Global group over empty input (SQL COUNT semantics).
	empty := NewRelation(r.Schema)
	got = mustMaterializeBatches(t, NewBatchAggregate(NewBatchScan(empty), nil, specs[:1]))
	want = mustMaterialize(t, NewAggregate(NewScan(empty), nil, specs[:1]))
	sameRelation(t, got, want)
}

func joinInputs(n, m int) (*Relation, *Relation) {
	l := NewRelation(NewSchema("l", "", Attribute{Name: "k", Type: KindInt}, Attribute{Name: "a", Type: KindString}))
	for i := 0; i < n; i++ {
		k := I(int64(i % 7))
		if i%11 == 0 {
			k = Null
		}
		l.InsertVals(k, S(fmt.Sprintf("a%d", i)))
	}
	r := NewRelation(NewSchema("r", "", Attribute{Name: "k", Type: KindInt}, Attribute{Name: "b", Type: KindString}))
	for i := 0; i < m; i++ {
		k := I(int64(i % 9))
		if i%5 == 0 {
			k = F(float64(i % 9)) // int/float keys of equal magnitude must join
		}
		r.InsertVals(k, S(fmt.Sprintf("b%d", i)))
	}
	return l, r
}

func TestBatchHashJoinMatchesHashJoin(t *testing.T) {
	l, r := joinInputs(40, 25)
	for _, buildLeft := range []bool{false, true} {
		got := mustMaterializeBatches(t, NewBatchHashJoin(NewBatchScanSize(l, 6), NewBatchScanSize(r, 6), "k", "k", buildLeft))
		want := mustMaterialize(t, NewHashJoin(NewScan(l), NewScan(r), "k", "k", buildLeft))
		sameRelation(t, got, want)
	}
}

func TestBatchNaturalJoinRelMatchesNaturalJoin(t *testing.T) {
	l, r := joinInputs(40, 25)
	got := mustMaterializeBatches(t, NewBatchNaturalJoinRel(NewBatchScanSize(l, 6), r))
	want := mustMaterialize(t, NewNaturalJoin(NewScan(l), NewScan(r)))
	sameRelation(t, got, want)

	// Multi-attribute shared case.
	l2 := NewRelation(NewSchema("l", "", Attribute{Name: "x", Type: KindInt}, Attribute{Name: "y", Type: KindInt}, Attribute{Name: "a", Type: KindString}))
	r2 := NewRelation(NewSchema("r", "", Attribute{Name: "x", Type: KindInt}, Attribute{Name: "y", Type: KindInt}, Attribute{Name: "b", Type: KindString}))
	for i := 0; i < 30; i++ {
		l2.InsertVals(I(int64(i%3)), I(int64(i%4)), S(fmt.Sprintf("a%d", i)))
		r2.InsertVals(I(int64(i%4)), I(int64(i%3)), S(fmt.Sprintf("b%d", i)))
	}
	got = mustMaterializeBatches(t, NewBatchNaturalJoinRel(NewBatchScanSize(l2, 7), r2))
	want = mustMaterialize(t, NewNaturalJoin(NewScan(l2), NewScan(r2)))
	sameRelation(t, got, want)

	// No shared attributes: Cartesian product.
	l3 := NewRelation(NewSchema("p", "", Attribute{Name: "a", Type: KindInt}))
	r3 := NewRelation(NewSchema("q", "", Attribute{Name: "b", Type: KindInt}))
	for i := 0; i < 5; i++ {
		l3.InsertVals(I(int64(i)))
		r3.InsertVals(I(int64(10 + i)))
	}
	got = mustMaterializeBatches(t, NewBatchNaturalJoinRel(NewBatchScanSize(l3, 2), r3))
	want = mustMaterialize(t, NewNaturalJoin(NewScan(l3), NewScan(r3)))
	sameRelation(t, got, want)
}

func TestBatcherUnbatcherRoundTrip(t *testing.T) {
	r := numberedRel(500)
	// Row -> batch -> row keeps values, nulls and order.
	got := mustMaterialize(t, NewUnbatcher(NewBatcher(NewScan(r), 64)))
	sameRelation(t, got, r)
}

func TestToBatchesUnwrapsScans(t *testing.T) {
	r := numberedRel(10)
	if _, ok := ToBatches(NewScan(r), 0).(*batchOp); !ok {
		t.Fatal("ToBatches(scan) did not produce a batch op")
	}
	bi := ToBatches(NewScan(r), 0)
	if got := bi.Stats().Label; !strings.HasPrefix(got, "scan ") {
		t.Fatalf("label = %q, want a scan (zero-copy unwrap)", got)
	}
	bi2 := ToBatches(NewRename(NewScan(r), "x"), 0)
	if got := bi2.Stats().Label; got != "rename x" {
		t.Fatalf("label = %q, want rename over batch scan", got)
	}
	// Non-scan inputs wrap with a Batcher.
	bi3 := ToBatches(NewSelect(NewScan(r), func(Tuple) bool { return true }), 0)
	if got := bi3.Stats().Label; got != "batch" {
		t.Fatalf("label = %q, want batch", got)
	}
}

func TestBatchExchangeMatchesSerial(t *testing.T) {
	r := numberedRel(3000)
	build := func(in BatchIterator) BatchIterator {
		pred := func(b *Batch) {
			kv := b.Col(0)
			b.Refine(func(row int) bool { return kv.Ints()[row]%3 != 0 })
		}
		return NewBatchProject(NewBatchFilter(in, pred), "k", "v")
	}
	serial := mustMaterializeBatches(t, build(NewBatchScanSize(r, 128)))
	for _, p := range []int{1, 2, 4} {
		it := NewBatchExchange(NewBatchScanSize(r, 128), p, build)
		got := mustMaterializeBatches(t, it)
		sameRelation(t, got, serial)
	}
}

func TestBatchExchangeEmptyInput(t *testing.T) {
	r := numberedRel(0)
	build := func(in BatchIterator) BatchIterator { return NewBatchProject(in, "k") }
	it := NewBatchExchange(NewBatchScan(r), 4, build)
	got := mustMaterializeBatches(t, it)
	if got.Len() != 0 {
		t.Fatalf("rows = %d", got.Len())
	}
	if got.Schema.AttrNames()[0] != "k" {
		t.Fatalf("schema = %s", got.Schema)
	}
}

func TestBatchExchangeCancellation(t *testing.T) {
	r := numberedRel(5000)
	ctx, cancel := context.WithCancel(context.Background())
	build := func(in BatchIterator) BatchIterator { return NewBatchProject(in, "k") }
	it := NewBatchExchange(NewBatchScanSize(r, 16), 4, build)
	if err := it.Open(ctx); err != nil {
		it.Close()
		t.Fatal(err)
	}
	cancel()
	for {
		b, err := it.NextBatch()
		if err != nil {
			break // cancellation surfaced
		}
		if b == nil {
			break // drained before the cancel landed; fine either way
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestBatchStatsReportBatchCounts(t *testing.T) {
	r := numberedRel(300)
	pred := func(b *Batch) {
		kv := b.Col(0)
		b.Refine(func(row int) bool { return kv.Ints()[row] < 150 })
	}
	it := NewBatchFilter(NewBatchScanSize(r, 100), pred)
	out := mustMaterializeBatches(t, it)
	if out.Len() != 150 {
		t.Fatalf("rows = %d", out.Len())
	}
	st := CollectStats(NewUnbatcher(it))
	var found bool
	for _, l := range st.Lines {
		if l.Label == "select" {
			found = true
			if l.Batches != 2 {
				t.Fatalf("select batches = %d, want 2 (the third is fully filtered)", l.Batches)
			}
			if l.Rows != 150 {
				t.Fatalf("select rows = %d", l.Rows)
			}
		}
	}
	if !found {
		t.Fatal("no select line in collected stats")
	}
}

func TestPlanLineBatchesRoundTrip(t *testing.T) {
	l := PlanLine{Depth: 2, Label: "select", Note: "x [y]", Rows: 500, Batches: 4, Workers: 3}
	s := l.String()
	if !strings.Contains(s, "batches=4 rows/batch=125") {
		t.Fatalf("rendered %q", s)
	}
	got, ok := ParsePlanLine(s)
	if !ok {
		t.Fatalf("unparseable: %q", s)
	}
	if got.Batches != 4 || got.Rows != 500 || got.Workers != 3 || got.Note != "x [y]" || got.Depth != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	// Lines without batch annotations still parse.
	plain := PlanLine{Label: "scan t", Rows: 10}
	got, ok = ParsePlanLine(plain.String())
	if !ok || got.Batches != 0 {
		t.Fatalf("plain round trip = %+v ok=%v", got, ok)
	}
}

func TestColumnarCacheInvalidation(t *testing.T) {
	r := numberedRel(10)
	c1 := r.columns()
	if c2 := r.columns(); c2 != c1 {
		t.Fatal("cache not reused")
	}
	r.InsertVals(I(99), S("new"), F(1))
	c3 := r.columns()
	if c3 == c1 {
		t.Fatal("cache not invalidated by Insert")
	}
	if c3.n != 11 {
		t.Fatalf("cache rows = %d", c3.n)
	}
	got := mustMaterializeBatches(t, NewBatchScan(r))
	sameRelation(t, got, r)
}

func TestBatchOpenFailureClosesTree(t *testing.T) {
	// A filter whose bind fails must not leave its child open.
	r := numberedRel(10)
	it := NewBatchFilterWith("select", NewBatchScan(r), func(*Schema) (BatchPred, error) {
		return nil, fmt.Errorf("boom")
	})
	if err := it.Open(context.Background()); err == nil {
		it.Close()
		t.Fatal("expected bind error")
	}
	it.Close() // double close after failed open must be safe
}
