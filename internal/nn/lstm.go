package nn

import (
	"math"
	"sort"

	"semjoin/internal/mat"
)

// TokenProb pairs a token with its predicted next-token probability.
type TokenProb struct {
	Token string
	Prob  float64
}

// SequenceModel is the contract RExt needs from Mρ (§III-A): score which
// label plausibly follows a prefix, and embed a whole label sequence.
// Both the LSTM and the Transformer baseline implement it.
type SequenceModel interface {
	// Start returns a fresh decoding state positioned after BOS.
	Start() State
	// EmbedSequence returns the model's representation of the token
	// sequence (the network output at the last step, per §III-A step 2).
	EmbedSequence(tokens []string) mat.Vector
	// EmbedDim returns the dimensionality of EmbedSequence results.
	EmbedDim() int
	// Vocab returns the model's vocabulary.
	Vocab() *Vocab
}

// State is an incremental decoding state. Path selection clones states to
// branch over alternative edges without re-running the prefix.
type State interface {
	// Feed advances the state by one token.
	Feed(token string)
	// Probs returns the next-token distribution (indexed by vocab id).
	// The returned vector is owned by the caller.
	Probs() mat.Vector
	// Hidden returns the current sequence representation. The returned
	// vector is owned by the caller.
	Hidden() mat.Vector
	// Clone returns an independent copy of the state.
	Clone() State
}

// LSTMConfig parameterises NewLSTM. Zero fields take defaults.
type LSTMConfig struct {
	EmbedDim  int     // token embedding size (default 32)
	HiddenDim int     // LSTM hidden size (default 64; 50-wide ≈ RExtShortSeq)
	LR        float64 // Adam learning rate (default 0.003)
	Clip      float64 // gradient clip (default 5)
	Seed      uint64  // init seed (default 1)
}

func (c LSTMConfig) withDefaults() LSTMConfig {
	if c.EmbedDim == 0 {
		c.EmbedDim = 32
	}
	if c.HiddenDim == 0 {
		c.HiddenDim = 64
	}
	if c.LR == 0 {
		c.LR = 0.003
	}
	if c.Clip == 0 {
		c.Clip = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LSTM is a single-layer LSTM language model with a softmax output layer,
// trained with the perplexity (cross-entropy) loss of [16] on random-walk
// label sentences.
type LSTM struct {
	vocab *Vocab
	cfg   LSTMConfig

	emb *mat.Matrix // V×d token embeddings
	wx  *mat.Matrix // 4h×d input weights (gate order: i, f, g, o)
	wh  *mat.Matrix // 4h×h recurrent weights
	b   mat.Vector  // 4h gate biases
	wo  *mat.Matrix // V×h output projection
	bo  mat.Vector  // V output bias

	// gradient buffers (same shapes)
	gEmb, gWx, gWh, gWo *mat.Matrix
	gB, gBo             mat.Vector

	optEmb, optWx, optWh, optWo, optB, optBo *Adam
}

// NewLSTM builds an untrained model over vocab.
func NewLSTM(vocab *Vocab, cfg LSTMConfig) *LSTM {
	cfg = cfg.withDefaults()
	V, d, h := vocab.Size(), cfg.EmbedDim, cfg.HiddenDim
	m := &LSTM{
		vocab: vocab, cfg: cfg,
		emb: mat.NewMatrix(V, d),
		wx:  mat.NewMatrix(4*h, d),
		wh:  mat.NewMatrix(4*h, h),
		b:   mat.NewVector(4 * h),
		wo:  mat.NewMatrix(V, h),
		bo:  mat.NewVector(V),

		gEmb: mat.NewMatrix(V, d),
		gWx:  mat.NewMatrix(4*h, d),
		gWh:  mat.NewMatrix(4*h, h),
		gB:   mat.NewVector(4 * h),
		gWo:  mat.NewMatrix(V, h),
		gBo:  mat.NewVector(V),
	}
	rng := mat.NewRNG(cfg.Seed)
	initScale := func(mx *mat.Matrix, fanIn int) {
		a := math.Sqrt(1.0 / float64(fanIn))
		rng.FillUniform(mat.Vector(mx.Data), a)
	}
	initScale(m.emb, d)
	initScale(m.wx, d)
	initScale(m.wh, h)
	initScale(m.wo, h)
	// Forget-gate bias starts at 1 (standard trick for gradient flow).
	for i := h; i < 2*h; i++ {
		m.b[i] = 1
	}
	m.optEmb = NewAdam(len(m.emb.Data), cfg.LR)
	m.optWx = NewAdam(len(m.wx.Data), cfg.LR)
	m.optWh = NewAdam(len(m.wh.Data), cfg.LR)
	m.optWo = NewAdam(len(m.wo.Data), cfg.LR)
	m.optB = NewAdam(len(m.b), cfg.LR)
	m.optBo = NewAdam(len(m.bo), cfg.LR)
	return m
}

// Vocab returns the model vocabulary.
func (m *LSTM) Vocab() *Vocab { return m.vocab }

// EmbedDim returns the hidden size (the dimensionality of sequence
// embeddings).
func (m *LSTM) EmbedDim() int { return m.cfg.HiddenDim }

// step holds the forward caches of one timestep for BPTT.
type step struct {
	id           int        // input token id
	i, f, g, o   mat.Vector // post-activation gates
	c, tanhC, h  mat.Vector
	hPrev, cPrev mat.Vector
	probs        mat.Vector // softmax output
}

// forwardStep advances (hPrev, cPrev) by token id, returning the caches.
func (m *LSTM) forwardStep(id int, hPrev, cPrev mat.Vector, withOutput bool) step {
	h := m.cfg.HiddenDim
	x := m.emb.Row(id)
	z := mat.NewVector(4 * h)
	m.wx.MulVec(z, x)
	tmp := mat.NewVector(4 * h)
	m.wh.MulVec(tmp, hPrev)
	z.Add(tmp)
	z.Add(m.b)
	st := step{
		id: id, hPrev: hPrev, cPrev: cPrev,
		i: mat.NewVector(h), f: mat.NewVector(h), g: mat.NewVector(h), o: mat.NewVector(h),
		c: mat.NewVector(h), tanhC: mat.NewVector(h), h: mat.NewVector(h),
	}
	for j := 0; j < h; j++ {
		st.i[j] = mat.Sigmoid(z[j])
		st.f[j] = mat.Sigmoid(z[h+j])
		st.g[j] = mat.Tanh(z[2*h+j])
		st.o[j] = mat.Sigmoid(z[3*h+j])
		st.c[j] = st.f[j]*cPrev[j] + st.i[j]*st.g[j]
		st.tanhC[j] = mat.Tanh(st.c[j])
		st.h[j] = st.o[j] * st.tanhC[j]
	}
	if withOutput {
		logits := mat.NewVector(m.vocab.Size())
		m.wo.MulVec(logits, st.h)
		logits.Add(m.bo)
		st.probs = mat.Softmax(logits, logits)
	}
	return st
}

// trainSentence runs forward + BPTT over one encoded sentence and applies
// one Adam step. It returns the summed negative log-likelihood and the
// number of predicted tokens.
func (m *LSTM) trainSentence(ids []int) (nll float64, n int) {
	nll, n = m.accumulateGrads(ids)
	if n == 0 {
		return nll, n
	}
	c := m.cfg.Clip
	for _, g := range []*mat.Matrix{m.gEmb, m.gWx, m.gWh, m.gWo} {
		g.Clip(c)
	}
	m.gB.Clip(c)
	m.gBo.Clip(c)
	m.optEmb.Step(m.emb.Data, m.gEmb.Data)
	m.optWx.Step(m.wx.Data, m.gWx.Data)
	m.optWh.Step(m.wh.Data, m.gWh.Data)
	m.optWo.Step(m.wo.Data, m.gWo.Data)
	m.optB.Step(m.b, m.gB)
	m.optBo.Step(m.bo, m.gBo)
	m.zeroGrads()
	return nll, n
}

func (m *LSTM) zeroGrads() {
	m.gEmb.Zero()
	m.gWx.Zero()
	m.gWh.Zero()
	m.gWo.Zero()
	m.gB.Zero()
	m.gBo.Zero()
}

// accumulateGrads runs the forward pass and full BPTT for one sentence,
// accumulating into the gradient buffers without stepping the optimiser.
func (m *LSTM) accumulateGrads(ids []int) (nll float64, n int) {
	if len(ids) < 2 {
		return 0, 0
	}
	h := m.cfg.HiddenDim
	steps := make([]step, 0, len(ids)-1)
	hv, cv := mat.NewVector(h), mat.NewVector(h)
	for t := 0; t+1 < len(ids); t++ {
		st := m.forwardStep(ids[t], hv, cv, true)
		target := ids[t+1]
		p := st.probs[target]
		if p < 1e-12 {
			p = 1e-12
		}
		nll += -math.Log(p)
		n++
		steps = append(steps, st)
		hv, cv = st.h, st.c
	}

	// Backward.
	dhNext := mat.NewVector(h)
	dcNext := mat.NewVector(h)
	dz := mat.NewVector(4 * h)
	dx := mat.NewVector(m.cfg.EmbedDim)
	for t := len(steps) - 1; t >= 0; t-- {
		st := &steps[t]
		target := ids[t+1]
		// Output layer: dlogits = probs - onehot(target).
		dlogits := st.probs // reuse; forward caches not needed afterwards
		dlogits[target] -= 1
		m.gWo.AddOuter(1, dlogits, st.h)
		m.gBo.Add(dlogits)
		dh := mat.NewVector(h)
		m.wo.MulVecT(dh, dlogits)
		dh.Add(dhNext)

		dc := mat.NewVector(h)
		copy(dc, dcNext)
		for j := 0; j < h; j++ {
			do := dh[j] * st.tanhC[j]
			dcj := dc[j] + dh[j]*st.o[j]*(1-st.tanhC[j]*st.tanhC[j])
			di := dcj * st.g[j]
			dg := dcj * st.i[j]
			df := dcj * st.cPrev[j]
			dcNext[j] = dcj * st.f[j]
			dz[j] = di * st.i[j] * (1 - st.i[j])
			dz[h+j] = df * st.f[j] * (1 - st.f[j])
			dz[2*h+j] = dg * (1 - st.g[j]*st.g[j])
			dz[3*h+j] = do * st.o[j] * (1 - st.o[j])
		}
		x := m.emb.Row(st.id)
		m.gWx.AddOuter(1, dz, x)
		m.gWh.AddOuter(1, dz, st.hPrev)
		m.gB.Add(dz)
		m.wx.MulVecT(dx, dz)
		m.gEmb.Row(st.id).Add(dx)
		m.wh.MulVecT(dhNext, dz)
	}
	return nll, n
}

// Train fits the model on the corpus for the given number of epochs and
// returns the training perplexity of the final epoch.
func (m *LSTM) Train(corpus [][]string, epochs int) float64 {
	rng := mat.NewRNG(m.cfg.Seed + 77)
	encoded := make([][]int, len(corpus))
	for i, sent := range corpus {
		encoded[i] = m.vocab.EncodeSentence(sent)
	}
	var ppl float64
	for e := 0; e < epochs; e++ {
		var nll float64
		var n int
		perm := rng.Perm(len(encoded))
		for _, i := range perm {
			dn, dc := m.trainSentence(encoded[i])
			nll += dn
			n += dc
		}
		if n > 0 {
			ppl = math.Exp(nll / float64(n))
		}
	}
	return ppl
}

// Perplexity evaluates the model on a corpus without training.
func (m *LSTM) Perplexity(corpus [][]string) float64 {
	var nll float64
	var n int
	h := m.cfg.HiddenDim
	for _, sent := range corpus {
		ids := m.vocab.EncodeSentence(sent)
		hv, cv := mat.NewVector(h), mat.NewVector(h)
		for t := 0; t+1 < len(ids); t++ {
			st := m.forwardStep(ids[t], hv, cv, true)
			p := st.probs[ids[t+1]]
			if p < 1e-12 {
				p = 1e-12
			}
			nll += -math.Log(p)
			n++
			hv, cv = st.h, st.c
		}
	}
	if n == 0 {
		return math.Inf(1)
	}
	return math.Exp(nll / float64(n))
}

// lstmState implements State.
type lstmState struct {
	m    *LSTM
	h, c mat.Vector
}

// Start returns a state positioned after BOS.
func (m *LSTM) Start() State {
	s := &lstmState{m: m, h: mat.NewVector(m.cfg.HiddenDim), c: mat.NewVector(m.cfg.HiddenDim)}
	s.Feed(BOS)
	return s
}

// Feed advances the state by one token.
func (s *lstmState) Feed(token string) {
	st := s.m.forwardStep(s.m.vocab.ID(token), s.h, s.c, false)
	s.h, s.c = st.h, st.c
}

// Probs returns the next-token distribution.
func (s *lstmState) Probs() mat.Vector {
	logits := mat.NewVector(s.m.vocab.Size())
	s.m.wo.MulVec(logits, s.h)
	logits.Add(s.m.bo)
	return mat.Softmax(logits, logits)
}

// Hidden returns a copy of the hidden state.
func (s *lstmState) Hidden() mat.Vector { return s.h.Clone() }

// Clone returns an independent copy.
func (s *lstmState) Clone() State {
	return &lstmState{m: s.m, h: s.h.Clone(), c: s.c.Clone()}
}

// EmbedSequence feeds tokens through the model and returns the final
// hidden state, matching the paper's "network embedding output in the last
// step as xρ".
func (m *LSTM) EmbedSequence(tokens []string) mat.Vector {
	s := m.Start()
	for _, tok := range tokens {
		s.Feed(tok)
	}
	return s.Hidden()
}

// PredictNext is a convenience over Start/Feed/Probs: it returns the
// next-token distribution after the given prefix, sorted descending.
func (m *LSTM) PredictNext(prefix []string) []TokenProb {
	s := m.Start()
	for _, tok := range prefix {
		s.Feed(tok)
	}
	return topTokens(m.vocab, s.Probs())
}

// topTokens converts a distribution to a sorted TokenProb list, skipping
// PAD/BOS which are never valid continuations.
func topTokens(v *Vocab, probs mat.Vector) []TokenProb {
	out := make([]TokenProb, 0, len(probs))
	for id, p := range probs {
		tok := v.Token(id)
		if tok == PAD || tok == BOS {
			continue
		}
		out = append(out, TokenProb{Token: tok, Prob: p})
	}
	sortTokenProbs(out)
	return out
}

func sortTokenProbs(tp []TokenProb) {
	sort.Slice(tp, func(i, j int) bool {
		if tp[i].Prob != tp[j].Prob {
			return tp[i].Prob > tp[j].Prob
		}
		return tp[i].Token < tp[j].Token
	})
}
