package nn

import (
	"math"
	"testing"

	"semjoin/internal/mat"
)

// toyCorpus builds a tiny deterministic language: sentences follow the
// rigid grammar "a X b Y" where X∈{x1,x2} selects Y (x1→y1, x2→y2), so a
// trained LM must use context beyond the previous token.
func toyCorpus(n int) [][]string {
	var corpus [][]string
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			corpus = append(corpus, []string{"a", "x1", "b", "y1"})
		} else {
			corpus = append(corpus, []string{"a", "x2", "b", "y2"})
		}
	}
	return corpus
}

func TestVocabBasics(t *testing.T) {
	v := NewVocab()
	if v.Size() != 4 {
		t.Fatalf("reserved size = %d", v.Size())
	}
	id := v.Add("hello")
	if v.Add("hello") != id {
		t.Fatal("Add should be idempotent")
	}
	if v.ID("hello") != id || v.Token(id) != "hello" {
		t.Fatal("lookup broken")
	}
	if v.ID("missing") != v.ID(UNK) {
		t.Fatal("unknown should map to UNK")
	}
	if !v.Has("hello") || v.Has("missing") {
		t.Fatal("Has broken")
	}
}

func TestBuildVocabOrderAndMinCount(t *testing.T) {
	corpus := [][]string{{"b", "a", "a"}, {"a", "c"}}
	v := BuildVocab(corpus, 1)
	// a (3) before b (1) and c (1); b before c lexicographically.
	if v.ID("a") > v.ID("b") || v.ID("b") > v.ID("c") {
		t.Fatal("frequency/lex ordering violated")
	}
	v2 := BuildVocab(corpus, 2)
	if v2.Has("b") || !v2.Has("a") {
		t.Fatal("minCount filtering broken")
	}
}

func TestEncodeSentence(t *testing.T) {
	v := BuildVocab([][]string{{"a"}}, 1)
	ids := v.EncodeSentence([]string{"a", "zzz"})
	if len(ids) != 4 || ids[0] != v.ID(BOS) || ids[3] != v.ID(EOS) || ids[2] != v.ID(UNK) {
		t.Fatalf("EncodeSentence = %v", ids)
	}
}

func TestLSTMTrainingReducesPerplexity(t *testing.T) {
	corpus := toyCorpus(40)
	v := BuildVocab(corpus, 1)
	m := NewLSTM(v, LSTMConfig{EmbedDim: 12, HiddenDim: 16, Seed: 3})
	before := m.Perplexity(corpus)
	m.Train(corpus, 30)
	after := m.Perplexity(corpus)
	if after >= before {
		t.Fatalf("perplexity did not improve: %.3f -> %.3f", before, after)
	}
	// Fully deterministic grammar should approach low perplexity.
	if after > 2.5 {
		t.Fatalf("perplexity too high after training: %.3f", after)
	}
}

func TestLSTMContextSensitivePrediction(t *testing.T) {
	corpus := toyCorpus(40)
	v := BuildVocab(corpus, 1)
	m := NewLSTM(v, LSTMConfig{EmbedDim: 12, HiddenDim: 16, Seed: 3})
	m.Train(corpus, 40)
	// After "a x1 b" the model must prefer y1; after "a x2 b", y2 —
	// requires remembering a token two steps back.
	p1 := m.PredictNext([]string{"a", "x1", "b"})
	p2 := m.PredictNext([]string{"a", "x2", "b"})
	if p1[0].Token != "y1" {
		t.Fatalf("after x1 predicted %q", p1[0].Token)
	}
	if p2[0].Token != "y2" {
		t.Fatalf("after x2 predicted %q", p2[0].Token)
	}
	// After y1 the sentence ends.
	p3 := m.PredictNext([]string{"a", "x1", "b", "y1"})
	if p3[0].Token != EOS {
		t.Fatalf("after full sentence predicted %q, want EOS", p3[0].Token)
	}
}

func TestLSTMStateCloneBranches(t *testing.T) {
	corpus := toyCorpus(20)
	v := BuildVocab(corpus, 1)
	m := NewLSTM(v, LSTMConfig{EmbedDim: 8, HiddenDim: 12, Seed: 5})
	m.Train(corpus, 10)
	s := m.Start()
	s.Feed("a")
	branch := s.Clone()
	s.Feed("x1")
	branch.Feed("x2")
	h1 := s.Hidden()
	h2 := branch.Hidden()
	if mat.Cosine(h1, h2) > 0.99999 {
		t.Fatal("branched states should diverge")
	}
	// Original state advanced independently of the clone.
	s2 := m.Start()
	s2.Feed("a")
	s2.Feed("x1")
	if mat.Cosine(h1, s2.Hidden()) < 0.99999 {
		t.Fatal("same token sequence should give same state")
	}
}

func TestLSTMEmbedSequenceDiscriminatesOrder(t *testing.T) {
	// §III-A: "the embedding xρ can discern different orders of edge
	// labels". Train on sequences where order matters and check the
	// embeddings differ.
	corpus := [][]string{}
	for i := 0; i < 30; i++ {
		corpus = append(corpus, []string{"p", "q", "r"})
		corpus = append(corpus, []string{"r", "q", "p"})
	}
	v := BuildVocab(corpus, 1)
	m := NewLSTM(v, LSTMConfig{EmbedDim: 8, HiddenDim: 12, Seed: 7})
	m.Train(corpus, 15)
	e1 := m.EmbedSequence([]string{"p", "q", "r"})
	e2 := m.EmbedSequence([]string{"r", "q", "p"})
	if mat.Cosine(e1, e2) > 0.999 {
		t.Fatal("order-reversed sequences should embed differently")
	}
	if len(e1) != m.EmbedDim() {
		t.Fatalf("embed dim = %d, want %d", len(e1), m.EmbedDim())
	}
}

func TestLSTMProbsSumToOne(t *testing.T) {
	v := BuildVocab(toyCorpus(4), 1)
	m := NewLSTM(v, LSTMConfig{EmbedDim: 8, HiddenDim: 8, Seed: 1})
	s := m.Start()
	s.Feed("a")
	p := s.Probs()
	var sum float64
	for _, x := range p {
		sum += x
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probs sum = %v", sum)
	}
}

func TestLSTMPerplexityEmptyCorpus(t *testing.T) {
	v := NewVocab()
	m := NewLSTM(v, LSTMConfig{EmbedDim: 4, HiddenDim: 4})
	if !math.IsInf(m.Perplexity(nil), 1) {
		t.Fatal("empty-corpus perplexity should be +Inf")
	}
}

func TestLSTMGradientCheck(t *testing.T) {
	// Numerical gradient check: compare the analytic gradient of one
	// weight against central finite differences of the sentence NLL.
	v := BuildVocab([][]string{{"a", "b"}}, 1)
	m := NewLSTM(v, LSTMConfig{EmbedDim: 3, HiddenDim: 4, Seed: 2})
	ids := v.EncodeSentence([]string{"a", "b"})

	loss := func() float64 {
		h := m.cfg.HiddenDim
		hv, cv := mat.NewVector(h), mat.NewVector(h)
		var nll float64
		for t := 0; t+1 < len(ids); t++ {
			st := m.forwardStep(ids[t], hv, cv, true)
			nll += -math.Log(st.probs[ids[t+1]])
			hv, cv = st.h, st.c
		}
		return nll
	}

	// Capture analytic gradients by running backward with LR=0 so the
	// optimiser leaves parameters untouched, then reading the grad
	// buffers before trainSentence zeroes them is impossible — so instead
	// capture them via gradsForSentence (test hook below).
	grads := m.gradsForSentence(ids)
	const eps = 1e-5
	check := func(name string, params []float64, g []float64, idx int) {
		orig := params[idx]
		params[idx] = orig + eps
		lp := loss()
		params[idx] = orig - eps
		lm := loss()
		params[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-g[idx]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("%s[%d]: analytic %.8f vs numeric %.8f", name, idx, g[idx], numeric)
		}
	}
	check("wx", m.wx.Data, grads.wx, 0)
	check("wx", m.wx.Data, grads.wx, 7)
	check("wh", m.wh.Data, grads.wh, 3)
	check("wo", m.wo.Data, grads.wo, 5)
	check("b", m.b, grads.b, 1)
	check("bo", m.bo, grads.bo, 2)
	check("emb", m.emb.Data, grads.emb, ids[0]*m.cfg.EmbedDim)

	// And one real step reduces the loss.
	before := loss()
	m.trainSentence(ids)
	after := loss()
	if after >= before {
		t.Fatalf("one Adam step should reduce loss: %.6f -> %.6f", before, after)
	}
}

func TestTransformerTrainingReducesPerplexity(t *testing.T) {
	corpus := toyCorpus(30)
	v := BuildVocab(corpus, 1)
	m := NewTransformer(v, TransformerConfig{ModelDim: 12, AttnDim: 12, FFNDim: 24, Seed: 3})
	// Perplexity via forward pass.
	ppl := func() float64 {
		var nll float64
		var n int
		for _, sent := range corpus {
			ids := v.EncodeSentence(sent)
			fw := m.forward(ids, true)
			for t := 0; t+1 < len(fw.ids); t++ {
				p := fw.probs[t][fw.ids[t+1]]
				if p < 1e-12 {
					p = 1e-12
				}
				nll += -math.Log(p)
				n++
			}
		}
		return math.Exp(nll / float64(n))
	}
	before := ppl()
	m.Train(corpus, 30)
	after := ppl()
	if after >= before {
		t.Fatalf("transformer perplexity did not improve: %.3f -> %.3f", before, after)
	}
	if after > 3.5 {
		t.Fatalf("transformer perplexity too high: %.3f", after)
	}
}

func TestTransformerContextSensitive(t *testing.T) {
	corpus := toyCorpus(40)
	v := BuildVocab(corpus, 1)
	m := NewTransformer(v, TransformerConfig{ModelDim: 16, AttnDim: 16, FFNDim: 32, Seed: 4})
	m.Train(corpus, 60)
	s := m.Start()
	for _, tok := range []string{"a", "x1", "b"} {
		s.Feed(tok)
	}
	p := s.Probs()
	if v.Token(mat.ArgMax(p)) != "y1" {
		t.Fatalf("transformer after x1 predicted %q", v.Token(mat.ArgMax(p)))
	}
}

func TestTransformerStateClone(t *testing.T) {
	v := BuildVocab(toyCorpus(4), 1)
	m := NewTransformer(v, TransformerConfig{ModelDim: 8, AttnDim: 8, FFNDim: 16, Seed: 1})
	s := m.Start()
	s.Feed("a")
	c := s.Clone()
	c.Feed("x1")
	// Original unchanged: same hidden as a fresh a-only state.
	s2 := m.Start()
	s2.Feed("a")
	if mat.Cosine(s.Hidden(), s2.Hidden()) < 0.99999 {
		t.Fatal("clone mutated original state")
	}
}

func TestTransformerEmbedSequence(t *testing.T) {
	v := BuildVocab(toyCorpus(4), 1)
	m := NewTransformer(v, TransformerConfig{ModelDim: 8, AttnDim: 8, FFNDim: 16, Seed: 1})
	e := m.EmbedSequence([]string{"a", "x1"})
	if len(e) != m.EmbedDim() {
		t.Fatalf("embed dim = %d", len(e))
	}
	e2 := m.EmbedSequence([]string{"a", "x2"})
	if mat.Cosine(e, e2) > 0.999999 {
		t.Fatal("different sequences should embed differently")
	}
}

func TestTransformerLongSequenceTruncates(t *testing.T) {
	v := BuildVocab(toyCorpus(4), 1)
	m := NewTransformer(v, TransformerConfig{ModelDim: 8, AttnDim: 8, FFNDim: 16, MaxLen: 8, Seed: 1})
	long := make([]string, 50)
	for i := range long {
		long[i] = "a"
	}
	e := m.EmbedSequence(long) // must not panic
	if len(e) != 8 {
		t.Fatalf("embed dim = %d", len(e))
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimise f(x) = (x-3)^2 with Adam.
	params := []float64{0}
	opt := NewAdam(1, 0.1)
	for i := 0; i < 500; i++ {
		g := 2 * (params[0] - 3)
		opt.Step(params, []float64{g})
	}
	if math.Abs(params[0]-3) > 0.05 {
		t.Fatalf("Adam did not converge: x = %v", params[0])
	}
}

// capturedGrads snapshots the LSTM gradient buffers for the gradient test.
type capturedGrads struct {
	emb, wx, wh, wo, b, bo []float64
}

// gradsForSentence runs one backward pass and returns copies of the
// accumulated gradients, leaving the model unchanged.
func (m *LSTM) gradsForSentence(ids []int) capturedGrads {
	m.accumulateGrads(ids)
	cp := func(s []float64) []float64 { return append([]float64(nil), s...) }
	g := capturedGrads{
		emb: cp(m.gEmb.Data), wx: cp(m.gWx.Data), wh: cp(m.gWh.Data),
		wo: cp(m.gWo.Data), b: cp(m.gB), bo: cp(m.gBo),
	}
	m.zeroGrads()
	return g
}
