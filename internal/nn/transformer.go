package nn

import (
	"math"

	"semjoin/internal/mat"
)

// TransformerConfig parameterises NewTransformer. Zero fields take
// defaults.
type TransformerConfig struct {
	ModelDim int     // token/positional embedding size (default 32)
	AttnDim  int     // attention head size (default 32)
	FFNDim   int     // feed-forward inner size (default 64)
	MaxLen   int     // maximum sequence length (default 64)
	LR       float64 // Adam learning rate (default 0.002)
	Clip     float64 // gradient clip (default 5)
	Seed     uint64  // init seed (default 1)
}

func (c TransformerConfig) withDefaults() TransformerConfig {
	if c.ModelDim == 0 {
		c.ModelDim = 32
	}
	if c.AttnDim == 0 {
		c.AttnDim = 32
	}
	if c.FFNDim == 0 {
		c.FFNDim = 64
	}
	if c.MaxLen == 0 {
		c.MaxLen = 64
	}
	if c.LR == 0 {
		c.LR = 0.002
	}
	if c.Clip == 0 {
		c.Clip = 5
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Transformer is a single-layer, single-head causal Transformer language
// model. It stands in for the BERT-based RExtBertSeq / RExtBertEmb
// baselines of §V Exp-2(b): per-embedding compute is higher than the LSTM
// while accuracy on small label vocabularies is comparable, reproducing
// the trade-off the paper reports.
type Transformer struct {
	vocab *Vocab
	cfg   TransformerConfig

	emb  *mat.Matrix // V×d token embeddings
	pos  *mat.Matrix // MaxLen×d positional embeddings
	wq   *mat.Matrix // a×d
	wk   *mat.Matrix // a×d
	wv   *mat.Matrix // a×d
	wao  *mat.Matrix // d×a attention output projection
	w1   *mat.Matrix // f×d FFN in
	b1   mat.Vector  // f
	w2   *mat.Matrix // d×f FFN out
	b2   mat.Vector  // d
	wout *mat.Matrix // V×d LM head
	bout mat.Vector  // V

	gEmb, gPos, gWq, gWk, gWv, gWao, gW1, gW2, gWout *mat.Matrix
	gB1, gB2, gBout                                  mat.Vector

	opts []*Adam // aligned with params()
}

// NewTransformer builds an untrained model over vocab.
func NewTransformer(vocab *Vocab, cfg TransformerConfig) *Transformer {
	cfg = cfg.withDefaults()
	V, d, a, f := vocab.Size(), cfg.ModelDim, cfg.AttnDim, cfg.FFNDim
	m := &Transformer{
		vocab: vocab, cfg: cfg,
		emb: mat.NewMatrix(V, d), pos: mat.NewMatrix(cfg.MaxLen, d),
		wq: mat.NewMatrix(a, d), wk: mat.NewMatrix(a, d), wv: mat.NewMatrix(a, d),
		wao: mat.NewMatrix(d, a),
		w1:  mat.NewMatrix(f, d), b1: mat.NewVector(f),
		w2: mat.NewMatrix(d, f), b2: mat.NewVector(d),
		wout: mat.NewMatrix(V, d), bout: mat.NewVector(V),

		gEmb: mat.NewMatrix(V, d), gPos: mat.NewMatrix(cfg.MaxLen, d),
		gWq: mat.NewMatrix(a, d), gWk: mat.NewMatrix(a, d), gWv: mat.NewMatrix(a, d),
		gWao: mat.NewMatrix(d, a),
		gW1:  mat.NewMatrix(f, d), gB1: mat.NewVector(f),
		gW2: mat.NewMatrix(d, f), gB2: mat.NewVector(d),
		gWout: mat.NewMatrix(V, d), gBout: mat.NewVector(V),
	}
	rng := mat.NewRNG(cfg.Seed)
	for _, p := range []*mat.Matrix{m.emb, m.pos, m.wq, m.wk, m.wv, m.wao, m.w1, m.w2, m.wout} {
		rng.FillUniform(mat.Vector(p.Data), math.Sqrt(1.0/float64(p.Cols)))
	}
	for _, p := range m.paramSlices() {
		m.opts = append(m.opts, NewAdam(len(p.params), cfg.LR))
	}
	return m
}

type paramPair struct{ params, grads []float64 }

func (m *Transformer) paramSlices() []paramPair {
	return []paramPair{
		{m.emb.Data, m.gEmb.Data}, {m.pos.Data, m.gPos.Data},
		{m.wq.Data, m.gWq.Data}, {m.wk.Data, m.gWk.Data}, {m.wv.Data, m.gWv.Data},
		{m.wao.Data, m.gWao.Data},
		{m.w1.Data, m.gW1.Data}, {m.b1, m.gB1},
		{m.w2.Data, m.gW2.Data}, {m.b2, m.gB2},
		{m.wout.Data, m.gWout.Data}, {m.bout, m.gBout},
	}
}

// Vocab returns the model vocabulary.
func (m *Transformer) Vocab() *Vocab { return m.vocab }

// EmbedDim returns the model dimension.
func (m *Transformer) EmbedDim() int { return m.cfg.ModelDim }

// tfwd holds the forward activations of one sentence.
type tfwd struct {
	ids   []int
	x     []mat.Vector // input embeddings (token+pos)
	q     []mat.Vector
	k     []mat.Vector
	v     []mat.Vector
	alpha []mat.Vector // attention weights per position (length t+1)
	attn  []mat.Vector // attention-weighted values
	r     []mat.Vector // residual after attention
	pre1  []mat.Vector // FFN pre-activation
	f1    []mat.Vector // FFN hidden (post-ReLU)
	out   []mat.Vector // final representation per position
	probs []mat.Vector // softmax over vocab (only when withOutput)
}

// forward runs the model over ids (truncated to MaxLen).
func (m *Transformer) forward(ids []int, withOutput bool) *tfwd {
	if len(ids) > m.cfg.MaxLen {
		ids = ids[len(ids)-m.cfg.MaxLen:]
	}
	T := len(ids)
	d, a, fdim := m.cfg.ModelDim, m.cfg.AttnDim, m.cfg.FFNDim
	fw := &tfwd{ids: ids}
	scale := 1 / math.Sqrt(float64(a))
	for t := 0; t < T; t++ {
		x := m.emb.Row(ids[t]).Clone()
		x.Add(m.pos.Row(t))
		fw.x = append(fw.x, x)
		fw.q = append(fw.q, m.wq.MulVec(mat.NewVector(a), x))
		fw.k = append(fw.k, m.wk.MulVec(mat.NewVector(a), x))
		fw.v = append(fw.v, m.wv.MulVec(mat.NewVector(a), x))
		// Causal attention over positions 0..t.
		scores := mat.NewVector(t + 1)
		for u := 0; u <= t; u++ {
			scores[u] = mat.Dot(fw.q[t], fw.k[u]) * scale
		}
		alpha := mat.Softmax(scores, scores)
		fw.alpha = append(fw.alpha, alpha)
		attn := mat.NewVector(a)
		for u := 0; u <= t; u++ {
			attn.AddScaled(alpha[u], fw.v[u])
		}
		fw.attn = append(fw.attn, attn)
		r := m.wao.MulVec(mat.NewVector(d), attn)
		r.Add(x)
		fw.r = append(fw.r, r)
		pre1 := m.w1.MulVec(mat.NewVector(fdim), r)
		pre1.Add(m.b1)
		f1 := pre1.Clone()
		for i, z := range f1 {
			if z < 0 {
				f1[i] = 0
			}
		}
		fw.pre1 = append(fw.pre1, pre1)
		fw.f1 = append(fw.f1, f1)
		out := m.w2.MulVec(mat.NewVector(d), f1)
		out.Add(m.b2)
		out.Add(r)
		fw.out = append(fw.out, out)
		if withOutput {
			logits := m.wout.MulVec(mat.NewVector(m.vocab.Size()), out)
			logits.Add(m.bout)
			fw.probs = append(fw.probs, mat.Softmax(logits, logits))
		}
	}
	return fw
}

// trainSentence runs forward + backward over one encoded sentence and
// applies one Adam step, returning summed NLL and token count.
func (m *Transformer) trainSentence(ids []int) (nll float64, n int) {
	nll, n = m.accumulateGrads(ids)
	if n == 0 {
		return nll, n
	}
	for _, p := range m.paramSlices() {
		mat.Vector(p.grads).Clip(m.cfg.Clip)
	}
	for i, p := range m.paramSlices() {
		m.opts[i].Step(p.params, p.grads)
		mat.Vector(p.grads).Zero()
	}
	return nll, n
}

// accumulateGrads runs the forward pass and full backward pass for one
// sentence, adding into the gradient buffers without stepping.
func (m *Transformer) accumulateGrads(ids []int) (nll float64, n int) {
	if len(ids) < 2 {
		return 0, 0
	}
	fw := m.forward(ids, true)
	T := len(fw.ids)
	d, a := m.cfg.ModelDim, m.cfg.AttnDim
	scale := 1 / math.Sqrt(float64(a))

	dx := make([]mat.Vector, T)
	dq := make([]mat.Vector, T)
	dk := make([]mat.Vector, T)
	dv := make([]mat.Vector, T)
	dattn := make([]mat.Vector, T)
	for t := 0; t < T; t++ {
		dx[t] = mat.NewVector(d)
		dq[t] = mat.NewVector(a)
		dk[t] = mat.NewVector(a)
		dv[t] = mat.NewVector(a)
		dattn[t] = mat.NewVector(a)
	}

	// Output, FFN and residual backward per position (positions 0..T-2
	// predict the next token; the last position has no target).
	for t := 0; t+1 < T; t++ {
		target := fw.ids[t+1]
		p := fw.probs[t][target]
		if p < 1e-12 {
			p = 1e-12
		}
		nll += -math.Log(p)
		n++
		dlogits := fw.probs[t]
		dlogits[target] -= 1
		m.gWout.AddOuter(1, dlogits, fw.out[t])
		m.gBout.Add(dlogits)
		dout := m.wout.MulVecT(mat.NewVector(d), dlogits)

		// out = r + W2·relu(W1·r + b1) + b2
		dr := dout.Clone()
		df1 := m.w2.MulVecT(mat.NewVector(m.cfg.FFNDim), dout)
		m.gW2.AddOuter(1, dout, fw.f1[t])
		m.gB2.Add(dout)
		for i := range df1 {
			if fw.pre1[t][i] <= 0 {
				df1[i] = 0
			}
		}
		m.gW1.AddOuter(1, df1, fw.r[t])
		m.gB1.Add(df1)
		dr.Add(m.w1.MulVecT(mat.NewVector(d), df1))

		// r = x + Wao·attn
		dx[t].Add(dr)
		m.gWao.AddOuter(1, dr, fw.attn[t])
		dattn[t].Add(m.wao.MulVecT(mat.NewVector(a), dr))
	}

	// Attention backward.
	for t := 0; t+1 < T; t++ {
		alpha := fw.alpha[t]
		// dalpha_u = dattn·v_u ; dv_u += alpha_u * dattn
		dalpha := mat.NewVector(t + 1)
		for u := 0; u <= t; u++ {
			dalpha[u] = mat.Dot(dattn[t], fw.v[u])
			dv[u].AddScaled(alpha[u], dattn[t])
		}
		// softmax backward
		var dot float64
		for u := 0; u <= t; u++ {
			dot += alpha[u] * dalpha[u]
		}
		for u := 0; u <= t; u++ {
			ds := alpha[u] * (dalpha[u] - dot)
			dq[t].AddScaled(ds*scale, fw.k[u])
			dk[u].AddScaled(ds*scale, fw.q[t])
		}
	}

	// Projection and embedding backward.
	for t := 0; t < T; t++ {
		m.gWq.AddOuter(1, dq[t], fw.x[t])
		m.gWk.AddOuter(1, dk[t], fw.x[t])
		m.gWv.AddOuter(1, dv[t], fw.x[t])
		dx[t].Add(m.wq.MulVecT(mat.NewVector(d), dq[t]))
		dx[t].Add(m.wk.MulVecT(mat.NewVector(d), dk[t]))
		dx[t].Add(m.wv.MulVecT(mat.NewVector(d), dv[t]))
		m.gEmb.Row(fw.ids[t]).Add(dx[t])
		m.gPos.Row(t).Add(dx[t])
	}

	return nll, n
}

// Train fits the model and returns the final-epoch training perplexity.
func (m *Transformer) Train(corpus [][]string, epochs int) float64 {
	rng := mat.NewRNG(m.cfg.Seed + 77)
	encoded := make([][]int, len(corpus))
	for i, sent := range corpus {
		encoded[i] = m.vocab.EncodeSentence(sent)
	}
	var ppl float64
	for e := 0; e < epochs; e++ {
		var nll float64
		var n int
		for _, i := range rng.Perm(len(encoded)) {
			dn, dc := m.trainSentence(encoded[i])
			nll += dn
			n += dc
		}
		if n > 0 {
			ppl = math.Exp(nll / float64(n))
		}
	}
	return ppl
}

// tfState implements State by replaying the full prefix on each query
// (sequences in path selection are short, ≤ 2k+1 tokens).
type tfState struct {
	m   *Transformer
	ids []int
}

// Start returns a state positioned after BOS.
func (m *Transformer) Start() State {
	return &tfState{m: m, ids: []int{m.vocab.ID(BOS)}}
}

// Feed appends one token.
func (s *tfState) Feed(token string) { s.ids = append(s.ids, s.m.vocab.ID(token)) }

// Probs returns the next-token distribution.
func (s *tfState) Probs() mat.Vector {
	fw := s.m.forward(s.ids, true)
	return fw.probs[len(fw.probs)-1].Clone()
}

// Hidden returns the representation of the last position.
func (s *tfState) Hidden() mat.Vector {
	fw := s.m.forward(s.ids, false)
	return fw.out[len(fw.out)-1].Clone()
}

// Clone returns an independent copy.
func (s *tfState) Clone() State {
	return &tfState{m: s.m, ids: append([]int(nil), s.ids...)}
}

// EmbedSequence returns the final-position representation of tokens.
func (m *Transformer) EmbedSequence(tokens []string) mat.Vector {
	s := m.Start()
	for _, tok := range tokens {
		s.Feed(tok)
	}
	return s.(*tfState).Hidden()
}
