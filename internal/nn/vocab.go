// Package nn implements the learned sequence models of §III: an LSTM
// language model Mρ trained on random-walk label "sentences" with the
// perplexity loss, used both to guide path selection (predicting which
// edge label plausibly follows a prefix) and to embed paths (the hidden
// state after the last step). A small Transformer encoder and a narrow
// LSTM serve as the RExtBertSeq / RExtShortSeq ablation baselines. All
// models are pure Go over the internal/mat kernel.
package nn

import "sort"

// Reserved vocabulary tokens.
const (
	// PAD is the padding token (id 0).
	PAD = "<pad>"
	// UNK represents out-of-vocabulary tokens.
	UNK = "<unk>"
	// BOS starts every sentence.
	BOS = "<bos>"
	// EOS ends every sentence; the path selector stops when Mρ predicts it
	// (§III-A stop condition (a)).
	EOS = "<eos>"
)

// Vocab maps tokens to dense ids. Ids 0..3 are PAD, UNK, BOS, EOS.
type Vocab struct {
	byToken map[string]int
	byID    []string
}

// NewVocab returns a vocabulary holding only the reserved tokens.
func NewVocab() *Vocab {
	v := &Vocab{byToken: make(map[string]int)}
	for _, t := range []string{PAD, UNK, BOS, EOS} {
		v.byID = append(v.byID, t)
		v.byToken[t] = len(v.byID) - 1
	}
	return v
}

// BuildVocab constructs a vocabulary from a corpus, keeping tokens with
// frequency >= minCount. Tokens are added in decreasing frequency then
// lexicographic order so ids are deterministic.
func BuildVocab(corpus [][]string, minCount int) *Vocab {
	freq := make(map[string]int)
	for _, sent := range corpus {
		for _, tok := range sent {
			freq[tok]++
		}
	}
	type tf struct {
		tok string
		n   int
	}
	var list []tf
	for tok, n := range freq {
		if n >= minCount {
			list = append(list, tf{tok, n})
		}
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].n != list[j].n {
			return list[i].n > list[j].n
		}
		return list[i].tok < list[j].tok
	})
	v := NewVocab()
	for _, e := range list {
		v.Add(e.tok)
	}
	return v
}

// Add inserts tok if absent and returns its id.
func (v *Vocab) Add(tok string) int {
	if id, ok := v.byToken[tok]; ok {
		return id
	}
	v.byID = append(v.byID, tok)
	id := len(v.byID) - 1
	v.byToken[tok] = id
	return id
}

// ID returns tok's id, or the UNK id for unknown tokens.
func (v *Vocab) ID(tok string) int {
	if id, ok := v.byToken[tok]; ok {
		return id
	}
	return v.byToken[UNK]
}

// Has reports whether tok is in the vocabulary.
func (v *Vocab) Has(tok string) bool {
	_, ok := v.byToken[tok]
	return ok
}

// Token returns the token with the given id.
func (v *Vocab) Token(id int) string { return v.byID[id] }

// Size returns the vocabulary size including reserved tokens.
func (v *Vocab) Size() int { return len(v.byID) }

// EncodeSentence maps tokens to ids, wrapping with BOS/EOS.
func (v *Vocab) EncodeSentence(sent []string) []int {
	out := make([]int, 0, len(sent)+2)
	out = append(out, v.ID(BOS))
	for _, tok := range sent {
		out = append(out, v.ID(tok))
	}
	return append(out, v.ID(EOS))
}
