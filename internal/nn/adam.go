package nn

import "math"

// Adam is the Adam optimiser state for one parameter tensor (flattened).
type Adam struct {
	lr, beta1, beta2, eps float64
	m, v                  []float64
	t                     int
}

// NewAdam returns an optimiser for a parameter vector of length n.
func NewAdam(n int, lr float64) *Adam {
	return &Adam{lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8,
		m: make([]float64, n), v: make([]float64, n)}
}

// Step applies one Adam update to params given grads, then leaves grads
// untouched (the caller zeroes them).
func (a *Adam) Step(params, grads []float64) {
	a.t++
	b1c := 1 - math.Pow(a.beta1, float64(a.t))
	b2c := 1 - math.Pow(a.beta2, float64(a.t))
	for i, g := range grads {
		a.m[i] = a.beta1*a.m[i] + (1-a.beta1)*g
		a.v[i] = a.beta2*a.v[i] + (1-a.beta2)*g*g
		mh := a.m[i] / b1c
		vh := a.v[i] / b2c
		params[i] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
	}
}

// SetLR changes the learning rate.
func (a *Adam) SetLR(lr float64) { a.lr = lr }
