package nn

import (
	"math"
	"testing"
)

// TestTransformerGradientCheck verifies the Transformer's analytic
// gradients against central finite differences for a sample of parameters
// in every tensor.
func TestTransformerGradientCheck(t *testing.T) {
	v := BuildVocab([][]string{{"a", "b", "c"}}, 1)
	m := NewTransformer(v, TransformerConfig{ModelDim: 4, AttnDim: 3, FFNDim: 5, MaxLen: 8, Seed: 2})
	ids := v.EncodeSentence([]string{"a", "b", "c"})

	loss := func() float64 {
		fw := m.forward(ids, true)
		var nll float64
		for i := 0; i+1 < len(fw.ids); i++ {
			p := fw.probs[i][fw.ids[i+1]]
			if p < 1e-12 {
				p = 1e-12
			}
			nll += -math.Log(p)
		}
		return nll
	}

	// Capture analytic gradients without stepping.
	m.accumulateGrads(ids)
	pairs := m.paramSlices()
	grads := make([][]float64, len(pairs))
	for i, p := range pairs {
		grads[i] = append([]float64(nil), p.grads...)
		for j := range p.grads {
			p.grads[j] = 0
		}
	}

	const eps = 1e-5
	names := []string{"emb", "pos", "wq", "wk", "wv", "wao", "w1", "b1", "w2", "b2", "wout", "bout"}
	check := func(name string, params, g []float64, idx int) {
		t.Helper()
		orig := params[idx]
		params[idx] = orig + eps
		lp := loss()
		params[idx] = orig - eps
		lm := loss()
		params[idx] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-g[idx]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("%s[%d]: analytic %.8f vs numeric %.8f", name, idx, g[idx], numeric)
		}
	}
	for i, p := range pairs {
		check(names[i], p.params, grads[i], 0)
		if len(p.params) > 3 {
			check(names[i], p.params, grads[i], len(p.params)/2)
			check(names[i], p.params, grads[i], len(p.params)-1)
		}
	}
}
