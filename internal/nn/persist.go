package nn

import (
	"fmt"
	"io"

	"semjoin/internal/bin"
	"semjoin/internal/mat"
)

// WriteTo persists the vocabulary.
func (v *Vocab) WriteTo(w *bin.Writer) {
	w.Strings(v.byID)
}

// ReadVocab restores a vocabulary written by WriteTo.
func ReadVocab(r *bin.Reader) *Vocab {
	ids := r.Strings()
	v := &Vocab{byToken: make(map[string]int, len(ids)), byID: ids}
	for i, tok := range ids {
		v.byToken[tok] = i
	}
	return v
}

// Save persists the trained model (vocabulary, configuration and
// parameters; optimiser state is not saved — a loaded model predicts and
// embeds but resumes training from fresh optimiser moments).
func (m *LSTM) Save(out io.Writer) error {
	w := bin.NewWriter(out)
	w.Header("lstm", 1)
	m.vocab.WriteTo(w)
	w.Int(m.cfg.EmbedDim)
	w.Int(m.cfg.HiddenDim)
	w.F64(m.cfg.LR)
	w.F64(m.cfg.Clip)
	w.U64(m.cfg.Seed)
	for _, p := range []*mat.Matrix{m.emb, m.wx, m.wh, m.wo} {
		w.F64s(p.Data)
	}
	w.F64s(m.b)
	w.F64s(m.bo)
	return w.Err()
}

// LoadLSTM restores a model written by Save.
func LoadLSTM(in io.Reader) (*LSTM, error) {
	r := bin.NewReader(in)
	if v := r.Header("lstm"); r.Err() == nil && v != 1 {
		return nil, fmt.Errorf("nn: unsupported lstm version %d", v)
	}
	vocab := ReadVocab(r)
	cfg := LSTMConfig{
		EmbedDim:  r.Int(),
		HiddenDim: r.Int(),
		LR:        r.F64(),
		Clip:      r.F64(),
		Seed:      r.U64(),
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	m := NewLSTM(vocab, cfg)
	for _, p := range []*mat.Matrix{m.emb, m.wx, m.wh, m.wo} {
		data := r.F64s()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(data) != len(p.Data) {
			return nil, fmt.Errorf("nn: parameter size mismatch: %d vs %d", len(data), len(p.Data))
		}
		copy(p.Data, data)
	}
	for _, v := range []mat.Vector{m.b, m.bo} {
		data := r.F64s()
		if r.Err() != nil {
			return nil, r.Err()
		}
		if len(data) != len(v) {
			return nil, fmt.Errorf("nn: bias size mismatch: %d vs %d", len(data), len(v))
		}
		copy(v, data)
	}
	return m, r.Err()
}
