package dataset

import (
	"fmt"

	"semjoin/internal/mat"
)

// Label pools for value classes. Half of each pool carries realistic
// names with no lexical relation to the class word (semantic matching
// must come from type sentences / co-occurrence), the other half are
// synthesised on demand.
var pools = map[string][]string{
	"country":     {"UK", "US", "Germany", "France", "Japan", "Brazil", "India", "Canada", "Italy", "Spain"},
	"company":     {"Acme Corp", "Globex Corp", "Initech Corp", "Umbrella Corp", "Stark Industries", "Wayne Enterprises", "Tyrell Corp", "Wonka Industries"},
	"genre":       {"Action", "Comedy", "Drama", "Horror", "Thriller", "Romance", "Documentary", "Animation"},
	"language":    {"English", "French", "German", "Spanish", "Japanese", "Portuguese", "Hindi", "Italian"},
	"disease":     {"Pediculosis", "Influenza", "Malaria", "Asthma", "Diabetes", "Hypertension", "Migraine", "Anemia"},
	"symptom":     {"Itching", "Fever", "Chills", "Wheezing", "Fatigue", "Headache", "Dizziness", "Pallor"},
	"efficacy":    {"Insecticide", "Antiviral", "Antiparasitic", "Bronchodilator", "Hypoglycemic", "Vasodilator", "Analgesic", "Hematinic"},
	"class":       {"Macrolide", "Statin", "Betablocker", "Opioid", "Quinolone", "Steroid", "Diuretic", "Salicylate"},
	"topic":       {"Politics", "Economy", "Health", "Science", "Sports", "Culture", "Climate", "Technology"},
	"keyword":     {"election", "inflation", "vaccine", "quantum", "olympics", "museum", "wildfire", "robotics", "senate", "markets", "clinical", "galaxy", "stadium", "gallery", "drought", "neural"},
	"venue":       {"VLDB", "SIGMOD", "ICDE", "EDBT", "PODS", "CIKM", "KDD", "WWW"},
	"affiliation": {"Edinburgh", "NASA", "Bell Labs", "ETH Zurich", "Tsinghua", "MIT", "Oxford", "CNRS"},
	"team":        {"United FC", "City Rovers", "Real Stars", "Athletic Club", "Dynamo", "Rangers", "Albion", "Wanderers"},
	"occupation":  {"Footballer", "Senator", "Sprinter", "Governor", "Swimmer", "Minister", "Boxer", "Diplomat"},
	"city":        {"London", "Paris", "Berlin", "Tokyo", "Madrid", "Rome", "Toronto", "Delhi"},
	"director":    {"Kurosawa", "Hitchcock", "Kubrick", "Varda", "Fellini", "Tarkovsky", "Wilder", "Campion"},
	"actor":       {"Chaplin", "Hepburn", "Brando", "Dietrich", "Bogart", "Garbo", "Olivier", "Loren"},
	"author":      {"Orwell", "Austen", "Kafka", "Woolf", "Borges", "Camus", "Achebe", "Lessing"},
}

// pool returns n labels of a class, extending the curated pool with
// synthetic members ("<class> 08") when n exceeds it.
func pool(class string, n int) []string {
	base := pools[class]
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		if i < len(base) {
			out = append(out, base[i])
		} else {
			out = append(out, fmt.Sprintf("%s %02d", class, i))
		}
	}
	return out
}

// pick returns a deterministic pseudo-random element of s.
func pick(rng *mat.RNG, s []string) string { return s[rng.Intn(len(s))] }
