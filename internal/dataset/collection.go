// Package dataset generates the six data collections of Table II — Drugs,
// FakeNews, Movie, MovKB, Paper, Celebrity — as synthetic stand-ins for
// the licensed dumps (DrugBank/KEGG, Kaggle, IMDB/LinkedMDB, IMDB/YAGO3,
// DBLP/RKBExplorer, DBpedia/YAGO3) that are unavailable offline. Each
// collection pairs relations with a typed knowledge graph, ground-truth
// tuple↔vertex alignment, and per-attribute ground truth so the
// column-drop recovery protocol of Exp-2 can compute F-measures. The
// generators reproduce the structural properties the experiments measure:
// recoverable columns reachable only through length-≤k paths, distractor
// paths sharing a pattern but not semantics (the Spinosad/Dimenhydrinate
// phenomenon of q1), overlapping vocabularies for heuristic matching, and
// skewed degree distributions.
package dataset

import (
	"fmt"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/rel"
)

// Collection is one generated relation/graph pair with ground truth.
type Collection struct {
	// Name is the collection name as in Table II.
	Name string
	// Rels holds the relational side, keyed by relation name.
	Rels map[string]*rel.Relation
	// MainRel names the relation used by the extraction experiments.
	MainRel string
	// G is the knowledge-graph side.
	G *graph.Graph
	// Truth aligns tuples to vertices: relation -> tid -> vertex.
	Truth map[string]map[string]graph.VertexID
	// Recoverable lists, per relation, the attributes that can be
	// recovered from G (the droppable columns of Exp-2 and the reference
	// keywords AR).
	Recoverable map[string][]string
	// TypeKeywords supplies Aτ per vertex type for graph profiling.
	TypeKeywords map[string][]string
}

// Main returns the main relation.
func (c *Collection) Main() *rel.Relation { return c.Rels[c.MainRel] }

// Oracle returns a ground-truth HER matcher for one relation.
func (c *Collection) Oracle(relName string) her.Matcher {
	return her.NewOracleMatcher(c.Truth[relName])
}

// Drop returns a copy of the named relation with the given attributes
// removed (the paper's R′), plus the dropped ground truth per attribute:
// attr -> tid -> original value. Unknown attributes panic — experiment
// configuration errors should fail loudly.
func (c *Collection) Drop(relName string, attrs []string) (*rel.Relation, map[string]map[string]string) {
	r := c.Rels[relName]
	if r == nil {
		panic("dataset: unknown relation " + relName) //lint:allow nopanic test-harness invariant: Drop is driven by the Recoverable map; dataset_test pins this panic
	}
	dropSet := map[string]bool{}
	for _, a := range attrs {
		if !r.Schema.Has(a) {
			panic(fmt.Sprintf("dataset: relation %s has no attribute %q", relName, a)) //lint:allow nopanic test-harness invariant: attribute names come from the schema itself
		}
		dropSet[a] = true
	}
	var keep []string
	for _, a := range r.Schema.Attrs {
		if !dropSet[a.Name] {
			keep = append(keep, a.Name)
		}
	}
	reduced, err := rel.Project(r, keep...)
	if err != nil {
		panic(err) //lint:allow nopanic keep names come from r's own schema, Insert cannot fail
	}

	truth := map[string]map[string]string{}
	keyCol := r.Schema.KeyCol()
	for _, a := range attrs {
		col := r.Schema.Col(a)
		m := map[string]string{}
		for _, t := range r.Tuples {
			m[t[keyCol].String()] = t[col].String()
		}
		truth[a] = m
	}
	return reduced, truth
}

// Stats summarises the collection like a Table II row.
type Stats struct {
	Name     string
	Tuples   int
	Vertices int
	Edges    int
}

// Stats returns tuple/vertex/edge counts.
func (c *Collection) Stats() Stats {
	tuples := 0
	for _, r := range c.Rels {
		tuples += r.Len()
	}
	return Stats{
		Name:     c.Name,
		Tuples:   tuples,
		Vertices: c.G.NumVertices(),
		Edges:    c.G.NumEdges(),
	}
}

// Config scales a generator.
type Config struct {
	// Entities is the number of main entities (default per collection).
	Entities int
	// Seed drives all randomness (default 1).
	Seed uint64
}

func (c Config) withDefaults(entities int) Config {
	if c.Entities == 0 {
		c.Entities = entities
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Generator builds one collection at the given scale.
type Generator func(Config) *Collection

// Generators maps collection names to their generators, in Table II order.
func Generators() []struct {
	Name string
	Gen  Generator
} {
	return []struct {
		Name string
		Gen  Generator
	}{
		{"Drugs", Drugs},
		{"FakeNews", FakeNews},
		{"Movie", Movie},
		{"MovKB", MovKB},
		{"Paper", Paper},
		{"Celebrity", Celebrity},
	}
}

// Names lists the known collection names in Table II order.
func Names() []string {
	gens := Generators()
	names := make([]string, len(gens))
	for i, g := range gens {
		names[i] = g.Name
	}
	return names
}

// ByName returns one generator by collection name, or nil.
func ByName(name string) Generator {
	for _, g := range Generators() {
		if g.Name == name {
			return g.Gen
		}
	}
	return nil
}
