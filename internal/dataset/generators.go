package dataset

import (
	"fmt"

	"semjoin/internal/graph"
	"semjoin/internal/mat"
	"semjoin/internal/rel"
)

// scaled sizes an open value class (venues, authors, studios, ...) with
// the entity count so per-value degree stays bounded, as in real
// knowledge graphs; closed classes (countries, genres, ...) stay small.
func scaled(n, div, min int) int {
	s := n / div
	if s < min {
		s = min
	}
	return s
}

// builder accumulates one collection.
type builder struct {
	g      *graph.Graph
	rng    *mat.RNG
	values map[string]map[string]graph.VertexID // class -> label -> vertex
}

func newBuilder(seed uint64) *builder {
	return &builder{
		g:      graph.New(),
		rng:    mat.NewRNG(seed),
		values: map[string]map[string]graph.VertexID{},
	}
}

// value returns the (shared) typed vertex for a class value, creating it
// on first use.
func (b *builder) value(class, label string) graph.VertexID {
	m := b.values[class]
	if m == nil {
		m = map[string]graph.VertexID{}
		b.values[class] = m
	}
	if v, ok := m[label]; ok {
		return v
	}
	v := b.g.AddVertex(label, class)
	m[label] = v
	return v
}

// entity creates a typed entity vertex (never shared).
func (b *builder) entity(class, label string) graph.VertexID {
	return b.g.AddVertex(label, class)
}

// background grows a periphery of vertices unrelated to the relation's
// entities, sparsely attached to the value layer. Real knowledge graphs
// are far larger than the neighbourhood of any one relation's matches
// (YAGO3 holds 3.4M vertices against a few thousand matched products);
// the periphery reproduces that: random graph updates mostly land away
// from matched vertices, which is what gives IncExt its locality
// (Fig 5(h)). n is the number of background vertices.
func (b *builder) background(n int, anchorClass string) {
	anchors := b.g.VerticesOfType(anchorClass)
	var prev graph.VertexID = graph.NoVertex
	labels := []string{"related_to", "part_of", "mentioned_with"}
	for i := 0; i < n; i++ {
		v := b.g.AddVertex(fmt.Sprintf("context %04d", i), "misc")
		if prev != graph.NoVertex {
			b.g.AddEdge(v, labels[i%len(labels)], prev)
		}
		if i%4 == 0 && i > 1 {
			// Short side-branches for degree variety.
			w := b.g.AddVertex(fmt.Sprintf("note %04d", i), "misc")
			b.g.AddEdge(w, "part_of", v)
		}
		// Sparse attachment to the value layer keeps one component.
		if i%10 == 0 && len(anchors) > 0 {
			b.g.AddEdge(v, "mentioned_with", anchors[(i/10)%len(anchors)])
		}
		prev = v
	}
}

// Drugs generates the Drugs collection: drug and interact relations plus
// a drugKG-like graph of drugs, efficacies, symptoms and diseases. The
// graph contains the q1 distractor structure: every drug reaches diseases
// through drug→has_efficacy→relieves→^has_symptom paths even when it does
// not treat them, so pattern shape alone cannot identify treated diseases
// — exactly the Spinosad vs Dimenhydrinate phenomenon of Exp-1.
func Drugs(cfg Config) *Collection {
	cfg = cfg.withDefaults(60)
	b := newBuilder(cfg.Seed)
	n := cfg.Entities

	drugNames := []string{
		"Spinosad", "Dimenhydrinate", "Ibuprofen", "Amoxicillin",
		"Metformin", "Atenolol", "Warfarin", "Insulin",
	}
	for len(drugNames) < n {
		drugNames = append(drugNames, fmt.Sprintf("drug %02d", len(drugNames)))
	}
	classes := pool("class", scaled(n, 8, 8))
	diseases := pool("disease", scaled(n, 8, 8))
	symptoms := pool("symptom", scaled(n, 8, 8))
	efficacies := pool("efficacy", scaled(n, 8, 8))

	// Disease -has_symptom-> symptom; efficacy -relieves-> symptom.
	for i, d := range diseases {
		b.g.AddEdge(b.value("disease", d), "has_symptom", b.value("symptom", symptoms[i%len(symptoms)]))
		b.g.AddEdge(b.value("disease", d), "has_symptom", b.value("symptom", symptoms[(i+3)%len(symptoms)]))
	}
	for i, e := range efficacies {
		b.g.AddEdge(b.value("efficacy", e), "relieves", b.value("symptom", symptoms[i%len(symptoms)]))
	}

	drug := rel.NewRelation(rel.NewSchema("drug", "cas",
		rel.Attribute{Name: "cas", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "class", Type: rel.KindString},
		rel.Attribute{Name: "disease", Type: rel.KindString},
		rel.Attribute{Name: "efficacy", Type: rel.KindString},
	))
	truth := map[string]graph.VertexID{}
	for i := 0; i < n; i++ {
		cas := fmt.Sprintf("CAS-%04d", i)
		name := drugNames[i]
		cl := classes[i%len(classes)]
		di := diseases[i%len(diseases)]
		ef := efficacies[i%len(efficacies)]
		v := b.entity("drug", name)
		b.g.AddEdge(v, "in_class", b.value("class", cl))
		b.g.AddEdge(v, "treats", b.value("disease", di))
		b.g.AddEdge(v, "has_efficacy", b.value("efficacy", ef))
		drug.InsertVals(rel.S(cas), rel.S(name), rel.S(cl), rel.S(di), rel.S(ef))
		truth[cas] = v
	}
	// Entity-entity relations: interaction edges make the graph more than
	// a tree and let guided selection prove its worth against wandering.
	drugVerts := b.g.VerticesOfType("drug")
	for i, v := range drugVerts {
		if i%2 == 0 && len(drugVerts) > 1 {
			b.g.AddEdge(v, "interacts_with", drugVerts[(i+len(diseases))%len(drugVerts)])
		}
	}

	// interact(cas1, cas2, type): −1 marks a conflict. Half the conflicts
	// are between drugs for the same disease (the q1 answers).
	interact := rel.NewRelation(rel.NewSchema("interact", "",
		rel.Attribute{Name: "cas1", Type: rel.KindString},
		rel.Attribute{Name: "cas2", Type: rel.KindString},
		rel.Attribute{Name: "type", Type: rel.KindInt},
	))
	for i := 0; i < n; i++ {
		a := fmt.Sprintf("CAS-%04d", i)
		sameDisease := fmt.Sprintf("CAS-%04d", (i+len(diseases))%n)
		other := fmt.Sprintf("CAS-%04d", (i+1)%n)
		interact.InsertVals(rel.S(a), rel.S(sameDisease), rel.I(-1))
		ity := int64(1)
		if b.rng.Float64() < 0.2 {
			ity = -1
		}
		interact.InsertVals(rel.S(a), rel.S(other), rel.I(ity))
	}

	b.background(4*n, "symptom")

	return &Collection{
		Name:    "Drugs",
		Rels:    map[string]*rel.Relation{"drug": drug, "interact": interact},
		MainRel: "drug",
		G:       b.g,
		Truth:   map[string]map[string]graph.VertexID{"drug": truth},
		Recoverable: map[string][]string{
			"drug": {"class", "disease", "efficacy"},
		},
		TypeKeywords: map[string][]string{
			"drug": {"class", "disease", "efficacy"},
		},
	}
}

// FakeNews generates the FakeNews collection: a fakenews relation of
// authors and a topicKG-like graph where authors reach topics only
// through the articles they wrote.
func FakeNews(cfg Config) *Collection {
	cfg = cfg.withDefaults(60)
	b := newBuilder(cfg.Seed + 2)
	n := cfg.Entities

	authors := pool("author", n)
	countries := pool("country", 8)
	languages := pool("language", 6)
	topics := pool("topic", scaled(n, 8, 8))
	keywords := pool("keyword", scaled(n, 4, 16))

	// topic -covers-> keyword (two each).
	for i, tp := range topics {
		b.g.AddEdge(b.value("topic", tp), "covers", b.value("keyword", keywords[(2*i)%len(keywords)]))
		b.g.AddEdge(b.value("topic", tp), "covers", b.value("keyword", keywords[(2*i+1)%len(keywords)]))
	}

	fakenews := rel.NewRelation(rel.NewSchema("fakenews", "author",
		rel.Attribute{Name: "author", Type: rel.KindString},
		rel.Attribute{Name: "country", Type: rel.KindString},
		rel.Attribute{Name: "language", Type: rel.KindString},
		rel.Attribute{Name: "topic", Type: rel.KindString},
	))
	truth := map[string]graph.VertexID{}
	for i := 0; i < n; i++ {
		name := authors[i%len(authors)]
		if i >= len(authors) {
			name = fmt.Sprintf("%s %d", name, i)
		}
		co := countries[i%len(countries)]
		la := languages[i%len(languages)]
		tp := topics[i%len(topics)]
		v := b.entity("author", name)
		b.g.AddEdge(v, "based_in", b.value("country", co))
		// Two articles per author, each about the author's topic, each
		// mentioning covered and uncovered keywords (noise).
		for a := 0; a < 2; a++ {
			art := b.entity("article", fmt.Sprintf("story %03d-%d", i, a))
			b.g.AddEdge(v, "wrote", art)
			b.g.AddEdge(art, "about", b.value("topic", tp))
			b.g.AddEdge(art, "mentions", b.value("keyword", pick(b.rng, keywords)))
		}
		// The author column holds the author name, as in the Kaggle
		// source — it is both the key and the lexical bridge to the graph.
		fakenews.InsertVals(rel.S(name), rel.S(co), rel.S(la), rel.S(tp))
		truth[name] = v
	}
	authorVerts := b.g.VerticesOfType("author")
	for i, v := range authorVerts {
		if i%2 == 0 && len(authorVerts) > 1 {
			b.g.AddEdge(v, "follows", authorVerts[(i+3)%len(authorVerts)])
		}
	}

	b.background(4*n, "keyword")

	return &Collection{
		Name:    "FakeNews",
		Rels:    map[string]*rel.Relation{"fakenews": fakenews},
		MainRel: "fakenews",
		G:       b.g,
		Truth:   map[string]map[string]graph.VertexID{"fakenews": truth},
		Recoverable: map[string][]string{
			"fakenews": {"country", "topic"},
		},
		TypeKeywords: map[string][]string{
			"author": {"country", "topic"},
		},
	}
}

// Movie generates the Movie collection (IMDB relations + LinkedMDB-like
// graph): movies with directors, genres and casts; actors' birthplaces
// provide distractor paths ending at city/country values.
func Movie(cfg Config) *Collection {
	cfg = cfg.withDefaults(80)
	b := newBuilder(cfg.Seed + 3)
	n := cfg.Entities

	directors := pool("director", scaled(n, 8, 8))
	genres := pool("genre", 8)
	actors := pool("actor", scaled(n, 4, 12))
	cities := pool("city", 8)

	// Directors' cities back the 2-hop recoverable "city" attribute;
	// a minority of actors also have birthplaces — same end type through a
	// different pattern, but with lower coverage, which is exactly the
	// incompleteness real knowledge graphs show and what the ranking
	// function's first term exploits.
	for i, a := range actors {
		if i%3 == 0 {
			b.g.AddEdge(b.value("actor", a), "born_in", b.value("city", cities[(i+3)%len(cities)]))
		}
	}
	for i, d := range directors {
		b.g.AddEdge(b.value("director", d), "born_in", b.value("city", cities[i%len(cities)]))
	}

	movie := rel.NewRelation(rel.NewSchema("movie", "mid",
		rel.Attribute{Name: "mid", Type: rel.KindString},
		rel.Attribute{Name: "title", Type: rel.KindString},
		rel.Attribute{Name: "year", Type: rel.KindInt},
		rel.Attribute{Name: "director", Type: rel.KindString},
		rel.Attribute{Name: "genre", Type: rel.KindString},
		rel.Attribute{Name: "city", Type: rel.KindString},
	))
	truth := map[string]graph.VertexID{}
	for i := 0; i < n; i++ {
		mid := fmt.Sprintf("m%04d", i)
		title := fmt.Sprintf("picture %03d", i)
		diIdx := i % len(directors)
		di := directors[diIdx]
		ge := genres[i%len(genres)]
		ci := cities[diIdx%len(cities)] // director's city
		v := b.entity("movie", title)
		b.g.AddEdge(v, "directed_by", b.value("director", di))
		b.g.AddEdge(v, "has_genre", b.value("genre", ge))
		b.g.AddEdge(v, "stars", b.value("actor", actors[i%len(actors)]))
		b.g.AddEdge(v, "stars", b.value("actor", actors[(i+5)%len(actors)]))
		movie.InsertVals(rel.S(mid), rel.S(title), rel.I(int64(1950+i%70)), rel.S(di), rel.S(ge), rel.S(ci))
		truth[mid] = v
	}
	movieVerts := b.g.VerticesOfType("movie")
	for i, v := range movieVerts {
		if i%3 == 0 && i+1 < len(movieVerts) {
			b.g.AddEdge(v, "sequel_of", movieVerts[i+1])
		}
	}

	b.background(4*n, "city")

	return &Collection{
		Name:    "Movie",
		Rels:    map[string]*rel.Relation{"movie": movie},
		MainRel: "movie",
		G:       b.g,
		Truth:   map[string]map[string]graph.VertexID{"movie": truth},
		Recoverable: map[string][]string{
			"movie": {"director", "genre", "city"},
		},
		TypeKeywords: map[string][]string{
			"movie": {"director", "genre", "city"},
		},
	}
}

// MovKB generates the MovKB collection (IMDB relations + YAGO3-like
// graph): the recoverable country attribute competes with a same-type
// distractor (actors' citizenships reach country vertices through a
// different pattern).
func MovKB(cfg Config) *Collection {
	cfg = cfg.withDefaults(80)
	b := newBuilder(cfg.Seed + 4)
	n := cfg.Entities

	countries := pool("country", 8)
	languages := pool("language", 8)
	studios := pool("company", scaled(n, 8, 8))
	actors := pool("actor", scaled(n, 4, 12))

	// Country is only reachable through the producing studio (2 hops), so
	// quality must rise with k — the Fig 5(c) shape. Actors' citizenships
	// are same-type distractor ends.
	for i, s := range studios {
		b.g.AddEdge(b.value("studio", s), "based_in", b.value("country", countries[i%len(countries)]))
	}
	// A minority of actors carry citizenship — a lower-coverage distractor
	// pattern to the same end type (KG incompleteness).
	for i, a := range actors {
		if i%3 == 0 {
			b.g.AddEdge(b.value("actor", a), "citizen_of", b.value("country", countries[(i+4)%len(countries)]))
		}
	}

	movie := rel.NewRelation(rel.NewSchema("movie", "mid",
		rel.Attribute{Name: "mid", Type: rel.KindString},
		rel.Attribute{Name: "title", Type: rel.KindString},
		rel.Attribute{Name: "studio", Type: rel.KindString},
		rel.Attribute{Name: "country", Type: rel.KindString},
		rel.Attribute{Name: "language", Type: rel.KindString},
	))
	truth := map[string]graph.VertexID{}
	for i := 0; i < n; i++ {
		mid := fmt.Sprintf("y%04d", i)
		title := fmt.Sprintf("feature %03d", i)
		stIdx := i % len(studios)
		st := studios[stIdx]
		co := countries[stIdx%len(countries)] // studio's country
		la := languages[i%len(languages)]
		v := b.entity("movie", title)
		b.g.AddEdge(b.value("studio", st), "produced", v)
		b.g.AddEdge(v, "in_language", b.value("language", la))
		b.g.AddEdge(v, "stars", b.value("actor", actors[i%len(actors)]))
		movie.InsertVals(rel.S(mid), rel.S(title), rel.S(st), rel.S(co), rel.S(la))
		truth[mid] = v
	}
	movieVerts := b.g.VerticesOfType("movie")
	for i, v := range movieVerts {
		if i%3 == 1 && i+2 < len(movieVerts) {
			b.g.AddEdge(v, "remake_of", movieVerts[i+2])
		}
	}

	b.background(4*n, "language")

	return &Collection{
		Name:    "MovKB",
		Rels:    map[string]*rel.Relation{"movie": movie},
		MainRel: "movie",
		G:       b.g,
		Truth:   map[string]map[string]graph.VertexID{"movie": truth},
		Recoverable: map[string][]string{
			"movie": {"studio", "country", "language"},
		},
		TypeKeywords: map[string][]string{
			"movie": {"studio", "country", "language"},
		},
	}
}

// Paper generates the Paper collection (DBLP relations + RKBExplorer-like
// graph): affiliation is only reachable through a 2-hop path via authors,
// exercising multi-hop extraction like the paper's DBLP example
// ("volume" and "affiliation" dropped and recovered).
func Paper(cfg Config) *Collection {
	cfg = cfg.withDefaults(80)
	b := newBuilder(cfg.Seed + 5)
	n := cfg.Entities

	venues := pool("venue", scaled(n, 10, 8))
	affiliations := pool("affiliation", scaled(n, 10, 8))
	authors := pool("author", scaled(n, 4, 16))
	volumes := make([]string, scaled(n, 8, 10))
	for i := range volumes {
		volumes[i] = fmt.Sprintf("vol %d", 7*i+5)
	}

	for i, a := range authors {
		b.g.AddEdge(b.value("researcher", a), "affiliated_with",
			b.value("affiliation", affiliations[i%len(affiliations)]))
	}

	dblp := rel.NewRelation(rel.NewSchema("dblp", "pid",
		rel.Attribute{Name: "pid", Type: rel.KindString},
		rel.Attribute{Name: "title", Type: rel.KindString},
		rel.Attribute{Name: "venue", Type: rel.KindString},
		rel.Attribute{Name: "volume", Type: rel.KindString},
		rel.Attribute{Name: "affiliation", Type: rel.KindString},
	))
	truth := map[string]graph.VertexID{}
	for i := 0; i < n; i++ {
		pid := fmt.Sprintf("p%04d", i)
		title := fmt.Sprintf("study %03d", i)
		ve := venues[i%len(venues)]
		vo := volumes[i%len(volumes)]
		auIdx := i % len(authors)
		af := affiliations[auIdx%len(affiliations)]
		v := b.entity("paper", title)
		b.g.AddEdge(v, "published_in", b.value("venue", ve))
		b.g.AddEdge(v, "in_volume", b.value("volume", vo))
		b.g.AddEdge(v, "authored_by", b.value("researcher", authors[auIdx]))
		dblp.InsertVals(rel.S(pid), rel.S(title), rel.S(ve), rel.S(vo), rel.S(af))
		truth[pid] = v
	}
	// Citations give [cites, published_in] same-end-type distractor
	// patterns (the cited paper's venue, not this paper's).
	paperVerts := b.g.VerticesOfType("paper")
	for i, v := range paperVerts {
		if i%2 == 0 && i+1 < len(paperVerts) {
			b.g.AddEdge(v, "cites", paperVerts[i+1])
		}
		if i%4 == 0 && i+3 < len(paperVerts) {
			b.g.AddEdge(v, "cites", paperVerts[i+3])
		}
	}
	cities := pool("city", 8)
	for i, ve := range venues {
		b.g.AddEdge(b.value("venue", ve), "held_in", b.value("city", cities[i%len(cities)]))
	}

	b.background(4*n, "affiliation")

	return &Collection{
		Name:    "Paper",
		Rels:    map[string]*rel.Relation{"dblp": dblp},
		MainRel: "dblp",
		G:       b.g,
		Truth:   map[string]map[string]graph.VertexID{"dblp": truth},
		Recoverable: map[string][]string{
			"dblp": {"venue", "volume", "affiliation"},
		},
		TypeKeywords: map[string][]string{
			"paper": {"venue", "volume", "affiliation"},
		},
	}
}

// Celebrity generates the Celebrity collection (DBpedia relations +
// YAGO3-like graph): athletes and politicians with teams, occupations and
// a 2-hop country through the birth city.
func Celebrity(cfg Config) *Collection {
	cfg = cfg.withDefaults(60)
	b := newBuilder(cfg.Seed + 6)
	n := cfg.Entities

	teams := pool("team", scaled(n, 8, 8))
	occupations := pool("occupation", 8)
	cities := pool("city", scaled(n, 12, 8))
	countries := pool("country", 8)

	for i, c := range cities {
		b.g.AddEdge(b.value("city", c), "located_in", b.value("country", countries[i%len(countries)]))
	}
	for i, tm := range teams {
		b.g.AddEdge(b.value("team", tm), "based_in", b.value("city", cities[(i+2)%len(cities)]))
	}

	celebrity := rel.NewRelation(rel.NewSchema("celebrity", "cid",
		rel.Attribute{Name: "cid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "occupation", Type: rel.KindString},
		rel.Attribute{Name: "team", Type: rel.KindString},
		rel.Attribute{Name: "country", Type: rel.KindString},
	))
	truth := map[string]graph.VertexID{}
	for i := 0; i < n; i++ {
		cid := fmt.Sprintf("c%04d", i)
		name := fmt.Sprintf("figure %03d", i)
		oc := occupations[i%len(occupations)]
		tm := teams[i%len(teams)]
		ciIdx := i % len(cities)
		co := countries[ciIdx%len(countries)]
		v := b.entity("person", name)
		b.g.AddEdge(v, "occupation_is", b.value("occupation", oc))
		b.g.AddEdge(v, "plays_for", b.value("team", tm))
		b.g.AddEdge(v, "born_in", b.value("city", cities[ciIdx]))
		celebrity.InsertVals(rel.S(cid), rel.S(name), rel.S(oc), rel.S(tm), rel.S(co))
		truth[cid] = v
	}
	personVerts := b.g.VerticesOfType("person")
	for i, v := range personVerts {
		if i%2 == 1 && i+1 < len(personVerts) {
			b.g.AddEdge(v, "teammate_of", personVerts[i+1])
		}
	}

	b.background(4*n, "city")

	return &Collection{
		Name:    "Celebrity",
		Rels:    map[string]*rel.Relation{"celebrity": celebrity},
		MainRel: "celebrity",
		G:       b.g,
		Truth:   map[string]map[string]graph.VertexID{"celebrity": truth},
		Recoverable: map[string][]string{
			"celebrity": {"occupation", "team", "country"},
		},
		TypeKeywords: map[string][]string{
			"person": {"occupation", "team", "country"},
		},
	}
}
