package dataset

import (
	"testing"

	"semjoin/internal/graph"
)

func TestAllCollectionsGenerate(t *testing.T) {
	for _, g := range Generators() {
		g := g
		t.Run(g.Name, func(t *testing.T) {
			c := g.Gen(Config{})
			if c.Name != g.Name {
				t.Fatalf("name = %q", c.Name)
			}
			st := c.Stats()
			if st.Tuples == 0 || st.Vertices == 0 || st.Edges == 0 {
				t.Fatalf("degenerate stats: %+v", st)
			}
			if c.Main() == nil {
				t.Fatal("no main relation")
			}
			if len(c.Recoverable[c.MainRel]) == 0 {
				t.Fatal("no recoverable attributes")
			}
		})
	}
}

func TestTruthAlignment(t *testing.T) {
	for _, g := range Generators() {
		c := g.Gen(Config{})
		truth := c.Truth[c.MainRel]
		main := c.Main()
		if len(truth) != main.Len() {
			t.Fatalf("%s: truth size %d vs %d tuples", c.Name, len(truth), main.Len())
		}
		keyCol := main.Schema.KeyCol()
		for _, tup := range main.Tuples {
			v, ok := truth[tup[keyCol].String()]
			if !ok {
				t.Fatalf("%s: tuple %v unaligned", c.Name, tup[keyCol])
			}
			if !c.G.Live(v) {
				t.Fatalf("%s: aligned vertex %d dead", c.Name, v)
			}
		}
	}
}

// TestRecoverableWithinK verifies the structural invariant the Exp-2
// protocol relies on: every dropped value is the label of some vertex
// reachable from the entity within k=3 undirected hops.
func TestRecoverableWithinK(t *testing.T) {
	for _, g := range Generators() {
		c := g.Gen(Config{})
		main := c.Main()
		keyCol := main.Schema.KeyCol()
		for _, attr := range c.Recoverable[c.MainRel] {
			col := main.Schema.Col(attr)
			missing := 0
			for _, tup := range main.Tuples {
				want := tup[col].String()
				v := c.Truth[c.MainRel][tup[keyCol].String()]
				found := false
				c.G.SimplePaths(v, 3, func(p graph.Path) {
					if !found && c.G.Label(p.End()) == want {
						found = true
					}
				})
				if !found {
					missing++
				}
			}
			if missing > 0 {
				t.Errorf("%s.%s: %d/%d values unreachable within 3 hops",
					c.Name, attr, missing, main.Len())
			}
		}
	}
}

func TestDrop(t *testing.T) {
	c := Paper(Config{})
	reduced, truth := c.Drop("dblp", []string{"volume", "affiliation"})
	if reduced.Schema.Has("volume") || reduced.Schema.Has("affiliation") {
		t.Fatal("dropped attributes still present")
	}
	if !reduced.Schema.Has("pid") || !reduced.Schema.Has("venue") {
		t.Fatal("kept attributes missing")
	}
	if reduced.Len() != c.Main().Len() {
		t.Fatal("row count changed")
	}
	if len(truth["volume"]) != c.Main().Len() {
		t.Fatal("ground truth incomplete")
	}
	// Ground truth values round-trip.
	orig := c.Main()
	keyCol := orig.Schema.KeyCol()
	volCol := orig.Schema.Col("volume")
	for _, tup := range orig.Tuples {
		if truth["volume"][tup[keyCol].String()] != tup[volCol].String() {
			t.Fatal("ground truth mismatch")
		}
	}
}

func TestDropUnknownAttrPanics(t *testing.T) {
	c := Movie(Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Drop("movie", []string{"nosuch"})
}

func TestDeterminism(t *testing.T) {
	a := Drugs(Config{Seed: 9})
	b := Drugs(Config{Seed: 9})
	if a.Stats() != b.Stats() {
		t.Fatal("same seed must reproduce stats")
	}
	sa, sb := a.Main(), b.Main()
	for i := range sa.Tuples {
		for j := range sa.Tuples[i] {
			if !sa.Tuples[i][j].Equal(sb.Tuples[i][j]) && !(sa.Tuples[i][j].IsNull() && sb.Tuples[i][j].IsNull()) {
				t.Fatal("same seed must reproduce tuples")
			}
		}
	}
}

func TestScaling(t *testing.T) {
	small := MovKB(Config{Entities: 20})
	big := MovKB(Config{Entities: 200})
	if big.Main().Len() != 200 || small.Main().Len() != 20 {
		t.Fatalf("scaling broken: %d / %d", small.Main().Len(), big.Main().Len())
	}
	if big.Stats().Edges <= small.Stats().Edges {
		t.Fatal("edges should grow with entities")
	}
}

func TestOracle(t *testing.T) {
	c := Celebrity(Config{})
	m := c.Oracle("celebrity").Match(c.Main(), c.G)
	if len(m) != c.Main().Len() {
		t.Fatalf("oracle matched %d of %d", len(m), c.Main().Len())
	}
}

func TestByName(t *testing.T) {
	if ByName("Drugs") == nil || ByName("nosuch") != nil {
		t.Fatal("ByName lookup broken")
	}
}

func TestDrugsInteractHasConflicts(t *testing.T) {
	c := Drugs(Config{})
	interact := c.Rels["interact"]
	conflicts := 0
	for _, tup := range interact.Tuples {
		if interact.Get(tup, "type").Int() == -1 {
			conflicts++
		}
	}
	if conflicts == 0 {
		t.Fatal("q1 needs conflicting drug pairs")
	}
}

func TestDrugsDistractorPathsExist(t *testing.T) {
	// The q1 phenomenon: drugs reach diseases they do NOT treat via
	// has_efficacy/relieves/^has_symptom.
	c := Drugs(Config{})
	main := c.Main()
	keyCol := main.Schema.KeyCol()
	disCol := main.Schema.Col("disease")
	distractors := 0
	for _, tup := range main.Tuples[:8] {
		v := c.Truth["drug"][tup[keyCol].String()]
		treated := tup[disCol].String()
		c.G.SimplePaths(v, 3, func(p graph.Path) {
			if c.G.Type(p.End()) == "disease" && c.G.Label(p.End()) != treated {
				distractors++
			}
		})
	}
	if distractors == 0 {
		t.Fatal("expected distractor paths to untreated diseases")
	}
}
