package core

import (
	"fmt"
	"sort"
	"time"

	"semjoin/internal/embed"
	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/mat"
	"semjoin/internal/rel"
)

// Extract is phase II of RExt — Algorithm 1, "attribute extraction via
// pattern matching". For each match (ti, vi) in f(S,G) it reuses (or
// computes) the selected paths Π from vi, matches them against every
// pattern cluster Pj, and assigns θj = L(ρ.vl) of the conforming path
// whose end label maximises cos(x_{L(ρ.vl)}, x_{Aj}); "null" if no
// pattern in Pj matches. The extracted relation DG has schema
// RG(vid, A1, ..., Am). Calling it before a successful Discover (or
// without a scheme via ExtractWithScheme) is an ordering error,
// reported rather than panicked.
func (e *Extractor) Extract() (*rel.Relation, error) {
	if e.initErr != nil {
		return nil, e.initErr
	}
	if e.scheme == nil {
		return nil, fmt.Errorf("core: Extract before Discover")
	}
	stageStart := time.Now()
	defer func() { e.timings.Extraction = time.Since(stageStart).Seconds() }()
	dg := rel.NewRelation(e.scheme.Schema)
	seen := map[graph.VertexID]bool{}
	var order []graph.VertexID
	for _, m := range e.matches {
		if !seen[m.Vertex] && e.g.Live(m.Vertex) {
			seen[m.Vertex] = true
			order = append(order, m.Vertex)
		}
	}
	rows := make([]rel.Tuple, len(order))
	e.parallelFor(len(order), func(i int) {
		rows[i] = e.extractTuple(order[i])
	})
	dg.Tuples = rows
	e.result = dg
	return dg, nil
}

// extractTuple computes one row of DG for entity vertex v.
func (e *Extractor) extractTuple(v graph.VertexID) rel.Tuple {
	paths := e.pathsFor(v)
	row := make(rel.Tuple, 1+len(e.scheme.Clusters))
	row[0] = rel.I(int64(v))
	for j, pc := range e.scheme.Clusters {
		row[1+j] = e.extractValue(paths, pc)
	}
	return row
}

// extractValue is the Extract function of Algorithm 1 for one cluster.
func (e *Extractor) extractValue(paths []graph.Path, pc PatternCluster) rel.Value {
	best := rel.Null
	bestScore := -2.0
	for _, p := range paths {
		if !pc.patKeys[patternKeyOf(p)] {
			continue
		}
		label := e.g.Label(p.End())
		score := mat.Cosine(e.valueVec(label), pc.attrVec)
		if score > bestScore {
			bestScore = score
			best = rel.S(label)
		}
	}
	return best
}

// ClearPathCache discards all cached selected paths (ablation 6 of
// DESIGN.md: Algorithm 1 without the discovery-time cache re-selects
// paths for every match).
func (e *Extractor) ClearPathCache() {
	e.mu.Lock()
	e.pathCache = make(map[graph.VertexID][]graph.Path)
	e.mu.Unlock()
}

// pathsFor returns the cached selected paths for v, computing them on
// demand (Algorithm 1 "caches and reuses the paths found during pattern
// discovery").
func (e *Extractor) pathsFor(v graph.VertexID) []graph.Path {
	e.mu.Lock()
	paths, ok := e.pathCache[v]
	e.mu.Unlock()
	if ok {
		return paths
	}
	paths = e.selectPaths(v)
	e.mu.Lock()
	e.pathCache[v] = paths
	e.mu.Unlock()
	return paths
}

// ExtractWithScheme runs Algorithm 1 against a previously discovered
// scheme — e.g. one computed on an earlier graph version or shipped with a
// catalog — skipping pattern discovery entirely.
func (e *Extractor) ExtractWithScheme(s *rel.Relation, scheme *Scheme, matches []her.Match) (*rel.Relation, error) {
	e.s = s
	e.scheme = scheme
	e.matches = matches
	e.vertexTuple = make(map[graph.VertexID]int, len(matches))
	for _, m := range matches {
		if _, ok := e.vertexTuple[m.Vertex]; !ok {
			e.vertexTuple[m.Vertex] = m.TupleIdx
		}
	}
	return e.Extract()
}

// TypeExtraction is the result of extraction without reference tuples
// (§III-A "Extraction without reference tuples"): for one vertex type τ,
// the reference schema Rτ and instance gτ(G).
type TypeExtraction struct {
	Type     string
	Scheme   *Scheme
	Relation *rel.Relation // gτ(G), schema Rτ(vid, A1, ..., Am)
}

// ExtractForType runs RExt with graph G as sole input for the vertices of
// one type τ. The second ranking term vanishes (there is no S); keywords
// come from Aτ (user-provided or profiled from the graph).
func ExtractForType(g *graph.Graph, models Models, typ string, keywords []string, cfg Config) (*TypeExtraction, error) {
	cfg.Keywords = keywords
	ex := NewExtractor(g, models, cfg)
	ids := g.VerticesOfType(typ)
	matches := make([]her.Match, len(ids))
	for i, id := range ids {
		matches[i] = her.Match{TupleIdx: -1, TID: rel.Null, Vertex: id, Score: 1}
	}
	if err := ex.Discover(nil, matches); err != nil {
		return nil, err
	}
	dg, err := ex.Extract()
	if err != nil {
		return nil, err
	}

	// Rτ carries the entity's own label alongside the extracted
	// attributes: the pairwise-ER step of heuristic joins needs identity
	// tokens to align query tuples with gτ rows (§IV-B step 2).
	attrs := append([]rel.Attribute{
		{Name: "vid", Type: rel.KindInt},
		{Name: "label", Type: rel.KindString},
	}, dg.Schema.Attrs[1:]...)
	labeled := rel.NewRelation(rel.NewSchema("g_"+typ, "vid", attrs...))
	vidCol := dg.Schema.Col("vid")
	for _, t := range dg.Tuples {
		nt := make(rel.Tuple, 0, len(t)+1)
		nt = append(nt, t[vidCol], rel.S(g.Label(graph.VertexID(t[vidCol].Int()))))
		nt = append(nt, t[1:]...)
		labeled.Insert(nt)
	}
	return &TypeExtraction{Type: typ, Scheme: ex.scheme, Relation: labeled}, nil
}

// FrequentLabels returns the topN most frequent vertex-label word tokens
// per vertex type plus all edge labels — the graph-derived half of the
// reference keyword lists of §II-B ("selected vertex and edge labels in
// G"), complementing query-log profiling (gsql.CollectKeywords).
func FrequentLabels(g *graph.Graph, topN int) map[string][]string {
	out := map[string][]string{}
	for _, typ := range g.Types() {
		counts := map[string]int{}
		for _, id := range g.VerticesOfType(typ) {
			for _, tok := range embed.Tokenize(g.Label(id)) {
				counts[tok]++
			}
		}
		type tc struct {
			t string
			n int
		}
		var list []tc
		for tok, n := range counts {
			list = append(list, tc{tok, n})
		}
		sort.Slice(list, func(i, j int) bool {
			if list[i].n != list[j].n {
				return list[i].n > list[j].n
			}
			return list[i].t < list[j].t
		})
		if len(list) > topN {
			list = list[:topN]
		}
		toks := make([]string, len(list))
		for i, e := range list {
			toks[i] = e.t
		}
		out[typ] = toks
	}
	out[""] = g.EdgeLabels()
	return out
}

// ProfileGraph runs type extraction for every vertex type of a typed
// graph, producing the reference relations gτ(G) that heuristic joins and
// reference keyword lists rely on (§IV). Types with fewer than minVertices
// live vertices are skipped. keywordsByType supplies Aτ; types without an
// entry are skipped too.
func ProfileGraph(g *graph.Graph, models Models, keywordsByType map[string][]string, minVertices int, cfg Config) map[string]*TypeExtraction {
	out := map[string]*TypeExtraction{}
	types := g.Types()
	sort.Strings(types)
	for _, typ := range types {
		kws, ok := keywordsByType[typ]
		if !ok || len(kws) == 0 {
			continue
		}
		if len(g.VerticesOfType(typ)) < minVertices {
			continue
		}
		te, err := ExtractForType(g, models, typ, kws, cfg)
		if err != nil {
			continue
		}
		out[typ] = te
	}
	return out
}
