package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

func glTestRel(n int) *rel.Relation {
	schema := rel.NewSchema("gl", "",
		rel.Attribute{Name: "vid1", Type: rel.KindInt},
		rel.Attribute{Name: "vid2", Type: rel.KindInt},
	)
	r := rel.NewRelation(schema)
	for i := 0; i < n; i++ {
		r.InsertVals(rel.I(int64(i)), rel.I(int64(i+1)))
	}
	return r
}

func TestGLCacheLRUEviction(t *testing.T) {
	// One shard would make capacity exact; with 16 shards a total cap of
	// 16 gives one slot per shard, so inserting two keys landing in the
	// same shard must evict the older.
	c := newGLCacheCap(16)
	ctx := context.Background()
	computes := 0
	get := func(key string) {
		_, _, err := c.getOrCompute(ctx, key, func() (*rel.Relation, error) {
			computes++
			return glTestRel(2), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Insert far more keys than capacity: the resident count must stay
	// at or below 16 regardless of shard skew.
	for i := 0; i < 100; i++ {
		get(fmt.Sprintf("key-%d", i))
	}
	if n, _ := c.stats(); n > 16 {
		t.Fatalf("resident entries = %d, want <= 16", n)
	}
	if got := c.resident.Load(); got > 16 {
		t.Fatalf("resident gauge = %d, want <= 16", got)
	}

	// An entry touched on every round survives while cold keys churn
	// past it (LRU, not FIFO): re-getting it must not recompute. Total
	// cap 32 = two slots per shard, room for the hot key plus churn.
	c2 := newGLCacheCap(32)
	gets := 0
	hot := func() {
		_, hit, err := c2.getOrCompute(ctx, "hot", func() (*rel.Relation, error) {
			gets++
			return glTestRel(1), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = hit
	}
	hot()
	sh := c2.shard("hot")
	for i := 0; gets == 1 && i < 200; i++ {
		// Cold keys in the hot key's shard push toward its eviction; the
		// refresh below must keep rescuing it.
		key := fmt.Sprintf("cold-%d", i)
		if c2.shard(key) == sh {
			_, _, _ = c2.getOrCompute(ctx, key, func() (*rel.Relation, error) {
				return glTestRel(1), nil
			})
		}
		hot()
	}
	if gets != 1 {
		t.Fatalf("hot key recomputed %d times; LRU should have kept it", gets)
	}
}

func TestGLCacheObsCounters(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	c := newGLCacheCap(0) // unbounded: no evictions in this test
	compute := func() (*rel.Relation, error) { return glTestRel(3), nil }
	if _, hit, _ := c.getOrCompute(ctx, "a", compute); hit {
		t.Fatal("first get should miss")
	}
	if _, hit, _ := c.getOrCompute(ctx, "a", compute); !hit {
		t.Fatal("second get should hit")
	}
	vals := reg.CounterValues()
	if vals["core_gl_misses_total"] != 1 || vals["core_gl_hits_total"] != 1 {
		t.Fatalf("counters = %v", vals)
	}
	if reg.Gauge("core_gl_entries").Value() != 1 {
		t.Fatalf("entries gauge = %d", reg.Gauge("core_gl_entries").Value())
	}
	if reg.Gauge("core_gl_tuples").Value() != 3 {
		t.Fatalf("tuples gauge = %d", reg.Gauge("core_gl_tuples").Value())
	}
}

func TestGLCacheSingleflightCoalesce(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	c := newGLCacheCap(0)
	started := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, _ = c.getOrCompute(ctx, "k", func() (*rel.Relation, error) {
			close(started)
			<-release
			return glTestRel(1), nil
		})
	}()
	<-started
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, hit, _ := c.getOrCompute(ctx, "k", func() (*rel.Relation, error) {
			t.Error("coalesced caller must not recompute")
			return nil, nil
		})
		if !hit {
			t.Error("coalesced caller should report hit")
		}
	}()
	// The coalesce counter is incremented before the second caller
	// blocks on the in-flight entry; releasing only after it ticks
	// guarantees the caller really rode along.
	for reg.CounterValues()["core_gl_coalesces_total"] == 0 {
		runtime.Gosched()
	}
	close(release)
	<-done
	wg.Wait()
	if n := reg.CounterValues()["core_gl_coalesces_total"]; n != 1 {
		t.Fatalf("coalesces = %d, want 1", n)
	}
}

func TestGLCacheErrorNotCached(t *testing.T) {
	c := newGLCacheCap(16)
	ctx := context.Background()
	calls := 0
	fail := func() (*rel.Relation, error) { calls++; return nil, fmt.Errorf("boom") }
	if _, _, err := c.getOrCompute(ctx, "e", fail); err == nil {
		t.Fatal("want error")
	}
	if _, _, err := c.getOrCompute(ctx, "e", fail); err == nil {
		t.Fatal("want error on retry")
	}
	if calls != 2 {
		t.Fatalf("compute calls = %d, want 2 (errors must not be cached)", calls)
	}
	if n, _ := c.stats(); n != 0 {
		t.Fatalf("resident after errors = %d, want 0", n)
	}
}

func TestGLCacheSetCapShrinks(t *testing.T) {
	c := newGLCacheCap(0)
	ctx := context.Background()
	for i := 0; i < 64; i++ {
		_, _, _ = c.getOrCompute(ctx, fmt.Sprintf("k%d", i), func() (*rel.Relation, error) {
			return glTestRel(1), nil
		})
	}
	if n, _ := c.stats(); n != 64 {
		t.Fatalf("resident = %d, want 64", n)
	}
	c.setCap(16)
	if n, _ := c.stats(); n > 16 {
		t.Fatalf("resident after shrink = %d, want <= 16", n)
	}
}
