// Package core implements the paper's primary contribution: the RExt
// relation-extraction scheme (§III-A), its incremental variant IncExt
// (§III-B), and the semantic joins built on them (§II, §IV) — enrichment
// joins, link joins, their static/dynamic implementations over
// materialised extractions, and the heuristic join for queries that are
// not well-behaved.
package core

import (
	"strings"

	"semjoin/internal/graph"
)

// PathPattern is the pattern pρ of a path ρ: the list of direction-marked
// edge labels along it (§III "Path Pattern and Matching").
type PathPattern []string

// PatternOf extracts the pattern of a path.
func PatternOf(p graph.Path) PathPattern {
	return PathPattern(append([]string(nil), p.EdgeLabels...))
}

// Key returns a canonical string form usable as a map key.
func (p PathPattern) Key() string { return strings.Join(p, "\x1f") }

// String renders the pattern as l1/l2/....
func (p PathPattern) String() string { return strings.Join(p, "/") }

// Matches implements M(ρ, p): true iff the path's pattern equals p. It
// runs in O(min(len(pρ), len(p))) time as the paper notes, short-circuiting
// on the first differing label.
func (p PathPattern) Matches(ρ graph.Path) bool {
	if len(ρ.EdgeLabels) != len(p) {
		return false
	}
	for i, l := range p {
		if ρ.EdgeLabels[i] != l {
			return false
		}
	}
	return true
}

// inverseLabel flips the traversal direction of a marked edge label.
func inverseLabel(l string) string {
	if strings.HasPrefix(l, graph.ReverseMark) {
		return l[len(graph.ReverseMark):]
	}
	return graph.ReverseMark + l
}

// patternKeyOf avoids the copy in PatternOf for map-key use.
func patternKeyOf(p graph.Path) string { return strings.Join(p.EdgeLabels, "\x1f") }

// patternFromKey reverses Key.
func patternFromKey(k string) PathPattern {
	if k == "" {
		return nil
	}
	return PathPattern(strings.Split(k, "\x1f"))
}
