package core

import (
	"strings"
	"testing"
	"testing/quick"

	"semjoin/internal/graph"
)

// Property: pattern Key round-trips through patternFromKey for any label
// list free of the separator byte.
func TestPatternKeyRoundTrip(t *testing.T) {
	f := func(labels []string) bool {
		p := make(PathPattern, 0, len(labels))
		for _, l := range labels {
			l = strings.ReplaceAll(l, "\x1f", "_")
			if l == "" {
				l = "x" // edge labels are never empty in a real graph
			}
			p = append(p, l)
		}
		back := patternFromKey(p.Key())
		if len(p) == 0 {
			return len(back) == 0
		}
		if len(back) != len(p) {
			return false
		}
		for i := range p {
			if back[i] != p[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Matches(ρ, p) is true exactly when PatternOf(ρ) equals p.
func TestPatternMatchesConsistency(t *testing.T) {
	f := func(a, b []uint8) bool {
		mk := func(xs []uint8) graph.Path {
			p := graph.Path{Vertices: []graph.VertexID{0}}
			for i, x := range xs {
				p.Vertices = append(p.Vertices, graph.VertexID(i+1))
				p.EdgeLabels = append(p.EdgeLabels, string(rune('a'+x%4)))
			}
			return p
		}
		pa, pb := mk(a), mk(b)
		pat := PatternOf(pa)
		got := pat.Matches(pb)
		want := PatternOf(pb).Key() == pat.Key()
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: inverseLabel is an involution.
func TestInverseLabelInvolution(t *testing.T) {
	f := func(l string) bool {
		if strings.HasPrefix(l, graph.ReverseMark) {
			// Inputs already carrying the mark: the involution still holds
			// starting from the stripped form.
			l = strings.TrimPrefix(l, graph.ReverseMark)
		}
		return inverseLabel(inverseLabel(l)) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
