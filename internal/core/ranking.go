package core

import (
	"sort"

	"semjoin/internal/mat"
	"semjoin/internal/rel"
)

// rankClusters computes the three-term score of §III-A step 4 for every
// refined cluster:
//
//	r(Wi) = |Wi|/|P|
//	      − max_{φ∈[1,kR]} avg_{(vj,L(ρ.vl))∈Wi} cos(x_{L(ρ.vl)}, x_{tj.Aφ})
//	      + max_{ε∈[1,m]}  avg_{(vj,L(ρ.vl))∈Wi} cos(x_{L(ρ.vl)}, x_{Aε})
//
// favouring clusters that match many paths (low null rate), differ from
// attributes already in S (versatile information), and are semantically
// close to a user keyword. The keyword maximising the third term becomes
// the candidate attribute name.
func (e *Extractor) rankClusters(keywords []string) {
	kwVecs := make([]mat.Vector, len(keywords))
	for i, kw := range keywords {
		kwVecs[i] = e.valueVec(kw)
	}
	exVecs := make([]mat.Vector, len(e.cfg.Exemplars))
	for i, ex := range e.cfg.Exemplars {
		exVecs[i] = e.valueVec(ex)
	}
	var attrCols []int
	if e.s != nil {
		for i := range e.s.Schema.Attrs {
			attrCols = append(attrCols, i)
		}
	}
	e.parallelForClusters(func(sc *scoredCluster) {
		if len(sc.w) == 0 {
			sc.term1, sc.term2, sc.term3, sc.score = 0, 0, 0, 0
			return
		}
		sc.term1 = float64(len(sc.w)) / float64(e.totalPaths)
		if e.cfg.DisableTerm1 {
			sc.term1 = 0
		}

		// Term 2: redundancy with existing attributes of S.
		sc.term2 = 0
		if e.s != nil && !e.cfg.DisableTerm2 {
			best := -2.0
			for _, col := range attrCols {
				var sum float64
				for _, w := range sc.w {
					if w.tupleIdx < 0 || w.tupleIdx >= e.s.Len() {
						continue
					}
					val := e.s.Tuples[w.tupleIdx][col]
					if val.IsNull() {
						continue
					}
					sum += mat.Cosine(w.endVec, e.valueVec(val.String()))
				}
				if avg := sum / float64(len(sc.w)); avg > best {
					best = avg
				}
			}
			if best > -2 {
				sc.term2 = best
			}
		}

		// Term 3: closeness to a user keyword; record the argmax keyword
		// and the per-keyword averages for greedy assignment.
		sc.term3, sc.bestKw = -2, ""
		sc.kwAvg = make([]float64, len(kwVecs))
		for ki, kv := range kwVecs {
			var sum float64
			for _, w := range sc.w {
				sum += mat.Cosine(w.endVec, kv)
			}
			avg := sum / float64(len(sc.w))
			sc.kwAvg[ki] = avg
			if avg > sc.term3 {
				sc.term3 = avg
				sc.bestKw = keywords[ki]
			}
		}
		// Exemplar values raise term3 (they exemplify user interest) but
		// cannot name an attribute.
		for _, xv := range exVecs {
			var sum float64
			for _, w := range sc.w {
				sum += mat.Cosine(w.endVec, xv)
			}
			if avg := sum / float64(len(sc.w)); avg > sc.term3 {
				sc.term3 = avg
			}
		}
		if sc.term3 == -2 {
			sc.term3 = 0
		}
		if e.cfg.DisableTerm3 {
			sc.term3 = 0
			for i := range sc.kwAvg {
				sc.kwAvg[i] = 0
			}
		}
		sc.score = sc.term1 - sc.term2 + sc.term3 -
			e.cfg.LengthPenalty*(avgPatternLen(sc)-1)
	})
}

// betterTie breaks exact score ties deterministically: larger W first,
// then shorter patterns (the paper observes that longer-path attributes
// have weaker associations).
func betterTie(a, b *scoredCluster) bool {
	if len(a.w) != len(b.w) {
		return len(a.w) > len(b.w)
	}
	return avgPatternLen(a) < avgPatternLen(b)
}

// ClusterInfo describes one refined pattern cluster for diagnostics and
// for the user-interaction step (it is what a UI would render next to the
// Accept prompt).
type ClusterInfo struct {
	Score, Term1, Term2, Term3 float64
	Keyword                    string
	Patterns                   []string
	Size                       int
	EndLabelCounts             map[string]int
}

// ClusterDiagnostics returns the refined clusters with their ranking
// breakdown, sorted by descending score. Valid after Discover.
func (e *Extractor) ClusterDiagnostics() []ClusterInfo {
	out := make([]ClusterInfo, 0, len(e.clusters))
	for _, sc := range e.clusters {
		info := ClusterInfo{
			Score: sc.score, Term1: sc.term1, Term2: sc.term2, Term3: sc.term3,
			Keyword: sc.bestKw, Size: len(sc.w),
			EndLabelCounts: map[string]int{},
		}
		for k := range sc.patterns {
			info.Patterns = append(info.Patterns, patternFromKey(k).String())
		}
		sort.Strings(info.Patterns)
		for _, w := range sc.w {
			info.EndLabelCounts[w.endLabel]++
		}
		out = append(out, info)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// avgPatternLen is the mean hop count of a cluster's patterns.
func avgPatternLen(sc *scoredCluster) float64 {
	if len(sc.patterns) == 0 {
		return 0
	}
	total := 0
	for k := range sc.patterns {
		total += len(patternFromKey(k))
	}
	return float64(total) / float64(len(sc.patterns))
}

// parallelForClusters applies fn to every cluster concurrently.
func (e *Extractor) parallelForClusters(fn func(*scoredCluster)) {
	e.parallelFor(len(e.clusters), func(i int) { fn(e.clusters[i]) })
}

// selectScheme assembles the extraction scheme RG(vid, A1, ..., Am) by
// greedy (cluster, keyword) assignment: repeatedly take the unassigned
// cluster whose score — with its third term restricted to still-available
// keywords — is highest, and give it that keyword as attribute name. This
// generalises the paper's "pick in rank order, name by the argmax
// keyword" so a high-ranked impostor cannot starve the true cluster of a
// keyword it fits better. The optional Accept callback models the
// interactive vetting of §III-A step 4.
func (e *Extractor) selectScheme(keywords []string) *Scheme {
	maxAttrs := e.cfg.MaxAttrs
	if maxAttrs == 0 {
		maxAttrs = len(keywords)
	}
	usedKw := map[int]bool{}
	usedCl := map[*scoredCluster]bool{}
	var chosen []PatternCluster

	// available-keyword score of a cluster.
	restricted := func(sc *scoredCluster) (float64, int) {
		bestKw, bestAvg := -1, -2.0
		for ki, avg := range sc.kwAvg {
			if usedKw[ki] {
				continue
			}
			if avg > bestAvg {
				bestAvg, bestKw = avg, ki
			}
		}
		if bestKw < 0 {
			return -2, -1
		}
		return sc.term1 - sc.term2 + bestAvg -
			e.cfg.LengthPenalty*(avgPatternLen(sc)-1), bestKw
	}

	for len(chosen) < maxAttrs && len(usedKw) < len(keywords) {
		var best *scoredCluster
		bestScore, bestKw := -2.0, -1
		for _, sc := range e.clusters {
			if usedCl[sc] || len(sc.w) == 0 {
				continue
			}
			s, ki := restricted(sc)
			if ki < 0 {
				continue
			}
			if best == nil || s > bestScore ||
				(s == bestScore && betterTie(sc, best)) {
				best, bestScore, bestKw = sc, s, ki
			}
		}
		if best == nil {
			break
		}
		usedCl[best] = true
		pc := PatternCluster{
			Attr:    keywords[bestKw],
			attrVec: e.valueVec(keywords[bestKw]),
			patKeys: map[string]bool{},
		}
		keys := make([]string, 0, len(best.patterns))
		for k := range best.patterns {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			pc.Patterns = append(pc.Patterns, patternFromKey(k))
			pc.patKeys[k] = true
		}
		if e.cfg.Accept != nil {
			sample := make([]WSample, 0, 5)
			for _, w := range best.w {
				sample = append(sample, WSample{Vertex: w.vertex, EndLabel: w.endLabel})
				if len(sample) == 5 {
					break
				}
			}
			if !e.cfg.Accept(pc.Attr, pc.Patterns, sample) {
				continue // vetoed: cluster consumed, keyword stays free
			}
		}
		usedKw[bestKw] = true
		chosen = append(chosen, pc)
	}

	attrs := make([]rel.Attribute, 0, len(chosen)+1)
	attrs = append(attrs, rel.Attribute{Name: "vid", Type: rel.KindInt})
	for _, pc := range chosen {
		attrs = append(attrs, rel.Attribute{Name: pc.Attr, Type: rel.KindString})
	}
	name := "extracted"
	if e.s != nil {
		name = e.s.Schema.Name + "_g"
	}
	return &Scheme{
		Schema:   rel.NewSchema(name, "vid", attrs...),
		Clusters: chosen,
		K:        e.cfg.K,
	}
}
