package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"semjoin/internal/cluster"
	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/mat"
	"semjoin/internal/nn"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// Config parameterises RExt (§III-A). Zero fields take defaults.
type Config struct {
	// K bounds path length (default 3).
	K int
	// H is the number of KMC clusters (default 30).
	H int
	// Keywords is the user-interest set A: the attribute names of the
	// extracted schema. Required.
	Keywords []string
	// Exemplars are additional values that exemplify the attributes of
	// interest (§II-B: "users may provide not only potential attribute
	// names but also values"). They strengthen the third ranking term but
	// never become attribute names.
	Exemplars []string
	// MaxAttrs is m, the number of attributes selected for RG
	// (default: number of distinct keywords, capped at H).
	MaxAttrs int
	// MaxPathsPerEntity caps the greedy walks started per entity (one per
	// incident edge, like the paper) to keep dense vertices tractable
	// (default 64).
	MaxPathsPerEntity int
	// Beam is the number of Mρ-preferred continuations followed at each
	// expansion step. Beam=1 is the paper's greedy selection; the default
	// 3 trades a bounded constant factor of extra paths for recall, which
	// matters when Mρ is a small model trained on a modest corpus
	// (see DESIGN.md, ablation 1).
	Beam int
	// Seed drives clustering and the RndPath baseline (default 1).
	Seed uint64
	// Parallel is the worker count (default NumCPU).
	Parallel int
	// Accept, when non-nil, models the user interaction of §III-A step 4:
	// it is shown each candidate attribute (name, patterns, sample
	// matches) in rank order and returns whether to include it.
	Accept func(attr string, patterns []PathPattern, sample []WSample) bool
	// NoiseFrac corrupts this fraction of KMC assignments before pattern
	// refinement (Fig 5(f) robustness experiment).
	NoiseFrac float64
	// NoRefinement skips the majority-vote pattern refinement of §III-A
	// step 3, leaving each pattern in every cluster it appears in
	// (ablation 3 of DESIGN.md).
	NoRefinement bool
	// DisableTerm1/2/3 zero out the corresponding term of the ranking
	// function (ablation 4 of DESIGN.md).
	DisableTerm1 bool
	DisableTerm2 bool
	DisableTerm3 bool
	// AllowBounce permits paths that leave a vertex over some edge label
	// and immediately return over the same label in the opposite
	// direction (l, ^l). Such "bounce" hops land on a sibling entity, so
	// the suffix describes the sibling rather than the entity being
	// enriched; they are filtered by default (see DESIGN.md, ablation 7).
	AllowBounce bool
	// LengthPenalty subtracts LengthPenalty·(avg pattern hops − 1) from a
	// cluster's ranking score. The paper's function has no such term but
	// observes that "attributes extracted by longer paths have weaker
	// associations"; the penalty encodes that as an Occam prior so that a
	// hub detour reaching the same label class cannot outrank the direct
	// pattern on embedding noise. Default 0.05; set negative to disable
	// and recover the exact paper ranking (see DESIGN.md, ablation 4).
	LengthPenalty float64
	// Obs, when non-nil, receives per-phase extraction timings
	// (core_rext_phase_seconds) and HER match timings. Extractors built
	// by the gSQL engine inherit the engine's registry here.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 3
	}
	if c.H == 0 {
		c.H = 30
	}
	if c.MaxAttrs == 0 {
		c.MaxAttrs = len(c.Keywords)
	}
	if c.MaxAttrs > c.H {
		c.MaxAttrs = c.H
	}
	if c.MaxPathsPerEntity == 0 {
		c.MaxPathsPerEntity = 64
	}
	if c.Beam == 0 {
		c.Beam = 3
	}
	if c.LengthPenalty == 0 {
		c.LengthPenalty = 0.05
	} else if c.LengthPenalty < 0 {
		c.LengthPenalty = 0
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Parallel == 0 {
		c.Parallel = runtime.NumCPU()
	}
	return c
}

// WSample is one element of a cluster's match set Wi: the matching entity
// vertex and the label of the path's end vertex (the candidate attribute
// value).
type WSample struct {
	Vertex   graph.VertexID
	EndLabel string
}

// PatternCluster is one selected cluster Pi of P, carrying the attribute
// name Ai it was assigned and the keyword embedding used for value
// ranking in Algorithm 1.
type PatternCluster struct {
	Attr     string
	Patterns []PathPattern
	attrVec  mat.Vector
	patKeys  map[string]bool
}

// Scheme is the extraction scheme: the extracted schema
// RG(vid, A1, ..., Am) and the pattern clusters backing each attribute.
type Scheme struct {
	Schema   *rel.Schema
	Clusters []PatternCluster
	K        int
}

// Attrs returns the extracted attribute names A1..Am.
func (s *Scheme) Attrs() []string {
	out := make([]string, len(s.Clusters))
	for i, c := range s.Clusters {
		out[i] = c.Attr
	}
	return out
}

// scoredCluster is one refined pattern cluster P'_i with its ranking
// ingredients (kept so IncExt can re-rank on keyword updates without
// re-clustering).
type scoredCluster struct {
	patterns map[string]int // pattern key -> conforming path count
	w        []wEntry
	term1    float64   // |Wi|/|P|
	term2    float64   // max_φ avg cos(end, tuple attr value)
	term3    float64   // max_ε avg cos(end, keyword)
	kwAvg    []float64 // avg cos(end, keyword) per keyword (for greedy assignment)
	bestKw   string
	score    float64
}

type wEntry struct {
	vertex   graph.VertexID
	tupleIdx int // index into S, or -1 without reference tuples
	endLabel string
	endVec   mat.Vector // xL(ρ.vl), L2-normalised word embedding
}

// Extractor runs RExt against one graph and holds the caches (selected
// paths, refined clusters, match relation) that Algorithm 1 and IncExt
// reuse.
type Extractor struct {
	g      *graph.Graph
	models Models
	cfg    Config

	// initErr records an invalid constructor configuration (missing
	// models). It is surfaced by Discover/Extract instead of panicking
	// in NewExtractor, so a misconfigured pipeline fails with a
	// diagnosable error at its first use.
	initErr error

	s       *rel.Relation // reference tuples; nil for type extraction
	matches []her.Match
	// vertexTuple maps matched vertex -> tuple index (first match wins).
	vertexTuple map[graph.VertexID]int

	mu        sync.Mutex
	pathCache map[graph.VertexID][]graph.Path
	valueVecs map[string]mat.Vector

	clusters   []*scoredCluster
	totalPaths int
	scheme     *Scheme
	result     *rel.Relation

	// skipDeleteMaintenance disables the stale-row drop in
	// ApplyGraphUpdate. Fault-injection hook for the metamorphic harness
	// (internal/prop) only — see SetSkipDeleteMaintenance.
	skipDeleteMaintenance bool

	timings Timings
}

// Timings breaks an extraction down by pipeline stage (seconds). The
// split mirrors the cost analysis of §III-A: path selection and
// embedding dominate for large k, clustering for large H.
type Timings struct {
	Selection  float64 // Mρ-guided path selection
	Embedding  float64 // vertex-path pair embedding
	Clustering float64 // KMC
	Ranking    float64 // refinement + ranking + scheme selection
	Extraction float64 // Algorithm 1
}

// Timings returns the stage breakdown of the most recent run.
func (e *Extractor) Timings() Timings { return e.timings }

// NewExtractor builds an extractor over g with the given models and
// configuration.
func NewExtractor(g *graph.Graph, models Models, cfg Config) *Extractor {
	e := &Extractor{
		g:         g,
		models:    models,
		cfg:       cfg.withDefaults(),
		pathCache: make(map[graph.VertexID][]graph.Path),
		valueVecs: make(map[string]mat.Vector),
	}
	if models.Seq == nil && !models.RandomPaths {
		e.initErr = fmt.Errorf("core: sequence model required unless RandomPaths is set")
	} else if models.Word == nil {
		e.initErr = fmt.Errorf("core: word embedder required")
	}
	return e
}

// Scheme returns the discovered extraction scheme (nil before Discover).
func (e *Extractor) Scheme() *Scheme { return e.scheme }

// Result returns the extracted relation DG (nil before Extract).
func (e *Extractor) Result() *rel.Relation { return e.result }

// Matches returns the HER match relation currently in use.
func (e *Extractor) Matches() []her.Match { return e.matches }

// Run performs both phases of RExt: pattern discovery over the matched
// vertices of S, then attribute extraction (Algorithm 1), returning the
// extracted relation DG of schema RG.
func (e *Extractor) Run(s *rel.Relation, matches []her.Match) (*rel.Relation, error) {
	if err := e.Discover(s, matches); err != nil {
		return nil, err
	}
	r, err := e.Extract()
	if err != nil {
		return nil, err
	}
	e.publishTimings()
	return r, nil
}

// publishTimings reports the most recent stage breakdown to the
// configured registry as per-phase latency histograms.
func (e *Extractor) publishTimings() {
	reg := e.cfg.Obs
	if reg == nil {
		return
	}
	for _, p := range []struct {
		phase string
		sec   float64
	}{
		{"selection", e.timings.Selection},
		{"embedding", e.timings.Embedding},
		{"clustering", e.timings.Clustering},
		{"ranking", e.timings.Ranking},
		{"extraction", e.timings.Extraction},
	} {
		reg.Histogram("core_rext_phase_seconds", nil, "phase", p.phase).Observe(p.sec)
	}
}

// Discover is phase I of §III-A: LSTM-guided path selection from every
// matched vertex, vertex-path pair embedding, K-means clustering, pattern
// refinement by majority voting, and ranking-based pattern/attribute
// selection. It stores the resulting Scheme on the extractor.
func (e *Extractor) Discover(s *rel.Relation, matches []her.Match) error {
	if e.initErr != nil {
		return e.initErr
	}
	if len(e.cfg.Keywords) == 0 {
		return fmt.Errorf("core: RExt needs at least one keyword in A")
	}
	if len(matches) == 0 {
		return fmt.Errorf("core: empty HER match relation f(S,G)")
	}
	e.s = s
	e.matches = matches
	e.vertexTuple = make(map[graph.VertexID]int, len(matches))
	for _, m := range matches {
		if _, ok := e.vertexTuple[m.Vertex]; !ok {
			e.vertexTuple[m.Vertex] = m.TupleIdx
		}
	}

	// (1) Path selection from every matched vertex, in parallel.
	vertices := make([]graph.VertexID, 0, len(e.vertexTuple))
	for v := range e.vertexTuple {
		vertices = append(vertices, v)
	}
	sort.Slice(vertices, func(i, j int) bool { return vertices[i] < vertices[j] })
	stageStart := time.Now()
	e.selectPathsFor(vertices)
	e.timings.Selection = time.Since(stageStart).Seconds()

	type pair struct {
		path graph.Path
		vec  mat.Vector
	}
	var pairs []pair
	for _, v := range vertices {
		for _, p := range e.pathCache[v] {
			pairs = append(pairs, pair{path: p})
		}
	}
	e.totalPaths = len(pairs)
	if len(pairs) == 0 {
		return fmt.Errorf("core: no paths selected from %d matched vertices", len(vertices))
	}

	// (2) Vertex-path pair embedding: concat(L2(xL(end)), L2(xρ)).
	stageStart = time.Now()
	e.parallelFor(len(pairs), func(i int) {
		p := pairs[i].path
		xl := mat.Normalize(e.models.Word.Embed(e.g.Label(p.End())))
		var xr mat.Vector
		if e.models.Seq != nil {
			xr = mat.Normalize(e.models.Seq.EmbedSequence(p.EdgeLabels))
		} else {
			xr = mat.NewVector(0)
		}
		pairs[i].vec = mat.Concat(xl, xr)
	})
	points := make([]mat.Vector, len(pairs))
	for i := range pairs {
		points[i] = pairs[i].vec
	}
	e.timings.Embedding = time.Since(stageStart).Seconds()

	// (3) KMC into H clusters (optionally noise-injected for Fig 5(f)).
	stageStart = time.Now()
	res, err := cluster.KMeans(points, cluster.Config{
		K: e.cfg.H, MaxIter: 25, Seed: e.cfg.Seed, Parallel: e.cfg.Parallel,
	})
	if err != nil {
		return err
	}
	e.timings.Clustering = time.Since(stageStart).Seconds()
	if e.cfg.NoiseFrac > 0 {
		cluster.InjectNoise(res.Assign, len(res.Centroids), e.cfg.NoiseFrac, e.cfg.Seed+13)
	}

	// (4) Pattern refinement by majority voting: each pattern is kept only
	// in the cluster holding most of its conforming paths.
	counts := make([]map[string]int, len(res.Centroids))
	for i := range counts {
		counts[i] = map[string]int{}
	}
	for i, p := range pairs {
		counts[res.Assign[i]][patternKeyOf(p.path)]++
	}
	refined := make([]*scoredCluster, len(res.Centroids))
	if e.cfg.NoRefinement {
		// Ablation: keep every pattern in every cluster it occurs in.
		for ci, m := range counts {
			for k, n := range m {
				if refined[ci] == nil {
					refined[ci] = &scoredCluster{patterns: map[string]int{}}
				}
				refined[ci].patterns[k] = n
			}
		}
	} else {
		owner := map[string]int{} // pattern key -> owning cluster
		ownerCount := map[string]int{}
		for ci, m := range counts {
			// Ascending ci: ties keep the lowest cluster id (deterministic).
			for k, n := range m {
				if cur, ok := ownerCount[k]; !ok || n > cur {
					owner[k] = ci
					ownerCount[k] = n
				}
			}
		}
		for k, ci := range owner {
			if refined[ci] == nil {
				refined[ci] = &scoredCluster{patterns: map[string]int{}}
			}
			refined[ci].patterns[k] = ownerCount[k]
		}
	}

	// (5) Build W sets: every selected path conforming to a cluster's
	// pattern contributes (start vertex, end label).
	patClusters := map[string][]*scoredCluster{}
	var live []*scoredCluster
	for _, sc := range refined {
		if sc == nil {
			continue
		}
		live = append(live, sc)
		for k := range sc.patterns {
			patClusters[k] = append(patClusters[k], sc)
		}
	}
	for _, v := range vertices {
		for _, p := range e.pathCache[v] {
			endLabel := e.g.Label(p.End())
			for _, sc := range patClusters[patternKeyOf(p)] {
				sc.w = append(sc.w, wEntry{
					vertex:   p.Start(),
					tupleIdx: e.vertexTuple[p.Start()],
					endLabel: endLabel,
					endVec:   e.valueVec(endLabel),
				})
			}
		}
	}

	// (6) Rank and select.
	stageStart = time.Now()
	e.clusters = live
	e.rankClusters(e.cfg.Keywords)
	e.scheme = e.selectScheme(e.cfg.Keywords)
	e.timings.Ranking = time.Since(stageStart).Seconds()
	return nil
}

// selectPathsFor fills the path cache for the given vertices in parallel.
func (e *Extractor) selectPathsFor(vertices []graph.VertexID) {
	missing := make([]graph.VertexID, 0, len(vertices))
	for _, v := range vertices {
		if _, ok := e.pathCache[v]; !ok {
			missing = append(missing, v)
		}
	}
	results := make([][]graph.Path, len(missing))
	e.parallelFor(len(missing), func(i int) {
		results[i] = e.selectPaths(missing[i])
	})
	for i, v := range missing {
		e.pathCache[v] = results[i]
	}
}

// selectPaths implements SelectPath (§III-A step 1): one greedy walk per
// incident edge of v, each extended by the edge label Mρ deems most
// probable, stopping on <eos>, a dead end, the bound k, or a cycle. Every
// prefix of a walk is itself a selected path (clusters mix lengths, as in
// the paper's Figure 2). With RandomPaths set the extension is uniform
// (the RndPath baseline).
func (e *Extractor) selectPaths(v graph.VertexID) []graph.Path {
	if !e.g.Live(v) {
		return nil
	}
	steps := e.g.Steps(nil, v)
	if len(steps) > e.cfg.MaxPathsPerEntity {
		steps = steps[:e.cfg.MaxPathsPerEntity]
	}
	rng := mat.NewRNG(e.cfg.Seed ^ (uint64(v) + 0x9e37))
	var out []graph.Path
	eosID := -1
	var vocab *nn.Vocab
	if e.models.Seq != nil {
		vocab = e.models.Seq.Vocab()
		eosID = vocab.ID(nn.EOS)
	}
	// branch is one frontier element of the (narrow) beam expansion.
	type branch struct {
		path  graph.Path
		state nn.State
	}
	for _, first := range steps {
		p := graph.Path{
			Vertices:   []graph.VertexID{v, first.To},
			EdgeLabels: []string{graph.MarkLabel(first.Label, first.Forward)},
		}
		out = append(out, p.Clone())

		var state nn.State
		if !e.models.RandomPaths {
			state = e.models.Seq.Start()
			state.Feed(e.g.Label(v))
			state.Feed(p.EdgeLabels[0])
			state.Feed(e.g.Label(first.To))
		}
		frontier := []branch{{path: p, state: state}}
		for depth := 1; depth < e.cfg.K && len(frontier) > 0; depth++ {
			var next []branch
			for _, br := range frontier {
				cands := e.g.Steps(nil, br.path.End())
				prev := br.path.EdgeLabels[len(br.path.EdgeLabels)-1]
				// Drop cycle-forming steps (stop condition (d)) and, unless
				// AllowBounce is set, sibling bounces (l then ^l).
				keep := cands[:0]
				for _, c := range cands {
					if br.path.Contains(c.To) {
						continue
					}
					if !e.cfg.AllowBounce && inverseLabel(prev) == graph.MarkLabel(c.Label, c.Forward) {
						continue
					}
					keep = append(keep, c)
				}
				cands = keep
				if len(cands) == 0 {
					continue // stop condition (b): no edge to choose
				}
				var chosen []graph.Step
				if e.models.RandomPaths {
					chosen = append(chosen, cands[rng.Intn(len(cands))])
				} else {
					probs := br.state.Probs()
					// The paper chooses the EDGE LABEL with the highest
					// predicted probability, then an edge carrying it; the
					// beam generalisation keeps the top-Beam distinct
					// labels, one (deterministic) edge each.
					type scored struct {
						step graph.Step
						p    float64
					}
					bestByLabel := map[string]scored{}
					for _, c := range cands {
						tok := graph.MarkLabel(c.Label, c.Forward)
						pr := 0.0
						if vocab.Has(tok) {
							pr = probs[vocab.ID(tok)]
						}
						if cur, ok := bestByLabel[tok]; !ok || c.To < cur.step.To {
							bestByLabel[tok] = scored{c, pr}
						}
					}
					ranked := make([]scored, 0, len(bestByLabel))
					for _, s := range bestByLabel {
						ranked = append(ranked, s)
					}
					sort.SliceStable(ranked, func(i, j int) bool {
						if ranked[i].p != ranked[j].p {
							return ranked[i].p > ranked[j].p
						}
						return ranked[i].step.To < ranked[j].step.To
					})
					// Stop condition (a): Mρ emits the end-of-sentence
					// signal with higher probability than any candidate.
					if eosID >= 0 && probs[eosID] > ranked[0].p {
						continue
					}
					width := e.cfg.Beam
					if width > len(ranked) {
						width = len(ranked)
					}
					for _, r := range ranked[:width] {
						chosen = append(chosen, r.step)
					}
				}
				for ci, c := range chosen {
					tok := graph.MarkLabel(c.Label, c.Forward)
					np := br.path.Extend(tok, c.To)
					out = append(out, np)
					var ns nn.State
					if !e.models.RandomPaths {
						if ci == len(chosen)-1 {
							ns = br.state // last branch may consume the state
						} else {
							ns = br.state.Clone()
						}
						ns.Feed(tok)
						ns.Feed(e.g.Label(c.To))
					}
					next = append(next, branch{path: np, state: ns})
				}
			}
			frontier = next
		}
	}
	return out
}

// valueVec returns the L2-normalised word embedding of a value string,
// memoised across the extraction.
func (e *Extractor) valueVec(s string) mat.Vector {
	e.mu.Lock()
	v, ok := e.valueVecs[s]
	e.mu.Unlock()
	if ok {
		return v
	}
	v = mat.Normalize(e.models.Word.Embed(s))
	e.mu.Lock()
	e.valueVecs[s] = v
	e.mu.Unlock()
	return v
}

// parallelFor runs fn(i) for i in [0, n) on cfg.Parallel workers.
func (e *Extractor) parallelFor(n int, fn func(i int)) {
	workers := e.cfg.Parallel
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
