package core

import (
	"context"
	"fmt"
	"strings"
	"time"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/obs"
	"semjoin/internal/rel"
)

// IncStats reports what an incremental maintenance step did.
type IncStats struct {
	// Touched is the number of graph vertices directly touched by ΔG.
	Touched int
	// Affected is |V∆|: matched entity vertices whose extracted values
	// were re-computed.
	Affected int
	// Removed is the number of DG rows dropped (entities no longer
	// matched or deleted).
	Removed int
}

// ApplyGraphUpdate is IncExt for data updates (§III-B): it applies ΔG to
// the graph, recomputes HER matches with the supplied matcher, collects
// the affected vertex set V∆ — (a) newly matched vertices, (b) previously
// matched vertices within k hops of any vertex touched by ΔG — and
// re-extracts tuples only for V∆ via lines 3–4 of Algorithm 1. Pattern
// discovery is NOT redone; extraction results for unaffected vertices are
// reused verbatim, so the outcome matches a from-scratch RExt run (the
// paper's no-accuracy-loss property) as long as path patterns themselves
// remain representative.
func (e *Extractor) ApplyGraphUpdate(delta graph.Batch, matcher her.Matcher) (IncStats, error) {
	return e.ApplyGraphUpdateContext(context.Background(), delta, matcher)
}

// ApplyGraphUpdateContext is ApplyGraphUpdate with observability: when
// ctx carries a trace the maintenance step reports itself as an
// "incext_apply_graph" phase, and a ctx logger gets a structured
// record of what the step did.
func (e *Extractor) ApplyGraphUpdateContext(ctx context.Context, delta graph.Batch, matcher her.Matcher) (IncStats, error) {
	start := time.Now()
	st, err := e.applyGraphUpdate(delta, matcher)
	obs.TraceFromContext(ctx).Phase("incext_apply_graph", start)
	if err != nil {
		obs.LoggerFromContext(ctx).Warn("incext graph update failed", "err", err.Error())
	} else {
		obs.LoggerFromContext(ctx).Debug("incext graph update",
			"touched", st.Touched, "affected", st.Affected, "removed", st.Removed,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond))
	}
	return st, err
}

func (e *Extractor) applyGraphUpdate(delta graph.Batch, matcher her.Matcher) (IncStats, error) {
	if e.scheme == nil || e.result == nil {
		return IncStats{}, fmt.Errorf("core: IncExt requires a completed RExt run")
	}
	touched := delta.Apply(e.g)

	oldMatched := make(map[graph.VertexID]bool, len(e.vertexTuple))
	for v := range e.vertexTuple {
		oldMatched[v] = true
	}

	// Recompute the HER match relation on the updated graph.
	newMatches := matcher.Match(e.s, e.g)
	e.matches = newMatches
	e.vertexTuple = make(map[graph.VertexID]int, len(newMatches))
	for _, m := range newMatches {
		if _, ok := e.vertexTuple[m.Vertex]; !ok {
			e.vertexTuple[m.Vertex] = m.TupleIdx
		}
	}

	// V∆ step (a): vertices matched now but not before.
	affected := map[graph.VertexID]bool{}
	for v := range e.vertexTuple {
		if !oldMatched[v] {
			affected[v] = true
		}
	}
	// V∆ step (b): old matched vertices within k hops of the update that
	// are still matched (ones no longer matched just lose their DG row).
	reach := e.g.KHopNeighborhood(touched, e.cfg.K)
	for v := range reach {
		if !oldMatched[v] {
			continue
		}
		if _, stillMatched := e.vertexTuple[v]; stillMatched {
			affected[v] = true
		}
	}

	// Invalidate cached paths for every vertex whose length-≤k
	// neighbourhood changed — matched or not. Invalidating only the
	// affected (matched) set is not enough: an unmatched vertex may be
	// re-matched by a later ΔD update, and ApplyRelationUpdate would
	// then extract its values from paths cached before this ΔG. (Found
	// by the internal/prop IncExt oracle.)
	e.mu.Lock()
	for v := range reach {
		delete(e.pathCache, v)
	}
	for v := range affected {
		delete(e.pathCache, v)
	}
	e.mu.Unlock()

	order := make([]graph.VertexID, 0, len(affected))
	for v := range affected {
		if e.g.Live(v) {
			order = append(order, v)
		}
	}
	rows := make([]rel.Tuple, len(order))
	e.parallelFor(len(order), func(i int) {
		rows[i] = e.extractTuple(order[i])
	})

	// Commit: replace/add rows for affected vertices, drop rows for
	// vertices that are no longer matched or no longer live.
	vidCol := e.result.Schema.Col("vid")
	newRows := make([]rel.Tuple, 0, len(e.result.Tuples))
	removed := 0
	for _, t := range e.result.Tuples {
		v := graph.VertexID(t[vidCol].Int())
		if affected[v] {
			continue // replaced below
		}
		if _, ok := e.vertexTuple[v]; (!ok || !e.g.Live(v)) && !e.skipDeleteMaintenance {
			removed++
			continue
		}
		newRows = append(newRows, t)
	}
	newRows = append(newRows, rows...)
	e.result.Tuples = newRows

	return IncStats{Touched: len(touched), Affected: len(order), Removed: removed}, nil
}

// ApplyRelationUpdate is IncExt for updates to the database D (§III-B
// treats them "similarly" to ΔG): the reference tuples change to newS,
// HER matches are recomputed, and values are extracted only for vertices
// that were not matched before; rows for vertices no longer matched are
// dropped, and rows for still-matched vertices are reused verbatim (the
// graph is unchanged, so their paths and values cannot have changed).
//
// The update is transactional: every validation runs and every new row is
// computed before any extractor state is replaced, so a failed update —
// nil input, or a matcher emitting out-of-range tuple indexes — leaves
// the extractor exactly as it was.
func (e *Extractor) ApplyRelationUpdate(newS *rel.Relation, matcher her.Matcher) (IncStats, error) {
	return e.ApplyRelationUpdateContext(context.Background(), newS, matcher)
}

// ApplyRelationUpdateContext is ApplyRelationUpdate with
// observability: an "incext_apply_relation" phase on the ctx trace
// and a structured record on the ctx logger.
func (e *Extractor) ApplyRelationUpdateContext(ctx context.Context, newS *rel.Relation, matcher her.Matcher) (IncStats, error) {
	start := time.Now()
	st, err := e.applyRelationUpdate(newS, matcher)
	obs.TraceFromContext(ctx).Phase("incext_apply_relation", start)
	if err != nil {
		obs.LoggerFromContext(ctx).Warn("incext relation update failed", "err", err.Error())
	} else {
		obs.LoggerFromContext(ctx).Debug("incext relation update",
			"affected", st.Affected, "removed", st.Removed,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond))
	}
	return st, err
}

func (e *Extractor) applyRelationUpdate(newS *rel.Relation, matcher her.Matcher) (IncStats, error) {
	if e.scheme == nil || e.result == nil {
		return IncStats{}, fmt.Errorf("core: IncExt requires a completed RExt run")
	}
	if newS == nil {
		return IncStats{}, fmt.Errorf("core: ApplyRelationUpdate: nil relation")
	}
	if matcher == nil {
		return IncStats{}, fmt.Errorf("core: ApplyRelationUpdate: nil matcher")
	}
	oldMatched := make(map[graph.VertexID]bool, len(e.vertexTuple))
	for v := range e.vertexTuple {
		oldMatched[v] = true
	}
	newMatches := matcher.Match(newS, e.g)
	for _, m := range newMatches {
		if m.TupleIdx < 0 || m.TupleIdx >= newS.Len() {
			return IncStats{}, fmt.Errorf("core: ApplyRelationUpdate: matcher returned tuple index %d outside [0,%d)", m.TupleIdx, newS.Len())
		}
	}
	vertexTuple := make(map[graph.VertexID]int, len(newMatches))
	for _, m := range newMatches {
		if _, ok := vertexTuple[m.Vertex]; !ok {
			vertexTuple[m.Vertex] = m.TupleIdx
		}
	}

	var fresh []graph.VertexID
	for v := range vertexTuple {
		if !oldMatched[v] && e.g.Live(v) {
			fresh = append(fresh, v)
		}
	}
	rows := make([]rel.Tuple, len(fresh))
	e.parallelFor(len(fresh), func(i int) {
		rows[i] = e.extractTuple(fresh[i])
	})

	vidCol := e.result.Schema.Col("vid")
	newRows := make([]rel.Tuple, 0, len(e.result.Tuples)+len(rows))
	removed := 0
	for _, t := range e.result.Tuples {
		v := graph.VertexID(t[vidCol].Int())
		if _, ok := vertexTuple[v]; !ok || !e.g.Live(v) {
			removed++
			continue
		}
		newRows = append(newRows, t)
	}
	newRows = append(newRows, rows...)

	// Commit point: nothing below can fail.
	e.s = newS
	e.matches = newMatches
	e.vertexTuple = vertexTuple
	e.result.Tuples = newRows
	return IncStats{Affected: len(fresh), Removed: removed}, nil
}

// UpdateKeywords is IncExt for user updates (§III-B): when the interest
// set A changes, only step (4) of pattern discovery is redone — the
// refined clusters and their W sets are re-ranked with the new keywords —
// and values are extracted only for attributes that were not already in
// the old scheme; retained attributes copy their existing column.
// The update is transactional: the keyword set is validated and the new
// relation fully computed before e.scheme/e.result are replaced, so a
// failed update leaves the extractor unchanged.
func (e *Extractor) UpdateKeywords(keywords []string) (*rel.Relation, error) {
	return e.UpdateKeywordsContext(context.Background(), keywords)
}

// UpdateKeywordsContext is UpdateKeywords with observability: an
// "incext_update_keywords" phase on the ctx trace and a structured
// record on the ctx logger.
func (e *Extractor) UpdateKeywordsContext(ctx context.Context, keywords []string) (*rel.Relation, error) {
	start := time.Now()
	out, err := e.updateKeywords(keywords)
	obs.TraceFromContext(ctx).Phase("incext_update_keywords", start)
	if err != nil {
		obs.LoggerFromContext(ctx).Warn("incext keyword update failed", "err", err.Error())
	} else {
		obs.LoggerFromContext(ctx).Debug("incext keyword update",
			"keywords", strings.Join(keywords, ","),
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond))
	}
	return out, err
}

func (e *Extractor) updateKeywords(keywords []string) (*rel.Relation, error) {
	if e.scheme == nil || e.result == nil {
		return nil, fmt.Errorf("core: IncExt requires a completed RExt run")
	}
	if len(keywords) == 0 {
		return nil, fmt.Errorf("core: empty keyword set")
	}
	for _, kw := range keywords {
		if strings.TrimSpace(kw) == "" {
			return nil, fmt.Errorf("core: blank keyword in update %q", keywords)
		}
	}
	old := e.result
	oldScheme := e.scheme
	oldCol := map[string]int{}
	for _, a := range oldScheme.Attrs() {
		oldCol[a] = old.Schema.Col(a)
	}
	oldPatKeys := map[string]map[string]bool{}
	for _, pc := range oldScheme.Clusters {
		oldPatKeys[pc.Attr] = pc.patKeys
	}

	e.cfg.Keywords = keywords
	e.cfg.MaxAttrs = len(keywords)
	e.rankClusters(keywords)
	newScheme := e.selectScheme(keywords)

	// Row order: one per previously extracted vertex.
	vidCol := old.Schema.Col("vid")
	dg := rel.NewRelation(newScheme.Schema)
	rows := make([]rel.Tuple, len(old.Tuples))
	e.parallelFor(len(old.Tuples), func(i int) {
		oldRow := old.Tuples[i]
		v := graph.VertexID(oldRow[vidCol].Int())
		row := make(rel.Tuple, 1+len(newScheme.Clusters))
		row[0] = oldRow[vidCol]
		var paths []graph.Path
		for j, pc := range newScheme.Clusters {
			// Reuse the old column when the attribute maps to the same
			// pattern cluster as before.
			if c, ok := oldCol[pc.Attr]; ok && samePatKeys(oldPatKeys[pc.Attr], pc.patKeys) {
				row[1+j] = oldRow[c]
				continue
			}
			if paths == nil {
				paths = e.pathsFor(v)
			}
			row[1+j] = e.extractValue(paths, pc)
		}
		rows[i] = row
	})
	dg.Tuples = rows

	// Commit point: nothing below can fail.
	e.scheme = newScheme
	e.result = dg
	return dg, nil
}

// SetSkipDeleteMaintenance is a fault-injection hook for the metamorphic
// harness (internal/prop): when enabled, ApplyGraphUpdate keeps rows for
// vertices that are no longer matched or no longer live — the class of
// bug the IncExt-vs-RExt oracle must catch and shrink to a minimal
// counterexample. It has no place outside tests.
func (e *Extractor) SetSkipDeleteMaintenance(on bool) { e.skipDeleteMaintenance = on }

func samePatKeys(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
