package core

import (
	"fmt"
	"sync"
	"testing"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/rel"
)

// world is the shared test fixture: a typed product knowledge graph in the
// spirit of the paper's Figure 1, a product relation, ground-truth
// alignment and ground-truth attribute values.
type world struct {
	g        *graph.Graph
	products *rel.Relation
	truth    map[string]graph.VertexID // pid -> vertex
	company  map[string]string         // pid -> issuing company label
	country  map[string]string         // pid -> company country label
	models   Models
}

var (
	worldOnce sync.Once
	theWorld  *world

	// Model training (LSTM + GloVe over the walk corpus) dominates the
	// fixture cost, and buildWorld constructs the identical initial
	// graph on every call, so the learned weights are trained once and
	// shared across worlds. Inference is read-only — decoding clones
	// fresh States and the embedder snapshots its type map at
	// construction — so mutating one world's graph or relations never
	// feeds back into the shared weights.
	trainOnce     sync.Once
	trainedModels Models
)

// buildWorld constructs the fixture graph:
//
//	company --issues--> product --category--> {"Funds","Stocks"}
//	company --registered_in--> country
//
// Companies, countries and categories are typed vertices, so type
// sentences give the word embedder the value↔class geometry.
func buildWorld() *world {
	g := graph.New()
	companies := []string{"Acme Corp", "Globex Corp", "Initech Corp", "Umbrella Corp"}
	countries := []string{"UK", "US", "Germany", "France"}
	categories := []string{"Funds", "Stocks"}

	countryV := make([]graph.VertexID, len(countries))
	for i, c := range countries {
		countryV[i] = g.AddVertex(c, "country")
	}
	companyV := make([]graph.VertexID, len(companies))
	for i, c := range companies {
		companyV[i] = g.AddVertex(c, "company")
		g.AddEdge(companyV[i], "registered_in", countryV[i%len(countries)])
	}
	categoryV := make([]graph.VertexID, len(categories))
	for i, c := range categories {
		categoryV[i] = g.AddVertex(c, "category")
	}

	schema := rel.NewSchema("product", "pid",
		rel.Attribute{Name: "pid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
		rel.Attribute{Name: "category", Type: rel.KindString},
	)
	products := rel.NewRelation(schema)
	truth := map[string]graph.VertexID{}
	companyOf := map[string]string{}
	countryOf := map[string]string{}

	const n = 30
	for i := 0; i < n; i++ {
		pid := fmt.Sprintf("fd%02d", i)
		name := fmt.Sprintf("prod %02d", i)
		ci := i % len(companies)
		cat := categories[i%len(categories)]
		v := g.AddVertex(name, "product")
		g.AddEdge(companyV[ci], "issues", v)
		g.AddEdge(v, "category", categoryV[i%len(categories)])
		products.InsertVals(rel.S(pid), rel.S(name), rel.S(cat))
		truth[pid] = v
		companyOf[pid] = companies[ci]
		countryOf[pid] = countries[ci%len(countries)]
	}
	w := &world{
		g: g, products: products, truth: truth,
		company: companyOf, country: countryOf,
	}
	trainOnce.Do(func() { trainedModels = TrainModels(g, 8, 7) })
	w.models = trainedModels
	return w
}

func getWorld(t *testing.T) *world {
	t.Helper()
	worldOnce.Do(func() { theWorld = buildWorld() })
	return theWorld
}

// accuracy computes the fraction of products whose extracted attribute
// equals the ground truth, given the enriched relation keyed by pid.
func accuracy(t *testing.T, enriched *rel.Relation, attr string, want map[string]string) float64 {
	t.Helper()
	col := enriched.Schema.Col(attr)
	pidCol := enriched.Schema.Col("pid")
	if col < 0 || pidCol < 0 {
		t.Fatalf("missing column %q or pid in %v", attr, enriched.Schema)
	}
	hit := 0
	for _, tp := range enriched.Tuples {
		if tp[col].Str() == want[tp[pidCol].Str()] {
			hit++
		}
	}
	if len(want) == 0 {
		return 0
	}
	return float64(hit) / float64(len(want))
}

func oracle(w *world) her.Matcher { return her.NewOracleMatcher(w.truth) }
