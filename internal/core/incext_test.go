package core

import (
	"sort"
	"testing"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/rel"
)

// relationKey canonicalises a relation's tuples for order-insensitive
// comparison.
func relationKey(r *rel.Relation) []string {
	out := make([]string, 0, r.Len())
	for _, t := range r.Tuples {
		k := ""
		for _, v := range t {
			k += v.Key() + "|"
		}
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sameRelation(a, b *rel.Relation) bool {
	ka, kb := relationKey(a), relationKey(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// freshWorld builds an isolated fixture (tests that mutate the graph must
// not share the global one).
func freshWorld() *world { return buildWorld() }

func TestIncExtMatchesFromScratch(t *testing.T) {
	// The paper: "there exists no accuracy loss in IncExt compared with
	// RExt starting from scratch, since pattern matching results ... are
	// the same". Apply ΔG incrementally and compare against Algorithm 1
	// re-run with the same scheme on the updated graph.
	w := freshWorld()
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
	})
	if _, err := ex.Run(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	scheme := ex.Scheme()

	// ΔG: move fd00's issuer from Acme to Globex and rewire one country.
	acme := findVertex(w.g, "Acme Corp")
	globex := findVertex(w.g, "Globex Corp")
	uk := findVertex(w.g, "UK")
	fr := findVertex(w.g, "France")
	p0 := w.truth["fd00"]
	delta := graph.Batch{
		{Op: graph.DeleteEdge, Edge: graph.Edge{From: acme, Label: "issues", To: p0}},
		{Op: graph.InsertEdge, Edge: graph.Edge{From: globex, Label: "issues", To: p0}},
		{Op: graph.DeleteEdge, Edge: graph.Edge{From: acme, Label: "registered_in", To: uk}},
		{Op: graph.InsertEdge, Edge: graph.Edge{From: acme, Label: "registered_in", To: fr}},
	}

	stats, err := ex.ApplyGraphUpdate(delta, oracle(w))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Affected == 0 {
		t.Fatal("update near matched vertices should affect extraction")
	}
	// The fixture is small and dense, so a company-level update can
	// legitimately reach every product within k hops; locality gains are
	// exercised on larger graphs in the Fig 5(h) benchmark.
	if stats.Affected > w.products.Len() {
		t.Fatalf("affected %d exceeds matched entities", stats.Affected)
	}

	// From-scratch Algorithm 1 on the updated graph with the same scheme.
	fresh := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
	})
	want, err := fresh.ExtractWithScheme(w.products, scheme, oracle(w).Match(w.products, w.g))
	if err != nil {
		t.Fatal(err)
	}
	if !sameRelation(ex.Result(), want) {
		t.Fatalf("IncExt diverged from from-scratch extraction:\ninc:\n%v\nfresh:\n%v",
			ex.Result(), want)
	}

	// And the semantics moved: fd00's company is now Globex.
	m := matchRelation(w.products, ex.Matches())
	joined := natJoin3(t, w.products, m, ex.Result())
	for _, tp := range joined.Tuples {
		if joined.Get(tp, "pid").Str() == "fd00" {
			if got := joined.Get(tp, "company").Str(); got != "Globex Corp" {
				t.Fatalf("fd00 company after update = %q", got)
			}
		}
	}
}

func TestIncExtVertexDeletionDropsRow(t *testing.T) {
	w := freshWorld()
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company"}, Seed: 3,
	})
	if _, err := ex.Run(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	before := ex.Result().Len()
	delta := graph.Batch{{Op: graph.DeleteVertex, Edge: graph.Edge{From: w.truth["fd03"]}}}
	stats, err := ex.ApplyGraphUpdate(delta, oracle(w))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != 1 {
		t.Fatalf("removed = %d, want 1", stats.Removed)
	}
	if ex.Result().Len() != before-1 {
		t.Fatalf("rows = %d, want %d", ex.Result().Len(), before-1)
	}
}

func TestIncExtNewVertexGetsRow(t *testing.T) {
	w := freshWorld()
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company"}, Seed: 3,
	})
	if _, err := ex.Run(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	before := ex.Result().Len()

	// A new product appears in the graph and in the relation.
	acme := findVertex(w.g, "Acme Corp")
	delta := graph.Batch{{Op: graph.InsertVertex, Label: "prod 99", Type: "product"}}
	touched := delta.Apply(w.g)
	newV := touched[0]
	w.g.AddEdge(acme, "issues", newV)
	w.products.InsertVals(rel.S("fd99"), rel.S("prod 99"), rel.S("Funds"))
	w.truth["fd99"] = newV

	stats, err := ex.ApplyGraphUpdate(nil, oracle(w))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Affected == 0 {
		t.Fatal("new match should be re-extracted")
	}
	if ex.Result().Len() != before+1 {
		t.Fatalf("rows = %d, want %d", ex.Result().Len(), before+1)
	}
}

func TestIncExtRequiresCompletedRun(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{Keywords: []string{"x"}})
	if _, err := ex.ApplyGraphUpdate(nil, oracle(w)); err == nil {
		t.Fatal("expected error before a run")
	}
	if _, err := ex.UpdateKeywords([]string{"x"}); err == nil {
		t.Fatal("expected error before a run")
	}
}

func TestUpdateKeywordsAddsAttribute(t *testing.T) {
	w := freshWorld()
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company"}, Seed: 3,
	})
	if _, err := ex.Run(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	oldCompany := map[int64]string{}
	vidCol := ex.Result().Schema.Col("vid")
	cCol := ex.Result().Schema.Col("company")
	for _, tp := range ex.Result().Tuples {
		oldCompany[tp[vidCol].Int()] = tp[cCol].Str()
	}

	dg, err := ex.UpdateKeywords([]string{"company", "country"})
	if err != nil {
		t.Fatal(err)
	}
	if !dg.Schema.Has("country") {
		t.Fatalf("country missing after keyword update: %v", dg.Schema)
	}
	// Retained attribute values are copied, not recomputed differently.
	nVid, nC := dg.Schema.Col("vid"), dg.Schema.Col("company")
	for _, tp := range dg.Tuples {
		if tp[nC].Str() != oldCompany[tp[nVid].Int()] {
			t.Fatalf("company changed for vid %d", tp[nVid].Int())
		}
	}
	// New attribute is actually populated.
	m := matchRelation(w.products, ex.Matches())
	joined := natJoin3(t, w.products, m, dg)
	if acc := accuracy(t, joined, "country", w.country); acc < 0.9 {
		t.Fatalf("country accuracy after keyword update = %.2f", acc)
	}
}

func TestUpdateKeywordsShrink(t *testing.T) {
	w := freshWorld()
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
	})
	if _, err := ex.Run(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	dg, err := ex.UpdateKeywords([]string{"country"})
	if err != nil {
		t.Fatal(err)
	}
	if dg.Schema.Has("company") {
		t.Fatal("dropped keyword should drop the attribute")
	}
	if !dg.Schema.Has("country") {
		t.Fatal("kept keyword lost")
	}
	if dg.Len() != w.products.Len() {
		t.Fatalf("rows = %d", dg.Len())
	}
}

func findVertex(g *graph.Graph, label string) graph.VertexID {
	id := graph.NoVertex
	g.Vertices(func(v graph.Vertex) {
		if v.Label == label && id == graph.NoVertex {
			id = v.ID
		}
	})
	return id
}

var _ = her.Match{} // keep her imported for fixture reuse

func TestApplyRelationUpdate(t *testing.T) {
	w := freshWorld()
	// Start with two thirds of the products.
	twoThirds := rel.NewRelation(w.products.Schema)
	for i, tp := range w.products.Tuples {
		if i%3 != 0 {
			twoThirds.Insert(tp)
		}
	}
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company"}, Seed: 3,
	})
	if _, err := ex.Run(twoThirds, oracle(w).Match(twoThirds, w.g)); err != nil {
		t.Fatal(err)
	}
	before := ex.Result().Len()

	// D update: the full relation arrives (inserts) — only the new
	// tuples' vertices should be extracted.
	stats, err := ex.ApplyRelationUpdate(w.products, oracle(w))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Affected != w.products.Len()-before {
		t.Fatalf("affected = %d, want %d", stats.Affected, w.products.Len()-before)
	}
	if stats.Removed != 0 {
		t.Fatalf("removed = %d", stats.Removed)
	}
	if ex.Result().Len() != w.products.Len() {
		t.Fatalf("rows = %d, want %d", ex.Result().Len(), w.products.Len())
	}
	// Values match a from-scratch extraction with the same scheme.
	fresh := NewExtractor(w.g, w.models, Config{K: 3, H: 12, Keywords: []string{"company"}, Seed: 3})
	want, err := fresh.ExtractWithScheme(w.products, ex.Scheme(), oracle(w).Match(w.products, w.g))
	if err != nil {
		t.Fatal(err)
	}
	if !sameRelation(ex.Result(), want) {
		t.Fatal("relation update diverged from from-scratch extraction")
	}

	// D update: shrink back — rows for unmatched vertices are dropped.
	stats, err = ex.ApplyRelationUpdate(twoThirds, oracle(w))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Removed != w.products.Len()-before || ex.Result().Len() != before {
		t.Fatalf("shrink: removed=%d rows=%d", stats.Removed, ex.Result().Len())
	}
}

// badIdxMatcher wraps a real matcher but corrupts one tuple index, so
// ApplyRelationUpdate fails validation after the matcher has already run.
type badIdxMatcher struct{ inner her.Matcher }

func (m badIdxMatcher) Match(s *rel.Relation, g *graph.Graph) []her.Match {
	ms := m.inner.Match(s, g)
	if len(ms) > 0 {
		ms[0].TupleIdx = s.Len() + 7
	}
	return ms
}

func TestFailedUpdatesLeaveExtractorUnchanged(t *testing.T) {
	// Regression: ApplyRelationUpdate and UpdateKeywords used to replace
	// e.s / e.matches / e.cfg before validating their inputs, so a failed
	// update left the extractor half-mutated and every later operation ran
	// against torn state. Both must now be transactional.
	w := freshWorld()
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company"}, Seed: 3,
	})
	if _, err := ex.Run(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	beforeRows := relationKey(ex.Result())
	beforeMatches := len(ex.Matches())
	beforeAttrs := ex.Scheme().Attrs()

	check := func(op string) {
		t.Helper()
		got := relationKey(ex.Result())
		if len(got) != len(beforeRows) {
			t.Fatalf("%s: result rows changed: %d -> %d", op, len(beforeRows), len(got))
		}
		for i := range got {
			if got[i] != beforeRows[i] {
				t.Fatalf("%s: result content changed at row %d", op, i)
			}
		}
		if len(ex.Matches()) != beforeMatches {
			t.Fatalf("%s: matches changed: %d -> %d", op, beforeMatches, len(ex.Matches()))
		}
		if a := ex.Scheme().Attrs(); len(a) != len(beforeAttrs) {
			t.Fatalf("%s: scheme attrs changed: %v -> %v", op, beforeAttrs, a)
		}
	}

	if _, err := ex.ApplyRelationUpdate(nil, oracle(w)); err == nil {
		t.Fatal("nil relation should fail")
	}
	check("nil relation")
	if _, err := ex.ApplyRelationUpdate(w.products, nil); err == nil {
		t.Fatal("nil matcher should fail")
	}
	check("nil matcher")
	// The hard case: the matcher runs (so naive code would already have
	// stored its output) and only then validation fails on a tuple index
	// outside the new relation.
	if _, err := ex.ApplyRelationUpdate(w.products, badIdxMatcher{oracle(w)}); err == nil {
		t.Fatal("out-of-range tuple index should fail")
	}
	check("bad tuple index")

	if _, err := ex.UpdateKeywords(nil); err == nil {
		t.Fatal("empty keyword set should fail")
	}
	check("empty keywords")
	if _, err := ex.UpdateKeywords([]string{"company", "  "}); err == nil {
		t.Fatal("blank keyword should fail")
	}
	check("blank keyword")

	// The extractor is still fully usable: a good update succeeds and
	// matches a from-scratch extraction.
	if _, err := ex.ApplyRelationUpdate(w.products, oracle(w)); err != nil {
		t.Fatalf("good update after failed ones: %v", err)
	}
	fresh := NewExtractor(w.g, w.models, Config{K: 3, H: 12, Keywords: []string{"company"}, Seed: 3})
	want, err := fresh.ExtractWithScheme(w.products, ex.Scheme(), oracle(w).Match(w.products, w.g))
	if err != nil {
		t.Fatal(err)
	}
	if !sameRelation(ex.Result(), want) {
		t.Fatal("extractor diverged from from-scratch extraction after failed updates")
	}
}
