package core

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"semjoin/internal/graph"
	"semjoin/internal/mat"
	"semjoin/internal/rel"
	"semjoin/internal/wal"
)

// durableWorld builds an isolated world plus its product base
// materialisation. Durable-store tests mutate the graph through the
// update streams, so the shared fixture must never be used here.
// buildWorld is fully deterministic, so two durableWorld calls yield
// byte-identical initial states — which is what makes crash/recovery
// equivalence checkable against a pristine control.
func durableWorld(t testing.TB) (*world, *BaseMaterialization) {
	t.Helper()
	w := buildWorld()
	m, err := BuildMaterialized(w.g, w.models, map[string]BaseSpec{
		"product": {D: w.products, AR: []string{"company", "country"}, Matcher: oracle(w)},
	}, Config{K: 3, H: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return w, m.Base("product")
}

func durableBoot(w *world, b *BaseMaterialization) DurableBoot {
	return DurableBoot{Base: b, Graph: w.g, Models: w.models, Cfg: Config{K: 3, H: 12, Seed: 3}}
}

// applier is the update-stream surface shared by DurableStore and the
// in-memory control run.
type applier interface {
	ApplyGraphUpdate(delta graph.Batch) (IncStats, error)
	ApplyRelationUpdate(d *rel.Relation) (IncStats, error)
	UpdateKeywords(keywords []string) (*rel.Relation, error)
}

// memStore drives a plain BaseMaterialization through the same update
// surface, mirroring the bookkeeping DurableStore does around the
// extractor calls.
type memStore struct{ b *BaseMaterialization }

func (m *memStore) ApplyGraphUpdate(delta graph.Batch) (IncStats, error) {
	return m.b.Extractor.ApplyGraphUpdate(delta, m.b.Spec.Matcher)
}

func (m *memStore) ApplyRelationUpdate(d *rel.Relation) (IncStats, error) {
	st, err := m.b.Extractor.ApplyRelationUpdate(d, m.b.Spec.Matcher)
	if err == nil {
		m.b.Spec.D = d
	}
	return st, err
}

func (m *memStore) UpdateKeywords(keywords []string) (*rel.Relation, error) {
	out, err := m.b.Extractor.UpdateKeywords(keywords)
	if err == nil {
		m.b.Extracted = out
	}
	return out, err
}

// applyScriptStep applies deterministic update step i to st. The same
// step index against an identical state yields an identical update
// (RandomMixedBatch is seeded per step), so the script can replay
// against controls and crash survivors alike.
func applyScriptStep(st applier, g *graph.Graph, products *rel.Relation, i int) error {
	switch i % 4 {
	case 0, 1:
		_, err := st.ApplyGraphUpdate(graph.RandomMixedBatch(g, mat.NewRNG(uint64(1000+i)), 4))
		return err
	case 2:
		d := products.Clone()
		d.InsertVals(rel.S(fmt.Sprintf("xx%02d", i)), rel.S(fmt.Sprintf("extra %02d", i)), rel.S("Funds"))
		_, err := st.ApplyRelationUpdate(d)
		return err
	default:
		kws := [][]string{{"company"}, {"company", "country"}}[(i/4)%2]
		_, err := st.UpdateKeywords(kws)
		return err
	}
}

func applySteps(t *testing.T, st applier, g *graph.Graph, products *rel.Relation, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		if err := applyScriptStep(st, g, products, i); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
}

func graphBytes(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// assertSameState checks every state surface recovery must preserve:
// graph structure (byte-exact, so future updates replay identically),
// the extracted relation, the current reference relation D, and the
// current HER match state.
func assertSameState(t *testing.T, tag string, got, want *BaseMaterialization, gGot, gWant *graph.Graph) {
	t.Helper()
	if !bytes.Equal(graphBytes(t, gGot), graphBytes(t, gWant)) {
		t.Fatalf("%s: graphs diverge", tag)
	}
	if !sameRelation(got.Extracted, want.Extracted) {
		t.Fatalf("%s: extracted relations diverge", tag)
	}
	if !sameRelation(got.Extractor.Result(), want.Extractor.Result()) {
		t.Fatalf("%s: extractor results diverge", tag)
	}
	if !sameRelation(got.Spec.D, want.Spec.D) {
		t.Fatalf("%s: reference relations diverge", tag)
	}
	gm := matchRelation(got.Extractor.s, got.Extractor.matches)
	wm := matchRelation(want.Extractor.s, want.Extractor.matches)
	if !sameRelation(gm, wm) {
		t.Fatalf("%s: match states diverge", tag)
	}
}

// TestDurableFreshOpenLogsAndReplays is the core log-then-apply
// round-trip: updates against a fresh store match an in-memory control,
// and a reopen with pristine boot state replays the log back to the
// exact same state.
func TestDurableFreshOpenLogsAndReplays(t *testing.T) {
	ctx := context.Background()
	fs := wal.NewMemFS()
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, "db", durableBoot(w1, b1), DurableOptions{Policy: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	applySteps(t, st, st.Graph(), w1.products, 0, n)

	wc, bc := durableWorld(t)
	ctl := &memStore{b: bc}
	applySteps(t, ctl, wc.g, wc.products, 0, n)
	assertSameState(t, "live vs control", st.Base(), bc, st.Graph(), wc.g)

	if got := st.LastSeq(); got != n {
		t.Fatalf("LastSeq = %d, want %d", got, n)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	w2, b2 := durableWorld(t)
	st2, err := OpenDurable(ctx, "db", durableBoot(w2, b2), DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.ReplaySkipped() != 0 {
		t.Fatalf("replay skipped %d records", st2.ReplaySkipped())
	}
	if got := st2.LastSeq(); got != n {
		t.Fatalf("reopened LastSeq = %d, want %d", got, n)
	}
	assertSameState(t, "replayed vs control", st2.Base(), bc, st2.Graph(), wc.g)

	// The recovered store keeps working: one more step on both sides.
	applySteps(t, st2, st2.Graph(), w2.products, n, n+1)
	applySteps(t, ctl, wc.g, wc.products, n, n+1)
	assertSameState(t, "post-recovery update", st2.Base(), bc, st2.Graph(), wc.g)
}

// dirNames lists base names in the store directory, filtered by suffix.
func dirNames(t *testing.T, fs wal.FS, dir, contains string) []string {
	t.Helper()
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, n := range names {
		if strings.Contains(n, contains) {
			out = append(out, n)
		}
	}
	return out
}

// TestDurableCheckpointCompactsAndReopens takes a mid-stream snapshot,
// verifies the log prefix is compacted away, then reopens WITHOUT any
// boot state: the snapshot plus the log suffix must reconstruct the
// full 10-step state.
func TestDurableCheckpointCompactsAndReopens(t *testing.T) {
	ctx := context.Background()
	fs := wal.NewMemFS()
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, "db", durableBoot(w1, b1), DurableOptions{Policy: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, st, st.Graph(), w1.products, 0, 6)
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	if got := st.SnapshotSeq(); got != 6 {
		t.Fatalf("SnapshotSeq = %d, want 6", got)
	}
	if snaps := dirNames(t, fs, "db", "snap-"); len(snaps) != 1 {
		t.Fatalf("snapshots on disk: %v", snaps)
	}
	if segs := dirNames(t, fs, "db", "wal-"); len(segs) != 1 {
		t.Fatalf("log not compacted, segments: %v", segs)
	}
	applySteps(t, st, st.Graph(), w1.products, 6, 10)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from snapshot alone: no boot base, only models + matcher.
	st2, err := OpenDurable(ctx, "db",
		DurableBoot{Models: w1.models, Cfg: Config{K: 3, H: 12, Seed: 3}, Matcher: b1.Spec.Matcher},
		DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()

	wc, bc := durableWorld(t)
	ctl := &memStore{b: bc}
	applySteps(t, ctl, wc.g, wc.products, 0, 10)
	assertSameState(t, "snapshot+suffix vs control", st2.Base(), bc, st2.Graph(), wc.g)

	// A second checkpoint supersedes the first snapshot.
	if err := st2.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	snaps := dirNames(t, fs, "db", "snap-")
	if len(snaps) != 1 {
		t.Fatalf("old snapshot not removed: %v", snaps)
	}
}

// TestDurableCrashLosesOnlyUnsyncedTail crashes a SyncBatch store via
// the MemFS durability model: everything past the group-commit
// watermark vanishes, and recovery lands exactly on the state of the
// synced prefix.
func TestDurableCrashLosesOnlyUnsyncedTail(t *testing.T) {
	ctx := context.Background()
	mem := wal.NewMemFS()
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, "db", durableBoot(w1, b1),
		DurableOptions{Policy: wal.SyncBatch, BatchEvery: 3, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, st, st.Graph(), w1.products, 0, 8) // commits at 3 and 6
	durable := st.log.SyncedSeq()
	if durable != 6 {
		t.Fatalf("SyncedSeq = %d, want 6", durable)
	}
	mem.Crash()

	w2, b2 := durableWorld(t)
	st2, err := OpenDurable(ctx, "db", durableBoot(w2, b2), DurableOptions{FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.LastSeq(); got != durable {
		t.Fatalf("recovered through seq %d, SyncedSeq promised %d", got, durable)
	}
	wc, bc := durableWorld(t)
	ctl := &memStore{b: bc}
	applySteps(t, ctl, wc.g, wc.products, 0, int(durable))
	assertSameState(t, "crash survivor vs synced-prefix control", st2.Base(), bc, st2.Graph(), wc.g)
}

// TestDurableCrashIntraRecordOffsets truncates the WAL image at
// sampled byte offsets — including mid-frame cuts — and checks that the
// recovered store state equals the control state after exactly the
// surviving record count. Expected states are captured incrementally
// from the live run, so every distinct survivor count is verified
// against the uninterrupted history.
func TestDurableCrashIntraRecordOffsets(t *testing.T) {
	ctx := context.Background()
	mem := wal.NewMemFS()
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, "db", durableBoot(w1, b1), DurableOptions{Policy: wal.SyncAlways, FS: mem})
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	type expect struct {
		graph     []byte
		extracted *rel.Relation
		d         *rel.Relation
	}
	exp := make([]expect, n+1)
	snap := func(k int) {
		exp[k] = expect{
			graph:     graphBytes(t, st.Graph()),
			extracted: st.Base().Extracted.Clone(),
			d:         st.Base().Spec.D.Clone(),
		}
	}
	snap(0)
	for i := 0; i < n; i++ {
		if err := applyScriptStep(st, st.Graph(), w1.products, i); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		snap(i + 1)
	}
	st.Close()
	segs := dirNames(t, mem, "db", "wal-")
	if len(segs) != 1 {
		t.Fatalf("expected one segment, got %v", segs)
	}
	data, err := mem.ReadFile("db/" + segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Sample cuts across the image plus the exact end: mid-frame and
	// boundary offsets both occur.
	cuts := []int{0, 1, len(data) / 5, len(data) / 3, len(data) / 2, 2 * len(data) / 3, len(data) - 1, len(data)}
	for _, cut := range cuts {
		recs, _, serr := wal.Scan(data[:cut], 1)
		if serr != nil {
			t.Fatalf("cut %d: scan of truncated valid log errored: %v", cut, serr)
		}
		k := len(recs)
		fs := wal.NewMemFS()
		fs.WriteFile("db/"+segs[0], data[:cut])
		w2, b2 := durableWorld(t)
		st2, err := OpenDurable(ctx, "db", durableBoot(w2, b2), DurableOptions{FS: fs})
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := int(st2.LastSeq()); got != k {
			t.Fatalf("cut %d: recovered seq %d, scan says %d", cut, got, k)
		}
		if !bytes.Equal(graphBytes(t, st2.Graph()), exp[k].graph) {
			t.Fatalf("cut %d (%d records): graph diverges from step-%d state", cut, k, k)
		}
		if !sameRelation(st2.Base().Extracted, exp[k].extracted) {
			t.Fatalf("cut %d (%d records): extracted relation diverges", cut, k)
		}
		if !sameRelation(st2.Base().Spec.D, exp[k].d) {
			t.Fatalf("cut %d (%d records): reference relation diverges", cut, k)
		}
		st2.Close()
	}
}

// TestDurableKeywordUpdateAfterSnapshotReopen exercises the persisted
// cluster state: a keyword re-ranking AFTER recovering from a snapshot
// must match one on a store that never went through persistence.
func TestDurableKeywordUpdateAfterSnapshotReopen(t *testing.T) {
	ctx := context.Background()
	fs := wal.NewMemFS()
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, "db", durableBoot(w1, b1), DurableOptions{Policy: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, st, st.Graph(), w1.products, 0, 2)
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenDurable(ctx, "db",
		DurableBoot{Models: w1.models, Cfg: Config{K: 3, H: 12, Seed: 3}, Matcher: b1.Spec.Matcher},
		DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.UpdateKeywords([]string{"country"}); err != nil {
		t.Fatal(err)
	}

	wc, bc := durableWorld(t)
	ctl := &memStore{b: bc}
	applySteps(t, ctl, wc.g, wc.products, 0, 2)
	if _, err := ctl.UpdateKeywords([]string{"country"}); err != nil {
		t.Fatal(err)
	}
	assertSameState(t, "post-snapshot keyword update", st2.Base(), bc, st2.Graph(), wc.g)
}

// TestDurableAutoCheckpoint covers CheckpointEvery: snapshots land on
// the configured cadence without explicit Checkpoint calls.
func TestDurableAutoCheckpoint(t *testing.T) {
	ctx := context.Background()
	fs := wal.NewMemFS()
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, "db", durableBoot(w1, b1),
		DurableOptions{Policy: wal.SyncAlways, CheckpointEvery: 3, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	applySteps(t, st, st.Graph(), w1.products, 0, 3)
	if got := st.SnapshotSeq(); got != 3 {
		t.Fatalf("after 3 updates SnapshotSeq = %d, want 3", got)
	}
	applySteps(t, st, st.Graph(), w1.products, 3, 6)
	if got := st.SnapshotSeq(); got != 6 {
		t.Fatalf("after 6 updates SnapshotSeq = %d, want 6", got)
	}
	if snaps := dirNames(t, fs, "db", "snap-"); len(snaps) != 1 {
		t.Fatalf("snapshots on disk: %v", snaps)
	}
	if err := st.LastCheckpointError(); err != nil {
		t.Fatalf("LastCheckpointError = %v", err)
	}
}

// TestDurableReplayGapDetected deletes the snapshot under a compacted
// log: the remaining records start past seq 1, which recovery must
// refuse to replay onto pristine boot state.
func TestDurableReplayGapDetected(t *testing.T) {
	ctx := context.Background()
	fs := wal.NewMemFS()
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, "db", durableBoot(w1, b1), DurableOptions{Policy: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, st, st.Graph(), w1.products, 0, 4)
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	applySteps(t, st, st.Graph(), w1.products, 4, 6)
	st.Close()
	for _, n := range dirNames(t, fs, "db", "snap-") {
		if err := fs.Remove("db/" + n); err != nil {
			t.Fatal(err)
		}
	}
	w2, b2 := durableWorld(t)
	_, err = OpenDurable(ctx, "db", durableBoot(w2, b2), DurableOptions{FS: fs})
	if err == nil || !strings.Contains(err.Error(), "replay gap") {
		t.Fatalf("expected replay-gap error, got %v", err)
	}
}

// TestDurableCorruptSnapshotFailsOpen flips a byte inside the snapshot:
// recovery must surface the corruption rather than load garbage.
func TestDurableCorruptSnapshotFailsOpen(t *testing.T) {
	ctx := context.Background()
	fs := wal.NewMemFS()
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, "db", durableBoot(w1, b1), DurableOptions{Policy: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, st, st.Graph(), w1.products, 0, 2)
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	st.Close()
	snaps := dirNames(t, fs, "db", "snap-")
	if len(snaps) != 1 {
		t.Fatalf("snapshots: %v", snaps)
	}
	data, err := fs.ReadFile("db/" + snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.CorruptByte("db/"+snaps[0], len(data)/2, 0x20); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDurable(ctx, "db",
		DurableBoot{Models: w1.models, Cfg: Config{K: 3, H: 12, Seed: 3}, Matcher: b1.Spec.Matcher},
		DurableOptions{FS: fs}); err == nil {
		t.Fatal("OpenDurable accepted a corrupt snapshot")
	}
}

// TestDurableFreshDirNeedsBoot: an empty directory with no boot state
// is unrecoverable and must error cleanly.
func TestDurableFreshDirNeedsBoot(t *testing.T) {
	_, err := OpenDurable(context.Background(), "db", DurableBoot{}, DurableOptions{FS: wal.NewMemFS()})
	if err == nil || !strings.Contains(err.Error(), "no snapshot") {
		t.Fatalf("expected boot-state error, got %v", err)
	}
}

// TestDurableOnRealFilesystem runs the round-trip against OSFS so the
// os.File snapshot/rename/fsync path is exercised too.
func TestDurableOnRealFilesystem(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir() + "/store"
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, dir, durableBoot(w1, b1), DurableOptions{Policy: wal.SyncBatch, BatchEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	applySteps(t, st, st.Graph(), w1.products, 0, 5)
	if err := st.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	applySteps(t, st, st.Graph(), w1.products, 5, 8)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenDurable(ctx, dir,
		DurableBoot{Models: w1.models, Cfg: Config{K: 3, H: 12, Seed: 3}, Matcher: b1.Spec.Matcher},
		DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	wc, bc := durableWorld(t)
	ctl := &memStore{b: bc}
	applySteps(t, ctl, wc.g, wc.products, 0, 8)
	assertSameState(t, "osfs reopen vs control", st2.Base(), bc, st2.Graph(), wc.g)
}

// TestDurableSetLifecycle covers the catalog-level registry: Put/Get,
// sorted Names, RLockAll release, checkpoint-all and Close.
func TestDurableSetLifecycle(t *testing.T) {
	ctx := context.Background()
	ds := NewDurableSet()
	fs := wal.NewMemFS()
	w1, b1 := durableWorld(t)
	st, err := OpenDurable(ctx, "db", durableBoot(w1, b1), DurableOptions{Policy: wal.SyncAlways, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("product", st); err != nil {
		t.Fatal(err)
	}
	if err := ds.Put("product", st); err == nil {
		t.Fatal("duplicate Put accepted")
	}
	if ds.Get("product") != st || ds.Get("nope") != nil {
		t.Fatal("Get misrouted")
	}
	if names := ds.Names(); len(names) != 1 || names[0] != "product" {
		t.Fatalf("Names = %v", names)
	}
	applySteps(t, st, st.Graph(), w1.products, 0, 2)
	release := ds.RLockAll()
	_ = st.Base().Extracted.Len()
	release()
	if err := ds.Checkpoint(ctx, ""); err != nil {
		t.Fatal(err)
	}
	if got := st.SnapshotSeq(); got != 2 {
		t.Fatalf("checkpoint-all SnapshotSeq = %d, want 2", got)
	}
	if err := ds.Checkpoint(ctx, "nope"); err == nil {
		t.Fatal("checkpoint of unknown store accepted")
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	if ds.Get("product") != nil {
		t.Fatal("Close left store registered")
	}
	// Nil-receiver safety for the query path.
	var nilSet *DurableSet
	nilSet.RLockAll()()
	if nilSet.Get("x") != nil || nilSet.Names() != nil || nilSet.Close() != nil {
		t.Fatal("nil DurableSet misbehaved")
	}
}
