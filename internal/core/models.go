package core

import (
	"strings"

	"semjoin/internal/embed"
	"semjoin/internal/graph"
	"semjoin/internal/mat"
	"semjoin/internal/nn"
)

// Models bundles the learned components RExt depends on: the sequence
// model Mρ (LSTM by default; Transformer for the RExtBertSeq baseline) and
// the word embedder Me (GloVe-style by default; Transformer adapter for
// RExtBertEmb, hashing for ablations). RandomPaths disables Mρ-guided
// selection entirely (the RndPath baseline).
type Models struct {
	Seq         nn.SequenceModel
	Word        embed.Embedder
	RandomPaths bool
}

// BuildCorpus collects random-walk label sentences from g: walksPerVertex
// walks of walkLen steps from every vertex, rendered as alternating
// vertex/edge-label sequences (§III-A: "conduct random walk in G and
// collect sequences of edge/vertex labels ... to build a training
// corpus"). Construction is unsupervised.
func BuildCorpus(g *graph.Graph, walksPerVertex, walkLen int, seed uint64) [][]string {
	rng := mat.NewRNG(seed)
	var corpus [][]string
	g.Vertices(func(v graph.Vertex) {
		for w := 0; w < walksPerVertex; w++ {
			p := g.RandomWalk(rng, v.ID, walkLen)
			if p.Len() == 0 {
				continue
			}
			corpus = append(corpus, g.WalkSentence(p))
		}
	})
	// Cap the corpus: on large graphs full coverage is unnecessary for a
	// label-sequence model and training time must stay bounded (the paper
	// trains its LSTM on 10M-edge graphs in ~minutes, which implies
	// sampled walks). Deterministic down-sampling keeps reproducibility.
	const maxSentences = 1500
	if len(corpus) > maxSentences {
		rng.Shuffle(len(corpus), func(i, j int) { corpus[i], corpus[j] = corpus[j], corpus[i] })
		corpus = corpus[:maxSentences]
	}
	return corpus
}

// vocabMinCount prunes singleton tokens on large corpora: rare periphery
// labels become UNK, which keeps the LSTM's softmax layer (and training
// time) proportional to the label vocabulary that actually matters.
func vocabMinCount(corpusSentences int) int {
	if corpusSentences > 1000 {
		return 2
	}
	return 1
}

// TypeSentences renders one "L(v) τ" sentence per typed vertex of g.
// Word-embedding training consumes them so that value tokens ("UK")
// become cosine-close to their class word ("country") — the geometry the
// paper gets for free from pretrained GloVe and that RExt's third ranking
// term relies on to align user keywords with extracted values. The
// sentences are deliberately two tokens (distance-1 co-occurrence, the
// strongest GloVe weighting) with no filler words that would couple
// unrelated classes.
func TypeSentences(g *graph.Graph) [][]string {
	var out [][]string
	g.Vertices(func(v graph.Vertex) {
		if v.Type == "" {
			return
		}
		out = append(out, []string{v.Label, v.Type})
	})
	return out
}

// TrainModels trains the default model pair on g: an LSTM language model
// over the random-walk corpus, and GloVe-style word vectors over the same
// corpus plus the type sentences of the graph. epochs controls LSTM
// training passes.
func TrainModels(g *graph.Graph, epochs int, seed uint64) Models {
	corpus := BuildCorpus(g, 3, 8, seed)
	vocab := nn.BuildVocab(corpus, vocabMinCount(len(corpus)))
	lstm := nn.NewLSTM(vocab, nn.LSTMConfig{Seed: seed})
	lstm.Train(corpus, epochs)
	gloveCorpus := append([][]string(nil), corpus...)
	// Type sentences are few (one per typed vertex) against thousands of
	// walk sentences; replicate them so the value↔class co-occurrence is
	// strong enough for GloVe to encode.
	types := TypeSentences(g)
	reps := 0
	if len(types) > 0 {
		if reps = len(corpus) / len(types); reps < 20 {
			reps = 20
		}
	}
	for r := 0; r < reps; r++ {
		gloveCorpus = append(gloveCorpus, types...)
	}
	glove := embed.TrainGloVe(gloveCorpus, embed.GloVeConfig{Seed: seed})
	return Models{Seq: lstm, Word: NewTypeAwareEmbedder(g, glove, 2, seed)}
}

// TypeAwareEmbedder augments a word embedder with a type channel: the
// embedding of a known vertex label (or of a type name itself) gains a
// near-orthogonal unit component identifying its vertex type. Pretrained
// GloVe gives the paper this lexical-class signal ("UK" is a country-like
// word) for free; corpus-trained vectors on a small graph cannot separate
// adjacent classes (cities co-occur with their countries as strongly as
// countries do with the word "country"), so the graph's own type system
// supplies the class channel. See DESIGN.md, substitutions.
type TypeAwareEmbedder struct {
	inner embed.Embedder
	types map[string]string // lowercase label -> type; type name -> itself
	hash  *embed.HashEmbedder
	alpha float64
	seed  uint64
}

// NewTypeAwareEmbedder indexes g's labels and types. alpha weights the
// type channel against the (unit-normalised) word channel; 1 balances
// them.
func NewTypeAwareEmbedder(g *graph.Graph, inner embed.Embedder, alpha float64, seed uint64) *TypeAwareEmbedder {
	t := &TypeAwareEmbedder{
		inner: inner,
		types: map[string]string{},
		hash:  embed.NewHashEmbedder(32, seed^0xabcd),
		alpha: alpha,
		seed:  seed,
	}
	g.Vertices(func(v graph.Vertex) {
		if v.Type == "" {
			return
		}
		key := strings.ToLower(v.Label)
		if _, ok := t.types[key]; !ok {
			t.types[key] = v.Type
		}
		t.types[strings.ToLower(v.Type)] = v.Type
	})
	return t
}

// Dim returns the combined dimensionality.
func (t *TypeAwareEmbedder) Dim() int { return t.inner.Dim() + t.hash.Dim() }

// Embed returns concat(L2(inner(text)), alpha·hash(type(text))), with a
// zero type channel for strings that are neither labels nor type names.
func (t *TypeAwareEmbedder) Embed(text string) mat.Vector {
	w := mat.Normalize(t.inner.Embed(text))
	var tc mat.Vector
	if typ, ok := t.types[strings.ToLower(text)]; ok {
		tc = t.hash.Embed(typ)
		tc.Scale(t.alpha)
	} else {
		tc = mat.NewVector(t.hash.Dim())
	}
	return mat.Concat(w, tc)
}

// TransformerWordEmbedder adapts a Transformer sequence model into a word
// embedder (the RExtBertEmb baseline): a label embeds as the final-position
// representation of its word tokens.
type TransformerWordEmbedder struct {
	M *nn.Transformer
}

// Embed returns the Transformer representation of text's word tokens.
func (t TransformerWordEmbedder) Embed(text string) mat.Vector {
	toks := embed.Tokenize(text)
	if len(toks) == 0 {
		return mat.NewVector(t.M.EmbedDim())
	}
	return t.M.EmbedSequence(toks)
}

// Dim returns the embedding dimensionality.
func (t TransformerWordEmbedder) Dim() int { return t.M.EmbedDim() }
