package core

import (
	"fmt"
	"io"
	"sort"

	"semjoin/internal/bin"
	"semjoin/internal/embed"
	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/nn"
	"semjoin/internal/rel"
)

// SaveModels persists a trained model pair: the LSTM Mρ, the GloVe-style
// inner word embedder and the type-channel index. Only the default
// implementations round-trip (LSTM + TypeAwareEmbedder over GloVe);
// Transformer baselines and RandomPaths configurations are experiment
// devices, not deployment artifacts.
func SaveModels(out io.Writer, m Models) error {
	lstm, ok := m.Seq.(*nn.LSTM)
	if !ok {
		return fmt.Errorf("core: only LSTM sequence models persist (got %T)", m.Seq)
	}
	tae, ok := m.Word.(*TypeAwareEmbedder)
	if !ok {
		return fmt.Errorf("core: only TypeAwareEmbedder word embedders persist (got %T)", m.Word)
	}
	glove, ok := tae.inner.(*embed.GloVe)
	if !ok {
		return fmt.Errorf("core: only GloVe inner embedders persist (got %T)", tae.inner)
	}
	w := bin.NewWriter(out)
	w.Header("models", 1)
	if err := w.Err(); err != nil {
		return err
	}
	if err := lstm.Save(out); err != nil {
		return err
	}
	if err := glove.Save(out); err != nil {
		return err
	}
	// Type channel: alpha, hash seed and the label->type index.
	w.F64(tae.alpha)
	w.U64(tae.seed)
	keys := make([]string, 0, len(tae.types))
	for k := range tae.types {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Int(len(keys))
	for _, k := range keys {
		w.String(k)
		w.String(tae.types[k])
	}
	return w.Err()
}

// LoadModels restores a model pair written by SaveModels.
func LoadModels(in io.Reader) (Models, error) {
	r := bin.NewReader(in)
	if v := r.Header("models"); r.Err() == nil && v != 1 {
		return Models{}, fmt.Errorf("core: unsupported models version %d", v)
	}
	if err := r.Err(); err != nil {
		return Models{}, err
	}
	lstm, err := nn.LoadLSTM(in)
	if err != nil {
		return Models{}, err
	}
	glove, err := embed.LoadGloVe(in)
	if err != nil {
		return Models{}, err
	}
	tae := &TypeAwareEmbedder{
		inner: glove,
		types: map[string]string{},
	}
	tae.alpha = r.F64()
	tae.seed = r.U64()
	tae.hash = embed.NewHashEmbedder(32, tae.seed^0xabcd)
	n := r.Len()
	for i := 0; i < n; i++ {
		k := r.String()
		tae.types[k] = r.String()
	}
	if err := r.Err(); err != nil {
		return Models{}, err
	}
	return Models{Seq: lstm, Word: tae}, nil
}

// SaveScheme persists an extraction scheme (the extracted schema RG plus
// the selected pattern clusters with their keyword embeddings), so that
// Algorithm 1 can run on new data or a new graph version without
// re-discovery (see Extractor.ExtractWithScheme).
func SaveScheme(out io.Writer, s *Scheme) error {
	w := bin.NewWriter(out)
	w.Header("scheme", 1)
	w.String(s.Schema.Name)
	w.Int(s.K)
	w.Int(len(s.Clusters))
	for _, pc := range s.Clusters {
		w.String(pc.Attr)
		w.F64s(pc.attrVec)
		w.Int(len(pc.Patterns))
		for _, p := range pc.Patterns {
			w.Strings([]string(p))
		}
	}
	return w.Err()
}

// LoadScheme restores a scheme written by SaveScheme.
func LoadScheme(in io.Reader) (*Scheme, error) {
	r := bin.NewReader(in)
	if v := r.Header("scheme"); r.Err() == nil && v != 1 {
		return nil, fmt.Errorf("core: unsupported scheme version %d", v)
	}
	name := r.String()
	k := r.Int()
	n := r.Len()
	s := &Scheme{K: k}
	attrs := []rel.Attribute{{Name: "vid", Type: rel.KindInt}}
	for i := 0; i < n; i++ {
		pc := PatternCluster{
			Attr:    r.String(),
			attrVec: r.F64s(),
			patKeys: map[string]bool{},
		}
		np := r.Len()
		for j := 0; j < np; j++ {
			p := PathPattern(r.Strings())
			pc.Patterns = append(pc.Patterns, p)
			pc.patKeys[p.Key()] = true
		}
		if r.Err() != nil {
			return nil, r.Err()
		}
		s.Clusters = append(s.Clusters, pc)
		attrs = append(attrs, rel.Attribute{Name: pc.Attr, Type: rel.KindString})
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	s.Schema = rel.NewSchema(name, "vid", attrs...)
	return s, nil
}

// SaveBase persists one base materialisation — the reference keywords AR,
// the match relation f(D,G), the extracted relation h(D,G) and the
// extraction scheme — everything a fresh process needs to answer
// well-behaved static joins without re-running HER or RExt.
func SaveBase(out io.Writer, b *BaseMaterialization) error {
	w := bin.NewWriter(out)
	w.Header("base", 1)
	w.Strings(b.Spec.AR)
	if err := w.Err(); err != nil {
		return err
	}
	if err := b.MatchRel.Save(out); err != nil {
		return err
	}
	if err := b.Extracted.Save(out); err != nil {
		return err
	}
	return SaveScheme(out, b.Extractor.Scheme())
}

// LoadBase restores a materialisation written by SaveBase. The returned
// value answers static joins; incremental maintenance additionally needs
// the graph and models, which the caller re-attaches via RebindExtractor.
func LoadBase(in io.Reader, d *rel.Relation, g *graph.Graph, models Models, matcher her.Matcher, cfg Config) (*BaseMaterialization, error) {
	r := bin.NewReader(in)
	if v := r.Header("base"); r.Err() == nil && v != 1 {
		return nil, fmt.Errorf("core: unsupported base version %d", v)
	}
	ar := r.Strings()
	if err := r.Err(); err != nil {
		return nil, err
	}
	matchRel, err := rel.LoadRelation(in)
	if err != nil {
		return nil, err
	}
	extracted, err := rel.LoadRelation(in)
	if err != nil {
		return nil, err
	}
	scheme, err := LoadScheme(in)
	if err != nil {
		return nil, err
	}
	cfg.Keywords = ar
	cfg.K = scheme.K
	ex := NewExtractor(g, models, cfg)
	ex.s = d
	ex.scheme = scheme
	ex.result = extracted
	matches := matchesFromRelation(d, matchRel)
	ex.matches = matches
	ex.vertexTuple = make(map[graph.VertexID]int, len(matches))
	for _, m := range matches {
		if _, ok := ex.vertexTuple[m.Vertex]; !ok {
			ex.vertexTuple[m.Vertex] = m.TupleIdx
		}
	}
	return &BaseMaterialization{
		Spec:      BaseSpec{D: d, AR: ar, Matcher: matcher},
		Extractor: ex,
		MatchRel:  matchRel,
		Extracted: extracted,
	}, nil
}

// matchesFromRelation reconstructs her.Match values from a persisted
// match relation, re-resolving tuple indexes against d by key.
func matchesFromRelation(d *rel.Relation, matchRel *rel.Relation) []her.Match {
	keyCol := d.Schema.KeyCol()
	byTID := map[string]int{}
	if keyCol >= 0 {
		for i, t := range d.Tuples {
			byTID[t[keyCol].String()] = i
		}
	}
	tidCol := 0
	vidCol := matchRel.Schema.Col("vid")
	var out []her.Match
	for _, t := range matchRel.Tuples {
		idx, ok := byTID[t[tidCol].String()]
		if !ok {
			continue
		}
		out = append(out, her.Match{
			TupleIdx: idx, TID: t[tidCol],
			Vertex: graph.VertexID(t[vidCol].Int()), Score: 1,
		})
	}
	return out
}
