package core

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"semjoin/internal/graph"
	"semjoin/internal/mat"
	"semjoin/internal/wal"
)

// BenchmarkDurableGraphUpdate is the full durable write path on the
// real filesystem: encode, WAL append (group commit), incremental
// re-extraction. Each op is one 4-update batch.
func BenchmarkDurableGraphUpdate(b *testing.B) {
	w, base := durableWorld(b)
	st, err := OpenDurable(context.Background(), b.TempDir(), durableBoot(w, base),
		DurableOptions{Policy: wal.SyncBatch, FS: wal.OSFS{}})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		delta := graph.RandomMixedBatch(st.Graph(), mat.NewRNG(uint64(1000+i)), 4)
		if _, err := st.ApplyGraphUpdate(delta); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(4*b.N)/b.Elapsed().Seconds(), "updates/s")
}

// BenchmarkDurableMixedRead measures read throughput through View
// while a background writer streams graph batches into the store —
// the gsqlload -ingest-every scenario at the storage layer. ns/op is
// one locked read of the extracted relation.
func BenchmarkDurableMixedRead(b *testing.B) {
	w, base := durableWorld(b)
	st, err := OpenDurable(context.Background(), b.TempDir(), durableBoot(w, base),
		DurableOptions{Policy: wal.SyncBatch, FS: wal.OSFS{}})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var writes atomic.Int64
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ { //lint:allow ctxloop benchmark writer is bounded by the stop channel, not a context
			select {
			case <-stop:
				return
			default:
			}
			delta := graph.RandomMixedBatch(st.Graph(), mat.NewRNG(uint64(5000+i)), 2)
			if _, err := st.ApplyGraphUpdate(delta); err != nil {
				b.Error(err)
				return
			}
			writes.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rows := 0
		for pb.Next() {
			if err := st.View(func(bm *BaseMaterialization) error {
				rows += bm.Extracted.Len()
				return nil
			}); err != nil {
				b.Error(err)
				return
			}
		}
		_ = rows
	})
	b.StopTimer()
	close(stop)
	<-writerDone
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
	b.ReportMetric(float64(writes.Load())/b.Elapsed().Seconds(), "writes/s")
}
