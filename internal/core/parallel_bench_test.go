package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/obs"
)

// benchLinkGraph builds a connected synthetic graph (ring plus random
// chords, mean out-degree ~deg) and two match sets over its vertices —
// big enough that the k-hop BFS fan-out dominates the join.
func benchLinkGraph(n, deg, matches int) (*graph.Graph, []her.Match, []her.Match) {
	rng := rand.New(rand.NewSource(17))
	g := graph.New()
	verts := make([]graph.VertexID, n)
	for i := 0; i < n; i++ {
		verts[i] = g.AddVertex(fmt.Sprintf("v%d", i), "entity")
	}
	for i := 0; i < n; i++ {
		g.AddEdge(verts[i], "next", verts[(i+1)%n])
		for d := 1; d < deg; d++ {
			g.AddEdge(verts[i], "link", verts[rng.Intn(n)])
		}
	}
	pick := func() []her.Match {
		ms := make([]her.Match, matches)
		for i := range ms {
			ms[i] = her.Match{TupleIdx: i, Vertex: verts[rng.Intn(n)], Score: 1}
		}
		return ms
	}
	return g, pick(), pick()
}

// BenchmarkParallelLinkJoin measures the gL connectivity computation —
// the link join's dominant cost — at P ∈ {1, 2, GOMAXPROCS}. The
// acceptance bar for the morsel-parallel work is >= 1.5x speedup at
// P = GOMAXPROCS on machines with >= 4 CPUs.
func BenchmarkParallelLinkJoin(b *testing.B) {
	g, m1, m2 := benchLinkGraph(4000, 6, 300)
	ctx := context.Background()
	for _, p := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := glRelation(ctx, g, m1, m2, 3, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelLinkJoinObs isolates the metrics layer's cost on
// the link-join hot path: the identical gL computation with no
// registry on the context (every obs call is a nil-receiver no-op,
// the shipped default) and with a live registry recording BFS
// counters and reach-size histograms. The acceptance bar for the
// observability work is < 3% overhead with metrics enabled.
func BenchmarkParallelLinkJoinObs(b *testing.B) {
	g, m1, m2 := benchLinkGraph(4000, 6, 300)
	for _, bc := range []struct {
		name string
		ctx  context.Context
	}{
		{"metrics=off", context.Background()},
		{"metrics=on", obs.WithRegistry(context.Background(), obs.NewRegistry())},
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := glRelation(bc.ctx, g, m1, m2, 3, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestParallelLinkJoinMatchesSerial pins that the parallel BFS fan-out
// is a pure optimization: the gL relation at any P equals the serial
// one tuple for tuple.
func TestParallelLinkJoinMatchesSerial(t *testing.T) {
	g, m1, m2 := benchLinkGraph(400, 4, 60)
	ctx := context.Background()
	serial, err := glRelation(ctx, g, m1, m2, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		par, err := glRelation(ctx, g, m1, m2, 3, p)
		if err != nil {
			t.Fatal(err)
		}
		if par.Len() != serial.Len() {
			t.Fatalf("p=%d: %d pairs, want %d", p, par.Len(), serial.Len())
		}
		for i := range par.Tuples {
			for c := range par.Tuples[i] {
				if !par.Tuples[i][c].Equal(serial.Tuples[i][c]) {
					t.Fatalf("p=%d row %d: %v != %v", p, i, par.Tuples[i], serial.Tuples[i])
				}
			}
		}
	}
}
