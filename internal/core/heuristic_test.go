package core

import (
	"testing"

	"semjoin/internal/rel"
)

func movieProfiles(t *testing.T, w *world) map[string]*TypeExtraction {
	t.Helper()
	return ProfileGraph(w.g, w.models, map[string][]string{
		"product": {"company", "country"},
	}, 2, Config{K: 3, H: 12, Seed: 3})
}

func TestHeuristicLink(t *testing.T) {
	w := getWorld(t)
	h := NewHeuristicJoiner(movieProfiles(t, w))
	one := rel.Select(w.products, func(tp rel.Tuple) bool {
		return w.products.Get(tp, "pid").Equal(rel.S("fd00"))
	})
	out, err := h.Link(one, rel.Rename(w.products, "p2"), w.g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("heuristic link found nothing")
	}
	// Compare against the exact link join: high overlap expected.
	exact, err := LinkJoin(one, rel.Rename(w.products, "p2"), w.g, oracle(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() < exact.Len()/2 || out.Len() > exact.Len()*2 {
		t.Fatalf("heuristic link size %d far from exact %d", out.Len(), exact.Len())
	}
}

func TestHeuristicLinkNoProfiles(t *testing.T) {
	h := NewHeuristicJoiner(nil)
	w := getWorld(t)
	if _, err := h.Link(w.products, w.products, w.g, 2); err == nil {
		t.Fatal("expected error without profiles")
	}
}

func TestClusterDiagnostics(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
	})
	if err := ex.Discover(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	diags := ex.ClusterDiagnostics()
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Score < diags[i].Score {
			t.Fatal("diagnostics not sorted by score")
		}
	}
	for _, d := range diags {
		if d.Size > 0 && len(d.EndLabelCounts) == 0 {
			t.Fatal("non-empty cluster without end labels")
		}
		if len(d.Patterns) == 0 {
			t.Fatal("cluster without patterns")
		}
	}
}

func TestAblationFlags(t *testing.T) {
	w := getWorld(t)
	base := Config{K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3}
	run := func(mutate func(*Config)) *rel.Relation {
		cfg := base
		mutate(&cfg)
		ex := NewExtractor(w.g, w.models, cfg)
		dg, err := ex.Run(w.products, oracle(w).Match(w.products, w.g))
		if err != nil {
			t.Fatal(err)
		}
		return dg
	}
	// Every ablation must still produce a full relation (quality may
	// differ; the benches measure that).
	for _, mutate := range []func(*Config){
		func(c *Config) { c.NoRefinement = true },
		func(c *Config) { c.DisableTerm1 = true },
		func(c *Config) { c.DisableTerm2 = true },
		func(c *Config) { c.DisableTerm3 = true },
		func(c *Config) { c.LengthPenalty = -1 },
		func(c *Config) { c.AllowBounce = true },
		func(c *Config) { c.Beam = 1 },
	} {
		if dg := run(mutate); dg.Len() != w.products.Len() {
			t.Fatalf("ablation changed row count: %d", dg.Len())
		}
	}
}

func TestExtractWithSchemeReuse(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company"}, Seed: 3,
	})
	dg1, err := ex.Run(w.products, oracle(w).Match(w.products, w.g))
	if err != nil {
		t.Fatal(err)
	}
	// A second extractor applies the saved scheme without discovery.
	ex2 := NewExtractor(w.g, w.models, Config{K: 3, H: 12, Keywords: []string{"company"}, Seed: 3})
	dg2, err := ex2.ExtractWithScheme(w.products, ex.Scheme(), oracle(w).Match(w.products, w.g))
	if err != nil {
		t.Fatal(err)
	}
	if !sameRelation(dg1, dg2) {
		t.Fatal("scheme reuse must reproduce the extraction")
	}
}

// TestHeuristicLinkVsExact compares the heuristic link join (§IV-B: no
// HER, alignment by pairwise ER against the profiled gτ relation) against
// the exact LinkJoin with the oracle matcher, across k values and graph
// shapes. The heuristic trades recall for speed but must stay precise:
// at least minPrecision of its output pairs appear in the exact result.
func TestHeuristicLinkVsExact(t *testing.T) {
	pairKey := func(r *rel.Relation, c1, c2 string) map[string]int {
		i1, i2 := r.Schema.Col(c1), r.Schema.Col(c2)
		if i1 < 0 || i2 < 0 {
			t.Fatalf("columns %q/%q missing in %v", c1, c2, r.Schema)
		}
		out := map[string]int{}
		for _, tp := range r.Tuples {
			out[tp[i1].Key()+"\x1f"+tp[i2].Key()]++
		}
		return out
	}

	cases := []struct {
		name         string
		k            int
		orphan       bool // add a disconnected product vertex + tuple
		minPrecision float64
		identityOnly bool // every output pair must be (x, x)
	}{
		{name: "k0-colocated-only", k: 0, minPrecision: 1.0, identityOnly: true},
		{name: "k2-company-neighbourhood", k: 2, minPrecision: 0.9},
		{name: "k3-wide", k: 3, minPrecision: 0.9},
		{name: "k2-with-disconnected-vertex", k: 2, orphan: true, minPrecision: 0.9},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := freshWorld()
			if tc.orphan {
				// A product vertex with no edges at all: reachable from
				// nothing, so neither join may pair it with another entity.
				v := w.g.AddVertex("orphan prod 99", "product")
				w.products.InsertVals(rel.S("fd99"), rel.S("orphan prod 99"), rel.S("Funds"))
				w.truth["fd99"] = v
			}
			h := NewHeuristicJoiner(movieProfiles(t, w))
			q2 := rel.Rename(w.products, "p2")

			heur, err := h.Link(w.products, q2, w.g, tc.k)
			if err != nil {
				t.Fatal(err)
			}
			exact, err := LinkJoin(w.products, q2, w.g, oracle(w), tc.k)
			if err != nil {
				t.Fatal(err)
			}
			if exact.Len() == 0 || heur.Len() == 0 {
				t.Fatalf("degenerate case: heur=%d exact=%d rows", heur.Len(), exact.Len())
			}

			hp := pairKey(heur, "product.pid", "p2.pid")
			ep := pairKey(exact, "product.pid", "p2.pid")
			hit, total := 0, 0
			for k, n := range hp {
				total += n
				if m := ep[k]; m > 0 {
					if n < m {
						hit += n
					} else {
						hit += m
					}
				}
			}
			precision := float64(hit) / float64(total)
			t.Logf("k=%d: heuristic %d rows, exact %d rows, precision %.3f",
				tc.k, heur.Len(), exact.Len(), precision)
			if precision < tc.minPrecision {
				t.Fatalf("precision %.3f below bound %.2f", precision, tc.minPrecision)
			}

			if tc.identityOnly {
				// k=0 reaches only the vertex itself, so both joins may
				// emit only co-located (identical-entity) pairs.
				for _, r := range []*rel.Relation{heur, exact} {
					i1, i2 := r.Schema.Col("product.pid"), r.Schema.Col("p2.pid")
					for _, tp := range r.Tuples {
						if !tp[i1].Equal(tp[i2]) {
							t.Fatalf("k=0 pair %v / %v crosses entities", tp[i1], tp[i2])
						}
					}
				}
			}
			if tc.orphan {
				// The disconnected vertex must never link across entities.
				for name, r := range map[string]*rel.Relation{"heuristic": heur, "exact": exact} {
					i1, i2 := r.Schema.Col("product.pid"), r.Schema.Col("p2.pid")
					for _, tp := range r.Tuples {
						a, b := tp[i1].Str(), tp[i2].Str()
						if (a == "fd99" || b == "fd99") && a != b {
							t.Fatalf("%s links disconnected fd99 with %s/%s", name, a, b)
						}
					}
				}
			}
		})
	}
}

func TestHeuristicLinkEmptySide(t *testing.T) {
	w := getWorld(t)
	h := NewHeuristicJoiner(movieProfiles(t, w))
	empty := rel.NewRelation(w.products.Schema)
	out, err := h.Link(empty, rel.Rename(w.products, "p2"), w.g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatalf("empty left side produced %d rows", out.Len())
	}
}
