package core

import (
	"testing"

	"semjoin/internal/rel"
)

func movieProfiles(t *testing.T, w *world) map[string]*TypeExtraction {
	t.Helper()
	return ProfileGraph(w.g, w.models, map[string][]string{
		"product": {"company", "country"},
	}, 2, Config{K: 3, H: 12, Seed: 3})
}

func TestHeuristicLink(t *testing.T) {
	w := getWorld(t)
	h := NewHeuristicJoiner(movieProfiles(t, w))
	one := rel.Select(w.products, func(tp rel.Tuple) bool {
		return w.products.Get(tp, "pid").Equal(rel.S("fd00"))
	})
	out, err := h.Link(one, rel.Rename(w.products, "p2"), w.g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("heuristic link found nothing")
	}
	// Compare against the exact link join: high overlap expected.
	exact, err := LinkJoin(one, rel.Rename(w.products, "p2"), w.g, oracle(w), 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() < exact.Len()/2 || out.Len() > exact.Len()*2 {
		t.Fatalf("heuristic link size %d far from exact %d", out.Len(), exact.Len())
	}
}

func TestHeuristicLinkNoProfiles(t *testing.T) {
	h := NewHeuristicJoiner(nil)
	w := getWorld(t)
	if _, err := h.Link(w.products, w.products, w.g, 2); err == nil {
		t.Fatal("expected error without profiles")
	}
}

func TestClusterDiagnostics(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
	})
	if err := ex.Discover(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	diags := ex.ClusterDiagnostics()
	if len(diags) == 0 {
		t.Fatal("no diagnostics")
	}
	for i := 1; i < len(diags); i++ {
		if diags[i-1].Score < diags[i].Score {
			t.Fatal("diagnostics not sorted by score")
		}
	}
	for _, d := range diags {
		if d.Size > 0 && len(d.EndLabelCounts) == 0 {
			t.Fatal("non-empty cluster without end labels")
		}
		if len(d.Patterns) == 0 {
			t.Fatal("cluster without patterns")
		}
	}
}

func TestAblationFlags(t *testing.T) {
	w := getWorld(t)
	base := Config{K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3}
	run := func(mutate func(*Config)) *rel.Relation {
		cfg := base
		mutate(&cfg)
		ex := NewExtractor(w.g, w.models, cfg)
		dg, err := ex.Run(w.products, oracle(w).Match(w.products, w.g))
		if err != nil {
			t.Fatal(err)
		}
		return dg
	}
	// Every ablation must still produce a full relation (quality may
	// differ; the benches measure that).
	for _, mutate := range []func(*Config){
		func(c *Config) { c.NoRefinement = true },
		func(c *Config) { c.DisableTerm1 = true },
		func(c *Config) { c.DisableTerm2 = true },
		func(c *Config) { c.DisableTerm3 = true },
		func(c *Config) { c.LengthPenalty = -1 },
		func(c *Config) { c.AllowBounce = true },
		func(c *Config) { c.Beam = 1 },
	} {
		if dg := run(mutate); dg.Len() != w.products.Len() {
			t.Fatalf("ablation changed row count: %d", dg.Len())
		}
	}
}

func TestExtractWithSchemeReuse(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company"}, Seed: 3,
	})
	dg1, err := ex.Run(w.products, oracle(w).Match(w.products, w.g))
	if err != nil {
		t.Fatal(err)
	}
	// A second extractor applies the saved scheme without discovery.
	ex2 := NewExtractor(w.g, w.models, Config{K: 3, H: 12, Keywords: []string{"company"}, Seed: 3})
	dg2 := ex2.ExtractWithScheme(w.products, ex.Scheme(), oracle(w).Match(w.products, w.g))
	if !sameRelation(dg1, dg2) {
		t.Fatal("scheme reuse must reproduce the extraction")
	}
}
