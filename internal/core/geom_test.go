package core

import (
	"testing"

	"semjoin/internal/mat"
)

// TestDebugKeywordGeometry inspects the value↔class cosine structure the
// ranking function depends on; enable with -v.
func TestDebugKeywordGeometry(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug helper")
	}
	w := getWorld(t)
	words := []string{"UK", "US", "Acme Corp", "Globex Corp", "Funds", "prod 01"}
	kws := []string{"country", "company", "category"}
	for _, wd := range words {
		v := mat.Normalize(w.models.Word.Embed(wd))
		line := wd + ":"
		for _, kw := range kws {
			line += " " + kw + "=" +
				formatF(mat.Cosine(v, mat.Normalize(w.models.Word.Embed(kw))))
		}
		t.Log(line)
	}
}

func formatF(f float64) string {
	return string(rune('0'+int((f+1)*4.999))) + "(" + trim(f) + ")"
}

func trim(f float64) string {
	s := ""
	if f < 0 {
		s = "-"
		f = -f
	}
	i := int(f * 100)
	return s + string(rune('0'+i/100)) + "." + string(rune('0'+(i/10)%10)) + string(rune('0'+i%10))
}
