package core

import (
	"testing"

	"semjoin/internal/graph"
	"semjoin/internal/her"
	"semjoin/internal/rel"
)

// TestUnicodeLabelsEndToEnd runs the whole pipeline — corpus, training,
// HER, extraction, enrichment — over a graph with non-ASCII labels.
func TestUnicodeLabelsEndToEnd(t *testing.T) {
	g := graph.New()
	cities := []string{"São Paulo", "München", "北京", "Kraków"}
	cityV := make([]graph.VertexID, len(cities))
	for i, c := range cities {
		cityV[i] = g.AddVertex(c, "city")
	}
	products := rel.NewRelation(rel.NewSchema("product", "pid",
		rel.Attribute{Name: "pid", Type: rel.KindString},
		rel.Attribute{Name: "name", Type: rel.KindString},
	))
	truth := map[string]graph.VertexID{}
	for i := 0; i < 12; i++ {
		name := []string{"häagen", "smörgås", "žluťoučký", "crème"}[i%4] + " " + string(rune('α'+i))
		v := g.AddVertex(name, "product")
		g.AddEdge(v, "made_in", cityV[i%len(cities)])
		pid := "p" + string(rune('0'+i%10)) + string(rune('a'+i/10))
		products.InsertVals(rel.S(pid), rel.S(name))
		truth[pid] = v
	}
	models := TrainModels(g, 5, 3)
	out, err := EnrichmentJoin(products, g, models,
		her.NewOracleMatcher(truth), []string{"city"}, Config{K: 2, H: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != products.Len() {
		t.Fatalf("rows = %d", out.Len())
	}
	hits := 0
	for i, tp := range out.Tuples {
		_ = i
		if got := out.Get(tp, "city").Str(); got != "" {
			for _, c := range cities {
				if got == c {
					hits++
				}
			}
		}
	}
	if hits < 10 {
		t.Fatalf("unicode city extraction hits = %d/12", hits)
	}
}
