package core

import (
	"fmt"
	"math"
	"sort"

	"semjoin/internal/embed"
	"semjoin/internal/graph"
	"semjoin/internal/rel"
)

// HeuristicJoiner answers semantic joins that are not well-behaved
// (§IV-B) without calling HER or RExt online. It assumes a typed graph
// profiled offline into reference relations gτ(G) (ExtractForType /
// ProfileGraph) and approximates Q ⋈_A G in three steps: (1) pick the
// type τ whose schema Rτ shares the most attributes with the query's
// output schema R_Q via schema-level matching; (2) match the query result
// S against gτ(G) with a pairwise-ER UDF; (3) join S with gτ(G) using the
// ER matches as the join condition.
type HeuristicJoiner struct {
	profiles map[string]*TypeExtraction
	// Threshold is the pairwise-ER acceptance similarity (default 0.25).
	Threshold float64
}

// NewHeuristicJoiner builds a joiner over profiled type extractions.
func NewHeuristicJoiner(profiles map[string]*TypeExtraction) *HeuristicJoiner {
	return &HeuristicJoiner{profiles: profiles, Threshold: 0.5}
}

// ChooseType performs the schema-level matching of step (1): the type τ
// whose Rτ (attribute names and requested keywords A) overlaps R_Q most.
// It returns the chosen type and its overlap score.
func (h *HeuristicJoiner) ChooseType(q *rel.Schema, a []string) (string, int) {
	qAttrs := map[string]bool{}
	for _, attr := range q.Attrs {
		qAttrs[NormalizeAttr(lastComponent(attr.Name))] = true
	}
	want := map[string]bool{}
	for _, kw := range a {
		want[NormalizeAttr(kw)] = true
	}
	bestType, bestScore := "", -1
	types := make([]string, 0, len(h.profiles))
	for t := range h.profiles {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		score := 0
		te := h.profiles[t]
		for _, attr := range te.Relation.Schema.Attrs {
			n := NormalizeAttr(attr.Name)
			if qAttrs[n] {
				score += 2 // shared with R_Q: strong signal
			}
			if want[n] {
				score += 3 // covers a requested keyword: essential
			}
		}
		if NormalizeAttr(t) != "" && qAttrs[NormalizeAttr(t)] {
			score++ // the type name itself appears as an attribute
		}
		if score > bestScore {
			bestType, bestScore = t, score
		}
	}
	return bestType, bestScore
}

// Enrich approximates the enrichment join q ⋈_A G. It returns the joined
// relation (q's attributes plus the requested attributes from gτ) and the
// chosen type.
func (h *HeuristicJoiner) Enrich(q *rel.Relation, a []string) (*rel.Relation, string, error) {
	if len(h.profiles) == 0 {
		return nil, "", fmt.Errorf("core: heuristic join needs profiled type extractions")
	}
	typ, score := h.ChooseType(q.Schema, a)
	if typ == "" || score <= 0 {
		return nil, "", fmt.Errorf("core: no relevant type extraction for schema %s", q.Schema)
	}
	gt := h.profiles[typ].Relation

	// Step (2): pairwise-ER match relation between q and gτ(G) tuples.
	// Tokens are weighted by inverse document frequency over gτ so that
	// boilerplate tokens shared by every entity ("prod", "the") cannot
	// fake a match; similarity is the covered fraction of the query
	// tuple's matchable IDF mass.
	// The vid column is an internal surrogate id: it must not contribute
	// ER evidence (its digits would collide with value tokens).
	vidCol := gt.Schema.Col("vid")
	rowTokens := func(t rel.Tuple) map[string]bool {
		masked := make(rel.Tuple, len(t))
		copy(masked, t)
		if vidCol >= 0 {
			masked[vidCol] = rel.Null
		}
		return tupleTokens(masked)
	}
	idf := buildIDFMasked(gt, rowTokens)
	// Step (3): join with ER as the join condition.
	joined, err := rel.NestedLoopJoin(q, gt, func(t rel.Tuple) bool {
		qt := tupleTokens(t[:len(q.Schema.Attrs)])
		row := rowTokens(t[len(q.Schema.Attrs):])
		return idf.sim(qt, row) >= h.Threshold
	})
	if err != nil {
		return nil, "", err
	}

	// Keep q's attributes plus vid plus the requested attributes that gτ
	// actually carries.
	cols := make([]string, 0, len(q.Schema.Attrs)+1+len(a))
	for _, attr := range q.Schema.Attrs {
		cols = append(cols, q.Schema.Name+"."+attr.Name)
	}
	cols = append(cols, gt.Schema.Name+".vid")
	for _, kw := range a {
		for _, attr := range gt.Schema.Attrs {
			if NormalizeAttr(attr.Name) == NormalizeAttr(kw) {
				cols = append(cols, gt.Schema.Name+"."+attr.Name)
			}
		}
	}
	out, err := rel.Project(joined, cols...)
	if err != nil {
		return nil, "", err
	}
	// Restore bare attribute names where unambiguous for downstream
	// predicates: strip the qualifier from q's columns and keyword columns.
	attrs := make([]rel.Attribute, len(out.Schema.Attrs))
	seen := map[string]int{}
	for i, attr := range out.Schema.Attrs {
		bare := lastComponent(attr.Name)
		seen[bare]++
		attrs[i] = rel.Attribute{Name: bare, Type: attr.Type}
	}
	for i := range attrs {
		if seen[attrs[i].Name] > 1 {
			attrs[i].Name = out.Schema.Attrs[i].Name // keep qualified on clash
		}
	}
	renamed := rel.NewRelation(rel.NewSchema(q.Schema.Name+"_h", "", attrs...))
	renamed.Tuples = out.Tuples
	return renamed, typ, nil
}

// Link approximates the link join q1 ⋈_G q2 without HER: each side is
// aligned to gτ rows by the same pairwise ER as Enrich (recovering a
// vertex id per tuple), and aligned pairs within k hops join ("the case
// for link joins is similar", §IV-B).
func (h *HeuristicJoiner) Link(q1, q2 *rel.Relation, g *graph.Graph, k int) (*rel.Relation, error) {
	v1, err := h.alignVids(q1)
	if err != nil {
		return nil, err
	}
	v2, err := h.alignVids(q2)
	if err != nil {
		return nil, err
	}
	name2 := q2.Schema.Name
	if name2 == q1.Schema.Name {
		name2 += "2"
	}
	s1 := q1.Schema.Qualified(q1.Schema.Name)
	s2 := q2.Schema.Qualified(name2)
	attrs := append(append([]rel.Attribute(nil), s1.Attrs...), s2.Attrs...)
	out := rel.NewRelation(rel.NewSchema(q1.Schema.Name+"_hl_"+name2, "", attrs...))
	reach := map[graph.VertexID]map[graph.VertexID]bool{}
	for i1, t1 := range q1.Tuples {
		a, ok := v1[i1]
		if !ok || !g.Live(a) {
			continue
		}
		r, ok := reach[a]
		if !ok {
			r = g.KHopNeighborhood([]graph.VertexID{a}, k)
			reach[a] = r
		}
		for i2, t2 := range q2.Tuples {
			b, ok := v2[i2]
			if !ok || !r[b] {
				continue
			}
			nt := make(rel.Tuple, 0, len(t1)+len(t2))
			nt = append(append(nt, t1...), t2...)
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out, nil
}

// alignVids maps each tuple index of q to the vertex id of its
// best-matching gτ row (above threshold), using ChooseType with no
// requested keywords.
func (h *HeuristicJoiner) alignVids(q *rel.Relation) (map[int]graph.VertexID, error) {
	typ, score := h.ChooseType(q.Schema, nil)
	if typ == "" || score < 0 {
		return nil, fmt.Errorf("core: no relevant type extraction for %s", q.Schema)
	}
	gt := h.profiles[typ].Relation
	vidCol := gt.Schema.Col("vid")
	rowTokens := func(t rel.Tuple) map[string]bool {
		masked := make(rel.Tuple, len(t))
		copy(masked, t)
		if vidCol >= 0 {
			masked[vidCol] = rel.Null
		}
		return tupleTokens(masked)
	}
	idf := buildIDFMasked(gt, rowTokens)
	gtToks := make([]map[string]bool, gt.Len())
	for i, t := range gt.Tuples {
		gtToks[i] = rowTokens(t)
	}
	out := map[int]graph.VertexID{}
	for qi, qt := range q.Tuples {
		toks := tupleTokens(qt)
		best, bestSim := -1, h.Threshold
		for i := range gt.Tuples {
			if sim := idf.sim(toks, gtToks[i]); sim > bestSim {
				best, bestSim = i, sim
			}
		}
		if best >= 0 {
			out[qi] = graph.VertexID(gt.Tuples[best][vidCol].Int())
		}
	}
	return out, nil
}

// tupleTokens collects the word tokens of a tuple's values.
func tupleTokens(t rel.Tuple) map[string]bool {
	out := map[string]bool{}
	for _, v := range t {
		if v.IsNull() {
			continue
		}
		for _, tok := range embed.Tokenize(v.String()) {
			out[tok] = true
		}
	}
	return out
}

// idfTable weights tokens by log(N/df) over the gτ relation.
type idfTable struct {
	n  float64
	df map[string]int
}

func buildIDFMasked(gt *rel.Relation, rowTokens func(rel.Tuple) map[string]bool) idfTable {
	t := idfTable{n: float64(gt.Len()), df: map[string]int{}}
	for _, tup := range gt.Tuples {
		for tok := range rowTokens(tup) {
			t.df[tok]++
		}
	}
	return t
}

func (t idfTable) weight(tok string) float64 {
	df, ok := t.df[tok]
	if !ok || df == 0 {
		return -1 // not matchable against gτ at all
	}
	return math.Log(t.n/float64(df)) + 1e-9
}

// sim is the pairwise tuple-comparison ER UDF of §IV-B step (2): the
// fraction of the query tuple's matchable IDF mass covered by the gτ row.
func (t idfTable) sim(q, row map[string]bool) float64 {
	var hit, total float64
	for tok := range q {
		w := t.weight(tok)
		if w < 0 {
			continue // token unknown to gτ: neither evidence nor penalty
		}
		total += w
		if row[tok] {
			hit += w
		}
	}
	if total == 0 {
		return 0
	}
	return hit / total
}

func lastComponent(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '.' {
			return name[i+1:]
		}
	}
	return name
}
