package core

import (
	"testing"

	"semjoin/internal/graph"
)

func TestPatternMatching(t *testing.T) {
	p := PathPattern{"issues", "^registered_in"}
	path := graph.Path{
		Vertices:   []graph.VertexID{1, 2, 3},
		EdgeLabels: []string{"issues", "^registered_in"},
	}
	if !p.Matches(path) {
		t.Fatal("pattern should match its own path")
	}
	if p.Matches(graph.Path{Vertices: []graph.VertexID{1, 2}, EdgeLabels: []string{"issues"}}) {
		t.Fatal("shorter path must not match")
	}
	if p.Matches(graph.Path{Vertices: []graph.VertexID{1, 2, 3}, EdgeLabels: []string{"issues", "registered_in"}}) {
		t.Fatal("direction mark must be respected")
	}
	if PatternOf(path).Key() != p.Key() {
		t.Fatal("PatternOf should reproduce the pattern")
	}
	back := patternFromKey(p.Key())
	if back.String() != p.String() {
		t.Fatalf("key round-trip: %q vs %q", back, p)
	}
	if patternFromKey("") != nil {
		t.Fatal("empty key should give nil pattern")
	}
}

func TestRExtDiscoverAndExtract(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
	})
	dg, err := ex.Run(w.products, oracle(w).Match(w.products, w.g))
	if err != nil {
		t.Fatal(err)
	}
	scheme := ex.Scheme()
	attrs := scheme.Attrs()
	if len(attrs) != 2 {
		t.Fatalf("extracted attrs = %v, want 2", attrs)
	}
	hasCompany, hasCountry := false, false
	for _, a := range attrs {
		switch a {
		case "company":
			hasCompany = true
		case "country":
			hasCountry = true
		}
	}
	if !hasCompany || !hasCountry {
		t.Fatalf("attrs = %v, want company and country", attrs)
	}
	if dg.Len() != w.products.Len() {
		t.Fatalf("DG rows = %d, want %d", dg.Len(), w.products.Len())
	}
	// Join back to pids and measure accuracy against ground truth.
	m := matchRelation(w.products, ex.Matches())
	joined := natJoin3(t, w.products, m, dg)
	if acc := accuracy(t, joined, "company", w.company); acc < 0.9 {
		t.Fatalf("company accuracy = %.2f, want >= 0.9", acc)
	}
	if acc := accuracy(t, joined, "country", w.country); acc < 0.9 {
		t.Fatalf("country accuracy = %.2f, want >= 0.9", acc)
	}
}

func TestRExtSchemaShape(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company"}, Seed: 3,
	})
	if err := ex.Discover(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	s := ex.Scheme().Schema
	if s.Key != "vid" || s.Col("vid") != 0 {
		t.Fatalf("RG should be keyed by vid: %v", s)
	}
	if len(s.Attrs) != 2 {
		t.Fatalf("RG arity = %d, want vid + 1 attr", len(s.Attrs))
	}
}

func TestRExtErrors(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{K: 2, H: 4})
	if err := ex.Discover(w.products, oracle(w).Match(w.products, w.g)); err == nil {
		t.Fatal("no keywords should be an error")
	}
	ex2 := NewExtractor(w.g, w.models, Config{K: 2, H: 4, Keywords: []string{"x"}})
	if err := ex2.Discover(w.products, nil); err == nil {
		t.Fatal("empty match relation should be an error")
	}
}

func TestExtractBeforeDiscoverErrors(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{Keywords: []string{"x"}})
	if _, err := ex.Extract(); err == nil {
		t.Fatal("expected an error from Extract before Discover")
	}
}

func TestNewExtractorValidation(t *testing.T) {
	w := getWorld(t)
	// A misconfigured constructor reports its problem at first use
	// rather than panicking: Discover, Extract and Run all surface it.
	ex := NewExtractor(w.g, Models{Word: w.models.Word}, Config{Keywords: []string{"x"}})
	if err := ex.Discover(w.products, oracle(w).Match(w.products, w.g)); err == nil {
		t.Fatal("expected an error without a sequence model")
	}
	if _, err := ex.Extract(); err == nil {
		t.Fatal("Extract should surface the constructor error")
	}
	ex2 := NewExtractor(w.g, Models{Seq: w.models.Seq}, Config{Keywords: []string{"x"}})
	if _, err := ex2.Run(w.products, oracle(w).Match(w.products, w.g)); err == nil {
		t.Fatal("expected an error without a word embedder")
	}
}

func TestRndPathBaselineRuns(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, Models{Word: w.models.Word, RandomPaths: true}, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 5,
	})
	dg, err := ex.Run(w.products, oracle(w).Match(w.products, w.g))
	if err != nil {
		t.Fatal(err)
	}
	if dg.Len() != w.products.Len() {
		t.Fatalf("RndPath rows = %d", dg.Len())
	}
}

func TestGuidedBeatsRandomOnNullRate(t *testing.T) {
	// The LSTM-guided variant should extract at least as many non-null
	// values as a beam-1 random walker (the RndPath baseline shape of
	// Exp-2(b)(3)).
	w := getWorld(t)
	countNulls := func(models Models, beam int) int {
		ex := NewExtractor(w.g, models, Config{
			K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 5, Beam: beam,
		})
		dg, err := ex.Run(w.products, oracle(w).Match(w.products, w.g))
		if err != nil {
			t.Fatal(err)
		}
		nulls := 0
		for _, tp := range dg.Tuples {
			for _, v := range tp[1:] {
				if v.IsNull() {
					nulls++
				}
			}
		}
		return nulls
	}
	guided := countNulls(w.models, 2)
	random := countNulls(Models{Word: w.models.Word, RandomPaths: true}, 1)
	if guided > random {
		t.Fatalf("guided nulls %d > random nulls %d", guided, random)
	}
}

func TestAcceptCallbackFilters(t *testing.T) {
	w := getWorld(t)
	var offered []string
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
		Accept: func(attr string, patterns []PathPattern, sample []WSample) bool {
			offered = append(offered, attr)
			if len(patterns) == 0 || len(sample) == 0 {
				t.Error("Accept must see patterns and samples")
			}
			return attr != "country" // user vetoes country
		},
	})
	if err := ex.Discover(w.products, oracle(w).Match(w.products, w.g)); err != nil {
		t.Fatal(err)
	}
	for _, a := range ex.Scheme().Attrs() {
		if a == "country" {
			t.Fatal("vetoed attribute still selected")
		}
	}
	if len(offered) == 0 {
		t.Fatal("Accept was never consulted")
	}
}

func TestPathCacheReuse(t *testing.T) {
	w := getWorld(t)
	ex := NewExtractor(w.g, w.models, Config{
		K: 3, H: 12, Keywords: []string{"company"}, Seed: 3,
	})
	matches := oracle(w).Match(w.products, w.g)
	if err := ex.Discover(w.products, matches); err != nil {
		t.Fatal(err)
	}
	cached := len(ex.pathCache)
	if _, err := ex.Extract(); err != nil {
		t.Fatal(err)
	}
	if len(ex.pathCache) != cached {
		t.Fatalf("Extract should reuse discovery paths: %d -> %d", cached, len(ex.pathCache))
	}
}

func TestSelectPathsRespectsBounds(t *testing.T) {
	w := getWorld(t)
	for _, k := range []int{1, 2, 3} {
		ex := NewExtractor(w.g, w.models, Config{K: k, H: 8, Keywords: []string{"company"}, Seed: 3})
		for pid, v := range w.truth {
			for _, p := range ex.selectPaths(v) {
				if p.Len() > k {
					t.Fatalf("path longer than k=%d for %s: %v", k, pid, p)
				}
				if p.Start() != v {
					t.Fatal("path must start at entity")
				}
				seen := map[graph.VertexID]bool{}
				for _, u := range p.Vertices {
					if seen[u] {
						t.Fatal("selected path is not simple")
					}
					seen[u] = true
				}
			}
			break // one entity suffices per k
		}
	}
}

func TestSelectPathsMaxPathsPerEntityCap(t *testing.T) {
	// A hub vertex with huge degree must not explode.
	g := graph.New()
	hub := g.AddVertex("hub", "h")
	for i := 0; i < 500; i++ {
		v := g.AddVertex("leaf", "l")
		g.AddEdge(hub, "e", v)
	}
	w := getWorld(t)
	ex := NewExtractor(g, Models{Word: w.models.Word, RandomPaths: true},
		Config{K: 2, H: 4, Keywords: []string{"x"}, MaxPathsPerEntity: 10})
	paths := ex.selectPaths(hub)
	if len(paths) > 20 { // 10 initial edges, ≤2 prefixes each at k=2
		t.Fatalf("cap not enforced: %d paths", len(paths))
	}
}

func TestTypeSentences(t *testing.T) {
	w := getWorld(t)
	sents := TypeSentences(w.g)
	if len(sents) == 0 {
		t.Fatal("typed graph should yield type sentences")
	}
	found := false
	for _, s := range sents {
		if len(s) != 2 {
			t.Fatalf("sentence shape: %v", s)
		}
		if s[0] == "UK" && s[1] == "country" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing UK-country sentence")
	}
}

func TestNoiseFracDegradesGracefully(t *testing.T) {
	// With moderate label noise the majority-vote refinement should keep
	// extraction usable (Fig 5(f) shape: robust up to ~20%).
	w := getWorld(t)
	run := func(noise float64) float64 {
		ex := NewExtractor(w.g, w.models, Config{
			K: 3, H: 12, Keywords: []string{"company", "country"}, Seed: 3,
			NoiseFrac: noise,
		})
		dg, err := ex.Run(w.products, oracle(w).Match(w.products, w.g))
		if err != nil {
			t.Fatal(err)
		}
		m := matchRelation(w.products, ex.Matches())
		joined := natJoin3(t, w.products, m, dg)
		return accuracy(t, joined, "company", w.company)
	}
	clean := run(0)
	noisy := run(0.1)
	if clean < 0.9 {
		t.Fatalf("clean accuracy = %.2f", clean)
	}
	if noisy < clean-0.35 {
		t.Fatalf("10%% noise collapsed accuracy: %.2f -> %.2f", clean, noisy)
	}
}
